#include "dnscache/name_server.h"

#include <gtest/gtest.h>

#include "core/policy_factory.h"
#include "fault/dns_outage.h"
#include "sim/random.h"

namespace adattl::dnscache {
namespace {

class NameServerTest : public ::testing::Test {
 protected:
  NameServerTest() : rng(3), alarms(4, 0.9) {
    core::SchedulerFactoryConfig fc;
    fc.capacities = {100.0, 100.0, 100.0, 100.0};
    fc.initial_weights = {5.0, 3.0, 1.0};
    fc.class_threshold = 0.2;
    bundle = core::make_scheduler("RR", fc, alarms, simulator, rng);
  }

  sim::Simulator simulator;
  sim::RngStream rng;
  core::AlarmRegistry alarms;
  core::SchedulerBundle bundle;
};

TEST_F(NameServerTest, FirstResolveGoesToAuthoritativeDns) {
  NameServer ns(simulator, 0, *bundle.scheduler);
  EXPECT_FALSE(ns.has_fresh_mapping());
  const web::ServerId s = ns.resolve();
  EXPECT_EQ(s, 0);  // RR starts at server 0
  EXPECT_EQ(ns.authoritative_queries(), 1u);
  EXPECT_EQ(ns.cache_hits(), 0u);
  EXPECT_TRUE(ns.has_fresh_mapping());
}

TEST_F(NameServerTest, WithinTtlServedFromCache) {
  NameServer ns(simulator, 0, *bundle.scheduler);
  const web::ServerId first = ns.resolve();
  simulator.run_until(239.0);  // TTL is 240 s
  for (int i = 0; i < 10; ++i) EXPECT_EQ(ns.resolve(), first);
  EXPECT_EQ(ns.authoritative_queries(), 1u);
  EXPECT_EQ(ns.cache_hits(), 10u);
}

TEST_F(NameServerTest, ExpiryTriggersNewMapping) {
  NameServer ns(simulator, 0, *bundle.scheduler);
  const web::ServerId first = ns.resolve();
  simulator.run_until(240.0);  // mapping expires exactly at now == expiry
  EXPECT_FALSE(ns.has_fresh_mapping());
  const web::ServerId second = ns.resolve();
  EXPECT_EQ(ns.authoritative_queries(), 2u);
  EXPECT_EQ(second, first + 1);  // RR moved on
}

TEST_F(NameServerTest, EachDomainHasItsOwnCache) {
  NameServer ns_a(simulator, 0, *bundle.scheduler);
  NameServer ns_b(simulator, 1, *bundle.scheduler);
  EXPECT_EQ(ns_a.resolve(), 0);
  EXPECT_EQ(ns_b.resolve(), 1);  // shared RR pointer advanced by domain b's query
  EXPECT_EQ(ns_a.resolve(), 0);  // a's cache unaffected
}

TEST_F(NameServerTest, NonCooperativeMinTtlExtendsShortMappings) {
  NsTtlBehavior behavior;
  behavior.min_accepted_sec = 300.0;  // above the 240 s the DNS proposes
  NameServer ns(simulator, 0, *bundle.scheduler, behavior);
  ns.resolve();
  simulator.run_until(280.0);
  EXPECT_TRUE(ns.has_fresh_mapping());  // would have expired at 240 if cooperative
  simulator.run_until(301.0);
  EXPECT_FALSE(ns.has_fresh_mapping());
}

TEST_F(NameServerTest, CooperativeNsHonorsProposedTtl) {
  NsTtlBehavior behavior;
  behavior.min_accepted_sec = 60.0;  // below 240: threshold never kicks in
  NameServer ns(simulator, 0, *bundle.scheduler, behavior);
  ns.resolve();
  simulator.run_until(239.0);
  EXPECT_TRUE(ns.has_fresh_mapping());
  simulator.run_until(241.0);
  EXPECT_FALSE(ns.has_fresh_mapping());
}

TEST_F(NameServerTest, OverrideValueUsedWhenConfigured) {
  NsTtlBehavior behavior;
  behavior.min_accepted_sec = 300.0;
  behavior.override_sec = 600.0;  // NS substitutes its own default
  NameServer ns(simulator, 0, *bundle.scheduler, behavior);
  ns.resolve();
  simulator.run_until(599.0);
  EXPECT_TRUE(ns.has_fresh_mapping());
  simulator.run_until(601.0);
  EXPECT_FALSE(ns.has_fresh_mapping());
}

TEST(NsTtlBehavior, EffectiveTtlRules) {
  NsTtlBehavior b;
  EXPECT_DOUBLE_EQ(b.effective_ttl(43.0), 43.0);  // fully cooperative default
  b.min_accepted_sec = 120.0;
  EXPECT_DOUBLE_EQ(b.effective_ttl(240.0), 240.0);
  EXPECT_DOUBLE_EQ(b.effective_ttl(60.0), 120.0);
  b.override_sec = 200.0;
  EXPECT_DOUBLE_EQ(b.effective_ttl(60.0), 200.0);
}

TEST(NsTtlBehavior, ThresholdBoundaryIsAccepted) {
  NsTtlBehavior b;
  b.min_accepted_sec = 120.0;
  EXPECT_DOUBLE_EQ(b.effective_ttl(120.0), 120.0);  // == threshold: cooperative
  EXPECT_DOUBLE_EQ(b.effective_ttl(119.999), 120.0);
}

TEST(NsTtlBehavior, ResultIsNeverNonPositive) {
  NsTtlBehavior cooperative;  // no threshold, no override
  EXPECT_DOUBLE_EQ(cooperative.effective_ttl(0.0), NsTtlBehavior::kFloorTtlSec);
  EXPECT_DOUBLE_EQ(cooperative.effective_ttl(-5.0), NsTtlBehavior::kFloorTtlSec);
  NsTtlBehavior thresholded;
  thresholded.min_accepted_sec = 90.0;
  EXPECT_DOUBLE_EQ(thresholded.effective_ttl(-5.0), 90.0);
}

TEST(NsTtlBehavior, OverrideBelowThresholdClampedUp) {
  NsTtlBehavior b;
  b.min_accepted_sec = 300.0;
  b.override_sec = 60.0;  // contradicts the threshold the NS enforces
  EXPECT_DOUBLE_EQ(b.effective_ttl(100.0), 300.0);
  EXPECT_DOUBLE_EQ(b.effective_ttl(400.0), 400.0);  // accepted values untouched
}

TEST(NsRetryPolicy, ValidatesFields) {
  NsRetryPolicy ok;
  EXPECT_NO_THROW(ok.validate());
  NsRetryPolicy bad_initial;
  bad_initial.initial_backoff_sec = 0.0;
  EXPECT_THROW(bad_initial.validate(), std::invalid_argument);
  NsRetryPolicy bad_max;
  bad_max.max_backoff_sec = 0.5;  // below the 1 s initial
  EXPECT_THROW(bad_max.validate(), std::invalid_argument);
  NsRetryPolicy bad_mult;
  bad_mult.multiplier = 0.9;
  EXPECT_THROW(bad_mult.validate(), std::invalid_argument);
}

TEST_F(NameServerTest, AttachingOutagesValidatesRetryPolicy) {
  NameServer ns(simulator, 0, *bundle.scheduler);
  const fault::DnsOutageCalendar cal({{0.0, 10.0}});
  NsRetryPolicy bad;
  bad.initial_backoff_sec = -1.0;
  EXPECT_THROW(ns.set_dns_outages(&cal, bad), std::invalid_argument);
}

TEST_F(NameServerTest, OutageStaleServesAndBacksOff) {
  NameServer ns(simulator, 0, *bundle.scheduler);
  const fault::DnsOutageCalendar cal({{240.0, 760.0}});
  ns.set_dns_outages(&cal);
  const web::ServerId first = ns.resolve();  // t = 0: reachable, fresh 240 s
  simulator.run_until(250.0);                // mapping expired, outage running
  EXPECT_FALSE(ns.has_fresh_mapping());
  EXPECT_EQ(ns.resolve(), first);  // stale-served, one real attempt
  EXPECT_EQ(ns.stale_serves(), 1u);
  EXPECT_EQ(ns.failed_queries(), 1u);
  // A stale answer must not be cached as fresh.
  EXPECT_FALSE(ns.has_fresh_mapping());
  // Inside the 1 s backoff window: served stale without a new attempt.
  EXPECT_EQ(ns.resolve(), first);
  EXPECT_EQ(ns.stale_serves(), 2u);
  EXPECT_EQ(ns.failed_queries(), 1u);
  simulator.run_until(251.0);  // backoff expired: next real attempt
  EXPECT_EQ(ns.resolve(), first);
  EXPECT_EQ(ns.failed_queries(), 2u);
  // None of this ever reached the authoritative scheduler.
  EXPECT_EQ(ns.authoritative_queries(), 1u);
}

TEST_F(NameServerTest, BackoffIsCappedAndRecoveryResumesResolution) {
  NameServer ns(simulator, 0, *bundle.scheduler);
  const fault::DnsOutageCalendar cal({{0.0, 500.0}});
  NsRetryPolicy retry;
  retry.initial_backoff_sec = 1.0;
  retry.max_backoff_sec = 4.0;
  retry.multiplier = 2.0;
  ns.set_dns_outages(&cal, retry);
  // Cold cache during an outage: resolution fails outright.
  EXPECT_EQ(ns.resolve(), -1);
  EXPECT_EQ(ns.failed_queries(), 1u);
  // Real attempts are spaced 1, 2, 4, 4 seconds apart (capped at 4).
  double t = 0.0;
  for (const double step : {1.0, 2.0, 4.0, 4.0}) {
    t += step;
    simulator.run_until(t);
    EXPECT_EQ(ns.resolve(), -1);
  }
  EXPECT_EQ(ns.failed_queries(), 5u);
  // Still inside the capped window: no further attempt is spent.
  simulator.run_until(t + 1.0);
  ns.resolve();
  EXPECT_EQ(ns.failed_queries(), 5u);
  // Past the outage the next query reaches the DNS again.
  simulator.run_until(504.0);
  EXPECT_GE(ns.resolve(), 0);
  EXPECT_EQ(ns.authoritative_queries(), 1u);
  EXPECT_TRUE(ns.has_fresh_mapping());
}

}  // namespace
}  // namespace adattl::dnscache
