#include "dnscache/name_server.h"

#include <gtest/gtest.h>

#include "core/policy_factory.h"
#include "sim/random.h"

namespace adattl::dnscache {
namespace {

class NameServerTest : public ::testing::Test {
 protected:
  NameServerTest() : rng(3), alarms(4, 0.9) {
    core::SchedulerFactoryConfig fc;
    fc.capacities = {100.0, 100.0, 100.0, 100.0};
    fc.initial_weights = {5.0, 3.0, 1.0};
    fc.class_threshold = 0.2;
    bundle = core::make_scheduler("RR", fc, alarms, simulator, rng);
  }

  sim::Simulator simulator;
  sim::RngStream rng;
  core::AlarmRegistry alarms;
  core::SchedulerBundle bundle;
};

TEST_F(NameServerTest, FirstResolveGoesToAuthoritativeDns) {
  NameServer ns(simulator, 0, *bundle.scheduler);
  EXPECT_FALSE(ns.has_fresh_mapping());
  const web::ServerId s = ns.resolve();
  EXPECT_EQ(s, 0);  // RR starts at server 0
  EXPECT_EQ(ns.authoritative_queries(), 1u);
  EXPECT_EQ(ns.cache_hits(), 0u);
  EXPECT_TRUE(ns.has_fresh_mapping());
}

TEST_F(NameServerTest, WithinTtlServedFromCache) {
  NameServer ns(simulator, 0, *bundle.scheduler);
  const web::ServerId first = ns.resolve();
  simulator.run_until(239.0);  // TTL is 240 s
  for (int i = 0; i < 10; ++i) EXPECT_EQ(ns.resolve(), first);
  EXPECT_EQ(ns.authoritative_queries(), 1u);
  EXPECT_EQ(ns.cache_hits(), 10u);
}

TEST_F(NameServerTest, ExpiryTriggersNewMapping) {
  NameServer ns(simulator, 0, *bundle.scheduler);
  const web::ServerId first = ns.resolve();
  simulator.run_until(240.0);  // mapping expires exactly at now == expiry
  EXPECT_FALSE(ns.has_fresh_mapping());
  const web::ServerId second = ns.resolve();
  EXPECT_EQ(ns.authoritative_queries(), 2u);
  EXPECT_EQ(second, first + 1);  // RR moved on
}

TEST_F(NameServerTest, EachDomainHasItsOwnCache) {
  NameServer ns_a(simulator, 0, *bundle.scheduler);
  NameServer ns_b(simulator, 1, *bundle.scheduler);
  EXPECT_EQ(ns_a.resolve(), 0);
  EXPECT_EQ(ns_b.resolve(), 1);  // shared RR pointer advanced by domain b's query
  EXPECT_EQ(ns_a.resolve(), 0);  // a's cache unaffected
}

TEST_F(NameServerTest, NonCooperativeMinTtlExtendsShortMappings) {
  NsTtlBehavior behavior;
  behavior.min_accepted_sec = 300.0;  // above the 240 s the DNS proposes
  NameServer ns(simulator, 0, *bundle.scheduler, behavior);
  ns.resolve();
  simulator.run_until(280.0);
  EXPECT_TRUE(ns.has_fresh_mapping());  // would have expired at 240 if cooperative
  simulator.run_until(301.0);
  EXPECT_FALSE(ns.has_fresh_mapping());
}

TEST_F(NameServerTest, CooperativeNsHonorsProposedTtl) {
  NsTtlBehavior behavior;
  behavior.min_accepted_sec = 60.0;  // below 240: threshold never kicks in
  NameServer ns(simulator, 0, *bundle.scheduler, behavior);
  ns.resolve();
  simulator.run_until(239.0);
  EXPECT_TRUE(ns.has_fresh_mapping());
  simulator.run_until(241.0);
  EXPECT_FALSE(ns.has_fresh_mapping());
}

TEST_F(NameServerTest, OverrideValueUsedWhenConfigured) {
  NsTtlBehavior behavior;
  behavior.min_accepted_sec = 300.0;
  behavior.override_sec = 600.0;  // NS substitutes its own default
  NameServer ns(simulator, 0, *bundle.scheduler, behavior);
  ns.resolve();
  simulator.run_until(599.0);
  EXPECT_TRUE(ns.has_fresh_mapping());
  simulator.run_until(601.0);
  EXPECT_FALSE(ns.has_fresh_mapping());
}

TEST(NsTtlBehavior, EffectiveTtlRules) {
  NsTtlBehavior b;
  EXPECT_DOUBLE_EQ(b.effective_ttl(43.0), 43.0);  // fully cooperative default
  b.min_accepted_sec = 120.0;
  EXPECT_DOUBLE_EQ(b.effective_ttl(240.0), 240.0);
  EXPECT_DOUBLE_EQ(b.effective_ttl(60.0), 120.0);
  b.override_sec = 200.0;
  EXPECT_DOUBLE_EQ(b.effective_ttl(60.0), 200.0);
}

}  // namespace
}  // namespace adattl::dnscache
