#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace adattl::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(3.0, [&] { fired.push_back(3); });
  q.schedule(1.0, [&] { fired.push_back(1); });
  q.schedule(2.0, [&] { fired.push_back(2); });
  while (!q.empty()) {
    auto [t, cb] = q.pop();
    cb();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, PopReturnsTimestamp) {
  EventQueue q;
  q.schedule(7.5, [] {});
  auto [t, cb] = q.pop();
  EXPECT_DOUBLE_EQ(t, 7.5);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeDoesNotPop) {
  EventQueue q;
  q.schedule(2.5, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 2.5);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventHandle h = q.schedule(1.0, [&] { ran = true; });
  q.schedule(2.0, [] {});
  EXPECT_TRUE(q.cancel(h));
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().second();
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  EventHandle h = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, CancelFiredEventReturnsFalse) {
  EventQueue q;
  EventHandle h = q.schedule(1.0, [] {});
  q.pop();
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, CancelDefaultHandleReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventHandle{}));
}

TEST(EventQueue, CancelledHeadSkipped) {
  EventQueue q;
  std::vector<int> fired;
  EventHandle h = q.schedule(1.0, [&] { fired.push_back(1); });
  q.schedule(2.0, [&] { fired.push_back(2); });
  q.cancel(h);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
  q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{2}));
}

TEST(EventQueue, ManyInterleavedScheduleCancelPop) {
  EventQueue q;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 1000; ++i) {
    handles.push_back(q.schedule(static_cast<double>(1000 - i), [] {}));
  }
  // Cancel every third event.
  std::size_t cancelled = 0;
  for (std::size_t i = 0; i < handles.size(); i += 3) {
    ASSERT_TRUE(q.cancel(handles[i]));
    ++cancelled;
  }
  EXPECT_EQ(q.size(), 1000u - cancelled);
  double last = -1.0;
  std::size_t popped = 0;
  while (!q.empty()) {
    auto [t, cb] = q.pop();
    EXPECT_GE(t, last);
    last = t;
    ++popped;
  }
  EXPECT_EQ(popped, 1000u - cancelled);
}

TEST(EventQueue, HandlesAreDistinct) {
  EventQueue q;
  EventHandle a = q.schedule(1.0, [] {});
  EventHandle b = q.schedule(1.0, [] {});
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace adattl::sim
