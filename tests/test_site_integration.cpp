// End-to-end integration tests: full Site runs at reduced (but meaningful)
// scale, checking the emergent properties the paper's methodology relies
// on — offered load, DNS control fraction, calibration parity, determinism
// — and the headline qualitative result (adaptive TTL beats RR under
// heterogeneity).
#include "experiment/site.h"

#include <gtest/gtest.h>

#include "experiment/runner.h"

namespace adattl::experiment {
namespace {

SimulationConfig short_config(const std::string& policy, int het = 35) {
  SimulationConfig cfg;
  cfg.cluster = web::table2_cluster(het);
  cfg.policy = policy;
  cfg.warmup_sec = 300.0;
  cfg.duration_sec = 2400.0;
  cfg.seed = 99;
  return cfg;
}

TEST(SiteIntegration, AggregateUtilizationNearTwoThirds) {
  Site site(short_config("RR"));
  const RunResult r = site.run();
  EXPECT_NEAR(r.aggregate_utilization, 2.0 / 3.0, 0.06);
}

TEST(SiteIntegration, DnsControlsOnlyAFewPercentOfRequests) {
  Site site(short_config("DRR2-TTL/S_K"));
  const RunResult r = site.run();
  EXPECT_GT(r.dns_controlled_fraction, 0.0);
  EXPECT_LT(r.dns_controlled_fraction, 0.04);  // paper: "often below 4%"
}

TEST(SiteIntegration, HitsArriveAtPlausibleRate) {
  Site site(short_config("RR"));
  const RunResult r = site.run();
  // Offered ~329 hits/s over warmup+duration = 2700 s.
  const double rate = static_cast<double>(r.total_hits) / 2700.0;
  EXPECT_NEAR(rate, 329.0, 30.0);
}

TEST(SiteIntegration, SameSeedIsDeterministic) {
  Site a(short_config("PRR2-TTL/K"));
  Site b(short_config("PRR2-TTL/K"));
  const RunResult ra = a.run();
  const RunResult rb = b.run();
  EXPECT_EQ(ra.total_hits, rb.total_hits);
  EXPECT_EQ(ra.authoritative_queries, rb.authoritative_queries);
  EXPECT_DOUBLE_EQ(ra.prob_below_090, rb.prob_below_090);
  EXPECT_EQ(ra.events_dispatched, rb.events_dispatched);
}

TEST(SiteIntegration, DifferentSeedsDiffer) {
  SimulationConfig cfg = short_config("RR");
  Site a(cfg);
  cfg.seed = 100;
  Site b(cfg);
  EXPECT_NE(a.run().total_hits, b.run().total_hits);
}

TEST(SiteIntegration, AdaptiveTtlBeatsRoundRobinUnderHeterogeneity) {
  // The paper's headline claim, at 35% heterogeneity.
  const RunResult rr = Site(short_config("RR")).run();
  const RunResult adaptive = Site(short_config("DRR2-TTL/S_K")).run();
  EXPECT_GT(adaptive.prob_below_090, rr.prob_below_090 + 0.2);
  EXPECT_GT(adaptive.prob_below_098, rr.prob_below_098);
}

TEST(SiteIntegration, TwoTierBeatsPlainUnderSkew) {
  const RunResult prr = Site(short_config("PRR-TTL/K")).run();
  const RunResult prr2 = Site(short_config("PRR2-TTL/K")).run();
  // RR2-based strategies are "always better" (paper); allow slack for a
  // short run but require non-degradation.
  EXPECT_GE(prr2.prob_below_098, prr.prob_below_098 - 0.05);
}

TEST(SiteIntegration, CalibratedPoliciesHaveComparableAddressRates) {
  const RunResult constant = Site(short_config("PRR-TTL/1")).run();
  const RunResult per_domain = Site(short_config("PRR-TTL/K")).run();
  const RunResult det = Site(short_config("DRR2-TTL/S_K")).run();
  // §4.1 fairness: average address request rates must match (within noise;
  // lazy re-resolution — a domain re-queries only at its next session —
  // biases all policies equally).
  EXPECT_NEAR(per_domain.address_request_rate / constant.address_request_rate, 1.0, 0.25);
  EXPECT_NEAR(det.address_request_rate / constant.address_request_rate, 1.0, 0.25);
}

TEST(SiteIntegration, AlarmFeedbackFiresUnderOverload) {
  // RR at high heterogeneity routinely overloads the weak servers.
  Site site(short_config("RR", 65));
  const RunResult r = site.run();
  EXPECT_GT(r.alarm_signals, 0u);
}

TEST(SiteIntegration, UniformWorkloadIsTheIdealEnvelope) {
  SimulationConfig uniform = short_config("PRR-TTL/1");
  uniform.uniform_clients = true;
  const RunResult ideal = Site(uniform).run();
  const RunResult skewed = Site(short_config("PRR-TTL/1")).run();
  EXPECT_GT(ideal.prob_below_090, skewed.prob_below_090);
}

TEST(SiteIntegration, PerturbationDegradesTwoClassSchemes) {
  SimulationConfig cfg = short_config("PRR2-TTL/2", 50);
  const RunResult clean = Site(cfg).run();
  cfg.rate_perturbation_percent = 50.0;
  const RunResult noisy = Site(cfg).run();
  EXPECT_LE(noisy.prob_below_098, clean.prob_below_098 + 0.03);
}

TEST(SiteIntegration, NonCooperativeNsStillRuns) {
  SimulationConfig cfg = short_config("DRR2-TTL/S_K");
  cfg.ns_min_ttl_sec = 300.0;
  const RunResult r = Site(cfg).run();
  // With every NS enforcing 300 s the DNS answers fewer queries than the
  // calibrated K/240 rate would imply.
  EXPECT_LT(r.address_request_rate, 20.0 / 240.0);
  EXPECT_GT(r.total_hits, 0u);
}

TEST(SiteIntegration, MeasuredEstimatorTracksOracleClosely) {
  SimulationConfig oracle_cfg = short_config("PRR2-TTL/K");
  SimulationConfig measured_cfg = oracle_cfg;
  measured_cfg.oracle_weights = false;
  const RunResult oracle = Site(oracle_cfg).run();
  const RunResult measured = Site(measured_cfg).run();
  EXPECT_NEAR(measured.prob_below_098, oracle.prob_below_098, 0.12);
}

TEST(SiteIntegration, ColdStartEstimatorConverges) {
  SimulationConfig cfg = short_config("PRR2-TTL/K");
  cfg.oracle_weights = false;
  cfg.estimator_cold_start = true;
  Site site(cfg);
  const RunResult r = site.run();
  // After the run the estimator's view must rank domain 0 hottest.
  EXPECT_TRUE(site.domain_model().is_hot(0));
  EXPECT_GT(site.domain_model().weight(0), site.domain_model().weight(10));
  EXPECT_GT(r.total_hits, 0u);
}

TEST(SiteIntegration, MoreNameServersPerDomainRaiseDnsControl) {
  SimulationConfig cfg = short_config("RR");
  const RunResult one = Site(cfg).run();
  cfg.ns_per_domain = 4;
  const RunResult four = Site(cfg).run();
  // Four independent caches per domain re-resolve ~4x as often.
  EXPECT_GT(four.authoritative_queries, 2 * one.authoritative_queries);
  EXPECT_GT(four.dns_controlled_fraction, one.dns_controlled_fraction);
  // Load itself is unchanged.
  EXPECT_NEAR(four.aggregate_utilization, one.aggregate_utilization, 0.05);
}

TEST(SiteIntegration, ResponsePercentilesAreOrdered) {
  const RunResult r = Site(short_config("PRR2-TTL/K")).run();
  EXPECT_GT(r.response_p50_sec, 0.0);
  EXPECT_LE(r.response_p50_sec, r.response_p95_sec);
  EXPECT_LE(r.response_p95_sec, r.response_p99_sec);
  // Median page (10 hits at ~70 hits/s) takes ~0.15 s when unloaded.
  EXPECT_LT(r.response_p50_sec, 1.0);
}

TEST(SiteIntegration, SiteIsSingleUse) {
  Site site(short_config("RR"));
  site.run();
  EXPECT_THROW(site.run(), std::logic_error);
}

TEST(RunnerTest, ReplicationsProduceDistinctRunsAndCis) {
  SimulationConfig cfg = short_config("RR");
  cfg.warmup_sec = 100.0;
  cfg.duration_sec = 800.0;
  const ReplicatedResult rep = run_replications(cfg, 3);
  ASSERT_EQ(rep.runs.size(), 3u);
  EXPECT_NE(rep.runs[0].total_hits, rep.runs[1].total_hits);
  const sim::MeanCi p = rep.prob_below(0.9);
  EXPECT_GE(p.mean, 0.0);
  EXPECT_LE(p.mean, 1.0);
  EXPECT_GE(p.halfwidth, 0.0);
}

TEST(RunnerTest, MeanCdfCurveIsMonotone) {
  SimulationConfig cfg = short_config("PRR-TTL/1");
  cfg.warmup_sec = 100.0;
  cfg.duration_sec = 800.0;
  const ReplicatedResult rep = run_replications(cfg, 2);
  const auto curve = rep.mean_cdf_curve(20);
  ASSERT_EQ(curve.size(), 21u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].second, curve[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(curve.front().first, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().first, 1.0);
}

TEST(RunnerTest, JsonSerializationIsWellFormedAndComplete) {
  SimulationConfig cfg = short_config("DRR2-TTL/S_K");
  cfg.warmup_sec = 100.0;
  cfg.duration_sec = 800.0;
  const ReplicatedResult rep = run_replications(cfg, 2);
  const std::string json = to_json(cfg, rep);
  // Well-formed object boundaries and balanced brackets.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  int braces = 0, brackets = 0;
  for (char c : json) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  // Every schema key present.
  for (const char* key :
       {"\"policy\":\"DRR2-TTL/S_K\"", "\"servers\":7", "\"p_max_util_below_098\":",
        "\"aggregate_utilization\":", "\"address_request_rate\":",
        "\"dns_controlled_fraction\":", "\"mean_response_sec\":",
        "\"mean_server_utilization\":["}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(RunnerTest, RejectsZeroReplications) {
  EXPECT_THROW(run_replications(short_config("RR"), 0), std::invalid_argument);
}

}  // namespace
}  // namespace adattl::experiment
