#include "sim/stats.h"

#include "sim/random.h"

#include <gtest/gtest.h>

#include <cmath>

namespace adattl::sim {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MeanVarianceMinMax) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, SingleSampleHasZeroVariance) {
  RunningStat s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
}

TEST(RunningStat, StableForManySamples) {
  RunningStat s;
  for (int i = 0; i < 1000000; ++i) s.add(1000.0 + (i % 2 ? 0.5 : -0.5));
  EXPECT_NEAR(s.mean(), 1000.0, 1e-9);
  EXPECT_NEAR(s.variance(), 0.25, 1e-6);
}

TEST(TimeWeightedMean, WeighsByHoldingTime) {
  TimeWeightedMean m;
  m.set(0.0, 1.0);   // 1.0 held for 10 s
  m.set(10.0, 3.0);  // 3.0 held for 5 s
  EXPECT_DOUBLE_EQ(m.mean(15.0), (1.0 * 10 + 3.0 * 5) / 15.0);
}

TEST(TimeWeightedMean, CurrentValueExtendsToQueryTime) {
  TimeWeightedMean m;
  m.set(0.0, 2.0);
  EXPECT_DOUBLE_EQ(m.mean(4.0), 2.0);
}

TEST(TimeWeightedMean, RejectsTimeGoingBackwards) {
  TimeWeightedMean m;
  m.set(5.0, 1.0);
  EXPECT_THROW(m.set(4.0, 2.0), std::invalid_argument);
}

TEST(EmpiricalCdf, ProbBelowBasics) {
  EmpiricalCdf c(100);
  for (int i = 0; i < 50; ++i) c.add(0.25);
  for (int i = 0; i < 50; ++i) c.add(0.75);
  EXPECT_DOUBLE_EQ(c.prob_below(0.1), 0.0);
  EXPECT_DOUBLE_EQ(c.prob_below(0.5), 0.5);
  EXPECT_DOUBLE_EQ(c.prob_below(0.9), 1.0);
  EXPECT_DOUBLE_EQ(c.prob_below(1.0), 1.0);
}

TEST(EmpiricalCdf, OverflowBinHoldsSaturatedValues) {
  EmpiricalCdf c(100);
  c.add(0.5);
  c.add(1.2);  // utilization can never exceed 1, but the CDF must not lose it
  c.add(1.0);
  EXPECT_DOUBLE_EQ(c.prob_below(1.0), 1.0 / 3.0);
}

TEST(EmpiricalCdf, NegativeClampsToFirstBin) {
  EmpiricalCdf c(10);
  c.add(-0.5);
  EXPECT_DOUBLE_EQ(c.prob_below(0.2), 1.0);
}

TEST(EmpiricalCdf, EmptyReturnsZero) {
  EmpiricalCdf c(10);
  EXPECT_DOUBLE_EQ(c.prob_below(0.5), 0.0);
}

TEST(EmpiricalCdf, QuantileFindsBoundary) {
  EmpiricalCdf c(100);
  for (int i = 0; i < 100; ++i) c.add(i / 100.0 + 0.001);
  EXPECT_NEAR(c.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(c.quantile(0.98), 0.98, 0.02);
}

TEST(EmpiricalCdf, CumulativeCurveIsMonotone) {
  EmpiricalCdf c(50);
  for (int i = 0; i < 1000; ++i) c.add((i % 100) / 100.0);
  const std::vector<double> curve = c.cumulative();
  EXPECT_EQ(curve.size(), 51u);
  for (std::size_t i = 1; i < curve.size(); ++i) EXPECT_GE(curve[i], curve[i - 1]);
  EXPECT_DOUBLE_EQ(curve.front(), 0.0);
}

TEST(EmpiricalCdf, RejectsBadBinCount) {
  EXPECT_THROW(EmpiricalCdf(0), std::invalid_argument);
}

TEST(EmpiricalCdf, QuantileClampsOverflowMassToDomain) {
  // Regression: mass in the overflow bin used to report (bins+1)/bins,
  // i.e. a "probability" above 1. It must clamp to the domain edge 1.0.
  EmpiricalCdf c(10);
  for (int i = 0; i < 10; ++i) c.add(1.5);  // all samples saturate
  EXPECT_DOUBLE_EQ(c.quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(c.quantile(1.0), 1.0);
  c.add(0.05);  // one in-range sample; high quantiles still clamp
  EXPECT_DOUBLE_EQ(c.quantile(0.99), 1.0);
  EXPECT_LE(c.quantile(0.05), 0.1);
}

TEST(EmpiricalCdf, QuantileZeroIsLowerDomainEdge) {
  EmpiricalCdf c(10);
  // Leading empty bins: p == 0 must report the domain's lower edge, not
  // the first occupied bin's upper boundary.
  c.add(0.75);
  c.add(0.85);
  EXPECT_DOUBLE_EQ(c.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(c.quantile(-0.5), 0.0);
  EXPECT_GT(c.quantile(0.5), 0.0);
}

TEST(Quantiles, HistogramAndCdfAgreeOnSharedUnitData) {
  // Property cross-check: a Histogram over [0, 1) with N bins and an
  // EmpiricalCdf with N bins are the same data structure up to naming;
  // fed identical samples they must return identical quantiles.
  constexpr int kBins = 64;
  Histogram h(1.0, kBins);
  EmpiricalCdf c(kBins);
  RngStream rng(1234);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform(0.0, 1.3);  // ~23% saturates into overflow
    h.add(x);
    c.add(x);
  }
  for (double p = 0.0; p <= 1.0; p += 0.01) {
    EXPECT_DOUBLE_EQ(h.quantile(p), c.quantile(p)) << "p=" << p;
  }
  // Both stay inside the domain even with overflow mass.
  EXPECT_LE(h.quantile(1.0), 1.0);
  EXPECT_LE(c.quantile(1.0), 1.0);
}

TEST(ConfidenceInterval, KnownTValue) {
  RunningStat s;
  // Five samples, sd = 1: halfwidth = t(4, .975) / sqrt(5) = 2.776 / 2.2360.
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  const double sd = s.stddev();
  EXPECT_NEAR(t_confidence_halfwidth(s, 0.95), 2.776 * sd / std::sqrt(5.0), 1e-6);
}

TEST(ConfidenceInterval, FewSamplesGiveZero) {
  RunningStat s;
  EXPECT_DOUBLE_EQ(t_confidence_halfwidth(s), 0.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(t_confidence_halfwidth(s), 0.0);
}

TEST(ConfidenceInterval, LargeSampleUsesNormalApprox) {
  RunningStat s;
  for (int i = 0; i < 1000; ++i) s.add(i % 2 ? 1.0 : -1.0);
  const double hw = t_confidence_halfwidth(s, 0.95);
  EXPECT_NEAR(hw, 1.96 * s.stddev() / std::sqrt(1000.0), 1e-9);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 0), std::invalid_argument);
}

TEST(Histogram, MeanAndCount) {
  Histogram h(10.0, 100);
  h.add(1.0);
  h.add(3.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(Histogram, QuantilesOnKnownData) {
  Histogram h(10.0, 1000);
  for (int i = 0; i < 90; ++i) h.add(1.0);
  for (int i = 0; i < 10; ++i) h.add(9.0);
  EXPECT_NEAR(h.quantile(0.5), 1.0, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 1.0, 0.02);
  EXPECT_NEAR(h.quantile(0.95), 9.0, 0.02);
}

TEST(Histogram, OverflowReportsUpperBound) {
  Histogram h(10.0, 100);
  h.add(50.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.0);  // mean still exact
}

TEST(Histogram, EmptyQuantileIsZero) {
  Histogram h(10.0, 10);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);
}

TEST(Histogram, MergeCombinesCounts) {
  Histogram a(10.0, 100);
  Histogram b(10.0, 100);
  a.add(2.0);
  b.add(4.0);
  b.add(4.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_NEAR(a.quantile(0.99), 4.0, 0.15);
}

TEST(Histogram, MergeRejectsShapeMismatch) {
  Histogram a(10.0, 100);
  Histogram b(10.0, 50);
  Histogram c(20.0, 100);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(Histogram, RejectsNegativeValues) {
  Histogram h(10.0, 10);
  EXPECT_THROW(h.add(-1.0), std::invalid_argument);
}

TEST(BatchMeans, RejectsZeroBatchSize) {
  EXPECT_THROW(BatchMeans(0), std::invalid_argument);
}

TEST(BatchMeans, CompletesBatchesAtBoundary) {
  BatchMeans b(3);
  b.add(1.0);
  b.add(2.0);
  EXPECT_EQ(b.completed_batches(), 0u);
  b.add(3.0);
  EXPECT_EQ(b.completed_batches(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(BatchMeans, PartialBatchExcluded) {
  BatchMeans b(2);
  b.add(1.0);
  b.add(3.0);   // batch mean 2
  b.add(100.0);  // dangling partial batch: must not pollute the mean
  EXPECT_EQ(b.completed_batches(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(BatchMeans, CiShrinksWithMoreBatches) {
  BatchMeans few(10);
  BatchMeans many(10);
  RngStream rng(123);
  for (int i = 0; i < 40; ++i) few.add(rng.uniform(0.0, 1.0));
  RngStream rng2(123);
  for (int i = 0; i < 400; ++i) many.add(rng2.uniform(0.0, 1.0));
  EXPECT_GT(few.ci_halfwidth(), many.ci_halfwidth());
}

TEST(BatchMeans, RelativeHalfwidthIsFractionOfMean) {
  BatchMeans b(1);
  for (double x : {9.0, 10.0, 11.0, 10.0}) b.add(x);
  EXPECT_NEAR(b.relative_halfwidth(), b.ci_halfwidth() / 10.0, 1e-12);
}

TEST(BatchMeans, ConstantSeriesHasZeroHalfwidth) {
  BatchMeans b(5);
  for (int i = 0; i < 50; ++i) b.add(0.7);
  EXPECT_DOUBLE_EQ(b.ci_halfwidth(), 0.0);
  EXPECT_DOUBLE_EQ(b.mean(), 0.7);
}

TEST(Mser5, FlatSeriesNeedsNoTruncation) {
  std::vector<double> flat(200, 0.7);
  EXPECT_EQ(mser5_truncation(flat), 0u);
}

TEST(Mser5, DetectsInitialTransient) {
  // 50 samples of ramp-up, then 450 of noisy steady state.
  RngStream rng(99);
  std::vector<double> series;
  for (int i = 0; i < 50; ++i) series.push_back(static_cast<double>(i) / 50.0);
  for (int i = 0; i < 450; ++i) series.push_back(1.0 + 0.05 * (rng.next_double() - 0.5));
  const std::size_t cut = mser5_truncation(series);
  EXPECT_GE(cut, 40u);
  EXPECT_LE(cut, 70u);
}

TEST(Mser5, TooShortSeriesReturnsZero) {
  EXPECT_EQ(mser5_truncation({1, 2, 3}), 0u);
  EXPECT_EQ(mser5_truncation({}), 0u);
}

TEST(Mser5, TruncationCappedAtHalfTheSeries) {
  // A series that only stabilizes at the very end cannot claim more than
  // half the run as warm-up.
  std::vector<double> series;
  for (int i = 0; i < 100; ++i) series.push_back(static_cast<double>(i));
  EXPECT_LE(mser5_truncation(series), 50u);
}

TEST(MeanCiHelper, ComputesMeanAndHalfwidth) {
  const MeanCi ci = mean_ci({2.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(ci.mean, 4.0);
  EXPECT_GT(ci.halfwidth, 0.0);
}

}  // namespace
}  // namespace adattl::sim
