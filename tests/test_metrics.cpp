#include "experiment/metrics.h"

#include <gtest/gtest.h>

namespace adattl::experiment {
namespace {

TEST(MaxUtilizationTracker, IgnoresWarmupSamples) {
  MaxUtilizationTracker t(3, /*warmup_end=*/100.0);
  t.observe(50.0, {0.9, 0.9, 0.9});
  EXPECT_EQ(t.samples(), 0u);
  // The measured period is closed on the left: the sample taken exactly at
  // the warm-up boundary is the first measured one (DESIGN.md §11).
  t.observe(100.0, {0.9, 0.9, 0.9});
  EXPECT_EQ(t.samples(), 1u);
  t.observe(108.0, {0.5, 0.2, 0.1});
  EXPECT_EQ(t.samples(), 2u);
}

TEST(MaxUtilizationTracker, TracksMaximumAcrossServers) {
  MaxUtilizationTracker t(3, 0.0);
  t.observe(8.0, {0.2, 0.7, 0.4});
  t.observe(16.0, {0.9, 0.1, 0.3});
  EXPECT_DOUBLE_EQ(t.mean_max_utilization(), 0.8);
  EXPECT_DOUBLE_EQ(t.prob_below(0.75), 0.5);  // only the first tick stayed below
  EXPECT_DOUBLE_EQ(t.prob_below(0.95), 1.0);
}

TEST(MaxUtilizationTracker, PerServerMeans) {
  MaxUtilizationTracker t(2, 0.0);
  t.observe(8.0, {0.2, 0.6});
  t.observe(16.0, {0.4, 0.8});
  const std::vector<double> means = t.mean_utilizations();
  EXPECT_DOUBLE_EQ(means[0], 0.3);
  EXPECT_DOUBLE_EQ(means[1], 0.7);
}

TEST(MaxUtilizationTracker, SaturationLandsInOverflow) {
  MaxUtilizationTracker t(1, 0.0);
  t.observe(8.0, {1.0});
  EXPECT_DOUBLE_EQ(t.prob_below(1.0), 0.0);
  EXPECT_EQ(t.samples(), 1u);
}

TEST(MaxUtilizationTracker, SizeMismatchThrows) {
  MaxUtilizationTracker t(2, 0.0);
  EXPECT_THROW(t.observe(8.0, {0.5}), std::invalid_argument);
}

TEST(MaxUtilizationTracker, RejectsZeroServers) {
  EXPECT_THROW(MaxUtilizationTracker(0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace adattl::experiment
