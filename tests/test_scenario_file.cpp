#include "experiment/scenario_file.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "experiment/cli.h"

namespace adattl::experiment {
namespace {

TEST(ScenarioText, ParsesKeysValuesCommentsBlanks) {
  const std::vector<std::string> args = scenario_text_to_args(
      "# a comment\n"
      "policy = DRR2-TTL/S_K\n"
      "\n"
      "  heterogeneity = 50   # trailing comment\n"
      "min-ttl=60\n");
  EXPECT_EQ(args, (std::vector<std::string>{"--policy=DRR2-TTL/S_K", "--heterogeneity=50",
                                            "--min-ttl=60"}));
}

TEST(ScenarioText, BooleansPassThroughExplicitly) {
  // `key = false` must survive translation (it used to be silently
  // dropped, making default-on knobs impossible to disable from a file).
  const std::vector<std::string> args = scenario_text_to_args(
      "uniform = true\n"
      "measured = false\n"
      "client-cache = true\n");
  EXPECT_EQ(args, (std::vector<std::string>{"--uniform=true", "--measured=false",
                                            "--client-cache=true"}));
}

TEST(ScenarioText, FalseTurnsOffDefaultOnKnob) {
  const CliOptions opt = parse_cli(scenario_text_to_args("calibration = false\n"));
  EXPECT_FALSE(opt.config.calibrate_ttl);
}

TEST(ScenarioText, HashInsideValueIsNotAComment) {
  // Only '#' at the start of a line or preceded by whitespace begins a
  // comment; an embedded '#' (e.g. a fault-file path) is part of the value.
  const std::vector<std::string> args = scenario_text_to_args(
      "faults = chaos#1.faults\n"
      "policy = RR # real comment\n"
      "# full-line comment\n");
  EXPECT_EQ(args, (std::vector<std::string>{"--faults=chaos#1.faults", "--policy=RR"}));
}

TEST(ScenarioText, RepeatableKeys) {
  const std::vector<std::string> args = scenario_text_to_args(
      "shift = 600:3:5\n"
      "shift = 900:4:2\n");
  EXPECT_EQ(args.size(), 2u);
}

TEST(ScenarioText, ErrorsCarryLineNumbers) {
  try {
    scenario_text_to_args("policy = RR\nbogus line without equals\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
  EXPECT_THROW(scenario_text_to_args("= value\n"), std::invalid_argument);
  EXPECT_THROW(scenario_text_to_args("key =\n"), std::invalid_argument);
  EXPECT_THROW(scenario_text_to_args("key = # only a comment\n"), std::invalid_argument);
}

TEST(ScenarioText, EmptyTextGivesNoArgs) {
  EXPECT_TRUE(scenario_text_to_args("").empty());
  EXPECT_TRUE(scenario_text_to_args("# nothing\n\n").empty());
}

TEST(ScenarioFile, LoadAndParseThroughCli) {
  const std::string path = ::testing::TempDir() + "/adattl_scenario_test.scenario";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("policy = PRR2-TTL/K\nheterogeneity = 65\nreplications = 4\n", f);
  std::fclose(f);

  const CliOptions opt = parse_cli({"--config=" + path});
  std::remove(path.c_str());
  EXPECT_EQ(opt.config.policy, "PRR2-TTL/K");
  EXPECT_NEAR(opt.config.cluster.heterogeneity_percent(), 65.0, 1e-9);
  EXPECT_EQ(opt.replications, 4);
}

TEST(ScenarioFile, CommandLineOverridesFile) {
  const std::string path = ::testing::TempDir() + "/adattl_scenario_override.scenario";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("policy = RR\nseed = 1\n", f);
  std::fclose(f);

  const CliOptions opt = parse_cli({"--config=" + path, "--policy=DAL"});
  std::remove(path.c_str());
  EXPECT_EQ(opt.config.policy, "DAL");
  EXPECT_EQ(opt.config.seed, 1u);
}

TEST(ScenarioFile, MissingFileThrows) {
  EXPECT_THROW(parse_cli({"--config=/nonexistent/nope.scenario"}), std::runtime_error);
  EXPECT_THROW(parse_cli({"--config="}), std::invalid_argument);
}

TEST(ScenarioFile, NestedConfigRejected) {
  const std::string path = ::testing::TempDir() + "/adattl_scenario_nested.scenario";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("config = other.scenario\n", f);
  std::fclose(f);
  EXPECT_THROW(parse_cli({"--config=" + path}), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(ScenarioFile, ShippedScenariosParse) {
  // The scenarios/ directory must stay valid; run from the repo root or
  // build tree. Skip silently if the files are not reachable from cwd.
  for (const char* rel : {"scenarios/paper_default.scenario",
                          "../scenarios/paper_default.scenario",
                          "../../scenarios/paper_default.scenario"}) {
    std::FILE* f = std::fopen(rel, "r");
    if (!f) continue;
    std::fclose(f);
    const CliOptions opt = parse_cli({std::string("--config=") + rel});
    EXPECT_EQ(opt.config.policy, "DRR2-TTL/S_K");
    return;
  }
  GTEST_SKIP() << "scenario files not reachable from test cwd";
}

}  // namespace
}  // namespace adattl::experiment
