#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace adattl::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator s;
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
}

TEST(Simulator, RunsEventsAndAdvancesClock) {
  Simulator s;
  std::vector<double> times;
  s.at(1.0, [&] { times.push_back(s.now()); });
  s.at(2.0, [&] { times.push_back(s.now()); });
  EXPECT_EQ(s.run(), 2u);
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
}

TEST(Simulator, AfterSchedulesRelativeToNow) {
  Simulator s;
  double fired_at = -1;
  s.at(5.0, [&] { s.after(2.5, [&] { fired_at = s.now(); }); });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator s;
  s.at(10.0, [] {});
  s.run();
  EXPECT_THROW(s.at(5.0, [] {}), std::invalid_argument);
  EXPECT_THROW(s.after(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator s;
  int fired = 0;
  s.at(1.0, [&] { ++fired; });
  s.at(2.0, [&] { ++fired; });
  s.at(3.0, [&] { ++fired; });
  EXPECT_EQ(s.run_until(2.0), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(s.now(), 2.0);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Simulator, RunUntilIncludesEventsExactlyAtHorizon) {
  Simulator s;
  bool fired = false;
  s.at(2.0, [&] { fired = true; });
  s.run_until(2.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, RunUntilAdvancesClockWhenQueueDrainsEarly) {
  Simulator s;
  s.at(1.0, [] {});
  s.run_until(100.0);
  EXPECT_DOUBLE_EQ(s.now(), 100.0);
}

TEST(Simulator, CancelPendingEvent) {
  Simulator s;
  bool fired = false;
  EventHandle h = s.at(1.0, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(h));
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator s;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 100) s.after(1.0, step);
  };
  s.at(0.0, step);
  s.run();
  EXPECT_EQ(chain, 100);
  EXPECT_DOUBLE_EQ(s.now(), 99.0);
}

TEST(Simulator, CountsDispatchedEvents) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.at(static_cast<double>(i), [] {});
  s.run();
  EXPECT_EQ(s.events_dispatched(), 7u);
}

}  // namespace
}  // namespace adattl::sim
