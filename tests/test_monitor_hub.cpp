#include "web/monitor_hub.h"

#include <gtest/gtest.h>

namespace adattl::web {
namespace {

class MonitorHubTest : public ::testing::Test {
 protected:
  MonitorHubTest() : rng(42), cluster(simulator, spec(), 4, rng) {}

  static ClusterSpec spec() {
    ClusterSpec s;
    s.relative = {1.0, 0.5};
    s.total_capacity_hits_per_sec = 150.0;  // capacities 100 and 50
    return s;
  }

  sim::Simulator simulator;
  sim::RngStream rng;
  Cluster cluster;
};

TEST_F(MonitorHubTest, TicksAtTheConfiguredInterval) {
  MonitorHub hub(simulator, cluster, 8.0);
  std::vector<double> tick_times;
  hub.add_observer([&](sim::SimTime now, const std::vector<double>&) {
    tick_times.push_back(now);
  });
  hub.start();
  simulator.run_until(40.0);
  EXPECT_EQ(tick_times, (std::vector<double>{8, 16, 24, 32, 40}));
}

TEST_F(MonitorHubTest, IdleServersReportZeroUtilization) {
  MonitorHub hub(simulator, cluster, 8.0);
  std::vector<double> last;
  hub.add_observer([&](sim::SimTime, const std::vector<double>& u) { last = u; });
  hub.start();
  simulator.run_until(8.0);
  ASSERT_EQ(last.size(), 2u);
  EXPECT_DOUBLE_EQ(last[0], 0.0);
  EXPECT_DOUBLE_EQ(last[1], 0.0);
}

TEST_F(MonitorHubTest, SaturatedServerReportsFullUtilization) {
  // Swamp server 1 (capacity 50 hits/s) with far more work than one window.
  for (int i = 0; i < 200; ++i) cluster.server(1).submit_page(PageRequest{0, 10, nullptr});
  MonitorHub hub(simulator, cluster, 8.0);
  std::vector<double> last;
  hub.add_observer([&](sim::SimTime, const std::vector<double>& u) { last = u; });
  hub.start();
  simulator.run_until(8.0);
  EXPECT_NEAR(last[1], 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(last[0], 0.0);
}

TEST_F(MonitorHubTest, UtilizationIsPerWindowNotCumulative) {
  // Busy in the first window only; the second window must read ~0.
  for (int i = 0; i < 20; ++i) cluster.server(0).submit_page(PageRequest{0, 10, nullptr});
  MonitorHub hub(simulator, cluster, 8.0);
  std::vector<std::vector<double>> windows;
  hub.add_observer([&](sim::SimTime, const std::vector<double>& u) { windows.push_back(u); });
  hub.start();
  simulator.run_until(16.0);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_GT(windows[0][0], 0.1);
  EXPECT_LT(windows[1][0], 0.05);
}

TEST_F(MonitorHubTest, MultipleObserversAllNotified) {
  MonitorHub hub(simulator, cluster, 4.0);
  int calls_a = 0, calls_b = 0;
  hub.add_observer([&](sim::SimTime, const std::vector<double>&) { ++calls_a; });
  hub.add_observer([&](sim::SimTime, const std::vector<double>&) { ++calls_b; });
  hub.start();
  simulator.run_until(12.0);
  EXPECT_EQ(calls_a, 3);
  EXPECT_EQ(calls_b, 3);
}

TEST_F(MonitorHubTest, FullObserverReceivesQueueLengths) {
  MonitorHub hub(simulator, cluster, 8.0);
  std::vector<std::size_t> queues;
  hub.add_full_observer([&](sim::SimTime, const std::vector<double>&,
                            const std::vector<std::size_t>& q) { queues = q; });
  // Pause server 1 so its queue is still visible at the tick.
  cluster.server(1).set_paused(true);
  for (int i = 0; i < 3; ++i) cluster.server(1).submit_page(PageRequest{0, 10, nullptr});
  hub.start();
  simulator.run_until(8.0);
  ASSERT_EQ(queues.size(), 2u);
  EXPECT_EQ(queues[0], 0u);
  EXPECT_EQ(queues[1], 3u);
  EXPECT_EQ(hub.last_queue_lengths()[1], 3u);
}

TEST_F(MonitorHubTest, PlainAndFullObserversCoexist) {
  MonitorHub hub(simulator, cluster, 8.0);
  int plain = 0, full = 0;
  hub.add_observer([&](sim::SimTime, const std::vector<double>&) { ++plain; });
  hub.add_full_observer(
      [&](sim::SimTime, const std::vector<double>&, const std::vector<std::size_t>&) {
        ++full;
      });
  hub.start();
  simulator.run_until(24.0);
  EXPECT_EQ(plain, 3);
  EXPECT_EQ(full, 3);
}

TEST_F(MonitorHubTest, RejectsNonPositiveInterval) {
  EXPECT_THROW(MonitorHub(simulator, cluster, 0.0), std::invalid_argument);
}

TEST_F(MonitorHubTest, LastUtilizationsExposed) {
  MonitorHub hub(simulator, cluster, 8.0);
  hub.start();
  simulator.run_until(8.0);
  EXPECT_EQ(hub.last_utilizations().size(), 2u);
}

}  // namespace
}  // namespace adattl::web
