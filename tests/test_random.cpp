#include "sim/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace adattl::sim {
namespace {

TEST(RngStream, DeterministicForFixedSeed) {
  RngStream a(123);
  RngStream b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngStream, DifferentSeedsDiffer) {
  RngStream a(1);
  RngStream b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngStream, SplitChildrenAreIndependentAndDeterministic) {
  RngStream parent1(7);
  RngStream parent2(7);
  RngStream c1a = parent1.split();
  RngStream c1b = parent1.split();
  RngStream c2a = parent2.split();
  // Same parent, same split index -> same stream.
  for (int i = 0; i < 32; ++i) EXPECT_EQ(c1a.next_u64(), c2a.next_u64());
  // Different split index -> different stream.
  RngStream c1a2 = RngStream(7).split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1b.next_u64() == c1a2.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngStream, SplitDoesNotAdvanceParent) {
  RngStream a(99);
  RngStream b(99);
  (void)a.split();
  (void)a.split();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngStream, NextDoubleInUnitInterval) {
  RngStream r(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngStream, UniformRespectsBounds) {
  RngStream r(6);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(2.0, 3.5);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.5);
  }
  EXPECT_THROW(r.uniform(3.0, 2.0), std::invalid_argument);
}

TEST(RngStream, UniformIntCoversInclusiveRangeUniformly) {
  RngStream r(8);
  std::vector<int> counts(11, 0);  // values 5..15
  const int n = 110000;
  for (int i = 0; i < n; ++i) {
    const auto v = r.uniform_int(5, 15);
    ASSERT_GE(v, 5);
    ASSERT_LE(v, 15);
    counts[static_cast<std::size_t>(v - 5)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, n / 11.0, 5.0 * std::sqrt(n / 11.0));
  }
}

TEST(RngStream, UniformIntSingleton) {
  RngStream r(9);
  EXPECT_EQ(r.uniform_int(3, 3), 3);
  EXPECT_THROW(r.uniform_int(4, 3), std::invalid_argument);
}

TEST(RngStream, ExponentialMeanMatches) {
  RngStream r(10);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(15.0);
  EXPECT_NEAR(sum / n, 15.0, 0.25);
  EXPECT_THROW(r.exponential(0.0), std::invalid_argument);
}

TEST(RngStream, ExponentialIsPositive) {
  RngStream r(11);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(r.exponential(1.0), 0.0);
}

TEST(RngStream, ErlangMeanAndVarianceMatch) {
  RngStream r(12);
  const int k = 10;
  const double mean_total = 2.0;
  const int n = 100000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.erlang(k, mean_total);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, mean_total, 0.02);
  // Var of Erlang(k) with mean m is m^2 / k.
  EXPECT_NEAR(var, mean_total * mean_total / k, 0.03);
  EXPECT_THROW(r.erlang(0, 1.0), std::invalid_argument);
}

TEST(RngStream, GeometricMin1MeanAndSupport) {
  RngStream r(13);
  const int n = 200000;
  long long sum = 0;
  for (int i = 0; i < n; ++i) {
    const int x = r.geometric_min1(20.0);
    ASSERT_GE(x, 1);
    sum += x;
  }
  EXPECT_NEAR(static_cast<double>(sum) / n, 20.0, 0.4);
  EXPECT_EQ(r.geometric_min1(1.0), 1);
  EXPECT_THROW(r.geometric_min1(0.5), std::invalid_argument);
}

TEST(RngStream, BernoulliFrequencyMatches) {
  RngStream r(14);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (r.bernoulli(0.35)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(n), 0.35, 0.01);
  EXPECT_FALSE(r.bernoulli(0.0));
  EXPECT_TRUE(r.bernoulli(1.0));
}

TEST(Zipf, PmfIsNormalizedAndDecreasing) {
  ZipfDistribution z(20, 1.0);
  double sum = 0.0;
  for (int i = 1; i <= 20; ++i) {
    sum += z.pmf(i);
    if (i > 1) {
      EXPECT_LT(z.pmf(i), z.pmf(i - 1));
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Zipf, PureZipfRatioIsRank) {
  ZipfDistribution z(50, 1.0);
  for (int i = 2; i <= 50; i += 7) {
    EXPECT_NEAR(z.pmf(1) / z.pmf(i), static_cast<double>(i), 1e-9);
  }
}

TEST(Zipf, ThetaZeroIsUniform) {
  ZipfDistribution z(10, 0.0);
  for (int i = 1; i <= 10; ++i) EXPECT_NEAR(z.pmf(i), 0.1, 1e-12);
}

TEST(Zipf, SampleFrequenciesMatchPmf) {
  ZipfDistribution z(20, 1.0);
  RngStream r(15);
  std::vector<int> counts(20, 0);
  const int n = 400000;
  for (int i = 0; i < n; ++i) counts[static_cast<std::size_t>(z.sample(r) - 1)]++;
  for (int i = 1; i <= 20; ++i) {
    const double expect = n * z.pmf(i);
    EXPECT_NEAR(counts[static_cast<std::size_t>(i - 1)], expect, 5.0 * std::sqrt(expect) + 5);
  }
}

TEST(Zipf, RejectsBadArguments) {
  EXPECT_THROW(ZipfDistribution(0), std::invalid_argument);
}

TEST(Apportion, SumsExactlyToTotal) {
  ZipfDistribution z(20, 1.0);
  const std::vector<int> out = apportion_largest_remainder(500, z.probabilities());
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 500);
}

TEST(Apportion, ProportionsTrackWeights) {
  ZipfDistribution z(20, 1.0);
  const std::vector<int> out = apportion_largest_remainder(500, z.probabilities());
  for (int i = 0; i < 20; ++i) {
    EXPECT_NEAR(out[static_cast<std::size_t>(i)], 500.0 * z.pmf(i + 1), 1.0);
  }
  // Rank 1 of a 20-domain pure Zipf holds ~27.8% of the clients.
  EXPECT_GE(out[0], 135);
  EXPECT_LE(out[0], 143);
}

TEST(Apportion, UniformWeightsSplitEvenly) {
  const std::vector<int> out =
      apportion_largest_remainder(10, std::vector<double>(5, 1.0));
  for (int c : out) EXPECT_EQ(c, 2);
}

TEST(Apportion, RejectsDegenerateInput) {
  EXPECT_THROW(apportion_largest_remainder(10, {}), std::invalid_argument);
  EXPECT_THROW(apportion_largest_remainder(10, {0.0, 0.0}), std::invalid_argument);
}

}  // namespace
}  // namespace adattl::sim
