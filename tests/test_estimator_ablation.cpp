// Estimator-ablation golden test: drive the shipped flash-crowd scenario
// through all four estimator kinds and measure, in collection windows, how
// long each needs after the 8x spike before the DNS's domain model carries
// the new hot-spot share. The predictive estimators (Holt-Winters, AR) must
// reconverge strictly faster than plain EWMA — the claim the estimator
// family exists to support.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "experiment/param_registry.h"
#include "experiment/site.h"

namespace adattl::experiment {
namespace {

// The shipped scenario's flash crowd: domain 14 turns 8x hot at t = 6000 s.
constexpr int kHotDomain = 14;
constexpr double kSpikeAt = 6000.0;
constexpr double kSpikeFactor = 8.0;
// A server outage starts at t = 9000 s; stay clear of it so the ablation
// isolates estimator dynamics.
constexpr int kMaxWindows = 80;  // 6000 + 80 * 32 = 8560 < 9000

// Locates scenarios/flash_crowd_outage.scenario from typical test cwds
// (build/, build/tests/, repo root). Empty string when unreachable.
std::string find_scenario() {
  for (const char* rel : {"scenarios/flash_crowd_outage.scenario",
                          "../scenarios/flash_crowd_outage.scenario",
                          "../../scenarios/flash_crowd_outage.scenario"}) {
    std::FILE* f = std::fopen(rel, "r");
    if (!f) continue;
    std::fclose(f);
    return rel;
  }
  return "";
}

// Steps one Site through the spike in collection-window increments and
// returns the number of windows until the scheduler-visible share of the
// hot domain has closed `closure` of the gap to its true post-spike value.
// kMaxWindows + 1 = never converged.
int windows_to_reconverge(const SimulationConfig& cfg, double closure) {
  Site site(cfg);
  const std::vector<double> w = site.domain_set().true_weights();
  double total = 0.0;
  for (double v : w) total += v;
  const double hot = w[static_cast<std::size_t>(kHotDomain)];
  const double pre_share = hot / total;
  const double post_share = kSpikeFactor * hot / (total + (kSpikeFactor - 1.0) * hot);

  site.simulator().run_until(kSpikeAt);
  const double window_sec =
      cfg.monitor_interval_sec * cfg.estimator_collect_every_ticks;
  const double tol = (1.0 - closure) * (post_share - pre_share);
  for (int k = 1; k <= kMaxWindows; ++k) {
    site.simulator().run_until(kSpikeAt + k * window_sec);
    if (std::abs(site.domain_model().share(kHotDomain) - post_share) <= tol) {
      return k;
    }
  }
  return kMaxWindows + 1;
}

TEST(EstimatorAblation, PredictiveEstimatorsReconvergeFasterOnFlashCrowd) {
  const std::string scenario = find_scenario();
  if (scenario.empty()) GTEST_SKIP() << "scenario files not reachable from test cwd";

  const auto config_for = [&scenario](const std::string& kind) {
    return ParamRegistry::instance()
        .resolve({"--config=" + scenario, "--estimator=" + kind})
        .options.config;
  };

  const SimulationConfig base = config_for("ewma");
  ASSERT_FALSE(base.oracle_weights) << "scenario must run measured";
  ASSERT_EQ(base.estimator_kind, EstimatorKind::kEwma);
  ASSERT_EQ(config_for("window").estimator_kind, EstimatorKind::kSlidingWindow);
  ASSERT_EQ(config_for("holt").estimator_kind, EstimatorKind::kHoltWinters);
  ASSERT_EQ(config_for("ar").estimator_kind, EstimatorKind::kAr);
  bool spike_present = false;
  for (const auto& shift : base.rate_shifts) {
    spike_present = spike_present || (shift.at_sec == kSpikeAt &&
                                      shift.domain == kHotDomain &&
                                      shift.rate_factor == kSpikeFactor);
  }
  ASSERT_TRUE(spike_present) << "scenario no longer carries the 6000:14:8 shift";

  constexpr double kClosure = 0.85;  // converged = 85% of the gap closed
  const int ewma = windows_to_reconverge(base, kClosure);
  const int window = windows_to_reconverge(config_for("window"), kClosure);
  const int holt = windows_to_reconverge(config_for("holt"), kClosure);
  const int ar = windows_to_reconverge(config_for("ar"), kClosure);

  // All four must actually reconverge inside the pre-outage horizon.
  EXPECT_LE(ewma, kMaxWindows);
  EXPECT_LE(window, kMaxWindows);
  EXPECT_LE(holt, kMaxWindows);
  EXPECT_LE(ar, kMaxWindows);

  // The headline claim: prediction beats pure smoothing, strictly.
  EXPECT_LT(holt, ewma) << "ewma=" << ewma << " window=" << window
                        << " holt=" << holt << " ar=" << ar;
  EXPECT_LT(ar, ewma) << "ewma=" << ewma << " window=" << window
                      << " holt=" << holt << " ar=" << ar;
  // And the spike is hard enough that EWMA needs several windows — without
  // this the two assertions above would be vacuous.
  EXPECT_GT(ewma, 2);
}

TEST(EstimatorAblation, ScenarioRunsEndToEndUnderEachEstimator) {
  const std::string scenario = find_scenario();
  if (scenario.empty()) GTEST_SKIP() << "scenario files not reachable from test cwd";

  // A short full run (warm-up + measurement + outage machinery) per kind:
  // the ablation above never crosses t = 9000, so this is the smoke proof
  // that every estimator survives the complete scenario, outage included.
  for (const std::string kind : {"ewma", "window", "holt", "ar"}) {
    const SimulationConfig cfg =
        ParamRegistry::instance()
            .resolve({"--config=" + scenario, "--estimator=" + kind,
                      "--duration=10200", "--warmup=300"})
            .options.config;
    Site site(cfg);
    const RunResult r = site.run();
    EXPECT_GT(r.total_pages, 0u) << kind;
    EXPECT_GT(r.events_dispatched, 0u) << kind;
    EXPECT_GT(r.mean_max_utilization, 0.0) << kind;
  }
}

}  // namespace
}  // namespace adattl::experiment
