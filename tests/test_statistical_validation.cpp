// Statistical validation of the simulation against queueing-theory and
// model-level expectations — the checks that give the reproduced figures
// their credibility.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "experiment/runner.h"
#include "experiment/site.h"
#include "experiment/trace.h"
#include "sim/random.h"

namespace adattl {
namespace {

TEST(StatValidation, SingleServerUtilizationMatchesOfferedLoad) {
  // One server, one domain, closed-loop clients: utilization must track
  // N * E[page] / (E[think] + E[response]) / C within tight tolerance.
  experiment::SimulationConfig cfg;
  cfg.cluster.relative = {1.0};
  cfg.cluster.total_capacity_hits_per_sec = 100.0;
  cfg.num_domains = 2;  // perturbation machinery needs >= 2; domain 1 idle-ish
  cfg.total_clients = 6;
  cfg.mean_think_sec = 10.0;
  cfg.policy = "RR";
  cfg.warmup_sec = 200.0;
  cfg.duration_sec = 20000.0;
  cfg.seed = 3;
  experiment::Site site(cfg);
  const experiment::RunResult r = site.run();
  // Response per page ~ M/G/1-ish; measured directly, so use it.
  const double cycle = cfg.mean_think_sec + r.mean_page_response_sec;
  const double expected = 6 * 10.0 / cycle / 100.0;
  EXPECT_NEAR(r.aggregate_utilization, expected, 0.02);
}

TEST(StatValidation, ErlangServiceMatchesMG1QueueingShape) {
  // At utilization rho with Erlang-ish service, mean response must exceed
  // mean service but stay within the M/G/1 ballpark (no pathological
  // queue buildup in the service loop).
  experiment::SimulationConfig cfg;
  cfg.cluster.relative = {1.0};
  cfg.cluster.total_capacity_hits_per_sec = 100.0;
  cfg.num_domains = 2;
  cfg.total_clients = 10;
  cfg.mean_think_sec = 15.0;  // rho ~ 10*10/15.? /100 ~ 0.64
  cfg.policy = "RR";
  cfg.warmup_sec = 200.0;
  cfg.duration_sec = 20000.0;
  cfg.seed = 4;
  experiment::Site site(cfg);
  const experiment::RunResult r = site.run();
  const double mean_service = 10.0 / 100.0;  // 10 hits at 100 hits/s
  EXPECT_GT(r.mean_page_response_sec, mean_service);
  EXPECT_LT(r.mean_page_response_sec, 6.0 * mean_service);
}

TEST(StatValidation, IdealWorkloadServerHitSharesTrackCapacity) {
  // Under the Ideal scenario (uniform domains + PRR) each server's served
  // hit share must converge to its capacity share.
  experiment::SimulationConfig cfg;
  cfg.cluster = web::table2_cluster(50);
  cfg.uniform_clients = true;
  cfg.policy = "PRR-TTL/1";
  cfg.warmup_sec = 200.0;
  cfg.duration_sec = 14400.0;
  cfg.seed = 5;
  experiment::Site site(cfg);
  site.run();
  std::uint64_t total = 0;
  for (int s = 0; s < site.cluster().size(); ++s) {
    total += site.cluster().server(s).hits_served();
  }
  const std::vector<double>& cap = site.cluster().capacities();
  const double cap_total = std::accumulate(cap.begin(), cap.end(), 0.0);
  for (int s = 0; s < site.cluster().size(); ++s) {
    const double share =
        static_cast<double>(site.cluster().server(s).hits_served()) / total;
    EXPECT_NEAR(share, cap[static_cast<std::size_t>(s)] / cap_total, 0.035) << "server " << s;
  }
}

TEST(StatValidation, ZipfDomainHitSharesMatchTheory) {
  // The per-domain hit counters aggregated over servers must reproduce the
  // Zipf shares (clients/think identical across domains).
  experiment::SimulationConfig cfg;
  cfg.policy = "DRR2-TTL/S_K";
  cfg.warmup_sec = 200.0;
  cfg.duration_sec = 10000.0;
  cfg.seed = 6;
  experiment::Site site(cfg);
  site.run();
  std::vector<double> hits(20, 0.0);
  double total = 0.0;
  for (int s = 0; s < site.cluster().size(); ++s) {
    const auto& per_domain = site.cluster().server(s).lifetime_domain_hits();
    for (int d = 0; d < 20; ++d) {
      hits[static_cast<std::size_t>(d)] += static_cast<double>(per_domain[static_cast<std::size_t>(d)]);
      total += static_cast<double>(per_domain[static_cast<std::size_t>(d)]);
    }
  }
  const sim::ZipfDistribution zipf(20, 1.0);
  // Integral client allocation quantizes the shares; compare against the
  // allocation-implied share, not the continuous pmf.
  const std::vector<int> alloc = sim::apportion_largest_remainder(500, zipf.probabilities());
  for (int d = 0; d < 20; ++d) {
    EXPECT_NEAR(hits[static_cast<std::size_t>(d)] / total, alloc[static_cast<std::size_t>(d)] / 500.0, 0.012)
        << "domain " << d;
  }
}

TEST(StatValidation, AddressRequestRateMatchesCalibrationTheory) {
  // For constant TTL: each domain's NS re-resolves once per (TTL + the
  // gap until the next session arrival). With 20 active domains and lazy
  // expiry the measured rate must come in at or below K/TTL and above
  // half of it.
  experiment::SimulationConfig cfg;
  cfg.policy = "PRR-TTL/1";
  cfg.warmup_sec = 200.0;
  cfg.duration_sec = 14400.0;
  cfg.seed = 7;
  experiment::Site site(cfg);
  const experiment::RunResult r = site.run();
  const double upper = 20.0 / 240.0;
  EXPECT_LE(r.address_request_rate, upper * 1.02);
  EXPECT_GE(r.address_request_rate, upper * 0.5);
}

TEST(StatValidation, WithinRunCiIsTightForLongRuns) {
  experiment::SimulationConfig cfg;
  cfg.policy = "DRR2-TTL/S_K";
  cfg.warmup_sec = 600.0;
  cfg.duration_sec = 18000.0;  // the paper's 5 hours
  cfg.seed = 8;
  const experiment::RunResult r = experiment::Site(cfg).run();
  // Paper: "95% confidence interval within 4% of the mean". Batch means
  // over 10-minute batches of a 5-hour run should land in that ballpark.
  EXPECT_GT(r.max_util_ci_relative, 0.0);
  EXPECT_LT(r.max_util_ci_relative, 0.08);
}

TEST(StatValidation, ConfiguredWarmupCoversMserEstimate) {
  // Record the max-utilization series from t = 0 (no warm-up discard) and
  // let MSER-5 find the transient. Our default 600 s (75 ticks) must be at
  // least what the data itself asks for.
  experiment::SimulationConfig cfg;
  cfg.policy = "DRR2-TTL/S_K";
  cfg.warmup_sec = 0.0;
  cfg.duration_sec = 10000.0;
  cfg.seed = 10;
  experiment::Site site(cfg);
  experiment::TraceRecorder rec;
  rec.attach(site.monitor());
  site.run();
  std::vector<double> series;
  series.reserve(rec.samples().size());
  for (const auto& s : rec.samples()) series.push_back(s.max_utilization);
  const std::size_t suggested_ticks = sim::mser5_truncation(series);
  EXPECT_LE(suggested_ticks * 8.0, 600.0)
      << "the max-util series wants more warm-up than the configured default";
}

TEST(StatValidation, ReplicationVarianceIsSmallRelativeToPolicyGaps) {
  // The figure claims rest on policy gaps exceeding replication noise.
  experiment::SimulationConfig cfg;
  cfg.cluster = web::table2_cluster(35);
  cfg.warmup_sec = 300.0;
  cfg.duration_sec = 7200.0;
  cfg.seed = 9;
  const experiment::ReplicatedResult rr = experiment::run_replications(
      [&] { auto c = cfg; c.policy = "RR"; return c; }(), 3);
  const experiment::ReplicatedResult adaptive = experiment::run_replications(
      [&] { auto c = cfg; c.policy = "DRR2-TTL/S_K"; return c; }(), 3);
  const sim::MeanCi a = rr.prob_below(0.98);
  const sim::MeanCi b = adaptive.prob_below(0.98);
  EXPECT_GT(b.mean - a.mean, a.halfwidth + b.halfwidth);
}

}  // namespace
}  // namespace adattl
