// Golden equivalence: the DecisionContext refactor must not change a
// single scheduling decision. The digests below were captured from the
// pre-refactor tree (every policy still took (domain, eligible) directly)
// over a full serial run AND a domain-sharded run per policy; the digest
// folds every deterministic RunResult aggregate plus — serially — the
// scheduler's per-server assignment counters, so any divergence in any
// decision, event ordering or RNG consumption shows up.
//
// If a digest here ever needs to change, the change is by definition a
// behavioral change to the simulation — justify it in the commit message
// and re-capture, never "fix the test" silently.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>

#include "experiment/config.h"
#include "experiment/sharded_site.h"
#include "experiment/site.h"

namespace adattl {
namespace {

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t fnv1a_d(std::uint64_t h, double d) {
  return fnv1a(h, std::bit_cast<std::uint64_t>(d));
}

// Short heterogeneous-geo run: big enough that every policy exercises its
// full decision loop (alarms fire, TTL adaptation runs, geo RTT charged),
// small enough that ten policies x two modes stay in test-suite budget.
experiment::SimulationConfig base_config(const std::string& policy) {
  experiment::SimulationConfig c;
  c.policy = policy;
  c.num_domains = 20;
  c.total_clients = 200;
  c.warmup_sec = 60.0;
  c.duration_sec = 600.0;
  c.seed = 4242;
  c.geo_regions = 3;
  return c;
}

std::uint64_t digest_result(const experiment::RunResult& r) {
  std::uint64_t h = 1469598103934665603ULL;
  h = fnv1a(h, r.total_pages);
  h = fnv1a(h, r.total_hits);
  h = fnv1a(h, r.authoritative_queries);
  h = fnv1a(h, r.events_dispatched);
  h = fnv1a(h, r.alarm_signals);
  h = fnv1a_d(h, r.mean_max_utilization);
  h = fnv1a_d(h, r.mean_page_response_sec);
  h = fnv1a_d(h, r.mean_ttl);
  h = fnv1a_d(h, r.mean_network_rtt_sec);
  h = fnv1a_d(h, r.aggregate_utilization);
  for (double u : r.mean_server_util) h = fnv1a_d(h, u);
  return h;
}

std::uint64_t serial_digest(const std::string& policy) {
  experiment::Site site(base_config(policy));
  const experiment::RunResult r = site.run();
  std::uint64_t h = digest_result(r);
  for (std::uint64_t a : site.scheduler().assignments()) h = fnv1a(h, a);
  return h;
}

std::uint64_t sharded_digest(const std::string& policy) {
  experiment::SimulationConfig c = base_config(policy);
  c.shard_domains = true;
  c.shard_count = 3;
  experiment::ShardedSite site(c);
  return digest_result(site.run());
}

struct Golden {
  const char* policy;
  std::uint64_t serial;
  std::uint64_t sharded;
};

// Captured 2026-08-08 from commit c88e709 (pre-DecisionContext main) with
// the harness mirrored above. DAL and MRL sharing a sharded digest is the
// captured truth: under the sharded split both degenerate to the same
// decision stream at this scale.
constexpr Golden kGolden[] = {
    {"RR", 0x94d275d762874389ULL, 0xe5aeac6ab492e203ULL},
    {"RR2", 0x112ea85c011b9504ULL, 0x2d072cd065eb55e2ULL},
    {"RR3", 0x7833fe211573b952ULL, 0xbe7c075de47e2bf3ULL},
    {"WRR", 0x0c2b9a25e91a178aULL, 0x8ebd5e408211d2e4ULL},
    {"PRR-TTL/2", 0xa1ea8e1e0a010e8fULL, 0xf9af38bb9907e6b3ULL},
    {"PRR2-TTL/K", 0xf94596fc079a6605ULL, 0x9c969908b92f8600ULL},
    {"DAL", 0x58a8b14ad58803eeULL, 0x7646f6dfc1ea627dULL},
    {"MRL", 0x854accd64fd2e01fULL, 0x7646f6dfc1ea627dULL},
    {"DRR2-TTL/S_K", 0x403c52815996a3f1ULL, 0x852f1659882a9fe7ULL},
    {"GEO-TTL/K", 0x314ea3d84ce4c846ULL, 0xd9abf84fa4a69627ULL},
};

class DecisionGolden : public ::testing::TestWithParam<Golden> {};

TEST_P(DecisionGolden, SerialRunIsBitIdenticalToPreRefactorMain) {
  const Golden& g = GetParam();
  EXPECT_EQ(serial_digest(g.policy), g.serial) << "policy " << g.policy;
}

TEST_P(DecisionGolden, ShardedRunIsBitIdenticalToPreRefactorMain) {
  const Golden& g = GetParam();
  EXPECT_EQ(sharded_digest(g.policy), g.sharded) << "policy " << g.policy;
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, DecisionGolden, ::testing::ValuesIn(kGolden),
                         [](const ::testing::TestParamInfo<Golden>& info) {
                           std::string name = info.param.policy;
                           for (char& ch : name) {
                             if (ch == '-' || ch == '/' || ch == '(' || ch == ')' ||
                                 ch == '.') {
                               ch = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace adattl
