// The parameter-registry contract: every knob is declared exactly once and
// behaves identically through every entry point. Covers the ISSUE 5
// acceptance criteria — per-knob CLI/env/scenario round-trips, the
// defaults < scenario < env < CLI precedence with provenance, --dump-config
// re-parsing to a bit-identical RunResult, strict integer parsing above
// 2^53, boolean negation, and did-you-mean diagnostics.
#include "experiment/param_registry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "experiment/runner.h"

namespace adattl::experiment {
namespace {

/// Removes every registry-bound ADATTL_* variable so ambient CI
/// environments cannot leak into resolution.
void clear_registry_env() {
  for (const ParamSpec& spec : ParamRegistry::instance().specs()) {
    if (!spec.env.empty()) ::unsetenv(spec.env.c_str());
  }
}

/// Canonical serialization of every non-output knob — equal fingerprints
/// mean equal resolved configurations.
std::string fingerprint(const CliOptions& opt) {
  std::string out;
  for (const ParamSpec& spec : ParamRegistry::instance().specs()) {
    if (spec.scope == ParamScope::kOutput) continue;
    out += spec.name + "=";
    if (spec.repeatable) {
      for (const std::string& v : spec.get_list(opt)) out += v + ";";
    } else {
      out += spec.get(opt);
    }
    out += "\n";
  }
  return out;
}

std::string write_temp(const std::string& name, const std::string& text) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::FILE* f = std::fopen(path.c_str(), "w");
  EXPECT_NE(f, nullptr);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return path;
}

void expect_same_run(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.max_util_cdf.cumulative(), b.max_util_cdf.cumulative());
  EXPECT_EQ(a.prob_below_090, b.prob_below_090);
  EXPECT_EQ(a.prob_below_098, b.prob_below_098);
  EXPECT_EQ(a.mean_max_utilization, b.mean_max_utilization);
  EXPECT_EQ(a.max_util_ci_relative, b.max_util_ci_relative);
  EXPECT_EQ(a.mean_server_util, b.mean_server_util);
  EXPECT_EQ(a.aggregate_utilization, b.aggregate_utilization);
  EXPECT_EQ(a.total_pages, b.total_pages);
  EXPECT_EQ(a.total_hits, b.total_hits);
  EXPECT_EQ(a.authoritative_queries, b.authoritative_queries);
  EXPECT_EQ(a.ns_cache_hits, b.ns_cache_hits);
  EXPECT_EQ(a.client_cache_hits, b.client_cache_hits);
  EXPECT_EQ(a.address_request_rate, b.address_request_rate);
  EXPECT_EQ(a.dns_controlled_fraction, b.dns_controlled_fraction);
  EXPECT_EQ(a.mean_ttl, b.mean_ttl);
  EXPECT_EQ(a.alarm_signals, b.alarm_signals);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.mean_page_response_sec, b.mean_page_response_sec);
  EXPECT_EQ(a.per_server_response_sec, b.per_server_response_sec);
  EXPECT_EQ(a.response_p50_sec, b.response_p50_sec);
  EXPECT_EQ(a.response_p95_sec, b.response_p95_sec);
  EXPECT_EQ(a.response_p99_sec, b.response_p99_sec);
  EXPECT_EQ(a.mean_network_rtt_sec, b.mean_network_rtt_sec);
  EXPECT_EQ(a.redirected_pages, b.redirected_pages);
  EXPECT_EQ(a.redirected_fraction, b.redirected_fraction);
  EXPECT_EQ(a.failed_requests, b.failed_requests);
  EXPECT_EQ(a.lost_pages, b.lost_pages);
  EXPECT_EQ(a.lost_hits, b.lost_hits);
  EXPECT_EQ(a.dns_outage_sec, b.dns_outage_sec);
  EXPECT_EQ(a.unavailability_fraction, b.unavailability_fraction);
  // `profile` is wall-clock and intentionally excluded.
}

/// One representative non-default value per knob, chosen so each knob
/// resolved in isolation still validates.
const std::map<std::string, std::string>& sample_values() {
  static const std::map<std::string, std::string> samples = {
      {"domains", "12"},
      {"clients", "321"},
      {"think", "9.5"},
      {"zipf-theta", "0.7"},
      {"uniform", "true"},
      {"error", "25"},
      {"scale", "4"},
      {"shard-domains", "true"},
      {"shard-count", "3"},
      {"relative", "1,0.5"},
      {"total-capacity", "750"},
      {"policy", "DAL"},
      {"ttl", "120"},
      {"class-threshold", "0.08"},
      {"calibration", "false"},
      {"alarm", "false"},
      {"alarm-threshold", "0.8"},
      {"queue-alarm", "40"},
      {"monitor-interval", "4"},
      {"measured", "true"},
      {"estimator", "holt"},
      {"estimator-smoothing", "0.5"},
      {"estimator-windows", "5"},
      {"estimator-trend", "0.35"},
      {"estimator-ar-order", "4"},
      {"estimator-collect-ticks", "2"},
      {"cold-start", "true"},
      {"min-ttl", "60"},
      {"ns-per-domain", "2"},
      {"client-cache", "true"},
      {"geo-regions", "3"},
      {"geo-intra", "0.01"},
      {"geo-inter", "0.2"},
      {"redirect-wait", "1.5"},
      {"redirect-delay", "0.25"},
      {"redirect", "true"},
      {"shift", "600:3:5"},
      {"trace-point", "900:4:2.5"},
      {"outage", "100:60:2"},
      {"crash", "900:60:2"},
      {"degrade", "900:60:1:0.5"},
      {"pause", "100:50:3"},
      {"dns-outage", "1000:120"},
      {"scale-up", "500:2"},
      {"scale-down", "700:3"},
      {"resize", "800:1:1.5"},
      {"autoscale", "true"},
      {"autoscale-high", "0.8"},
      {"autoscale-low", "0.25"},
      {"autoscale-ticks", "2"},
      {"autoscale-min", "2"},
      {"retry-delay", "2.5"},
      {"ns-retry-backoff", "0.5"},
      {"ns-retry-max-backoff", "32"},
      {"dnsd-port", "5399"},
      {"dnsd-shards", "4"},
      {"dnsd-batch", "8"},
      {"dnsd-ecs", "false"},
      {"metrics", "true"},
      {"event-trace", "true"},
      {"trace-capacity", "1024"},
      {"duration", "1234"},
      {"warmup", "111"},
      {"seed", "9007199254740993"},  // 2^53 + 1: must survive exactly
      {"replications", "4"},
  };
  return samples;
}

TEST(ParamRegistry, EveryKnobRoundTripsThroughCliEnvAndScenario) {
  clear_registry_env();
  const ParamRegistry& registry = ParamRegistry::instance();
  for (const ParamSpec& spec : registry.specs()) {
    if (spec.scope == ParamScope::kOutput) continue;
    const auto sample = sample_values().find(spec.name);
    // Every dumped knob must have a sample so new knobs cannot silently
    // skip round-trip coverage. `heterogeneity`, `faults` and `jobs` are
    // covered by other tests (preset expansion, fault files, parallelism).
    if (sample == sample_values().end()) {
      EXPECT_FALSE(spec.in_dump) << "knob '" << spec.name << "' needs a sample value here";
      continue;
    }
    const std::string& value = sample->second;

    const CliOptions via_cli =
        registry.resolve({"--" + spec.name + "=" + value}).options;

    const std::string path = write_temp("adattl_registry_knob.scenario",
                                        spec.name + " = " + value + "\n");
    const CliOptions via_scenario = registry.resolve({"--config=" + path}).options;
    std::remove(path.c_str());

    EXPECT_EQ(fingerprint(via_cli), fingerprint(via_scenario))
        << "CLI vs scenario mismatch for knob '" << spec.name << "'";

    if (!spec.env.empty()) {
      ::setenv(spec.env.c_str(), value.c_str(), 1);
      const CliOptions via_env = registry.resolve({}).options;
      ::unsetenv(spec.env.c_str());
      EXPECT_EQ(fingerprint(via_cli), fingerprint(via_env))
          << "CLI vs env mismatch for knob '" << spec.name << "'";
    }

    // And the resolved value differs from the default, so the round trip
    // actually exercised the setter.
    EXPECT_NE(fingerprint(via_cli), fingerprint(CliOptions{}))
        << "sample for knob '" << spec.name << "' is the default";
  }
}

TEST(ParamRegistry, PrecedenceIsDefaultsScenarioEnvCli) {
  clear_registry_env();
  const ParamRegistry& registry = ParamRegistry::instance();
  const std::string path =
      write_temp("adattl_registry_prec.scenario", "ttl = 100\nseed = 1\nuniform = true\n");

  // Scenario only.
  ConfigResolution r = registry.resolve({"--config=" + path});
  EXPECT_EQ(r.options.config.reference_ttl_sec, 100.0);
  EXPECT_EQ(r.provenance.at("ttl").layer, ParamLayer::kScenario);
  EXPECT_EQ(r.provenance.at("seed").value, "1");
  EXPECT_EQ(r.provenance.count("domains"), 0u);  // defaults carry no entry

  // Env beats scenario.
  ::setenv("ADATTL_TTL", "200", 1);
  r = registry.resolve({"--config=" + path});
  EXPECT_EQ(r.options.config.reference_ttl_sec, 200.0);
  EXPECT_EQ(r.provenance.at("ttl").layer, ParamLayer::kEnv);
  EXPECT_EQ(r.options.config.seed, 1u);  // untouched knob keeps scenario value

  // CLI beats env; --config position on the line does not matter.
  r = registry.resolve({"--ttl=300", "--config=" + path});
  EXPECT_EQ(r.options.config.reference_ttl_sec, 300.0);
  EXPECT_EQ(r.provenance.at("ttl").layer, ParamLayer::kCli);
  EXPECT_EQ(r.provenance.at("ttl").value, "300");
  ::unsetenv("ADATTL_TTL");
  std::remove(path.c_str());
}

TEST(ParamRegistry, MalformedEnvValueNamesTheVariable) {
  clear_registry_env();
  ::setenv("ADATTL_DOMAINS", "twelve", 1);
  try {
    ParamRegistry::instance().resolve({});
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("ADATTL_DOMAINS"), std::string::npos) << e.what();
  }
  ::unsetenv("ADATTL_DOMAINS");
}

TEST(ParamRegistry, DumpConfigRoundTripsToBitIdenticalRunResult) {
  clear_registry_env();
  const ParamRegistry& registry = ParamRegistry::instance();
  const ConfigResolution first = registry.resolve(
      {"--policy=DRR2-TTL/S_K", "--domains=6", "--clients=60", "--duration=120",
       "--warmup=30", "--seed=7", "--measured", "--queue-alarm=30", "--crash=40:20:2",
       "--dns-outage=50:15", "--shift=45:2:3", "--no-calibration"});

  const std::string dump = registry.dump_scenario(first);
  const std::string path = write_temp("adattl_registry_dump.scenario", dump);
  const ConfigResolution second = registry.resolve({"--config=" + path});
  std::remove(path.c_str());

  EXPECT_EQ(fingerprint(first.options), fingerprint(second.options)) << dump;

  const ReplicatedResult a = run_replications(first.options.config, 1);
  const ReplicatedResult b = run_replications(second.options.config, 1);
  ASSERT_EQ(a.runs.size(), 1u);
  ASSERT_EQ(b.runs.size(), 1u);
  expect_same_run(a.runs.front(), b.runs.front());
}

TEST(ParamRegistry, DumpRecordsProvenanceLayers) {
  clear_registry_env();
  const ParamRegistry& registry = ParamRegistry::instance();
  ::setenv("ADATTL_WARMUP", "50", 1);
  const ConfigResolution r = registry.resolve({"--ttl=99"});
  ::unsetenv("ADATTL_WARMUP");
  const std::string dump = registry.dump_scenario(r);
  EXPECT_NE(dump.find("ttl = 99"), std::string::npos) << dump;
  EXPECT_NE(dump.find("# cli"), std::string::npos) << dump;
  EXPECT_NE(dump.find("warmup = 50"), std::string::npos) << dump;
  EXPECT_NE(dump.find("# env"), std::string::npos) << dump;
  EXPECT_NE(dump.find("# default"), std::string::npos) << dump;
}

TEST(ParamRegistry, CliPathMatchesProgrammaticConstructionBitIdentically) {
  // Golden: a config assembled through the registry runs bit-identically
  // to the same config assembled by direct field assignment (the pre-
  // registry "main" path every bench and scenario uses).
  clear_registry_env();
  SimulationConfig direct;
  direct.policy = "PRR2-TTL/K";
  direct.num_domains = 6;
  direct.total_clients = 60;
  direct.duration_sec = 120.0;
  direct.warmup_sec = 30.0;
  direct.seed = 4242;

  const CliOptions resolved = ParamRegistry::instance()
                                  .resolve({"--policy=PRR2-TTL/K", "--domains=6",
                                            "--clients=60", "--duration=120", "--warmup=30",
                                            "--seed=4242"})
                                  .options;

  const ReplicatedResult a = run_replications(direct, 1);
  const ReplicatedResult b = run_replications(resolved.config, 1);
  ASSERT_EQ(a.runs.size(), 1u);
  ASSERT_EQ(b.runs.size(), 1u);
  expect_same_run(a.runs.front(), b.runs.front());
}

TEST(ParamRegistry, ShippedScenarioResolvesAndDumpRoundTrips) {
  clear_registry_env();
  const ParamRegistry& registry = ParamRegistry::instance();
  // paper_default rather than chaos_recovery: the latter references its
  // fault file relative to the repo root, unreachable from the test cwd.
  for (const char* rel : {"scenarios/paper_default.scenario",
                          "../scenarios/paper_default.scenario",
                          "../../scenarios/paper_default.scenario"}) {
    std::FILE* f = std::fopen(rel, "r");
    if (!f) continue;
    std::fclose(f);
    const ConfigResolution first = registry.resolve({std::string("--config=") + rel});
    EXPECT_EQ(first.options.config.policy, "DRR2-TTL/S_K");
    const std::string path = write_temp("adattl_registry_shipped.scenario",
                                        registry.dump_scenario(first));
    const ConfigResolution second = registry.resolve({"--config=" + path});
    std::remove(path.c_str());
    EXPECT_EQ(fingerprint(first.options), fingerprint(second.options));
    return;
  }
  GTEST_SKIP() << "scenario files not reachable from test cwd";
}

TEST(ParamRegistry, IntegerKnobsKeepPrecisionAbove2Pow53) {
  clear_registry_env();
  // 2^53 + 1 is not representable as a double; the old stod-based parser
  // silently returned 9007199254740992.
  const CliOptions opt = parse_cli({"--seed=9007199254740993"});
  EXPECT_EQ(opt.config.seed, 9007199254740993ULL);
  EXPECT_THROW(parse_cli({"--domains=3.5"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--domains=12abc"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--domains=99999999999999999999"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--seed=-1"}), std::invalid_argument);
}

TEST(ParamRegistry, BooleanFormsAndNegation) {
  clear_registry_env();
  EXPECT_TRUE(parse_cli({"--uniform"}).config.uniform_clients);
  EXPECT_TRUE(parse_cli({"--uniform=true"}).config.uniform_clients);
  EXPECT_TRUE(parse_cli({"--uniform=1"}).config.uniform_clients);
  EXPECT_FALSE(parse_cli({"--uniform=false"}).config.uniform_clients);
  EXPECT_FALSE(parse_cli({"--uniform=0"}).config.uniform_clients);
  EXPECT_FALSE(parse_cli({"--uniform", "--no-uniform"}).config.uniform_clients);
  // Legacy spellings stay valid through generic negation.
  EXPECT_FALSE(parse_cli({"--no-calibration"}).config.calibrate_ttl);
  EXPECT_FALSE(parse_cli({"--no-alarm"}).config.alarm_enabled);
  EXPECT_THROW(parse_cli({"--no-uniform=true"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--uniform=yes"}), std::invalid_argument);
  // --no-X only negates booleans.
  EXPECT_THROW(parse_cli({"--no-domains"}), std::invalid_argument);
}

TEST(ParamRegistry, UnknownNamesGetDidYouMeanSuggestions) {
  clear_registry_env();
  try {
    parse_cli({"--domans=3"});
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean '--domains'"), std::string::npos)
        << e.what();
  }
  try {
    parse_cli({"--no-alram"});
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--no-alarm"), std::string::npos) << e.what();
  }
  // Scenario keys go through the same lookup.
  const std::string path = write_temp("adattl_registry_typo.scenario", "polcy = RR\n");
  try {
    parse_cli({"--config=" + path});
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--policy"), std::string::npos) << e.what();
  }
  std::remove(path.c_str());
  // Gibberish gets no suggestion, just the help pointer.
  try {
    parse_cli({"--zzqqxxy=1"});
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--help"), std::string::npos) << e.what();
  }
}

TEST(ParamRegistry, ValidationIsIdenticalAcrossEntryPoints) {
  clear_registry_env();
  // Programmatic path.
  SimulationConfig cfg;
  cfg.reference_ttl_sec = -1;
  std::string programmatic;
  try {
    cfg.validate();
  } catch (const std::invalid_argument& e) {
    programmatic = e.what();
  }
  // CLI path.
  std::string via_cli;
  try {
    parse_cli({"--ttl=-1"});
  } catch (const std::invalid_argument& e) {
    via_cli = e.what();
  }
  EXPECT_EQ(programmatic, "config: reference TTL must be > 0");
  EXPECT_EQ(via_cli, programmatic);

  // Policy names are validated by the registry at every entry point too.
  SimulationConfig bad_policy;
  bad_policy.policy = "NOT-A-POLICY";
  EXPECT_THROW(bad_policy.validate(), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--policy=NOT-A-POLICY"}), std::invalid_argument);
}

TEST(ParamRegistry, ConfigAndProvenanceJsonAreWellFormed) {
  clear_registry_env();
  const ParamRegistry& registry = ParamRegistry::instance();
  const ConfigResolution r = registry.resolve({"--seed=9007199254740993", "--measured"});
  const std::string config = registry.config_json(r.options);
  EXPECT_EQ(config.front(), '{');
  EXPECT_EQ(config.back(), '}');
  EXPECT_NE(config.find("\"seed\":9007199254740993"), std::string::npos) << config;
  EXPECT_NE(config.find("\"measured\":true"), std::string::npos) << config;
  EXPECT_NE(config.find("\"relative\":[1,1,1,0.8,0.8,0.8,0.8]"), std::string::npos) << config;

  const std::string prov = registry.provenance_json(r.provenance);
  EXPECT_NE(prov.find("\"seed\":{\"layer\":\"cli\",\"value\":\"9007199254740993\"}"),
            std::string::npos)
      << prov;
  EXPECT_EQ(prov.find("\"domains\""), std::string::npos) << prov;  // defaults omitted
}

TEST(ParamRegistry, SweepManifestEmbedsConfigAndProvenance) {
  clear_registry_env();
  SimulationConfig cfg;
  cfg.policy = "RR";
  cfg.num_domains = 4;
  cfg.total_clients = 40;
  cfg.duration_sec = 60.0;
  cfg.warmup_sec = 10.0;
  Sweep sweep;
  sweep.add(cfg, 1, "tiny");
  const SweepResult swept = sweep.run();
  const std::string manifest = swept.manifest_json();
  EXPECT_NE(manifest.find("\"config\":{"), std::string::npos) << manifest;
  EXPECT_NE(manifest.find("\"domains\":4"), std::string::npos) << manifest;
  EXPECT_NE(manifest.find("\"provenance\":{"), std::string::npos) << manifest;
  EXPECT_NE(manifest.find("\"layer\":\"code\""), std::string::npos) << manifest;
}

TEST(ParamRegistry, HelpAndMarkdownCoverEveryKnob) {
  const ParamRegistry& registry = ParamRegistry::instance();
  const std::string usage = registry.usage();
  const std::string md = registry.params_markdown();
  for (const ParamSpec& spec : registry.specs()) {
    EXPECT_NE(usage.find("--" + spec.name), std::string::npos)
        << "knob '" << spec.name << "' missing from --help";
    EXPECT_NE(md.find("`" + spec.name + "`"), std::string::npos)
        << "knob '" << spec.name << "' missing from CONFIG.md";
  }
  EXPECT_NE(md.find("| `seed` |"), std::string::npos);
  EXPECT_NE(md.find("`ADATTL_SEED`"), std::string::npos);
}

}  // namespace
}  // namespace adattl::experiment
