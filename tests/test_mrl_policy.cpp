#include "core/mrl_policy.h"

#include <gtest/gtest.h>

#include "core/policy_factory.h"

namespace adattl::core {
namespace {

class MrlPolicyTest : public ::testing::Test {
 protected:
  MrlPolicyTest() : domains({4.0, 2.0, 1.0, 1.0}, 0.3) {}  // shares .5 .25 .125 .125

  sim::Simulator simulator;
  DomainModel domains;
  std::vector<bool> all{true, true, true};
};

TEST_F(MrlPolicyTest, ResidualStartsAtRateTimesTtl) {
  MrlPolicy mrl(simulator, domains, {100.0, 100.0, 100.0});
  mrl.on_assign(0, 0, 100.0);  // share .5 for 100 s
  EXPECT_NEAR(mrl.residual(0), 0.5 * 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(mrl.residual(1), 0.0);
}

TEST_F(MrlPolicyTest, ResidualDecaysLinearly) {
  MrlPolicy mrl(simulator, domains, {100.0, 100.0, 100.0});
  mrl.on_assign(0, 0, 100.0);
  simulator.run_until(25.0);
  EXPECT_NEAR(mrl.residual(0), 0.5 * 75.0, 1e-9);
  simulator.run_until(75.0);
  EXPECT_NEAR(mrl.residual(0), 0.5 * 25.0, 1e-9);
}

TEST_F(MrlPolicyTest, ResidualVanishesAtExpiry) {
  MrlPolicy mrl(simulator, domains, {100.0, 100.0, 100.0});
  mrl.on_assign(1, 2, 60.0);
  simulator.run_until(61.0);
  EXPECT_NEAR(mrl.residual(2), 0.0, 1e-9);
}

TEST_F(MrlPolicyTest, OverlappingMappingsAccumulate) {
  MrlPolicy mrl(simulator, domains, {100.0, 100.0, 100.0});
  mrl.on_assign(0, 0, 100.0);  // .5 * 100
  simulator.run_until(50.0);
  mrl.on_assign(1, 0, 100.0);  // .25 * 100 starting at t=50
  // At t=50: first mapping has .5*50 left, second .25*100.
  EXPECT_NEAR(mrl.residual(0), 0.5 * 50.0 + 0.25 * 100.0, 1e-9);
  simulator.run_until(100.0);  // first expired, second half-way
  EXPECT_NEAR(mrl.residual(0), 0.25 * 50.0, 1e-9);
}

TEST_F(MrlPolicyTest, SelectsMinimumNormalizedResidual) {
  MrlPolicy mrl(simulator, domains, {200.0, 100.0, 100.0});
  mrl.on_assign(0, 1, 100.0);  // server 1 loaded
  EXPECT_EQ(mrl.select(2, all), 0);
  mrl.on_assign(0, 0, 100.0);  // server 0: residual 50, normalized .25
  // server 1 normalized .5, server 2 empty.
  EXPECT_EQ(mrl.select(2, all), 2);
}

TEST_F(MrlPolicyTest, CapacityNormalizationMatters) {
  MrlPolicy mrl(simulator, domains, {200.0, 50.0, 50.0});
  mrl.on_assign(0, 0, 100.0);  // big server: residual 50 -> normalized .25
  mrl.on_assign(2, 1, 100.0);  // small server: residual 12.5 -> normalized .25
  // Tie at .25; server 2 is empty and wins.
  EXPECT_EQ(mrl.select(3, all), 2);
  mrl.on_assign(3, 2, 100.0);
  // Now all ~.25: lowest index (biggest server) wins the tie.
  EXPECT_EQ(mrl.select(1, all), 0);
}

TEST_F(MrlPolicyTest, HonorsEligibility) {
  MrlPolicy mrl(simulator, domains, {100.0, 100.0, 100.0});
  std::vector<bool> only_mid{false, true, false};
  EXPECT_EQ(mrl.select(0, only_mid), 1);
}

TEST_F(MrlPolicyTest, RejectsBadCapacities) {
  EXPECT_THROW(MrlPolicy(simulator, domains, {}), std::invalid_argument);
  EXPECT_THROW(MrlPolicy(simulator, domains, {1.0, -1.0}), std::invalid_argument);
}

TEST(MrlFactory, MrlIsBuildableByName) {
  sim::Simulator simulator;
  sim::RngStream rng(1);
  AlarmRegistry alarms(3, 0.9);
  SchedulerFactoryConfig fc;
  fc.capacities = {100.0, 80.0, 60.0};
  fc.initial_weights = {3.0, 2.0, 1.0};
  fc.class_threshold = 0.2;
  SchedulerBundle b = make_scheduler("MRL", fc, alarms, simulator, rng);
  EXPECT_EQ(b.scheduler->name(), "MRL");
  const Decision d = b.scheduler->schedule(0);
  EXPECT_GE(d.server, 0);
  EXPECT_DOUBLE_EQ(d.ttl_sec, 240.0);
  EXPECT_EQ(parse_policy_name("MRL").selection, SelectionKind::kMRL);
}

}  // namespace
}  // namespace adattl::core
