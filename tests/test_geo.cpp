// Geography extension: the RTT model, the proximity-first policy, and the
// end-to-end load-vs-latency trade-off.
#include "geo/geo_model.h"

#include <gtest/gtest.h>

#include "core/cost_policy.h"
#include "core/decision_context.h"
#include "core/policy_factory.h"
#include "core/proximity_policy.h"
#include "experiment/cli.h"
#include "experiment/site.h"

namespace adattl {
namespace {

TEST(GeoModel, RegionBuilderAssignsRoundRobin) {
  const geo::GeoModel g = geo::GeoModel::regions(4, 4, 2, 0.02, 0.15);
  // Domain 0 and server 0/2 share region 0; server 1/3 are remote.
  EXPECT_DOUBLE_EQ(g.rtt(0, 0), 0.02);
  EXPECT_DOUBLE_EQ(g.rtt(0, 2), 0.02);
  EXPECT_DOUBLE_EQ(g.rtt(0, 1), 0.15);
  EXPECT_DOUBLE_EQ(g.rtt(1, 1), 0.02);
  EXPECT_DOUBLE_EQ(g.rtt(1, 0), 0.15);
}

TEST(GeoModel, NearestServersAreTheLocalOnes) {
  const geo::GeoModel g = geo::GeoModel::regions(6, 6, 3, 0.01, 0.2);
  EXPECT_EQ(g.nearest_servers(0), (std::vector<int>{0, 3}));
  EXPECT_EQ(g.nearest_servers(4), (std::vector<int>{1, 4}));
}

TEST(GeoModel, SingleRegionIsFlat) {
  const geo::GeoModel g = geo::GeoModel::regions(3, 5, 1, 0.02, 0.15);
  for (int d = 0; d < 3; ++d) {
    for (int s = 0; s < 5; ++s) EXPECT_DOUBLE_EQ(g.rtt(d, s), 0.02);
    EXPECT_EQ(g.nearest_servers(d).size(), 5u);
  }
}

TEST(GeoModel, MoreRegionsThanServersLeavesRemoteOnlyDomains) {
  // 4 regions but only 2 servers: servers land in regions 0 and 1, so
  // domains in regions 2 and 3 have no local replica at all.
  const geo::GeoModel g = geo::GeoModel::regions(6, 2, 4, 0.02, 0.15);
  EXPECT_DOUBLE_EQ(g.rtt(0, 0), 0.02);   // region 0 has server 0
  EXPECT_DOUBLE_EQ(g.rtt(2, 0), 0.15);   // region 2: everything is remote
  EXPECT_DOUBLE_EQ(g.rtt(2, 1), 0.15);
  // A remote-only domain ties on every server: the nearest set is the
  // whole cluster, in ascending index order.
  EXPECT_EQ(g.nearest_servers(2), (std::vector<int>{0, 1}));
  EXPECT_EQ(g.nearest_servers(0), (std::vector<int>{0}));
  EXPECT_DOUBLE_EQ(g.max_rtt(), 0.15);
}

TEST(GeoModel, NearestServersTieBreakIsDeterministic) {
  // Ties are enumerated lowest-index-first and the result is a pure
  // function of the matrix — repeated calls must agree exactly.
  const geo::GeoModel g({{0.05, 0.01, 0.01, 0.05, 0.01}});
  const std::vector<int> first = g.nearest_servers(0);
  EXPECT_EQ(first, (std::vector<int>{1, 2, 4}));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(g.nearest_servers(0), first);
  EXPECT_THROW(g.nearest_servers(1), std::out_of_range);
  EXPECT_THROW(g.nearest_servers(-1), std::out_of_range);
}

TEST(GeoModel, SingleServerTopology) {
  const geo::GeoModel g({{0.07}, {0.11}});
  EXPECT_EQ(g.num_servers(), 1);
  EXPECT_EQ(g.nearest_servers(1), (std::vector<int>{0}));
  EXPECT_DOUBLE_EQ(g.mean_rtt(1), 0.11);
  EXPECT_DOUBLE_EQ(g.max_rtt(), 0.11);

  auto shared = std::make_shared<const geo::GeoModel>(g);
  core::ProximityPolicy p(shared, {100.0});
  const std::vector<bool> one(1, true);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(p.select(0, one), 0);
}

TEST(GeoModel, ZeroRttTopologyIsDegenerateButWellDefined) {
  // All-zero matrices are legal (co-located everything). max_rtt() == 0
  // is the COST normalizer's divide-by-zero guard case: norm_rtt becomes
  // 0 for every server and the composite collapses to pure load.
  const geo::GeoModel g({{0.0, 0.0}, {0.0, 0.0}});
  EXPECT_DOUBLE_EQ(g.max_rtt(), 0.0);
  EXPECT_DOUBLE_EQ(g.mean_rtt(0), 0.0);
  EXPECT_EQ(g.nearest_servers(0), (std::vector<int>{0, 1}));

  core::CompositeCostPolicy cost({100.0, 100.0}, /*alpha=*/0.25);
  const std::vector<bool> eligible(2, true);
  const std::vector<double> util{0.9, 0.1};
  core::DecisionContext ctx;
  ctx.domain = 0;
  ctx.eligible = &eligible;
  ctx.utilization = &util;
  ctx.geo = &g;
  ctx.feedback_generation = 1;
  // With geography flat, the less-utilized server must win outright.
  EXPECT_EQ(cost.select(ctx), 1);
}

TEST(GeoModel, ExplicitMatrixAndValidation) {
  const geo::GeoModel g({{0.01, 0.3}, {0.3, 0.01}});
  EXPECT_EQ(g.num_domains(), 2);
  EXPECT_EQ(g.num_servers(), 2);
  EXPECT_NEAR(g.mean_rtt(0), 0.155, 1e-12);
  EXPECT_THROW(geo::GeoModel({}), std::invalid_argument);
  EXPECT_THROW(geo::GeoModel({{0.1}, {0.1, 0.2}}), std::invalid_argument);
  EXPECT_THROW(geo::GeoModel(std::vector<std::vector<double>>{{-0.1}}),
               std::invalid_argument);
  EXPECT_THROW(geo::GeoModel::regions(2, 2, 0, 0.01, 0.1), std::invalid_argument);
  EXPECT_THROW(geo::GeoModel::regions(2, 2, 2, 0.2, 0.1), std::invalid_argument);
}

TEST(ProximityPolicy, PrefersLocalServers) {
  auto g = std::make_shared<const geo::GeoModel>(geo::GeoModel::regions(4, 4, 2, 0.01, 0.2));
  core::ProximityPolicy p(g, {100.0, 100.0, 100.0, 100.0});
  const std::vector<bool> all(4, true);
  // Domain 0's locals are servers 0 and 2; it must never leave them.
  for (int i = 0; i < 50; ++i) {
    const int s = p.select(0, all);
    EXPECT_TRUE(s == 0 || s == 2) << s;
  }
  // Domain 1's locals are 1 and 3.
  for (int i = 0; i < 50; ++i) {
    const int s = p.select(1, all);
    EXPECT_TRUE(s == 1 || s == 3) << s;
  }
}

TEST(ProximityPolicy, LocalPicksAreCapacityWeighted) {
  auto g = std::make_shared<const geo::GeoModel>(geo::GeoModel::regions(2, 4, 2, 0.01, 0.2));
  // Domain 0's locals: servers 0 (big) and 2 (small).
  core::ProximityPolicy p(g, {300.0, 100.0, 100.0, 100.0});
  const std::vector<bool> all(4, true);
  int big = 0, small = 0;
  for (int i = 0; i < 400; ++i) {
    const int s = p.select(0, all);
    if (s == 0) ++big;
    if (s == 2) ++small;
  }
  EXPECT_EQ(big + small, 400);
  EXPECT_EQ(big, 300);  // smooth WRR: exact 3:1 over full cycles
}

TEST(ProximityPolicy, FallsBackWhenRegionIsAlarmed) {
  auto g = std::make_shared<const geo::GeoModel>(geo::GeoModel::regions(2, 4, 2, 0.01, 0.2));
  core::ProximityPolicy p(g, {100.0, 100.0, 100.0, 100.0});
  std::vector<bool> eligible{false, true, false, true};  // domain 0's locals both out
  for (int i = 0; i < 20; ++i) {
    const int s = p.select(0, eligible);
    EXPECT_TRUE(s == 1 || s == 3) << s;
  }
}

TEST(ProximityPolicy, Validation) {
  auto g = std::make_shared<const geo::GeoModel>(geo::GeoModel::regions(2, 3, 2, 0.01, 0.2));
  EXPECT_THROW(core::ProximityPolicy(nullptr, {100.0}), std::invalid_argument);
  EXPECT_THROW(core::ProximityPolicy(g, {100.0}), std::invalid_argument);  // count mismatch
  EXPECT_THROW(core::ProximityPolicy(g, {100.0, 0.0, 100.0}), std::invalid_argument);
}

experiment::SimulationConfig geo_config(const std::string& policy) {
  experiment::SimulationConfig cfg;
  cfg.cluster = web::table2_cluster(35);
  cfg.policy = policy;
  cfg.geo_regions = 3;
  cfg.warmup_sec = 200.0;
  cfg.duration_sec = 2400.0;
  cfg.seed = 71;
  return cfg;
}

TEST(GeoIntegration, RttShowsUpInNetworkTimeNotServerTime) {
  const experiment::RunResult with_geo = experiment::Site(geo_config("RR")).run();
  experiment::SimulationConfig flat = geo_config("RR");
  flat.geo_regions = 0;
  const experiment::RunResult without = experiment::Site(flat).run();
  // RR ignores geography: mean RTT ~ (1/3 intra + 2/3 inter).
  EXPECT_NEAR(with_geo.mean_network_rtt_sec, (0.02 + 2 * 0.15) / 3.0, 0.01);
  EXPECT_DOUBLE_EQ(without.mean_network_rtt_sec, 0.0);
  // Server-side response times are on the same scale either way.
  EXPECT_NEAR(with_geo.mean_page_response_sec, without.mean_page_response_sec, 0.25);
}

TEST(GeoIntegration, ProximityPolicySlashesRtt) {
  const experiment::RunResult geo_run = experiment::Site(geo_config("GEO")).run();
  const experiment::RunResult rr_run = experiment::Site(geo_config("RR")).run();
  // GEO keeps traffic local: mean RTT ~ intra (0.02 s) vs RR's ~0.107 s.
  EXPECT_LT(geo_run.mean_network_rtt_sec, 0.03);
  EXPECT_GT(rr_run.mean_network_rtt_sec, 0.09);
}

TEST(GeoIntegration, ProximityPaysWithLoadImbalance) {
  // Each region hosts a disjoint slice of the Zipf domains, so regional
  // offered load is uneven while GEO pins it locally: adaptive TTL's
  // global spreading must beat GEO on max utilization.
  const experiment::RunResult geo_run = experiment::Site(geo_config("GEO")).run();
  const experiment::RunResult adaptive =
      experiment::Site(geo_config("DRR2-TTL/S_K")).run();
  EXPECT_GT(adaptive.prob_below_098, geo_run.prob_below_098);
}

TEST(GeoIntegration, GeoPolicyRequiresRegions) {
  experiment::SimulationConfig cfg = geo_config("GEO");
  cfg.geo_regions = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(GeoCli, ParsesGeographyFlags) {
  const experiment::CliOptions opt = experiment::parse_cli(
      {"--geo-regions=3", "--geo-intra=0.01", "--geo-inter=0.2", "--policy=GEO"});
  EXPECT_EQ(opt.config.geo_regions, 3);
  EXPECT_DOUBLE_EQ(opt.config.geo_intra_rtt_sec, 0.01);
  EXPECT_DOUBLE_EQ(opt.config.geo_inter_rtt_sec, 0.2);
  EXPECT_THROW(experiment::parse_cli({"--policy=GEO"}), std::invalid_argument);
  EXPECT_THROW(experiment::parse_cli({"--geo-regions=2", "--geo-intra=0.3", "--geo-inter=0.1"}),
               std::invalid_argument);
}

}  // namespace
}  // namespace adattl
