// EDNS0 Client-Subnet extraction + domain-key derivation (dnswire/ecs).
#include "dnswire/ecs.h"

#include <gtest/gtest.h>

#include "dnswire/message.h"

namespace adattl::dnswire {
namespace {

ClientSubnet make_subnet(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                         std::uint8_t prefix = 24) {
  ClientSubnet s{};
  s.family = kEcsFamilyIpv4;
  s.source_prefix = prefix;
  s.address_len = static_cast<std::uint8_t>((prefix + 7) / 8);
  s.address[0] = a;
  s.address[1] = b;
  s.address[2] = c;
  return s;
}

// ------------------------------------------------------- append + extract

TEST(Ecs, AbsentOnPlainQuery) {
  const auto q = encode_query(7, "www.site.org");
  ClientSubnet out{};
  EXPECT_EQ(extract_client_subnet(q, &out), EcsResult::kAbsent);
}

TEST(Ecs, RoundTripIpv4) {
  auto q = encode_query(7, "www.site.org");
  append_ecs_option(&q, make_subnet(192, 168, 7));

  // arcount bumped to 1.
  EXPECT_EQ(q[10], 0u);
  EXPECT_EQ(q[11], 1u);

  ClientSubnet out{};
  ASSERT_EQ(extract_client_subnet(q, &out), EcsResult::kPresent);
  EXPECT_EQ(out.family, kEcsFamilyIpv4);
  EXPECT_EQ(out.source_prefix, 24);
  EXPECT_EQ(out.scope_prefix, 0);
  EXPECT_EQ(out.address_len, 3);
  EXPECT_EQ(out.address[0], 192);
  EXPECT_EQ(out.address[1], 168);
  EXPECT_EQ(out.address[2], 7);
}

TEST(Ecs, RoundTripIpv6) {
  auto q = encode_query(9, "www.site.org");
  ClientSubnet s{};
  s.family = kEcsFamilyIpv6;
  s.source_prefix = 56;
  s.address_len = 7;
  for (int i = 0; i < 7; ++i) s.address[static_cast<std::size_t>(i)] = std::uint8_t(i + 1);
  append_ecs_option(&q, s);

  ClientSubnet out{};
  ASSERT_EQ(extract_client_subnet(q, &out), EcsResult::kPresent);
  EXPECT_EQ(out.family, kEcsFamilyIpv6);
  EXPECT_EQ(out.source_prefix, 56);
  EXPECT_EQ(out.address_len, 7);
  EXPECT_EQ(out.address[6], 7u);
}

TEST(Ecs, NonByteAlignedPrefixMasksTailBits) {
  // /20 = 3 address bytes; the low 4 bits of the third byte must read as 0.
  auto q = encode_query(3, "www.site.org");
  ClientSubnet s = make_subnet(10, 0, 0xff, 20);
  append_ecs_option(&q, s);
  ClientSubnet out{};
  ASSERT_EQ(extract_client_subnet(q, &out), EcsResult::kPresent);
  EXPECT_EQ(out.address[2], 0xf0);  // 0xff masked to the top 4 bits
}

TEST(Ecs, OptWithoutEcsOptionIsAbsent) {
  // A bare OPT RR (no options) — standard EDNS0 without client subnet.
  auto q = encode_query(5, "www.site.org");
  const std::uint8_t opt[] = {0, 0, 41, 0x04, 0xd0, 0, 0, 0, 0, 0, 0};
  q.insert(q.end(), opt, opt + sizeof(opt));
  q[11] = 1;  // arcount
  ClientSubnet out{};
  EXPECT_EQ(extract_client_subnet(q, &out), EcsResult::kAbsent);
}

// ------------------------------------------------------------- malformed

TEST(Ecs, MalformedWhenOptionLengthLies) {
  auto q = encode_query(4, "www.site.org");
  append_ecs_option(&q, make_subnet(10, 1, 2));
  // The ECS option length field sits 2 bytes after the option code, which
  // is 8 bytes into the OPT rdata. Corrupt it to claim more than present.
  q[q.size() - 7 - 2] = 0x7f;  // option length high byte... ensure lie
  ClientSubnet out{};
  EXPECT_EQ(extract_client_subnet(q, &out), EcsResult::kMalformed);
}

TEST(Ecs, MalformedWhenAddressShorterThanPrefix) {
  // Hand-build ECS rdata claiming /24 but shipping only 2 address bytes.
  auto q = encode_query(4, "www.site.org");
  const std::uint8_t opt[] = {
      0,                    // root name
      0, 41, 0x04, 0xd0,    // type OPT, payload 1232
      0, 0, 0, 0,           // extended rcode/flags
      0, 10,                // rdlength = 10
      0, 8, 0, 6,           // option code 8, option length 6
      0, 1, 24, 0,          // family v4, source /24, scope 0
      10, 1                 // only 2 address bytes (need 3)
  };
  q.insert(q.end(), opt, opt + sizeof(opt));
  q[11] = 1;
  ClientSubnet out{};
  EXPECT_EQ(extract_client_subnet(q, &out), EcsResult::kMalformed);
}

TEST(Ecs, MalformedWhenPrefixImpossibleForFamily) {
  auto q = encode_query(4, "www.site.org");
  const std::uint8_t opt[] = {
      0, 0, 41, 0x04, 0xd0, 0, 0, 0, 0,
      0, 9,                 // rdlength
      0, 8, 0, 5,           // option code 8, length 5
      0, 1, 64, 0,          // family v4 but /64
      10                    // 1 address byte... irrelevant, prefix is the lie
  };
  q.insert(q.end(), opt, opt + sizeof(opt));
  q[11] = 1;
  ClientSubnet out{};
  EXPECT_EQ(extract_client_subnet(q, &out), EcsResult::kMalformed);
}

TEST(Ecs, TruncatedMessagesNeverCrash) {
  auto q = encode_query(2, "www.site.org");
  append_ecs_option(&q, make_subnet(172, 16, 0));
  for (std::size_t cut = 0; cut < q.size(); ++cut) {
    ClientSubnet out{};
    // Any result is fine; the property is memory-safe termination.
    (void)extract_client_subnet(q.data(), cut, &out);
  }
}

// ------------------------------------------------------------ subnet_hash

TEST(Ecs, SubnetHashDistinguishesSubnetsNotHosts) {
  const auto a = make_subnet(10, 0, 1);
  const auto b = make_subnet(10, 0, 2);
  EXPECT_NE(subnet_hash(a), subnet_hash(b));
  EXPECT_EQ(subnet_hash(a), subnet_hash(make_subnet(10, 0, 1)));
}

// -------------------------------------------------------- derive_domain_key

TEST(Ecs, DeriveUsesEcsWhenPresent) {
  auto q = encode_query(1, "www.site.org");
  append_ecs_option(&q, make_subnet(10, 20, 30));
  DomainKeySource src{};
  const auto d = derive_domain_key(q.data(), q.size(), 0x7f000001, 4242, 20, true, &src);
  EXPECT_EQ(src, DomainKeySource::kEcs);
  EXPECT_GE(d, 0);
  EXPECT_LT(d, 20);
  // Same subnet from a different resolver address → same key.
  DomainKeySource src2{};
  const auto d2 = derive_domain_key(q.data(), q.size(), 0x0a0a0a0a, 9999, 20, true, &src2);
  EXPECT_EQ(d, d2);
}

TEST(Ecs, DeriveFallsBackToSourceHash) {
  const auto q = encode_query(1, "www.site.org");
  DomainKeySource src{};
  const auto d = derive_domain_key(q.data(), q.size(), 0xc0a80101, 5353, 20, true, &src);
  EXPECT_EQ(src, DomainKeySource::kSourceHash);
  EXPECT_EQ(d, static_cast<web::DomainId>(source_hash(0xc0a80101, 5353) % 20u));
}

TEST(Ecs, DeriveIgnoresEcsWhenDisabled) {
  auto q = encode_query(1, "www.site.org");
  append_ecs_option(&q, make_subnet(10, 20, 30));
  DomainKeySource src{};
  const auto d = derive_domain_key(q.data(), q.size(), 0xc0a80101, 5353, 20, false, &src);
  EXPECT_EQ(src, DomainKeySource::kSourceHash);
  EXPECT_EQ(d, static_cast<web::DomainId>(source_hash(0xc0a80101, 5353) % 20u));
}

TEST(Ecs, DeriveFallsBackOnMalformedEcs) {
  auto q = encode_query(4, "www.site.org");
  append_ecs_option(&q, make_subnet(10, 1, 2));
  q[q.size() - 9] = 0x7f;  // corrupt the option length
  DomainKeySource src{};
  const auto d = derive_domain_key(q.data(), q.size(), 0xc0a80101, 5353, 20, true, &src);
  EXPECT_EQ(src, DomainKeySource::kMalformedFallback);
  EXPECT_EQ(d, static_cast<web::DomainId>(source_hash(0xc0a80101, 5353) % 20u));
}

}  // namespace
}  // namespace adattl::dnswire
