// Paper-shape regression suite: the qualitative claims of every figure,
// checked at reduced scale (single replication, shorter measured period)
// so the whole suite stays fast. These are the assertions EXPERIMENTS.md
// reports at full scale — if a refactor breaks a paper shape, this suite
// goes red.
#include <gtest/gtest.h>

#include "experiment/runner.h"

namespace adattl::experiment {
namespace {

/// One reduced-scale run; the shared seed keeps policy comparisons paired.
double p98(const std::string& policy, int het, double min_ttl = 0.0,
           double error_percent = 0.0, bool uniform = false) {
  SimulationConfig cfg;
  cfg.cluster = web::table2_cluster(het);
  cfg.policy = policy;
  cfg.uniform_clients = uniform;
  cfg.ns_min_ttl_sec = min_ttl;
  cfg.rate_perturbation_percent = error_percent;
  cfg.warmup_sec = 300.0;
  cfg.duration_sec = 4800.0;
  cfg.seed = 424242;
  return Site(cfg).run().prob_below_098;
}

// ---- Figure 1: deterministic family, het 20% ----

TEST(PaperShapes, Fig1_DeterministicOrdering) {
  const double ideal = p98("PRR-TTL/1", 20, 0, 0, /*uniform=*/true);
  const double sk = p98("DRR2-TTL/S_K", 20);
  const double s2 = p98("DRR2-TTL/S_2", 20);
  const double s1 = p98("DRR2-TTL/S_1", 20);
  const double rr = p98("RR", 20);
  // TTL/S_K ~ Ideal >> TTL/S_2 >> TTL/S_1 ~ RR.
  EXPECT_GT(sk, ideal - 0.1);
  EXPECT_GT(sk, s2 + 0.03);
  EXPECT_GT(s2, s1 + 0.1);
  EXPECT_GT(sk, rr + 0.4);
  // Server-capacity-only TTL shaping barely improves on RR.
  EXPECT_LT(s1 - rr, 0.35);
}

TEST(PaperShapes, Fig1_RR2VariantsBeatRRVariants) {
  EXPECT_GE(p98("DRR2-TTL/S_K", 20), p98("DRR-TTL/S_K", 20) - 0.02);
  EXPECT_GE(p98("DRR2-TTL/S_2", 20), p98("DRR-TTL/S_2", 20) - 0.02);
}

// ---- Figure 2: probabilistic family, het 35% ----

TEST(PaperShapes, Fig2_ProbabilisticOrdering) {
  const double k = p98("PRR2-TTL/K", 35);
  const double two = p98("PRR2-TTL/2", 35);
  const double one = p98("PRR2-TTL/1", 35);
  const double rr = p98("RR", 35);
  EXPECT_GT(k, two + 0.03);
  EXPECT_GT(two, one + 0.15);
  // Probabilistic routing alone cannot absorb client skew.
  EXPECT_LT(one - rr, 0.2);
}

// ---- Figure 3: heterogeneity sensitivity ----

TEST(PaperShapes, Fig3_KGranularityStableAcrossHeterogeneity) {
  const double at20 = p98("DRR2-TTL/S_K", 20);
  const double at65 = p98("DRR2-TTL/S_K", 65);
  EXPECT_GT(at65, 0.75);           // still effective at the extreme
  EXPECT_LT(at20 - at65, 0.15);    // "relatively stable"
}

TEST(PaperShapes, Fig3_HomogeneousEraBaselinesDoNotTransfer) {
  for (int het : {35, 50}) {
    EXPECT_GT(p98("DRR2-TTL/S_K", het), p98("DAL", het) + 0.2) << het;
    EXPECT_GT(p98("PRR2-TTL/K", het), p98("MRL", het) + 0.1) << het;
  }
}

// ---- Figures 4-5: non-cooperative NS min TTL ----

TEST(PaperShapes, Fig4_DeterministicBestWhenCooperative) {
  EXPECT_GT(p98("DRR2-TTL/S_K", 20, 0.0), p98("PRR2-TTL/K", 20, 0.0) - 0.02);
}

TEST(PaperShapes, Fig5_ProbabilisticOvertakesUnderClampingAtHighHet) {
  // Paper: at het 50% the crossover falls below ~100 s.
  EXPECT_GT(p98("DRR2-TTL/S_K", 50, 0.0), p98("PRR2-TTL/K", 50, 0.0) - 0.03);
  EXPECT_GT(p98("PRR2-TTL/K", 50, 120.0), p98("DRR2-TTL/S_K", 50, 120.0) - 0.02);
}

TEST(PaperShapes, Fig45_ClampingHurtsEveryAdaptivePolicy) {
  for (const char* policy : {"DRR2-TTL/S_K", "PRR2-TTL/K"}) {
    EXPECT_GT(p98(policy, 35, 0.0), p98(policy, 35, 240.0) + 0.2) << policy;
  }
}

// ---- Figures 6-7: estimation error ----

TEST(PaperShapes, Fig6_KSchemesRobustToEstimationError) {
  const double clean = p98("PRR2-TTL/K", 20, 0, 0.0);
  const double noisy = p98("PRR2-TTL/K", 20, 0, 30.0);
  EXPECT_LT(clean - noisy, 0.20);
  EXPECT_GT(noisy, 0.6);
}

TEST(PaperShapes, Fig7_TwoClassSchemesCollapseUnderErrorAtHighHet) {
  const double k_noisy = p98("DRR2-TTL/S_K", 50, 0, 50.0);
  const double two_noisy = p98("DRR2-TTL/S_2", 50, 0, 50.0);
  EXPECT_GT(k_noisy, two_noisy + 0.2);
}

// ---- §5 summary claims ----

TEST(PaperShapes, TwoTierAlwaysAtLeastAsGood) {
  for (int het : {20, 50}) {
    EXPECT_GE(p98("PRR2-TTL/K", het), p98("PRR-TTL/K", het) - 0.05) << het;
    EXPECT_GE(p98("DRR2-TTL/S_2", het), p98("DRR-TTL/S_2", het) - 0.05) << het;
  }
}

TEST(PaperShapes, AdaptiveTtlIsTheContribution) {
  // The headline: with both skew and heterogeneity, adapting the TTL beats
  // every fixed-TTL scheme, whatever its selection intelligence.
  const int het = 50;
  const double best_adaptive = p98("DRR2-TTL/S_K", het);
  for (const char* fixed : {"RR", "RR2", "WRR", "DAL", "MRL", "PRR-TTL/1"}) {
    EXPECT_GT(best_adaptive, p98(fixed, het) + 0.25) << fixed;
  }
}

}  // namespace
}  // namespace adattl::experiment
