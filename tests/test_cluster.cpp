#include "web/cluster.h"

#include <gtest/gtest.h>

#include <numeric>

namespace adattl::web {
namespace {

TEST(ClusterSpec, Table2LevelsMatchPaper) {
  EXPECT_EQ(table2_cluster(20).relative, (std::vector<double>{1, 1, 1, 0.8, 0.8, 0.8, 0.8}));
  EXPECT_EQ(table2_cluster(35).relative,
            (std::vector<double>{1, 1, 0.8, 0.8, 0.65, 0.65, 0.65}));
  EXPECT_EQ(table2_cluster(50).relative, (std::vector<double>{1, 1, 0.8, 0.8, 0.5, 0.5, 0.5}));
  EXPECT_EQ(table2_cluster(65).relative,
            (std::vector<double>{1, 1, 0.8, 0.8, 0.35, 0.35, 0.35}));
}

TEST(ClusterSpec, HeterogeneityPercentIsMaxSpread) {
  EXPECT_DOUBLE_EQ(table2_cluster(0).heterogeneity_percent(), 0.0);
  EXPECT_NEAR(table2_cluster(20).heterogeneity_percent(), 20.0, 1e-9);
  EXPECT_NEAR(table2_cluster(35).heterogeneity_percent(), 35.0, 1e-9);
  EXPECT_NEAR(table2_cluster(50).heterogeneity_percent(), 50.0, 1e-9);
  EXPECT_NEAR(table2_cluster(65).heterogeneity_percent(), 65.0, 1e-9);
}

TEST(ClusterSpec, AbsoluteCapacitiesSumToTotal) {
  for (int level : table2_levels()) {
    const ClusterSpec spec = table2_cluster(level);
    const std::vector<double> c = spec.absolute_capacities();
    EXPECT_NEAR(std::accumulate(c.begin(), c.end(), 0.0), 500.0, 1e-9) << "level " << level;
  }
}

TEST(ClusterSpec, AbsoluteCapacitiesKeepRatios) {
  const ClusterSpec spec = table2_cluster(50);
  const std::vector<double> c = spec.absolute_capacities();
  EXPECT_NEAR(c[0] / c[6], 2.0, 1e-9);  // 1 / 0.5
  EXPECT_NEAR(c[0] / c[2], 1.25, 1e-9);
}

TEST(ClusterSpec, PowerRatio) {
  EXPECT_NEAR(table2_cluster(65).power_ratio(), 1.0 / 0.35, 1e-9);
  EXPECT_DOUBLE_EQ(table2_cluster(0).power_ratio(), 1.0);
}

TEST(ClusterSpec, UnknownLevelThrows) {
  EXPECT_THROW(table2_cluster(30), std::invalid_argument);
  EXPECT_THROW(table2_cluster(-1), std::invalid_argument);
}

TEST(ClusterSpec, ValidateCatchesBadSpecs) {
  ClusterSpec s;
  s.relative = {};
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s.relative = {0.8, 1.0};  // alpha_1 must be 1 and sorted descending
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s.relative = {1.0, 1.2};
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s.relative = {1.0, 0.0};
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s.relative = {1.0, 0.5};
  s.total_capacity_hits_per_sec = 0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s.total_capacity_hits_per_sec = 100;
  EXPECT_NO_THROW(s.validate());
}

TEST(Cluster, BuildsOneServerPerSpecEntry) {
  sim::Simulator simulator;
  sim::RngStream rng(77);
  Cluster cluster(simulator, table2_cluster(35), 20, rng);
  EXPECT_EQ(cluster.size(), 7);
  for (int i = 0; i < cluster.size(); ++i) {
    EXPECT_EQ(cluster.server(i).id(), i);
    EXPECT_NEAR(cluster.server(i).capacity(),
                cluster.capacities()[static_cast<std::size_t>(i)], 1e-12);
  }
}

TEST(Cluster, ServersAreOrderedByDecreasingCapacity) {
  sim::Simulator simulator;
  sim::RngStream rng(78);
  Cluster cluster(simulator, table2_cluster(65), 5, rng);
  for (int i = 1; i < cluster.size(); ++i) {
    EXPECT_GE(cluster.server(i - 1).capacity(), cluster.server(i).capacity());
  }
}

}  // namespace
}  // namespace adattl::web
