#include "core/policy_factory.h"

#include <gtest/gtest.h>

#include "core/ttl_policy.h"
#include "sim/random.h"

namespace adattl::core {
namespace {

class PolicyFactoryTest : public ::testing::Test {
 protected:
  PolicyFactoryTest() : rng(11), alarms(3, 0.9) {
    config.capacities = {100.0, 80.0, 50.0};
    config.initial_weights = sim::ZipfDistribution(20, 1.0).probabilities();
    config.class_threshold = 1.0 / 20;
  }

  sim::Simulator simulator;
  sim::RngStream rng;
  AlarmRegistry alarms;
  SchedulerFactoryConfig config;
};

TEST(ParsePolicyName, ConstantTtlFamilies) {
  EXPECT_EQ(parse_policy_name("RR").selection, SelectionKind::kRR);
  EXPECT_EQ(parse_policy_name("RR").ttl_classes, 0);
  EXPECT_EQ(parse_policy_name("RR2").selection, SelectionKind::kRR2);
  EXPECT_EQ(parse_policy_name("DAL").selection, SelectionKind::kDAL);
}

TEST(ParsePolicyName, ProbabilisticFamily) {
  const PolicySpec p = parse_policy_name("PRR2-TTL/K");
  EXPECT_EQ(p.selection, SelectionKind::kPRR2);
  EXPECT_EQ(p.ttl_classes, kPerDomainClasses);
  EXPECT_FALSE(p.server_ttl_term);

  const PolicySpec q = parse_policy_name("PRR-TTL/2");
  EXPECT_EQ(q.selection, SelectionKind::kPRR);
  EXPECT_EQ(q.ttl_classes, 2);
}

TEST(ParsePolicyName, DeterministicFamily) {
  const PolicySpec p = parse_policy_name("DRR2-TTL/S_K");
  EXPECT_EQ(p.selection, SelectionKind::kRR2);
  EXPECT_EQ(p.ttl_classes, kPerDomainClasses);
  EXPECT_TRUE(p.server_ttl_term);

  const PolicySpec q = parse_policy_name("DRR-TTL/S_1");
  EXPECT_EQ(q.selection, SelectionKind::kRR);
  EXPECT_EQ(q.ttl_classes, 1);
  EXPECT_TRUE(q.server_ttl_term);
}

TEST(ParsePolicyName, AblationCombinations) {
  EXPECT_EQ(parse_policy_name("RR2-TTL/3").ttl_classes, 3);
  EXPECT_EQ(parse_policy_name("PRR2-TTL/S_4").ttl_classes, 4);
  EXPECT_TRUE(parse_policy_name("PRR2-TTL/S_4").server_ttl_term);
}

TEST(ParsePolicyName, MultiTierExtension) {
  const PolicySpec rr3 = parse_policy_name("RR3");
  EXPECT_EQ(rr3.selection, SelectionKind::kRRn);
  EXPECT_EQ(rr3.selection_tiers, 3);
  EXPECT_EQ(rr3.canonical_name(), "RR3");

  const PolicySpec rrk = parse_policy_name("RRK-TTL/K");
  EXPECT_EQ(rrk.selection, SelectionKind::kRRn);
  EXPECT_EQ(rrk.selection_tiers, kPerDomainClasses);
  EXPECT_EQ(rrk.ttl_classes, kPerDomainClasses);
  EXPECT_EQ(rrk.canonical_name(), "RRK-TTL/K");

  EXPECT_THROW(parse_policy_name("RR1"), std::invalid_argument);
  EXPECT_THROW(parse_policy_name("RR0"), std::invalid_argument);
  EXPECT_THROW(parse_policy_name("RRx"), std::invalid_argument);
}

TEST(ParsePolicyName, RoundTripsThroughCanonicalName) {
  for (const std::string& name : paper_policy_names()) {
    EXPECT_EQ(parse_policy_name(name).canonical_name(), name) << name;
  }
}

TEST(ParsePolicyName, RejectsMalformedNames) {
  EXPECT_THROW(parse_policy_name(""), std::invalid_argument);
  EXPECT_THROW(parse_policy_name("FOO"), std::invalid_argument);
  EXPECT_THROW(parse_policy_name("RR-TTL/"), std::invalid_argument);
  EXPECT_THROW(parse_policy_name("RR-TTL/0"), std::invalid_argument);
  EXPECT_THROW(parse_policy_name("RR-TTL/xyz"), std::invalid_argument);
  EXPECT_THROW(parse_policy_name("RR-TTL/2K"), std::invalid_argument);
  // DRR without a server-aware TTL policy is not a paper algorithm.
  EXPECT_THROW(parse_policy_name("DRR"), std::invalid_argument);
  EXPECT_THROW(parse_policy_name("DRR2-TTL/K"), std::invalid_argument);
}

TEST(PaperPolicyNames, CountsAndUniqueness) {
  const std::vector<std::string> names = paper_policy_names();
  EXPECT_EQ(names.size(), 15u);
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = i + 1; j < names.size(); ++j) EXPECT_NE(names[i], names[j]);
  }
}

TEST_F(PolicyFactoryTest, BuildsEveryPaperPolicy) {
  for (const std::string& name : paper_policy_names()) {
    SchedulerBundle b = make_scheduler(name, config, alarms, simulator, rng);
    ASSERT_NE(b.scheduler, nullptr) << name;
    ASSERT_NE(b.domains, nullptr) << name;
    EXPECT_EQ(b.scheduler->name(), name);
    // Every scheduler must produce a valid decision immediately.
    const Decision d = b.scheduler->schedule(0);
    EXPECT_GE(d.server, 0);
    EXPECT_LT(d.server, 3);
    EXPECT_GT(d.ttl_sec, 0.0);
  }
}

TEST_F(PolicyFactoryTest, BuildsMultiTierExtensions) {
  for (const char* name : {"RR3", "RRK", "RR4-TTL/K", "RRK-TTL/S_K"}) {
    SchedulerBundle b = make_scheduler(name, config, alarms, simulator, rng);
    EXPECT_EQ(b.scheduler->name(), name);
    const Decision d = b.scheduler->schedule(0);
    EXPECT_GE(d.server, 0);
    EXPECT_GT(d.ttl_sec, 0.0);
  }
}

TEST_F(PolicyFactoryTest, ConstantPoliciesUseReferenceTtl) {
  SchedulerBundle b = make_scheduler("RR", config, alarms, simulator, rng);
  for (int d = 0; d < 20; ++d) {
    EXPECT_DOUBLE_EQ(b.scheduler->schedule(d).ttl_sec, 240.0);
  }
}

TEST_F(PolicyFactoryTest, AdaptivePolicyRecalibratesViaModelSubscription) {
  SchedulerBundle b = make_scheduler("PRR-TTL/K", config, alarms, simulator, rng);
  const double before = b.scheduler->schedule(19).ttl_sec;  // coldest domain
  // Make domain 19 the hottest: its TTL must drop to the minimum.
  std::vector<double> w(20, 1.0);
  w[19] = 100.0;
  b.domains->update_weights(w);
  const double after = b.scheduler->schedule(19).ttl_sec;
  EXPECT_LT(after, before);
}

TEST_F(PolicyFactoryTest, SchedulerCountsDecisionsAndAssignments) {
  SchedulerBundle b = make_scheduler("RR", config, alarms, simulator, rng);
  for (int i = 0; i < 9; ++i) b.scheduler->schedule(i % 20);
  EXPECT_EQ(b.scheduler->decisions(), 9u);
  std::uint64_t total = 0;
  for (std::uint64_t a : b.scheduler->assignments()) total += a;
  EXPECT_EQ(total, 9u);
  // Plain RR spreads 9 decisions as 3/3/3.
  for (std::uint64_t a : b.scheduler->assignments()) EXPECT_EQ(a, 3u);
}

TEST_F(PolicyFactoryTest, AlarmedServerReceivesNoNewMappings) {
  SchedulerBundle b = make_scheduler("RR", config, alarms, simulator, rng);
  alarms.observe(8.0, {0.5, 0.95, 0.5});  // server 1 alarmed
  for (int i = 0; i < 10; ++i) {
    EXPECT_NE(b.scheduler->schedule(i % 20).server, 1);
  }
}

TEST_F(PolicyFactoryTest, TtlStatTracksDecisions) {
  SchedulerBundle b = make_scheduler("PRR-TTL/K", config, alarms, simulator, rng);
  for (int d = 0; d < 20; ++d) b.scheduler->schedule(d);
  EXPECT_EQ(b.scheduler->ttl_stat().count(), 20u);
  EXPECT_GT(b.scheduler->ttl_stat().max(), b.scheduler->ttl_stat().min());
}

TEST_F(PolicyFactoryTest, RejectsEmptyConfig) {
  SchedulerFactoryConfig bad = config;
  bad.capacities.clear();
  EXPECT_THROW(make_scheduler("RR", bad, alarms, simulator, rng), std::invalid_argument);
  bad = config;
  bad.initial_weights.clear();
  EXPECT_THROW(make_scheduler("RR", bad, alarms, simulator, rng), std::invalid_argument);
}

}  // namespace
}  // namespace adattl::core
