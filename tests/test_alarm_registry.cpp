#include "core/alarm_registry.h"

#include <gtest/gtest.h>

namespace adattl::core {
namespace {

TEST(AlarmRegistry, RejectsBadConstruction) {
  EXPECT_THROW(AlarmRegistry(0, 0.9), std::invalid_argument);
  EXPECT_THROW(AlarmRegistry(3, 0.0), std::invalid_argument);
  EXPECT_THROW(AlarmRegistry(3, 1.5), std::invalid_argument);
}

TEST(AlarmRegistry, AllEligibleInitially) {
  AlarmRegistry reg(3, 0.9);
  for (int s = 0; s < 3; ++s) {
    EXPECT_FALSE(reg.is_alarmed(s));
    EXPECT_TRUE(reg.eligible()[static_cast<std::size_t>(s)]);
  }
}

TEST(AlarmRegistry, CrossingThresholdRaisesAlarm) {
  AlarmRegistry reg(3, 0.9);
  reg.observe(8.0, {0.5, 0.95, 0.2});
  EXPECT_FALSE(reg.is_alarmed(0));
  EXPECT_TRUE(reg.is_alarmed(1));
  EXPECT_FALSE(reg.eligible()[1]);
  EXPECT_EQ(reg.alarm_signals(), 1u);
}

TEST(AlarmRegistry, ExactlyAtThresholdIsNotAlarm) {
  AlarmRegistry reg(1, 0.9);
  reg.observe(8.0, {0.9});
  EXPECT_FALSE(reg.is_alarmed(0));
}

TEST(AlarmRegistry, RecoveryRestoresEligibility) {
  AlarmRegistry reg(2, 0.9);
  reg.observe(8.0, {0.95, 0.5});
  EXPECT_TRUE(reg.is_alarmed(0));
  reg.observe(16.0, {0.7, 0.5});
  EXPECT_FALSE(reg.is_alarmed(0));
  EXPECT_TRUE(reg.eligible()[0]);
  EXPECT_EQ(reg.alarm_signals(), 1u);
  EXPECT_EQ(reg.normal_signals(), 1u);
}

TEST(AlarmRegistry, SustainedOverloadSendsOneSignal) {
  AlarmRegistry reg(1, 0.9);
  reg.observe(8.0, {0.95});
  reg.observe(16.0, {0.99});
  reg.observe(24.0, {0.92});
  EXPECT_EQ(reg.alarm_signals(), 1u);  // asynchronous: only on transition
}

TEST(AlarmRegistry, AllAlarmedFallsBackToAllEligible) {
  AlarmRegistry reg(3, 0.9);
  reg.observe(8.0, {0.95, 0.99, 1.0});
  for (int s = 0; s < 3; ++s) {
    EXPECT_TRUE(reg.is_alarmed(s));
    EXPECT_TRUE(reg.eligible()[static_cast<std::size_t>(s)]) << s;
  }
}

TEST(AlarmRegistry, PartialRecoveryFromAllAlarmed) {
  AlarmRegistry reg(2, 0.9);
  reg.observe(8.0, {0.95, 0.95});
  reg.observe(16.0, {0.5, 0.95});
  EXPECT_TRUE(reg.eligible()[0]);
  EXPECT_FALSE(reg.eligible()[1]);
}

TEST(AlarmRegistry, DisabledRegistryIgnoresReports) {
  AlarmRegistry reg(2, 0.9, /*enabled=*/false);
  reg.observe(8.0, {1.0, 1.0});
  EXPECT_FALSE(reg.is_alarmed(0));
  EXPECT_TRUE(reg.eligible()[0]);
  EXPECT_EQ(reg.alarm_signals(), 0u);
}

TEST(AlarmRegistry, SizeMismatchThrows) {
  AlarmRegistry reg(2, 0.9);
  EXPECT_THROW(reg.observe(8.0, {0.5}), std::invalid_argument);
}

}  // namespace
}  // namespace adattl::core
