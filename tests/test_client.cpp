#include "workload/client.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/policy_factory.h"
#include "dnscache/name_server.h"
#include "geo/geo_model.h"

namespace adattl::workload {
namespace {

/// A minimal self-contained world (2 fast homogeneous servers, RR DNS, one
/// name server for domain 0) so client behaviour can be observed without
/// queueing noise.
struct World {
  World() : rng(21), alarms(2, 0.9) {
    web::ClusterSpec spec;
    spec.relative = {1.0, 1.0};
    spec.total_capacity_hits_per_sec = 2000.0;
    cluster = std::make_unique<web::Cluster>(simulator, spec, 3, rng);

    core::SchedulerFactoryConfig fc;
    fc.capacities = cluster->capacities();
    fc.initial_weights = {3.0, 2.0, 1.0};
    fc.class_threshold = 0.25;
    bundle = core::make_scheduler("RR", fc, alarms, simulator, rng);
    ns = std::make_unique<dnscache::NameServer>(simulator, 0, *bundle.scheduler);
    dispatcher = std::make_unique<web::DirectDispatcher>(*cluster);
  }

  sim::Simulator simulator;
  sim::RngStream rng;
  core::AlarmRegistry alarms;
  std::unique_ptr<web::Cluster> cluster;
  core::SchedulerBundle bundle;
  std::unique_ptr<dnscache::NameServer> ns;
  std::unique_ptr<web::DirectDispatcher> dispatcher;
};

class ClientTest : public ::testing::Test {
 protected:
  World w;
  SessionProfile profile;
};

TEST_F(ClientTest, SessionProfileValidation) {
  SessionProfile p;
  EXPECT_NO_THROW(p.validate());
  EXPECT_DOUBLE_EQ(p.mean_hits_per_page(), 10.0);
  p.mean_pages_per_session = 0.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = SessionProfile{};
  p.min_hits_per_page = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = SessionProfile{};
  p.max_hits_per_page = 3;  // below min
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST_F(ClientTest, ClientGeneratesSessionsAndPages) {
  ThinkTimeModel think({15.0, 15.0, 15.0});
  Client client(w.simulator, *w.ns, *w.dispatcher, profile, think, w.rng.split());
  client.start(0.0);
  w.simulator.run_until(3600.0);
  EXPECT_GT(client.sessions_started(), 5u);
  // Mean 20 pages/session at ~15 s per page: roughly 12 sessions/hour.
  EXPECT_GT(client.pages_requested(), 100u);
  EXPECT_NEAR(static_cast<double>(client.pages_requested()) /
                  static_cast<double>(client.sessions_started()),
              20.0, 8.0);
}

TEST_F(ClientTest, OneAddressResolutionPerSession) {
  ThinkTimeModel think({15.0, 15.0, 15.0});
  Client client(w.simulator, *w.ns, *w.dispatcher, profile, think, w.rng.split());
  client.start(0.0);
  w.simulator.run_until(3600.0);
  const std::uint64_t resolutions = w.ns->cache_hits() + w.ns->authoritative_queries();
  EXPECT_EQ(resolutions, client.sessions_started());
}

TEST_F(ClientTest, AllPagesLandOnTheClusterWithValidHitCounts) {
  ThinkTimeModel think({5.0, 5.0, 5.0});
  Client client(w.simulator, *w.ns, *w.dispatcher, profile, think, w.rng.split());
  client.start(0.0);
  w.simulator.run_until(2000.0);
  std::uint64_t pages = 0, hits = 0;
  for (int s = 0; s < w.cluster->size(); ++s) {
    pages += w.cluster->server(s).pages_served();
    hits += w.cluster->server(s).hits_served();
  }
  EXPECT_GT(pages, 0u);
  // Uniform 5..15 hits per page: totals must lie inside those bounds.
  EXPECT_GE(hits, 5 * pages);
  EXPECT_LE(hits, 15 * pages);
  // Hit counters attribute everything to this client's domain (0).
  EXPECT_EQ(w.cluster->server(0).lifetime_domain_hits()[1], 0u);
  EXPECT_EQ(w.cluster->server(0).lifetime_domain_hits()[2], 0u);
}

TEST_F(ClientTest, ClientKeepsMappingForWholeSession) {
  // One client, think time long enough that the NS TTL (240 s) expires
  // mid-session; the session must keep hitting the same server anyway.
  SessionProfile long_session;
  long_session.mean_pages_per_session = 1000.0;  // effectively endless
  ThinkTimeModel think({50.0, 50.0, 50.0});
  Client client(w.simulator, *w.ns, *w.dispatcher, long_session, think, w.rng.split());
  client.start(0.0);
  w.simulator.run_until(2000.0);  // far past the first TTL
  // All pages landed on one server: the other served nothing.
  const std::uint64_t s0 = w.cluster->server(0).pages_served();
  const std::uint64_t s1 = w.cluster->server(1).pages_served();
  EXPECT_GT(s0 + s1, 10u);
  EXPECT_TRUE(s0 == 0 || s1 == 0) << s0 << " vs " << s1;
}

TEST_F(ClientTest, ThinkTimePacesLoad) {
  ThinkTimeModel fast_think({1.0, 1.0, 1.0});
  Client fast(w.simulator, *w.ns, *w.dispatcher, profile, fast_think, w.rng.split());
  fast.start(0.0);
  w.simulator.run_until(1000.0);

  World slow_world;
  ThinkTimeModel slow_think({20.0, 20.0, 20.0});
  Client slow(slow_world.simulator, *slow_world.ns, *slow_world.dispatcher, profile,
              slow_think, slow_world.rng.split());
  slow.start(0.0);
  slow_world.simulator.run_until(1000.0);
  EXPECT_GT(fast.pages_requested(), 3 * slow.pages_requested());
}

TEST_F(ClientTest, RejectsBadThinkTime) {
  EXPECT_THROW(ThinkTimeModel({0.0}), std::invalid_argument);
  // A resolver whose domain lies outside the think model is rejected too.
  ThinkTimeModel too_small({15.0});  // only domain 0... but ns serves domain 0
  dnscache::NameServer ns3(w.simulator, 2, *w.bundle.scheduler);
  EXPECT_THROW(Client(w.simulator, ns3, *w.dispatcher, profile, too_small, w.rng.split()),
               std::invalid_argument);
}

double empirical_hits_mean(const SessionProfile& p, int draws, std::uint64_t seed) {
  sim::RngStream rng(seed);
  double sum = 0.0;
  for (int i = 0; i < draws; ++i) {
    const int hits = p.sample_hits(rng);
    EXPECT_GE(hits, p.min_hits_per_page);
    EXPECT_LE(hits, p.max_hits_per_page);
    sum += static_cast<double>(hits);
  }
  return sum / static_cast<double>(draws);
}

TEST_F(ClientTest, ParetoHitsEmpiricalMeanMatchesAnalyticMean) {
  SessionProfile p;
  p.hits_distribution = HitsDistribution::kPareto;
  for (double a : {1.5, 2.5}) {
    p.pareto_shape = a;
    const double analytic = p.mean_hits_per_page();
    const double empirical = empirical_hits_mean(p, 200000, 42);
    // sample_hits floors the continuous variate, so the empirical mean
    // sits up to ~0.5 below the continuous-model analytic mean.
    EXPECT_NEAR(empirical, analytic, 0.75) << "shape " << a;
    EXPECT_GT(analytic, static_cast<double>(p.min_hits_per_page));
    EXPECT_LT(analytic, static_cast<double>(p.max_hits_per_page) + 1.0);
  }
}

TEST_F(ClientTest, ParetoHitsShapeOneUsesLogFormAndStillMatches) {
  // a == 1 hits the removable singularity of the bounded-Pareto mean; the
  // closed form switches to L·H/(H−L)·ln(H/L) and must agree with draws.
  SessionProfile p;
  p.hits_distribution = HitsDistribution::kPareto;
  p.pareto_shape = 1.0;
  const double analytic = p.mean_hits_per_page();
  EXPECT_TRUE(std::isfinite(analytic));
  const double empirical = empirical_hits_mean(p, 200000, 7);
  EXPECT_NEAR(empirical, analytic, 0.75);
}

TEST_F(ClientTest, ParetoMeanIsContinuousThroughShapeOne) {
  // The general-form mean must approach the log-form limit as a → 1, from
  // both sides — guards the 1/(a−1) factor against sign/cancellation slips.
  SessionProfile p;
  p.hits_distribution = HitsDistribution::kPareto;
  p.pareto_shape = 1.0;
  const double at_one = p.mean_hits_per_page();
  p.pareto_shape = 1.0 + 1e-6;
  EXPECT_NEAR(p.mean_hits_per_page(), at_one, 1e-3);
  p.pareto_shape = 1.0 - 1e-6;
  EXPECT_NEAR(p.mean_hits_per_page(), at_one, 1e-3);
  p.pareto_shape = 1.05;
  const double empirical = empirical_hits_mean(p, 200000, 11);
  EXPECT_NEAR(empirical, p.mean_hits_per_page(), 0.75);
}

TEST_F(ClientTest, NetworkTimeChargesReplyLegOnlyOnCompletion) {
  // Regression (PR 8): the pre-fix client charged the full round trip at
  // dispatch, so pages that never completed (crashed server, retried)
  // still accumulated the reply leg they never received. The fix charges
  // rtt/2 per dispatch and the remaining rtt/2 only in
  // on_server_complete().
  //
  // Timeline with rtt = 0.2, retry delay 1.0, server crashed until t = 2:
  //   t=0.0  dispatch #1 (+0.1) -> arrives 0.1, rejected, retry at 1.1
  //   t=1.1  dispatch #2 (+0.1) -> arrives 1.2, rejected, retry at 2.2
  //   t=2.2  dispatch #3 (+0.1) -> served; reply leg (+0.1) on completion
  // Correct total: 0.4 (three request legs + one reply leg).
  // Pre-fix total: 0.6 (three full round trips) — this test fails there.
  auto geo = std::make_shared<const geo::GeoModel>(
      geo::GeoModel::regions(3, 2, 1, 0.2, 0.5));  // 1 region: rtt = 0.2 always
  SessionProfile one_page;
  one_page.mean_pages_per_session = 1.0;  // geometric with mean 1: always 1 page
  ThinkTimeModel think({1e6, 1e6, 1e6});  // park the client after the page
  Client client(w.simulator, *w.ns, *w.dispatcher, one_page, think, w.rng.split(),
                geo.get(), 1.0);
  w.cluster->server(0).set_crashed(true);
  w.cluster->server(1).set_crashed(true);
  w.simulator.at(2.0, sim::assert_inline([this] {
                   w.cluster->server(0).set_crashed(false);
                   w.cluster->server(1).set_crashed(false);
                 }));
  client.start(0.0);
  w.simulator.run_until(100.0);

  EXPECT_EQ(client.pages_requested(), 1u);
  EXPECT_EQ(client.pages_failed(), 2u);
  EXPECT_NEAR(client.network_time_sec(), 0.4, 1e-12);
}

TEST_F(ClientTest, NetworkTimeIsOneRoundTripPerServedPage) {
  // Fault-free single-page session: exactly one request leg plus one
  // reply leg — one full round trip, nothing more.
  auto geo = std::make_shared<const geo::GeoModel>(
      geo::GeoModel::regions(3, 2, 1, 0.3, 0.5));
  SessionProfile one_page;
  one_page.mean_pages_per_session = 1.0;
  ThinkTimeModel think({1e6, 1e6, 1e6});
  Client client(w.simulator, *w.ns, *w.dispatcher, one_page, think, w.rng.split(),
                geo.get(), 1.0);
  client.start(0.0);
  w.simulator.run_until(100.0);
  EXPECT_EQ(client.pages_requested(), 1u);
  EXPECT_EQ(client.pages_failed(), 0u);
  EXPECT_NEAR(client.network_time_sec(), 0.3, 1e-12);
}

TEST_F(ClientTest, StartDelayDefersFirstSession) {
  ThinkTimeModel think({15.0, 15.0, 15.0});
  Client client(w.simulator, *w.ns, *w.dispatcher, profile, think, w.rng.split());
  client.start(100.0);
  w.simulator.run_until(99.0);
  EXPECT_EQ(client.sessions_started(), 0u);
  w.simulator.run_until(101.0);
  EXPECT_EQ(client.sessions_started(), 1u);
}

}  // namespace
}  // namespace adattl::workload
