#include "workload/client.h"

#include <gtest/gtest.h>

#include "core/policy_factory.h"
#include "dnscache/name_server.h"

namespace adattl::workload {
namespace {

/// A minimal self-contained world (2 fast homogeneous servers, RR DNS, one
/// name server for domain 0) so client behaviour can be observed without
/// queueing noise.
struct World {
  World() : rng(21), alarms(2, 0.9) {
    web::ClusterSpec spec;
    spec.relative = {1.0, 1.0};
    spec.total_capacity_hits_per_sec = 2000.0;
    cluster = std::make_unique<web::Cluster>(simulator, spec, 3, rng);

    core::SchedulerFactoryConfig fc;
    fc.capacities = cluster->capacities();
    fc.initial_weights = {3.0, 2.0, 1.0};
    fc.class_threshold = 0.25;
    bundle = core::make_scheduler("RR", fc, alarms, simulator, rng);
    ns = std::make_unique<dnscache::NameServer>(simulator, 0, *bundle.scheduler);
    dispatcher = std::make_unique<web::DirectDispatcher>(*cluster);
  }

  sim::Simulator simulator;
  sim::RngStream rng;
  core::AlarmRegistry alarms;
  std::unique_ptr<web::Cluster> cluster;
  core::SchedulerBundle bundle;
  std::unique_ptr<dnscache::NameServer> ns;
  std::unique_ptr<web::DirectDispatcher> dispatcher;
};

class ClientTest : public ::testing::Test {
 protected:
  World w;
  SessionProfile profile;
};

TEST_F(ClientTest, SessionProfileValidation) {
  SessionProfile p;
  EXPECT_NO_THROW(p.validate());
  EXPECT_DOUBLE_EQ(p.mean_hits_per_page(), 10.0);
  p.mean_pages_per_session = 0.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = SessionProfile{};
  p.min_hits_per_page = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = SessionProfile{};
  p.max_hits_per_page = 3;  // below min
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST_F(ClientTest, ClientGeneratesSessionsAndPages) {
  ThinkTimeModel think({15.0, 15.0, 15.0});
  Client client(w.simulator, *w.ns, *w.dispatcher, profile, think, w.rng.split());
  client.start(0.0);
  w.simulator.run_until(3600.0);
  EXPECT_GT(client.sessions_started(), 5u);
  // Mean 20 pages/session at ~15 s per page: roughly 12 sessions/hour.
  EXPECT_GT(client.pages_requested(), 100u);
  EXPECT_NEAR(static_cast<double>(client.pages_requested()) /
                  static_cast<double>(client.sessions_started()),
              20.0, 8.0);
}

TEST_F(ClientTest, OneAddressResolutionPerSession) {
  ThinkTimeModel think({15.0, 15.0, 15.0});
  Client client(w.simulator, *w.ns, *w.dispatcher, profile, think, w.rng.split());
  client.start(0.0);
  w.simulator.run_until(3600.0);
  const std::uint64_t resolutions = w.ns->cache_hits() + w.ns->authoritative_queries();
  EXPECT_EQ(resolutions, client.sessions_started());
}

TEST_F(ClientTest, AllPagesLandOnTheClusterWithValidHitCounts) {
  ThinkTimeModel think({5.0, 5.0, 5.0});
  Client client(w.simulator, *w.ns, *w.dispatcher, profile, think, w.rng.split());
  client.start(0.0);
  w.simulator.run_until(2000.0);
  std::uint64_t pages = 0, hits = 0;
  for (int s = 0; s < w.cluster->size(); ++s) {
    pages += w.cluster->server(s).pages_served();
    hits += w.cluster->server(s).hits_served();
  }
  EXPECT_GT(pages, 0u);
  // Uniform 5..15 hits per page: totals must lie inside those bounds.
  EXPECT_GE(hits, 5 * pages);
  EXPECT_LE(hits, 15 * pages);
  // Hit counters attribute everything to this client's domain (0).
  EXPECT_EQ(w.cluster->server(0).lifetime_domain_hits()[1], 0u);
  EXPECT_EQ(w.cluster->server(0).lifetime_domain_hits()[2], 0u);
}

TEST_F(ClientTest, ClientKeepsMappingForWholeSession) {
  // One client, think time long enough that the NS TTL (240 s) expires
  // mid-session; the session must keep hitting the same server anyway.
  SessionProfile long_session;
  long_session.mean_pages_per_session = 1000.0;  // effectively endless
  ThinkTimeModel think({50.0, 50.0, 50.0});
  Client client(w.simulator, *w.ns, *w.dispatcher, long_session, think, w.rng.split());
  client.start(0.0);
  w.simulator.run_until(2000.0);  // far past the first TTL
  // All pages landed on one server: the other served nothing.
  const std::uint64_t s0 = w.cluster->server(0).pages_served();
  const std::uint64_t s1 = w.cluster->server(1).pages_served();
  EXPECT_GT(s0 + s1, 10u);
  EXPECT_TRUE(s0 == 0 || s1 == 0) << s0 << " vs " << s1;
}

TEST_F(ClientTest, ThinkTimePacesLoad) {
  ThinkTimeModel fast_think({1.0, 1.0, 1.0});
  Client fast(w.simulator, *w.ns, *w.dispatcher, profile, fast_think, w.rng.split());
  fast.start(0.0);
  w.simulator.run_until(1000.0);

  World slow_world;
  ThinkTimeModel slow_think({20.0, 20.0, 20.0});
  Client slow(slow_world.simulator, *slow_world.ns, *slow_world.dispatcher, profile,
              slow_think, slow_world.rng.split());
  slow.start(0.0);
  slow_world.simulator.run_until(1000.0);
  EXPECT_GT(fast.pages_requested(), 3 * slow.pages_requested());
}

TEST_F(ClientTest, RejectsBadThinkTime) {
  EXPECT_THROW(ThinkTimeModel({0.0}), std::invalid_argument);
  // A resolver whose domain lies outside the think model is rejected too.
  ThinkTimeModel too_small({15.0});  // only domain 0... but ns serves domain 0
  dnscache::NameServer ns3(w.simulator, 2, *w.bundle.scheduler);
  EXPECT_THROW(Client(w.simulator, ns3, *w.dispatcher, profile, too_small, w.rng.split()),
               std::invalid_argument);
}

TEST_F(ClientTest, StartDelayDefersFirstSession) {
  ThinkTimeModel think({15.0, 15.0, 15.0});
  Client client(w.simulator, *w.ns, *w.dispatcher, profile, think, w.rng.split());
  client.start(100.0);
  w.simulator.run_until(99.0);
  EXPECT_EQ(client.sessions_started(), 0u);
  w.simulator.run_until(101.0);
  EXPECT_EQ(client.sessions_started(), 1u);
}

}  // namespace
}  // namespace adattl::workload
