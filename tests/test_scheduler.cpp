#include "core/scheduler.h"

#include <gtest/gtest.h>

#include "core/policy_factory.h"
#include "experiment/site.h"
#include "sim/random.h"

namespace adattl::core {
namespace {

class SchedulerEdgeTest : public ::testing::Test {
 protected:
  SchedulerEdgeTest() : rng(2), alarms(3, 0.9) {
    config.capacities = {100.0, 80.0, 60.0};
    config.initial_weights = sim::ZipfDistribution(10, 1.0).probabilities();
    config.class_threshold = 0.1;
  }

  sim::Simulator simulator;
  sim::RngStream rng;
  AlarmRegistry alarms;
  SchedulerFactoryConfig config;
};

TEST_F(SchedulerEdgeTest, AllServersAlarmedStillAnswers) {
  SchedulerBundle b = make_scheduler("DRR2-TTL/S_K", config, alarms, simulator, rng);
  alarms.observe(8.0, {0.99, 0.99, 0.99});
  // The DNS must keep answering even when every server is overloaded.
  for (int i = 0; i < 30; ++i) {
    const Decision d = b.scheduler->schedule(i % 10);
    EXPECT_GE(d.server, 0);
    EXPECT_LT(d.server, 3);
    EXPECT_GT(d.ttl_sec, 0.0);
  }
}

TEST_F(SchedulerEdgeTest, RecoveryRedirectsTraffic) {
  SchedulerBundle b = make_scheduler("RR", config, alarms, simulator, rng);
  alarms.observe(8.0, {0.99, 0.5, 0.5});
  for (int i = 0; i < 10; ++i) EXPECT_NE(b.scheduler->schedule(0).server, 0);
  alarms.observe(16.0, {0.5, 0.5, 0.5});
  bool server0_used = false;
  for (int i = 0; i < 6; ++i) server0_used |= (b.scheduler->schedule(0).server == 0);
  EXPECT_TRUE(server0_used);
}

TEST_F(SchedulerEdgeTest, SingleServerSiteAlwaysPicksIt) {
  AlarmRegistry one(1, 0.9);
  SchedulerFactoryConfig c = config;
  c.capacities = {100.0};
  for (const char* p : {"RR", "RR2", "DAL", "MRL", "PRR-TTL/K", "DRR2-TTL/S_K"}) {
    SchedulerBundle b = make_scheduler(p, c, one, simulator, rng);
    for (int i = 0; i < 5; ++i) EXPECT_EQ(b.scheduler->schedule(i).server, 0) << p;
  }
}

TEST_F(SchedulerEdgeTest, SingleDomainSiteWorks) {
  SchedulerFactoryConfig c = config;
  c.initial_weights = {1.0};
  SchedulerBundle b = make_scheduler("PRR2-TTL/K", c, alarms, simulator, rng);
  const Decision d = b.scheduler->schedule(0);
  EXPECT_GT(d.ttl_sec, 0.0);
  // One domain, one class: calibration forces the constant-TTL rate.
  EXPECT_NEAR(d.ttl_sec, 240.0, 1e-9);
}

TEST_F(SchedulerEdgeTest, MissingPolicyPartsRejected) {
  EXPECT_THROW(DnsScheduler("x", nullptr, std::make_unique<ConstantTtlPolicy>(240.0), alarms),
               std::invalid_argument);
}

TEST(SchedulerStress, LargeSiteShortRunStaysPhysical) {
  // 15 servers, 100 domains, 2000 clients: not a paper scenario, but the
  // library must scale to it without blowing invariants.
  experiment::SimulationConfig cfg;
  cfg.cluster.relative.assign(15, 1.0);
  for (std::size_t i = 5; i < 15; ++i) cfg.cluster.relative[i] = i < 10 ? 0.8 : 0.5;
  cfg.cluster.total_capacity_hits_per_sec = 2000.0;
  cfg.num_domains = 100;
  cfg.total_clients = 2000;
  cfg.policy = "DRR2-TTL/S_K";
  cfg.warmup_sec = 60.0;
  cfg.duration_sec = 600.0;
  cfg.seed = 404;
  experiment::Site site(cfg);
  const experiment::RunResult r = site.run();
  EXPECT_NEAR(r.aggregate_utilization, 2.0 / 3.0, 0.08);
  for (double u : r.mean_server_util) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-9);
  }
  EXPECT_GT(r.total_pages, 50000u);
  EXPECT_LT(r.dns_controlled_fraction, 0.05);
}

}  // namespace
}  // namespace adattl::core
