#include "core/ttl_policy.h"

#include <gtest/gtest.h>

#include "sim/random.h"

namespace adattl::core {
namespace {

std::vector<double> zipf_weights(int k) {
  return sim::ZipfDistribution(k, 1.0).probabilities();
}

std::vector<double> uniform_shares(std::size_t n) {
  return std::vector<double>(n, 1.0 / static_cast<double>(n));
}

TEST(ConstantTtl, AlwaysReturnsValue) {
  ConstantTtlPolicy p(240.0);
  EXPECT_DOUBLE_EQ(p.ttl(0, 0), 240.0);
  EXPECT_DOUBLE_EQ(p.ttl(19, 6), 240.0);
  EXPECT_EQ(p.name(), "TTL/1");
  EXPECT_THROW(ConstantTtlPolicy(0.0), std::invalid_argument);
}

TEST(AdaptiveTtl, PerDomainTtlScalesWithInverseWeight) {
  DomainModel m(zipf_weights(20), 1.0 / 20);
  AdaptiveTtlPolicy p(m, std::vector<double>(7, 70.0), kPerDomainClasses,
                      /*server_term=*/false, uniform_shares(7));
  // Pure Zipf: TTL_j = base * j.
  for (int d = 0; d < 20; ++d) {
    EXPECT_NEAR(p.ttl(d, 0), p.base() * (d + 1), 1e-9) << d;
  }
  // TTL is independent of the server for the probabilistic family.
  EXPECT_DOUBLE_EQ(p.ttl(3, 0), p.ttl(3, 6));
}

TEST(AdaptiveTtl, CalibrationMatchesConstantTtlAddressRate) {
  DomainModel m(zipf_weights(20), 1.0 / 20);
  const double reference = 240.0;
  const double target_rate = 20.0 / reference;
  for (int classes : {1, 2, 3, kPerDomainClasses}) {
    for (bool server_term : {false, true}) {
      AdaptiveTtlPolicy p(m, {100.0, 80.0, 60.0}, classes, server_term,
                          uniform_shares(3), reference);
      EXPECT_NEAR(p.expected_address_rate(), target_rate, 1e-9)
          << "classes=" << classes << " server_term=" << server_term;
    }
  }
}

TEST(AdaptiveTtl, RejectsNonPositiveCapacities) {
  DomainModel m(zipf_weights(5), 0.2);
  // A zero capacity would silently poison the capacity-share terms
  // (division by sum, per-server ratios) instead of failing loudly.
  EXPECT_THROW(
      AdaptiveTtlPolicy(m, {100.0, 0.0, 60.0}, 2, false, uniform_shares(3)),
      std::invalid_argument);
  EXPECT_THROW(
      AdaptiveTtlPolicy(m, {100.0, -5.0, 60.0}, 2, true, uniform_shares(3)),
      std::invalid_argument);
  EXPECT_NO_THROW(
      AdaptiveTtlPolicy(m, {100.0, 80.0, 60.0}, 2, false, uniform_shares(3)));
}

TEST(AdaptiveTtl, SingleClassNoServerTermDegeneratesToConstant) {
  DomainModel m(zipf_weights(10), 0.1);
  AdaptiveTtlPolicy p(m, {100.0, 50.0}, 1, false, uniform_shares(2), 240.0);
  EXPECT_NEAR(p.ttl(0, 0), 240.0, 1e-9);
  EXPECT_NEAR(p.ttl(9, 1), 240.0, 1e-9);
}

TEST(AdaptiveTtl, ServerTermScalesWithCapacityRatio) {
  DomainModel m(zipf_weights(5), 0.2);
  AdaptiveTtlPolicy p(m, {100.0, 80.0, 50.0}, 1, /*server_term=*/true,
                      uniform_shares(3));
  // TTL_i / TTL_N = C_i / C_N.
  EXPECT_NEAR(p.ttl(0, 0) / p.ttl(0, 2), 2.0, 1e-9);
  EXPECT_NEAR(p.ttl(0, 1) / p.ttl(0, 2), 1.6, 1e-9);
}

TEST(AdaptiveTtl, MinTtlIsHottestDomainOnWeakestServer) {
  DomainModel m(zipf_weights(20), 1.0 / 20);
  AdaptiveTtlPolicy p(m, {100.0, 50.0}, kPerDomainClasses, true, uniform_shares(2));
  double observed_min = 1e18;
  for (int d = 0; d < 20; ++d) {
    for (int s = 0; s < 2; ++s) observed_min = std::min(observed_min, p.ttl(d, s));
  }
  EXPECT_NEAR(observed_min, p.min_ttl(), 1e-9);
  EXPECT_NEAR(observed_min, p.ttl(0, 1), 1e-9);  // rank-1 domain, weakest server
}

TEST(AdaptiveTtl, TwoClassPolicyUsesTwoDistinctTtls) {
  DomainModel m(zipf_weights(20), 1.0 / 20);
  AdaptiveTtlPolicy p(m, std::vector<double>(7, 70.0), 2, false, uniform_shares(7));
  // Hot domains (0-4) share one TTL; normal (5-19) share a longer one.
  const double hot = p.ttl(0, 0);
  const double normal = p.ttl(10, 0);
  EXPECT_GT(normal, hot);
  for (int d = 0; d < 5; ++d) EXPECT_DOUBLE_EQ(p.ttl(d, 0), hot);
  for (int d = 5; d < 20; ++d) EXPECT_DOUBLE_EQ(p.ttl(d, 0), normal);
}

TEST(AdaptiveTtl, HotterDomainsNeverGetLongerTtl) {
  DomainModel m(zipf_weights(30), 1.0 / 30);
  for (int classes : {2, 4, kPerDomainClasses}) {
    AdaptiveTtlPolicy p(m, {100.0, 60.0}, classes, true, uniform_shares(2));
    for (int d = 1; d < 30; ++d) {
      EXPECT_LE(p.ttl(d - 1, 0), p.ttl(d, 0) + 1e-9) << "classes=" << classes << " d=" << d;
    }
  }
}

TEST(AdaptiveTtl, RecalibratesOnWeightChange) {
  DomainModel m({8.0, 1.0, 1.0}, 0.3);
  AdaptiveTtlPolicy p(m, {100.0}, kPerDomainClasses, false, {1.0});
  m.subscribe([&p] { p.recalibrate(); });
  const double before = p.ttl(2, 0);
  m.update_weights({1.0, 1.0, 8.0});  // domain 2 becomes the hot one
  const double after = p.ttl(2, 0);
  EXPECT_GT(before, after);  // was cold (long TTL), now hottest (short TTL)
  EXPECT_NEAR(p.expected_address_rate(), 3.0 / 240.0, 1e-9);  // still calibrated
}

TEST(AdaptiveTtl, CalibrationOffUsesReferenceAsBase) {
  DomainModel m(zipf_weights(20), 1.0 / 20);
  AdaptiveTtlPolicy p(m, {100.0, 50.0}, kPerDomainClasses, false, uniform_shares(2),
                      240.0, /*calibrate=*/false);
  EXPECT_DOUBLE_EQ(p.base(), 240.0);
  EXPECT_DOUBLE_EQ(p.ttl(0, 0), 240.0);
}

TEST(AdaptiveTtl, NamesFollowPaperConvention) {
  DomainModel m(zipf_weights(5), 0.2);
  const std::vector<double> cap{100.0, 50.0};
  EXPECT_EQ(AdaptiveTtlPolicy(m, cap, 1, false, uniform_shares(2)).name(), "TTL/1");
  EXPECT_EQ(AdaptiveTtlPolicy(m, cap, 2, false, uniform_shares(2)).name(), "TTL/2");
  EXPECT_EQ(AdaptiveTtlPolicy(m, cap, kPerDomainClasses, false, uniform_shares(2)).name(),
            "TTL/K");
  EXPECT_EQ(AdaptiveTtlPolicy(m, cap, 1, true, uniform_shares(2)).name(), "TTL/S_1");
  EXPECT_EQ(AdaptiveTtlPolicy(m, cap, 2, true, uniform_shares(2)).name(), "TTL/S_2");
  EXPECT_EQ(AdaptiveTtlPolicy(m, cap, kPerDomainClasses, true, uniform_shares(2)).name(),
            "TTL/S_K");
}

TEST(AdaptiveTtl, CapacityWeightedSharesShiftCalibration) {
  DomainModel m(zipf_weights(10), 0.1);
  // PRR shares lean toward the big server, whose TTL factor is larger, so
  // the calibrated base must shrink relative to uniform shares.
  AdaptiveTtlPolicy uniform(m, {100.0, 25.0}, kPerDomainClasses, true, uniform_shares(2));
  AdaptiveTtlPolicy weighted(m, {100.0, 25.0}, kPerDomainClasses, true, {0.8, 0.2});
  EXPECT_LT(weighted.base(), uniform.base());
  EXPECT_NEAR(weighted.expected_address_rate(), 10.0 / 240.0, 1e-9);
}

TEST(AdaptiveTtl, RejectsBadArguments) {
  DomainModel m(zipf_weights(5), 0.2);
  EXPECT_THROW(AdaptiveTtlPolicy(m, {}, 1, false, {}), std::invalid_argument);
  EXPECT_THROW(AdaptiveTtlPolicy(m, {100.0}, 1, false, {0.5, 0.5}), std::invalid_argument);
  EXPECT_THROW(AdaptiveTtlPolicy(m, {100.0}, 0, false, {1.0}), std::invalid_argument);
  EXPECT_THROW(AdaptiveTtlPolicy(m, {100.0}, 1, false, {1.0}, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace adattl::core
