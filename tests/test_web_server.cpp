#include "web/web_server.h"

#include <gtest/gtest.h>

#include "sim/random.h"
#include "sim/simulator.h"

namespace adattl::web {
namespace {

class WebServerTest : public ::testing::Test {
 protected:
  sim::Simulator simulator;
  sim::RngStream rng{1234};
};

TEST_F(WebServerTest, RejectsBadConstruction) {
  EXPECT_THROW(WebServer(simulator, 0, 0.0, 5, rng.split()), std::invalid_argument);
  EXPECT_THROW(WebServer(simulator, 0, -1.0, 5, rng.split()), std::invalid_argument);
  EXPECT_THROW(WebServer(simulator, 0, 10.0, 0, rng.split()), std::invalid_argument);
}

TEST_F(WebServerTest, ServesAPageAndInvokesCompletion) {
  WebServer s(simulator, 0, 100.0, 3, rng.split());
  bool done = false;
  s.submit_page(PageRequest{1, 10, [&] { done = true; }});
  simulator.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(s.pages_served(), 1u);
  EXPECT_EQ(s.hits_served(), 10u);
}

TEST_F(WebServerTest, ServiceTimeScalesWithHitsAndCapacity) {
  WebServer s(simulator, 0, 50.0, 1, rng.split());
  // Mean service of a 10-hit page at 50 hits/s is 0.2 s; with many pages
  // the average must converge (Erlang mean).
  const int pages = 5000;
  int completed = 0;
  double submit_time = 0.0;
  sim::RunningStat durations;
  // Submit sequentially: next page only after the previous completes, so
  // queueing never inflates the measured service time.
  std::function<void()> submit = [&] {
    if (completed == pages) return;
    submit_time = simulator.now();
    s.submit_page(PageRequest{0, 10, [&] {
                                durations.add(simulator.now() - submit_time);
                                ++completed;
                                submit();
                              }});
  };
  submit();
  simulator.run();
  EXPECT_EQ(completed, pages);
  EXPECT_NEAR(durations.mean(), 0.2, 0.01);
}

TEST_F(WebServerTest, FifoOrderPreserved) {
  WebServer s(simulator, 0, 100.0, 1, rng.split());
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.submit_page(PageRequest{0, 5, [&order, i] { order.push_back(i); }});
  }
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_F(WebServerTest, BusyTimeAccountsQueueingCorrectly) {
  WebServer s(simulator, 0, 100.0, 1, rng.split());
  for (int i = 0; i < 20; ++i) s.submit_page(PageRequest{0, 10, nullptr});
  simulator.run();
  // 200 hits at 100 hits/s: expected total busy ~2 s (stochastic).
  const double busy = s.cumulative_busy_time(simulator.now());
  EXPECT_GT(busy, 1.0);
  EXPECT_LT(busy, 4.0);
  // The server was saturated the whole run: busy time == makespan.
  EXPECT_NEAR(busy, simulator.now(), 1e-9);
}

TEST_F(WebServerTest, BusyTimeProratesInProgressService) {
  WebServer s(simulator, 0, 100.0, 1, rng.split());
  s.submit_page(PageRequest{0, 15, nullptr});
  // Just after submission, prorated busy time is ~0 and grows with now.
  const double early = s.cumulative_busy_time(simulator.now());
  EXPECT_NEAR(early, 0.0, 1e-12);
  simulator.run_until(0.05);
  const double later = s.cumulative_busy_time(simulator.now());
  EXPECT_GT(later, 0.0);
  EXPECT_LE(later, 0.05 + 1e-12);
}

TEST_F(WebServerTest, IdleServerAccumulatesNoBusyTime) {
  WebServer s(simulator, 0, 100.0, 1, rng.split());
  simulator.run_until(100.0);
  EXPECT_DOUBLE_EQ(s.cumulative_busy_time(simulator.now()), 0.0);
}

TEST_F(WebServerTest, DomainHitCountersAccumulateAtArrival) {
  WebServer s(simulator, 0, 100.0, 3, rng.split());
  s.submit_page(PageRequest{0, 7, nullptr});
  s.submit_page(PageRequest{2, 5, nullptr});
  s.submit_page(PageRequest{2, 6, nullptr});
  // Counters reflect submissions even before service completes.
  EXPECT_EQ(s.lifetime_domain_hits()[0], 7u);
  EXPECT_EQ(s.lifetime_domain_hits()[1], 0u);
  EXPECT_EQ(s.lifetime_domain_hits()[2], 11u);
}

TEST_F(WebServerTest, DrainReturnsWindowAndResets) {
  WebServer s(simulator, 0, 100.0, 2, rng.split());
  s.submit_page(PageRequest{1, 9, nullptr});
  const auto first = s.drain_domain_hits();
  EXPECT_EQ(first[1], 9u);
  const auto second = s.drain_domain_hits();
  EXPECT_EQ(second[1], 0u);
  // Lifetime counters survive draining.
  EXPECT_EQ(s.lifetime_domain_hits()[1], 9u);
}

TEST_F(WebServerTest, RejectsInvalidPages) {
  WebServer s(simulator, 0, 100.0, 2, rng.split());
  EXPECT_THROW(s.submit_page(PageRequest{0, 0, nullptr}), std::invalid_argument);
  EXPECT_THROW(s.submit_page(PageRequest{5, 1, nullptr}), std::out_of_range);
}

TEST_F(WebServerTest, QueueLengthCountsWaitingAndInService) {
  WebServer s(simulator, 0, 100.0, 1, rng.split());
  EXPECT_EQ(s.queue_length(), 0u);
  s.submit_page(PageRequest{0, 5, nullptr});
  s.submit_page(PageRequest{0, 5, nullptr});
  s.submit_page(PageRequest{0, 5, nullptr});
  EXPECT_EQ(s.queue_length(), 3u);
  simulator.run();
  EXPECT_EQ(s.queue_length(), 0u);
}

TEST_F(WebServerTest, ResponseTimeIncludesQueueing) {
  WebServer s(simulator, 0, 100.0, 1, rng.split());
  for (int i = 0; i < 50; ++i) s.submit_page(PageRequest{0, 10, nullptr});
  simulator.run();
  // The 50th page waited for ~49 services: mean response must far exceed
  // one service time (0.1 s).
  EXPECT_GT(s.response_time().mean(), 0.5);
  EXPECT_EQ(s.response_time().count(), 50u);
}

TEST_F(WebServerTest, QueueDepthGaugeMatchesQueueLengthConvention) {
  // The "server.<id>.queue_depth" gauge follows queue_length(): waiting
  // pages PLUS the in-service one. This pins the convention so monitor
  // reports and the metrics registry can never drift apart again.
  obs::MetricsRegistry registry;
  WebServer s(simulator, 0, 100.0, 1, rng.split());
  s.bind_observability(&registry, nullptr);
  const obs::Gauge depth = registry.gauge("server.0.queue_depth");
  s.submit_page(PageRequest{0, 5, nullptr});  // in service
  s.submit_page(PageRequest{0, 5, nullptr});  // waiting
  EXPECT_EQ(s.queue_length(), 2u);
  EXPECT_DOUBLE_EQ(depth.value(), 2.0);  // not 1: the in-service page counts
  simulator.run();
  EXPECT_EQ(s.queue_length(), 0u);
  EXPECT_DOUBLE_EQ(depth.value(), 0.0);
}

TEST_F(WebServerTest, CrashDropsQueueAndCountsLostWork) {
  WebServer s(simulator, 0, 100.0, 1, rng.split());
  int failed = 0;
  for (int i = 0; i < 4; ++i) {
    s.submit_page(PageRequest{0, 10, nullptr, [&] { ++failed; }});
  }
  simulator.run_until(0.001);  // first page in flight, three queued
  s.set_crashed(true);
  EXPECT_TRUE(s.crashed());
  EXPECT_EQ(failed, 4);  // every victim's on_fail fired
  EXPECT_EQ(s.lost_pages(), 4u);
  EXPECT_EQ(s.lost_hits(), 40u);  // in-flight page counted at full burst
  EXPECT_EQ(s.queue_length(), 0u);
  simulator.run();
  EXPECT_EQ(s.pages_served(), 0u);  // the cancelled service never completed
}

TEST_F(WebServerTest, CrashedServerRejectsSubmissions) {
  WebServer s(simulator, 0, 100.0, 1, rng.split());
  s.set_crashed(true);
  int failed = 0;
  s.submit_page(PageRequest{0, 10, nullptr, [&] { ++failed; }});
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(s.rejected_pages(), 1u);
  EXPECT_EQ(s.queue_length(), 0u);
  // Rejected pages never enter demand accounting.
  EXPECT_EQ(s.lifetime_domain_hits()[0], 0u);
  // Recovery: the server accepts and serves again.
  s.set_crashed(false);
  bool done = false;
  s.submit_page(PageRequest{0, 10, [&] { done = true; }});
  simulator.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(s.pages_served(), 1u);
}

TEST_F(WebServerTest, CrashKeepsPartialBusyTimeOfCancelledService) {
  WebServer s(simulator, 0, 100.0, 1, rng.split());
  s.submit_page(PageRequest{0, 50, nullptr});
  simulator.run_until(0.01);
  s.set_crashed(true);
  // The half-done service really consumed 0.01 s of server time.
  EXPECT_NEAR(s.cumulative_busy_time(simulator.now()), 0.01, 1e-9);
  simulator.run_until(5.0);
  EXPECT_NEAR(s.cumulative_busy_time(simulator.now()), 0.01, 1e-9);
}

TEST_F(WebServerTest, CrashIsIdempotentAndDistinctFromPause) {
  WebServer s(simulator, 0, 100.0, 1, rng.split());
  for (int i = 0; i < 3; ++i) s.submit_page(PageRequest{0, 10, nullptr});
  s.set_paused(true);  // pause keeps the queue...
  EXPECT_EQ(s.queue_length(), 3u);
  s.set_crashed(true);  // ...crash destroys it
  s.set_crashed(true);  // idempotent: no double accounting
  EXPECT_EQ(s.lost_pages(), 3u);
  EXPECT_TRUE(s.paused());  // orthogonal flags: still paused after recovery
  s.set_crashed(false);
  EXPECT_TRUE(s.paused());
}

TEST_F(WebServerTest, CapacityFactorScalesNewServices) {
  WebServer s(simulator, 0, 50.0, 1, rng.split());
  EXPECT_THROW(s.set_capacity_factor(0.0), std::invalid_argument);
  EXPECT_THROW(s.set_capacity_factor(-0.5), std::invalid_argument);
  s.set_capacity_factor(0.5);
  EXPECT_DOUBLE_EQ(s.effective_capacity(), 25.0);
  // At half capacity the mean service of a 10-hit page doubles to 0.4 s.
  const int pages = 4000;
  int completed = 0;
  double submit_time = 0.0;
  sim::RunningStat durations;
  std::function<void()> submit = [&] {
    if (completed == pages) return;
    submit_time = simulator.now();
    s.submit_page(PageRequest{0, 10, [&] {
                                durations.add(simulator.now() - submit_time);
                                ++completed;
                                submit();
                              }});
  };
  submit();
  simulator.run();
  EXPECT_NEAR(durations.mean(), 0.4, 0.02);
  s.set_capacity_factor(1.0);
  EXPECT_DOUBLE_EQ(s.effective_capacity(), 50.0);
}

TEST_F(WebServerTest, CompletionCallbackMaySubmitImmediately) {
  WebServer s(simulator, 0, 100.0, 1, rng.split());
  int served = 0;
  std::function<void()> resubmit = [&] {
    if (++served < 10) s.submit_page(PageRequest{0, 5, resubmit});
  };
  s.submit_page(PageRequest{0, 5, resubmit});
  simulator.run();
  EXPECT_EQ(served, 10);
  EXPECT_EQ(s.pages_served(), 10u);
}

}  // namespace
}  // namespace adattl::web
