#include "sim/process.h"

#include <gtest/gtest.h>

#include <vector>

namespace adattl::sim {
namespace {

Process three_steps(Simulator& sim, std::vector<double>& log) {
  log.push_back(sim.now());
  co_await delay(sim, 5.0);
  log.push_back(sim.now());
  co_await delay(sim, 2.5);
  log.push_back(sim.now());
}

TEST(Process, RunsAcrossDelays) {
  Simulator sim;
  std::vector<double> log;
  Process p = three_steps(sim, log);
  EXPECT_EQ(log, (std::vector<double>{0.0}));  // ran eagerly to first await
  EXPECT_FALSE(p.done());
  sim.run();
  EXPECT_EQ(log, (std::vector<double>{0.0, 5.0, 7.5}));
  EXPECT_TRUE(p.done());
}

Process ticker(Simulator& sim, int& count, double period) {
  for (;;) {
    co_await delay(sim, period);
    ++count;
  }
}

TEST(Process, EndlessProcessesInterleaveWithEvents) {
  Simulator sim;
  int fast = 0, slow = 0, events = 0;
  ticker(sim, fast, 1.0);
  ticker(sim, slow, 3.0);
  sim.at(5.5, [&] { ++events; });
  sim.run_until(9.0);
  EXPECT_EQ(fast, 9);
  EXPECT_EQ(slow, 3);
  EXPECT_EQ(events, 1);
}

TEST(Process, TwoProcessesShareTheClockDeterministically) {
  Simulator sim;
  std::vector<int> order;
  auto maker = [&](int id, double period) -> Process {
    for (int i = 0; i < 3; ++i) {
      co_await delay(sim, period);
      order.push_back(id);
    }
  };
  Process a = maker(1, 2.0);  // fires at 2, 4, 6
  Process b = maker(2, 3.0);  // fires at 3, 6, 9
  sim.run();
  // At t=6 both fire; process a scheduled its t=6 event (at t=4) before
  // b scheduled its own (at t=3)... order among equal times is insertion
  // order of the *events*: a's third delay was scheduled at t=4, b's
  // second at t=3, so b precedes a at t=6.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2, 1, 2}));
  EXPECT_TRUE(a.done());
  EXPECT_TRUE(b.done());
}

TEST(Process, FrameDestroyedOnSimulatorTeardownWithoutLeak) {
  // A process parked on a delay when the simulator dies must have its
  // frame (and the locals in it) destroyed.
  struct Sentinel {
    bool* flag;
    explicit Sentinel(bool* f) : flag(f) {}
    ~Sentinel() { *flag = true; }
  };
  bool destroyed = false;
  {
    Simulator sim;
    auto proc = [&](Simulator& s) -> Process {
      Sentinel sentinel(&destroyed);
      co_await delay(s, 1e9);  // never fires
      (void)sentinel;
    };
    Process p = proc(sim);
    sim.run_until(10.0);
    EXPECT_FALSE(destroyed);
    EXPECT_FALSE(p.done());
  }  // simulator destroyed with the delay still pending
  EXPECT_TRUE(destroyed);
}

TEST(Process, HandleOutlivesCompletion) {
  Simulator sim;
  std::vector<double> log;
  Process p = three_steps(sim, log);
  sim.run();
  // The frame self-destroyed at completion; done() stays readable.
  EXPECT_TRUE(p.done());
}

Process nested_spawner(Simulator& sim, int& leaves) {
  // Processes can spawn processes.
  auto leaf = [](Simulator& s, int& n) -> Process {
    co_await delay(s, 1.0);
    ++n;
  };
  for (int i = 0; i < 3; ++i) {
    leaf(sim, leaves);
    co_await delay(sim, 10.0);
  }
}

TEST(Process, ProcessesCanSpawnProcesses) {
  Simulator sim;
  int leaves = 0;
  nested_spawner(sim, leaves);
  sim.run();
  EXPECT_EQ(leaves, 3);
}

}  // namespace
}  // namespace adattl::sim
