// The composite-objective family: COST(alpha) and COSTCAP(cap) selection
// behavior, their anti-herding pending charge, and the parsing/factory
// grammar that exposes them.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/alarm_registry.h"
#include "core/cost_policy.h"
#include "core/policy_factory.h"
#include "geo/geo_model.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace adattl::core {
namespace {

// 2 domains x 3 servers. Domain 0 is close to servers 0 and 1, far from 2;
// domain 1 is close only to server 2.
geo::GeoModel two_domain_geo() {
  return geo::GeoModel(std::vector<std::vector<double>>{
      {0.02, 0.02, 0.15},
      {0.15, 0.15, 0.02},
  });
}

struct ContextFixture {
  geo::GeoModel geo = two_domain_geo();
  std::vector<bool> eligible{true, true, true};
  std::vector<double> util{0.0, 0.0, 0.0};
  std::vector<std::size_t> queues{0, 0, 0};

  DecisionContext ctx(web::DomainId d, std::uint64_t generation = 0) const {
    DecisionContext c;
    c.domain = d;
    c.eligible = &eligible;
    c.utilization = &util;
    c.queue_depth = &queues;
    c.geo = &geo;
    c.pool_size = 3;
    c.feedback_generation = generation;
    return c;
  }
};

TEST(CompositeCostPolicy, AlphaZeroIsPureProximity) {
  ContextFixture f;
  CompositeCostPolicy p({100.0, 100.0, 100.0}, 0.0);
  f.util = {0.0, 0.0, 0.9};          // ignored at alpha = 0
  EXPECT_EQ(p.select(f.ctx(1)), 2);  // domain 1's only close server
}

TEST(CompositeCostPolicy, AlphaOneIsPureLoad) {
  ContextFixture f;
  CompositeCostPolicy p({100.0, 100.0, 100.0}, 1.0);
  f.util = {0.5, 0.4, 0.6};
  EXPECT_EQ(p.select(f.ctx(0)), 1);  // min utilization, RTT ignored
}

TEST(CompositeCostPolicy, TiesBreakTowardLowestIndex) {
  ContextFixture f;
  CompositeCostPolicy p({100.0, 100.0, 100.0}, 1.0);
  // All-equal utilization: servers 0..2 tie on the load term.
  EXPECT_EQ(p.select(f.ctx(0)), 0);
}

TEST(CompositeCostPolicy, PendingChargeSpreadsAssignmentsWithinAGeneration) {
  ContextFixture f;
  CompositeCostPolicy p({100.0, 100.0, 100.0}, 1.0);
  // Same generation throughout: every assignment charges the chosen
  // server, so repeated selects walk across the equal-load servers
  // instead of herding onto server 0.
  EXPECT_EQ(p.select(f.ctx(0, 7)), 0);
  EXPECT_EQ(p.select(f.ctx(0, 7)), 1);
  EXPECT_EQ(p.select(f.ctx(0, 7)), 2);
  EXPECT_EQ(p.select(f.ctx(0, 7)), 0);
}

TEST(CompositeCostPolicy, PendingResetsWhenFeedbackAdvances) {
  ContextFixture f;
  CompositeCostPolicy p({100.0, 100.0, 100.0}, 1.0);
  EXPECT_EQ(p.select(f.ctx(0, 1)), 0);
  EXPECT_EQ(p.select(f.ctx(0, 1)), 1);
  // New feedback generation: pending counters are forgotten, selection
  // restarts from the fresh (all-equal) utilization view.
  EXPECT_EQ(p.select(f.ctx(0, 2)), 0);
}

TEST(CompositeCostPolicy, SmallServersChargeProportionallyMorePending) {
  ContextFixture f;
  // Server 0 has half the capacity, so one pending mapping on it costs
  // twice the pressure of one on server 1.
  CompositeCostPolicy p({50.0, 100.0, 100.0}, 1.0);
  f.util = {0.0, 0.0, 0.9};             // keep server 2 out of the race
  EXPECT_EQ(p.select(f.ctx(0, 3)), 0);  // all zero: lowest index
  EXPECT_EQ(p.select(f.ctx(0, 3)), 1);  // 0 now carries 2x pressure
  EXPECT_EQ(p.select(f.ctx(0, 3)), 1);  // 1 at 1x < 0 at 2x
  EXPECT_EQ(p.select(f.ctx(0, 3)), 0);  // 1 reached 2x; tie -> lowest
}

TEST(CompositeCostPolicy, IntermediateAlphaTradesLoadAgainstRtt) {
  ContextFixture f;
  CompositeCostPolicy p({100.0, 100.0, 100.0}, 0.5);
  // Domain 1: server 2 is near (norm RTT 0.02/0.15) but heavily loaded;
  // server 0 is far (norm 1.0) but idle. At alpha = 0.5:
  //   cost_2 = 0.5*0.9 + 0.5*(0.02/0.15) = 0.517
  //   cost_0 = 0.5*0.0 + 0.5*1.0         = 0.5  -> far-but-idle wins
  f.util = {0.0, 0.3, 0.9};
  EXPECT_EQ(p.select(f.ctx(1)), 0);
  // Lighter overload flips it back to the near server:
  //   cost_2 = 0.5*0.6 + 0.0667 = 0.367 < 0.5
  CompositeCostPolicy q({100.0, 100.0, 100.0}, 0.5);
  f.util = {0.0, 0.3, 0.6};
  EXPECT_EQ(q.select(f.ctx(1)), 2);
}

TEST(CompositeCostPolicy, RespectsEligibility) {
  ContextFixture f;
  CompositeCostPolicy p({100.0, 100.0, 100.0}, 0.0);
  f.eligible = {true, true, false};  // domain 1's nearest server barred
  EXPECT_EQ(p.select(f.ctx(1)), 0);  // equal-RTT far pair: lowest index
}

TEST(CompositeCostPolicy, ThrowsWithoutGeoContext) {
  CompositeCostPolicy p({100.0, 100.0, 100.0}, 0.5);
  const std::vector<bool> eligible{true, true, true};
  // The two-arg convenience overload builds a geo-less context.
  EXPECT_THROW(p.select(0, eligible), std::logic_error);
}

TEST(CompositeCostPolicy, NameAndSharesAndValidation) {
  CompositeCostPolicy p({50.0, 100.0, 50.0}, 0.7);
  EXPECT_EQ(p.name(), "COST(0.7)");
  const std::vector<double> shares = p.stationary_shares();
  ASSERT_EQ(shares.size(), 3u);
  EXPECT_DOUBLE_EQ(shares[0], 0.25);
  EXPECT_DOUBLE_EQ(shares[1], 0.5);
  EXPECT_THROW(CompositeCostPolicy({100.0}, -0.1), std::invalid_argument);
  EXPECT_THROW(CompositeCostPolicy({100.0}, 1.1), std::invalid_argument);
  EXPECT_THROW(CompositeCostPolicy({0.0}, 0.5), std::invalid_argument);
}

TEST(LatencyCapPolicy, BalancesFreelyWithinTheCap) {
  ContextFixture f;
  LatencyCapPolicy p({100.0, 100.0, 100.0}, 0.05);
  // Domain 0: servers 0 and 1 are in cap (0.02 <= 0.05). Server 1 is
  // lighter, so it wins even though both beat server 2's RTT.
  f.util = {0.5, 0.2, 0.0};
  EXPECT_EQ(p.select(f.ctx(0)), 1);
}

TEST(LatencyCapPolicy, InCapBeatsOutOfCapRegardlessOfLoad) {
  ContextFixture f;
  LatencyCapPolicy p({100.0, 100.0, 100.0}, 0.05);
  // Domain 1: only server 2 is in cap; it wins despite being the most
  // loaded server on the floor.
  f.util = {0.0, 0.0, 0.95};
  EXPECT_EQ(p.select(f.ctx(1)), 2);
}

TEST(LatencyCapPolicy, WidensWhenNoInCapServerIsEligible) {
  ContextFixture f;
  LatencyCapPolicy p({100.0, 100.0, 100.0}, 0.05);
  f.eligible = {true, true, false};  // domain 1 loses its one in-cap server
  f.util = {0.4, 0.1, 0.0};
  EXPECT_EQ(p.select(f.ctx(1)), 1);  // out-of-cap tier: min load
}

TEST(LatencyCapPolicy, NameAndValidation) {
  LatencyCapPolicy p({100.0}, 0.08);
  EXPECT_EQ(p.name(), "COSTCAP(0.08)");
  EXPECT_THROW(LatencyCapPolicy({100.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(LatencyCapPolicy({100.0}, -1.0), std::invalid_argument);
}

// ---- parsing grammar + factory wiring ----

TEST(CostPolicyParsing, DefaultsAndExplicitParameters) {
  PolicySpec cost = parse_policy_name("COST");
  EXPECT_EQ(cost.selection, SelectionKind::kCost);
  EXPECT_DOUBLE_EQ(cost.cost_alpha, 0.5);

  PolicySpec tuned = parse_policy_name("COST(0.7)");
  EXPECT_EQ(tuned.selection, SelectionKind::kCost);
  EXPECT_DOUBLE_EQ(tuned.cost_alpha, 0.7);

  PolicySpec cap = parse_policy_name("COSTCAP");
  EXPECT_EQ(cap.selection, SelectionKind::kCostCap);
  EXPECT_DOUBLE_EQ(cap.cost_cap_sec, 0.08);

  PolicySpec capped = parse_policy_name("COSTCAP(0.1)");
  EXPECT_DOUBLE_EQ(capped.cost_cap_sec, 0.1);

  // The COST family composes with the adaptive-TTL suffixes like any
  // other selection rule.
  PolicySpec combo = parse_policy_name("COST(0.7)-TTL/K");
  EXPECT_EQ(combo.selection, SelectionKind::kCost);
  EXPECT_DOUBLE_EQ(combo.cost_alpha, 0.7);
  EXPECT_NE(combo.ttl_classes, 0);
}

TEST(CostPolicyParsing, CanonicalNamesRoundTrip) {
  for (const char* name :
       {"COST(0.5)", "COST(0.7)", "COSTCAP(0.08)", "COSTCAP(0.1)-TTL/S_K"}) {
    EXPECT_EQ(parse_policy_name(name).canonical_name(), name) << name;
  }
}

TEST(CostPolicyParsing, RejectsMalformedParameters) {
  EXPECT_THROW(parse_policy_name("COST(1.5)"), std::invalid_argument);
  EXPECT_THROW(parse_policy_name("COST(-0.1)"), std::invalid_argument);
  EXPECT_THROW(parse_policy_name("COST(x)"), std::invalid_argument);
  EXPECT_THROW(parse_policy_name("COST(0.5"), std::invalid_argument);
  EXPECT_THROW(parse_policy_name("COSTCAP(0)"), std::invalid_argument);
  EXPECT_THROW(parse_policy_name("COSTCAP(-1)"), std::invalid_argument);
}

TEST(CostPolicyParsing, PolicyRequiresGeoCoversTheFamily) {
  EXPECT_TRUE(policy_requires_geo("GEO"));
  EXPECT_TRUE(policy_requires_geo("COST"));
  EXPECT_TRUE(policy_requires_geo("COST(0.3)-TTL/K"));
  EXPECT_TRUE(policy_requires_geo("COSTCAP(0.1)"));
  EXPECT_FALSE(policy_requires_geo("RR"));
  EXPECT_FALSE(policy_requires_geo("DRR2-TTL/S_K"));
  EXPECT_FALSE(policy_requires_geo("not-a-policy"));
}

TEST(CostPolicyFactory, RequiresAGeoModel) {
  sim::Simulator sim;
  sim::RngStream rng(1);
  AlarmRegistry alarms(3, 0.9);
  SchedulerFactoryConfig fc;
  fc.capacities = {100.0, 100.0, 100.0};
  fc.initial_weights = {1.0, 1.0};
  EXPECT_THROW(make_scheduler("COST", fc, alarms, sim, rng), std::invalid_argument);
  EXPECT_THROW(make_scheduler("COSTCAP", fc, alarms, sim, rng), std::invalid_argument);

  fc.geo = std::make_shared<const geo::GeoModel>(two_domain_geo());
  const SchedulerBundle cost = make_scheduler("COST(0.7)", fc, alarms, sim, rng);
  EXPECT_EQ(cost.scheduler->selection().name(), "COST(0.7)");
  const SchedulerBundle cap = make_scheduler("COSTCAP(0.1)", fc, alarms, sim, rng);
  EXPECT_EQ(cap.scheduler->selection().name(), "COSTCAP(0.1)");
}

}  // namespace
}  // namespace adattl::core
