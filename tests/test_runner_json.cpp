// Locks down the to_json flat schema (exact key set and order, escaping)
// so dashboards and scripted sweeps parsing it never break silently, and
// pins the json_escape fix: control characters (newline, tab, ...) must
// come out as valid JSON escapes, not raw bytes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "experiment/runner.h"

using namespace adattl;

namespace {

experiment::SimulationConfig tiny_config() {
  experiment::SimulationConfig cfg;
  cfg.total_clients = 60;
  cfg.num_domains = 6;
  cfg.warmup_sec = 30.0;
  cfg.duration_sec = 120.0;
  cfg.policy = "DRR2-TTL/S_K";
  cfg.seed = 4242;
  return cfg;
}

// All `"key":` occurrences at the object's top level (depth 1), in order;
// keys inside the nested config/provenance/metrics objects are skipped.
std::vector<std::string> extract_keys(const std::string& json) {
  std::vector<std::string> keys;
  int depth = 0;
  std::size_t i = 0;
  while (i < json.size()) {
    const char c = json[i];
    if (c == '{' || c == '[') {
      ++depth;
      ++i;
    } else if (c == '}' || c == ']') {
      --depth;
      ++i;
    } else if (c == '"') {
      std::size_t end = i + 1;
      while (end < json.size() && json[end] != '"') {
        end += json[end] == '\\' ? 2 : 1;
      }
      if (end >= json.size()) break;
      if (depth == 1 && end + 1 < json.size() && json[end + 1] == ':') {
        keys.push_back(json.substr(i + 1, end - i - 1));
      }
      i = end + 1;
    } else {
      ++i;
    }
  }
  return keys;
}

TEST(RunnerJson, SchemaKeySetIsStable) {
  const experiment::SimulationConfig cfg = tiny_config();
  const experiment::ReplicatedResult rep = experiment::run_replications(cfg, 2);
  const std::string json = experiment::to_json(cfg, rep);

  const std::vector<std::string> expected = {
      "policy",
      "servers",
      "heterogeneity_percent",
      "domains",
      "clients",
      "replications",
      "duration_sec",
      "p_max_util_below_090",
      "p_max_util_below_090_ci",
      "p_max_util_below_098",
      "p_max_util_below_098_ci",
      "mean_max_utilization",
      "aggregate_utilization",
      "address_request_rate",
      "dns_controlled_fraction",
      "mean_ttl_sec",
      "mean_response_sec",
      "response_p99_sec",
      "mean_network_rtt_sec",
      "mean_assignment_rtt_sec",
      "pool_changes",
      "autoscale_ups",
      "autoscale_downs",
      "final_pool_size",
      "failed_requests",
      "lost_pages",
      "lost_hits",
      "dns_outage_sec",
      "unavailability_fraction",
      "mean_server_utilization",
      "rtt_weighted_assignment_share",
      "domain_latency",
      "config",
      "provenance",
  };
  EXPECT_EQ(extract_keys(json), expected);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(RunnerJson, ServerUtilizationArrayMatchesClusterSize) {
  const experiment::SimulationConfig cfg = tiny_config();
  const experiment::ReplicatedResult rep = experiment::run_replications(cfg, 1);
  const std::string json = experiment::to_json(cfg, rep);
  const std::size_t open = json.find("\"mean_server_utilization\":[");
  ASSERT_NE(open, std::string::npos);
  const std::size_t start = json.find('[', open);
  const std::size_t close = json.find(']', start);
  ASSERT_NE(close, std::string::npos);
  const std::string body = json.substr(start + 1, close - start - 1);
  std::size_t commas = 0;
  for (char c : body) commas += c == ',';
  EXPECT_EQ(commas + 1, static_cast<std::size_t>(cfg.cluster.size()));
}

TEST(RunnerJson, EmptyResultDoesNotCrashAndEmitsEmptyArray) {
  const experiment::ReplicatedResult empty;
  const std::string json = experiment::to_json(tiny_config(), empty);
  EXPECT_NE(json.find("\"replications\":0"), std::string::npos);
  EXPECT_NE(json.find("\"mean_server_utilization\":[]"), std::string::npos);
}

TEST(RunnerJson, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(experiment::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(experiment::json_escape("plain"), "plain");
}

TEST(RunnerJson, EscapesControlCharacters) {
  EXPECT_EQ(experiment::json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(experiment::json_escape("a\tb"), "a\\tb");
  EXPECT_EQ(experiment::json_escape("a\rb"), "a\\rb");
  EXPECT_EQ(experiment::json_escape("a\bb"), "a\\bb");
  EXPECT_EQ(experiment::json_escape("a\fb"), "a\\fb");
  EXPECT_EQ(experiment::json_escape(std::string("a\x01z")), "a\\u0001z");
  EXPECT_EQ(experiment::json_escape(std::string("\x1f")), "\\u001f");
}

TEST(RunnerJson, PolicyNameWithControlCharsProducesValidJson) {
  experiment::SimulationConfig cfg = tiny_config();
  const experiment::ReplicatedResult empty;
  cfg.policy = "bad\nname\t\"quoted\"";
  const std::string json = experiment::to_json(cfg, empty);
  // No raw control bytes may survive into the serialized document.
  for (char c : json) EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  EXPECT_NE(json.find("\"policy\":\"bad\\nname\\t\\\"quoted\\\"\""), std::string::npos);
}

}  // namespace
