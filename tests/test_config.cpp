#include "experiment/config.h"

#include <gtest/gtest.h>

namespace adattl::experiment {
namespace {

TEST(Config, DefaultsMatchPaperTable1) {
  const SimulationConfig c;
  EXPECT_EQ(c.num_domains, 20);
  EXPECT_EQ(c.total_clients, 500);
  EXPECT_DOUBLE_EQ(c.mean_think_sec, 15.0);
  EXPECT_DOUBLE_EQ(c.zipf_theta, 1.0);
  EXPECT_DOUBLE_EQ(c.session.mean_pages_per_session, 20.0);
  EXPECT_EQ(c.session.min_hits_per_page, 5);
  EXPECT_EQ(c.session.max_hits_per_page, 15);
  EXPECT_EQ(c.cluster.size(), 7);
  EXPECT_DOUBLE_EQ(c.cluster.total_capacity_hits_per_sec, 500.0);
  EXPECT_DOUBLE_EQ(c.monitor_interval_sec, 8.0);
  EXPECT_DOUBLE_EQ(c.reference_ttl_sec, 240.0);
  EXPECT_DOUBLE_EQ(c.duration_sec, 18000.0);  // 5 simulated hours
  EXPECT_NO_THROW(c.validate());
}

TEST(Config, EffectiveClassThresholdDefaultsToOneOverK) {
  SimulationConfig c;
  EXPECT_DOUBLE_EQ(c.effective_class_threshold(), 1.0 / 20);
  c.num_domains = 50;
  EXPECT_DOUBLE_EQ(c.effective_class_threshold(), 1.0 / 50);
  c.class_threshold = 0.1;
  EXPECT_DOUBLE_EQ(c.effective_class_threshold(), 0.1);
}

TEST(Config, OfferedLoadMatchesTwoThirdsUtilization) {
  // 500 clients x 10 hits / (15 s think + ~0.2 s service) ~ 329 hits/s
  // against 500 hits/s capacity: the paper's 2/3 average utilization.
  const SimulationConfig c;
  const double offered = c.total_clients * c.session.mean_hits_per_page() / c.mean_think_sec;
  EXPECT_NEAR(offered / c.cluster.total_capacity_hits_per_sec, 2.0 / 3.0, 0.01);
}

TEST(Config, ValidateCatchesEachBadField) {
  auto expect_bad = [](auto mutate) {
    SimulationConfig c;
    mutate(c);
    EXPECT_THROW(c.validate(), std::invalid_argument);
  };
  expect_bad([](SimulationConfig& c) { c.num_domains = 0; });
  expect_bad([](SimulationConfig& c) { c.total_clients = 0; });
  expect_bad([](SimulationConfig& c) { c.mean_think_sec = 0; });
  expect_bad([](SimulationConfig& c) { c.zipf_theta = -1; });
  expect_bad([](SimulationConfig& c) { c.rate_perturbation_percent = -5; });
  expect_bad([](SimulationConfig& c) { c.policy.clear(); });
  expect_bad([](SimulationConfig& c) { c.reference_ttl_sec = 0; });
  expect_bad([](SimulationConfig& c) { c.alarm_threshold = 0; });
  expect_bad([](SimulationConfig& c) { c.alarm_threshold = 1.1; });
  expect_bad([](SimulationConfig& c) { c.monitor_interval_sec = 0; });
  expect_bad([](SimulationConfig& c) { c.estimator_smoothing = 0; });
  expect_bad([](SimulationConfig& c) { c.estimator_collect_every_ticks = 0; });
  expect_bad([](SimulationConfig& c) { c.ns_min_ttl_sec = -1; });
  expect_bad([](SimulationConfig& c) { c.warmup_sec = -1; });
  expect_bad([](SimulationConfig& c) { c.duration_sec = 0; });
  expect_bad([](SimulationConfig& c) { c.cluster.relative = {0.5, 1.0}; });
  expect_bad([](SimulationConfig& c) { c.session.min_hits_per_page = 0; });
}

}  // namespace
}  // namespace adattl::experiment
