// The trace-driven workload source: CSV schema parsing/serialization,
// generator shapes, shard-sliced scheduling, and the end-to-end guarantee
// the replay path exists for — generate → replay → bit-identical RunResult
// at a fixed seed, whether the trace arrives programmatically, as inline
// --trace-point specs, or through a --workload-trace file.
#include "workload/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "experiment/param_registry.h"
#include "experiment/runner.h"
#include "sim/simulator.h"

namespace adattl::workload {
namespace {

TEST(TraceCsv, ParsesRowsCommentsAndHeader) {
  const std::vector<TraceEvent> events = parse_trace_csv(
      "# generated trace\n"
      "t_sec,domain,rate_multiplier\n"
      "\n"
      "0,3,1.5\n"
      "  600 , 14 , 8  # flash crowd\n"
      "7200,14,1\n");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_DOUBLE_EQ(events[0].at_sec, 0.0);
  EXPECT_EQ(events[0].domain, 3);
  EXPECT_DOUBLE_EQ(events[0].rate_multiplier, 1.5);
  EXPECT_DOUBLE_EQ(events[1].at_sec, 600.0);
  EXPECT_EQ(events[1].domain, 14);
  EXPECT_DOUBLE_EQ(events[1].rate_multiplier, 8.0);
  EXPECT_EQ(events[2].domain, 14);
}

TEST(TraceCsv, ErrorsCarryLineNumbers) {
  const auto expect_line = [](const std::string& text, const std::string& needle) {
    try {
      parse_trace_csv(text);
      FAIL() << "expected throw for: " << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
    }
  };
  expect_line("0,1,2\nbogus\n", "line 2");
  expect_line("0,1\n", "line 1");
  expect_line("0,1,2,3\n", "too many fields");
  expect_line("0,1.5,2\n", "domain must be a non-negative integer");
  expect_line("0,-1,2\n", "domain must be a non-negative integer");
  expect_line("zero,1,2\n", "t_sec");
  expect_line("0,1,fast\n", "rate_multiplier");
  // A header row after data is not a header.
  expect_line("0,1,2\nt_sec,domain,rate_multiplier\n", "line 2");
}

TEST(TraceCsv, RoundTripsExactly) {
  const std::vector<TraceEvent> original = {
      {0.0, 0, 1.0},
      {600.125, 14, 8.000000000000002},  // not representable in short decimal
      {7200.0, 3, 0.3333333333333333},
  };
  const std::vector<TraceEvent> reparsed = parse_trace_csv(trace_to_csv(original));
  ASSERT_EQ(reparsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(reparsed[i].at_sec, original[i].at_sec) << i;
    EXPECT_EQ(reparsed[i].domain, original[i].domain) << i;
    EXPECT_EQ(reparsed[i].rate_multiplier, original[i].rate_multiplier) << i;
  }
}

TEST(TraceValidate, RejectsOutOfUniverseEvents) {
  EXPECT_NO_THROW(validate_trace({{0.0, 0, 1.0}, {10.0, 4, 2.0}}, 5));
  EXPECT_THROW(validate_trace({{-1.0, 0, 1.0}}, 5), std::invalid_argument);
  EXPECT_THROW(validate_trace({{0.0, 5, 1.0}}, 5), std::invalid_argument);
  EXPECT_THROW(validate_trace({{0.0, 0, 0.0}}, 5), std::invalid_argument);
  EXPECT_THROW(validate_trace({{0.0, 0, 1e9}}, 5), std::invalid_argument);
  try {
    validate_trace({{0.0, 0, 1.0}, {0.0, 9, 1.0}}, 5);
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("trace event 1"), std::string::npos) << e.what();
  }
}

TEST(TraceSchedule, FiresAbsoluteRateChanges) {
  sim::Simulator sim;
  ThinkTimeModel think({10.0, 10.0});
  schedule_trace(sim, think, {{5.0, 0, 4.0}, {10.0, 0, 2.0}, {10.0, 1, 0.5}});
  sim.run_until(6.0);
  EXPECT_DOUBLE_EQ(think.rate_multiplier(0), 4.0);
  EXPECT_DOUBLE_EQ(think.rate_multiplier(1), 1.0);
  sim.run_until(11.0);
  // Absolute semantics: 2.0, not 4.0 * 2.0.
  EXPECT_DOUBLE_EQ(think.rate_multiplier(0), 2.0);
  EXPECT_DOUBLE_EQ(think.rate_multiplier(1), 0.5);
}

TEST(TraceSchedule, ShardSeesOnlyItsOwnedDomains) {
  const std::vector<TraceEvent> events = {{1.0, 0, 2.0}, {1.0, 1, 3.0}, {1.0, 2, 4.0}};
  // Two shards: shard 0 owns domains {0, 2}, shard 1 owns {1}.
  sim::Simulator sim0;
  ThinkTimeModel think0({10.0, 10.0, 10.0});
  schedule_trace(sim0, think0, events, 2, 0);
  sim0.run_until(2.0);
  EXPECT_DOUBLE_EQ(think0.rate_multiplier(0), 2.0);
  EXPECT_DOUBLE_EQ(think0.rate_multiplier(1), 1.0);  // not owned: untouched
  EXPECT_DOUBLE_EQ(think0.rate_multiplier(2), 4.0);

  sim::Simulator sim1;
  ThinkTimeModel think1({10.0, 10.0, 10.0});
  schedule_trace(sim1, think1, events, 2, 1);
  sim1.run_until(2.0);
  EXPECT_DOUBLE_EQ(think1.rate_multiplier(0), 1.0);
  EXPECT_DOUBLE_EQ(think1.rate_multiplier(1), 3.0);
  EXPECT_DOUBLE_EQ(think1.rate_multiplier(2), 1.0);

  EXPECT_THROW(schedule_trace(sim0, think0, events, 0, 0), std::invalid_argument);
  EXPECT_THROW(schedule_trace(sim0, think0, events, 2, 2), std::invalid_argument);
}

TEST(TraceGenerators, FlashCrowdRampsHoldsAndDecays) {
  FlashCrowdSpec spec;
  spec.domain = 2;
  spec.start_sec = 100.0;
  spec.ramp_sec = 50.0;
  spec.hold_sec = 100.0;
  spec.decay_sec = 50.0;
  spec.peak_multiplier = 8.0;
  spec.step_sec = 10.0;
  const std::vector<TraceEvent> events = generate_flash_crowd(spec);
  ASSERT_GE(events.size(), 3u);
  EXPECT_DOUBLE_EQ(events.front().at_sec, 0.0);
  EXPECT_DOUBLE_EQ(events.front().rate_multiplier, 1.0);
  EXPECT_DOUBLE_EQ(events.back().at_sec, 300.0);
  EXPECT_DOUBLE_EQ(events.back().rate_multiplier, 1.0);
  double peak = 0.0;
  for (const TraceEvent& ev : events) {
    EXPECT_EQ(ev.domain, 2);
    EXPECT_GE(ev.rate_multiplier, 1.0);
    EXPECT_LE(ev.rate_multiplier, 8.0);
    peak = std::max(peak, ev.rate_multiplier);
    // Mid-hold the multiplier is pinned at the peak.
    if (ev.at_sec >= 150.0 && ev.at_sec < 250.0) {
      EXPECT_DOUBLE_EQ(ev.rate_multiplier, 8.0);
    }
  }
  EXPECT_DOUBLE_EQ(peak, 8.0);
  EXPECT_NO_THROW(validate_trace(events, 3));
  EXPECT_THROW(generate_flash_crowd(FlashCrowdSpec{.step_sec = 0.0}),
               std::invalid_argument);
}

TEST(TraceGenerators, DiurnalStaysPositiveAndCoversAllDomains) {
  DiurnalSpec spec;
  spec.duration_sec = 3600.0;
  spec.period_sec = 3600.0;
  spec.amplitude = 0.6;
  spec.phase_spread_sec = 1800.0;
  spec.step_sec = 300.0;
  const std::vector<TraceEvent> events = generate_diurnal(spec, 4);
  // 13 sample times (0..3600 inclusive) x 4 domains.
  EXPECT_EQ(events.size(), 52u);
  std::vector<bool> seen(4, false);
  for (const TraceEvent& ev : events) {
    seen[static_cast<std::size_t>(ev.domain)] = true;
    EXPECT_GT(ev.rate_multiplier, 0.0);
    EXPECT_GE(ev.rate_multiplier, 1.0 - spec.amplitude - 1e-12);
    EXPECT_LE(ev.rate_multiplier, 1.0 + spec.amplitude + 1e-12);
  }
  for (int d = 0; d < 4; ++d) EXPECT_TRUE(seen[static_cast<std::size_t>(d)]) << d;
  EXPECT_NO_THROW(validate_trace(events, 4));
  EXPECT_THROW(generate_diurnal(DiurnalSpec{.amplitude = 1.0}, 4), std::invalid_argument);
}

TEST(TraceGenerators, RegimeShiftsAreSeededDeterministic) {
  RegimeShiftSpec spec;
  spec.duration_sec = 86400.0;
  spec.mean_dwell_sec = 3600.0;
  spec.hot_multiplier = 6.0;
  spec.seed = 99;
  const std::vector<TraceEvent> a = generate_regime_shifts(spec, 8);
  const std::vector<TraceEvent> b = generate_regime_shifts(spec, 8);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at_sec, b[i].at_sec);
    EXPECT_EQ(a[i].domain, b[i].domain);
    EXPECT_EQ(a[i].rate_multiplier, b[i].rate_multiplier);
  }
  spec.seed = 100;
  const std::vector<TraceEvent> c = generate_regime_shifts(spec, 8);
  EXPECT_NE(trace_to_csv(a), trace_to_csv(c));
  // Exactly one domain is hot at any time: events come in cool/heat pairs
  // after the initial heat, and every cool names the previously hot domain.
  ASSERT_FALSE(a.empty());
  EXPECT_DOUBLE_EQ(a[0].rate_multiplier, 6.0);
  int hot = a[0].domain;
  for (std::size_t i = 1; i + 1 < a.size(); i += 2) {
    EXPECT_DOUBLE_EQ(a[i].rate_multiplier, 1.0);
    EXPECT_EQ(a[i].domain, hot);
    EXPECT_DOUBLE_EQ(a[i + 1].rate_multiplier, 6.0);
    EXPECT_NE(a[i + 1].domain, hot);
    hot = a[i + 1].domain;
  }
  EXPECT_NO_THROW(validate_trace(a, 8));
}

}  // namespace
}  // namespace adattl::workload

namespace adattl::experiment {
namespace {

void expect_same_run(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.mean_max_utilization, b.mean_max_utilization);
  EXPECT_EQ(a.mean_server_util, b.mean_server_util);
  EXPECT_EQ(a.aggregate_utilization, b.aggregate_utilization);
  EXPECT_EQ(a.total_pages, b.total_pages);
  EXPECT_EQ(a.total_hits, b.total_hits);
  EXPECT_EQ(a.authoritative_queries, b.authoritative_queries);
  EXPECT_EQ(a.ns_cache_hits, b.ns_cache_hits);
  EXPECT_EQ(a.mean_ttl, b.mean_ttl);
  EXPECT_EQ(a.alarm_signals, b.alarm_signals);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.mean_page_response_sec, b.mean_page_response_sec);
  EXPECT_EQ(a.per_server_response_sec, b.per_server_response_sec);
}

TEST(TraceReplayDeterminism, GenerateReplayBitIdenticalAcrossEntryPoints) {
  // The tentpole guarantee: a generated trace replayed through any entry
  // point — programmatic trace_events, inline --trace-point specs, or a
  // --workload-trace CSV file — produces the bit-identical RunResult at a
  // fixed seed.
  workload::FlashCrowdSpec spec;
  spec.domain = 3;
  spec.start_sec = 200.0;
  spec.ramp_sec = 120.0;
  spec.hold_sec = 240.0;
  spec.decay_sec = 120.0;
  spec.peak_multiplier = 6.0;
  spec.step_sec = 60.0;
  const std::vector<workload::TraceEvent> trace = workload::generate_flash_crowd(spec);

  SimulationConfig base;
  base.policy = "DRR2-TTL/S_K";
  base.num_domains = 6;
  base.total_clients = 60;
  base.duration_sec = 900.0;
  base.warmup_sec = 60.0;
  base.seed = 20260808;
  base.oracle_weights = false;
  base.trace_events = trace;

  const ReplicatedResult programmatic = run_replications(base, 1);

  // Entry point 2: the CSV file through --workload-trace.
  const std::string path = ::testing::TempDir() + "/adattl_trace_replay.csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  const std::string csv = workload::trace_to_csv(trace);
  std::fwrite(csv.data(), 1, csv.size(), f);
  std::fclose(f);
  const CliOptions via_file =
      ParamRegistry::instance()
          .resolve_flags({"--policy=DRR2-TTL/S_K", "--domains=6", "--clients=60",
                          "--duration=900", "--warmup=60", "--seed=20260808",
                          "--measured", "--workload-trace=" + path})
          .options;
  std::remove(path.c_str());
  const ReplicatedResult from_file = run_replications(via_file.config, 1);

  // Entry point 3: inline --trace-point flags in trace order.
  std::vector<std::string> flags = {"--policy=DRR2-TTL/S_K", "--domains=6",
                                    "--clients=60",          "--duration=900",
                                    "--warmup=60",           "--seed=20260808",
                                    "--measured"};
  for (const workload::TraceEvent& ev : trace) {
    char spec_str[96];
    std::snprintf(spec_str, sizeof(spec_str), "--trace-point=%.17g:%d:%.17g", ev.at_sec,
                  ev.domain, ev.rate_multiplier);
    flags.emplace_back(spec_str);
  }
  const CliOptions via_points = ParamRegistry::instance().resolve_flags(flags).options;
  const ReplicatedResult from_points = run_replications(via_points.config, 1);

  ASSERT_EQ(programmatic.runs.size(), 1u);
  ASSERT_EQ(from_file.runs.size(), 1u);
  ASSERT_EQ(from_points.runs.size(), 1u);
  expect_same_run(programmatic.runs.front(), from_file.runs.front());
  expect_same_run(programmatic.runs.front(), from_points.runs.front());

  // And the trace actually changed the run (the spike is not a no-op).
  SimulationConfig quiet = base;
  quiet.trace_events.clear();
  const ReplicatedResult without = run_replications(quiet, 1);
  EXPECT_NE(programmatic.runs.front().events_dispatched,
            without.runs.front().events_dispatched);
}

TEST(TraceReplayDeterminism, ConfigRejectsTraceOutsideDomainUniverse) {
  EXPECT_THROW(ParamRegistry::instance().resolve_flags(
                   {"--domains=4", "--trace-point=100:9:2"}),
               std::invalid_argument);
  EXPECT_THROW(
      ParamRegistry::instance().resolve_flags({"--trace-point=-5:0:2"}),
      std::invalid_argument);
  EXPECT_THROW(
      ParamRegistry::instance().resolve_flags({"--trace-point=100:0:1e12"}),
      std::invalid_argument);
}

TEST(TraceReplayDeterminism, ShardedRunRepaysTraceIdentically) {
  // A sharded run with a trace is deterministic across repeats (each shard
  // schedules exactly its owned slice), and the trace reaches the workload:
  // results differ from the trace-free run.
  SimulationConfig cfg;
  cfg.policy = "RR";
  cfg.num_domains = 6;
  cfg.total_clients = 60;
  cfg.duration_sec = 600.0;
  cfg.warmup_sec = 60.0;
  cfg.seed = 7;
  cfg.shard_domains = true;
  cfg.shard_count = 3;
  cfg.trace_events = {{100.0, 0, 4.0}, {100.0, 4, 3.0}, {400.0, 0, 1.0}};

  const ReplicatedResult a = run_replications(cfg, 1);
  const ReplicatedResult b = run_replications(cfg, 1);
  expect_same_run(a.runs.front(), b.runs.front());

  SimulationConfig quiet = cfg;
  quiet.trace_events.clear();
  const ReplicatedResult without = run_replications(quiet, 1);
  EXPECT_NE(a.runs.front().total_pages, without.runs.front().total_pages);
}

}  // namespace
}  // namespace adattl::experiment
