#include "sim/inline_callback.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <utility>

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

// Count heap traffic so the SBO boundary is observable: captures at or
// under kInlineSize must not allocate, captures over it must box exactly
// once. Program-global, hence this suite's own test binary.
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace adattl::sim {
namespace {

std::uint64_t allocations() { return g_allocations.load(std::memory_order_relaxed); }

/// Non-trivial capture that counts every construction and destruction.
struct LifeCounted {
  static int constructions;
  static int destructions;

  LifeCounted() { ++constructions; }
  LifeCounted(const LifeCounted&) { ++constructions; }
  LifeCounted(LifeCounted&&) noexcept { ++constructions; }
  ~LifeCounted() { ++destructions; }

  static void reset() { constructions = destructions = 0; }
  static int alive() { return constructions - destructions; }
};
int LifeCounted::constructions = 0;
int LifeCounted::destructions = 0;

TEST(InlineCallback, EmptyByDefault) {
  InlineCallback cb;
  EXPECT_FALSE(cb);
  InlineCallback null_cb(nullptr);
  EXPECT_FALSE(null_cb);
}

TEST(InlineCallback, InvokesSmallCapture) {
  int hits = 0;
  InlineCallback cb([&hits] { ++hits; });
  ASSERT_TRUE(cb);
  cb();
  cb();
  EXPECT_EQ(hits, 2);
}

TEST(InlineCallback, CaptureExactlyAtBoundaryStaysInline) {
  struct Payload {
    unsigned char bytes[InlineCallback::kInlineSize - sizeof(int*)];
    int* out;
  };
  static_assert(sizeof(Payload) == InlineCallback::kInlineSize);
  int result = 0;
  Payload p{};
  p.bytes[0] = 42;
  p.out = &result;
  auto fn = [p] { *p.out = p.bytes[0]; };
  static_assert(InlineCallback::fits_inline<decltype(fn)>());

  const std::uint64_t before = allocations();
  InlineCallback cb(fn);
  cb();
  EXPECT_EQ(allocations() - before, 0u) << "boundary-sized capture must not allocate";
  EXPECT_EQ(result, 42);
}

TEST(InlineCallback, OversizedCaptureFallsBackToHeapAndStillWorks) {
  struct Big {
    unsigned char bytes[InlineCallback::kInlineSize + 8];
    int* out;
  };
  int result = 0;
  Big b{};
  b.bytes[0] = 7;
  b.out = &result;
  auto fn = [b] { *b.out = b.bytes[0]; };
  static_assert(!InlineCallback::fits_inline<decltype(fn)>());

  const std::uint64_t before = allocations();
  InlineCallback cb(fn);
  EXPECT_EQ(allocations() - before, 1u) << "oversized capture boxes exactly once";
  cb();
  EXPECT_EQ(result, 7);

  // Moving a boxed callback shuffles the pointer, not the payload.
  const std::uint64_t before_move = allocations();
  InlineCallback moved(std::move(cb));
  EXPECT_EQ(allocations() - before_move, 0u);
  EXPECT_FALSE(cb);  // NOLINT(bugprone-use-after-move): moved-from must be empty
  result = 0;
  moved();
  EXPECT_EQ(result, 7);
}

TEST(InlineCallback, MoveOnlyCapture) {
  auto value = std::make_unique<int>(99);
  int seen = 0;
  InlineCallback cb([v = std::move(value), &seen] { seen = *v; });
  InlineCallback moved(std::move(cb));
  EXPECT_FALSE(cb);  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(moved);
  moved();
  EXPECT_EQ(seen, 99);
}

TEST(InlineCallback, MoveAssignmentDestroysPreviousTarget) {
  LifeCounted::reset();
  {
    InlineCallback a([c = LifeCounted{}] { (void)c; });
    InlineCallback b([c = LifeCounted{}] { (void)c; });
    EXPECT_EQ(LifeCounted::alive(), 2);
    b = std::move(a);  // b's capture destroyed; a's relocated into b
    EXPECT_EQ(LifeCounted::alive(), 1);
    EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move)
    ASSERT_TRUE(b);
  }
  EXPECT_EQ(LifeCounted::alive(), 0) << "every construction must be matched by a destruction";
}

TEST(InlineCallback, DestructionCountsBalanceThroughMoveChains) {
  LifeCounted::reset();
  {
    InlineCallback cb([c = LifeCounted{}] { (void)c; });
    InlineCallback hop1(std::move(cb));
    InlineCallback hop2(std::move(hop1));
    hop2();
    EXPECT_EQ(LifeCounted::alive(), 1);
  }
  EXPECT_EQ(LifeCounted::alive(), 0);
}

TEST(InlineCallback, ResetDestroysExactlyOnce) {
  LifeCounted::reset();
  InlineCallback cb([c = LifeCounted{}] { (void)c; });
  EXPECT_EQ(LifeCounted::alive(), 1);
  cb.reset();
  EXPECT_FALSE(cb);
  EXPECT_EQ(LifeCounted::alive(), 0);
  cb.reset();  // idempotent
  EXPECT_EQ(LifeCounted::alive(), 0);
}

TEST(InlineCallback, TriviallyCopyableCaptureRelocatesByMemcpy) {
  // Not directly observable, but pin the dispatch-kernel assumption that
  // plain [this]-style captures are trivially relocatable and inline.
  struct Fake {
    double a;
    int b;
  };
  int out = 0;
  Fake f{1.5, 21};
  auto fn = [f, &out] { out = f.b * 2; };
  static_assert(std::is_trivially_copyable_v<decltype(fn)>);
  static_assert(InlineCallback::fits_inline<decltype(fn)>());
  InlineCallback cb(fn);
  InlineCallback moved(std::move(cb));
  moved();
  EXPECT_EQ(out, 42);
}

TEST(InlineCallback, AssertInlinePassesThrough) {
  int hits = 0;
  InlineCallback cb(assert_inline([&hits] { ++hits; }));
  cb();
  EXPECT_EQ(hits, 1);
}

}  // namespace
}  // namespace adattl::sim
