// Golden-value determinism regression for the event kernel.
//
// The kernel rewrite contract (ISSUE 2) is bit-identical dispatch: for a
// fixed seed and policy, RunResult must not change when the queue's
// internals change (binary swap-heap -> 4-ary hole-sift indexed heap,
// std::function -> InlineCallback, unbounded slot map -> recycled slot
// table). These constants were captured from the pre-rewrite kernel
// (commit fc21bd6) and pin one RR and one DRR2 run; any future kernel
// optimization must keep reproducing them exactly.
#include <gtest/gtest.h>

#include "experiment/site.h"

namespace adattl::experiment {
namespace {

SimulationConfig golden_config(const char* policy) {
  SimulationConfig cfg;
  cfg.policy = policy;
  cfg.warmup_sec = 60.0;
  cfg.duration_sec = 600.0;
  cfg.seed = 20260806;
  return cfg;
}

TEST(KernelGolden, RoundRobinRunIsBitIdenticalToPreRewriteKernel) {
  Site site(golden_config("RR"));
  const RunResult r = site.run();
  EXPECT_EQ(r.events_dispatched, 40430u);
  EXPECT_EQ(r.total_pages, 20194u);
  EXPECT_EQ(r.total_hits, 201262u);
  EXPECT_EQ(r.authoritative_queries, 60u);
  EXPECT_EQ(r.ns_cache_hits, 1399u);
  EXPECT_EQ(r.alarm_signals, 41u);
  EXPECT_DOUBLE_EQ(r.mean_max_utilization, 0.96467028188235426);
  EXPECT_DOUBLE_EQ(r.prob_below_090, 0.16);
  EXPECT_DOUBLE_EQ(r.prob_below_098, 0.28000000000000003);
  EXPECT_DOUBLE_EQ(r.mean_page_response_sec, 1.537996095555235);
  EXPECT_DOUBLE_EQ(r.response_p95_sec, 8.6500000000000004);
  EXPECT_DOUBLE_EQ(r.mean_ttl, 240.0);
  EXPECT_DOUBLE_EQ(r.aggregate_utilization, 0.6113549537858185);
}

TEST(KernelGolden, Drr2RunIsBitIdenticalToPreRewriteKernel) {
  Site site(golden_config("DRR2-TTL/S_K"));
  const RunResult r = site.run();
  EXPECT_EQ(r.events_dispatched, 42450u);
  EXPECT_EQ(r.total_pages, 21189u);
  EXPECT_EQ(r.total_hits, 211356u);
  EXPECT_EQ(r.authoritative_queries, 61u);
  EXPECT_EQ(r.ns_cache_hits, 1441u);
  EXPECT_EQ(r.alarm_signals, 32u);
  EXPECT_DOUBLE_EQ(r.mean_max_utilization, 0.89479290988804616);
  EXPECT_DOUBLE_EQ(r.prob_below_090, 0.49333333333333335);
  EXPECT_DOUBLE_EQ(r.prob_below_098, 0.62666666666666671);
  EXPECT_DOUBLE_EQ(r.mean_page_response_sec, 0.73960554196617245);
  EXPECT_DOUBLE_EQ(r.response_p95_sec, 3.96);
  EXPECT_DOUBLE_EQ(r.mean_ttl, 273.75661673964083);
  EXPECT_DOUBLE_EQ(r.aggregate_utilization, 0.6435553950469981);
}

}  // namespace
}  // namespace adattl::experiment
