// Server-side redirection (second-level dispatching) suite.
#include "web/dispatcher.h"

#include <gtest/gtest.h>

#include "experiment/cli.h"
#include "experiment/site.h"
#include "sim/random.h"

namespace adattl {
namespace {

struct Rig {
  Rig() : rng(7), cluster(simulator, spec(), 2, rng) {}

  static web::ClusterSpec spec() {
    web::ClusterSpec s;
    s.relative = {1.0, 1.0, 0.5};
    s.total_capacity_hits_per_sec = 250.0;  // capacities 100/100/50
    return s;
  }

  sim::Simulator simulator;
  sim::RngStream rng;
  web::Cluster cluster;
};

TEST(DirectDispatcher, DeliversToTheNamedServer) {
  Rig rig;
  web::DirectDispatcher d(rig.cluster);
  d.dispatch(2, web::PageRequest{0, 10, nullptr});
  EXPECT_EQ(rig.cluster.server(2).queue_length(), 1u);
  EXPECT_EQ(rig.cluster.server(0).queue_length(), 0u);
}

TEST(RedirectingDispatcher, PassesThroughWhenBacklogSmall) {
  Rig rig;
  web::RedirectingDispatcher d(rig.simulator, rig.cluster, 2.0, 0.1, 10.0);
  d.dispatch(0, web::PageRequest{0, 10, nullptr});
  EXPECT_EQ(rig.cluster.server(0).queue_length(), 1u);
  EXPECT_EQ(d.redirects(), 0u);
  EXPECT_EQ(d.direct_deliveries(), 1u);
}

TEST(RedirectingDispatcher, BacklogEstimateTracksQueue) {
  Rig rig;
  web::RedirectingDispatcher d(rig.simulator, rig.cluster, 2.0, 0.1, 10.0);
  EXPECT_DOUBLE_EQ(d.backlog_sec(0), 0.0);
  for (int i = 0; i < 10; ++i) rig.cluster.server(0).submit_page({0, 10, nullptr});
  // 10 pages x 10 hits / 100 hits/s = 1 s of work.
  EXPECT_DOUBLE_EQ(d.backlog_sec(0), 1.0);
  // The same backlog on the half-capacity server is twice the wait.
  for (int i = 0; i < 10; ++i) rig.cluster.server(2).submit_page({0, 10, nullptr});
  EXPECT_DOUBLE_EQ(d.backlog_sec(2), 2.0);
}

TEST(RedirectingDispatcher, OverloadedTargetRedirectsToLeastLoaded) {
  Rig rig;
  web::RedirectingDispatcher d(rig.simulator, rig.cluster, 1.0, 0.1, 10.0);
  for (int i = 0; i < 15; ++i) rig.cluster.server(0).submit_page({0, 10, nullptr});  // 1.5 s
  d.dispatch(0, web::PageRequest{0, 10, nullptr});
  EXPECT_EQ(d.redirects(), 1u);
  // The page is in flight for redirect_delay, then lands on server 1 or 2
  // (both empty) and may even complete service by the probe time.
  rig.simulator.run_until(0.2);
  const std::uint64_t landed = rig.cluster.server(1).hits_served() +
                               rig.cluster.server(2).hits_served() +
                               rig.cluster.server(1).queue_length() +
                               rig.cluster.server(2).queue_length();
  EXPECT_GE(landed, 1u);
  // Nothing extra reached the overloaded server.
  EXPECT_EQ(rig.cluster.server(0).lifetime_domain_hits()[0], 150u);
}

TEST(RedirectingDispatcher, NoPingPongWhenEveryoneIsLoaded) {
  Rig rig;
  web::RedirectingDispatcher d(rig.simulator, rig.cluster, 0.5, 0.0, 10.0);
  for (int s = 0; s < 3; ++s) {
    for (int i = 0; i < 20; ++i) rig.cluster.server(s).submit_page({0, 10, nullptr});
  }
  // Every server exceeds the threshold: one redirect to the argmin, which
  // queues it regardless (never a second hop).
  d.dispatch(0, web::PageRequest{0, 10, nullptr});
  rig.simulator.run_until(0.001);
  EXPECT_LE(d.redirects(), 1u);
  std::size_t total = 0;
  for (int s = 0; s < 3; ++s) total += rig.cluster.server(s).queue_length();
  EXPECT_GE(total, 58u);  // nothing got lost (some service may have started)
}

TEST(RedirectingDispatcher, TargetAlreadyLeastLoadedIsNotRedirected) {
  Rig rig;
  web::RedirectingDispatcher d(rig.simulator, rig.cluster, 0.1, 0.0, 10.0);
  // Load servers 1 and 2 more than 0; target 0 is over threshold but still
  // the least loaded -> no redirect.
  for (int i = 0; i < 3; ++i) rig.cluster.server(0).submit_page({0, 10, nullptr});
  for (int i = 0; i < 9; ++i) rig.cluster.server(1).submit_page({0, 10, nullptr});
  for (int i = 0; i < 9; ++i) rig.cluster.server(2).submit_page({0, 10, nullptr});
  d.dispatch(0, web::PageRequest{0, 10, nullptr});
  EXPECT_EQ(d.redirects(), 0u);
  EXPECT_EQ(rig.cluster.server(0).queue_length(), 4u);
}

TEST(RedirectingDispatcher, Validation) {
  Rig rig;
  EXPECT_THROW(web::RedirectingDispatcher(rig.simulator, rig.cluster, 0.0, 0.1, 10.0),
               std::invalid_argument);
  EXPECT_THROW(web::RedirectingDispatcher(rig.simulator, rig.cluster, 1.0, -0.1, 10.0),
               std::invalid_argument);
  EXPECT_THROW(web::RedirectingDispatcher(rig.simulator, rig.cluster, 1.0, 0.1, 0.0),
               std::invalid_argument);
}

TEST(RedirectionIntegration, RedirectionRescuesRoundRobin) {
  experiment::SimulationConfig cfg;
  cfg.cluster = web::table2_cluster(50);
  cfg.policy = "RR";
  cfg.warmup_sec = 200.0;
  cfg.duration_sec = 2400.0;
  cfg.seed = 61;
  const experiment::RunResult plain = experiment::Site(cfg).run();
  cfg.redirect_enabled = true;
  const experiment::RunResult redirected = experiment::Site(cfg).run();
  // Second-level dispatching caps the queues the DNS cannot see, so the
  // *client experience* improves sharply. (Max utilization does NOT: the
  // workload is closed-loop, and rescuing the clients RR trapped behind a
  // hot queue lets them generate more load, keeping every server busier —
  // the redirection ablation quantifies this deliberately.)
  EXPECT_LT(redirected.mean_page_response_sec, 0.6 * plain.mean_page_response_sec);
  EXPECT_LT(redirected.response_p99_sec, plain.response_p99_sec);
  EXPECT_GT(redirected.redirected_pages, 0u);
  EXPECT_GT(redirected.redirected_fraction, 0.0);
  EXPECT_LT(redirected.redirected_fraction, 0.5);
  EXPECT_EQ(plain.redirected_pages, 0u);
}

TEST(RedirectionIntegration, AdaptiveTtlNeedsFewRedirects) {
  experiment::SimulationConfig cfg;
  cfg.cluster = web::table2_cluster(50);
  cfg.warmup_sec = 200.0;
  cfg.duration_sec = 2400.0;
  cfg.seed = 62;
  cfg.redirect_enabled = true;
  cfg.policy = "RR";
  const experiment::RunResult rr = experiment::Site(cfg).run();
  cfg.policy = "DRR2-TTL/S_K";
  const experiment::RunResult adaptive = experiment::Site(cfg).run();
  // Good first-level scheduling leaves much less for the second level.
  EXPECT_LT(adaptive.redirected_fraction, 0.5 * rr.redirected_fraction);
}

TEST(RedirectionCli, ParsesFlags) {
  const experiment::CliOptions opt =
      experiment::parse_cli({"--redirect-wait=1.5", "--redirect-delay=0.05"});
  EXPECT_TRUE(opt.config.redirect_enabled);
  EXPECT_DOUBLE_EQ(opt.config.redirect_max_wait_sec, 1.5);
  EXPECT_DOUBLE_EQ(opt.config.redirect_delay_sec, 0.05);
  EXPECT_TRUE(experiment::parse_cli({"--redirect"}).config.redirect_enabled);
  EXPECT_FALSE(experiment::parse_cli({}).config.redirect_enabled);
}

}  // namespace
}  // namespace adattl
