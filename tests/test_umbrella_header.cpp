// The umbrella header must compile standalone and expose the whole public
// API — this is what downstream users include.
#include "adattl.h"

#include <gtest/gtest.h>

namespace {

TEST(UmbrellaHeader, ExposesEveryLayer) {
  // One symbol per layer proves the includes are complete and consistent.
  adattl::sim::Simulator simulator;
  adattl::sim::RngStream rng(1);
  const adattl::web::ClusterSpec spec = adattl::web::table2_cluster(20);
  EXPECT_EQ(spec.size(), 7);

  adattl::core::AlarmRegistry alarms(7, 0.9);
  adattl::core::SchedulerFactoryConfig fc;
  fc.capacities = spec.absolute_capacities();
  fc.initial_weights = adattl::sim::ZipfDistribution(20, 1.0).probabilities();
  fc.class_threshold = 0.05;
  adattl::core::SchedulerBundle bundle =
      adattl::core::make_scheduler("DRR2-TTL/S_K", fc, alarms, simulator, rng);
  EXPECT_GT(bundle.scheduler->schedule(0).ttl_sec, 0.0);

  adattl::experiment::SimulationConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
  const adattl::workload::DomainSet ds = adattl::workload::make_zipf_domains(20, 500, 15.0);
  EXPECT_EQ(ds.total_clients(), 500);
}

}  // namespace
