// Zero-allocation contract of the event kernel (ISSUE 2 acceptance):
// once the queue's vectors reach steady-state capacity, schedule/pop churn
// with kernel-sized callbacks must never touch the heap. Verified by
// interposing the global allocation functions with a counter.
//
// This suite lives in its own test binary because the operator new/delete
// replacements are program-global.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "obs/event_tracer.h"
#include "obs/metrics.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

// Replace the global allocation entry points. All other forms (nothrow,
// aligned, sized delete) funnel through these on this toolchain; the test
// only needs the count to be an upper bound anyway.
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace adattl::sim {
namespace {

std::uint64_t allocations() { return g_allocations.load(std::memory_order_relaxed); }

TEST(KernelAlloc, SteadyStateChurnAllocatesNothing) {
  // The simulation's dominant pattern: a resident set of events where each
  // pop schedules one successor (think timer -> next page -> think timer).
  constexpr int kResident = 512;
  constexpr int kChurnEvents = 10000;

  EventQueue q;
  RngStream rng(7);
  double now = 0.0;
  std::uint64_t fired = 0;
  for (int i = 0; i < kResident; ++i) {
    q.schedule(rng.uniform(0.0, 30.0), [&fired] { ++fired; });
  }
  // Warmup: one full churn pass lets every internal vector reach its
  // steady-state capacity (heap, slot table, free list).
  for (int i = 0; i < kResident; ++i) {
    auto [t, cb] = q.pop();
    now = t;
    cb();
    q.schedule(now + rng.exponential(15.0), [&fired] { ++fired; });
  }

  const std::uint64_t before = allocations();
  for (int i = 0; i < kChurnEvents; ++i) {
    auto [t, cb] = q.pop();
    now = t;
    cb();
    q.schedule(now + rng.exponential(15.0), [&fired] { ++fired; });
  }
  const std::uint64_t during = allocations() - before;

  EXPECT_EQ(during, 0u) << "steady-state schedule/pop churn must not allocate";
  EXPECT_EQ(fired, static_cast<std::uint64_t>(kResident + kChurnEvents));
}

TEST(KernelAlloc, CancelChurnAllocatesNothing) {
  // TTL-expiry style traffic: schedule + cancel pairs recycling the same
  // slots through the free list.
  EventQueue q;
  RngStream rng(11);
  for (int i = 0; i < 256; ++i) q.schedule(rng.uniform(0.0, 1e3), [] {});
  std::vector<EventHandle> handles;
  handles.reserve(256);
  for (int i = 0; i < 256; ++i) handles.push_back(q.schedule(rng.uniform(0.0, 1e3), [] {}));
  for (EventHandle h : handles) ASSERT_TRUE(q.cancel(h));
  handles.clear();

  const std::uint64_t before = allocations();
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 250; ++i) handles.push_back(q.schedule(rng.uniform(0.0, 1e3), [] {}));
    for (EventHandle h : handles) ASSERT_TRUE(q.cancel(h));
    handles.clear();
  }
  EXPECT_EQ(allocations() - before, 0u) << "schedule/cancel churn must not allocate";
}

TEST(KernelAlloc, ReservedSimulatorRunAllocatesNothingPerEvent) {
  Simulator sim;
  sim.reserve(64);
  std::uint64_t chain = 0;
  // Self-rescheduling event chain through the Simulator front-end — the
  // after() fast path plus an inline [this-sized] capture.
  struct Chain {
    Simulator& sim;
    std::uint64_t& count;
    void step() {
      if (++count < 10000) {
        sim.after(1.0, assert_inline([this] { step(); }));
      }
    }
  } driver{sim, chain};

  sim.at(0.0, [&driver] { driver.step(); });
  sim.run_until(1.0);  // vectors warmed, chain running
  const std::uint64_t before = allocations();
  sim.run();
  EXPECT_EQ(allocations() - before, 0u) << "dispatch loop must not allocate per event";
  EXPECT_EQ(chain, 10000u);
}

TEST(KernelAlloc, MetricHandleUpdatesAllocateNothing) {
  // Registration (wiring time) may allocate; the handle hot path must not.
  obs::MetricsRegistry registry;
  obs::Counter counter = registry.counter("test.counter");
  obs::Gauge gauge = registry.gauge("test.gauge");
  obs::HistogramHandle hist = registry.histogram("test.hist", 10.0, 64);
  // Unbound (no-op) handles: the disabled-observability path.
  obs::Counter unbound_counter;
  obs::Gauge unbound_gauge;
  obs::HistogramHandle unbound_hist;

  const std::uint64_t before = allocations();
  for (int i = 0; i < 10000; ++i) {
    counter.inc();
    gauge.set(static_cast<double>(i));
    hist.observe(static_cast<double>(i % 12));
    unbound_counter.inc();
    unbound_gauge.add(1.0);
    unbound_hist.observe(0.5);
  }
  EXPECT_EQ(allocations() - before, 0u) << "metric updates must not allocate";
  EXPECT_EQ(counter.value(), 10000u);
}

TEST(KernelAlloc, TracerRecordAllocatesNothing) {
  // Ring-buffer writes (enabled path) and the null-check (disabled path)
  // are both allocation-free; only construction and export may allocate.
  obs::EventTracer tracer(1024);
  obs::EventTracer* disabled = nullptr;

  const std::uint64_t before = allocations();
  for (int i = 0; i < 10000; ++i) {
    tracer.record(static_cast<double>(i), obs::TraceKind::kDecision, i % 20, i % 7, 240.0);
    if (disabled) disabled->record(0.0, obs::TraceKind::kAlarm, 0);
  }
  EXPECT_EQ(allocations() - before, 0u) << "trace records must not allocate";
  EXPECT_EQ(tracer.total_recorded(), 10000u);
  EXPECT_EQ(tracer.dropped(), 10000u - 1024u);
}

}  // namespace
}  // namespace adattl::sim
