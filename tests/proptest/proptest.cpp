#include "proptest.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <stdexcept>

namespace adattl::proptest {
namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Strict unsigned env parse; throws on junk so a typo'd knob fails loudly
/// instead of silently running the default budget.
bool env_u64(const char* name, std::uint64_t* out) {
  const char* v = std::getenv(name);
  if (!v || !*v) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (errno != 0 || end == v || *end != '\0') {
    throw std::invalid_argument(std::string(name) + ": expected an unsigned integer, got '" +
                                v + "'");
  }
  *out = parsed;
  return true;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

int iterations(int local_default) {
  std::uint64_t pinned = 0;
  if (env_u64("ADATTL_PROPERTY_SEED", &pinned)) return 1;
  std::uint64_t iters = 0;
  if (env_u64("ADATTL_PROPERTY_ITERS", &iters)) {
    if (iters < 1) throw std::invalid_argument("ADATTL_PROPERTY_ITERS: must be >= 1");
    return static_cast<int>(iters);
  }
  return local_default;
}

std::uint64_t case_seed(const std::string& suite, int iteration) {
  std::uint64_t base = 0;
  env_u64("ADATTL_PROPERTY_BASE_SEED", &base);
  return splitmix64(fnv1a(suite) ^ splitmix64(base) ^
                    splitmix64(static_cast<std::uint64_t>(iteration) + 1));
}

std::string GeneratedConfig::command_line() const {
  std::string out = "run_scenario";
  for (const std::string& f : flags) out += " " + f;
  return out;
}

std::string GeneratedConfig::scenario_text() const {
  return experiment::ParamRegistry::instance().dump_scenario(resolution);
}

std::string ConfigGen::draw_policy_name() {
  static const char* kSelections[] = {"RR",  "RR2", "RR3", "RRK", "PRR",
                                      "PRR2", "WRR", "DAL", "MRL", "GEO"};
  static const char* kTtls[] = {"",       "-TTL/1",   "-TTL/2",   "-TTL/3",
                                "-TTL/K", "-TTL/S_1", "-TTL/S_2", "-TTL/S_K"};
  const auto sel = static_cast<std::size_t>(rng_.uniform_int(0, 9));
  const auto ttl = static_cast<std::size_t>(rng_.uniform_int(0, 7));
  return std::string(kSelections[sel]) + kTtls[ttl];
}

GeneratedConfig ConfigGen::draw(Profile profile) {
  std::vector<std::string> f;
  const auto flag = [&](const std::string& k, const std::string& v) {
    f.push_back("--" + k + "=" + v);
  };
  const auto fd = [&](const std::string& k, double v) { flag(k, fmt(v)); };
  const auto fi = [&](const std::string& k, std::int64_t v) { flag(k, std::to_string(v)); };

  // ---- cluster: a Table 2 preset or a random non-increasing profile ----
  int servers = 7;
  if (rng_.bernoulli(0.5)) {
    static const int kLevels[] = {0, 20, 35, 50, 65};
    fi("heterogeneity", kLevels[rng_.uniform_int(0, 4)]);
  } else {
    servers = static_cast<int>(rng_.uniform_int(3, 10));
    std::string rel = "1";
    double cur = 1.0;
    for (int s = 1; s < servers; ++s) {
      if (rng_.bernoulli(0.4)) cur = std::max(0.3, cur * rng_.uniform(0.6, 1.0));
      rel += "," + fmt(cur);
    }
    flag("relative", rel);
  }

  // ---- workload: small populations so 100 cases stay in seconds; the
  // capacity scales with the population so utilization stays moderate ----
  const int clients = static_cast<int>(rng_.uniform_int(30, 150));
  fi("clients", clients);
  fd("total-capacity", clients * rng_.uniform(0.8, 1.8));
  const int domains = static_cast<int>(rng_.uniform_int(5, 40));
  fi("domains", domains);
  fd("think", rng_.uniform(3.0, 20.0));
  fd("zipf-theta", rng_.uniform(0.5, 1.4));
  if (rng_.bernoulli(0.15)) flag("uniform", "true");
  if (rng_.bernoulli(0.25)) fd("error", rng_.uniform(5.0, 30.0));

  // ---- algorithm ----
  const std::string policy = draw_policy_name();
  flag("policy", policy);
  if (policy.rfind("GEO", 0) == 0 || rng_.bernoulli(0.15)) {
    fi("geo-regions", rng_.uniform_int(2, 4));
    const double intra = rng_.uniform(0.005, 0.05);
    fd("geo-intra", intra);
    fd("geo-inter", intra + rng_.uniform(0.02, 0.2));
  }
  fd("ttl", rng_.uniform(30.0, 600.0));
  if (rng_.bernoulli(0.3)) fd("class-threshold", rng_.uniform(0.02, 0.2));
  if (rng_.bernoulli(0.1)) flag("calibration", "false");
  if (rng_.bernoulli(0.2)) {
    flag("alarm", "false");
  } else {
    fd("alarm-threshold", rng_.uniform(0.7, 0.95));
    if (rng_.bernoulli(0.3)) fi("queue-alarm", rng_.uniform_int(20, 60));
  }
  fd("monitor-interval", rng_.uniform(2.0, 16.0));

  // ---- estimation ----
  if (rng_.bernoulli(0.3)) {
    flag("measured", "true");
    flag("estimator", rng_.bernoulli(0.5) ? "ewma" : "window");
    if (rng_.bernoulli(0.5)) fd("estimator-smoothing", rng_.uniform(0.1, 0.9));
    if (rng_.bernoulli(0.3)) flag("cold-start", "true");
  }

  // ---- resolvers ----
  if (rng_.bernoulli(0.3)) fd("min-ttl", rng_.uniform(5.0, 60.0));
  fi("ns-per-domain", rng_.uniform_int(1, 3));
  if (rng_.bernoulli(0.25)) flag("client-cache", "true");

  // ---- redirection ----
  if (rng_.bernoulli(0.15)) {
    flag("redirect", "true");
    fd("redirect-wait", rng_.uniform(0.5, 3.0));
  }

  // ---- run control ----
  const double warmup = rng_.uniform(20.0, 60.0);
  const double duration = rng_.uniform(120.0, 400.0);
  fd("warmup", warmup);
  fd("duration", duration);
  flag("seed", std::to_string(rng_.next_u64()));

  // ---- dynamics: an occasional scripted flash crowd ----
  if (rng_.bernoulli(0.2)) {
    flag("shift", fmt(rng_.uniform(0.0, warmup + duration)) + ":" +
                      std::to_string(rng_.uniform_int(0, domains - 1)) + ":" +
                      fmt(rng_.uniform(1.5, 6.0)));
  }

  if (profile == Profile::kFaulted) {
    const double horizon = warmup + duration;
    const auto window_start = [&] { return rng_.uniform(0.0, horizon * 0.85); };
    // Crashes target distinct servers so at least one stays alive even if
    // every window overlaps (the DNS must always have somewhere to point).
    const int max_crashes = std::min<int>(3, servers - 1);
    const int crashes = static_cast<int>(rng_.uniform_int(1, max_crashes));
    std::vector<int> order(static_cast<std::size_t>(servers));
    for (int s = 0; s < servers; ++s) order[static_cast<std::size_t>(s)] = s;
    for (int s = servers - 1; s > 0; --s) {
      std::swap(order[static_cast<std::size_t>(s)],
                order[static_cast<std::size_t>(rng_.uniform_int(0, s))]);
    }
    for (int c = 0; c < crashes; ++c) {
      flag("crash", fmt(window_start()) + ":" + fmt(rng_.uniform(10.0, 80.0)) + ":" +
                        std::to_string(order[static_cast<std::size_t>(c)]));
    }
    const int degrades = static_cast<int>(rng_.uniform_int(0, 2));
    for (int d = 0; d < degrades; ++d) {
      flag("degrade", fmt(window_start()) + ":" + fmt(rng_.uniform(10.0, 120.0)) + ":" +
                          std::to_string(rng_.uniform_int(0, servers - 1)) + ":" +
                          fmt(rng_.uniform(0.2, 1.5)));
    }
    const int pauses = static_cast<int>(rng_.uniform_int(0, 2));
    for (int p = 0; p < pauses; ++p) {
      flag("pause", fmt(window_start()) + ":" + fmt(rng_.uniform(10.0, 60.0)) + ":" +
                        std::to_string(rng_.uniform_int(0, servers - 1)));
    }
    const int outages = static_cast<int>(rng_.uniform_int(0, 2));
    for (int o = 0; o < outages; ++o) {
      flag("dns-outage", fmt(window_start()) + ":" + fmt(rng_.uniform(10.0, 60.0)));
    }
    fd("retry-delay", rng_.uniform(0.2, 2.0));
    const double backoff = rng_.uniform(0.5, 2.0);
    fd("ns-retry-backoff", backoff);
    fd("ns-retry-max-backoff", backoff * rng_.uniform(2.0, 30.0));
  }

  GeneratedConfig gc;
  gc.flags = std::move(f);
  gc.resolution = experiment::ParamRegistry::instance().resolve_flags(gc.flags);
  return gc;
}

namespace {

void report_failure(const std::string& suite, const PropertyCase& pc) {
  std::cerr << "\n[proptest] property FAILED: suite=" << suite << " seed=" << pc.seed
            << "\n[proptest] replay this exact case with:\n"
            << "[proptest]   ADATTL_PROPERTY_SEED=" << pc.seed
            << " ctest --test-dir build -R " << suite << " --output-on-failure\n";
  if (pc.attached.has_value()) {
    std::cerr << "[proptest] generated config (one-command repro):\n"
              << "[proptest]   " << pc.attached->command_line() << "\n"
              << "[proptest] repro scenario (--dump-config form):\n"
              << pc.attached->scenario_text();
    const char* dir = std::getenv("ADATTL_PROPERTY_DUMP_DIR");
    if (dir && *dir) {
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);
      const std::string path =
          std::string(dir) + "/" + suite + "-seed" + std::to_string(pc.seed) + ".scenario";
      std::ofstream out(path);
      if (out) {
        out << "# " << suite << " failure, seed " << pc.seed << "\n"
            << "# replay: ADATTL_PROPERTY_SEED=" << pc.seed << " ctest -R " << suite << "\n"
            << pc.attached->scenario_text();
        std::cerr << "[proptest] wrote repro scenario: " << path << "\n";
      } else {
        std::cerr << "[proptest] could not write repro scenario to " << path << "\n";
      }
    }
  }
  std::cerr.flush();
}

}  // namespace

void for_each_case(const std::string& suite, int local_default_iters,
                   const std::function<void(PropertyCase&)>& body) {
  std::uint64_t pinned = 0;
  const bool has_pin = env_u64("ADATTL_PROPERTY_SEED", &pinned);
  const int iters = iterations(local_default_iters);
  for (int i = 0; i < iters; ++i) {
    PropertyCase pc(has_pin ? pinned : case_seed(suite, i));
    SCOPED_TRACE(suite + " case seed " + std::to_string(pc.seed) +
                 " (replay: ADATTL_PROPERTY_SEED=" + std::to_string(pc.seed) + ")");
    body(pc);
    if (::testing::Test::HasFatalFailure() || ::testing::Test::HasNonfatalFailure()) {
      report_failure(suite, pc);
      return;  // first failing seed is the repro; don't spam 99 more
    }
  }
}

}  // namespace adattl::proptest
