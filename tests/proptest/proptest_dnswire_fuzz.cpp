// Byte-mangling fuzzer for dnswire::message parsing and
// DnsFrontend::handle: truncation, bit flips, compression-pointer loops,
// length-field lies, counts that lie about the sections that follow —
// every input must yield a well-formed FORMERR/NOTIMP/NXDOMAIN/SERVFAIL
// answer or an explicit drop (id unrecoverable), never UB and never an
// empty reply for a readable header. Runs under ASan/UBSan in CI; inputs
// that once broke the contract live on as tests/proptest/corpus/*.hex,
// replayed by proptest_dnswire_corpus.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <string>
#include <vector>

#include "dnswire/ecs.h"
#include "dnswire/frontend.h"
#include "dnswire/message.h"
#include "dnswire_checks.h"
#include "fault/dns_outage.h"
#include "proptest.h"
#include "sim/random.h"

namespace adattl {
namespace {

using proptest::check_frontend_contract;
using proptest::for_each_case;
using proptest::FrontendHarness;
using proptest::PropertyCase;

std::string random_name(sim::RngStream& rng) {
  static const char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789-";
  const int labels = static_cast<int>(rng.uniform_int(1, 5));
  std::string name;
  for (int l = 0; l < labels; ++l) {
    if (l > 0) name += '.';
    const int len = static_cast<int>(rng.uniform_int(1, 12));
    for (int i = 0; i < len; ++i) {
      name += kAlphabet[rng.uniform_int(0, sizeof(kAlphabet) - 2)];
    }
  }
  return name;
}

/// A plausible starting datagram: a real query (often for the site name),
/// a real response fed back as a query, or plain noise.
std::vector<std::uint8_t> draw_base(sim::RngStream& rng, const FrontendHarness& h) {
  static const std::uint16_t kTypes[] = {1, 2, 5, 15, 16, 28, 255};
  static const std::uint16_t kClasses[] = {1, 3, 254, 255};
  const double which = rng.uniform(0.0, 1.0);
  if (which < 0.55) {
    const std::string qname = rng.bernoulli(0.5) ? h.site_name() : random_name(rng);
    auto q = dnswire::encode_query(static_cast<std::uint16_t>(rng.uniform_int(0, 0xffff)),
                                   qname, kTypes[rng.uniform_int(0, 6)],
                                   kClasses[rng.uniform_int(0, 3)], rng.bernoulli(0.5));
    if (rng.bernoulli(0.4)) {
      // Graft an EDNS0 Client-Subnet option so mutations hit the ECS
      // scanner's option walk, not just the question decoder.
      dnswire::ClientSubnet subnet{};
      const bool v6 = rng.bernoulli(0.25);
      subnet.family = v6 ? dnswire::kEcsFamilyIpv6 : dnswire::kEcsFamilyIpv4;
      subnet.source_prefix =
          static_cast<std::uint8_t>(rng.uniform_int(0, v6 ? 128 : 32));
      subnet.address_len = static_cast<std::uint8_t>((subnet.source_prefix + 7) / 8);
      for (int i = 0; i < subnet.address_len; ++i) {
        subnet.address[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      }
      dnswire::append_ecs_option(&q, subnet);
    }
    return q;
  }
  if (which < 0.7) {
    dnswire::Header qh;
    qh.id = static_cast<std::uint16_t>(rng.uniform_int(0, 0xffff));
    dnswire::Question q;
    q.qname = random_name(rng);
    q.qtype = dnswire::kTypeA;
    q.qclass = dnswire::kClassIn;
    return dnswire::encode_a_response(qh, q, 0x0a000001u,
                                      static_cast<std::uint32_t>(rng.uniform_int(1, 3600)));
  }
  std::vector<std::uint8_t> noise(static_cast<std::size_t>(rng.uniform_int(0, 80)));
  for (std::uint8_t& b : noise) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return noise;
}

void mutate(sim::RngStream& rng, std::vector<std::uint8_t>* msg) {
  const int rounds = static_cast<int>(rng.uniform_int(0, 4));
  for (int r = 0; r < rounds; ++r) {
    const double op = rng.uniform(0.0, 1.0);
    if (op < 0.2 && !msg->empty()) {
      // bit flip
      const std::size_t i = static_cast<std::size_t>(rng.uniform_int(0, msg->size() - 1));
      (*msg)[i] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    } else if (op < 0.35 && !msg->empty()) {
      // byte rewrite
      const std::size_t i = static_cast<std::size_t>(rng.uniform_int(0, msg->size() - 1));
      (*msg)[i] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    } else if (op < 0.5 && !msg->empty()) {
      // truncate: the classic datagram cut
      msg->resize(static_cast<std::size_t>(rng.uniform_int(0, msg->size() - 1)));
    } else if (op < 0.65) {
      // extend with noise
      const int extra = static_cast<int>(rng.uniform_int(1, 16));
      for (int i = 0; i < extra; ++i) {
        msg->push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
      }
    } else if (op < 0.8 && msg->size() >= 2) {
      // plant a compression pointer (possibly a loop) mid-message
      const std::size_t i = static_cast<std::size_t>(rng.uniform_int(0, msg->size() - 2));
      (*msg)[i] = static_cast<std::uint8_t>(0xc0 | rng.uniform_int(0, 3));
      (*msg)[i + 1] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    } else if (op < 0.9 && msg->size() >= 12) {
      // lie in a header count field
      const std::size_t field = 4 + 2 * static_cast<std::size_t>(rng.uniform_int(0, 3));
      (*msg)[field] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      (*msg)[field + 1] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    } else if (op < 0.95 && msg->size() > 14) {
      // OPT option-region mangling: find a type-41 marker and corrupt the
      // bytes that follow it — rdlength, option code/length, ECS family,
      // prefix or address — the ECS scanner's own parse path.
      std::size_t opt = msg->size();
      for (std::size_t i = 12; i + 1 < msg->size(); ++i) {
        if ((*msg)[i] == 0x00 && (*msg)[i + 1] == 0x29) {
          opt = i;
          break;
        }
      }
      if (opt < msg->size()) {
        const std::size_t span = msg->size() - opt;
        const std::size_t i =
            opt + static_cast<std::size_t>(rng.uniform_int(0, span - 1));
        (*msg)[i] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      } else {
        // No OPT present: fabricate a type-41 marker somewhere plausible
        // so the scanner's RR walk meets one with lying fields around it.
        const std::size_t i =
            12 + static_cast<std::size_t>(rng.uniform_int(0, msg->size() - 14));
        (*msg)[i] = 0x00;
        (*msg)[i + 1] = 0x29;
      }
    } else if (!msg->empty()) {
      // lie in a length byte: make some label claim more than remains
      const std::size_t i = static_cast<std::size_t>(rng.uniform_int(0, msg->size() - 1));
      (*msg)[i] = static_cast<std::uint8_t>(rng.uniform_int(40, 63));
    }
  }
}

TEST(DnswireFuzz, ArbitraryBytesNeverBreakTheContract) {
  for_each_case("proptest_dnswire_fuzz", 100, [](PropertyCase& pc) {
    sim::RngStream& rng = pc.rng;
    FrontendHarness h(rng.next_u64());
    for (int m = 0; m < 60; ++m) {
      std::vector<std::uint8_t> msg = draw_base(rng, h);
      mutate(rng, &msg);

      // The raw decoders must stay memory-safe on anything (ASan/UBSan
      // watch this half; the return values are unconstrained).
      dnswire::Header dh;
      dnswire::Question dq;
      (void)dnswire::decode_query(msg, &dh, &dq);
      std::uint32_t ipv4 = 0;
      std::uint32_t ttl = 0;
      (void)dnswire::decode_a_response(msg, &dh, &ipv4, &ttl);

      // So must the ECS scanner and the daemon's key derivation — any
      // verdict is fine, reading out of bounds is not, and the key must
      // stay in range whatever the bytes claim.
      dnswire::ClientSubnet subnet{};
      (void)dnswire::extract_client_subnet(msg.data(), msg.size(), &subnet);
      const web::DomainId key = dnswire::derive_domain_key(
          msg.data(), msg.size(), static_cast<std::uint32_t>(rng.next_u64()),
          static_cast<std::uint16_t>(rng.uniform_int(0, 0xffff)), h.num_domains(), true);
      ASSERT_GE(key, 0);
      ASSERT_LT(key, h.num_domains());

      check_frontend_contract(
          h, msg, static_cast<web::DomainId>(rng.uniform_int(0, h.num_domains() - 1)));
      if (::testing::Test::HasFatalFailure()) return;
    }
  });
}

TEST(DnswireFuzz, ValidQueriesAlwaysGetAPositiveAnswer) {
  for_each_case("proptest_dnswire_fuzz", 100, [](PropertyCase& pc) {
    sim::RngStream& rng = pc.rng;
    FrontendHarness h(rng.next_u64());
    for (int i = 0; i < 20; ++i) {
      const auto id = static_cast<std::uint16_t>(rng.uniform_int(0, 0xffff));
      // Case-insensitive: resolvers may query any capitalization.
      std::string qname = h.site_name();
      for (char& c : qname) {
        if (rng.bernoulli(0.3)) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      }
      std::vector<std::uint8_t> reply;
      check_frontend_contract(h, dnswire::encode_query(id, qname),
                              static_cast<web::DomainId>(rng.uniform_int(0, h.num_domains() - 1)),
                              &reply);
      if (::testing::Test::HasFatalFailure()) return;
      ASSERT_EQ(proptest::reply_outcome(reply), "noerror");
    }
  });
}

TEST(DnswireFuzz, OutagesAnswerServfailWithoutConsumingDecisions) {
  for_each_case("proptest_dnswire_fuzz", 100, [](PropertyCase& pc) {
    sim::RngStream& rng = pc.rng;
    FrontendHarness h(rng.next_u64());
    const double start = rng.uniform(0.0, 50.0);
    const double duration = rng.uniform(1.0, 50.0);
    const fault::DnsOutageCalendar calendar({{start, duration}});
    h.frontend().set_outages(&calendar, &h.simulator());

    // Inside the window: SERVFAIL. At/after recovery: answered again.
    h.simulator().run_until(start + rng.uniform(0.0, duration * 0.99));
    std::vector<std::uint8_t> reply;
    check_frontend_contract(h, dnswire::encode_query(7, h.site_name()), 0, &reply);
    if (::testing::Test::HasFatalFailure()) return;
    ASSERT_EQ(proptest::reply_outcome(reply), "servfail");

    h.simulator().run_until(start + duration + rng.uniform(0.001, 10.0));
    check_frontend_contract(h, dnswire::encode_query(8, h.site_name()), 0, &reply);
    if (::testing::Test::HasFatalFailure()) return;
    ASSERT_EQ(proptest::reply_outcome(reply), "noerror");
  });
}

}  // namespace
}  // namespace adattl
