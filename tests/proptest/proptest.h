#pragma once

// Randomized property-test harness.
//
// Every suite is a loop over derived case seeds; each case draws a
// randomized-but-valid SimulationConfig through the parameter registry
// (so generated configs are validated exactly like user configs) and
// asserts an invariant that must hold for EVERY configuration. A failure
// prints the exact seed plus a --dump-config-style repro scenario, and the
// failing seed replays in one command:
//
//   ADATTL_PROPERTY_SEED=<seed> ./build/tests/proptest/<suite binary>
//
// Environment knobs:
//   ADATTL_PROPERTY_ITERS     iteration budget per property (CI keeps it
//                             small, nightly runs deep; default per suite)
//   ADATTL_PROPERTY_SEED      replay exactly one case seed and stop
//   ADATTL_PROPERTY_BASE_SEED perturbs every derived case seed (nightly
//                             exploration); the printed failing seed is
//                             already absolute, so replays stay one-command
//   ADATTL_PROPERTY_DUMP_DIR  write failing repro scenarios here (CI
//                             uploads the directory as an artifact)

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "experiment/param_registry.h"
#include "sim/random.h"

namespace adattl::proptest {

/// Iteration budget: ADATTL_PROPERTY_ITERS when set (strictly parsed,
/// >= 1), else `local_default`. A pinned ADATTL_PROPERTY_SEED forces 1.
int iterations(int local_default = 100);

/// The per-iteration case seed: splitmix-derived from the suite name, the
/// iteration index, and ADATTL_PROPERTY_BASE_SEED (0 when unset) — stable
/// across runs, distinct across suites.
std::uint64_t case_seed(const std::string& suite, int iteration);

/// One generated configuration: the flag list it was built from plus the
/// registry resolution (options + provenance). The flags ARE the repro:
/// `run_scenario <flags>` re-creates the exact run.
struct GeneratedConfig {
  std::vector<std::string> flags;
  experiment::ConfigResolution resolution;

  const experiment::SimulationConfig& config() const { return resolution.options.config; }
  /// "run_scenario --domains=12 --policy=... " one-command repro.
  std::string command_line() const;
  /// The --dump-config-style scenario text (registry dump_scenario).
  std::string scenario_text() const;
};

/// What a draw is for. kShortRun keeps populations and horizons small
/// enough that a 100-iteration property finishes in seconds; kFaulted
/// additionally draws a random fault plan (crashes, degradations, pauses,
/// authoritative-DNS outages) inside the horizon.
enum class Profile { kShortRun, kFaulted };

/// Draws randomized-but-valid configurations through the param registry.
/// Ranges are documented in DESIGN.md §14.
class ConfigGen {
 public:
  explicit ConfigGen(sim::RngStream& rng) : rng_(rng) {}

  GeneratedConfig draw(Profile profile);

  /// A random policy name from the full selection × TTL-flavour grammar.
  /// "GEO" callers must enable geo-regions (draw() does).
  std::string draw_policy_name();

 private:
  sim::RngStream& rng_;
};

/// One property case handed to the suite body: the seed (already printed
/// on failure), a stream derived from it, and a slot for the generated
/// config so failure reporting can dump the repro scenario after the body
/// returns (the case owns the config — no dangling repro).
struct PropertyCase {
  std::uint64_t seed = 0;
  sim::RngStream rng;
  /// Set by the body when it draws a full config; the failure banner then
  /// includes the flag list + scenario dump, and the scenario is written
  /// to ADATTL_PROPERTY_DUMP_DIR.
  std::optional<GeneratedConfig> attached;

  explicit PropertyCase(std::uint64_t s) : seed(s), rng(s) {}
  /// Stores the generated config and returns a stable reference to it.
  const GeneratedConfig& attach(GeneratedConfig gc) {
    attached = std::move(gc);
    return *attached;
  }
};

/// The per-property iteration loop. Runs `body` once per case seed under a
/// SCOPED_TRACE naming suite + seed; on the first gtest failure it prints
/// the repro banner (seed, replay command, flag list, scenario dump),
/// writes the scenario to ADATTL_PROPERTY_DUMP_DIR when set, and stops —
/// one minimal repro beats a hundred copies of the same failure.
void for_each_case(const std::string& suite, int local_default_iters,
                   const std::function<void(PropertyCase&)>& body);

}  // namespace adattl::proptest
