// NS cache coherence on randomized query traces (ROADMAP invariant): no
// mapping is ever served past its TTL unless it is an explicit stale
// serve during an authoritative outage — and stale serves are stamped
// already-expired so nothing downstream caches them. The test mirrors the
// name server's entire observable state machine (cache freshness, backoff
// ladder, counter deltas) in an independent oracle and checks every query
// of a random trace against it, under random TTL behaviors, retry
// policies, outage calendars and scheduling policies.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/policy_factory.h"
#include "dnscache/name_server.h"
#include "fault/dns_outage.h"
#include "geo/geo_model.h"
#include "proptest.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace adattl {
namespace {

using proptest::for_each_case;
using proptest::PropertyCase;

TEST(NsCoherenceProperty, NoMappingOutlivesItsTtl) {
  for_each_case("proptest_ns_coherence", 100, [](PropertyCase& pc) {
    sim::RngStream& rng = pc.rng;
    sim::Simulator simulator;

    const int n = static_cast<int>(rng.uniform_int(2, 10));
    const int k = static_cast<int>(rng.uniform_int(3, 30));
    core::AlarmRegistry alarms(n, 0.9);
    core::SchedulerFactoryConfig fc;
    fc.capacities.resize(static_cast<std::size_t>(n));
    for (double& c : fc.capacities) c = rng.uniform(10.0, 500.0);
    fc.initial_weights.resize(static_cast<std::size_t>(k));
    for (double& w : fc.initial_weights) w = rng.uniform(0.05, 5.0);
    fc.class_threshold = rng.uniform(0.01, 0.3);
    fc.reference_ttl = rng.uniform(20.0, 400.0);
    fc.geo = std::make_shared<const geo::GeoModel>(
        geo::GeoModel::regions(k, n, 3, 0.02, 0.15));
    proptest::ConfigGen gen(rng);
    const std::string policy = gen.draw_policy_name();
    SCOPED_TRACE("policy=" + policy);
    core::SchedulerBundle b = core::make_scheduler(policy, fc, alarms, simulator, rng);

    dnscache::NsTtlBehavior behavior;
    if (rng.bernoulli(0.5)) {
      behavior.min_accepted_sec = rng.uniform(1.0, 90.0);
      if (rng.bernoulli(0.5)) behavior.override_sec = rng.uniform(0.0, 150.0);
    }
    dnscache::NameServer ns(simulator, static_cast<int>(rng.uniform_int(0, k - 1)),
                            *b.scheduler, behavior);

    // An outage calendar most of the time — coherence under failure is the
    // interesting half of the invariant.
    fault::DnsOutageCalendar calendar;
    dnscache::NsRetryPolicy retry;
    const bool outages = rng.bernoulli(0.6);
    if (outages) {
      std::vector<fault::DnsOutageWindow> windows;
      const int w = static_cast<int>(rng.uniform_int(1, 4));
      for (int i = 0; i < w; ++i) {
        windows.push_back({rng.uniform(0.0, 2000.0), rng.uniform(5.0, 400.0)});
      }
      calendar = fault::DnsOutageCalendar(std::move(windows));
      retry.initial_backoff_sec = rng.uniform(0.3, 3.0);
      retry.multiplier = rng.uniform(1.0, 4.0);
      retry.max_backoff_sec = retry.initial_backoff_sec * rng.uniform(1.0, 40.0);
      ns.set_dns_outages(&calendar, retry);
    }

    // The independent mirror of everything resolve_mapping() may do.
    struct Oracle {
      web::ServerId server = -1;
      double expires = -std::numeric_limits<double>::infinity();
      double next_attempt = 0.0;
      double backoff = 0.0;
    } o;
    std::uint64_t cold_failures = 0;

    const int queries = static_cast<int>(rng.uniform_int(100, 400));
    std::vector<double> times(static_cast<std::size_t>(queries));
    for (double& t : times) t = rng.uniform(0.001, 2500.0);
    std::sort(times.begin(), times.end());

    for (double t : times) {
      simulator.run_until(t);
      const std::uint64_t hits0 = ns.cache_hits();
      const std::uint64_t auth0 = ns.authoritative_queries();
      const std::uint64_t stale0 = ns.stale_serves();
      const std::uint64_t fail0 = ns.failed_queries();

      const bool fresh = o.server >= 0 && t < o.expires;
      const dnscache::Mapping m = ns.resolve_mapping();
      SCOPED_TRACE("t=" + std::to_string(t));

      if (fresh) {
        // Within TTL: answered locally, nothing else moves.
        ASSERT_EQ(ns.cache_hits(), hits0 + 1);
        ASSERT_EQ(ns.authoritative_queries(), auth0);
        ASSERT_EQ(ns.stale_serves(), stale0);
        ASSERT_EQ(ns.failed_queries(), fail0);
        ASSERT_EQ(m.server, o.server);
        ASSERT_EQ(m.expires_at, o.expires);
      } else if (outages && (t < o.next_attempt || calendar.unreachable(t))) {
        // Unreachable (in outage, or inside the backoff window): exactly
        // one real attempt per backoff window, stale-serve if possible,
        // and — the coherence core — the answer is stamped expired NOW.
        const bool attempt = t >= o.next_attempt;
        if (attempt) {
          o.backoff = o.backoff == 0.0 ? retry.initial_backoff_sec
                                       : std::min(o.backoff * retry.multiplier,
                                                  retry.max_backoff_sec);
          o.next_attempt = t + o.backoff;
        }
        ASSERT_EQ(ns.failed_queries(), fail0 + (attempt ? 1 : 0));
        ASSERT_EQ(ns.authoritative_queries(), auth0);  // never schedules upstream
        ASSERT_EQ(ns.cache_hits(), hits0);
        ASSERT_EQ(m.expires_at, t);  // never cacheable downstream
        if (o.server >= 0) {
          ASSERT_EQ(ns.stale_serves(), stale0 + 1);
          ASSERT_EQ(m.server, o.server);
        } else {
          ASSERT_EQ(ns.stale_serves(), stale0);
          ASSERT_EQ(m.server, -1);
          ++cold_failures;
        }
      } else {
        // Reachable and expired: one authoritative decision, backoff reset,
        // effective TTL honors the non-cooperative threshold.
        o.backoff = 0.0;
        ASSERT_EQ(ns.authoritative_queries(), auth0 + 1);
        ASSERT_EQ(ns.cache_hits(), hits0);
        ASSERT_EQ(ns.stale_serves(), stale0);
        ASSERT_EQ(ns.failed_queries(), fail0);
        ASSERT_GE(m.server, 0);
        ASSERT_LT(m.server, n);
        const double effective = m.expires_at - t;
        ASSERT_GT(effective, 0.0);
        ASSERT_GE(effective, behavior.min_accepted_sec - 1e-9);
        o.server = m.server;
        o.expires = m.expires_at;
      }

      // The law itself, independent of branch bookkeeping: an answer that
      // claims future validity is backed by a fresh cache entry or a
      // brand-new authoritative mapping, never by a stale serve.
      if (m.expires_at > t) {
        ASSERT_TRUE(ns.cache_hits() == hits0 + 1 || ns.authoritative_queries() == auth0 + 1);
      }
    }

    // Every query is exactly one of: local hit, authoritative refresh,
    // stale serve, or cold failure.
    EXPECT_EQ(ns.cache_hits() + ns.authoritative_queries() + ns.stale_serves() + cold_failures,
              static_cast<std::uint64_t>(queries));
    // And the scheduler made exactly one decision per authoritative query.
    EXPECT_EQ(b.scheduler->decisions(), ns.authoritative_queries());
  });
}

TEST(NsCoherenceProperty, EffectiveTtlRespectsTheThreshold) {
  for_each_case("proptest_ns_coherence", 100, [](PropertyCase& pc) {
    sim::RngStream& rng = pc.rng;
    for (int i = 0; i < 200; ++i) {
      dnscache::NsTtlBehavior b;
      if (rng.bernoulli(0.7)) {
        b.min_accepted_sec = rng.uniform(0.0, 120.0);
        if (rng.bernoulli(0.5)) b.override_sec = rng.uniform(0.0, 240.0);
      }
      // Schedulers only emit positive TTLs, but the cache guard must hold
      // for garbage too (a record must never be cached for <= 0 seconds).
      const double proposed = rng.bernoulli(0.1) ? rng.uniform(-5.0, 0.0)
                                                 : rng.uniform(0.001, 600.0);
      const double eff = b.effective_ttl(proposed);
      ASSERT_GT(eff, 0.0);
      ASSERT_GE(eff, b.min_accepted_sec);
      if (proposed > 0.0 && proposed >= b.min_accepted_sec) {
        ASSERT_EQ(eff, proposed);
      }
    }
  });
}

}  // namespace
}  // namespace adattl
