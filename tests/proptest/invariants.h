#pragma once

// Conservation laws of one full Site run — the single place the invariant
// logic lives. Both the randomized property suites and the fixed
// representative-policy cases (migrated from test_properties.cpp) call
// this checker, so a law added here is enforced everywhere at once.
//
// The laws are fault-aware: they hold verbatim for crash/pause/degrade
// schedules and authoritative-DNS outages, because every counter involved
// is conserved by construction (a page is served, lost, rejected, or
// still queued — never two of those).

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>

#include "experiment/sharded_site.h"
#include "experiment/site.h"

namespace adattl::proptest {

/// Asserts every cross-layer conservation law on a finished run. `site`
/// must be the Site that produced `r` (the checker reads the live object
/// graph: scheduler tallies, per-server counters, per-NS cache counters).
inline void check_run_conservation(experiment::Site& site, const experiment::RunResult& r) {
  const experiment::SimulationConfig& cfg = site.config();
  const double horizon = cfg.warmup_sec + cfg.duration_sec;

  // ---- DNS decision conservation: every authoritative query is exactly
  // one scheduler decision, and per-server assignments partition them ----
  EXPECT_EQ(r.authoritative_queries, site.scheduler().decisions());
  std::uint64_t assigned = 0;
  for (std::uint64_t a : site.scheduler().assignments()) assigned += a;
  EXPECT_EQ(assigned, site.scheduler().decisions());
  std::uint64_t ns_auth = 0;
  std::uint64_t ns_hits = 0;
  for (int d = 0; d < cfg.num_domains; ++d) {
    for (int rep = 0; rep < cfg.ns_per_domain; ++rep) {
      ns_auth += site.name_server(d, rep).authoritative_queries();
      ns_hits += site.name_server(d, rep).cache_hits();
    }
  }
  EXPECT_EQ(ns_auth, r.authoritative_queries);
  EXPECT_EQ(ns_hits, r.ns_cache_hits);

  // ---- Page/hit conservation across the cluster ----
  std::uint64_t served_pages = 0;
  std::uint64_t served_hits = 0;
  std::uint64_t queued_pages = 0;
  std::uint64_t lifetime_hits = 0;
  std::uint64_t lost_pages = 0;
  std::uint64_t lost_hits = 0;
  std::uint64_t rejected_pages = 0;
  for (int s = 0; s < site.cluster().size(); ++s) {
    const web::WebServer& sv = site.cluster().server(s);
    served_pages += sv.pages_served();
    served_hits += sv.hits_served();
    queued_pages += sv.queue_length();
    lost_pages += sv.lost_pages();
    lost_hits += sv.lost_hits();
    rejected_pages += sv.rejected_pages();
    const auto& per_domain = sv.lifetime_domain_hits();
    lifetime_hits = std::accumulate(per_domain.begin(), per_domain.end(), lifetime_hits);
  }
  EXPECT_EQ(r.lost_pages, lost_pages);
  EXPECT_EQ(r.lost_hits, lost_hits);
  EXPECT_EQ(r.total_hits, served_hits);

  // Crash accounting: everything a server accepted was served, lost to a
  // crash, or is still queued at the horizon. Hits are tallied at
  // submission, so the lifetime counters decompose the same way; queued
  // pages carry >= 1 hit each, and exactly 0 hits remain unaccounted when
  // the queues drained.
  EXPECT_GE(lifetime_hits, served_hits + lost_hits + queued_pages);
  if (queued_pages == 0) {
    EXPECT_EQ(lifetime_hits, served_hits + lost_hits);
  }

  // Attempt conservation: each requested page is one attempt, each failure
  // (lost or rejected) spawns at most one retry attempt. Every attempt is
  // either dispatched to some server (accepted or rejected) or still in
  // limbo — in network flight or awaiting its retry — and each client has
  // at most one page in progress, bounding the limbo by the population.
  const std::uint64_t accepted = served_pages + lost_pages + queued_pages;
  const std::uint64_t attempts = r.total_pages + r.failed_requests;
  EXPECT_LE(accepted + rejected_pages, attempts);
  EXPECT_LE(attempts - accepted - rejected_pages,
            static_cast<std::uint64_t>(cfg.total_clients));

  // ---- Failure accounting identities ----
  EXPECT_EQ(r.failed_requests, lost_pages + rejected_pages);
  const double attempts_d = static_cast<double>(attempts);
  EXPECT_NEAR(r.unavailability_fraction,
              attempts > 0 ? static_cast<double>(r.failed_requests) / attempts_d : 0.0, 1e-12);

  // ---- Physical bounds ----
  for (double u : r.mean_server_util) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-9);
  }
  EXPECT_GE(r.prob_below_090, 0.0);
  EXPECT_LE(r.prob_below_098, 1.0);
  EXPECT_LE(r.prob_below_090, r.prob_below_098 + 1e-12);
  EXPECT_GE(r.dns_outage_sec, 0.0);
  EXPECT_LE(r.dns_outage_sec, horizon + 1e-9);
  if (r.authoritative_queries > 0) {
    EXPECT_GT(r.mean_ttl, 0.0);
  }
  EXPECT_GE(r.mean_page_response_sec, 0.0);
}

/// Sharded-mode counterpart of check_run_conservation: every law is summed
/// across the shards (each shard is a closed sub-site for its domains, so
/// the per-shard laws compose additively), plus the merged-utilization
/// bound the barrier clamps.
inline void check_sharded_run_conservation(experiment::ShardedSite& site,
                                           const experiment::RunResult& r) {
  const experiment::SimulationConfig& cfg = site.config();
  const double horizon = cfg.warmup_sec + cfg.duration_sec;

  // ---- DNS decision conservation, summed over shard scheduler replicas ----
  std::uint64_t decisions = 0;
  std::uint64_t assigned = 0;
  std::uint64_t ns_auth = 0;
  std::uint64_t ns_hits = 0;
  std::uint64_t served_pages = 0;
  std::uint64_t served_hits = 0;
  std::uint64_t queued_pages = 0;
  std::uint64_t lifetime_hits = 0;
  std::uint64_t lost_pages = 0;
  std::uint64_t lost_hits = 0;
  std::uint64_t rejected_pages = 0;
  int owned_domains = 0;
  for (int sh = 0; sh < site.shard_count(); ++sh) {
    experiment::ShardedSite::Shard& shard = site.shard(sh);
    owned_domains += static_cast<int>(shard.domains.size());
    decisions += shard.bundle.scheduler->decisions();
    for (std::uint64_t a : shard.bundle.scheduler->assignments()) assigned += a;
    for (const auto& ns : shard.name_servers) {
      ns_auth += ns->authoritative_queries();
      ns_hits += ns->cache_hits();
    }
    for (int s = 0; s < shard.cluster->size(); ++s) {
      const web::WebServer& sv = shard.cluster->server(s);
      served_pages += sv.pages_served();
      served_hits += sv.hits_served();
      queued_pages += sv.queue_length();
      lost_pages += sv.lost_pages();
      lost_hits += sv.lost_hits();
      rejected_pages += sv.rejected_pages();
      const auto& per_domain = sv.lifetime_domain_hits();
      lifetime_hits = std::accumulate(per_domain.begin(), per_domain.end(), lifetime_hits);
    }
  }
  EXPECT_EQ(owned_domains, cfg.num_domains);  // the partition covers every domain once
  EXPECT_EQ(r.authoritative_queries, decisions);
  EXPECT_EQ(assigned, decisions);
  EXPECT_EQ(ns_auth, r.authoritative_queries);
  EXPECT_EQ(ns_hits, r.ns_cache_hits);

  // ---- Page/hit conservation across all cluster replicas ----
  EXPECT_EQ(r.lost_pages, lost_pages);
  EXPECT_EQ(r.lost_hits, lost_hits);
  EXPECT_EQ(r.total_hits, served_hits);
  EXPECT_GE(lifetime_hits, served_hits + lost_hits + queued_pages);
  if (queued_pages == 0) {
    EXPECT_EQ(lifetime_hits, served_hits + lost_hits);
  }

  // ---- Attempt conservation (limbo bounded by the global population) ----
  const std::uint64_t accepted = served_pages + lost_pages + queued_pages;
  const std::uint64_t attempts = r.total_pages + r.failed_requests;
  EXPECT_LE(accepted + rejected_pages, attempts);
  EXPECT_LE(attempts - accepted - rejected_pages,
            static_cast<std::uint64_t>(cfg.total_clients));
  EXPECT_EQ(r.failed_requests, lost_pages + rejected_pages);

  // ---- Physical bounds (the barrier clamps merged utilization at 1) ----
  for (double u : r.mean_server_util) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-9);
  }
  EXPECT_GE(r.prob_below_090, 0.0);
  EXPECT_LE(r.prob_below_098, 1.0);
  EXPECT_LE(r.prob_below_090, r.prob_below_098 + 1e-12);
  EXPECT_GE(r.dns_outage_sec, 0.0);
  EXPECT_LE(r.dns_outage_sec, horizon + 1e-9);
  if (r.authoritative_queries > 0) {
    EXPECT_GT(r.mean_ttl, 0.0);
  }
  EXPECT_GE(r.mean_page_response_sec, 0.0);
}

}  // namespace adattl::proptest
