#pragma once

// Shared contract machinery for the dnswire fuzzer and the committed
// regression corpus: a ready-made DnsFrontend harness, the full
// handle()-contract checker both suites assert, and the corpus file
// format (hex bytes + an optional "# expect:" outcome directive).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/policy_factory.h"
#include "dnswire/frontend.h"
#include "dnswire/message.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace adattl::proptest {

/// A scheduler + DnsFrontend pair with a known site name and address set.
class FrontendHarness {
 public:
  explicit FrontendHarness(std::uint64_t seed, std::string site_name = "www.site.org",
                           int servers = 4, int domains = 8)
      : rng_(seed), site_name_(std::move(site_name)), alarms_(servers, 0.9) {
    core::SchedulerFactoryConfig fc;
    fc.capacities.assign(static_cast<std::size_t>(servers), 100.0);
    fc.initial_weights.assign(static_cast<std::size_t>(domains), 1.0);
    fc.class_threshold = 1.0 / domains;
    bundle_ = core::make_scheduler("RR2-TTL/K", fc, alarms_, simulator_, rng_);
    for (int s = 0; s < servers; ++s) {
      addresses_.push_back(0x0a000001u + static_cast<std::uint32_t>(s));
    }
    frontend_ = std::make_unique<dnswire::DnsFrontend>(*bundle_.scheduler, site_name_,
                                                       addresses_);
  }

  dnswire::DnsFrontend& frontend() { return *frontend_; }
  core::DnsScheduler& scheduler() { return *bundle_.scheduler; }
  sim::Simulator& simulator() { return simulator_; }
  const std::string& site_name() const { return site_name_; }
  const std::vector<std::uint32_t>& addresses() const { return addresses_; }
  int num_domains() const { return static_cast<int>(bundle_.domains->num_domains()); }

 private:
  sim::Simulator simulator_;
  sim::RngStream rng_;
  std::string site_name_;
  core::AlarmRegistry alarms_;
  core::SchedulerBundle bundle_;
  std::vector<std::uint32_t> addresses_;
  std::unique_ptr<dnswire::DnsFrontend> frontend_;
};

/// Feeds one datagram through handle() and asserts the whole contract:
///  * exactly one of answered/refused/outage_failures advances per call;
///  * an empty reply (drop) happens only when the id is unrecoverable
///    (input shorter than 2 bytes);
///  * every non-empty reply decodes as a well-formed response, has QR set,
///    and echoes the query id from the raw input bytes;
///  * rcode 0 replies carry a known server address and TTL >= 1 and
///    consume exactly one scheduling decision; every other rcode consumes
///    none.
/// The reply is copied to `reply_out` when the caller wants to assert an
/// expected outcome on top.
inline void check_frontend_contract(FrontendHarness& h, const std::vector<std::uint8_t>& input,
                                    web::DomainId source_domain = 0,
                                    std::vector<std::uint8_t>* reply_out = nullptr) {
  dnswire::DnsFrontend& f = h.frontend();
  const std::uint64_t answered0 = f.answered();
  const std::uint64_t refused0 = f.refused();
  const std::uint64_t outage0 = f.outage_failures();
  const std::uint64_t decisions0 = h.scheduler().decisions();

  const std::vector<std::uint8_t> reply = f.handle(input, source_domain);
  if (reply_out != nullptr) *reply_out = reply;

  const std::uint64_t moved = (f.answered() - answered0) + (f.refused() - refused0) +
                              (f.outage_failures() - outage0);
  ASSERT_EQ(moved, 1u) << "every datagram is counted exactly once";

  if (reply.empty()) {
    ASSERT_LT(input.size(), 2u) << "a readable id must never be silently dropped";
    ASSERT_EQ(f.refused(), refused0 + 1);
    ASSERT_EQ(h.scheduler().decisions(), decisions0);
    return;
  }

  dnswire::Header rh;
  std::uint32_t ipv4 = 0;
  dnswire::Ipv6 ipv6{};
  std::uint32_t ttl = 0;
  // Positive answers come back as either record family; error replies
  // (ancount 0) decode through either path.
  const bool is_a = dnswire::decode_a_response(reply, &rh, &ipv4, &ttl);
  if (!is_a) {
    ASSERT_TRUE(dnswire::decode_aaaa_response(reply, &rh, &ipv6, &ttl))
        << "every reply must itself be well-formed";
  }
  ASSERT_TRUE(rh.qr);
  ASSERT_GE(input.size(), 2u);
  const auto qid = static_cast<std::uint16_t>((input[0] << 8) | input[1]);
  ASSERT_EQ(rh.id, qid) << "replies echo the query id from the raw bytes";

  if (rh.rcode == dnswire::kRcodeNoError) {
    ASSERT_EQ(f.answered(), answered0 + 1);
    ASSERT_EQ(h.scheduler().decisions(), decisions0 + 1)
        << "positive answers consume exactly one decision";
    ASSERT_GE(ttl, 1u);
    const auto& addrs = h.addresses();
    if (is_a) {
      ASSERT_NE(std::find(addrs.begin(), addrs.end(), ipv4), addrs.end())
          << "answers only ever point at real servers";
    } else {
      // AAAA without native v6 configured: the v4-mapped form of a real
      // server address.
      const bool known = std::any_of(addrs.begin(), addrs.end(), [&](std::uint32_t a) {
        return dnswire::v4_mapped_ipv6(a) == ipv6;
      });
      ASSERT_TRUE(known) << "AAAA answers only ever point at real servers";
    }
  } else {
    ASSERT_EQ(f.answered(), answered0);
    ASSERT_EQ(h.scheduler().decisions(), decisions0)
        << "errors and outages never consume decisions";
    ASSERT_LE(rh.rcode, dnswire::kRcodeRefused);
  }
}

/// One committed regression input: the raw datagram plus the outcome the
/// fixed defect is pinned to ("drop", "noerror", "formerr", "servfail",
/// "nxdomain", "notimp", "refused"). `expect_ecs` additionally pins what
/// the EDNS0 Client-Subnet scanner must conclude ("absent", "present",
/// "malformed") for inputs that target the ECS parser.
struct CorpusEntry {
  std::string path;
  std::vector<std::uint8_t> bytes;
  std::optional<std::string> expect;
  std::optional<std::string> expect_ecs;
};

/// Parses one corpus file: whitespace-separated hex byte tokens, '#'
/// comments to end of line, and an optional "# expect: <outcome>"
/// directive. Gtest-fails (and returns nullopt) on malformed files so a
/// bad commit cannot silently shrink coverage.
inline std::optional<CorpusEntry> load_corpus_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    ADD_FAILURE() << "cannot open corpus file " << path;
    return std::nullopt;
  }
  CorpusEntry entry;
  entry.path = path;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      const std::string comment = line.substr(hash + 1);
      const std::size_t tag = comment.find("expect:");
      if (tag != std::string::npos) {
        std::istringstream expect_in(comment.substr(tag + 7));
        std::string outcome;
        expect_in >> outcome;
        if (!outcome.empty()) entry.expect = outcome;
      }
      const std::size_t ecs_tag = comment.find("ecs:");
      if (ecs_tag != std::string::npos) {
        std::istringstream ecs_in(comment.substr(ecs_tag + 4));
        std::string verdict;
        ecs_in >> verdict;
        if (!verdict.empty()) entry.expect_ecs = verdict;
      }
      line = line.substr(0, hash);
    }
    std::istringstream tokens(line);
    std::string tok;
    while (tokens >> tok) {
      if (tok.size() % 2 != 0) {
        ADD_FAILURE() << path << ": odd-length hex token '" << tok << "'";
        return std::nullopt;
      }
      for (std::size_t i = 0; i < tok.size(); i += 2) {
        const std::string byte = tok.substr(i, 2);
        char* end = nullptr;
        const unsigned long v = std::strtoul(byte.c_str(), &end, 16);
        if (end != byte.c_str() + 2) {
          ADD_FAILURE() << path << ": bad hex byte '" << byte << "'";
          return std::nullopt;
        }
        entry.bytes.push_back(static_cast<std::uint8_t>(v));
      }
    }
  }
  return entry;
}

/// All corpus files (sorted for stable test order) from the directory
/// compiled in via ADATTL_CORPUS_DIR.
inline std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  for (const auto& e : std::filesystem::directory_iterator(ADATTL_CORPUS_DIR)) {
    if (e.is_regular_file() && e.path().extension() == ".hex") {
      files.push_back(e.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// Maps a reply to its corpus outcome word.
inline std::string reply_outcome(const std::vector<std::uint8_t>& reply) {
  if (reply.empty()) return "drop";
  dnswire::Header rh;
  std::uint32_t ipv4 = 0;
  dnswire::Ipv6 ipv6{};
  std::uint32_t ttl = 0;
  if (!dnswire::decode_a_response(reply, &rh, &ipv4, &ttl) &&
      !dnswire::decode_aaaa_response(reply, &rh, &ipv6, &ttl)) {
    return "malformed";
  }
  switch (rh.rcode) {
    case dnswire::kRcodeNoError: return "noerror";
    case dnswire::kRcodeFormErr: return "formerr";
    case dnswire::kRcodeServFail: return "servfail";
    case dnswire::kRcodeNxDomain: return "nxdomain";
    case dnswire::kRcodeNotImp: return "notimp";
    case dnswire::kRcodeRefused: return "refused";
    default: return "rcode" + std::to_string(rh.rcode);
  }
}

}  // namespace adattl::proptest
