// Crash accounting (ROADMAP invariant): lost + completed + queued ==
// submitted, with fault schedules drawn randomly. Two layers:
//
//  * a direct WebServer op-sequence test — random interleavings of
//    submissions, crash/pause toggles and capacity degradations, checking
//    the server's counters against an independent tally after every
//    transition and at the end;
//  * full Site runs under random crash/degrade/pause/outage plans, routed
//    through the shared conservation checker (invariants.h).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "experiment/site.h"
#include "invariants.h"
#include "proptest.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "web/web_server.h"

namespace adattl {
namespace {

using proptest::ConfigGen;
using proptest::for_each_case;
using proptest::Profile;
using proptest::PropertyCase;

TEST(CrashAccountingProperty, DirectServerOpSequences) {
  for_each_case("proptest_crash_accounting", 100, [](PropertyCase& pc) {
    sim::RngStream& rng = pc.rng;
    sim::Simulator simulator;
    const int domains = static_cast<int>(rng.uniform_int(1, 10));
    web::WebServer server(simulator, 0, rng.uniform(5.0, 100.0), domains,
                          sim::RngStream(rng.next_u64()));

    // The independent tally the server's counters must agree with.
    struct Tally {
      std::uint64_t submitted = 0;
      std::uint64_t accepted = 0;
      std::uint64_t rejected = 0;
      std::uint64_t accepted_hits = 0;
      std::uint64_t done_cb = 0;
      std::uint64_t fail_cb = 0;
    };
    Tally tally;

    const int ops = static_cast<int>(rng.uniform_int(150, 500));
    std::vector<double> times(static_cast<std::size_t>(ops));
    for (double& t : times) t = rng.uniform(0.0, 400.0);
    std::sort(times.begin(), times.end());

    for (double t : times) {
      const double kind = rng.uniform(0.0, 1.0);
      if (kind < 0.7) {
        const int domain = static_cast<int>(rng.uniform_int(0, domains - 1));
        const int hits = static_cast<int>(rng.uniform_int(1, 20));
        simulator.at(t, [&tally, &server, domain, hits] {
          const bool was_crashed = server.crashed();
          const std::uint64_t rejected0 = server.rejected_pages();
          server.submit_page(web::PageRequest(domain, hits,
                                              [&tally] { ++tally.done_cb; },
                                              [&tally] { ++tally.fail_cb; }));
          ++tally.submitted;
          if (was_crashed) {
            // Rejected at the door: counted, failed, and NOT recorded as
            // demand — a crashed box must not skew load estimation.
            ASSERT_EQ(server.rejected_pages(), rejected0 + 1);
            ++tally.rejected;
          } else {
            ASSERT_EQ(server.rejected_pages(), rejected0);
            ++tally.accepted;
            tally.accepted_hits += static_cast<std::uint64_t>(hits);
          }
        });
      } else if (kind < 0.8) {
        simulator.at(t, [&server] {
          if (!server.crashed()) {
            // Crashing drops exactly the work in the house: the queue plus
            // the in-flight page, nothing more, nothing less.
            const std::uint64_t in_house = server.queue_length();
            const std::uint64_t lost0 = server.lost_pages();
            server.set_crashed(true);
            ASSERT_EQ(server.lost_pages(), lost0 + in_house);
            ASSERT_EQ(server.queue_length(), 0u);
          } else {
            server.set_crashed(false);
          }
        });
      } else if (kind < 0.9) {
        simulator.at(t, [&server] { server.set_paused(!server.paused()); });
      } else {
        const double factor = rng.uniform(0.2, 2.0);
        simulator.at(t, [&server, factor] { server.set_capacity_factor(factor); });
      }
    }
    simulator.run();

    // The accounting laws. Note the queue can legitimately be non-empty at
    // the end (server left paused), so "queued" is a first-class term.
    EXPECT_EQ(tally.submitted, tally.accepted + tally.rejected);
    EXPECT_EQ(server.rejected_pages(), tally.rejected);
    EXPECT_EQ(server.pages_served(), tally.done_cb);
    EXPECT_EQ(server.pages_served() + server.lost_pages() + server.queue_length(),
              tally.accepted);
    EXPECT_EQ(tally.fail_cb, server.lost_pages() + server.rejected_pages());

    // Hits are tallied at submission for accepted pages only; served, lost
    // and still-queued hits must decompose them exactly.
    const auto& per_domain = server.lifetime_domain_hits();
    const std::uint64_t lifetime_hits =
        std::accumulate(per_domain.begin(), per_domain.end(), std::uint64_t{0});
    EXPECT_EQ(lifetime_hits, tally.accepted_hits);
    const std::uint64_t accounted = server.hits_served() + server.lost_hits();
    EXPECT_LE(accounted, tally.accepted_hits);
    const std::uint64_t queued_hits = tally.accepted_hits - accounted;
    EXPECT_GE(queued_hits, server.queue_length());  // every page carries >= 1 hit
    if (server.queue_length() == 0) {
      EXPECT_EQ(queued_hits, 0u);
    }
  });
}

TEST(CrashAccountingProperty, FaultedSitesConserveEverything) {
  for_each_case("proptest_crash_accounting", 100, [](PropertyCase& pc) {
    ConfigGen gen(pc.rng);
    const proptest::GeneratedConfig& gc = pc.attach(gen.draw(Profile::kFaulted));
    experiment::Site site(gc.config());
    const experiment::RunResult r = site.run();
    ASSERT_GT(r.total_pages, 0u);  // fault plans must not silence the site
    proptest::check_run_conservation(site, r);
    // A faulted run must actually account its faults: if any crash window
    // fired inside the horizon, failures show up iff work was in the house
    // or arrived while down — which we can't know a priori — but the
    // unavailability fraction must stay a true fraction.
    EXPECT_GE(r.unavailability_fraction, 0.0);
    EXPECT_LE(r.unavailability_fraction, 1.0);
  });
}

}  // namespace
}  // namespace adattl
