// Conservation laws of a full simulation on randomized configurations
// (ROADMAP invariant: authoritative decisions == NS cache misses, pages
// and hits conserved end to end), plus the fixed representative-policy
// cases migrated from tests/test_properties.cpp. The invariant logic
// itself lives in invariants.h so it is written exactly once.
#include <gtest/gtest.h>

#include <string>

#include "experiment/sharded_site.h"
#include "experiment/site.h"
#include "invariants.h"
#include "proptest.h"
#include "web/cluster.h"

namespace adattl {
namespace {

using proptest::ConfigGen;
using proptest::for_each_case;
using proptest::Profile;
using proptest::PropertyCase;

TEST(ConservationProperty, RandomizedConfigs) {
  for_each_case("proptest_conservation", 100, [](PropertyCase& pc) {
    ConfigGen gen(pc.rng);
    const proptest::GeneratedConfig& gc = pc.attach(gen.draw(Profile::kShortRun));
    experiment::Site site(gc.config());
    const experiment::RunResult r = site.run();
    // Liveness: a generated config must actually exercise the pipeline —
    // a run with no traffic would satisfy every conservation law vacuously.
    ASSERT_GT(r.total_pages, 0u);
    ASSERT_GT(r.authoritative_queries, 0u);
    proptest::check_run_conservation(site, r);
  });
}

// The same laws across the domain-sharded path (DESIGN.md §16): the
// generated config reruns with the domains partitioned over a random
// shard count, and the checker additionally proves the partition covers
// every domain exactly once and per-shard sums equal the aggregate.
TEST(ConservationProperty, RandomizedShardedConfigs) {
  for_each_case("proptest_conservation_sharded", 40, [](PropertyCase& pc) {
    ConfigGen gen(pc.rng);
    const proptest::GeneratedConfig& gc = pc.attach(gen.draw(Profile::kShortRun));
    experiment::SimulationConfig cfg = gc.config();
    // Sharded runs reject redirection and the obs backends; strip them
    // rather than discarding the case so the draw distribution is kept.
    cfg.redirect_enabled = false;
    cfg.metrics_enabled = false;
    cfg.trace_enabled = false;
    cfg.shard_domains = true;
    cfg.shard_count = static_cast<int>(pc.rng.uniform_int(1, 6));
    experiment::ShardedSite site(cfg);
    const experiment::RunResult r = site.run();
    ASSERT_GT(r.total_pages, 0u);
    ASSERT_GT(r.authoritative_queries, 0u);
    proptest::check_sharded_run_conservation(site, r);
  });
}

// Migrated from test_properties.cpp: the representative policy subset at
// the paper's nominal scale (heterogeneity 50, 500 clients, fixed seed),
// now running the shared checker — strictly stronger than the bespoke
// bounds the old suite asserted.
class RepresentativePolicyConservation : public ::testing::TestWithParam<std::string> {};

TEST_P(RepresentativePolicyConservation, CountsAreConsistent) {
  experiment::SimulationConfig cfg;
  cfg.cluster = web::table2_cluster(50);
  cfg.policy = GetParam();
  cfg.warmup_sec = 100.0;
  cfg.duration_sec = 900.0;
  cfg.seed = 31;
  experiment::Site site(cfg);
  const experiment::RunResult r = site.run();
  proptest::check_run_conservation(site, r);
}

INSTANTIATE_TEST_SUITE_P(RepresentativePolicies, RepresentativePolicyConservation,
                         ::testing::Values("RR", "RR2", "DAL", "PRR-TTL/1", "PRR2-TTL/K",
                                           "DRR-TTL/S_2", "DRR2-TTL/S_K"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-' || c == '/') c = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace adattl
