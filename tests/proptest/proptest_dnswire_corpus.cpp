// Replays the committed regression corpus (tests/proptest/corpus/*.hex)
// through the full DnsFrontend contract as ordinary ctest cases. Every
// file pins one defect the fuzzer (or review) surfaced: the bytes that
// triggered it plus the outcome the fix guarantees ("# expect: ..."), so
// a regression fails with the exact datagram in hand.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dnswire/ecs.h"
#include "dnswire_checks.h"

namespace adattl {
namespace {

using proptest::check_frontend_contract;
using proptest::corpus_files;
using proptest::CorpusEntry;
using proptest::FrontendHarness;
using proptest::load_corpus_file;
using proptest::reply_outcome;

TEST(DnswireCorpus, EveryCommittedInputKeepsTheContract) {
  const std::vector<std::string> files = corpus_files();
  ASSERT_FALSE(files.empty()) << "corpus directory missing or empty: " ADATTL_CORPUS_DIR;
  for (const std::string& path : files) {
    SCOPED_TRACE(path);
    const auto entry = load_corpus_file(path);
    ASSERT_TRUE(entry.has_value());
    // A fresh harness per input: corpus cases must not mask each other
    // through scheduler or counter state.
    FrontendHarness h(0xC0FFEE);
    std::vector<std::uint8_t> reply;
    check_frontend_contract(h, entry->bytes, 0, &reply);
    if (::testing::Test::HasFatalFailure()) return;
    if (entry->expect.has_value()) {
      EXPECT_EQ(reply_outcome(reply), *entry->expect)
          << path << " pinned outcome changed";
    }
    // Every corpus input also goes through the ECS scanner (memory safety
    // on hostile bytes); entries with "# ecs:" pin the verdict too.
    dnswire::ClientSubnet subnet{};
    const dnswire::EcsResult ecs = dnswire::extract_client_subnet(entry->bytes, &subnet);
    if (entry->expect_ecs.has_value()) {
      const std::string got = ecs == dnswire::EcsResult::kPresent   ? "present"
                              : ecs == dnswire::EcsResult::kAbsent ? "absent"
                                                                   : "malformed";
      EXPECT_EQ(got, *entry->expect_ecs) << path << " pinned ECS verdict changed";
    }
  }
}

}  // namespace
}  // namespace adattl
