// TTL fairness calibration on randomized inputs (paper §4.1): every
// adaptive TTL flavour — any class count, server term on or off — must
// produce the SAME aggregate address-request rate K/reference_ttl, for
// any domain population, weight profile, capacity vector and selection
// shares. This is the invariant the whole policy comparison rests on: if
// calibration drifted, policies would differ by DNS load instead of by
// scheduling quality.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "core/policy_factory.h"
#include "core/ttl_policy.h"
#include "geo/geo_model.h"
#include "proptest.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "web/cluster.h"

namespace adattl {
namespace {

using proptest::for_each_case;
using proptest::PropertyCase;

struct RandomInputs {
  std::vector<double> weights;
  std::vector<double> capacities;
  std::vector<double> shares;
  double class_threshold = 0.05;
  double reference_ttl = 240.0;
};

RandomInputs draw_inputs(sim::RngStream& rng) {
  RandomInputs in;
  const int k = static_cast<int>(rng.uniform_int(3, 80));
  in.weights.resize(static_cast<std::size_t>(k));
  if (rng.bernoulli(0.5)) {
    in.weights = sim::ZipfDistribution(k, rng.uniform(0.4, 1.5)).probabilities();
  } else {
    for (double& w : in.weights) w = rng.uniform(0.05, 10.0);
  }
  const int n = static_cast<int>(rng.uniform_int(2, 12));
  in.capacities.resize(static_cast<std::size_t>(n));
  for (double& c : in.capacities) c = rng.uniform(10.0, 500.0);
  in.shares.resize(static_cast<std::size_t>(n));
  double total = 0.0;
  for (double& s : in.shares) {
    s = rng.uniform(0.05, 1.0);
    total += s;
  }
  for (double& s : in.shares) s /= total;
  in.class_threshold = rng.uniform(0.01, 0.3);
  in.reference_ttl = rng.uniform(20.0, 900.0);
  return in;
}

const int kClassCounts[] = {1, 2, 3, core::kPerDomainClasses};

TEST(TtlFairnessProperty, EveryAdaptiveFlavorCalibratesToTheReferenceRate) {
  for_each_case("proptest_ttl_fairness", 100, [](PropertyCase& pc) {
    const RandomInputs in = draw_inputs(pc.rng);
    const int k = static_cast<int>(in.weights.size());
    const int n = static_cast<int>(in.capacities.size());
    const core::DomainModel domains(in.weights, in.class_threshold);
    const double want_rate = k / in.reference_ttl;

    for (int classes : kClassCounts) {
      for (bool server_term : {false, true}) {
        SCOPED_TRACE("classes=" + std::to_string(classes) +
                     " server_term=" + (server_term ? std::string("on") : std::string("off")));
        const core::AdaptiveTtlPolicy p(domains, in.capacities, classes, server_term,
                                        in.shares, in.reference_ttl, true);
        EXPECT_NEAR(p.expected_address_rate(), want_rate, want_rate * 1e-7);

        // Independent re-derivation from the TTLs actually emitted: each
        // domain re-resolves once per share-weighted expected TTL, so the
        // aggregate rate is Σ_d 1 / E_s[ttl(d, s)].
        double rate = 0.0;
        double min_emitted = std::numeric_limits<double>::infinity();
        for (int d = 0; d < k; ++d) {
          double expected_ttl = 0.0;
          for (int s = 0; s < n; ++s) {
            const double t = p.ttl(d, s);
            ASSERT_GT(t, 0.0);
            ASSERT_TRUE(std::isfinite(t));
            min_emitted = std::min(min_emitted, t);
            expected_ttl += in.shares[static_cast<std::size_t>(s)] * t;
          }
          rate += 1.0 / expected_ttl;
        }
        EXPECT_NEAR(rate, want_rate, want_rate * 1e-7);
        // min_ttl() is the exact floor of the emitted TTL family.
        EXPECT_NEAR(p.min_ttl(), min_emitted, min_emitted * 1e-9);

        // Calibration off (ablation): base degenerates to the reference.
        const core::AdaptiveTtlPolicy un(domains, in.capacities, classes, server_term,
                                         in.shares, in.reference_ttl, false);
        EXPECT_DOUBLE_EQ(un.base(), in.reference_ttl);
      }
    }
  });
}

// Regression pin (found by the randomized suite above, first failing seed
// 1200919389795501583): a hot/normal split whose γ no domain clears left
// the "hot" class empty, so class_mean_weights reported a zero hottest
// mean and the address rate went NaN. The degenerate split must behave
// exactly like a single class.
TEST(TtlFairnessProperty, EmptyHotClassDegeneratesToOneClass) {
  const std::vector<double> weights(40, 1.0);  // every share is 1/40, far below γ
  const core::DomainModel domains(weights, 0.3);
  const std::vector<double> caps = {100.0, 50.0};
  const std::vector<double> shares = {0.6, 0.4};
  for (bool server_term : {false, true}) {
    const core::AdaptiveTtlPolicy p(domains, caps, 2, server_term, shares, 240.0, true);
    EXPECT_NEAR(p.expected_address_rate(), 40.0 / 240.0, 1e-9);
    for (int d = 0; d < 40; ++d) {
      for (int s = 0; s < 2; ++s) {
        EXPECT_TRUE(std::isfinite(p.ttl(d, s)));
        EXPECT_GT(p.ttl(d, s), 0.0);
      }
    }
  }
}

TEST(TtlFairnessProperty, RecalibrationTracksWeightUpdates) {
  for_each_case("proptest_ttl_fairness", 100, [](PropertyCase& pc) {
    sim::RngStream& rng = pc.rng;
    const RandomInputs in = draw_inputs(rng);
    const int k = static_cast<int>(in.weights.size());
    core::DomainModel domains(in.weights, in.class_threshold);
    const int classes = kClassCounts[rng.uniform_int(0, 3)];
    const bool server_term = rng.bernoulli(0.5);
    core::AdaptiveTtlPolicy p(domains, in.capacities, classes, server_term, in.shares,
                              in.reference_ttl, true);
    const double want_rate = k / in.reference_ttl;

    // An estimator feeding fresh weights must leave the rate pinned: the
    // whole point of recalibration is that adaptivity never buys a policy
    // more (or less) DNS traffic than the constant-TTL baseline.
    for (int round = 0; round < 5; ++round) {
      std::vector<double> next(static_cast<std::size_t>(k));
      for (double& w : next) w = rng.uniform(0.01, 5.0);
      domains.update_weights(next);
      p.recalibrate();
      EXPECT_NEAR(p.expected_address_rate(), want_rate, want_rate * 1e-7);
    }
  });
}

// The same law end to end through the factory: every adaptive name in the
// full grammar, handed random weights/capacities, reports the identical
// address rate — policies differ only in WHERE mappings go, never in how
// often the DNS is asked.
TEST(TtlFairnessProperty, FactoryBuiltPoliciesShareOneRate) {
  for_each_case("proptest_ttl_fairness", 100, [](PropertyCase& pc) {
    sim::RngStream& rng = pc.rng;
    const RandomInputs in = draw_inputs(rng);
    const int k = static_cast<int>(in.weights.size());
    const int n = static_cast<int>(in.capacities.size());

    sim::Simulator simulator;
    core::AlarmRegistry alarms(n, 0.9);
    core::SchedulerFactoryConfig fc;
    fc.capacities = in.capacities;
    fc.initial_weights = in.weights;
    fc.class_threshold = in.class_threshold;
    fc.reference_ttl = in.reference_ttl;
    fc.geo = std::make_shared<const geo::GeoModel>(
        geo::GeoModel::regions(k, n, 3, 0.02, 0.15));

    proptest::ConfigGen gen(rng);
    const double want_rate = k / in.reference_ttl;
    for (int i = 0; i < 6; ++i) {
      const std::string name = gen.draw_policy_name();
      SCOPED_TRACE("policy=" + name);
      core::SchedulerBundle b = core::make_scheduler(name, fc, alarms, simulator, rng);
      const auto* adaptive =
          dynamic_cast<const core::AdaptiveTtlPolicy*>(&b.scheduler->ttl_policy());
      if (adaptive == nullptr) continue;  // constant-TTL flavour: trivially the reference
      EXPECT_NEAR(adaptive->expected_address_rate(), want_rate, want_rate * 1e-7);
    }
  });
}

}  // namespace
}  // namespace adattl
