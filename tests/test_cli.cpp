#include "experiment/cli.h"

#include <gtest/gtest.h>

namespace adattl::experiment {
namespace {

TEST(Cli, EmptyArgsGiveValidatedDefaults) {
  const CliOptions opt = parse_cli({});
  EXPECT_EQ(opt.config.policy, "RR");
  EXPECT_EQ(opt.replications, 1);
  EXPECT_FALSE(opt.csv);
  EXPECT_NO_THROW(opt.config.validate());
}

TEST(Cli, ParsesPolicyAndSite) {
  const CliOptions opt = parse_cli({"--policy=DRR2-TTL/S_K", "--heterogeneity=50"});
  EXPECT_EQ(opt.config.policy, "DRR2-TTL/S_K");
  EXPECT_NEAR(opt.config.cluster.heterogeneity_percent(), 50.0, 1e-9);
}

TEST(Cli, ParsesCustomRelativeCapacities) {
  const CliOptions opt =
      parse_cli({"--relative=1,0.9,0.3", "--total-capacity=300", "--clients=200"});
  EXPECT_EQ(opt.config.cluster.relative, (std::vector<double>{1.0, 0.9, 0.3}));
  EXPECT_DOUBLE_EQ(opt.config.cluster.total_capacity_hits_per_sec, 300.0);
  EXPECT_EQ(opt.config.total_clients, 200);
}

TEST(Cli, ParsesWorkloadFlags) {
  const CliOptions opt = parse_cli(
      {"--domains=40", "--think=12.5", "--zipf-theta=0.8", "--uniform", "--error=25"});
  EXPECT_EQ(opt.config.num_domains, 40);
  EXPECT_DOUBLE_EQ(opt.config.mean_think_sec, 12.5);
  EXPECT_DOUBLE_EQ(opt.config.zipf_theta, 0.8);
  EXPECT_TRUE(opt.config.uniform_clients);
  EXPECT_DOUBLE_EQ(opt.config.rate_perturbation_percent, 25.0);
}

TEST(Cli, ParsesAlgorithmAndEstimationFlags) {
  const CliOptions opt = parse_cli({"--ttl=120", "--no-calibration", "--alarm-threshold=0.8",
                                    "--no-alarm", "--measured", "--estimator=window",
                                    "--cold-start", "--client-cache", "--min-ttl=90"});
  EXPECT_DOUBLE_EQ(opt.config.reference_ttl_sec, 120.0);
  EXPECT_FALSE(opt.config.calibrate_ttl);
  EXPECT_DOUBLE_EQ(opt.config.alarm_threshold, 0.8);
  EXPECT_FALSE(opt.config.alarm_enabled);
  EXPECT_FALSE(opt.config.oracle_weights);
  EXPECT_EQ(opt.config.estimator_kind, EstimatorKind::kSlidingWindow);
  EXPECT_TRUE(opt.config.estimator_cold_start);
  EXPECT_TRUE(opt.config.client_cache_enabled);
  EXPECT_DOUBLE_EQ(opt.config.ns_min_ttl_sec, 90.0);
}

TEST(Cli, ParsesJsonFlag) {
  EXPECT_TRUE(parse_cli({"--json"}).json);
  EXPECT_FALSE(parse_cli({}).json);
}

TEST(Cli, ParsesDecisionsPath) {
  EXPECT_EQ(parse_cli({"--decisions=dns.csv"}).decisions_path, "dns.csv");
  EXPECT_THROW(parse_cli({"--decisions"}), std::invalid_argument);
}

TEST(Cli, ParsesNsPerDomain) {
  EXPECT_EQ(parse_cli({"--ns-per-domain=4"}).config.ns_per_domain, 4);
  EXPECT_THROW(parse_cli({"--ns-per-domain=0"}), std::invalid_argument);
}

TEST(Cli, ParsesRunAndOutputFlags) {
  const CliOptions opt = parse_cli(
      {"--duration=600", "--warmup=60", "--seed=17", "--replications=4", "--csv", "--cdf"});
  EXPECT_DOUBLE_EQ(opt.config.duration_sec, 600.0);
  EXPECT_DOUBLE_EQ(opt.config.warmup_sec, 60.0);
  EXPECT_EQ(opt.config.seed, 17u);
  EXPECT_EQ(opt.replications, 4);
  EXPECT_TRUE(opt.csv);
  EXPECT_TRUE(opt.show_cdf);
}

TEST(Cli, ParsesTraceAndShifts) {
  const CliOptions opt =
      parse_cli({"--trace=out.csv", "--shift=600:3:5", "--shift=1200:3:0.2"});
  EXPECT_EQ(opt.trace_path, "out.csv");
  ASSERT_EQ(opt.config.rate_shifts.size(), 2u);
  EXPECT_DOUBLE_EQ(opt.config.rate_shifts[0].at_sec, 600.0);
  EXPECT_EQ(opt.config.rate_shifts[0].domain, 3);
  EXPECT_DOUBLE_EQ(opt.config.rate_shifts[0].rate_factor, 5.0);
  EXPECT_DOUBLE_EQ(opt.config.rate_shifts[1].rate_factor, 0.2);
}

TEST(Cli, RejectsMalformedShifts) {
  EXPECT_THROW(parse_cli({"--shift=600"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--shift=600:3"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--shift=600:x:5"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--shift=600:99:5"}), std::invalid_argument);  // unknown domain
  EXPECT_THROW(parse_cli({"--shift=600:3:0"}), std::invalid_argument);
}

TEST(Cli, RejectsUnknownFlag) {
  EXPECT_THROW(parse_cli({"--bogus=1"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"positional"}), std::invalid_argument);
}

TEST(Cli, RejectsMissingOrMalformedValues) {
  EXPECT_THROW(parse_cli({"--policy"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--policy="}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--domains=abc"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--domains=3.5"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--think=12x"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--relative=1,,0.5"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--estimator=magic"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--replications=0"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--heterogeneity=42"}), std::invalid_argument);
}

TEST(Cli, ResultIsValidatedAsAWhole) {
  // Individually parseable but semantically invalid: caught by validate().
  EXPECT_THROW(parse_cli({"--relative=0.5,1"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--think=0"}), std::invalid_argument);
}

TEST(Cli, UsageMentionsEveryFlagGroup) {
  const std::string u = cli_usage();
  for (const char* needle :
       {"--policy", "--heterogeneity", "--relative", "--domains", "--min-ttl", "--measured",
        "--duration", "--csv", "--error", "--client-cache"}) {
    EXPECT_NE(u.find(needle), std::string::npos) << needle;
  }
}

}  // namespace
}  // namespace adattl::experiment
