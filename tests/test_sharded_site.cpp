// Domain-sharded run mode: determinism (bit-identity across repeats and
// across worker counts), shard layout, conservation laws summed over the
// shards, the scale knob, and the validation fences between Site and
// ShardedSite.
#include "experiment/sharded_site.h"

#include <gtest/gtest.h>

#include "proptest/invariants.h"

namespace adattl::experiment {
namespace {

SimulationConfig sharded_config(const std::string& policy = "DRR2-TTL/S_K") {
  SimulationConfig cfg;
  cfg.cluster = web::table2_cluster(35);
  cfg.policy = policy;
  cfg.warmup_sec = 300.0;
  cfg.duration_sec = 1200.0;
  cfg.seed = 77;
  cfg.shard_domains = true;
  cfg.shard_count = 4;
  return cfg;
}

void expect_bit_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.total_pages, b.total_pages);
  EXPECT_EQ(a.total_hits, b.total_hits);
  EXPECT_EQ(a.authoritative_queries, b.authoritative_queries);
  EXPECT_EQ(a.ns_cache_hits, b.ns_cache_hits);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.alarm_signals, b.alarm_signals);
  EXPECT_EQ(a.failed_requests, b.failed_requests);
  // Doubles compared for exact equality on purpose: the merge runs in
  // fixed shard order on one thread, so even floating-point sums must
  // come out byte-for-byte equal.
  EXPECT_EQ(a.mean_max_utilization, b.mean_max_utilization);
  EXPECT_EQ(a.prob_below_090, b.prob_below_090);
  EXPECT_EQ(a.prob_below_098, b.prob_below_098);
  EXPECT_EQ(a.aggregate_utilization, b.aggregate_utilization);
  EXPECT_EQ(a.mean_page_response_sec, b.mean_page_response_sec);
  EXPECT_EQ(a.mean_ttl, b.mean_ttl);
  EXPECT_EQ(a.mean_network_rtt_sec, b.mean_network_rtt_sec);
  ASSERT_EQ(a.mean_server_util.size(), b.mean_server_util.size());
  for (std::size_t i = 0; i < a.mean_server_util.size(); ++i) {
    EXPECT_EQ(a.mean_server_util[i], b.mean_server_util[i]);
  }
  ASSERT_EQ(a.per_server_response_sec.size(), b.per_server_response_sec.size());
  for (std::size_t i = 0; i < a.per_server_response_sec.size(); ++i) {
    EXPECT_EQ(a.per_server_response_sec[i], b.per_server_response_sec[i]);
  }
}

TEST(ShardedSite, RepeatedRunsAreBitIdentical) {
  ShardedSite a(sharded_config());
  ShardedSite b(sharded_config());
  expect_bit_identical(a.run(), b.run());
}

TEST(ShardedSite, WorkerCountDoesNotChangeResults) {
  // The executor only decides which thread advances which shard; the
  // barrier merge is single-threaded and fixed-order, so 1 worker and 4
  // workers must produce the same bytes.
  ShardedSite serial(sharded_config());
  ShardedSite parallel(sharded_config());
  ParallelExecutor one(1);
  ParallelExecutor four(4);
  expect_bit_identical(serial.run(one), parallel.run(four));
}

TEST(ShardedSite, ShardsPartitionDomainsRoundRobin) {
  SimulationConfig cfg = sharded_config();
  cfg.shard_count = 3;
  ShardedSite site(cfg);
  ASSERT_EQ(site.shard_count(), 3);
  std::vector<int> seen(static_cast<std::size_t>(cfg.num_domains), 0);
  for (int s = 0; s < site.shard_count(); ++s) {
    for (int d : site.shard(s).domains) {
      EXPECT_EQ(d % 3, s);
      seen[static_cast<std::size_t>(d)]++;
    }
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(ShardedSite, ShardCountClampsToDomains) {
  SimulationConfig cfg = sharded_config();
  cfg.shard_count = 500;  // far more than the 20 domains
  ShardedSite site(cfg);
  EXPECT_EQ(site.shard_count(), cfg.num_domains);
}

TEST(ShardedSite, ConservationLawsHoldAcrossShards) {
  ShardedSite site(sharded_config());
  const RunResult r = site.run();
  proptest::check_sharded_run_conservation(site, r);
  EXPECT_GT(r.total_pages, 0u);
  EXPECT_GT(r.total_hits, 0u);
}

TEST(ShardedSite, ConservationHoldsWithFaultsAndGeo) {
  SimulationConfig cfg = sharded_config("RR");
  cfg.geo_regions = 4;
  cfg.geo_intra_rtt_sec = 0.02;
  cfg.geo_inter_rtt_sec = 0.2;
  fault::CrashWindow crash;
  crash.start_sec = 600.0;
  crash.duration_sec = 300.0;
  crash.server = 0;
  cfg.faults.crashes.push_back(crash);
  ShardedSite site(cfg);
  const RunResult r = site.run();
  proptest::check_sharded_run_conservation(site, r);
  EXPECT_GT(r.mean_network_rtt_sec, 0.0);
  EXPECT_GT(r.failed_requests, 0u);
}

TEST(ShardedSite, TracksUnshardedRunWithinTolerance) {
  // Sharded mode is a documented approximation (full-capacity replicas
  // under-model cross-shard queueing), but at the paper's operating point
  // the headline aggregate must stay close to the exact serial run.
  SimulationConfig serial_cfg = sharded_config("RR");
  serial_cfg.shard_domains = false;
  Site serial(serial_cfg);
  ShardedSite sharded(sharded_config("RR"));
  const RunResult rs = serial.run();
  const RunResult rp = sharded.run();
  EXPECT_NEAR(rp.aggregate_utilization, rs.aggregate_utilization, 0.05);
  const double hit_ratio = static_cast<double>(rp.total_hits) /
                           static_cast<double>(rs.total_hits);
  EXPECT_NEAR(hit_ratio, 1.0, 0.05);
}

TEST(ShardedSite, SingleUse) {
  ShardedSite site(sharded_config());
  (void)site.run();
  EXPECT_THROW((void)site.run(), std::logic_error);
}

TEST(ShardedSite, RequiresShardDomainsFlag) {
  SimulationConfig cfg = sharded_config();
  cfg.shard_domains = false;
  EXPECT_THROW(ShardedSite{cfg}, std::invalid_argument);
}

TEST(ShardedSite, SiteRejectsShardedConfigs) {
  EXPECT_THROW(Site{sharded_config()}, std::invalid_argument);
}

TEST(ShardedSite, ValidationRejectsShardingWithRedirection) {
  SimulationConfig cfg = sharded_config();
  cfg.redirect_enabled = true;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ScaleKnob, ScaledMultipliesClientsAndCapacityTogether) {
  SimulationConfig cfg = sharded_config();
  cfg.scale = 4.0;
  const SimulationConfig big = cfg.scaled();
  EXPECT_EQ(big.total_clients, 4 * cfg.total_clients);
  EXPECT_DOUBLE_EQ(big.cluster.total_capacity_hits_per_sec,
                   4.0 * cfg.cluster.total_capacity_hits_per_sec);
  EXPECT_DOUBLE_EQ(big.scale, 1.0);  // applied exactly once
}

TEST(ScaleKnob, IdentityAtOne) {
  const SimulationConfig cfg = sharded_config();
  const SimulationConfig same = cfg.scaled();
  EXPECT_EQ(same.total_clients, cfg.total_clients);
  EXPECT_DOUBLE_EQ(same.cluster.total_capacity_hits_per_sec,
                   cfg.cluster.total_capacity_hits_per_sec);
}

TEST(ScaleKnob, ScaleKeepsPerClientLoadInvariant) {
  // Doubling scale doubles clients and capacity: per-server utilization
  // must stay at the same operating point (it's an intensive quantity).
  SimulationConfig cfg;
  cfg.cluster = web::table2_cluster(35);
  cfg.policy = "RR";
  cfg.warmup_sec = 300.0;
  cfg.duration_sec = 1200.0;
  cfg.seed = 5;
  Site base(cfg);
  cfg.scale = 2.0;
  Site doubled(cfg);
  const RunResult rb = base.run();
  const RunResult rd = doubled.run();
  EXPECT_NEAR(rd.aggregate_utilization, rb.aggregate_utilization, 0.04);
  EXPECT_NEAR(static_cast<double>(rd.total_hits) / static_cast<double>(rb.total_hits),
              2.0, 0.1);
}

}  // namespace
}  // namespace adattl::experiment
