// Watermark autoscaler + the AlarmRegistry's elastic pool-membership
// semantics it drives.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/alarm_registry.h"
#include "core/autoscaler.h"

namespace adattl::core {
namespace {

Autoscaler::Config fast_config() {
  Autoscaler::Config c;
  c.high_watermark = 0.75;
  c.low_watermark = 0.30;
  c.hysteresis_ticks = 2;
  c.min_servers = 1;
  return c;
}

TEST(AlarmRegistryPool, MembershipFlipsUpdateEligibilityAndCounters) {
  AlarmRegistry alarms(3, 0.9);
  EXPECT_EQ(alarms.pool_size(), 3);
  EXPECT_EQ(alarms.pool_changes(), 0u);

  alarms.set_in_pool(1, false);
  EXPECT_FALSE(alarms.in_pool(1));
  EXPECT_EQ(alarms.pool_size(), 2);
  EXPECT_EQ(alarms.pool_changes(), 1u);
  EXPECT_FALSE(alarms.eligible()[1]);
  EXPECT_TRUE(alarms.eligible()[0]);

  // Re-asserting the current state is a no-op, not a flip.
  alarms.set_in_pool(1, false);
  EXPECT_EQ(alarms.pool_changes(), 1u);

  alarms.set_in_pool(1, true);
  EXPECT_EQ(alarms.pool_size(), 3);
  EXPECT_EQ(alarms.pool_changes(), 2u);
  EXPECT_TRUE(alarms.eligible()[1]);
}

TEST(AlarmRegistryPool, EligibilityWidensAlongTheLadder) {
  AlarmRegistry alarms(2, 0.5);
  alarms.set_in_pool(1, false);
  // The only in-pool server crosses the alarm threshold. The ladder stays
  // inside the pool first (the alarm is a soft hint; membership is an
  // operator decision), so the alarmed in-pool server still answers and
  // the parked server stays out.
  alarms.observe(8.0, {0.9, 0.0});
  EXPECT_TRUE(alarms.is_alarmed(0));
  EXPECT_TRUE(alarms.eligible()[0]);
  EXPECT_FALSE(alarms.eligible()[1]);
  // Only when the in-pool server is *down* does eligibility leave the
  // pool — the DNS must answer with something that can serve.
  alarms.set_down(0, true);
  EXPECT_FALSE(alarms.eligible()[0]);
  EXPECT_TRUE(alarms.eligible()[1]);
}

TEST(AlarmRegistryPool, FeedbackSnapshotSurvivesDisabledSignalling) {
  AlarmRegistry alarms(2, 0.9, /*enabled=*/false);
  EXPECT_EQ(alarms.feedback_generation(), 0u);
  alarms.observe_full(8.0, {0.4, 0.6}, {3, 1});
  // Signalling is off (no alarms ever) but the COST family and the
  // autoscaler still need the observation.
  EXPECT_EQ(alarms.feedback_generation(), 1u);
  EXPECT_DOUBLE_EQ(alarms.last_utilization()[1], 0.6);
  EXPECT_EQ(alarms.last_queue_depth()[0], 3u);
  EXPECT_EQ(alarms.alarm_signals(), 0u);
}

TEST(Autoscaler, ScalesDownAfterSustainedLowUtilization) {
  AlarmRegistry alarms(3, 0.9);
  Autoscaler scaler(alarms, fast_config());

  scaler.observe({0.1, 0.1, 0.1});
  EXPECT_EQ(alarms.pool_size(), 3);  // one low tick: hysteresis holds
  scaler.observe({0.1, 0.1, 0.1});
  EXPECT_EQ(alarms.pool_size(), 2);  // second: park the highest index
  EXPECT_FALSE(alarms.in_pool(2));
  EXPECT_EQ(scaler.scale_down_actions(), 1u);
}

TEST(Autoscaler, ScalesUpAfterSustainedHighUtilization) {
  AlarmRegistry alarms(3, 0.95);
  Autoscaler scaler(alarms, fast_config());
  alarms.set_in_pool(2, false);

  scaler.observe({0.9, 0.9, 0.0});
  scaler.observe({0.9, 0.9, 0.0});
  EXPECT_TRUE(alarms.in_pool(2));  // lowest-index parked server re-admitted
  EXPECT_EQ(scaler.scale_up_actions(), 1u);
}

TEST(Autoscaler, MeanIsOverInPoolServersOnly) {
  AlarmRegistry alarms(3, 0.95);
  Autoscaler scaler(alarms, fast_config());
  alarms.set_in_pool(2, false);

  // In-pool mean is (0.9 + 0.9)/2 = 0.9 > high even though the site-wide
  // mean including the parked idle server would be 0.6 < high.
  scaler.observe({0.9, 0.9, 0.0});
  scaler.observe({0.9, 0.9, 0.0});
  EXPECT_EQ(scaler.scale_up_actions(), 1u);
}

TEST(Autoscaler, DeadBandResetsTheHysteresisCounters) {
  AlarmRegistry alarms(3, 0.9);
  Autoscaler scaler(alarms, fast_config());

  scaler.observe({0.1, 0.1, 0.1});
  scaler.observe({0.5, 0.5, 0.5});  // back in band: counter resets
  scaler.observe({0.1, 0.1, 0.1});
  EXPECT_EQ(alarms.pool_size(), 3);  // never two consecutive low ticks
  EXPECT_EQ(scaler.scale_down_actions(), 0u);
}

TEST(Autoscaler, NeverShrinksBelowMinServers) {
  AlarmRegistry alarms(2, 0.9);
  Autoscaler::Config cfg = fast_config();
  cfg.min_servers = 2;
  Autoscaler scaler(alarms, cfg);

  for (int i = 0; i < 10; ++i) scaler.observe({0.0, 0.0});
  EXPECT_EQ(alarms.pool_size(), 2);
  EXPECT_EQ(scaler.scale_down_actions(), 0u);
}

TEST(Autoscaler, DoesNotReadmitCrashedServers) {
  AlarmRegistry alarms(3, 0.95);
  Autoscaler scaler(alarms, fast_config());
  alarms.set_in_pool(1, false);
  alarms.set_in_pool(2, false);
  alarms.set_down(1, true);  // parked AND crashed: not a candidate

  scaler.observe({0.9, 0.0, 0.0});
  scaler.observe({0.9, 0.0, 0.0});
  EXPECT_FALSE(alarms.in_pool(1));
  EXPECT_TRUE(alarms.in_pool(2));  // next healthy parked server instead
}

TEST(Autoscaler, OneActionPerHysteresisWindow) {
  AlarmRegistry alarms(4, 0.9);
  Autoscaler scaler(alarms, fast_config());

  for (int i = 0; i < 4; ++i) scaler.observe({0.05, 0.05, 0.05, 0.05});
  // Ticks 2 and 4 fire (counter resets after each action): two servers
  // parked, not three.
  EXPECT_EQ(scaler.scale_down_actions(), 2u);
  EXPECT_EQ(alarms.pool_size(), 2);
}

TEST(Autoscaler, RejectsBadConfigs) {
  AlarmRegistry alarms(2, 0.9);
  Autoscaler::Config bad = fast_config();
  bad.low_watermark = 0.8;  // low >= high
  EXPECT_THROW(Autoscaler(alarms, bad), std::invalid_argument);
  bad = fast_config();
  bad.hysteresis_ticks = 0;
  EXPECT_THROW(Autoscaler(alarms, bad), std::invalid_argument);
  bad = fast_config();
  bad.min_servers = 0;
  EXPECT_THROW(Autoscaler(alarms, bad), std::invalid_argument);
  bad = fast_config();
  bad.high_watermark = 1.5;
  EXPECT_THROW(Autoscaler(alarms, bad), std::invalid_argument);
}

}  // namespace
}  // namespace adattl::core
