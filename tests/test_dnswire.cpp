// RFC 1035 wire-format codec + scheduler frontend suite.
#include "dnswire/frontend.h"
#include "dnswire/message.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/policy_factory.h"
#include "sim/random.h"

namespace adattl::dnswire {
namespace {

// ------------------------------------------------------------- names

TEST(DnsName, EncodeDecodeRoundTrip) {
  std::vector<std::uint8_t> wire;
  ASSERT_TRUE(encode_name("www.example.org", &wire));
  // 3www7example3org0
  ASSERT_EQ(wire.size(), 17u);
  EXPECT_EQ(wire[0], 3u);
  EXPECT_EQ(wire[4], 7u);
  EXPECT_EQ(wire.back(), 0u);

  std::size_t pos = 0;
  std::string decoded;
  ASSERT_TRUE(decode_name(wire.data(), wire.size(), &pos, &decoded));
  EXPECT_EQ(decoded, "www.example.org");
  EXPECT_EQ(pos, wire.size());
}

TEST(DnsName, DecodeLowercasesAndSingleLabelWorks) {
  std::vector<std::uint8_t> wire;
  ASSERT_TRUE(encode_name("WWW.ExAmPlE.ORG", &wire));
  std::size_t pos = 0;
  std::string decoded;
  ASSERT_TRUE(decode_name(wire.data(), wire.size(), &pos, &decoded));
  EXPECT_EQ(decoded, "www.example.org");

  wire.clear();
  ASSERT_TRUE(encode_name("localhost", &wire));
  pos = 0;
  ASSERT_TRUE(decode_name(wire.data(), wire.size(), &pos, &decoded));
  EXPECT_EQ(decoded, "localhost");
}

TEST(DnsName, EncodeRejectsBadLabels) {
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(encode_name("", &out));
  EXPECT_FALSE(encode_name("a..b", &out));
  EXPECT_FALSE(encode_name(".leading", &out));
  EXPECT_FALSE(encode_name(std::string(64, 'x') + ".com", &out));  // label > 63
  std::string huge;
  for (int i = 0; i < 60; ++i) huge += "abcd.";
  huge += "com";  // > 255 bytes total
  EXPECT_FALSE(encode_name(huge, &out));
  EXPECT_TRUE(out.empty());  // failed encodes leave the buffer untouched
}

TEST(DnsName, DecodeHandlesCompressionPointer) {
  // Message: name "site.org" at offset 0, then a pointer to it at offset 10.
  std::vector<std::uint8_t> wire;
  ASSERT_TRUE(encode_name("site.org", &wire));  // 10 bytes: 4site3org0
  ASSERT_EQ(wire.size(), 10u);
  wire.push_back(0xc0);
  wire.push_back(0x00);
  std::size_t pos = 10;
  std::string decoded;
  ASSERT_TRUE(decode_name(wire.data(), wire.size(), &pos, &decoded));
  EXPECT_EQ(decoded, "site.org");
  EXPECT_EQ(pos, 12u);  // past the 2-byte pointer, not the target
}

TEST(DnsName, DecodeRejectsPointerLoopsAndTruncation) {
  // Self-pointing pointer at offset 0.
  const std::vector<std::uint8_t> loop = {0xc0, 0x00};
  std::size_t pos = 0;
  std::string out;
  EXPECT_FALSE(decode_name(loop.data(), loop.size(), &pos, &out));

  // Truncated label.
  const std::vector<std::uint8_t> truncated = {5, 'a', 'b'};
  pos = 0;
  EXPECT_FALSE(decode_name(truncated.data(), truncated.size(), &pos, &out));

  // Pointer past the end.
  const std::vector<std::uint8_t> wild = {0xc0, 0x50};
  pos = 0;
  EXPECT_FALSE(decode_name(wild.data(), wild.size(), &pos, &out));
}

// ------------------------------------------------------------- messages

TEST(DnsMessage, QueryRoundTrip) {
  const std::vector<std::uint8_t> wire = encode_query(0xBEEF, "www.site.org");
  ASSERT_FALSE(wire.empty());
  Header h;
  Question q;
  ASSERT_TRUE(decode_query(wire, &h, &q));
  EXPECT_EQ(h.id, 0xBEEF);
  EXPECT_FALSE(h.qr);
  EXPECT_TRUE(h.rd);
  EXPECT_EQ(h.qdcount, 1);
  EXPECT_EQ(q.qname, "www.site.org");
  EXPECT_EQ(q.qtype, kTypeA);
  EXPECT_EQ(q.qclass, kClassIn);
}

TEST(DnsMessage, ResponseRoundTrip) {
  Header qh;
  qh.id = 42;
  qh.rd = true;
  Question q{"www.site.org", kTypeA, kClassIn};
  const std::vector<std::uint8_t> wire = encode_a_response(qh, q, 0x0A000001, 43);
  Header rh;
  std::uint32_t ip = 0, ttl = 0;
  ASSERT_TRUE(decode_a_response(wire, &rh, &ip, &ttl));
  EXPECT_EQ(rh.id, 42);
  EXPECT_TRUE(rh.qr);
  EXPECT_TRUE(rh.aa);
  EXPECT_TRUE(rh.rd);
  EXPECT_EQ(rh.rcode, kRcodeNoError);
  EXPECT_EQ(rh.ancount, 1);
  EXPECT_EQ(ip, 0x0A000001u);  // 10.0.0.1
  EXPECT_EQ(ttl, 43u);
}

TEST(DnsMessage, ErrorResponseHasNoAnswer) {
  Header qh;
  qh.id = 7;
  Question q{"other.org", kTypeA, kClassIn};
  const std::vector<std::uint8_t> wire = encode_a_response(qh, q, 0, 0, kRcodeNxDomain);
  Header rh;
  std::uint32_t ip = 0, ttl = 0;
  ASSERT_TRUE(decode_a_response(wire, &rh, &ip, &ttl));
  EXPECT_EQ(rh.rcode, kRcodeNxDomain);
  EXPECT_EQ(rh.ancount, 0);
}

// ------------------------------------------------------------- goldens
//
// Exact wire images, byte for byte, per RFC 1035 §4.1. These pin the
// encoder's output format so a layout regression (field order, endianness,
// label framing) cannot hide behind a symmetric decode bug: the decoder is
// then driven from the SAME golden bytes, not from the encoder's output.

TEST(DnsGolden, AQueryWireImage) {
  const std::vector<std::uint8_t> golden = {
      0x12, 0x34,              // id
      0x01, 0x00,              // flags: QR=0 opcode=0 RD=1
      0x00, 0x01,              // qdcount
      0x00, 0x00,              // ancount
      0x00, 0x00,              // nscount
      0x00, 0x00,              // arcount
      3,    'w',  'w',  'w',   // qname
      4,    's',  'i',  't',  'e',
      3,    'o',  'r',  'g',  0,
      0x00, 0x01,              // qtype A
      0x00, 0x01,              // qclass IN
  };
  EXPECT_EQ(encode_query(0x1234, "www.site.org"), golden);

  Header h;
  Question q;
  ASSERT_TRUE(decode_query(golden, &h, &q));
  EXPECT_EQ(h.id, 0x1234);
  EXPECT_FALSE(h.qr);
  EXPECT_TRUE(h.rd);
  EXPECT_EQ(q.qname, "www.site.org");
  EXPECT_EQ(q.qtype, kTypeA);
  EXPECT_EQ(q.qclass, kClassIn);
}

TEST(DnsGolden, NsQueryWireImage) {
  const std::vector<std::uint8_t> golden = {
      0xAB, 0xCD,                   // id
      0x00, 0x00,                   // flags: RD=0
      0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      4,    's',  'i',  't',  'e',  // qname
      3,    'o',  'r',  'g',  0,
      0x00, 0x02,                   // qtype NS
      0x00, 0x01,                   // qclass IN
  };
  EXPECT_EQ(encode_query(0xABCD, "site.org", /*qtype=*/2, kClassIn,
                         /*recursion_desired=*/false),
            golden);

  Header h;
  Question q;
  ASSERT_TRUE(decode_query(golden, &h, &q));
  EXPECT_FALSE(h.rd);
  EXPECT_EQ(q.qname, "site.org");
  EXPECT_EQ(q.qtype, 2u);
}

TEST(DnsGolden, Edns0QueryDecodesLikeItsPlainTwin) {
  // The same A question with an RFC 6891 OPT pseudo-RR in the additional
  // section (arcount 1). Our decoder reads only the header and the first
  // question, so the OPT record must be invisible: both images decode to
  // identical (header-modulo-arcount, question) pairs.
  std::vector<std::uint8_t> plain = encode_query(0x0042, "www.site.org");
  std::vector<std::uint8_t> edns = plain;
  edns[11] = 1;  // arcount: 0 -> 1
  const std::uint8_t opt[] = {
      0x00,                    // owner: root name
      0x00, 0x29,              // type OPT (41)
      0x04, 0xd0,              // "class": udp payload size 1232
      0x00, 0x00, 0x00, 0x00,  // "ttl": ext-rcode/version/flags
      0x00, 0x00,              // rdlength 0
  };
  edns.insert(edns.end(), std::begin(opt), std::end(opt));

  Header hp, he;
  Question qp, qe;
  ASSERT_TRUE(decode_query(plain, &hp, &qp));
  ASSERT_TRUE(decode_query(edns, &he, &qe));
  EXPECT_EQ(he.arcount, 1u);
  EXPECT_EQ(hp.id, he.id);
  EXPECT_EQ(qp.qname, qe.qname);
  EXPECT_EQ(qp.qtype, qe.qtype);
  EXPECT_EQ(qp.qclass, qe.qclass);
}

TEST(DnsGolden, AResponseWireImage) {
  Header qh;
  qh.id = 0x1234;
  qh.rd = true;
  const Question q{"www.site.org", kTypeA, kClassIn};
  const std::vector<std::uint8_t> golden = {
      0x12, 0x34,              // id echoed
      0x85, 0x00,              // QR=1 AA=1 RD=1 RA=0 rcode=0
      0x00, 0x01,              // qdcount: question echoed
      0x00, 0x01,              // ancount
      0x00, 0x00, 0x00, 0x00,  // nscount, arcount
      3,    'w',  'w',  'w',  4, 's', 'i', 't', 'e', 3, 'o', 'r', 'g', 0,
      0x00, 0x01, 0x00, 0x01,  // question qtype/qclass
      0xc0, 0x0c,              // answer owner: pointer to offset 12
      0x00, 0x01,              // type A
      0x00, 0x01,              // class IN
      0x00, 0x00, 0x00, 0x2b,  // ttl 43
      0x00, 0x04,              // rdlength
      0x0a, 0x00, 0x00, 0x01,  // 10.0.0.1
  };
  EXPECT_EQ(encode_a_response(qh, q, 0x0A000001, 43), golden);

  Header rh;
  std::uint32_t ip = 0, ttl = 0;
  ASSERT_TRUE(decode_a_response(golden, &rh, &ip, &ttl));
  EXPECT_EQ(ip, 0x0A000001u);
  EXPECT_EQ(ttl, 43u);
}

TEST(DnsGolden, AaaaResponseWireImage) {
  Header qh;
  qh.id = 0x1234;
  qh.rd = true;
  const Question q{"www.site.org", kTypeAaaa, kClassIn};
  const std::vector<std::uint8_t> golden = {
      0x12, 0x34,              // id echoed
      0x85, 0x00,              // QR=1 AA=1 RD=1 RA=0 rcode=0
      0x00, 0x01,              // qdcount: question echoed
      0x00, 0x01,              // ancount
      0x00, 0x00, 0x00, 0x00,  // nscount, arcount
      3,    'w',  'w',  'w',  4, 's', 'i', 't', 'e', 3, 'o', 'r', 'g', 0,
      0x00, 0x1c, 0x00, 0x01,  // question qtype AAAA / qclass IN
      0xc0, 0x0c,              // answer owner: pointer to offset 12
      0x00, 0x1c,              // type AAAA
      0x00, 0x01,              // class IN
      0x00, 0x00, 0x00, 0x2b,  // ttl 43
      0x00, 0x10,              // rdlength 16
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0xff, 0xff, 0x0a, 0x00, 0x00, 0x01,  // ::ffff:10.0.0.1
  };
  EXPECT_EQ(encode_aaaa_response(qh, q, v4_mapped_ipv6(0x0A000001), 43), golden);

  Header rh;
  Ipv6 addr{};
  std::uint32_t ttl = 0;
  ASSERT_TRUE(decode_aaaa_response(golden, &rh, &addr, &ttl));
  EXPECT_EQ(addr, v4_mapped_ipv6(0x0A000001));
  EXPECT_EQ(ttl, 43u);
  // The record families do not decode as each other.
  std::uint32_t ip = 0;
  EXPECT_FALSE(decode_a_response(golden, &rh, &ip, &ttl));
}

TEST(DnsMessage, V4MappedIpv6Layout) {
  const Ipv6 m = v4_mapped_ipv6(0xC0A80164);  // 192.168.1.100
  for (int i = 0; i < 10; ++i) EXPECT_EQ(m[static_cast<std::size_t>(i)], 0) << i;
  EXPECT_EQ(m[10], 0xff);
  EXPECT_EQ(m[11], 0xff);
  EXPECT_EQ(m[12], 192);
  EXPECT_EQ(m[13], 168);
  EXPECT_EQ(m[14], 1);
  EXPECT_EQ(m[15], 100);
}

TEST(DnsMessage, DecodeQueryRejectsGarbage) {
  Header h;
  Question q;
  EXPECT_FALSE(decode_query({}, &h, &q));
  EXPECT_FALSE(decode_query({1, 2, 3}, &h, &q));
  // Valid header claiming a question, but no question bytes.
  std::vector<std::uint8_t> hdr_only = {0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0};
  EXPECT_FALSE(decode_query(hdr_only, &h, &q));
}

// ------------------------------------------------------------- fuzz

TEST(DnsWireFuzz, RandomBuffersNeverCrashDecoders) {
  sim::RngStream rng(31337);
  Header h;
  Question q;
  std::uint32_t ip = 0, ttl = 0;
  for (int iter = 0; iter < 20000; ++iter) {
    const int len = static_cast<int>(rng.uniform_int(0, 64));
    std::vector<std::uint8_t> buf(static_cast<std::size_t>(len));
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    // Must never crash, loop forever, or read out of bounds (ASan-checked
    // in sanitizer builds); the return value is free to be false.
    (void)decode_query(buf, &h, &q);
    (void)decode_a_response(buf, &h, &ip, &ttl);
    std::size_t pos = 0;
    std::string name;
    (void)decode_name(buf.data(), buf.size(), &pos, &name);
  }
}

TEST(DnsWireFuzz, MutatedValidPacketsNeverCrashDecoders) {
  sim::RngStream rng(777);
  const std::vector<std::uint8_t> valid = encode_query(0x5555, "www.site.org");
  Header h;
  Question q;
  for (int iter = 0; iter < 20000; ++iter) {
    std::vector<std::uint8_t> buf = valid;
    // Flip 1-4 random bytes; truncate sometimes.
    const int flips = static_cast<int>(rng.uniform_int(1, 4));
    for (int f = 0; f < flips; ++f) {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(buf.size()) - 1));
      buf[idx] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    if (rng.bernoulli(0.3)) {
      buf.resize(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(buf.size()))));
    }
    if (decode_query(buf, &h, &q)) {
      // Anything that decodes must satisfy the container invariants.
      EXPECT_LE(q.qname.size(), 255u);
    }
  }
}

// ------------------------------------------------------------- frontend

struct FrontendRig {
  FrontendRig() : rng(5), alarms(3, 0.9) {
    core::SchedulerFactoryConfig fc;
    fc.capacities = {100.0, 80.0, 60.0};
    fc.initial_weights = sim::ZipfDistribution(10, 1.0).probabilities();
    fc.class_threshold = 0.1;
    bundle = core::make_scheduler("PRR2-TTL/K", fc, alarms, simulator, rng);
    frontend = std::make_unique<DnsFrontend>(
        *bundle.scheduler, "WWW.Site.Org",
        std::vector<std::uint32_t>{0x0A000001, 0x0A000002, 0x0A000003});
  }

  sim::Simulator simulator;
  sim::RngStream rng;
  core::AlarmRegistry alarms;
  core::SchedulerBundle bundle;
  std::unique_ptr<DnsFrontend> frontend;
};

TEST(DnsFrontendTest, AnswersWithSchedulerDecision) {
  FrontendRig rig;
  const std::vector<std::uint8_t> query = encode_query(0x1234, "www.site.org");
  const std::vector<std::uint8_t> response = rig.frontend->handle(query, /*domain=*/0);
  Header h;
  std::uint32_t ip = 0, ttl = 0;
  ASSERT_TRUE(decode_a_response(response, &h, &ip, &ttl));
  EXPECT_EQ(h.id, 0x1234);
  EXPECT_EQ(h.rcode, kRcodeNoError);
  // The address is one of the configured servers.
  EXPECT_TRUE(ip == 0x0A000001 || ip == 0x0A000002 || ip == 0x0A000003);
  // Domain 0 is the hottest: its TTL is the policy's minimum, rounded to
  // integral seconds but never to zero.
  EXPECT_GE(ttl, 1u);
  EXPECT_LE(ttl, 240u);
  EXPECT_EQ(rig.frontend->answered(), 1u);
  EXPECT_EQ(rig.bundle.scheduler->decisions(), 1u);
}

TEST(DnsFrontendTest, HotDomainsGetShorterTtlsOnTheWire) {
  FrontendRig rig;
  const auto ttl_for = [&](int domain) {
    const std::vector<std::uint8_t> r =
        rig.frontend->handle(encode_query(1, "www.site.org"), domain);
    Header h;
    std::uint32_t ip = 0, ttl = 0;
    EXPECT_TRUE(decode_a_response(r, &h, &ip, &ttl));
    return ttl;
  };
  EXPECT_LT(ttl_for(0), ttl_for(9));  // rank 1 vs rank 10 under Zipf
}

TEST(DnsFrontendTest, CaseInsensitiveNameMatch) {
  FrontendRig rig;
  const std::vector<std::uint8_t> r =
      rig.frontend->handle(encode_query(2, "WWW.SITE.ORG"), 0);
  Header h;
  std::uint32_t ip = 0, ttl = 0;
  ASSERT_TRUE(decode_a_response(r, &h, &ip, &ttl));
  EXPECT_EQ(h.rcode, kRcodeNoError);
}

TEST(DnsFrontendTest, ForeignNameGetsNxDomainWithoutSchedulingCost) {
  FrontendRig rig;
  const std::vector<std::uint8_t> r =
      rig.frontend->handle(encode_query(3, "evil.example.com"), 0);
  Header h;
  std::uint32_t ip = 0, ttl = 0;
  ASSERT_TRUE(decode_a_response(r, &h, &ip, &ttl));
  EXPECT_EQ(h.rcode, kRcodeNxDomain);
  EXPECT_EQ(rig.bundle.scheduler->decisions(), 0u);
  EXPECT_EQ(rig.frontend->refused(), 1u);
}

TEST(DnsFrontendTest, NonAddressQueriesGetNotImp) {
  FrontendRig rig;
  const std::vector<std::uint8_t> r =
      rig.frontend->handle(encode_query(4, "www.site.org", /*qtype=*/15), 0);  // MX
  Header h;
  std::uint32_t ip = 0, ttl = 0;
  ASSERT_TRUE(decode_a_response(r, &h, &ip, &ttl));
  EXPECT_EQ(h.rcode, kRcodeNotImp);
}

TEST(DnsFrontendTest, AaaaQueriesGetV4MappedAnswers) {
  FrontendRig rig;
  const std::vector<std::uint8_t> r =
      rig.frontend->handle(encode_query(5, "www.site.org", kTypeAaaa), 0);
  Header h;
  Ipv6 addr{};
  std::uint32_t ttl = 0;
  ASSERT_TRUE(decode_aaaa_response(r, &h, &addr, &ttl));
  EXPECT_EQ(h.rcode, kRcodeNoError);
  EXPECT_GE(ttl, 1u);
  const std::vector<std::uint32_t> known{0x0A000001, 0x0A000002, 0x0A000003};
  const bool real = std::any_of(known.begin(), known.end(), [&](std::uint32_t v4) {
    return v4_mapped_ipv6(v4) == addr;
  });
  EXPECT_TRUE(real);
  EXPECT_EQ(rig.frontend->answered(), 1u);  // AAAA consumes a real decision
}

TEST(DnsFrontendTest, ExplicitIpv6AddressesWinOverMapping) {
  FrontendRig rig;
  Ipv6 native{};
  native[0] = 0x20;
  native[1] = 0x01;  // 2001::1
  native[15] = 0x01;
  DnsFrontend v6_frontend(*rig.bundle.scheduler, "www.site.org",
                          std::vector<std::uint32_t>{0x0A000001},
                          std::vector<Ipv6>{native});
  const std::vector<std::uint8_t> r =
      v6_frontend.handle(encode_query(6, "www.site.org", kTypeAaaa), 0);
  Header h;
  Ipv6 addr{};
  std::uint32_t ttl = 0;
  ASSERT_TRUE(decode_aaaa_response(r, &h, &addr, &ttl));
  EXPECT_EQ(addr, native);

  EXPECT_THROW(DnsFrontend(*rig.bundle.scheduler, "www.site.org",
                           std::vector<std::uint32_t>{1, 2},
                           std::vector<Ipv6>{native}),
               std::invalid_argument);
}

TEST(DnsFrontendTest, MalformedQueryGetsFormErrOrDrop) {
  FrontendRig rig;
  // One byte: not even an id — dropped.
  EXPECT_TRUE(rig.frontend->handle({0xFF}, 0).empty());
  // Header-only with a claimed question: FORMERR echoing the id.
  const std::vector<std::uint8_t> bad = {0xAB, 0xCD, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0};
  const std::vector<std::uint8_t> r = rig.frontend->handle(bad, 0);
  Header h;
  std::uint32_t ip = 0, ttl = 0;
  ASSERT_TRUE(decode_a_response(r, &h, &ip, &ttl));
  EXPECT_EQ(h.id, 0xABCD);
  EXPECT_EQ(h.rcode, kRcodeFormErr);
}

TEST(DnsFrontendTest, Validation) {
  FrontendRig rig;
  EXPECT_THROW(DnsFrontend(*rig.bundle.scheduler, "", {1}), std::invalid_argument);
  EXPECT_THROW(DnsFrontend(*rig.bundle.scheduler, "x.org", {}), std::invalid_argument);
}

}  // namespace
}  // namespace adattl::dnswire
