// The shared ADATTL_* environment-knob parser: strict number validation
// (garbage falls back to the default instead of silently becoming 0),
// clamping, and the knobs built on top of it (ADATTL_REPLICATIONS,
// ADATTL_DURATION_SEC, ADATTL_JOBS).
#include <gtest/gtest.h>

#include <cstdlib>

#include "experiment/env_config.h"
#include "experiment/parallel_executor.h"
#include "experiment/runner.h"

using namespace adattl;

namespace {

// setenv/unsetenv scoped helper so tests can't leak state into each other.
class EnvVar {
 public:
  explicit EnvVar(const char* name) : name_(name) { unsetenv(name_); }
  ~EnvVar() { unsetenv(name_); }
  void set(const char* value) { setenv(name_, value, 1); }

 private:
  const char* name_;
};

TEST(EnvConfig, ParseEnvNumberAcceptsPlainNumbers) {
  double v = -1;
  EXPECT_TRUE(experiment::parse_env_number("12", v));
  EXPECT_EQ(v, 12.0);
  EXPECT_TRUE(experiment::parse_env_number("3.5", v));
  EXPECT_EQ(v, 3.5);
  EXPECT_TRUE(experiment::parse_env_number("1e3", v));
  EXPECT_EQ(v, 1000.0);
  EXPECT_TRUE(experiment::parse_env_number("-7", v));
  EXPECT_EQ(v, -7.0);
}

TEST(EnvConfig, ParseEnvNumberRejectsGarbage) {
  double v = 0;
  EXPECT_FALSE(experiment::parse_env_number(nullptr, v));
  EXPECT_FALSE(experiment::parse_env_number("", v));
  EXPECT_FALSE(experiment::parse_env_number("abc", v));
  EXPECT_FALSE(experiment::parse_env_number("12abc", v));  // trailing junk
  EXPECT_FALSE(experiment::parse_env_number("12 ", v));
  EXPECT_FALSE(experiment::parse_env_number("nan", v));
  EXPECT_FALSE(experiment::parse_env_number("inf", v));
}

TEST(EnvConfig, EnvDoubleFallsBackAndClamps) {
  EnvVar var("ADATTL_TEST_KNOB");
  EXPECT_EQ(experiment::env_double("ADATTL_TEST_KNOB", 5.0, 0.0, 10.0), 5.0);  // unset
  var.set("7.5");
  EXPECT_EQ(experiment::env_double("ADATTL_TEST_KNOB", 5.0, 0.0, 10.0), 7.5);
  var.set("99");
  EXPECT_EQ(experiment::env_double("ADATTL_TEST_KNOB", 5.0, 0.0, 10.0), 10.0);  // clamped
  var.set("-4");
  EXPECT_EQ(experiment::env_double("ADATTL_TEST_KNOB", 5.0, 0.0, 10.0), 0.0);
  var.set("garbage");
  EXPECT_EQ(experiment::env_double("ADATTL_TEST_KNOB", 5.0, 0.0, 10.0), 5.0);  // rejected
  var.set("");
  EXPECT_EQ(experiment::env_double("ADATTL_TEST_KNOB", 5.0, 0.0, 10.0), 5.0);
}

TEST(EnvConfig, EnvIntRejectsFractionsAndGarbage) {
  EnvVar var("ADATTL_TEST_KNOB");
  var.set("7");
  EXPECT_EQ(experiment::env_int("ADATTL_TEST_KNOB", 3, 1, 30), 7);
  var.set("3.5");
  EXPECT_EQ(experiment::env_int("ADATTL_TEST_KNOB", 3, 1, 30), 3);  // not an integer
  var.set("0junk");
  EXPECT_EQ(experiment::env_int("ADATTL_TEST_KNOB", 3, 1, 30), 3);  // NOT silently 0
  var.set("100");
  EXPECT_EQ(experiment::env_int("ADATTL_TEST_KNOB", 3, 1, 30), 30);  // clamped
}

TEST(EnvConfig, DefaultReplicationsKnob) {
  EnvVar var("ADATTL_REPLICATIONS");
  EXPECT_EQ(experiment::default_replications(), 3);  // unset: the paper's 3
  var.set("10");
  EXPECT_EQ(experiment::default_replications(), 10);
  var.set("1000");
  EXPECT_EQ(experiment::default_replications(), 30);  // clamped to [1, 30]
  var.set("junk");
  EXPECT_EQ(experiment::default_replications(), 3);
}

TEST(EnvConfig, DefaultDurationKnob) {
  EnvVar var("ADATTL_DURATION_SEC");
  EXPECT_EQ(experiment::default_duration_sec(), 18000.0);  // the paper's 5 h
  var.set("600");
  EXPECT_EQ(experiment::default_duration_sec(), 600.0);
  var.set("1");
  EXPECT_EQ(experiment::default_duration_sec(), 600.0);  // clamped up
  var.set("5 hours");
  EXPECT_EQ(experiment::default_duration_sec(), 18000.0);  // rejected
}

TEST(EnvConfig, DefaultJobsKnob) {
  EnvVar var("ADATTL_JOBS");
  EXPECT_GE(experiment::default_jobs(), 1);  // unset: hardware_concurrency
  var.set("3");
  EXPECT_EQ(experiment::default_jobs(), 3);
  var.set("0");
  EXPECT_EQ(experiment::default_jobs(), 1);  // clamped to >= 1
  var.set("junk");
  EXPECT_GE(experiment::default_jobs(), 1);  // rejected, falls back
}

}  // namespace
