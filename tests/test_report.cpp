#include "experiment/report.h"

#include <gtest/gtest.h>

namespace adattl::experiment {
namespace {

TEST(TableReport, FmtRoundsToPrecision) {
  EXPECT_EQ(TableReport::fmt(0.98765, 3), "0.988");
  EXPECT_EQ(TableReport::fmt(1.0, 0), "1");
  EXPECT_EQ(TableReport::fmt(12.5, 1), "12.5");
}

TEST(TableReport, RejectsEmptyHeader) {
  EXPECT_THROW(TableReport({}), std::invalid_argument);
}

TEST(TableReport, RejectsMismatchedRow) {
  TableReport t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
  EXPECT_NO_THROW(t.add_row({"x", "y"}));
}

TEST(TableReport, PrintProducesAlignedOutput) {
  TableReport t({"policy", "value"});
  t.add_row({"RR", "0.1"});
  t.add_row({"DRR2-TTL/S_K", "0.9"});
  testing::internal::CaptureStdout();
  t.print("demo");
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("DRR2-TTL/S_K"), std::string::npos);
  EXPECT_NE(out.find("policy"), std::string::npos);
}

TEST(TableReport, CsvOutput) {
  TableReport t({"a", "b"});
  t.add_row({"1", "2"});
  testing::internal::CaptureStdout();
  t.print_csv();
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_EQ(out, "a,b\n1,2\n");
}

}  // namespace
}  // namespace adattl::experiment
