#include "workload/think_time_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "workload/client.h"

namespace adattl::workload {
namespace {

TEST(ThinkTimeModel, RejectsBadConstruction) {
  EXPECT_THROW(ThinkTimeModel({}), std::invalid_argument);
  EXPECT_THROW(ThinkTimeModel({15.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(ThinkTimeModel({-1.0}), std::invalid_argument);
}

TEST(ThinkTimeModel, BaseMeansExposed) {
  ThinkTimeModel m({15.0, 10.0});
  EXPECT_EQ(m.num_domains(), 2);
  EXPECT_DOUBLE_EQ(m.mean_think(0), 15.0);
  EXPECT_DOUBLE_EQ(m.mean_think(1), 10.0);
  EXPECT_DOUBLE_EQ(m.rate_multiplier(0), 1.0);
}

TEST(ThinkTimeModel, ScaleRateShrinksThinkTime) {
  ThinkTimeModel m({15.0});
  m.scale_rate(0, 3.0);  // 3x hotter -> think time / 3
  EXPECT_DOUBLE_EQ(m.mean_think(0), 5.0);
  EXPECT_DOUBLE_EQ(m.rate_multiplier(0), 3.0);
}

TEST(ThinkTimeModel, ScalesCompose) {
  ThinkTimeModel m({12.0});
  m.scale_rate(0, 2.0);
  m.scale_rate(0, 3.0);
  EXPECT_DOUBLE_EQ(m.mean_think(0), 2.0);
  m.scale_rate(0, 1.0 / 6.0);  // cool back down
  EXPECT_DOUBLE_EQ(m.mean_think(0), 12.0);
}

TEST(ThinkTimeModel, ResetRestoresBase) {
  ThinkTimeModel m({15.0, 20.0});
  m.scale_rate(1, 5.0);
  m.reset_rate(1);
  EXPECT_DOUBLE_EQ(m.mean_think(1), 20.0);
  EXPECT_DOUBLE_EQ(m.mean_think(0), 15.0);
}

TEST(ThinkTimeModel, RejectsNonPositiveFactor) {
  ThinkTimeModel m({15.0});
  EXPECT_THROW(m.scale_rate(0, 0.0), std::invalid_argument);
  EXPECT_THROW(m.scale_rate(0, -2.0), std::invalid_argument);
}

TEST(ThinkTimeModel, RejectsNonFiniteFactor) {
  // Regression: scale_rate accepted inf/NaN, which poisoned the multiplier
  // permanently (every later composition stays non-finite).
  ThinkTimeModel m({15.0});
  EXPECT_THROW(m.scale_rate(0, std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW(m.scale_rate(0, std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW(m.set_rate(0, std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW(m.set_rate(0, std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_DOUBLE_EQ(m.rate_multiplier(0), 1.0);
}

TEST(ThinkTimeModel, ComposedMultiplierIsClamped) {
  // Regression: composition was unbounded. A long generated trace of small
  // multiplicative steps (here 5000 x 1.5x, ~10^880) drove the multiplier
  // to inf and mean_think to 0, flooding the event queue with zero-delay
  // wakeups; the mirror-image cooling trace underflowed to denormal/0 and
  // silently killed the domain (mean_think -> inf).
  ThinkTimeModel hot({10.0});
  for (int i = 0; i < 5000; ++i) hot.scale_rate(0, 1.5);
  EXPECT_DOUBLE_EQ(hot.rate_multiplier(0), ThinkTimeModel::kMaxRateMultiplier);
  EXPECT_GT(hot.mean_think(0), 0.0);

  ThinkTimeModel cold({10.0});
  for (int i = 0; i < 5000; ++i) cold.scale_rate(0, 1.0 / 1.5);
  EXPECT_DOUBLE_EQ(cold.rate_multiplier(0), ThinkTimeModel::kMinRateMultiplier);
  EXPECT_TRUE(std::isfinite(cold.mean_think(0)));
  // Clamped is recoverable: scaling back up works (the pre-fix underflow
  // to 0 was not — 0 * anything stays 0).
  cold.scale_rate(0, 1e6);
  EXPECT_DOUBLE_EQ(cold.rate_multiplier(0), 1.0);
}

TEST(ThinkTimeModel, SetRateIsAbsoluteAndIdempotent) {
  ThinkTimeModel m({12.0});
  m.scale_rate(0, 4.0);
  m.set_rate(0, 3.0);  // absolute: replaces, does not compose with the 4x
  EXPECT_DOUBLE_EQ(m.rate_multiplier(0), 3.0);
  EXPECT_DOUBLE_EQ(m.mean_think(0), 4.0);
  m.set_rate(0, 3.0);  // replaying the same trace point changes nothing
  EXPECT_DOUBLE_EQ(m.rate_multiplier(0), 3.0);
  EXPECT_THROW(m.set_rate(0, 0.0), std::invalid_argument);
  EXPECT_THROW(m.set_rate(0, -1.0), std::invalid_argument);
  m.set_rate(0, 1e12);  // clamped to the validated range
  EXPECT_DOUBLE_EQ(m.rate_multiplier(0), ThinkTimeModel::kMaxRateMultiplier);
}

TEST(ThinkTimeModel, SampleMeanTracksScaledRate) {
  ThinkTimeModel m({20.0});
  m.scale_rate(0, 4.0);  // mean think now 5
  sim::RngStream rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += m.sample(0, rng);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(ThinkTimeModel, OutOfRangeDomainThrows) {
  ThinkTimeModel m({15.0});
  EXPECT_THROW(m.mean_think(1), std::out_of_range);
  EXPECT_THROW(m.scale_rate(5, 2.0), std::out_of_range);
}

TEST(SessionProfilePareto, SamplesStayInBounds) {
  SessionProfile p;
  p.hits_distribution = HitsDistribution::kPareto;
  p.min_hits_per_page = 5;
  p.max_hits_per_page = 50;
  sim::RngStream rng(10);
  for (int i = 0; i < 20000; ++i) {
    const int h = p.sample_hits(rng);
    ASSERT_GE(h, 5);
    ASSERT_LE(h, 50);
  }
}

TEST(SessionProfilePareto, HeavyTailSkewsLow) {
  SessionProfile p;
  p.hits_distribution = HitsDistribution::kPareto;
  p.min_hits_per_page = 5;
  p.max_hits_per_page = 50;
  sim::RngStream rng(11);
  int small = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (p.sample_hits(rng) <= 10) ++small;
  }
  // A 1.5-shape bounded Pareto puts well over half its mass near the
  // minimum (uniform would put ~13% in [5, 10]).
  EXPECT_GT(small, n / 2);
}

TEST(SessionProfilePareto, EmpiricalMeanMatchesFormula) {
  SessionProfile p;
  p.hits_distribution = HitsDistribution::kPareto;
  p.min_hits_per_page = 5;
  p.max_hits_per_page = 50;
  sim::RngStream rng(12);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += p.sample_hits(rng);
  // Discretization (floor + clamp) shifts the mean ~0.5 below the
  // continuous formula; allow a loose band.
  EXPECT_NEAR(sum / n, p.mean_hits_per_page(), 1.0);
}

TEST(SessionProfilePareto, RejectsBadShape) {
  SessionProfile p;
  p.hits_distribution = HitsDistribution::kPareto;
  p.pareto_shape = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace adattl::workload
