#include "core/domain_model.h"

#include <gtest/gtest.h>

#include "sim/random.h"

namespace adattl::core {
namespace {

std::vector<double> zipf_weights(int k) {
  return sim::ZipfDistribution(k, 1.0).probabilities();
}

TEST(DomainModel, RejectsBadConstruction) {
  EXPECT_THROW(DomainModel({}, 0.05), std::invalid_argument);
  EXPECT_THROW(DomainModel({1.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(DomainModel({1.0}, 1.0), std::invalid_argument);
  EXPECT_THROW(DomainModel({0.0, 0.0}, 0.5), std::invalid_argument);
  EXPECT_THROW(DomainModel({-1.0, 2.0}, 0.5), std::invalid_argument);
}

TEST(DomainModel, SharesSumToOne) {
  DomainModel m(zipf_weights(20), 0.05);
  double sum = 0.0;
  for (int d = 0; d < 20; ++d) sum += m.share(d);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(DomainModel, InverseRelWeightIsRankForPureZipf) {
  DomainModel m(zipf_weights(20), 0.05);
  for (int d = 0; d < 20; ++d) {
    EXPECT_NEAR(m.inverse_rel_weight(d), static_cast<double>(d + 1), 1e-9);
  }
}

TEST(DomainModel, HotDomainsUnderPaperDefaults) {
  // Pure Zipf over 20 domains with gamma = 1/20: shares 1/(j*H20) > 0.05
  // exactly for ranks 1-5 (H20 ~ 3.5977).
  DomainModel m(zipf_weights(20), 1.0 / 20);
  EXPECT_EQ(m.hot_count(), 5);
  for (int d = 0; d < 5; ++d) EXPECT_TRUE(m.is_hot(d)) << d;
  for (int d = 5; d < 20; ++d) EXPECT_FALSE(m.is_hot(d)) << d;
}

TEST(DomainModel, PartitionOneClassIsAllZero) {
  DomainModel m(zipf_weights(10), 0.1);
  for (int c : m.partition(1)) EXPECT_EQ(c, 0);
}

TEST(DomainModel, PartitionTwoClassesMatchesHotFlag) {
  DomainModel m(zipf_weights(20), 1.0 / 20);
  const std::vector<int> cls = m.partition(2);
  for (int d = 0; d < 20; ++d) {
    EXPECT_EQ(cls[static_cast<std::size_t>(d)], m.is_hot(d) ? 0 : 1);
  }
}

TEST(DomainModel, PerDomainPartitionRanksByWeight) {
  DomainModel m(zipf_weights(8), 0.1);
  const std::vector<int> cls = m.partition(kPerDomainClasses);
  // Pure Zipf weights already sorted descending: class == index.
  for (int d = 0; d < 8; ++d) EXPECT_EQ(cls[static_cast<std::size_t>(d)], d);
}

TEST(DomainModel, PerDomainPartitionHandlesUnsortedWeights) {
  DomainModel m({2.0, 5.0, 1.0}, 0.2);
  const std::vector<int> cls = m.partition(kPerDomainClasses);
  EXPECT_EQ(cls, (std::vector<int>{1, 0, 2}));
}

TEST(DomainModel, PartitionAtLeastKClassesDegeneratesToPerDomain) {
  DomainModel m(zipf_weights(5), 0.1);
  EXPECT_EQ(m.partition(5), m.partition(kPerDomainClasses));
  EXPECT_EQ(m.partition(9), m.partition(kPerDomainClasses));
}

TEST(DomainModel, LogSpacedClassesAreMonotoneInWeight) {
  DomainModel m(zipf_weights(20), 0.05);
  const std::vector<int> cls = m.partition(4);
  // Heavier domain never lands in a colder class than a lighter one.
  for (int d = 1; d < 20; ++d) {
    EXPECT_LE(cls[static_cast<std::size_t>(d - 1)], cls[static_cast<std::size_t>(d)]);
  }
  // All classes within range.
  for (int c : cls) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 4);
  }
}

TEST(DomainModel, EqualWeightsCollapseToOneClass) {
  DomainModel m(std::vector<double>(6, 2.5), 0.05);
  for (int c : m.partition(3)) EXPECT_EQ(c, 0);
}

TEST(DomainModel, ClassMeanWeightsAreDecreasing) {
  DomainModel m(zipf_weights(20), 1.0 / 20);
  for (int classes : {2, 3, 4}) {
    const std::vector<double> means = m.class_mean_weights(classes);
    for (std::size_t c = 1; c < means.size(); ++c) {
      EXPECT_LE(means[c], means[c - 1]) << "classes=" << classes << " c=" << c;
    }
  }
}

TEST(DomainModel, ClassMeanWeightsTwoClassValues) {
  DomainModel m({4.0, 2.0, 1.0, 1.0}, 0.3);  // shares .5 .25 .125 .125: hot = {0}
  const std::vector<double> means = m.class_mean_weights(2);
  ASSERT_EQ(means.size(), 2u);
  EXPECT_DOUBLE_EQ(means[0], 4.0);
  EXPECT_DOUBLE_EQ(means[1], 4.0 / 3.0);
}

TEST(DomainModel, UpdateWeightsNotifiesSubscribers) {
  DomainModel m(zipf_weights(5), 0.1);
  int notified = 0;
  m.subscribe([&] { ++notified; });
  m.update_weights({5, 4, 3, 2, 1});
  m.update_weights({1, 2, 3, 4, 5});
  EXPECT_EQ(notified, 2);
  EXPECT_DOUBLE_EQ(m.weight(0), 1.0);
}

TEST(DomainModel, UpdateWeightsRejectsSizeChange) {
  DomainModel m(zipf_weights(5), 0.1);
  EXPECT_THROW(m.update_weights({1.0, 2.0}), std::invalid_argument);
}

TEST(DomainModel, UpdateCanInvertHotSet) {
  DomainModel m({10.0, 1.0, 1.0, 1.0}, 0.3);
  EXPECT_TRUE(m.is_hot(0));
  EXPECT_FALSE(m.is_hot(3));
  m.update_weights({1.0, 1.0, 1.0, 10.0});
  EXPECT_FALSE(m.is_hot(0));
  EXPECT_TRUE(m.is_hot(3));
}

TEST(DomainModel, ZeroWeightDomainGetsLargestKnownFactor) {
  DomainModel m({8.0, 2.0, 0.0}, 0.2);
  // inverse_rel_weight of the zero-load domain clamps to max/min_positive.
  EXPECT_DOUBLE_EQ(m.inverse_rel_weight(2), 4.0);
}

}  // namespace
}  // namespace adattl::core
