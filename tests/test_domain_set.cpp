#include "workload/domain_set.h"

#include <gtest/gtest.h>

#include <numeric>

namespace adattl::workload {
namespace {

TEST(DomainSet, ZipfAllocationSumsToTotal) {
  const DomainSet ds = make_zipf_domains(20, 500, 15.0);
  EXPECT_EQ(ds.num_domains(), 20);
  EXPECT_EQ(ds.total_clients(), 500);
}

TEST(DomainSet, ZipfAllocationIsSkewedAndDecreasing) {
  const DomainSet ds = make_zipf_domains(20, 500, 15.0);
  for (int j = 1; j < 20; ++j) {
    EXPECT_GE(ds.clients[static_cast<std::size_t>(j - 1)],
              ds.clients[static_cast<std::size_t>(j)]);
  }
  // Pure Zipf over 20: rank 1 holds 1/H20 ~ 27.8% of clients.
  EXPECT_NEAR(ds.clients[0], 139, 2);
}

TEST(DomainSet, PaperSkewInvariant75PercentFrom10PercentHolds) {
  // The paper motivates Zipf with "75% of the client requests come from
  // only ~10-25% of the domains". With pure Zipf over 20 domains the top
  // 25% of domains (5) carry ~64% and the top 40% carry ~75%.
  const DomainSet ds = make_zipf_domains(20, 500, 15.0);
  const int top5 = std::accumulate(ds.clients.begin(), ds.clients.begin() + 5, 0);
  EXPECT_GT(top5, 300);  // > 60% of 500 from 25% of the domains
}

TEST(DomainSet, UniformAllocationIsFlat) {
  const DomainSet ds = make_uniform_domains(20, 500, 15.0);
  for (int c : ds.clients) EXPECT_EQ(c, 25);
}

TEST(DomainSet, TrueWeightsProportionalToClientsOverThink) {
  DomainSet ds;
  ds.clients = {10, 20};
  ds.mean_think_sec = {5.0, 20.0};
  const std::vector<double> w = ds.true_weights();
  EXPECT_DOUBLE_EQ(w[0], 2.0);
  EXPECT_DOUBLE_EQ(w[1], 1.0);
}

TEST(DomainSet, ValidationCatchesBadSets) {
  DomainSet ds;
  EXPECT_THROW(ds.validate(), std::invalid_argument);
  ds.clients = {5};
  ds.mean_think_sec = {};
  EXPECT_THROW(ds.validate(), std::invalid_argument);
  ds.mean_think_sec = {0.0};
  EXPECT_THROW(ds.validate(), std::invalid_argument);
  ds.mean_think_sec = {15.0};
  EXPECT_NO_THROW(ds.validate());
  ds.clients = {0};
  EXPECT_THROW(ds.validate(), std::invalid_argument);  // no clients at all
}

TEST(Perturbation, ZeroErrorIsNoop) {
  DomainSet ds = make_zipf_domains(10, 100, 15.0);
  const DomainSet before = ds;
  apply_rate_perturbation(ds, 0.0);
  EXPECT_EQ(ds.mean_think_sec, before.mean_think_sec);
}

TEST(Perturbation, BusiestDomainGrowsByErrorPercent) {
  DomainSet ds = make_zipf_domains(10, 100, 15.0);
  const std::vector<double> before = ds.true_weights();
  apply_rate_perturbation(ds, 30.0);
  const std::vector<double> after = ds.true_weights();
  EXPECT_NEAR(after[0] / before[0], 1.3, 1e-9);
}

TEST(Perturbation, TotalOfferedRatePreserved) {
  DomainSet ds = make_zipf_domains(10, 100, 15.0);
  const std::vector<double> before = ds.true_weights();
  const double total_before = std::accumulate(before.begin(), before.end(), 0.0);
  apply_rate_perturbation(ds, 50.0);
  const std::vector<double> after = ds.true_weights();
  const double total_after = std::accumulate(after.begin(), after.end(), 0.0);
  EXPECT_NEAR(total_after, total_before, 1e-9);
}

TEST(Perturbation, OtherDomainsShrinkProportionally) {
  DomainSet ds = make_zipf_domains(10, 100, 15.0);
  const std::vector<double> before = ds.true_weights();
  apply_rate_perturbation(ds, 20.0);
  const std::vector<double> after = ds.true_weights();
  const double ratio1 = after[1] / before[1];
  for (std::size_t j = 2; j < after.size(); ++j) {
    EXPECT_NEAR(after[j] / before[j], ratio1, 1e-9) << j;
  }
  EXPECT_LT(ratio1, 1.0);
}

TEST(Perturbation, ClientCountsUntouched) {
  DomainSet ds = make_zipf_domains(10, 100, 15.0);
  const std::vector<int> before = ds.clients;
  apply_rate_perturbation(ds, 40.0);
  EXPECT_EQ(ds.clients, before);
}

TEST(Perturbation, SkewIncreases) {
  // The paper calls this a worst case precisely because skew grows.
  DomainSet ds = make_zipf_domains(10, 100, 15.0);
  const std::vector<double> before = ds.true_weights();
  const double skew_before = before[0] / std::accumulate(before.begin(), before.end(), 0.0);
  apply_rate_perturbation(ds, 50.0);
  const std::vector<double> after = ds.true_weights();
  const double skew_after = after[0] / std::accumulate(after.begin(), after.end(), 0.0);
  EXPECT_GT(skew_after, skew_before);
}

TEST(Perturbation, RejectsImpossibleErrors) {
  DomainSet ds = make_zipf_domains(2, 10, 15.0);
  EXPECT_THROW(apply_rate_perturbation(ds, -5.0), std::invalid_argument);
  // Growing the busiest domain beyond the whole total is impossible.
  EXPECT_THROW(apply_rate_perturbation(ds, 10000.0), std::invalid_argument);
  DomainSet single;
  single.clients = {5};
  single.mean_think_sec = {15.0};
  EXPECT_THROW(apply_rate_perturbation(single, 10.0), std::invalid_argument);
}

}  // namespace
}  // namespace adattl::workload
