// Fault-plan parsing and normalization: the colon-packed spec parsers, the
// fault-file text format, schedule validation/merging, and the outage
// calendar's half-open interval semantics.
#include "fault/fault_schedule.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "fault/dns_outage.h"

namespace adattl::fault {
namespace {

TEST(FaultSpecParsers, CrashSpec) {
  const CrashWindow w = FaultSchedule::parse_crash("900:600:2");
  EXPECT_DOUBLE_EQ(w.start_sec, 900.0);
  EXPECT_DOUBLE_EQ(w.duration_sec, 600.0);
  EXPECT_EQ(w.server, 2);
  EXPECT_THROW(FaultSchedule::parse_crash("900:600"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse_crash("900:600:2:1"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse_crash("abc:600:2"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse_crash(""), std::invalid_argument);
}

TEST(FaultSpecParsers, DegradeSpec) {
  const DegradeWindow w = FaultSchedule::parse_degrade("1200:900:1:0.5");
  EXPECT_DOUBLE_EQ(w.start_sec, 1200.0);
  EXPECT_DOUBLE_EQ(w.duration_sec, 900.0);
  EXPECT_EQ(w.server, 1);
  EXPECT_DOUBLE_EQ(w.factor, 0.5);
  EXPECT_THROW(FaultSchedule::parse_degrade("1200:900:1"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse_degrade("1200:900:1:x"), std::invalid_argument);
}

TEST(FaultSpecParsers, PauseAndDnsOutageSpecs) {
  const PauseWindow p = FaultSchedule::parse_pause("600:300:0");
  EXPECT_DOUBLE_EQ(p.start_sec, 600.0);
  EXPECT_EQ(p.server, 0);
  const DnsOutageWindow o = FaultSchedule::parse_dns_outage("1000:120");
  EXPECT_DOUBLE_EQ(o.start_sec, 1000.0);
  EXPECT_DOUBLE_EQ(o.duration_sec, 120.0);
  EXPECT_THROW(FaultSchedule::parse_dns_outage("1000"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse_dns_outage("1000:120:5"), std::invalid_argument);
}

TEST(FaultSpecParsers, ScaleAndResizeSpecs) {
  const ScaleEvent up = FaultSchedule::parse_scale("500:2", true);
  EXPECT_DOUBLE_EQ(up.start_sec, 500.0);
  EXPECT_EQ(up.server, 2);
  EXPECT_TRUE(up.up);
  const ScaleEvent down = FaultSchedule::parse_scale("700:3", false);
  EXPECT_EQ(down.server, 3);
  EXPECT_FALSE(down.up);
  EXPECT_THROW(FaultSchedule::parse_scale("500", true), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse_scale("500:2:1", true), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse_scale("x:2", true), std::invalid_argument);

  const ResizeEvent r = FaultSchedule::parse_resize("800:1:1.5");
  EXPECT_DOUBLE_EQ(r.start_sec, 800.0);
  EXPECT_EQ(r.server, 1);
  EXPECT_DOUBLE_EQ(r.factor, 1.5);
  EXPECT_THROW(FaultSchedule::parse_resize("800:1"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse_resize("800:1:1.5:2"), std::invalid_argument);
}

TEST(FaultText, ParsesElasticDirectives) {
  const FaultSchedule s = parse_fault_text(
      "scale-down = 700:3\n"
      "scale-up   = 900:3\n"
      "resize     = 800:1:0.5\n");
  ASSERT_EQ(s.scale_events.size(), 2u);
  EXPECT_FALSE(s.scale_events[0].up);
  EXPECT_TRUE(s.scale_events[1].up);
  ASSERT_EQ(s.resizes.size(), 1u);
  EXPECT_DOUBLE_EQ(s.resizes[0].factor, 0.5);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_FALSE(s.empty());
}

TEST(FaultSchedule, ValidatesElasticEvents) {
  FaultSchedule scale;
  scale.scale_events.push_back({500.0, 2, false});
  EXPECT_NO_THROW(scale.validate(7));
  EXPECT_THROW(scale.validate(2), std::invalid_argument);  // server out of range

  FaultSchedule past;
  past.scale_events.push_back({-1.0, 0, true});
  EXPECT_THROW(past.validate(7), std::invalid_argument);

  FaultSchedule bad_resize;
  bad_resize.resizes.push_back({10.0, 0, 0.0});
  EXPECT_THROW(bad_resize.validate(7), std::invalid_argument);

  FaultSchedule merged = parse_fault_text("scale-down = 1:0\n");
  merged.merge(parse_fault_text("resize = 2:1:2.0\nscale-up = 3:0\n"));
  EXPECT_EQ(merged.scale_events.size(), 2u);
  EXPECT_EQ(merged.resizes.size(), 1u);
}

TEST(FaultText, ParsesDirectivesCommentsAndBlanks) {
  const FaultSchedule s = parse_fault_text(
      "# chaos plan\n"
      "\n"
      "crash      = 900:600:2\n"
      "degrade    = 1200:900:1:0.5\n"
      "pause      = 600:300:0   # trailing comment\n"
      "dns-outage = 1000:120\n");
  ASSERT_EQ(s.crashes.size(), 1u);
  ASSERT_EQ(s.degradations.size(), 1u);
  ASSERT_EQ(s.pauses.size(), 1u);
  ASSERT_EQ(s.dns_outages.size(), 1u);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.crashes[0].server, 2);
  EXPECT_DOUBLE_EQ(s.degradations[0].factor, 0.5);
}

TEST(FaultText, UnknownKeyNamesTheLine) {
  try {
    parse_fault_text("crash = 1:1:0\nbogus = 3\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

TEST(FaultText, EmptyTextYieldsEmptySchedule) {
  EXPECT_TRUE(parse_fault_text("").empty());
  EXPECT_TRUE(parse_fault_text("# only comments\n\n").empty());
}

TEST(FaultFile, MissingFileThrows) {
  EXPECT_THROW(load_fault_file("/nonexistent/chaos.faults"), std::runtime_error);
}

TEST(FaultSchedule, ValidateChecksEveryWindow) {
  FaultSchedule s;
  s.crashes.push_back({100.0, 60.0, 2});
  EXPECT_NO_THROW(s.validate(7));
  EXPECT_THROW(s.validate(2), std::invalid_argument);  // server out of range

  FaultSchedule neg;
  neg.pauses.push_back({-1.0, 10.0, 0});
  EXPECT_THROW(neg.validate(7), std::invalid_argument);

  FaultSchedule zero_dur;
  zero_dur.dns_outages.push_back({10.0, 0.0});
  EXPECT_THROW(zero_dur.validate(7), std::invalid_argument);

  FaultSchedule bad_factor;
  bad_factor.degradations.push_back({10.0, 5.0, 0, 0.0});
  EXPECT_THROW(bad_factor.validate(7), std::invalid_argument);
}

TEST(FaultSchedule, MergeAppendsAllWindowKinds) {
  FaultSchedule a = parse_fault_text("crash = 1:1:0\n");
  const FaultSchedule b = parse_fault_text("crash = 2:1:1\ndns-outage = 5:5\n");
  a.merge(b);
  EXPECT_EQ(a.crashes.size(), 2u);
  EXPECT_EQ(a.dns_outages.size(), 1u);
  EXPECT_EQ(a.size(), 3u);
}

TEST(FaultSchedule, ApplyDirectiveRejectsNonFaultKeys) {
  FaultSchedule s;
  EXPECT_TRUE(s.apply_directive("crash", "1:1:0"));
  EXPECT_FALSE(s.apply_directive("policy", "RR"));
  EXPECT_THROW(s.apply_directive("crash", "1:1"), std::invalid_argument);
}

TEST(DnsOutageCalendarTest, HalfOpenBoundaries) {
  const DnsOutageCalendar cal({{100.0, 50.0}});
  EXPECT_FALSE(cal.unreachable(99.999));
  EXPECT_TRUE(cal.unreachable(100.0));  // closed at the start
  EXPECT_TRUE(cal.unreachable(149.999));
  EXPECT_FALSE(cal.unreachable(150.0));  // open at recovery: reachable again
}

TEST(DnsOutageCalendarTest, NormalizesOverlapAndOrder) {
  // Declared out of order with an overlap and an adjacency: normalized to
  // two disjoint windows [50, 180) and [300, 360).
  const DnsOutageCalendar cal({{120.0, 60.0}, {50.0, 70.0}, {300.0, 60.0}});
  ASSERT_EQ(cal.windows().size(), 2u);
  EXPECT_DOUBLE_EQ(cal.windows()[0].start_sec, 50.0);
  EXPECT_DOUBLE_EQ(cal.windows()[0].duration_sec, 130.0);
  EXPECT_DOUBLE_EQ(cal.windows()[1].start_sec, 300.0);
  EXPECT_TRUE(cal.unreachable(119.0));  // inside the merged gap
  EXPECT_FALSE(cal.unreachable(200.0));
  EXPECT_DOUBLE_EQ(cal.outage_seconds(1000.0), 190.0);
}

TEST(DnsOutageCalendarTest, OutageSecondsClippedToHorizon) {
  const DnsOutageCalendar cal({{100.0, 100.0}});
  EXPECT_DOUBLE_EQ(cal.outage_seconds(150.0), 50.0);
  EXPECT_DOUBLE_EQ(cal.outage_seconds(50.0), 0.0);
  EXPECT_DOUBLE_EQ(cal.outage_seconds(1000.0), 100.0);
}

TEST(DnsOutageCalendarTest, EmptyCalendarAlwaysReachable) {
  const DnsOutageCalendar cal;
  EXPECT_TRUE(cal.empty());
  EXPECT_FALSE(cal.unreachable(0.0));
  EXPECT_DOUBLE_EQ(cal.outage_seconds(1e6), 0.0);
}

}  // namespace
}  // namespace adattl::fault
