// Golden equivalence: a 1-shard daemon core must be bit-compatible with
// the serial core::DnsScheduler + DnsFrontend pipeline it replaced. This
// pins the sharding refactor: same policy, same seed, same query stream →
// byte-identical responses (addresses AND adaptive TTLs) and identical
// decision/assignment counters. Runs socket-free against ShardCore.
#include "dnswire/daemon.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/policy_factory.h"
#include "dnswire/ecs.h"
#include "dnswire/frontend.h"
#include "dnswire/message.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace adattl::dnswire {
namespace {

constexpr char kSite[] = "www.site.org";
const std::vector<std::uint32_t> kServers = {0x0a000001, 0x0a000002, 0x0a000003,
                                             0x0a000004, 0x0a000005};

DaemonConfig make_config(const std::string& policy, bool ecs) {
  DaemonConfig cfg;
  cfg.site_name = kSite;
  cfg.server_ipv4 = kServers;
  cfg.policy = policy;
  cfg.num_domains = 20;
  cfg.seed = 1234;
  cfg.ecs_enabled = ecs;
  return cfg;
}

/// The serial reference: exactly the pipeline the pre-shard daemon ran —
/// one scheduler bundle, one frontend, domain keys from the legacy source
/// hash. Built from the same factory inputs ShardCore uses.
struct SerialReference {
  sim::Simulator simulator;
  sim::RngStream rng;
  core::AlarmRegistry alarms;
  core::SchedulerBundle bundle;
  std::unique_ptr<DnsFrontend> frontend;

  SerialReference(const DaemonConfig& cfg, int shard_index = 0)
      : rng(cfg.seed + static_cast<std::uint64_t>(shard_index)),
        alarms(static_cast<int>(cfg.server_ipv4.size()), 0.9) {
    core::SchedulerFactoryConfig fc;
    if (cfg.capacities.empty()) {
      fc.capacities.assign(cfg.server_ipv4.size(), 100.0);
    } else {
      fc.capacities = cfg.capacities;
    }
    fc.initial_weights = sim::ZipfDistribution(cfg.num_domains, 1.0).probabilities();
    fc.class_threshold = 1.0 / cfg.num_domains;
    bundle = core::make_scheduler(cfg.policy, fc, alarms, simulator, rng);
    frontend = std::make_unique<DnsFrontend>(*bundle.scheduler, cfg.site_name,
                                             cfg.server_ipv4);
  }
};

/// A deterministic pseudo-random stream of (source ip, source port) pairs —
/// stands in for resolver churn without real sockets.
struct QuerySource {
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
};

void expect_equivalent(const std::string& policy, bool ecs, int queries,
                       std::vector<double> capacities = {}) {
  DaemonConfig cfg = make_config(policy, ecs);
  cfg.capacities = std::move(capacities);
  ShardCore core(cfg, /*shard_index=*/0);
  SerialReference ref(cfg);

  QuerySource src;
  for (int i = 0; i < queries; ++i) {
    const std::uint64_t r = src.next();
    const std::uint32_t ip = static_cast<std::uint32_t>(r);
    const std::uint16_t port = static_cast<std::uint16_t>(r >> 32) | 1024;

    auto query = encode_query(static_cast<std::uint16_t>(i), kSite);
    if (ecs && i % 3 != 0) {  // mix ECS and plain queries
      ClientSubnet subnet{};
      subnet.family = kEcsFamilyIpv4;
      subnet.source_prefix = 24;
      subnet.address_len = 3;
      subnet.address[0] = static_cast<std::uint8_t>(r >> 48);
      subnet.address[1] = static_cast<std::uint8_t>(r >> 56);
      subnet.address[2] = static_cast<std::uint8_t>(r >> 40);
      append_ecs_option(&query, subnet);
    }

    // The serial reference derives its key exactly the way the daemon
    // does — ShardCore's only job on top is the socket-free plumbing.
    const web::DomainId domain = derive_domain_key(
        query.data(), query.size(), ip, port, cfg.num_domains, cfg.ecs_enabled);
    const std::vector<std::uint8_t> expected = ref.frontend->handle(query, domain);
    const std::vector<std::uint8_t>& got =
        core.handle(query.data(), query.size(), ip, port);
    ASSERT_EQ(got, expected) << policy << " diverged at query " << i;
  }

  EXPECT_EQ(core.scheduler().decisions(), ref.bundle.scheduler->decisions());
  EXPECT_EQ(core.scheduler().assignments(), ref.bundle.scheduler->assignments());
  EXPECT_EQ(core.frontend().answered(), ref.frontend->answered());
  EXPECT_EQ(core.frontend().refused(), ref.frontend->refused());
}

TEST(DnsdGolden, RoundRobinMatchesSerial) { expect_equivalent("RR", false, 2000); }

TEST(DnsdGolden, AdaptiveTtlMatchesSerial) {
  expect_equivalent("DRR2-TTL/S_K", false, 2000);
}

TEST(DnsdGolden, AdaptiveTtlWithEcsMatchesSerial) {
  expect_equivalent("DRR2-TTL/S_K", true, 2000);
}

TEST(DnsdGolden, ProbabilisticPolicyMatchesSerial) {
  // Heterogeneous capacities make PRR2 consume the RNG stream on every
  // decision — the strongest equivalence check, since any extra or
  // missing draw desynchronizes the sequences permanently.
  expect_equivalent("PRR2-TTL/K", true, 2000, {100.0, 60.0, 80.0, 40.0, 90.0});
}

TEST(DnsdGolden, LegacySourceHashIsPinned) {
  // The exact mapping the original single-socket daemon used. If this
  // changes, cached resolver→domain assignments shift across a deploy.
  EXPECT_EQ(source_hash(0x7f000001u, 5353), 0x7f000001u ^ (5353u * 2654435761u));
  EXPECT_EQ(source_hash(0, 0), 0u);
}

TEST(DnsdGolden, ShardSeedsAreDecorrelated) {
  // Shards get distinct RNG streams (seed + shard_index): two shards
  // running a probabilistic policy over the same queries must not produce
  // identical decision sequences (they'd synchronize their server picks).
  DaemonConfig cfg = make_config("PRR2-TTL/K", false);
  // Heterogeneous capacities: with equal ones PRR's acceptance probability
  // is 1 everywhere and the policy degenerates to deterministic RR, which
  // would make this test vacuous.
  cfg.capacities = {100.0, 60.0, 80.0, 40.0, 90.0};
  ShardCore shard0(cfg, 0);
  ShardCore shard1(cfg, 1);
  SerialReference ref1(cfg, /*shard_index=*/1);

  QuerySource src;
  int diverged = 0;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t r = src.next();
    const std::uint32_t ip = static_cast<std::uint32_t>(r);
    const std::uint16_t port = static_cast<std::uint16_t>(r >> 32) | 1024;
    const auto query = encode_query(static_cast<std::uint16_t>(i), kSite);
    const auto a = shard0.handle(query.data(), query.size(), ip, port);
    const auto b = shard1.handle(query.data(), query.size(), ip, port);
    if (a != b) diverged++;
    // And shard 1 must itself be reproducible from the seed rule.
    const web::DomainId domain = derive_domain_key(query.data(), query.size(), ip,
                                                   port, cfg.num_domains, false);
    ASSERT_EQ(b, ref1.frontend->handle(query, domain));
  }
  EXPECT_GT(diverged, 0) << "shards produced identical probabilistic sequences";
}

}  // namespace
}  // namespace adattl::dnswire
