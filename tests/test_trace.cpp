#include "experiment/trace.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "experiment/site.h"

namespace adattl::experiment {
namespace {

TEST(TraceRecorder, RecordsSamplesWithMax) {
  TraceRecorder rec;
  rec.observe(8.0, {0.2, 0.7});
  rec.observe(16.0, {0.9, 0.1});
  ASSERT_EQ(rec.samples().size(), 2u);
  EXPECT_DOUBLE_EQ(rec.samples()[0].time, 8.0);
  EXPECT_DOUBLE_EQ(rec.samples()[0].max_utilization, 0.7);
  EXPECT_DOUBLE_EQ(rec.samples()[1].max_utilization, 0.9);
}

TEST(TraceRecorder, CsvHasHeaderAndRows) {
  TraceRecorder rec;
  rec.observe(8.0, {0.25, 0.5});
  const std::string csv = rec.to_csv();
  EXPECT_NE(csv.find("time,s0,s1,max\n"), std::string::npos);
  EXPECT_NE(csv.find("8.000,0.250000,0.500000,0.500000\n"), std::string::npos);
}

TEST(TraceRecorder, EmptyTraceStillHasHeader) {
  TraceRecorder rec;
  EXPECT_EQ(rec.to_csv(), "time,max\n");
}

TEST(TraceRecorder, CapDropsExcessSamples) {
  TraceRecorder rec(2);
  rec.observe(1.0, {0.1});
  rec.observe(2.0, {0.2});
  rec.observe(3.0, {0.3});
  EXPECT_EQ(rec.samples().size(), 2u);
  EXPECT_EQ(rec.dropped_count(), 1u);
}

TEST(TraceRecorder, AttachedToSiteRecordsEveryTick) {
  SimulationConfig cfg;
  cfg.policy = "RR";
  cfg.warmup_sec = 0.0;
  cfg.duration_sec = 800.0;  // 100 ticks at 8 s
  cfg.seed = 77;
  Site site(cfg);
  TraceRecorder rec;
  rec.attach(site.monitor());
  site.run();
  EXPECT_EQ(rec.samples().size(), 100u);
  // Utilization columns match the cluster size.
  EXPECT_EQ(rec.samples().front().utilizations.size(), 7u);
  // Samples are on the 8-second grid.
  EXPECT_DOUBLE_EQ(rec.samples()[0].time, 8.0);
  EXPECT_DOUBLE_EQ(rec.samples()[99].time, 800.0);
}

TEST(TraceRecorder, WriteCsvRoundTrips) {
  TraceRecorder rec;
  rec.observe(8.0, {0.5});
  const std::string path = ::testing::TempDir() + "/adattl_trace_test.csv";
  rec.write_csv(path);
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[256] = {};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buf, n), rec.to_csv());
}

TEST(TraceRecorder, WriteCsvBadPathThrows) {
  TraceRecorder rec;
  EXPECT_THROW(rec.write_csv("/nonexistent-dir-xyz/trace.csv"), std::runtime_error);
}

TEST(RateShiftIntegration, FlashCrowdRaisesLoadAndEstimatorNotices) {
  SimulationConfig cfg;
  cfg.cluster = web::table2_cluster(35);
  cfg.policy = "PRR2-TTL/K";
  cfg.oracle_weights = false;
  cfg.warmup_sec = 100.0;
  cfg.duration_sec = 2000.0;
  cfg.seed = 13;
  // Domain 15 (cold under Zipf) becomes 12x hotter at t = 600.
  cfg.rate_shifts.push_back({600.0, 15, 12.0});
  Site site(cfg);
  site.run();
  EXPECT_DOUBLE_EQ(site.think_time_model().rate_multiplier(15), 12.0);
  // The online estimator must now rank domain 15 well above its Zipf
  // neighbours (14, 16).
  EXPECT_GT(site.domain_model().weight(15), 3.0 * site.domain_model().weight(14));
  EXPECT_GT(site.domain_model().weight(15), 3.0 * site.domain_model().weight(16));
}

TEST(RateShiftIntegration, ShiftsValidated) {
  SimulationConfig cfg;
  cfg.rate_shifts.push_back({-5.0, 0, 2.0});
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.rate_shifts = {{10.0, 99, 2.0}};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.rate_shifts = {{10.0, 0, 0.0}};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.rate_shifts = {{10.0, 0, 2.0}};
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ResponseTimeMetrics, OverloadInflatesWeakServerResponse) {
  SimulationConfig cfg;
  cfg.cluster = web::table2_cluster(65);
  cfg.policy = "RR";
  cfg.warmup_sec = 100.0;
  cfg.duration_sec = 1500.0;
  cfg.seed = 21;
  const RunResult rr = Site(cfg).run();
  cfg.policy = "DRR2-TTL/S_K";
  const RunResult adaptive = Site(cfg).run();
  EXPECT_GT(rr.mean_page_response_sec, 0.0);
  EXPECT_GT(adaptive.mean_page_response_sec, 0.0);
  // RR pins hot domains onto 0.35-capacity servers for 240 s at a time;
  // its mean response time must be clearly worse.
  EXPECT_GT(rr.mean_page_response_sec, adaptive.mean_page_response_sec);
  EXPECT_EQ(rr.per_server_response_sec.size(), 7u);
}

}  // namespace
}  // namespace adattl::experiment
