#include "core/dal_policy.h"

#include <gtest/gtest.h>

namespace adattl::core {
namespace {

class DalPolicyTest : public ::testing::Test {
 protected:
  DalPolicyTest() : domains({4.0, 2.0, 1.0, 1.0}, 0.3) {}  // shares .5 .25 .125 .125

  sim::Simulator simulator;
  DomainModel domains;
  std::vector<bool> all{true, true, true};
};

TEST_F(DalPolicyTest, FirstPickIsLowestNormalizedLoad) {
  DalPolicy dal(simulator, domains, {100.0, 80.0, 50.0});
  // All accumulated loads zero: ties resolve to the first (largest) server.
  EXPECT_EQ(dal.select(0, all), 0);
}

TEST_F(DalPolicyTest, AccumulatedLoadSteersAway) {
  DalPolicy dal(simulator, domains, {100.0, 100.0, 100.0});
  dal.on_assign(0, 0, 1000.0);  // domain 0 (share .5) pinned on server 0
  EXPECT_EQ(dal.select(1, all), 1);
  dal.on_assign(1, 1, 1000.0);  // domain 1 (share .25) on server 1
  // Server 2 has zero accumulated load: next pick.
  EXPECT_EQ(dal.select(2, all), 2);
  dal.on_assign(2, 2, 1000.0);  // share .125 on server 2
  // Loads now {.5, .25, .125}: server 2 still lightest.
  EXPECT_EQ(dal.select(3, all), 2);
}

TEST_F(DalPolicyTest, CapacityNormalizationPrefersBigServers) {
  DalPolicy dal(simulator, domains, {200.0, 50.0, 50.0});
  dal.on_assign(0, 0, 1000.0);  // server 0 carries .5 -> normalized .0025
  // Server 1 and 2 empty -> normalized 0 -> pick server 1 first.
  EXPECT_EQ(dal.select(1, all), 1);
  dal.on_assign(3, 1, 1000.0);  // server 1 carries .125 -> normalized .0025
  // Server 2 still empty.
  EXPECT_EQ(dal.select(2, all), 2);
  dal.on_assign(2, 2, 1000.0);  // server 2 carries .125 -> normalized .0025
  // All tie at .0025: first wins; its larger capacity absorbs more load.
  EXPECT_EQ(dal.select(1, all), 0);
}

TEST_F(DalPolicyTest, LoadDecaysWhenTtlExpires) {
  DalPolicy dal(simulator, domains, {100.0, 100.0, 100.0});
  dal.on_assign(0, 0, 60.0);
  EXPECT_DOUBLE_EQ(dal.accumulated(0), 0.5);
  simulator.run_until(59.0);
  EXPECT_DOUBLE_EQ(dal.accumulated(0), 0.5);
  simulator.run_until(61.0);
  EXPECT_DOUBLE_EQ(dal.accumulated(0), 0.0);
}

TEST_F(DalPolicyTest, HonorsEligibilityMask) {
  DalPolicy dal(simulator, domains, {100.0, 100.0, 100.0});
  std::vector<bool> only_last{false, false, true};
  EXPECT_EQ(dal.select(0, only_last), 2);
}

TEST_F(DalPolicyTest, StationarySharesAreCapacityProportional) {
  DalPolicy dal(simulator, domains, {100.0, 60.0, 40.0});
  const std::vector<double> s = dal.stationary_shares();
  EXPECT_NEAR(s[0], 0.5, 1e-12);
  EXPECT_NEAR(s[1], 0.3, 1e-12);
  EXPECT_NEAR(s[2], 0.2, 1e-12);
}

TEST_F(DalPolicyTest, RejectsBadCapacities) {
  EXPECT_THROW(DalPolicy(simulator, domains, {}), std::invalid_argument);
  EXPECT_THROW(DalPolicy(simulator, domains, {100.0, 0.0}), std::invalid_argument);
}

TEST_F(DalPolicyTest, WeightUpdatesAffectSubsequentAccumulation) {
  DalPolicy dal(simulator, domains, {100.0, 100.0, 100.0});
  domains.update_weights({1.0, 1.0, 1.0, 7.0});  // domain 3 becomes dominant
  dal.on_assign(3, 0, 1000.0);
  EXPECT_DOUBLE_EQ(dal.accumulated(0), 0.7);
}

}  // namespace
}  // namespace adattl::core
