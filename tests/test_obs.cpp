// Observability layer: metrics registry semantics, tracer ring buffer and
// exporters, phase profiler, and end-to-end wiring through a Site run —
// including the invariant that enabling observability never changes the
// simulation results.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>

#include "experiment/report.h"
#include "experiment/runner.h"
#include "experiment/site.h"
#include "obs/event_tracer.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace adattl {
namespace {

// ---------------------------------------------------------------- registry

TEST(MetricsRegistry, CounterGaugeHistogramBasics) {
  obs::MetricsRegistry registry;
  obs::Counter c = registry.counter("c");
  obs::Gauge g = registry.gauge("g");
  obs::HistogramHandle h = registry.histogram("h", 10.0, 10);

  c.inc();
  c.inc(41);
  g.set(2.5);
  g.add(0.5);
  h.observe(0.5);    // bin 0
  h.observe(9.99);   // bin 9
  h.observe(10.0);   // overflow
  h.observe(-1.0);   // clamps to bin 0

  EXPECT_EQ(c.value(), 42u);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  EXPECT_EQ(h.cell().count, 4u);
  EXPECT_EQ(h.cell().bins[0], 2u);
  EXPECT_EQ(h.cell().bins[9], 1u);
  EXPECT_EQ(h.cell().bins[10], 1u);  // overflow slot
  EXPECT_EQ(registry.size(), 3u);
}

TEST(MetricsRegistry, SameNameSharesOneCell) {
  // Per-instance components (e.g. 20 name servers) register the same name
  // and must all hit one aggregate cell.
  obs::MetricsRegistry registry;
  obs::Counter a = registry.counter("ns.cache_hits");
  obs::Counter b = registry.counter("ns.cache_hits");
  a.inc();
  b.inc();
  EXPECT_EQ(a.value(), 2u);
  EXPECT_EQ(b.value(), 2u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  obs::MetricsRegistry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("x", 1.0, 4), std::invalid_argument);
  registry.histogram("h", 1.0, 4);
  EXPECT_THROW(registry.histogram("h", 2.0, 4), std::invalid_argument);  // shape change
  EXPECT_THROW(registry.histogram("h", 1.0, 8), std::invalid_argument);
}

TEST(MetricsRegistry, UnboundHandlesAreSafeNoOps) {
  obs::Counter c;
  obs::Gauge g;
  obs::HistogramHandle h;
  c.inc(7);
  g.set(1.0);
  h.observe(0.5);  // pure no-ops: no cell anywhere changes
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.cell().count, 0u);
}

TEST(MetricsRegistry, SnapshotDetachesAndFinds) {
  obs::MetricsRegistry registry;
  obs::Counter c = registry.counter("done");
  obs::HistogramHandle h = registry.histogram("lat", 2.0, 4);
  c.inc(3);
  h.observe(1.0);
  h.observe(5.0);

  const obs::MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.metrics.size(), 2u);
  const obs::MetricsSnapshot::Metric* done = snap.find("done");
  ASSERT_NE(done, nullptr);
  EXPECT_EQ(done->kind, obs::MetricKind::kCounter);
  EXPECT_DOUBLE_EQ(done->value, 3.0);

  const obs::MetricsSnapshot::Metric* lat = snap.find("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 2u);
  EXPECT_DOUBLE_EQ(lat->sum, 6.0);
  ASSERT_EQ(lat->bins.size(), 5u);
  EXPECT_EQ(lat->bins[2], 1u);
  EXPECT_EQ(lat->bins[4], 1u);  // overflow

  EXPECT_EQ(snap.find("missing"), nullptr);

  // Detached: later updates don't retroactively change the snapshot.
  c.inc();
  EXPECT_DOUBLE_EQ(snap.find("done")->value, 3.0);
}

TEST(MetricsRegistry, SnapshotSerializesAsJson) {
  obs::MetricsRegistry registry;
  registry.counter("a.count").inc(5);
  registry.gauge("b.depth").set(1.5);
  registry.histogram("c.lat", 1.0, 2).observe(0.3);
  const std::string json = experiment::metrics_to_json(registry.snapshot());
  EXPECT_NE(json.find("\"a.count\":{\"kind\":\"counter\",\"value\":5}"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"b.depth\":{\"kind\":\"gauge\",\"value\":1.5}"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"c.lat\":{\"kind\":\"histogram\",\"count\":1"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"bins\":[1,0,0]"), std::string::npos) << json;
}

// ----------------------------------------------------------------- tracer

TEST(EventTracer, RecordsInOrderAndWraps) {
  obs::EventTracer tracer(4);
  EXPECT_THROW(obs::EventTracer(0), std::invalid_argument);

  for (int i = 0; i < 6; ++i) {
    tracer.record(static_cast<double>(i), obs::TraceKind::kDecision, i, 0, 0.0);
  }
  EXPECT_EQ(tracer.capacity(), 4u);
  EXPECT_EQ(tracer.total_recorded(), 6u);
  EXPECT_EQ(tracer.dropped(), 2u);

  const auto records = tracer.records();
  ASSERT_EQ(records.size(), 4u);
  // Oldest two (0, 1) overwritten; the rest retained chronologically.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(records[static_cast<std::size_t>(i)].a, i + 2);
    EXPECT_DOUBLE_EQ(records[static_cast<std::size_t>(i)].time, static_cast<double>(i + 2));
  }
}

TEST(EventTracer, CsvExport) {
  obs::EventTracer tracer(8);
  tracer.record(1.5, obs::TraceKind::kDecision, 3, 2, 240.0);
  tracer.record(2.0, obs::TraceKind::kAlarm, 1, 0, 0.95);
  const std::string csv = tracer.to_csv();
  EXPECT_NE(csv.find("time,kind,a,b,value"), std::string::npos);
  EXPECT_NE(csv.find("1.500000,decision,3,2,240"), std::string::npos) << csv;
  EXPECT_NE(csv.find("2.000000,alarm,1,0,0.95"), std::string::npos) << csv;
}

TEST(EventTracer, ChromeJsonExport) {
  obs::EventTracer tracer(8);
  tracer.record(1.0, obs::TraceKind::kDecision, 3, 2, 240.0);
  tracer.record(2.0, obs::TraceKind::kNsRefresh, 4, 1, 120.0);
  const std::string json = tracer.to_chrome_json();
  // Track metadata plus one instant event per record, ts in microseconds.
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json;
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"dns decisions\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"decision\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1000000.000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"ns_refresh\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\"}"), std::string::npos);
}

TEST(EventTracer, KindNamesAreStable) {
  EXPECT_STREQ(obs::trace_kind_name(obs::TraceKind::kDecision), "decision");
  EXPECT_STREQ(obs::trace_kind_name(obs::TraceKind::kAlarm), "alarm");
  EXPECT_STREQ(obs::trace_kind_name(obs::TraceKind::kNormal), "normal");
  EXPECT_STREQ(obs::trace_kind_name(obs::TraceKind::kNsRefresh), "ns_refresh");
  EXPECT_STREQ(obs::trace_kind_name(obs::TraceKind::kServerPause), "server_pause");
  EXPECT_STREQ(obs::trace_kind_name(obs::TraceKind::kServerResume), "server_resume");
  EXPECT_STREQ(obs::trace_kind_name(obs::TraceKind::kEstimatorUpdate), "estimator_update");
}

// --------------------------------------------------------------- profiler

TEST(PhaseProfiler, AccumulatesInFirstAddOrder) {
  obs::PhaseProfiler profiler;
  profiler.add("setup", 1.0);
  profiler.add("run", 2.0);
  profiler.add("setup", 0.5);

  const auto& phases = profiler.phases();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].name, "setup");
  EXPECT_DOUBLE_EQ(phases[0].seconds, 1.5);
  EXPECT_EQ(phases[0].count, 2u);
  EXPECT_EQ(phases[1].name, "run");
  EXPECT_DOUBLE_EQ(profiler.total_seconds(), 3.5);

  const std::string json = profiler.to_json();
  EXPECT_NE(json.find("\"name\":\"setup\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"total_seconds\":3.5"), std::string::npos) << json;
}

// ------------------------------------------------------------- end to end

experiment::SimulationConfig obs_config() {
  experiment::SimulationConfig config;
  config.cluster = web::table2_cluster(35);
  config.policy = "DRR2-TTL/S_K";
  config.total_clients = 120;
  config.num_domains = 8;
  config.oracle_weights = false;  // exercise the estimator-update records
  config.warmup_sec = 60.0;
  config.duration_sec = 600.0;
  config.seed = 424242;
  return config;
}

TEST(SiteObservability, MetricsMatchComponentCounters) {
  experiment::SimulationConfig config = obs_config();
  config.metrics_enabled = true;
  config.trace_enabled = true;
  config.trace_capacity = 1 << 16;

  experiment::Site site(config);
  const experiment::RunResult result = site.run();

  ASSERT_NE(result.metrics, nullptr);
  const obs::MetricsSnapshot& snap = *result.metrics;

  const auto* decisions = snap.find("scheduler.decisions");
  ASSERT_NE(decisions, nullptr);
  EXPECT_GT(decisions->value, 0.0);
  EXPECT_DOUBLE_EQ(decisions->value,
                   static_cast<double>(site.scheduler().decisions()));

  const auto* ns_hits = snap.find("ns.cache_hits");
  const auto* ns_queries = snap.find("ns.authoritative_queries");
  ASSERT_NE(ns_hits, nullptr);
  ASSERT_NE(ns_queries, nullptr);
  EXPECT_DOUBLE_EQ(ns_hits->value, static_cast<double>(result.ns_cache_hits));
  EXPECT_DOUBLE_EQ(ns_queries->value, static_cast<double>(result.authoritative_queries));

  // Per-server completion counters sum to the site-wide totals.
  double pages = 0.0;
  for (int s = 0; s < config.cluster.size(); ++s) {
    const auto* m = snap.find("server." + std::to_string(s) + ".pages_completed");
    ASSERT_NE(m, nullptr);
    pages += m->value;
  }
  EXPECT_GT(pages, 0.0);

  const auto* ttl_hist = snap.find("scheduler.ttl_sec");
  ASSERT_NE(ttl_hist, nullptr);
  EXPECT_EQ(ttl_hist->count, static_cast<std::uint64_t>(decisions->value));

  // Kernel health gauges filled at end of run.
  const auto* dispatched = snap.find("kernel.events_dispatched");
  ASSERT_NE(dispatched, nullptr);
  EXPECT_DOUBLE_EQ(dispatched->value, static_cast<double>(result.events_dispatched));
  const auto* peak = snap.find("kernel.peak_events");
  ASSERT_NE(peak, nullptr);
  EXPECT_GT(peak->value, 0.0);
}

TEST(SiteObservability, TracerCapturesDecisionTimeline) {
  experiment::SimulationConfig config = obs_config();
  config.trace_enabled = true;
  config.trace_capacity = 1 << 16;
  // Inject an outage so pause/resume records appear too.
  config.outages.push_back(experiment::ServerOutage{200.0, 100.0, 0});

  experiment::Site site(config);
  site.run();

  obs::EventTracer* tracer = site.event_tracer();
  ASSERT_NE(tracer, nullptr);
  EXPECT_GT(tracer->total_recorded(), 0u);

  bool saw_decision = false, saw_ns = false, saw_pause = false, saw_resume = false,
       saw_estimator = false;
  double last_time = -1.0;
  for (const obs::TraceRecord& r : tracer->records()) {
    EXPECT_GE(r.time, last_time);  // chronological
    last_time = r.time;
    switch (r.kind) {
      case obs::TraceKind::kDecision:
        saw_decision = true;
        EXPECT_GE(r.a, 0);
        EXPECT_LT(r.a, config.num_domains);
        EXPECT_GE(r.b, 0);
        EXPECT_LT(r.b, config.cluster.size());
        EXPECT_GT(r.value, 0.0);  // TTL
        break;
      case obs::TraceKind::kNsRefresh: saw_ns = true; break;
      case obs::TraceKind::kServerPause: saw_pause = true; break;
      case obs::TraceKind::kServerResume: saw_resume = true; break;
      case obs::TraceKind::kEstimatorUpdate: saw_estimator = true; break;
      default: break;
    }
  }
  EXPECT_TRUE(saw_decision);
  EXPECT_TRUE(saw_ns);
  EXPECT_TRUE(saw_pause);
  EXPECT_TRUE(saw_resume);
  EXPECT_TRUE(saw_estimator);

  // The exported timeline parses as one JSON object (spot checks).
  const std::string json = tracer->to_chrome_json();
  EXPECT_NE(json.find("\"name\":\"server_pause\""), std::string::npos);
}

TEST(SiteObservability, EnablingObservabilityDoesNotChangeResults) {
  // Same seed, observability off vs fully on: every simulation-visible
  // output must be bit-identical (wall-clock profile fields excluded).
  experiment::SimulationConfig off = obs_config();
  experiment::SimulationConfig on = obs_config();
  on.metrics_enabled = true;
  on.trace_enabled = true;

  experiment::Site site_off(off);
  const experiment::RunResult a = site_off.run();
  experiment::Site site_on(on);
  const experiment::RunResult b = site_on.run();

  EXPECT_EQ(a.total_pages, b.total_pages);
  EXPECT_EQ(a.total_hits, b.total_hits);
  EXPECT_EQ(a.authoritative_queries, b.authoritative_queries);
  EXPECT_EQ(a.ns_cache_hits, b.ns_cache_hits);
  EXPECT_EQ(a.alarm_signals, b.alarm_signals);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.mean_max_utilization, b.mean_max_utilization);  // bitwise
  EXPECT_EQ(a.aggregate_utilization, b.aggregate_utilization);
  EXPECT_EQ(a.mean_ttl, b.mean_ttl);
  EXPECT_EQ(a.mean_page_response_sec, b.mean_page_response_sec);
  EXPECT_EQ(a.metrics, nullptr);
  ASSERT_NE(b.metrics, nullptr);
}

TEST(SiteObservability, RunProfileIsFilled) {
  experiment::SimulationConfig config = obs_config();
  config.duration_sec = 120.0;
  experiment::Site site(config);
  const experiment::RunResult r = site.run();
  EXPECT_GT(r.profile.setup_sec, 0.0);
  EXPECT_GT(r.profile.measurement_sec, 0.0);
  EXPECT_GE(r.profile.warmup_sec, 0.0);
  EXPECT_GE(r.profile.collect_sec, 0.0);
  EXPECT_GT(r.profile.total(), 0.0);
}

TEST(SweepManifest, CarriesLabelsAndPhases) {
  experiment::SimulationConfig config = obs_config();
  config.duration_sec = 120.0;
  experiment::Sweep sweep;
  sweep.add(config, 2, "pointA");
  sweep.add_policy(config, "RR", 1);
  const experiment::SweepResult result = sweep.run();

  ASSERT_EQ(result.point_labels.size(), 2u);
  EXPECT_EQ(result.point_labels[0], "pointA");
  EXPECT_EQ(result.point_labels[1], "RR");

  const std::string manifest = result.manifest_json();
  EXPECT_NE(manifest.find("\"label\":\"pointA\""), std::string::npos) << manifest;
  EXPECT_NE(manifest.find("\"replications\":2"), std::string::npos) << manifest;
  EXPECT_NE(manifest.find("\"measurement_sec\":"), std::string::npos) << manifest;
  EXPECT_NE(manifest.find("\"jobs\":"), std::string::npos) << manifest;
}

TEST(RunnerJson, IncludesMetricsWhenEnabled) {
  experiment::SimulationConfig config = obs_config();
  config.duration_sec = 120.0;
  config.metrics_enabled = true;
  const experiment::ReplicatedResult rep = experiment::run_replications(config, 1);
  const std::string json = experiment::to_json(config, rep);
  EXPECT_NE(json.find("\"metrics\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"scheduler.decisions\""), std::string::npos) << json;

  // And absent when disabled. (The resolved-config block still carries the
  // `"metrics":false` knob; only the snapshot object must disappear.)
  experiment::SimulationConfig plain = obs_config();
  plain.duration_sec = 120.0;
  const experiment::ReplicatedResult rep2 = experiment::run_replications(plain, 1);
  EXPECT_EQ(experiment::to_json(plain, rep2).find("\"metrics\":{"), std::string::npos);
}

}  // namespace
}  // namespace adattl
