#include "core/load_estimator.h"

#include <gtest/gtest.h>

#include <deque>
#include <vector>

namespace adattl::core {
namespace {

TEST(LoadEstimator, RejectsBadSmoothing) {
  DomainModel m({1.0, 1.0}, 0.4);
  EXPECT_THROW(EwmaLoadEstimator(m, 0.0), std::invalid_argument);
  EXPECT_THROW(EwmaLoadEstimator(m, 1.5), std::invalid_argument);
}

TEST(LoadEstimator, FirstWindowSeedsEstimateOutright) {
  DomainModel m({1.0, 1.0, 1.0}, 0.2);
  EwmaLoadEstimator est(m, 0.3);
  est.observe({800, 160, 40}, 8.0);
  EXPECT_DOUBLE_EQ(m.weight(0), 100.0);
  EXPECT_DOUBLE_EQ(m.weight(1), 20.0);
  EXPECT_DOUBLE_EQ(m.weight(2), 5.0);
}

TEST(LoadEstimator, EwmaBlendsSubsequentWindows) {
  DomainModel m({1.0, 1.0}, 0.4);
  EwmaLoadEstimator est(m, 0.5);
  est.observe({80, 40}, 8.0);   // rates 10, 5
  est.observe({160, 40}, 8.0);  // rates 20, 5
  EXPECT_DOUBLE_EQ(m.weight(0), 15.0);  // 0.5*20 + 0.5*10
  EXPECT_DOUBLE_EQ(m.weight(1), 5.0);
}

TEST(LoadEstimator, ConvergesToStationaryRates) {
  DomainModel m({1.0, 1.0, 1.0, 1.0}, 0.2);
  EwmaLoadEstimator est(m, 0.3);
  for (int w = 0; w < 50; ++w) est.observe({400, 200, 100, 100}, 8.0);
  EXPECT_NEAR(m.share(0), 0.5, 1e-6);
  EXPECT_NEAR(m.share(1), 0.25, 1e-6);
  EXPECT_NEAR(m.share(3), 0.125, 1e-6);
}

TEST(LoadEstimator, OracleModeNeverTouchesModel) {
  DomainModel m({7.0, 1.0}, 0.4);
  EwmaLoadEstimator est(m, 0.3, /*oracle=*/true);
  est.observe({10, 1000}, 8.0);
  EXPECT_DOUBLE_EQ(m.weight(0), 7.0);
  EXPECT_DOUBLE_EQ(m.weight(1), 1.0);
  EXPECT_EQ(est.windows_observed(), 0);
}

TEST(LoadEstimator, AllZeroWindowKeepsPreviousWeights) {
  DomainModel m({1.0, 1.0}, 0.4);
  EwmaLoadEstimator est(m, 1.0);  // no memory: a zero window yields all-zero weights
  est.observe({80, 40}, 8.0);
  est.observe({0, 0}, 8.0);
  // The all-zero weight vector carries no ranking information, so the model
  // keeps the last valid weights (DomainModel rejects total <= 0)...
  EXPECT_DOUBLE_EQ(m.weight(0), 10.0);
  EXPECT_DOUBLE_EQ(m.weight(1), 5.0);
  // ...but the estimator itself HAS incorporated the lull (alpha = 1 wipes
  // its internal rates), so the next window seeds the model afresh.
  est.observe({8, 80}, 8.0);
  EXPECT_DOUBLE_EQ(m.weight(0), 1.0);
  EXPECT_DOUBLE_EQ(m.weight(1), 10.0);
}

TEST(LoadEstimator, EwmaDecaysThroughTrafficLulls) {
  // The observe() bug this guards against: empty windows were skipped
  // entirely, freezing a stale hot-domain estimate through a lull instead
  // of decaying it.
  DomainModel m({1.0, 1.0}, 0.4);
  EwmaLoadEstimator est(m, 0.5);
  est.observe({800, 80}, 8.0);  // rates 100, 10
  for (int w = 0; w < 3; ++w) est.observe({0, 0}, 8.0);
  // Three empty windows halve the estimate three times: 100 -> 12.5.
  EXPECT_DOUBLE_EQ(est.current_rates()[0], 12.5);
  EXPECT_DOUBLE_EQ(est.current_rates()[1], 1.25);
  // Shares are scale-free, so the installed model still ranks domain 0
  // first — but a single busy window for domain 1 now flips the ranking
  // quickly instead of fighting a frozen rate of 100.
  est.observe({0, 400}, 8.0);  // rates 0, 50
  EXPECT_GT(m.share(1), m.share(0));
}

TEST(LoadEstimator, EwmaUnseededZeroWindowsAreNoOps) {
  // Before any traffic there is nothing to decay or seed from: all-zero
  // windows leave the estimator unseeded and the model untouched.
  DomainModel m({3.0, 1.0}, 0.4);
  EwmaLoadEstimator est(m, 0.3);
  est.observe({0, 0}, 8.0);
  est.observe({0, 0}, 8.0);
  EXPECT_DOUBLE_EQ(m.weight(0), 3.0);
  EXPECT_DOUBLE_EQ(m.weight(1), 1.0);
  EXPECT_EQ(est.windows_observed(), 2);
  // The first real window still seeds outright (not blended with zeros).
  est.observe({80, 40}, 8.0);
  EXPECT_DOUBLE_EQ(m.weight(0), 10.0);
  EXPECT_DOUBLE_EQ(m.weight(1), 5.0);
}

TEST(SlidingWindowEstimator, EmptyWindowsAgeOutOldTraffic) {
  DomainModel m({1.0, 1.0}, 0.4);
  SlidingWindowLoadEstimator est(m, 2);
  est.observe({160, 16}, 8.0);  // rates {20, 2}
  est.observe({0, 0}, 8.0);     // window {{20,2},{0,0}} -> mean {10, 1}
  EXPECT_DOUBLE_EQ(m.weight(0), 10.0);
  EXPECT_DOUBLE_EQ(m.weight(1), 1.0);
  // A second empty window pushes the traffic out of the window entirely;
  // the all-zero mean is not installed, so the last weights persist.
  est.observe({0, 0}, 8.0);
  EXPECT_DOUBLE_EQ(m.weight(0), 10.0);
  EXPECT_DOUBLE_EQ(m.weight(1), 1.0);
  // New traffic is then averaged against the remembered empty window.
  est.observe({160, 160}, 8.0);  // rates {20, 20}; window mean {10, 10}
  EXPECT_DOUBLE_EQ(m.weight(0), 10.0);
  EXPECT_DOUBLE_EQ(m.weight(1), 10.0);
}

TEST(LoadEstimator, TracksShiftingHotSpot) {
  DomainModel m({1.0, 1.0}, 0.4);
  EwmaLoadEstimator est(m, 0.5);
  for (int w = 0; w < 20; ++w) est.observe({100, 10}, 8.0);
  EXPECT_TRUE(m.is_hot(0));
  EXPECT_FALSE(m.is_hot(1));
  for (int w = 0; w < 20; ++w) est.observe({10, 100}, 8.0);
  EXPECT_FALSE(m.is_hot(0));
  EXPECT_TRUE(m.is_hot(1));
}

TEST(LoadEstimator, RejectsMismatchedInput) {
  DomainModel m({1.0, 1.0}, 0.4);
  EwmaLoadEstimator est(m, 0.3);
  EXPECT_THROW(est.observe({1, 2, 3}, 8.0), std::invalid_argument);
  EXPECT_THROW(est.observe({1, 2}, 0.0), std::invalid_argument);
}

TEST(SlidingWindowEstimator, RejectsBadWindowCount) {
  DomainModel m({1.0, 1.0}, 0.4);
  EXPECT_THROW(SlidingWindowLoadEstimator(m, 0), std::invalid_argument);
}

TEST(SlidingWindowEstimator, AveragesOverWindow) {
  DomainModel m({1.0, 1.0}, 0.4);
  SlidingWindowLoadEstimator est(m, 3);
  est.observe({80, 8}, 8.0);   // rates 10, 1
  est.observe({160, 8}, 8.0);  // rates 20, 1
  EXPECT_DOUBLE_EQ(m.weight(0), 15.0);  // mean of 10, 20
  est.observe({240, 8}, 8.0);  // rates 30, 1
  EXPECT_DOUBLE_EQ(m.weight(0), 20.0);  // mean of 10, 20, 30
}

TEST(SlidingWindowEstimator, OldWindowsFallOut) {
  DomainModel m({1.0, 1.0}, 0.4);
  SlidingWindowLoadEstimator est(m, 2);
  est.observe({80, 8}, 8.0);   // 10
  est.observe({160, 8}, 8.0);  // 20
  est.observe({240, 8}, 8.0);  // 30 -> window now {20, 30}
  EXPECT_DOUBLE_EQ(m.weight(0), 25.0);
}

TEST(SlidingWindowEstimator, OracleModeInert) {
  DomainModel m({9.0, 1.0}, 0.4);
  SlidingWindowLoadEstimator est(m, 4, /*oracle=*/true);
  est.observe({1, 99}, 8.0);
  EXPECT_DOUBLE_EQ(m.weight(0), 9.0);
}

TEST(SlidingWindowEstimator, TracksShiftSlowerThanEwma) {
  DomainModel m1({1.0, 1.0}, 0.4);
  DomainModel m2({1.0, 1.0}, 0.4);
  EwmaLoadEstimator ewma(m1, 0.5);
  SlidingWindowLoadEstimator window(m2, 8);
  for (int w = 0; w < 10; ++w) {
    ewma.observe({100, 10}, 8.0);
    window.observe({100, 10}, 8.0);
  }
  // Abrupt shift: the EWMA (alpha .5) adapts faster than an 8-window mean.
  ewma.observe({10, 100}, 8.0);
  window.observe({10, 100}, 8.0);
  EXPECT_LT(m1.weight(0), m2.weight(0));
  EXPECT_GT(m1.weight(1), m2.weight(1));
}

// Exposes the protected incorporate() hook so the drift test can drive
// windows directly and compare each returned average to the ground truth.
struct SlidingWindowProbe : SlidingWindowLoadEstimator {
  using SlidingWindowLoadEstimator::SlidingWindowLoadEstimator;
  std::vector<double> feed(const std::vector<double>& rates) { return incorporate(rates); }
};

TEST(SlidingWindowEstimator, NoFloatingPointDriftOverAMillionWindows) {
  // Regression (PR 8): the pre-fix estimator kept an add-then-subtract
  // running sum. A flash-crowd window (1e16) absorbs every ordinary rate
  // added after it (1e16 + 1.0 == 1e16 in double), so once the spike ages
  // out, the subtraction leaves ~0 where the small windows' mass should
  // be — the reported average collapses and *stays* wrong forever. The
  // fix recomputes the sums from the retained windows each call; here a
  // shadow deque recomputes the exact same reduction independently and
  // every returned average must match, across a million windows.
  DomainModel m({1.0, 1.0}, 0.4);
  SlidingWindowProbe est(m, 32);
  std::deque<std::vector<double>> shadow;
  for (int w = 0; w < 1'000'000; ++w) {
    std::vector<double> rates(2);
    rates[0] = (w % 1000 == 500) ? 1e16 : 1.0 + static_cast<double>(w % 7) * 0.125;
    rates[1] = 2.0 + static_cast<double>(w % 5) * 0.0625;
    shadow.push_back(rates);
    if (shadow.size() > 32) shadow.pop_front();

    const std::vector<double> avg = est.feed(rates);
    double expect0 = 0.0;
    double expect1 = 0.0;
    for (const std::vector<double>& win : shadow) {
      expect0 += win[0];
      expect1 += win[1];
    }
    expect0 /= static_cast<double>(shadow.size());
    expect1 /= static_cast<double>(shadow.size());
    ASSERT_EQ(avg[0], expect0) << "window " << w;
    ASSERT_EQ(avg[1], expect1) << "window " << w;
  }
}

}  // namespace
}  // namespace adattl::core
