#include "core/load_estimator.h"

#include <gtest/gtest.h>

namespace adattl::core {
namespace {

TEST(LoadEstimator, RejectsBadSmoothing) {
  DomainModel m({1.0, 1.0}, 0.4);
  EXPECT_THROW(EwmaLoadEstimator(m, 0.0), std::invalid_argument);
  EXPECT_THROW(EwmaLoadEstimator(m, 1.5), std::invalid_argument);
}

TEST(LoadEstimator, FirstWindowSeedsEstimateOutright) {
  DomainModel m({1.0, 1.0, 1.0}, 0.2);
  EwmaLoadEstimator est(m, 0.3);
  est.observe({800, 160, 40}, 8.0);
  EXPECT_DOUBLE_EQ(m.weight(0), 100.0);
  EXPECT_DOUBLE_EQ(m.weight(1), 20.0);
  EXPECT_DOUBLE_EQ(m.weight(2), 5.0);
}

TEST(LoadEstimator, EwmaBlendsSubsequentWindows) {
  DomainModel m({1.0, 1.0}, 0.4);
  EwmaLoadEstimator est(m, 0.5);
  est.observe({80, 40}, 8.0);   // rates 10, 5
  est.observe({160, 40}, 8.0);  // rates 20, 5
  EXPECT_DOUBLE_EQ(m.weight(0), 15.0);  // 0.5*20 + 0.5*10
  EXPECT_DOUBLE_EQ(m.weight(1), 5.0);
}

TEST(LoadEstimator, ConvergesToStationaryRates) {
  DomainModel m({1.0, 1.0, 1.0, 1.0}, 0.2);
  EwmaLoadEstimator est(m, 0.3);
  for (int w = 0; w < 50; ++w) est.observe({400, 200, 100, 100}, 8.0);
  EXPECT_NEAR(m.share(0), 0.5, 1e-6);
  EXPECT_NEAR(m.share(1), 0.25, 1e-6);
  EXPECT_NEAR(m.share(3), 0.125, 1e-6);
}

TEST(LoadEstimator, OracleModeNeverTouchesModel) {
  DomainModel m({7.0, 1.0}, 0.4);
  EwmaLoadEstimator est(m, 0.3, /*oracle=*/true);
  est.observe({10, 1000}, 8.0);
  EXPECT_DOUBLE_EQ(m.weight(0), 7.0);
  EXPECT_DOUBLE_EQ(m.weight(1), 1.0);
  EXPECT_EQ(est.windows_observed(), 0);
}

TEST(LoadEstimator, AllZeroWindowKeepsPreviousWeights) {
  DomainModel m({1.0, 1.0}, 0.4);
  EwmaLoadEstimator est(m, 1.0);  // no memory: a zero window would zero the model
  est.observe({80, 40}, 8.0);
  est.observe({0, 0}, 8.0);
  EXPECT_DOUBLE_EQ(m.weight(0), 10.0);  // survived the empty window
  EXPECT_DOUBLE_EQ(m.weight(1), 5.0);
}

TEST(LoadEstimator, TracksShiftingHotSpot) {
  DomainModel m({1.0, 1.0}, 0.4);
  EwmaLoadEstimator est(m, 0.5);
  for (int w = 0; w < 20; ++w) est.observe({100, 10}, 8.0);
  EXPECT_TRUE(m.is_hot(0));
  EXPECT_FALSE(m.is_hot(1));
  for (int w = 0; w < 20; ++w) est.observe({10, 100}, 8.0);
  EXPECT_FALSE(m.is_hot(0));
  EXPECT_TRUE(m.is_hot(1));
}

TEST(LoadEstimator, RejectsMismatchedInput) {
  DomainModel m({1.0, 1.0}, 0.4);
  EwmaLoadEstimator est(m, 0.3);
  EXPECT_THROW(est.observe({1, 2, 3}, 8.0), std::invalid_argument);
  EXPECT_THROW(est.observe({1, 2}, 0.0), std::invalid_argument);
}

TEST(SlidingWindowEstimator, RejectsBadWindowCount) {
  DomainModel m({1.0, 1.0}, 0.4);
  EXPECT_THROW(SlidingWindowLoadEstimator(m, 0), std::invalid_argument);
}

TEST(SlidingWindowEstimator, AveragesOverWindow) {
  DomainModel m({1.0, 1.0}, 0.4);
  SlidingWindowLoadEstimator est(m, 3);
  est.observe({80, 8}, 8.0);   // rates 10, 1
  est.observe({160, 8}, 8.0);  // rates 20, 1
  EXPECT_DOUBLE_EQ(m.weight(0), 15.0);  // mean of 10, 20
  est.observe({240, 8}, 8.0);  // rates 30, 1
  EXPECT_DOUBLE_EQ(m.weight(0), 20.0);  // mean of 10, 20, 30
}

TEST(SlidingWindowEstimator, OldWindowsFallOut) {
  DomainModel m({1.0, 1.0}, 0.4);
  SlidingWindowLoadEstimator est(m, 2);
  est.observe({80, 8}, 8.0);   // 10
  est.observe({160, 8}, 8.0);  // 20
  est.observe({240, 8}, 8.0);  // 30 -> window now {20, 30}
  EXPECT_DOUBLE_EQ(m.weight(0), 25.0);
}

TEST(SlidingWindowEstimator, OracleModeInert) {
  DomainModel m({9.0, 1.0}, 0.4);
  SlidingWindowLoadEstimator est(m, 4, /*oracle=*/true);
  est.observe({1, 99}, 8.0);
  EXPECT_DOUBLE_EQ(m.weight(0), 9.0);
}

TEST(SlidingWindowEstimator, TracksShiftSlowerThanEwma) {
  DomainModel m1({1.0, 1.0}, 0.4);
  DomainModel m2({1.0, 1.0}, 0.4);
  EwmaLoadEstimator ewma(m1, 0.5);
  SlidingWindowLoadEstimator window(m2, 8);
  for (int w = 0; w < 10; ++w) {
    ewma.observe({100, 10}, 8.0);
    window.observe({100, 10}, 8.0);
  }
  // Abrupt shift: the EWMA (alpha .5) adapts faster than an 8-window mean.
  ewma.observe({10, 100}, 8.0);
  window.observe({10, 100}, 8.0);
  EXPECT_LT(m1.weight(0), m2.weight(0));
  EXPECT_GT(m1.weight(1), m2.weight(1));
}

}  // namespace
}  // namespace adattl::core
