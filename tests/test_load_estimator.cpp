#include "core/load_estimator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <deque>
#include <vector>

namespace adattl::core {
namespace {

TEST(LoadEstimator, RejectsBadSmoothing) {
  DomainModel m({1.0, 1.0}, 0.4);
  EXPECT_THROW(EwmaLoadEstimator(m, 0.0), std::invalid_argument);
  EXPECT_THROW(EwmaLoadEstimator(m, 1.5), std::invalid_argument);
}

TEST(LoadEstimator, FirstWindowSeedsEstimateOutright) {
  DomainModel m({1.0, 1.0, 1.0}, 0.2);
  EwmaLoadEstimator est(m, 0.3);
  est.observe({800, 160, 40}, 8.0);
  EXPECT_DOUBLE_EQ(m.weight(0), 100.0);
  EXPECT_DOUBLE_EQ(m.weight(1), 20.0);
  EXPECT_DOUBLE_EQ(m.weight(2), 5.0);
}

TEST(LoadEstimator, EwmaBlendsSubsequentWindows) {
  DomainModel m({1.0, 1.0}, 0.4);
  EwmaLoadEstimator est(m, 0.5);
  est.observe({80, 40}, 8.0);   // rates 10, 5
  est.observe({160, 40}, 8.0);  // rates 20, 5
  EXPECT_DOUBLE_EQ(m.weight(0), 15.0);  // 0.5*20 + 0.5*10
  EXPECT_DOUBLE_EQ(m.weight(1), 5.0);
}

TEST(LoadEstimator, ConvergesToStationaryRates) {
  DomainModel m({1.0, 1.0, 1.0, 1.0}, 0.2);
  EwmaLoadEstimator est(m, 0.3);
  for (int w = 0; w < 50; ++w) est.observe({400, 200, 100, 100}, 8.0);
  EXPECT_NEAR(m.share(0), 0.5, 1e-6);
  EXPECT_NEAR(m.share(1), 0.25, 1e-6);
  EXPECT_NEAR(m.share(3), 0.125, 1e-6);
}

TEST(LoadEstimator, OracleModeNeverTouchesModel) {
  DomainModel m({7.0, 1.0}, 0.4);
  EwmaLoadEstimator est(m, 0.3, /*oracle=*/true);
  est.observe({10, 1000}, 8.0);
  EXPECT_DOUBLE_EQ(m.weight(0), 7.0);
  EXPECT_DOUBLE_EQ(m.weight(1), 1.0);
  EXPECT_EQ(est.windows_observed(), 0);
}

TEST(LoadEstimator, AllZeroWindowKeepsPreviousWeights) {
  DomainModel m({1.0, 1.0}, 0.4);
  EwmaLoadEstimator est(m, 1.0);  // no memory: a zero window yields all-zero weights
  est.observe({80, 40}, 8.0);
  est.observe({0, 0}, 8.0);
  // The all-zero weight vector carries no ranking information, so the model
  // keeps the last valid weights (DomainModel rejects total <= 0)...
  EXPECT_DOUBLE_EQ(m.weight(0), 10.0);
  EXPECT_DOUBLE_EQ(m.weight(1), 5.0);
  // ...but the estimator itself HAS incorporated the lull (alpha = 1 wipes
  // its internal rates), so the next window seeds the model afresh.
  est.observe({8, 80}, 8.0);
  EXPECT_DOUBLE_EQ(m.weight(0), 1.0);
  EXPECT_DOUBLE_EQ(m.weight(1), 10.0);
}

TEST(LoadEstimator, EwmaDecaysThroughTrafficLulls) {
  // The observe() bug this guards against: empty windows were skipped
  // entirely, freezing a stale hot-domain estimate through a lull instead
  // of decaying it.
  DomainModel m({1.0, 1.0}, 0.4);
  EwmaLoadEstimator est(m, 0.5);
  est.observe({800, 80}, 8.0);  // rates 100, 10
  for (int w = 0; w < 3; ++w) est.observe({0, 0}, 8.0);
  // Three empty windows halve the estimate three times: 100 -> 12.5.
  EXPECT_DOUBLE_EQ(est.current_rates()[0], 12.5);
  EXPECT_DOUBLE_EQ(est.current_rates()[1], 1.25);
  // Shares are scale-free, so the installed model still ranks domain 0
  // first — but a single busy window for domain 1 now flips the ranking
  // quickly instead of fighting a frozen rate of 100.
  est.observe({0, 400}, 8.0);  // rates 0, 50
  EXPECT_GT(m.share(1), m.share(0));
}

TEST(LoadEstimator, EwmaUnseededZeroWindowsAreNoOps) {
  // Before any traffic there is nothing to decay or seed from: all-zero
  // windows leave the estimator unseeded and the model untouched.
  DomainModel m({3.0, 1.0}, 0.4);
  EwmaLoadEstimator est(m, 0.3);
  est.observe({0, 0}, 8.0);
  est.observe({0, 0}, 8.0);
  EXPECT_DOUBLE_EQ(m.weight(0), 3.0);
  EXPECT_DOUBLE_EQ(m.weight(1), 1.0);
  // Regression: discarded pre-seed windows used to count as "observed"
  // (the counter was bumped before incorporate() could reject them), so
  // windows_observed() — and the kEstimatorUpdate trace record built from
  // it — reported updates that never happened.
  EXPECT_EQ(est.windows_observed(), 0);
  // The first real window still seeds outright (not blended with zeros)
  // and is the first window that counts.
  est.observe({80, 40}, 8.0);
  EXPECT_DOUBLE_EQ(m.weight(0), 10.0);
  EXPECT_DOUBLE_EQ(m.weight(1), 5.0);
  EXPECT_EQ(est.windows_observed(), 1);
}

TEST(LoadEstimator, WindowsObservedCountsOnlyIncorporatedWindows) {
  // Pins the observe()/incorporate() contract: empty return == discarded
  // window == not counted; every non-empty return counts, including
  // post-seed lulls (which DO update estimator state even though the
  // all-zero result is not installed).
  DomainModel m({1.0, 1.0}, 0.4);
  EwmaLoadEstimator est(m, 1.0);
  est.observe({0, 0}, 8.0);  // pre-seed lull: discarded
  EXPECT_EQ(est.windows_observed(), 0);
  est.observe({80, 40}, 8.0);  // seeds
  EXPECT_EQ(est.windows_observed(), 1);
  est.observe({0, 0}, 8.0);  // post-seed lull: wipes rates_, counts
  EXPECT_EQ(est.windows_observed(), 2);
  est.observe({8, 8}, 8.0);
  EXPECT_EQ(est.windows_observed(), 3);
}

TEST(LoadEstimator, ColdStartSeedsFromModelPriorNotFirstWindow) {
  // Regression: with estimator_cold_start the model deliberately starts
  // from uniform weights, but the estimator still seeded OUTRIGHT from the
  // first non-empty window — zero smoothing, so a flash crowd landing in
  // that window became the entire estimate. The fix seeds from the
  // installed prior (scale-matched to the window's total) and blends the
  // first window through the normal smoothing path.
  DomainModel m({1.0, 1.0}, 0.4);  // cold start: uniform prior
  EwmaLoadEstimator est(m, 0.3, /*oracle=*/false, /*seed_from_model=*/true);
  est.observe({800, 80}, 8.0);  // first window IS the spike: rates {100, 10}
  // Prior {1, 1} scaled to the observed total 110 -> {55, 55}; one normal
  // blend: 0.3 * {100, 10} + 0.7 * {55, 55} = {68.5, 41.5}.
  EXPECT_DOUBLE_EQ(m.weight(0), 68.5);
  EXPECT_DOUBLE_EQ(m.weight(1), 41.5);
  // Pre-fix the estimate anchored at share(0) = 100/110 = 0.909 after one
  // window; the prior keeps the first window's influence at ~alpha.
  EXPECT_LT(m.share(0), 0.7);
  // Pre-seed all-zero windows are still discarded under cold start.
  DomainModel m2({1.0, 1.0}, 0.4);
  EwmaLoadEstimator est2(m2, 0.3, false, true);
  est2.observe({0, 0}, 8.0);
  EXPECT_EQ(est2.windows_observed(), 0);
  EXPECT_DOUBLE_EQ(m2.weight(0), 1.0);
}

TEST(HoltWintersEstimator, RejectsBadParameters) {
  DomainModel m({1.0, 1.0}, 0.4);
  EXPECT_THROW(HoltWintersLoadEstimator(m, 0.0, 0.1), std::invalid_argument);
  EXPECT_THROW(HoltWintersLoadEstimator(m, 1.5, 0.1), std::invalid_argument);
  EXPECT_THROW(HoltWintersLoadEstimator(m, 0.3, -0.1), std::invalid_argument);
  EXPECT_THROW(HoltWintersLoadEstimator(m, 0.3, 1.5), std::invalid_argument);
}

TEST(HoltWintersEstimator, ZeroTrendDegradesToEwma) {
  // With beta = 0 the trend stays at its zero seed, so level updates are
  // exactly the EWMA recurrence and the installed forecast equals it.
  DomainModel m1({1.0, 1.0}, 0.4);
  DomainModel m2({1.0, 1.0}, 0.4);
  HoltWintersLoadEstimator hw(m1, 0.4, 0.0);
  EwmaLoadEstimator ewma(m2, 0.4);
  const std::vector<std::vector<std::uint64_t>> windows = {
      {80, 40}, {160, 40}, {40, 200}, {0, 0}, {80, 80}};
  for (const auto& w : windows) {
    hw.observe(w, 8.0);
    ewma.observe(w, 8.0);
  }
  EXPECT_DOUBLE_EQ(m1.weight(0), m2.weight(0));
  EXPECT_DOUBLE_EQ(m1.weight(1), m2.weight(1));
}

TEST(HoltWintersEstimator, TracksLinearRampAheadOfEwma) {
  // On a steady ramp (rate + 5 per window) the trend term extrapolates
  // while plain EWMA lags by ~(1-alpha)/alpha steps.
  DomainModel m1({1.0, 1.0}, 0.4);
  DomainModel m2({1.0, 1.0}, 0.4);
  HoltWintersLoadEstimator hw(m1, 0.3, 0.2);
  EwmaLoadEstimator ewma(m2, 0.3);
  double true_rate = 10.0;
  for (int w = 0; w < 60; ++w) {
    const auto hits = static_cast<std::uint64_t>(true_rate * 8.0);
    hw.observe({hits, 80}, 8.0);
    ewma.observe({hits, 80}, 8.0);
    true_rate += 5.0;
  }
  const double hw_err = std::abs(m1.weight(0) - true_rate);
  const double ewma_err = std::abs(m2.weight(0) - true_rate);
  EXPECT_LT(hw_err, ewma_err);
  EXPECT_LT(hw_err, 10.0);    // converged trend: forecast within 2 windows' slope
  EXPECT_GT(ewma_err, 15.0);  // EWMA's structural lag: slope * (1-a)/a ~ 11.7 behind
}

TEST(HoltWintersEstimator, ForecastFlooredAtZeroOnCooldown) {
  DomainModel m({1.0, 1.0}, 0.4);
  HoltWintersLoadEstimator hw(m, 0.8, 0.8);
  hw.observe({8000, 80}, 8.0);
  for (int w = 0; w < 10; ++w) hw.observe({0, 80}, 8.0);
  // A steep negative trend must not install a negative weight.
  EXPECT_GE(m.weight(0), 0.0);
  EXPECT_GT(m.weight(1), 0.0);
}

TEST(HoltWintersEstimator, ColdStartSeedsFromModelPrior) {
  DomainModel m({1.0, 1.0}, 0.4);
  HoltWintersLoadEstimator hw(m, 0.3, 0.2, /*oracle=*/false, /*seed_from_model=*/true);
  hw.observe({800, 80}, 8.0);
  // Same arithmetic as the EWMA cold-start case (trend seeds at zero, so
  // the first forecast is the blended level plus beta * its own change).
  EXPECT_LT(m.share(0), 0.75);
  EXPECT_GT(m.weight(1), 0.0);
}

// Exposes the protected incorporate() hook so AR tests can feed exact
// doubles instead of hits/window ratios.
struct ArProbe : ArLoadEstimator {
  using ArLoadEstimator::ArLoadEstimator;
  std::vector<double> feed(const std::vector<double>& rates) { return incorporate(rates); }
};

TEST(ArEstimator, RejectsBadOrder) {
  DomainModel m({1.0}, 0.4);
  EXPECT_THROW(ArLoadEstimator(m, 0), std::invalid_argument);
  EXPECT_THROW(ArLoadEstimator(m, -3), std::invalid_argument);
}

TEST(ArEstimator, FallsBackToNewestObservationUntilFitSupported) {
  DomainModel m({1.0}, 0.4);
  ArProbe ar(m, 3);
  // Fewer than p + 2 = 5 regression rows -> persistence forecast.
  EXPECT_DOUBLE_EQ(ar.feed({10.0})[0], 10.0);
  EXPECT_DOUBLE_EQ(ar.feed({14.0})[0], 14.0);
  EXPECT_DOUBLE_EQ(ar.feed({12.0})[0], 12.0);
}

TEST(ArEstimator, ConstantHistoryForecastsTheConstant) {
  // A constant series makes the lag columns collinear with the intercept;
  // the singular fallback must forecast the constant (persistence), not
  // blow up or emit garbage.
  DomainModel m({1.0}, 0.4);
  ArProbe ar(m, 2);
  std::vector<double> out;
  for (int w = 0; w < 30; ++w) out = ar.feed({42.0});
  EXPECT_DOUBLE_EQ(out[0], 42.0);
}

TEST(ArEstimator, RecoversExactAr1Process) {
  // Noise-free AR(1): x' = 0.5 x + 20 from x0 = 100. The least-squares fit
  // over distinct points recovers (c, phi) exactly, so the one-step
  // forecast equals the true next value.
  DomainModel m({1.0}, 0.4);
  ArProbe ar(m, 1);
  double x = 100.0;
  double forecast = 0.0;
  for (int w = 0; w < 12; ++w) {
    forecast = ar.feed({x})[0];
    x = 0.5 * x + 20.0;
  }
  EXPECT_NEAR(forecast, x, 1e-6);
}

TEST(PredictiveEstimators, ReconvergeFasterThanEwmaAfterStep) {
  // The flash-crowd shape at unit scale: a stationary phase, then an 8x
  // step. Count windows until each estimator's installed share of the
  // spiked domain is within 2% of the new truth. AR snaps in O(1) windows
  // (post-step its forecast rides the newest observations); Holt-Winters
  // closes the gap faster than EWMA because the trend term extrapolates
  // the jump; EWMA needs ~1/alpha * ln(1/eps) windows.
  const auto windows_to_converge = [](auto& est, DomainModel& m) {
    for (int w = 0; w < 40; ++w) est.observe({100 * 8, 100 * 8}, 8.0);
    const double true_share = 800.0 / 900.0;
    for (int w = 1; w <= 200; ++w) {
      est.observe({800 * 8, 100 * 8}, 8.0);
      if (std::abs(m.share(0) - true_share) < 0.02) return w;
    }
    return 1000;
  };
  DomainModel me({1.0, 1.0}, 0.4);
  DomainModel mh({1.0, 1.0}, 0.4);
  DomainModel ma({1.0, 1.0}, 0.4);
  EwmaLoadEstimator ewma(me, 0.3);
  HoltWintersLoadEstimator hw(mh, 0.3, 0.2);
  ArLoadEstimator ar(ma, 3);
  const int we = windows_to_converge(ewma, me);
  const int wh = windows_to_converge(hw, mh);
  const int wa = windows_to_converge(ar, ma);
  EXPECT_LT(wh, we);
  EXPECT_LT(wa, we);
  EXPECT_GT(we, 3);  // sanity: EWMA at default smoothing really does lag
}

TEST(PredictiveEstimators, OracleModeInert) {
  DomainModel m1({9.0, 1.0}, 0.4);
  DomainModel m2({9.0, 1.0}, 0.4);
  HoltWintersLoadEstimator hw(m1, 0.3, 0.2, /*oracle=*/true);
  ArLoadEstimator ar(m2, 3, /*oracle=*/true);
  hw.observe({1, 99}, 8.0);
  ar.observe({1, 99}, 8.0);
  EXPECT_DOUBLE_EQ(m1.weight(0), 9.0);
  EXPECT_DOUBLE_EQ(m2.weight(0), 9.0);
  EXPECT_EQ(hw.windows_observed(), 0);
  EXPECT_EQ(ar.windows_observed(), 0);
}

TEST(SlidingWindowEstimator, EmptyWindowsAgeOutOldTraffic) {
  DomainModel m({1.0, 1.0}, 0.4);
  SlidingWindowLoadEstimator est(m, 2);
  est.observe({160, 16}, 8.0);  // rates {20, 2}
  est.observe({0, 0}, 8.0);     // window {{20,2},{0,0}} -> mean {10, 1}
  EXPECT_DOUBLE_EQ(m.weight(0), 10.0);
  EXPECT_DOUBLE_EQ(m.weight(1), 1.0);
  // A second empty window pushes the traffic out of the window entirely;
  // the all-zero mean is not installed, so the last weights persist.
  est.observe({0, 0}, 8.0);
  EXPECT_DOUBLE_EQ(m.weight(0), 10.0);
  EXPECT_DOUBLE_EQ(m.weight(1), 1.0);
  // New traffic is then averaged against the remembered empty window.
  est.observe({160, 160}, 8.0);  // rates {20, 20}; window mean {10, 10}
  EXPECT_DOUBLE_EQ(m.weight(0), 10.0);
  EXPECT_DOUBLE_EQ(m.weight(1), 10.0);
}

TEST(LoadEstimator, TracksShiftingHotSpot) {
  DomainModel m({1.0, 1.0}, 0.4);
  EwmaLoadEstimator est(m, 0.5);
  for (int w = 0; w < 20; ++w) est.observe({100, 10}, 8.0);
  EXPECT_TRUE(m.is_hot(0));
  EXPECT_FALSE(m.is_hot(1));
  for (int w = 0; w < 20; ++w) est.observe({10, 100}, 8.0);
  EXPECT_FALSE(m.is_hot(0));
  EXPECT_TRUE(m.is_hot(1));
}

TEST(LoadEstimator, RejectsMismatchedInput) {
  DomainModel m({1.0, 1.0}, 0.4);
  EwmaLoadEstimator est(m, 0.3);
  EXPECT_THROW(est.observe({1, 2, 3}, 8.0), std::invalid_argument);
  EXPECT_THROW(est.observe({1, 2}, 0.0), std::invalid_argument);
}

TEST(SlidingWindowEstimator, RejectsBadWindowCount) {
  DomainModel m({1.0, 1.0}, 0.4);
  EXPECT_THROW(SlidingWindowLoadEstimator(m, 0), std::invalid_argument);
}

TEST(SlidingWindowEstimator, AveragesOverWindow) {
  DomainModel m({1.0, 1.0}, 0.4);
  SlidingWindowLoadEstimator est(m, 3);
  est.observe({80, 8}, 8.0);   // rates 10, 1
  est.observe({160, 8}, 8.0);  // rates 20, 1
  EXPECT_DOUBLE_EQ(m.weight(0), 15.0);  // mean of 10, 20
  est.observe({240, 8}, 8.0);  // rates 30, 1
  EXPECT_DOUBLE_EQ(m.weight(0), 20.0);  // mean of 10, 20, 30
}

TEST(SlidingWindowEstimator, OldWindowsFallOut) {
  DomainModel m({1.0, 1.0}, 0.4);
  SlidingWindowLoadEstimator est(m, 2);
  est.observe({80, 8}, 8.0);   // 10
  est.observe({160, 8}, 8.0);  // 20
  est.observe({240, 8}, 8.0);  // 30 -> window now {20, 30}
  EXPECT_DOUBLE_EQ(m.weight(0), 25.0);
}

TEST(SlidingWindowEstimator, OracleModeInert) {
  DomainModel m({9.0, 1.0}, 0.4);
  SlidingWindowLoadEstimator est(m, 4, /*oracle=*/true);
  est.observe({1, 99}, 8.0);
  EXPECT_DOUBLE_EQ(m.weight(0), 9.0);
}

TEST(SlidingWindowEstimator, TracksShiftSlowerThanEwma) {
  DomainModel m1({1.0, 1.0}, 0.4);
  DomainModel m2({1.0, 1.0}, 0.4);
  EwmaLoadEstimator ewma(m1, 0.5);
  SlidingWindowLoadEstimator window(m2, 8);
  for (int w = 0; w < 10; ++w) {
    ewma.observe({100, 10}, 8.0);
    window.observe({100, 10}, 8.0);
  }
  // Abrupt shift: the EWMA (alpha .5) adapts faster than an 8-window mean.
  ewma.observe({10, 100}, 8.0);
  window.observe({10, 100}, 8.0);
  EXPECT_LT(m1.weight(0), m2.weight(0));
  EXPECT_GT(m1.weight(1), m2.weight(1));
}

// Exposes the protected incorporate() hook so the drift test can drive
// windows directly and compare each returned average to the ground truth.
struct SlidingWindowProbe : SlidingWindowLoadEstimator {
  using SlidingWindowLoadEstimator::SlidingWindowLoadEstimator;
  std::vector<double> feed(const std::vector<double>& rates) { return incorporate(rates); }
};

TEST(SlidingWindowEstimator, NoFloatingPointDriftOverAMillionWindows) {
  // Regression (PR 8): the pre-fix estimator kept an add-then-subtract
  // running sum. A flash-crowd window (1e16) absorbs every ordinary rate
  // added after it (1e16 + 1.0 == 1e16 in double), so once the spike ages
  // out, the subtraction leaves ~0 where the small windows' mass should
  // be — the reported average collapses and *stays* wrong forever. The
  // fix recomputes the sums from the retained windows each call; here a
  // shadow deque recomputes the exact same reduction independently and
  // every returned average must match, across a million windows.
  DomainModel m({1.0, 1.0}, 0.4);
  SlidingWindowProbe est(m, 32);
  std::deque<std::vector<double>> shadow;
  for (int w = 0; w < 1'000'000; ++w) {
    std::vector<double> rates(2);
    rates[0] = (w % 1000 == 500) ? 1e16 : 1.0 + static_cast<double>(w % 7) * 0.125;
    rates[1] = 2.0 + static_cast<double>(w % 5) * 0.0625;
    shadow.push_back(rates);
    if (shadow.size() > 32) shadow.pop_front();

    const std::vector<double> avg = est.feed(rates);
    double expect0 = 0.0;
    double expect1 = 0.0;
    for (const std::vector<double>& win : shadow) {
      expect0 += win[0];
      expect1 += win[1];
    }
    expect0 /= static_cast<double>(shadow.size());
    expect1 /= static_cast<double>(shadow.size());
    ASSERT_EQ(avg[0], expect0) << "window " << w;
    ASSERT_EQ(avg[1], expect1) << "window " << w;
  }
}

TEST(LoadEstimator, InstalledWeightsNeverHitExactZero) {
  // Regression: a predictive forecast can legitimately clamp to exactly
  // zero — AR predicting past the bottom of a decay, Holt-Winters' floored
  // level+trend, a sliding window whose every retained window saw zero
  // hits for a domain. Installing that zero verbatim tells weight-*ratio*
  // consumers the domain never gets requests: AdaptiveTtlPolicy's
  // hottest/weight domain factor lands on its 1e-12 div-by-zero guard and
  // hands out TTLs ~1e12x the reference (observed as a mean handed-out TTL
  // of ~4e13 s in a 600 s run). observe() floors every installed weight at
  // kMinInstallFraction of the hottest installed weight instead.
  DomainModel m({1.0, 1.0}, 0.4);
  ArLoadEstimator ar(m, 3);
  // Two windows is below AR(3)'s fit threshold, so the forecast is the
  // newest-observation fallback — exactly 0 for domain 0. (The fitted
  // path produces the same zero whenever the regression predicts past the
  // bottom of a decay and clamps.) Domain 1's fallback forecast is 50.
  ar.observe({80, 400}, 8.0);
  ar.observe({0, 400}, 8.0);
  EXPECT_GT(m.weight(0), 0.0);
  EXPECT_GT(m.share(0), 0.0);
  EXPECT_DOUBLE_EQ(m.weight(0), LoadEstimator::kMinInstallFraction * m.weight(1));
}

TEST(SlidingWindowEstimator, AllZeroDomainInstallsPositiveFloor) {
  // Pre-existing shape of the same defect: a domain with zero hits in
  // every retained window averages to exactly 0 — no predictive estimator
  // required.
  DomainModel m({1.0, 1.0}, 0.4);
  SlidingWindowLoadEstimator est(m, 2);
  est.observe({0, 160}, 8.0);
  est.observe({0, 160}, 8.0);
  EXPECT_GT(m.weight(0), 0.0);
  EXPECT_DOUBLE_EQ(m.weight(0), LoadEstimator::kMinInstallFraction * 20.0);
}

}  // namespace
}  // namespace adattl::core
