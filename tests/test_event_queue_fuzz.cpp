// Differential fuzzing of the indexed-heap EventQueue against a trivially
// correct reference implementation (std::multimap ordered by (time, seq)).
// Random interleavings of schedule / cancel / pop must produce identical
// event sequences — this is the backbone the whole simulation's
// determinism rests on.
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "sim/event_queue.h"
#include "sim/random.h"

namespace adattl::sim {
namespace {

/// Reference queue: multimap keyed by (time, seq) with lazy cancellation.
class ReferenceQueue {
 public:
  std::uint64_t schedule(double time) {
    const std::uint64_t id = next_id_++;
    live_.emplace(std::make_pair(time, id), id);
    ids_.insert({id, time});
    return id;
  }

  bool cancel(std::uint64_t id) {
    const auto it = ids_.find(id);
    if (it == ids_.end()) return false;
    live_.erase(std::make_pair(it->second, id));
    ids_.erase(it);
    return true;
  }

  bool empty() const { return live_.empty(); }
  std::size_t size() const { return live_.size(); }

  /// Pops the earliest event, returning (time, id).
  std::pair<double, std::uint64_t> pop() {
    const auto it = live_.begin();
    const std::pair<double, std::uint64_t> out{it->first.first, it->second};
    ids_.erase(it->second);
    live_.erase(it);
    return out;
  }

 private:
  std::map<std::pair<double, std::uint64_t>, std::uint64_t> live_;
  std::map<std::uint64_t, double> ids_;
  std::uint64_t next_id_ = 1;
};

class EventQueueFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueFuzz, MatchesReferenceUnderRandomOps) {
  RngStream rng(GetParam());
  EventQueue dut;
  ReferenceQueue ref;

  // Parallel id maps: op sequences address events by a shared index.
  std::vector<std::optional<EventHandle>> dut_handles;
  std::vector<std::optional<std::uint64_t>> ref_ids;
  std::vector<double> scheduled_time;
  // Tag each scheduled event so pops can be compared by identity: the
  // reference assigns sequential ids in schedule order, so ref id == tag+1.
  std::vector<int> popped_tags_dut;

  double clock = 0.0;  // popped-time watermark; schedules stay >= clock

  for (int step = 0; step < 30000; ++step) {
    const double roll = rng.next_double();
    if (roll < 0.5) {
      // Schedule at a time at/after the watermark; duplicates likely.
      const double t = clock + std::floor(rng.uniform(0.0, 16.0));  // integer offsets: many ties
      const int tag = static_cast<int>(dut_handles.size());
      dut_handles.push_back(dut.schedule(t, [tag, &popped_tags_dut] {
        popped_tags_dut.push_back(tag);
      }));
      ref_ids.push_back(ref.schedule(t));
      scheduled_time.push_back(t);
    } else if (roll < 0.65 && !dut_handles.empty()) {
      // Cancel a random (possibly already-fired/cancelled) event.
      const std::size_t idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(dut_handles.size()) - 1));
      bool dut_ok = false;
      if (dut_handles[idx]) {
        dut_ok = dut.cancel(*dut_handles[idx]);
        dut_handles[idx].reset();
      }
      bool ref_ok = false;
      if (ref_ids[idx]) {
        ref_ok = ref.cancel(*ref_ids[idx]);
        ref_ids[idx].reset();
      }
      ASSERT_EQ(dut_ok, ref_ok) << "step " << step;
    } else if (!dut.empty()) {
      ASSERT_FALSE(ref.empty());
      const auto [ref_t, ref_id] = ref.pop();
      ASSERT_DOUBLE_EQ(dut.next_time(), ref_t);
      auto [t, cb] = dut.pop();
      clock = t;
      cb();
      // Identity: both queues must have popped the *same* event.
      ASSERT_EQ(static_cast<std::uint64_t>(popped_tags_dut.back()) + 1, ref_id)
          << "step " << step;
    }
    ASSERT_EQ(dut.size(), ref.size()) << "step " << step;
  }

  // Drain both and compare identity end-to-end.
  while (!dut.empty()) {
    ASSERT_FALSE(ref.empty());
    const auto [ref_t, ref_id] = ref.pop();
    auto [t, cb] = dut.pop();
    ASSERT_DOUBLE_EQ(t, ref_t);
    cb();
    ASSERT_EQ(static_cast<std::uint64_t>(popped_tags_dut.back()) + 1, ref_id);
  }
  EXPECT_TRUE(ref.empty());

  // FIFO-within-timestamp: the DUT's pop order must be globally stable —
  // tags with equal times must appear in increasing tag order.
  for (std::size_t i = 1; i < popped_tags_dut.size(); ++i) {
    const int a = popped_tags_dut[i - 1];
    const int b = popped_tags_dut[i];
    if (scheduled_time[static_cast<std::size_t>(a)] ==
        scheduled_time[static_cast<std::size_t>(b)]) {
      EXPECT_LT(a, b) << "ties must fire in insertion order";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

/// Naive oracle for the recycling fuzz: a vector of (time, tag) kept
/// unsorted; pop scans for the minimum (time, tag). Trivially correct, and
/// tag order doubles as the FIFO-within-timestamp check because tags are
/// issued in schedule order.
class SortedVectorOracle {
 public:
  void schedule(double time, int tag) { live_.push_back({time, tag}); }

  bool cancel(int tag) {
    for (auto it = live_.begin(); it != live_.end(); ++it) {
      if (it->second == tag) {
        live_.erase(it);
        return true;
      }
    }
    return false;
  }

  bool empty() const { return live_.empty(); }
  std::size_t size() const { return live_.size(); }

  std::pair<double, int> pop() {
    auto best = live_.begin();
    for (auto it = live_.begin(); it != live_.end(); ++it) {
      if (it->first < best->first ||
          (it->first == best->first && it->second < best->second)) {
        best = it;
      }
    }
    const std::pair<double, int> out = *best;
    live_.erase(best);
    return out;
  }

 private:
  std::vector<std::pair<double, int>> live_;
};

class EventQueueRecycleFuzz : public ::testing::TestWithParam<std::uint64_t> {};

// Exercises the free-list/generation handle semantics: a small resident
// set with a high pop rate forces constant slot recycling, every handle
// ever issued is retained and re-cancelled later (stale cancels must hit
// the generation check, not a newer event in the recycled slot), and
// integer timestamps force FIFO tie-breaks against the naive oracle.
TEST_P(EventQueueRecycleFuzz, HandleReuseMatchesNaiveOracle) {
  RngStream rng(GetParam());
  EventQueue dut;
  SortedVectorOracle ref;

  std::vector<EventHandle> all_handles;   // every handle ever issued, by tag
  std::vector<bool> ref_live;             // oracle's view: tag still pending?
  std::vector<int> popped_tags;
  double clock = 0.0;

  for (int step = 0; step < 20000; ++step) {
    const double roll = rng.next_double();
    if (roll < 0.40) {
      // Schedule at integer offsets: many equal-timestamp ties.
      const double t = clock + std::floor(rng.uniform(0.0, 6.0));
      const int tag = static_cast<int>(all_handles.size());
      all_handles.push_back(
          dut.schedule(t, [tag, &popped_tags] { popped_tags.push_back(tag); }));
      ref.schedule(t, tag);
      ref_live.push_back(true);
    } else if (roll < 0.55 && !all_handles.empty()) {
      // Cancel an arbitrary historical handle: mostly stale (fired or
      // cancelled long ago, slot since recycled several times).
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(all_handles.size()) - 1));
      const bool dut_ok = dut.cancel(all_handles[idx]);
      bool ref_ok = false;
      if (ref_live[idx]) {
        ref_ok = ref.cancel(static_cast<int>(idx));
        ref_live[idx] = false;
      }
      ASSERT_EQ(dut_ok, ref_ok) << "stale/live cancel disagreement at step " << step;
    } else if (!dut.empty()) {
      // High pop rate keeps the resident set tiny -> aggressive recycling.
      ASSERT_FALSE(ref.empty());
      const auto [ref_t, ref_tag] = ref.pop();
      ref_live[static_cast<std::size_t>(ref_tag)] = false;
      ASSERT_DOUBLE_EQ(dut.next_time(), ref_t);
      auto [t, cb] = dut.pop();
      clock = t;
      cb();
      ASSERT_EQ(popped_tags.back(), ref_tag) << "identity mismatch at step " << step;
    }
    ASSERT_EQ(dut.size(), ref.size()) << "step " << step;
  }

  while (!dut.empty()) {
    ASSERT_FALSE(ref.empty());
    const auto [ref_t, ref_tag] = ref.pop();
    auto [t, cb] = dut.pop();
    ASSERT_DOUBLE_EQ(t, ref_t);
    cb();
    ASSERT_EQ(popped_tags.back(), ref_tag);
  }
  EXPECT_TRUE(ref.empty());

  // Every handle is now dead; cancelling each must be a rejected stale op.
  // (Equal-timestamp FIFO needs no separate check: the oracle pops ties in
  // tag order and identity was asserted pop-for-pop.)
  for (EventHandle h : all_handles) EXPECT_FALSE(dut.cancel(h));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueRecycleFuzz,
                         ::testing::Values(2u, 7u, 19u, 101u));

TEST(EventQueueHandles, StaleHandleAfterSlotRecycleIsIgnored) {
  EventQueue q;
  const EventHandle h1 = q.schedule(1.0, [] {});
  q.pop();  // frees h1's slot
  // The next schedule recycles the slot; the generation tag must keep the
  // stale h1 from cancelling the new event.
  const EventHandle h2 = q.schedule(2.0, [] {});
  EXPECT_FALSE(h1 == h2);
  EXPECT_FALSE(q.cancel(h1));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(h2));
  EXPECT_FALSE(q.cancel(h2));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueHandles, StaleHandleSurvivesManyRecycleRounds) {
  EventQueue q;
  const EventHandle first = q.schedule(0.5, [] {});
  q.pop();
  for (int round = 0; round < 1000; ++round) {
    const EventHandle h = q.schedule(static_cast<double>(round), [] {});
    EXPECT_FALSE(q.cancel(first)) << "round " << round;
    if (round % 2 == 0) {
      q.pop();
    } else {
      EXPECT_TRUE(q.cancel(h));
    }
  }
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace adattl::sim
