// Property-based suites (parameterized gtest): invariants that must hold
// for EVERY scheduling algorithm, heterogeneity level and domain count —
// scheduler validity, TTL positivity/calibration, and monotonicity of the
// class structure. Randomized-config invariants (conservation laws, TTL
// fairness, NS coherence, crash accounting) live in tests/proptest/.
#include <gtest/gtest.h>

#include "core/policy_factory.h"
#include "core/ttl_policy.h"
#include "sim/random.h"
#include "web/cluster.h"

namespace adattl {
namespace {

// ---------------------------------------------------------------------
// Property 1: every paper policy, at every heterogeneity level, always
// returns a valid decision with a positive TTL, and never selects an
// alarmed server while a non-alarmed one exists.
// ---------------------------------------------------------------------

struct SchedulerCase {
  std::string policy;
  int het_level;
};

class SchedulerInvariants : public ::testing::TestWithParam<SchedulerCase> {};

TEST_P(SchedulerInvariants, DecisionsAreAlwaysValid) {
  const auto& [policy, het] = GetParam();
  sim::Simulator simulator;
  sim::RngStream rng(5);
  const web::ClusterSpec spec = web::table2_cluster(het);
  core::AlarmRegistry alarms(spec.size(), 0.9);
  core::SchedulerFactoryConfig fc;
  fc.capacities = spec.absolute_capacities();
  fc.initial_weights = sim::ZipfDistribution(20, 1.0).probabilities();
  fc.class_threshold = 1.0 / 20;
  core::SchedulerBundle b = core::make_scheduler(policy, fc, alarms, simulator, rng);

  sim::RngStream domain_picker(17);
  for (int i = 0; i < 2000; ++i) {
    const int d = static_cast<int>(domain_picker.uniform_int(0, 19));
    const core::Decision dec = b.scheduler->schedule(d);
    ASSERT_GE(dec.server, 0);
    ASSERT_LT(dec.server, spec.size());
    ASSERT_GT(dec.ttl_sec, 0.0);
    ASSERT_LT(dec.ttl_sec, 24.0 * 3600.0);  // sane upper bound: < 1 day
  }
}

TEST_P(SchedulerInvariants, AlarmedServersAvoided) {
  const auto& [policy, het] = GetParam();
  sim::Simulator simulator;
  sim::RngStream rng(6);
  const web::ClusterSpec spec = web::table2_cluster(het);
  core::AlarmRegistry alarms(spec.size(), 0.9);
  core::SchedulerFactoryConfig fc;
  fc.capacities = spec.absolute_capacities();
  fc.initial_weights = sim::ZipfDistribution(20, 1.0).probabilities();
  fc.class_threshold = 1.0 / 20;
  core::SchedulerBundle b = core::make_scheduler(policy, fc, alarms, simulator, rng);

  // Alarm the last two servers.
  std::vector<double> utils(static_cast<std::size_t>(spec.size()), 0.5);
  utils[static_cast<std::size_t>(spec.size() - 1)] = 0.99;
  utils[static_cast<std::size_t>(spec.size() - 2)] = 0.99;
  alarms.observe(8.0, utils);

  for (int i = 0; i < 500; ++i) {
    const core::Decision dec = b.scheduler->schedule(i % 20);
    ASSERT_LT(dec.server, spec.size() - 2) << policy;
  }
}

std::vector<SchedulerCase> all_scheduler_cases() {
  std::vector<SchedulerCase> cases;
  std::vector<std::string> names = core::paper_policy_names();
  // Extension baselines obey the same invariants as the paper's set.
  for (const char* extra : {"WRR", "MRL", "RR3", "RRK", "RR4-TTL/K", "RRK-TTL/S_K",
                            "WRR-TTL/K", "MRL-TTL/2"}) {
    names.emplace_back(extra);
  }
  for (const std::string& p : names) {
    for (int het : {0, 20, 50, 65}) cases.push_back({p, het});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllPoliciesAllLevels, SchedulerInvariants,
                         ::testing::ValuesIn(all_scheduler_cases()),
                         [](const ::testing::TestParamInfo<SchedulerCase>& info) {
                           std::string n = info.param.policy + "_het" +
                                           std::to_string(info.param.het_level);
                           for (char& c : n) {
                             if (c == '-' || c == '/') c = '_';
                           }
                           return n;
                         });

// ---------------------------------------------------------------------
// Property 1b: the full name grammar — every selection kind composed with
// every TTL flavour builds and produces valid decisions (GEO gets its
// required geo model).
// ---------------------------------------------------------------------

class GrammarSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(GrammarSweep, EveryCombinationBuildsAndSchedules) {
  sim::Simulator simulator;
  sim::RngStream rng(77);
  const web::ClusterSpec spec = web::table2_cluster(35);
  core::AlarmRegistry alarms(spec.size(), 0.9);
  core::SchedulerFactoryConfig fc;
  fc.capacities = spec.absolute_capacities();
  fc.initial_weights = sim::ZipfDistribution(20, 1.0).probabilities();
  fc.class_threshold = 1.0 / 20;
  fc.geo = std::make_shared<const geo::GeoModel>(
      geo::GeoModel::regions(20, spec.size(), 3, 0.02, 0.15));
  core::SchedulerBundle b = core::make_scheduler(GetParam(), fc, alarms, simulator, rng);
  // The scheduler reports the canonical spelling (e.g. "RR-TTL/S_K" is the
  // paper's "DRR-TTL/S_K"); round-tripping the canonical name is identity.
  const std::string canonical = core::parse_policy_name(GetParam()).canonical_name();
  EXPECT_EQ(b.scheduler->name(), canonical);
  EXPECT_EQ(core::parse_policy_name(canonical).canonical_name(), canonical);
  for (int d = 0; d < 20; ++d) {
    const core::Decision dec = b.scheduler->schedule(d);
    ASSERT_GE(dec.server, 0);
    ASSERT_LT(dec.server, spec.size());
    ASSERT_GT(dec.ttl_sec, 0.0);
  }
}

std::vector<std::string> grammar_cases() {
  std::vector<std::string> names;
  const char* selections[] = {"RR", "RR2", "RR3", "RRK", "PRR", "PRR2", "WRR", "DAL",
                              "MRL", "GEO"};
  const char* ttls[] = {"", "-TTL/1", "-TTL/2", "-TTL/3", "-TTL/K",
                        "-TTL/S_1", "-TTL/S_2", "-TTL/S_K"};
  for (const char* sel : selections) {
    for (const char* ttl : ttls) names.push_back(std::string(sel) + ttl);
  }
  // The paper's deterministic spellings.
  for (const char* n : {"DRR-TTL/S_1", "DRR-TTL/S_2", "DRR-TTL/S_K", "DRR2-TTL/S_1",
                        "DRR2-TTL/S_2", "DRR2-TTL/S_K"}) {
    names.emplace_back(n);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(FullGrammar, GrammarSweep, ::testing::ValuesIn(grammar_cases()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-' || c == '/') c = '_';
                           }
                           return n;
                         });

// ---------------------------------------------------------------------
// Property 2: TTL calibration parity holds for every adaptive policy
// across domain counts and heterogeneity levels.
// ---------------------------------------------------------------------

struct TtlCase {
  int num_domains;
  int het_level;
  int classes;
  bool server_term;
};

class TtlCalibrationProperty : public ::testing::TestWithParam<TtlCase> {};

TEST_P(TtlCalibrationProperty, AddressRateEqualsConstantPolicy) {
  const auto& [k, het, classes, server_term] = GetParam();
  core::DomainModel model(sim::ZipfDistribution(k, 1.0).probabilities(), 1.0 / k);
  const web::ClusterSpec spec = web::table2_cluster(het);
  const std::vector<double> caps = spec.absolute_capacities();
  const std::vector<double> shares(caps.size(), 1.0 / static_cast<double>(caps.size()));
  core::AdaptiveTtlPolicy policy(model, caps, classes, server_term, shares, 240.0);
  EXPECT_NEAR(policy.expected_address_rate(), k / 240.0, 1e-9);

  // TTLs must be positive and bounded for every (domain, server) pair.
  for (int d = 0; d < k; ++d) {
    for (std::size_t s = 0; s < caps.size(); ++s) {
      const double t = policy.ttl(d, static_cast<int>(s));
      ASSERT_GT(t, 0.0);
      ASSERT_LT(t, 100000.0);
    }
  }
}

std::vector<TtlCase> all_ttl_cases() {
  std::vector<TtlCase> cases;
  for (int k : {10, 20, 50, 100}) {
    for (int het : {0, 35, 65}) {
      for (int classes : {1, 2, 3, core::kPerDomainClasses}) {
        for (bool st : {false, true}) cases.push_back({k, het, classes, st});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(DomainsByHetByClasses, TtlCalibrationProperty,
                         ::testing::ValuesIn(all_ttl_cases()),
                         [](const ::testing::TestParamInfo<TtlCase>& info) {
                           const auto& p = info.param;
                           return "K" + std::to_string(p.num_domains) + "_het" +
                                  std::to_string(p.het_level) + "_c" +
                                  (p.classes == core::kPerDomainClasses
                                       ? std::string("K")
                                       : std::to_string(p.classes)) +
                                  (p.server_term ? "_S" : "_noS");
                         });

// ---------------------------------------------------------------------
// Property 3 (conservation laws of a full simulation) moved to
// tests/proptest/proptest_conservation.cpp, which runs the shared
// checker in tests/proptest/invariants.h on both the representative
// policy subset and fully randomized configurations.
// ---------------------------------------------------------------------

// ---------------------------------------------------------------------
// Property 4: domain partitions are weight-monotone for any class count.
// ---------------------------------------------------------------------

class PartitionMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(PartitionMonotonicity, HeavierDomainsNeverColder) {
  const int classes = GetParam();
  core::DomainModel m(sim::ZipfDistribution(30, 1.0).probabilities(), 1.0 / 30);
  const std::vector<int> cls = m.partition(classes);
  for (int d = 1; d < 30; ++d) {
    EXPECT_LE(cls[static_cast<std::size_t>(d - 1)], cls[static_cast<std::size_t>(d)])
        << "classes=" << classes;
  }
}

INSTANTIATE_TEST_SUITE_P(ClassCounts, PartitionMonotonicity,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 16, 30,
                                           core::kPerDomainClasses));

}  // namespace
}  // namespace adattl
