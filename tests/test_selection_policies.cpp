#include "core/selection_policies.h"

#include <gtest/gtest.h>

#include <numeric>

namespace adattl::core {
namespace {

std::vector<bool> all_eligible(int n) { return std::vector<bool>(static_cast<std::size_t>(n), true); }

TEST(RoundRobin, CyclesThroughAllServers) {
  RoundRobinPolicy rr(4);
  const auto e = all_eligible(4);
  std::vector<int> got;
  for (int i = 0; i < 8; ++i) got.push_back(rr.select(0, e));
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 0, 1, 2, 3}));
}

TEST(RoundRobin, SkipsIneligibleServers) {
  RoundRobinPolicy rr(4);
  std::vector<bool> e{true, false, true, false};
  std::vector<int> got;
  for (int i = 0; i < 4; ++i) got.push_back(rr.select(0, e));
  EXPECT_EQ(got, (std::vector<int>{0, 2, 0, 2}));
}

TEST(RoundRobin, ResumesCycleAfterRecovery) {
  RoundRobinPolicy rr(3);
  std::vector<bool> e{true, false, true};
  EXPECT_EQ(rr.select(0, e), 0);
  EXPECT_EQ(rr.select(0, e), 2);
  e[1] = true;  // server 1 recovers
  EXPECT_EQ(rr.select(0, e), 0);
  EXPECT_EQ(rr.select(0, e), 1);
}

TEST(RoundRobin, IgnoresDomain) {
  RoundRobinPolicy rr(3);
  const auto e = all_eligible(3);
  EXPECT_EQ(rr.select(7, e), 0);
  EXPECT_EQ(rr.select(0, e), 1);
  EXPECT_EQ(rr.select(3, e), 2);
}

TEST(RoundRobin, UniformStationaryShares) {
  RoundRobinPolicy rr(5);
  for (double s : rr.stationary_shares()) EXPECT_DOUBLE_EQ(s, 0.2);
}

TEST(TwoTierRoundRobin, HotAndNormalUseIndependentPointers) {
  // Domain 0 hot (share 0.7), domains 1..3 normal.
  DomainModel domains({7.0, 1.0, 1.0, 1.0}, 0.25);
  TwoTierRoundRobinPolicy rr2(4, domains);
  const auto e = all_eligible(4);
  EXPECT_EQ(rr2.select(0, e), 0);  // hot pointer
  EXPECT_EQ(rr2.select(0, e), 1);
  EXPECT_EQ(rr2.select(1, e), 0);  // normal pointer starts fresh
  EXPECT_EQ(rr2.select(2, e), 1);
  EXPECT_EQ(rr2.select(0, e), 2);  // hot pointer resumes where it left off
}

TEST(TwoTierRoundRobin, TracksHotSetChanges) {
  DomainModel domains({7.0, 1.0, 1.0, 1.0}, 0.25);
  TwoTierRoundRobinPolicy rr2(4, domains);
  const auto e = all_eligible(4);
  EXPECT_EQ(rr2.select(0, e), 0);  // domain 0 currently hot
  domains.update_weights({1.0, 7.0, 1.0, 1.0});
  EXPECT_EQ(rr2.select(1, e), 1);  // domain 1 now hot, continues hot pointer
  EXPECT_EQ(rr2.select(0, e), 0);  // domain 0 now normal, normal pointer fresh
}

TEST(MultiTierRoundRobin, EachTierHasOwnPointer) {
  // Weights 8/4/1/1 with 3 log-spaced tiers: domain 0 -> tier 0,
  // domain 1 -> tier 1, domains 2,3 -> tier 2.
  DomainModel domains({8.0, 4.0, 1.0, 1.0}, 0.3);
  MultiTierRoundRobinPolicy rr3(4, domains, 3);
  const auto e = all_eligible(4);
  EXPECT_EQ(rr3.select(0, e), 0);  // tier 0
  EXPECT_EQ(rr3.select(1, e), 0);  // tier 1, fresh pointer
  EXPECT_EQ(rr3.select(2, e), 0);  // tier 2, fresh pointer
  EXPECT_EQ(rr3.select(0, e), 1);  // tier 0 continues
  EXPECT_EQ(rr3.select(3, e), 1);  // tier 2 continues (domain 3 shares it)
}

TEST(MultiTierRoundRobin, PerDomainTiersGiveEveryDomainAPointer) {
  DomainModel domains({4.0, 2.0, 1.0}, 0.3);
  MultiTierRoundRobinPolicy rrk(3, domains, kPerDomainClasses);
  const auto e = all_eligible(3);
  EXPECT_EQ(rrk.select(0, e), 0);
  EXPECT_EQ(rrk.select(1, e), 0);
  EXPECT_EQ(rrk.select(2, e), 0);
  EXPECT_EQ(rrk.select(0, e), 1);
  EXPECT_EQ(rrk.name(), "RRK");
}

TEST(MultiTierRoundRobin, OneTierDegeneratesToPlainRR) {
  DomainModel domains({4.0, 2.0, 1.0}, 0.3);
  MultiTierRoundRobinPolicy rr1(3, domains, 1);
  const auto e = all_eligible(3);
  std::vector<int> got;
  for (int i = 0; i < 6; ++i) got.push_back(rr1.select(i % 3, e));
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 0, 1, 2}));
}

TEST(MultiTierRoundRobin, SkipsIneligibleAndNames) {
  DomainModel domains({4.0, 2.0, 1.0}, 0.3);
  MultiTierRoundRobinPolicy rr3(3, domains, 3);
  std::vector<bool> e{false, true, true};
  for (int i = 0; i < 20; ++i) EXPECT_NE(rr3.select(i % 3, e), 0);
  EXPECT_EQ(rr3.name(), "RR3");
  EXPECT_THROW(MultiTierRoundRobinPolicy(0, domains, 3), std::invalid_argument);
  EXPECT_THROW(MultiTierRoundRobinPolicy(3, domains, 0), std::invalid_argument);
}

TEST(ProbabilisticRoundRobin, FullCapacityServersNeverSkipped) {
  // All alphas 1.0 -> behaves exactly like RR.
  ProbabilisticRoundRobinPolicy prr({1.0, 1.0, 1.0}, sim::RngStream(1));
  const auto e = all_eligible(3);
  std::vector<int> got;
  for (int i = 0; i < 6; ++i) got.push_back(prr.select(0, e));
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 0, 1, 2}));
}

TEST(ProbabilisticRoundRobin, LongRunSharesProportionalToCapacity) {
  ProbabilisticRoundRobinPolicy prr({1.0, 0.5, 0.25}, sim::RngStream(2));
  const auto e = all_eligible(3);
  std::vector<int> counts(3, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) counts[static_cast<std::size_t>(prr.select(0, e))]++;
  const double total = 1.0 + 0.5 + 0.25;
  for (int s = 0; s < 3; ++s) {
    const double expect = n * (s == 0 ? 1.0 : s == 1 ? 0.5 : 0.25) / total;
    EXPECT_NEAR(counts[static_cast<std::size_t>(s)], expect, 0.03 * n) << s;
  }
}

TEST(ProbabilisticRoundRobin, StationarySharesMatchAlphas) {
  ProbabilisticRoundRobinPolicy prr({1.0, 0.5, 0.5}, sim::RngStream(3));
  const std::vector<double> s = prr.stationary_shares();
  EXPECT_NEAR(s[0], 0.5, 1e-12);
  EXPECT_NEAR(s[1], 0.25, 1e-12);
  EXPECT_NEAR(s[2], 0.25, 1e-12);
}

TEST(ProbabilisticRoundRobin, NeverReturnsIneligibleServer) {
  ProbabilisticRoundRobinPolicy prr({1.0, 0.1, 0.1, 0.1}, sim::RngStream(4));
  std::vector<bool> e{false, true, true, false};
  for (int i = 0; i < 1000; ++i) {
    const int s = prr.select(0, e);
    EXPECT_TRUE(s == 1 || s == 2) << s;
  }
}

TEST(ProbabilisticRoundRobin, RejectsBadAlphas) {
  EXPECT_THROW(ProbabilisticRoundRobinPolicy({}, sim::RngStream(5)), std::invalid_argument);
  EXPECT_THROW(ProbabilisticRoundRobinPolicy({1.0, 0.0}, sim::RngStream(5)),
               std::invalid_argument);
  EXPECT_THROW(ProbabilisticRoundRobinPolicy({1.0, 1.5}, sim::RngStream(5)),
               std::invalid_argument);
}

TEST(WeightedRoundRobin, ExactSharesOverOneCycle) {
  // Weights 3:2:1 -> over any 6 consecutive picks, counts are 3/2/1.
  WeightedRoundRobinPolicy wrr({3.0, 2.0, 1.0});
  const auto e = all_eligible(3);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 60; ++i) counts[static_cast<std::size_t>(wrr.select(0, e))]++;
  EXPECT_EQ(counts, (std::vector<int>{30, 20, 10}));
}

TEST(WeightedRoundRobin, SmoothInterleaving) {
  // Smooth WRR spreads the heavy server's turns inside the cycle instead
  // of bursting them: weights 2:1:1 yield the period-4 sequence 0,1,2,0
  // (compare naive WRR's 0,0,1,2).
  WeightedRoundRobinPolicy wrr({2.0, 1.0, 1.0});
  const auto e = all_eligible(3);
  std::vector<int> got;
  for (int i = 0; i < 12; ++i) got.push_back(wrr.select(0, e));
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 0, 0, 1, 2, 0, 0, 1, 2, 0}));
}

TEST(WeightedRoundRobin, SkipsIneligible) {
  WeightedRoundRobinPolicy wrr({3.0, 2.0, 1.0});
  std::vector<bool> e{false, true, true};
  for (int i = 0; i < 20; ++i) EXPECT_NE(wrr.select(0, e), 0);
}

TEST(WeightedRoundRobin, EqualWeightsDegenerateToRR) {
  WeightedRoundRobinPolicy wrr({1.0, 1.0, 1.0});
  const auto e = all_eligible(3);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 9; ++i) counts[static_cast<std::size_t>(wrr.select(0, e))]++;
  EXPECT_EQ(counts, (std::vector<int>{3, 3, 3}));
}

TEST(WeightedRoundRobin, SharesAndValidation) {
  WeightedRoundRobinPolicy wrr({4.0, 1.0});
  EXPECT_DOUBLE_EQ(wrr.stationary_shares()[0], 0.8);
  EXPECT_THROW(WeightedRoundRobinPolicy({}), std::invalid_argument);
  EXPECT_THROW(WeightedRoundRobinPolicy({1.0, 0.0}), std::invalid_argument);
}

TEST(ProbabilisticTwoTier, SharesStillCapacityProportional) {
  DomainModel domains({5.0, 1.0, 1.0}, 0.4);
  ProbabilisticTwoTierPolicy prr2({1.0, 0.5, 0.5}, domains, sim::RngStream(6));
  const auto e = all_eligible(3);
  std::vector<int> counts(3, 0);
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    counts[static_cast<std::size_t>(prr2.select(i % 3, e))]++;
  }
  EXPECT_NEAR(counts[0], n * 0.5, 0.03 * n);
  EXPECT_NEAR(counts[1], n * 0.25, 0.03 * n);
  EXPECT_NEAR(counts[2], n * 0.25, 0.03 * n);
}

TEST(ProbabilisticTwoTier, HotAndNormalPointersAreSeparate) {
  DomainModel domains({5.0, 1.0, 1.0}, 0.4);
  // Alphas of 1.0 make the walk deterministic so pointer separation shows.
  ProbabilisticTwoTierPolicy prr2({1.0, 1.0, 1.0}, domains, sim::RngStream(7));
  const auto e = all_eligible(3);
  EXPECT_EQ(prr2.select(0, e), 0);  // hot
  EXPECT_EQ(prr2.select(1, e), 0);  // normal (own pointer)
  EXPECT_EQ(prr2.select(0, e), 1);  // hot continues
  EXPECT_EQ(prr2.select(2, e), 1);  // normal continues
}

}  // namespace
}  // namespace adattl::core
