// The parallel sweep executor's headline contract: running the same
// configuration serially (ADATTL_JOBS=1 / a 1-job executor) and in
// parallel produces bit-identical RunResult vectors — same seeds, same
// ordering, same metrics — including replication counts that don't divide
// evenly by the worker count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "experiment/parallel_executor.h"
#include "experiment/runner.h"

using namespace adattl;

namespace {

experiment::SimulationConfig small_config(std::uint64_t seed = 7701) {
  experiment::SimulationConfig cfg;
  cfg.total_clients = 80;
  cfg.num_domains = 8;
  cfg.warmup_sec = 60.0;
  cfg.duration_sec = 240.0;
  cfg.policy = "DRR2-TTL/S_K";
  cfg.seed = seed;
  return cfg;
}

// Field-by-field exact comparison: the determinism guarantee is
// *bit-identical*, so doubles are compared with ==, not tolerances.
void expect_identical_run(const experiment::RunResult& a, const experiment::RunResult& b) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.max_util_cdf.count(), b.max_util_cdf.count());
  EXPECT_EQ(a.max_util_cdf.cumulative(), b.max_util_cdf.cumulative());
  EXPECT_EQ(a.prob_below_090, b.prob_below_090);
  EXPECT_EQ(a.prob_below_098, b.prob_below_098);
  EXPECT_EQ(a.mean_max_utilization, b.mean_max_utilization);
  EXPECT_EQ(a.max_util_ci_relative, b.max_util_ci_relative);
  EXPECT_EQ(a.mean_server_util, b.mean_server_util);
  EXPECT_EQ(a.aggregate_utilization, b.aggregate_utilization);
  EXPECT_EQ(a.total_pages, b.total_pages);
  EXPECT_EQ(a.total_hits, b.total_hits);
  EXPECT_EQ(a.authoritative_queries, b.authoritative_queries);
  EXPECT_EQ(a.ns_cache_hits, b.ns_cache_hits);
  EXPECT_EQ(a.client_cache_hits, b.client_cache_hits);
  EXPECT_EQ(a.address_request_rate, b.address_request_rate);
  EXPECT_EQ(a.dns_controlled_fraction, b.dns_controlled_fraction);
  EXPECT_EQ(a.mean_ttl, b.mean_ttl);
  EXPECT_EQ(a.alarm_signals, b.alarm_signals);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.mean_page_response_sec, b.mean_page_response_sec);
  EXPECT_EQ(a.per_server_response_sec, b.per_server_response_sec);
  EXPECT_EQ(a.response_p50_sec, b.response_p50_sec);
  EXPECT_EQ(a.response_p95_sec, b.response_p95_sec);
  EXPECT_EQ(a.response_p99_sec, b.response_p99_sec);
  EXPECT_EQ(a.mean_network_rtt_sec, b.mean_network_rtt_sec);
  EXPECT_EQ(a.redirected_pages, b.redirected_pages);
  EXPECT_EQ(a.redirected_fraction, b.redirected_fraction);
}

void expect_identical(const experiment::ReplicatedResult& a,
                      const experiment::ReplicatedResult& b) {
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    SCOPED_TRACE("replication " + std::to_string(i));
    expect_identical_run(a.runs[i], b.runs[i]);
  }
}

TEST(ParallelRunner, SerialAndParallelAreBitIdentical) {
  // 5 replications across 3 workers: the count deliberately does not
  // divide evenly by the job count.
  const int reps = 5;
  experiment::Sweep serial_sweep;
  serial_sweep.add(small_config(), reps);
  experiment::ParallelExecutor one(1);
  const experiment::SweepResult serial = serial_sweep.run(one);

  experiment::Sweep parallel_sweep;
  parallel_sweep.add(small_config(), reps);
  experiment::ParallelExecutor three(3);
  const experiment::SweepResult parallel = parallel_sweep.run(three);

  ASSERT_EQ(serial.points.size(), 1u);
  ASSERT_EQ(parallel.points.size(), 1u);
  expect_identical(serial.points[0], parallel.points[0]);

  // Seed derivation is the serial one: base, base+1, ...
  for (int i = 0; i < reps; ++i) {
    EXPECT_EQ(parallel.points[0].runs[static_cast<std::size_t>(i)].seed,
              small_config().seed + static_cast<std::uint64_t>(i));
  }
}

TEST(ParallelRunner, AdattlJobsEnvSelectsWorkerCountButNotResults) {
  ASSERT_EQ(setenv("ADATTL_JOBS", "1", 1), 0);
  const experiment::ReplicatedResult serial = experiment::run_replications(small_config(), 3);
  ASSERT_EQ(setenv("ADATTL_JOBS", "4", 1), 0);
  const experiment::ReplicatedResult parallel =
      experiment::run_replications(small_config(), 3);
  unsetenv("ADATTL_JOBS");
  expect_identical(serial, parallel);
}

TEST(ParallelRunner, MultiPointSweepPreservesOrderingAndSeeds) {
  const std::vector<std::uint64_t> seeds = {1000, 2000, 3000};
  const std::vector<std::string> policies = {"RR", "PRR2-TTL/K", "DRR2-TTL/S_K"};
  experiment::Sweep sweep;
  for (std::size_t p = 0; p < seeds.size(); ++p) {
    sweep.add_policy(small_config(seeds[p]), policies[p], 4);
  }
  experiment::ParallelExecutor executor(3);
  const experiment::SweepResult swept = sweep.run(executor);

  ASSERT_EQ(swept.points.size(), seeds.size());
  ASSERT_EQ(swept.point_cpu_seconds.size(), seeds.size());
  for (std::size_t p = 0; p < seeds.size(); ++p) {
    ASSERT_EQ(swept.points[p].runs.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
      // Slot (p, i) holds exactly the run seeded seeds[p] + i: results are
      // positional, never completion-ordered.
      EXPECT_EQ(swept.points[p].runs[i].seed, seeds[p] + i);
    }
    EXPECT_GE(swept.point_cpu_seconds[p], 0.0);
  }
}

TEST(ParallelRunner, ProgressFiresOncePerPointWithMonotoneCompletion) {
  experiment::Sweep sweep;
  sweep.add_policy(small_config(11), "RR", 2, "first");
  sweep.add_policy(small_config(22), "RR2", 2, "second");
  sweep.add_policy(small_config(33), "WRR", 2, "third");

  std::vector<experiment::SweepPointDone> events;  // callback is serialized
  experiment::ParallelExecutor executor(4);
  sweep.run(executor, [&](const experiment::SweepPointDone& d) { events.push_back(d); });

  ASSERT_EQ(events.size(), 3u);
  std::vector<std::string> labels;
  for (std::size_t k = 0; k < events.size(); ++k) {
    EXPECT_EQ(events[k].completed, k + 1);  // monotone, one per point
    EXPECT_EQ(events[k].total, 3u);
    EXPECT_GE(events[k].cpu_seconds, 0.0);
    EXPECT_GE(events[k].elapsed_seconds, 0.0);
    labels.push_back(events[k].label);
  }
  std::sort(labels.begin(), labels.end());
  EXPECT_EQ(labels, (std::vector<std::string>{"first", "second", "third"}));
}

TEST(ParallelRunner, TaskExceptionsPropagateFromParallelRun) {
  experiment::Sweep sweep;
  sweep.add_policy(small_config(), "RR", 2);
  sweep.add_policy(small_config(), "NO-SUCH-POLICY", 2);
  experiment::ParallelExecutor executor(3);
  EXPECT_THROW(sweep.run(executor), std::exception);

  experiment::ParallelExecutor serial(1);
  EXPECT_THROW(sweep.run(serial), std::exception);
}

TEST(ParallelRunner, RejectsNonPositiveReplications) {
  experiment::Sweep sweep;
  EXPECT_THROW(sweep.add(small_config(), 0), std::invalid_argument);
  EXPECT_THROW(experiment::run_replications(small_config(), 0), std::invalid_argument);
}

TEST(ParallelRunner, ExecutorReusableAcrossBatches) {
  experiment::ParallelExecutor executor(2);
  experiment::Sweep sweep;
  sweep.add(small_config(), 2);
  const experiment::SweepResult first = sweep.run(executor);
  const experiment::SweepResult second = sweep.run(executor);
  expect_identical(first.points[0], second.points[0]);
}

// ---- ReplicatedResult::mean_cdf_curve edge cases ----

TEST(MeanCdfCurve, EmptyRunsYieldAllZeroCurve) {
  const experiment::ReplicatedResult empty;
  const auto curve = empty.mean_cdf_curve(4);
  ASSERT_EQ(curve.size(), 5u);
  for (const auto& [u, p] : curve) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
    EXPECT_EQ(p, 0.0);
  }
  EXPECT_EQ(curve.front().first, 0.0);
  EXPECT_EQ(curve.back().first, 1.0);
}

TEST(MeanCdfCurve, SingleIntervalMatchesProbBelowEndpoints) {
  experiment::SimulationConfig cfg = small_config();
  cfg.duration_sec = 120.0;
  const experiment::ReplicatedResult rep = experiment::run_replications(cfg, 2);

  const auto curve = rep.mean_cdf_curve(1);  // points = 1: endpoints only
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_EQ(curve.front().first, 0.0);
  EXPECT_EQ(curve.back().first, 1.0);
  EXPECT_EQ(curve.front().second, rep.prob_below(0.0).mean);
  EXPECT_EQ(curve.back().second, rep.prob_below(1.0).mean);
}

TEST(MeanCdfCurve, EndpointsAgreeWithProbBelowAtDefaultResolution) {
  experiment::SimulationConfig cfg = small_config();
  cfg.duration_sec = 120.0;
  const experiment::ReplicatedResult rep = experiment::run_replications(cfg, 2);
  const auto curve = rep.mean_cdf_curve(50);
  ASSERT_EQ(curve.size(), 51u);
  EXPECT_EQ(curve.front().second, rep.prob_below(0.0).mean);
  EXPECT_EQ(curve.back().second, rep.prob_below(1.0).mean);
}

TEST(MeanCdfCurve, RejectsNonPositivePointCount) {
  const experiment::ReplicatedResult empty;
  EXPECT_THROW(empty.mean_cdf_curve(0), std::invalid_argument);
  EXPECT_THROW(empty.mean_cdf_curve(-3), std::invalid_argument);
}

}  // namespace
