// Multi-shard daemon stress: real sockets, concurrent resolvers, decision
// conservation. Run under TSan in CI (-DADATTL_SANITIZE=thread) — the
// shard hot path is supposed to be lock-free because it shares nothing,
// and this test is where that claim meets the checker.
//
// Sized for a 1-CPU CI container: enough packets to interleave shard
// wakeups and stats snapshots, not a throughput benchmark.
#include "dnswire/daemon.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "dnswire/ecs.h"
#include "dnswire/message.h"

namespace adattl::dnswire {
namespace {

constexpr char kSite[] = "www.site.org";
const std::vector<std::uint32_t> kServers = {0x0a000001, 0x0a000002, 0x0a000003};

DaemonConfig daemon_config(int shards, int batch) {
  DaemonConfig cfg;
  cfg.site_name = kSite;
  cfg.server_ipv4 = kServers;
  cfg.policy = "DRR2-TTL/S_K";
  cfg.num_domains = 20;
  cfg.seed = 7;
  cfg.port = 0;  // ephemeral
  cfg.shards = shards;
  cfg.batch = batch;
  return cfg;
}

/// One closed-loop resolver: send a query, wait for the reply, retry on
/// UDP loss. Every reply is decoded and checked against the server set.
struct ClientResult {
  int answers = 0;
  int malformed = 0;
  int bad_address = 0;
  int gave_up = 0;
};

ClientResult run_client(int port, int queries, bool with_ecs, unsigned salt) {
  ClientResult res;
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    res.gave_up = queries;
    return res;
  }
  sockaddr_in dst{};
  dst.sin_family = AF_INET;
  dst.sin_port = htons(static_cast<std::uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &dst.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&dst), sizeof(dst)) != 0) {
    ::close(fd);
    res.gave_up = queries;
    return res;
  }

  std::uint8_t rx[2048];
  for (int i = 0; i < queries; ++i) {
    auto q = encode_query(static_cast<std::uint16_t>(i), kSite);
    if (with_ecs) {
      ClientSubnet s{};
      s.family = kEcsFamilyIpv4;
      s.source_prefix = 24;
      s.address_len = 3;
      s.address[0] = 10;
      s.address[1] = static_cast<std::uint8_t>(salt);
      s.address[2] = static_cast<std::uint8_t>(i);
      append_ecs_option(&q, s);
    }
    bool got = false;
    for (int attempt = 0; attempt < 8 && !got; ++attempt) {
      if (::send(fd, q.data(), q.size(), 0) != static_cast<ssize_t>(q.size())) continue;
      pollfd p{fd, POLLIN, 0};
      if (::poll(&p, 1, 500) <= 0) continue;
      const ssize_t n = ::recv(fd, rx, sizeof(rx), 0);
      if (n < 12) continue;
      // A retry's late twin can arrive first; ids match so either copy
      // of the same query's answer is acceptable.
      std::vector<std::uint8_t> wire(rx, rx + n);
      Header h;
      std::uint32_t ip = 0, ttl = 0;
      if (!decode_a_response(wire, &h, &ip, &ttl)) {
        res.malformed++;
        continue;
      }
      if (h.rcode == kRcodeNoError) {
        bool known = false;
        for (const auto s : kServers) known = known || (s == ip);
        if (!known || ttl < 1) res.bad_address++;
        else res.answers++;
        got = true;
      }
    }
    if (!got) res.gave_up++;
  }
  ::close(fd);
  return res;
}

TEST(DnsdConcurrent, DecisionConservationAcrossShards) {
  UdpDaemon daemon(daemon_config(/*shards=*/4, /*batch=*/8));
  daemon.start();

  constexpr int kClients = 8;
  constexpr int kQueriesPer = 150;
  std::vector<std::thread> threads;
  std::vector<ClientResult> results(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      // Half the resolvers forward ECS, half rely on the source hash.
      results[static_cast<std::size_t>(c)] = run_client(
          daemon.port(), kQueriesPer, /*with_ecs=*/c % 2 == 0, static_cast<unsigned>(c));
    });
  }
  for (auto& t : threads) t.join();
  daemon.stop();

  int answers = 0, malformed = 0, bad = 0, gave_up = 0;
  for (const auto& r : results) {
    answers += r.answers;
    malformed += r.malformed;
    bad += r.bad_address;
    gave_up += r.gave_up;
  }
  EXPECT_EQ(malformed, 0);
  EXPECT_EQ(bad, 0);
  // Loopback UDP with retries: essentially everything should get through.
  EXPECT_GE(answers, kClients * kQueriesPer * 9 / 10) << "gave_up=" << gave_up;

  // The conservation law: every positive answer consumed exactly one
  // scheduling decision, across all shards, no double-counting, no loss.
  const ShardStatsSnapshot t = daemon.totals();
  EXPECT_EQ(t.decisions, t.answered);
  EXPECT_EQ(t.refused, 0u);
  EXPECT_GE(t.answered, static_cast<std::uint64_t>(answers));
  EXPECT_GT(t.ecs_keys, 0u);   // the ECS half was really keyed by subnet
  EXPECT_GT(t.hash_keys, 0u);  // and the plain half by source hash
  EXPECT_EQ(t.ecs_malformed, 0u);
  EXPECT_EQ(t.dropped_undecodable, 0u);

  // Per-shard sums must equal the totals (snapshot coherence).
  ShardStatsSnapshot sum;
  for (int s = 0; s < daemon.shards(); ++s) {
    const auto ss = daemon.shard_stats(s);
    sum.answered += ss.answered;
    sum.decisions += ss.decisions;
    sum.received += ss.received;
  }
  EXPECT_EQ(sum.answered, t.answered);
  EXPECT_EQ(sum.decisions, t.decisions);
  EXPECT_EQ(sum.received, t.received);
}

TEST(DnsdConcurrent, MetricsPublishWhileShardsRun) {
  // publish_metrics() races the shard threads by design (atomic snapshots,
  // registry written from this thread only) — TSan checks the claim.
  auto cfg = daemon_config(/*shards=*/2, /*batch=*/4);
  UdpDaemon daemon(cfg);
  obs::MetricsRegistry registry;
  daemon.bind_observability(&registry);
  daemon.start();

  std::thread client([&] { run_client(daemon.port(), 300, true, 1); });
  for (int i = 0; i < 50; ++i) {
    daemon.publish_metrics();
    (void)daemon.totals();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  client.join();
  daemon.stop();
  daemon.publish_metrics();

  const auto snap = registry.snapshot();
  double published = 0;
  for (int s = 0; s < daemon.shards(); ++s) {
    const auto* m = snap.find("dnsd.shard" + std::to_string(s) + ".answered");
    ASSERT_NE(m, nullptr) << "per-shard answered counter not registered";
    published += m->value;
  }
  EXPECT_EQ(static_cast<std::uint64_t>(published), daemon.totals().answered);
}

TEST(DnsdConcurrent, MaxQueriesStopsAllShards) {
  auto cfg = daemon_config(/*shards=*/2, /*batch=*/4);
  cfg.max_queries = 100;
  UdpDaemon daemon(cfg);
  daemon.start();

  std::atomic<bool> done{false};
  std::thread client([&] {
    // Open-loop blaster: keep sending until the daemon says it is done.
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    sockaddr_in dst{};
    dst.sin_family = AF_INET;
    dst.sin_port = htons(static_cast<std::uint16_t>(daemon.port()));
    inet_pton(AF_INET, "127.0.0.1", &dst.sin_addr);
    ::connect(fd, reinterpret_cast<sockaddr*>(&dst), sizeof(dst));
    const auto q = encode_query(1, kSite);
    std::uint8_t rx[2048];
    while (!done.load(std::memory_order_relaxed)) {
      ::send(fd, q.data(), q.size(), 0);
      pollfd p{fd, POLLIN, 0};
      if (::poll(&p, 1, 5) > 0) (void)::recv(fd, rx, sizeof(rx), 0);
    }
    ::close(fd);
  });

  for (int i = 0; i < 2000 && !daemon.finished(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(daemon.finished());
  done.store(true);
  client.join();
  daemon.stop();
  EXPECT_GE(daemon.totals().answered + daemon.totals().refused, 100u);
}

TEST(DnsdConcurrent, StopWithoutTrafficIsClean) {
  UdpDaemon daemon(daemon_config(3, 16));
  daemon.start();
  EXPECT_FALSE(daemon.finished());
  daemon.request_stop();  // the signal-handler path
  daemon.stop();
  EXPECT_TRUE(daemon.finished());
  EXPECT_EQ(daemon.totals().received, 0u);
}

}  // namespace
}  // namespace adattl::dnswire
