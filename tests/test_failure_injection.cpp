// Failure-injection suite: silent server stalls, hard crashes, capacity
// degradations and authoritative-DNS outages, queue-threshold alarms, and
// their end-to-end interaction with the DNS feedback loop.
#include <gtest/gtest.h>

#include "experiment/cli.h"
#include "experiment/site.h"
#include "sim/random.h"

namespace adattl {
namespace {

TEST(WebServerPause, PausedServerQueuesWithoutServing) {
  sim::Simulator simulator;
  sim::RngStream rng(1);
  web::WebServer s(simulator, 0, 100.0, 1, rng.split());
  s.set_paused(true);
  int done = 0;
  for (int i = 0; i < 5; ++i) s.submit_page(web::PageRequest{0, 10, [&] { ++done; }});
  simulator.run_until(100.0);
  EXPECT_EQ(done, 0);
  EXPECT_EQ(s.queue_length(), 5u);
  EXPECT_DOUBLE_EQ(s.cumulative_busy_time(simulator.now()), 0.0);
}

TEST(WebServerPause, ResumeDrainsBacklog) {
  sim::Simulator simulator;
  sim::RngStream rng(2);
  web::WebServer s(simulator, 0, 100.0, 1, rng.split());
  s.set_paused(true);
  int done = 0;
  for (int i = 0; i < 5; ++i) s.submit_page(web::PageRequest{0, 10, [&] { ++done; }});
  simulator.run_until(50.0);
  s.set_paused(false);
  simulator.run();
  EXPECT_EQ(done, 5);
  EXPECT_EQ(s.queue_length(), 0u);
}

TEST(WebServerPause, InFlightPageFinishesDuringPause) {
  sim::Simulator simulator;
  sim::RngStream rng(3);
  web::WebServer s(simulator, 0, 100.0, 1, rng.split());
  int done = 0;
  s.submit_page(web::PageRequest{0, 10, [&] { ++done; }});  // starts service
  s.submit_page(web::PageRequest{0, 10, [&] { ++done; }});  // queued
  s.set_paused(true);
  simulator.run_until(100.0);
  EXPECT_EQ(done, 1);  // the in-flight page completed, the queued one did not
  EXPECT_EQ(s.queue_length(), 1u);
}

TEST(QueueAlarm, UtilizationOnlyFeedbackMissesStalledServer) {
  core::AlarmRegistry reg(2, 0.9);  // paper-faithful: no queue threshold
  reg.observe_full(8.0, {0.05, 0.5}, {500, 2});
  EXPECT_FALSE(reg.is_alarmed(0));  // huge backlog, but utilization is low
}

TEST(QueueAlarm, QueueThresholdCatchesStalledServer) {
  core::AlarmRegistry reg(2, 0.9, true, /*queue_threshold=*/50);
  reg.observe_full(8.0, {0.05, 0.5}, {500, 2});
  EXPECT_TRUE(reg.is_alarmed(0));
  EXPECT_FALSE(reg.is_alarmed(1));
  // Backlog drains below the threshold: normal signal.
  reg.observe_full(16.0, {0.8, 0.5}, {10, 2});
  EXPECT_FALSE(reg.is_alarmed(0));
  EXPECT_EQ(reg.normal_signals(), 1u);
}

TEST(QueueAlarm, QueueVectorSizeValidated) {
  core::AlarmRegistry reg(2, 0.9, true, 50);
  EXPECT_THROW(reg.observe_full(8.0, {0.5, 0.5}, {1}), std::invalid_argument);
  EXPECT_NO_THROW(reg.observe_full(8.0, {0.5, 0.5}, {}));  // queues optional
}

experiment::SimulationConfig outage_config() {
  experiment::SimulationConfig cfg;
  cfg.cluster = web::table2_cluster(20);
  cfg.policy = "DRR2-TTL/S_K";
  cfg.warmup_sec = 100.0;
  cfg.duration_sec = 2000.0;
  cfg.seed = 55;
  // Server 2 silently stalls for 10 minutes mid-run.
  cfg.outages.push_back({600.0, 600.0, 2});
  return cfg;
}

TEST(OutageIntegration, OutageDegradesResponseTimes) {
  experiment::SimulationConfig healthy = outage_config();
  healthy.outages.clear();
  const experiment::RunResult base = experiment::Site(healthy).run();
  const experiment::RunResult hit = experiment::Site(outage_config()).run();
  // The workload is closed-loop, so only the clients mapped to the stalled
  // server get trapped — few pages, but each waits up to 10 minutes. That
  // inflates the *mean* dramatically while p99 moves only modestly.
  EXPECT_GT(hit.mean_page_response_sec, 2.0 * base.mean_page_response_sec);
  EXPECT_GE(hit.response_p99_sec, base.response_p99_sec);
}

TEST(OutageIntegration, QueueAlarmLimitsTheDamage) {
  const experiment::RunResult blind = experiment::Site(outage_config()).run();
  experiment::SimulationConfig cfg = outage_config();
  cfg.alarm_queue_threshold = 30;
  const experiment::RunResult guarded = experiment::Site(cfg).run();
  // With backlog-based exclusion, new mappings steer around the stalled
  // server, so far fewer pages get trapped behind it.
  EXPECT_LT(guarded.response_p99_sec, blind.response_p99_sec);
  EXPECT_LT(guarded.mean_page_response_sec, blind.mean_page_response_sec);
}

TEST(OutageIntegration, ServerRecoversAfterOutage) {
  experiment::Site site(outage_config());
  const experiment::RunResult r = site.run();
  // After recovery the server drained its queue and kept serving.
  EXPECT_FALSE(site.cluster().server(2).paused());
  EXPECT_GT(site.cluster().server(2).pages_served(), 0u);
  EXPECT_GT(r.total_hits, 0u);
}

TEST(OutageConfig, Validation) {
  experiment::SimulationConfig cfg;
  cfg.outages.push_back({-1.0, 10.0, 0});
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.outages = {{10.0, 0.0, 0}};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.outages = {{10.0, 5.0, 99}};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.outages = {{10.0, 5.0, 3}};
  EXPECT_NO_THROW(cfg.validate());
}

// --- Crash / degrade / DNS-outage integration ------------------------------

experiment::SimulationConfig crash_config() {
  experiment::SimulationConfig cfg;
  cfg.cluster = web::table2_cluster(20);
  cfg.policy = "DRR2-TTL/S_K";
  cfg.warmup_sec = 100.0;
  cfg.duration_sec = 2000.0;
  cfg.seed = 77;
  // Server 2 crashes hard for 10 minutes mid-run.
  cfg.faults.crashes.push_back({600.0, 600.0, 2});
  return cfg;
}

TEST(CrashIntegration, LegacyOutageFlagEqualsPauseWindow) {
  // The legacy --outage path now routes through the fault injector; a
  // schedule declaring the same window as a pause must reproduce the run
  // bit-for-bit (same events, same RNG draws, same results).
  experiment::SimulationConfig legacy = outage_config();
  experiment::SimulationConfig modern = outage_config();
  modern.outages.clear();
  modern.faults.pauses.push_back({600.0, 600.0, 2});
  const experiment::RunResult a = experiment::Site(legacy).run();
  const experiment::RunResult b = experiment::Site(modern).run();
  EXPECT_EQ(a.total_pages, b.total_pages);
  EXPECT_EQ(a.total_hits, b.total_hits);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.authoritative_queries, b.authoritative_queries);
  EXPECT_DOUBLE_EQ(a.mean_page_response_sec, b.mean_page_response_sec);
  EXPECT_DOUBLE_EQ(a.mean_max_utilization, b.mean_max_utilization);
}

TEST(CrashIntegration, CrashLosesWorkAndClientsFeelIt) {
  experiment::SimulationConfig healthy = crash_config();
  healthy.faults.crashes.clear();
  const experiment::RunResult base = experiment::Site(healthy).run();
  const experiment::RunResult hit = experiment::Site(crash_config()).run();
  // A crash is visible: submissions bounce until cached mappings expire,
  // so clients record failed requests the fault-free run cannot have.
  EXPECT_EQ(base.failed_requests, 0u);
  EXPECT_EQ(base.lost_pages, 0u);
  EXPECT_GT(hit.failed_requests, 0u);
  EXPECT_GE(hit.failed_requests, hit.lost_pages);
  EXPECT_GT(hit.unavailability_fraction, 0.0);
  EXPECT_LT(hit.unavailability_fraction, 1.0);
  EXPECT_DOUBLE_EQ(base.unavailability_fraction, 0.0);
}

TEST(CrashIntegration, ServerRecoversAndServesAgain) {
  experiment::Site site(crash_config());
  const experiment::RunResult r = site.run();
  EXPECT_FALSE(site.cluster().server(2).crashed());
  EXPECT_GT(site.cluster().server(2).pages_served(), 0u);
  EXPECT_GT(r.total_hits, 0u);
}

TEST(CrashIntegration, DnsExcludesCrashedServerAndReadmitsIt) {
  // Probe the scheduler's assignment counters from inside the run: during
  // the crash window no new mappings may target server 2 (set_down excludes
  // it regardless of alarm state); after recovery it must win mappings
  // again (it restarts empty, so the deterministic policy favors it).
  experiment::Site site(crash_config());
  std::uint64_t during_start = 0, during_end = 0;
  site.simulator().at(650.0, [&] { during_start = site.scheduler().assignments()[2]; });
  site.simulator().at(1199.0, [&] { during_end = site.scheduler().assignments()[2]; });
  site.run();
  EXPECT_EQ(during_start, during_end);  // not one mapping while down
  EXPECT_GT(site.scheduler().assignments()[2], during_end);  // re-admitted
}

TEST(DegradeIntegration, HalvedCapacityRaisesUtilizationOrResponse) {
  experiment::SimulationConfig cfg;
  cfg.cluster = web::table2_cluster(20);
  cfg.policy = "DRR2-TTL/S_K";
  cfg.warmup_sec = 100.0;
  cfg.duration_sec = 1500.0;
  cfg.seed = 99;
  experiment::SimulationConfig slow = cfg;
  slow.faults.degradations.push_back({300.0, 1200.0, 0, 0.4});
  const experiment::RunResult base = experiment::Site(cfg).run();
  const experiment::RunResult hit = experiment::Site(slow).run();
  // Server 0 is the biggest machine; running it at 40% for most of the
  // run must hurt responses — and the DNS was never told (degradations
  // are the blind spot only measurement-based feedback can see).
  EXPECT_GT(hit.mean_page_response_sec, base.mean_page_response_sec);
  EXPECT_EQ(hit.failed_requests, 0u);  // degraded, not failed
}

// --- Elastic pool events ---------------------------------------------------

experiment::SimulationConfig elastic_config() {
  experiment::SimulationConfig cfg;
  cfg.cluster = web::table2_cluster(20);
  cfg.policy = "DRR2-TTL/S_K";
  cfg.warmup_sec = 100.0;
  cfg.duration_sec = 2000.0;
  cfg.seed = 77;
  // Server 2 parked from t = 600 s, re-admitted at t = 1500 s.
  cfg.faults.scale_events.push_back({600.0, 2, false});
  cfg.faults.scale_events.push_back({1500.0, 2, true});
  return cfg;
}

TEST(ElasticIntegration, ScaleDownDrainsWithoutLosingAnything) {
  experiment::Site site(elastic_config());
  std::uint64_t parked_start = 0, parked_end = 0;
  site.simulator().at(650.0, [&] { parked_start = site.scheduler().assignments()[2]; });
  site.simulator().at(1499.0, [&] { parked_end = site.scheduler().assignments()[2]; });
  const experiment::RunResult r = site.run();
  // Not one new mapping while parked — but unlike a crash the server
  // stays up, drains its queue, and keeps serving cached mappings, so
  // clients never notice: conservation is exact.
  EXPECT_EQ(parked_start, parked_end);
  EXPECT_GT(site.scheduler().assignments()[2], parked_end);  // re-admitted
  EXPECT_EQ(r.failed_requests, 0u);
  EXPECT_EQ(r.lost_pages, 0u);
  EXPECT_EQ(r.lost_hits, 0u);
  EXPECT_EQ(r.pool_changes, 2u);
  EXPECT_EQ(r.autoscale_ups, 0u);  // scripted, not autoscaler-initiated
  EXPECT_EQ(r.final_pool_size, site.cluster().size());
  EXPECT_GT(site.cluster().server(2).pages_served(), 0u);
}

TEST(ElasticIntegration, ResizeShrinksCapacityForGood) {
  experiment::SimulationConfig cfg;
  cfg.cluster = web::table2_cluster(20);
  cfg.policy = "DRR2-TTL/S_K";
  cfg.warmup_sec = 100.0;
  cfg.duration_sec = 1500.0;
  cfg.seed = 99;
  experiment::SimulationConfig shrunk = cfg;
  // Unlike a degrade window, a resize has no end: server 0 stays at 40%.
  shrunk.faults.resizes.push_back({300.0, 0, 0.4});
  const experiment::RunResult base = experiment::Site(cfg).run();
  const experiment::RunResult hit = experiment::Site(shrunk).run();
  EXPECT_GT(hit.mean_page_response_sec, base.mean_page_response_sec);
  EXPECT_EQ(hit.failed_requests, 0u);  // slower, never lost
  EXPECT_EQ(hit.lost_pages, 0u);
}

TEST(ChaosIntegration, CrashPlusDnsOutageEndToEnd) {
  experiment::SimulationConfig cfg = crash_config();
  cfg.faults.dns_outages.push_back({700.0, 120.0});
  cfg.faults.degradations.push_back({800.0, 400.0, 1, 0.5});
  cfg.metrics_enabled = true;
  experiment::Site site(cfg);
  const experiment::RunResult r = site.run();
  // Outage accounting: the report carries the scheduled unreachable time.
  EXPECT_DOUBLE_EQ(r.dns_outage_sec, 120.0);
  // During the outage expired NSs stale-serve instead of querying.
  std::uint64_t stale = 0, failed_queries = 0;
  for (int d = 0; d < site.config().num_domains; ++d) {
    stale += site.name_server(d).stale_serves();
    failed_queries += site.name_server(d).failed_queries();
  }
  EXPECT_GT(failed_queries, 0u);
  EXPECT_GT(stale, 0u);
  // The metrics snapshot exposes the failure instruments by name.
  ASSERT_NE(r.metrics, nullptr);
  ASSERT_NE(r.metrics->find("site.failed_requests"), nullptr);
  ASSERT_NE(r.metrics->find("server.2.lost_hits"), nullptr);
  ASSERT_NE(r.metrics->find("ns.stale_serves"), nullptr);
  ASSERT_NE(r.metrics->find("dns.outage_sec"), nullptr);
  EXPECT_DOUBLE_EQ(r.metrics->find("dns.outage_sec")->value, 120.0);
  EXPECT_GT(r.metrics->find("site.failed_requests")->value, 0.0);
  EXPECT_GT(r.metrics->find("fault.events")->value, 0.0);
}

TEST(FaultFreeEquivalence, EmptyScheduleMatchesNoSchedule) {
  // An explicitly empty fault schedule must not perturb the run at all —
  // not an event, not an RNG draw. (The kernel golden tests pin absolute
  // values; this pins the relative contract.)
  experiment::SimulationConfig plain;
  plain.cluster = web::table2_cluster(20);
  plain.policy = "RR";
  plain.warmup_sec = 50.0;
  plain.duration_sec = 800.0;
  plain.seed = 5;
  experiment::SimulationConfig with_empty = plain;
  with_empty.faults.merge(fault::FaultSchedule{});
  const experiment::RunResult a = experiment::Site(plain).run();
  const experiment::RunResult b = experiment::Site(with_empty).run();
  EXPECT_EQ(a.total_pages, b.total_pages);
  EXPECT_EQ(a.total_hits, b.total_hits);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_DOUBLE_EQ(a.mean_page_response_sec, b.mean_page_response_sec);
  EXPECT_DOUBLE_EQ(a.aggregate_utilization, b.aggregate_utilization);
  EXPECT_EQ(a.failed_requests, 0u);
  EXPECT_EQ(b.failed_requests, 0u);
}

TEST(FaultCli, ParsesFaultFlags) {
  const experiment::CliOptions opt = experiment::parse_cli(
      {"--crash=900:600:2", "--degrade=1200:900:1:0.5", "--dns-outage=1000:120",
       "--retry-delay=2.5"});
  ASSERT_EQ(opt.config.faults.crashes.size(), 1u);
  EXPECT_EQ(opt.config.faults.crashes[0].server, 2);
  ASSERT_EQ(opt.config.faults.degradations.size(), 1u);
  EXPECT_DOUBLE_EQ(opt.config.faults.degradations[0].factor, 0.5);
  ASSERT_EQ(opt.config.faults.dns_outages.size(), 1u);
  EXPECT_DOUBLE_EQ(opt.config.client_retry_delay_sec, 2.5);
  EXPECT_THROW(experiment::parse_cli({"--crash=900:600"}), std::invalid_argument);
  EXPECT_THROW(experiment::parse_cli({"--faults=/nonexistent.faults"}),
               std::runtime_error);
}

TEST(FaultCli, FaultsValidateAgainstClusterSize) {
  experiment::SimulationConfig cfg;
  cfg.faults.crashes.push_back({10.0, 5.0, 99});
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.faults.crashes = {{10.0, 5.0, 3}};
  EXPECT_NO_THROW(cfg.validate());
  cfg.client_retry_delay_sec = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(OutageCli, ParsesOutageAndQueueAlarm) {
  const experiment::CliOptions opt =
      experiment::parse_cli({"--outage=600:300:2", "--queue-alarm=40"});
  ASSERT_EQ(opt.config.outages.size(), 1u);
  EXPECT_DOUBLE_EQ(opt.config.outages[0].start_sec, 600.0);
  EXPECT_DOUBLE_EQ(opt.config.outages[0].duration_sec, 300.0);
  EXPECT_EQ(opt.config.outages[0].server, 2);
  EXPECT_EQ(opt.config.alarm_queue_threshold, 40u);
  EXPECT_THROW(experiment::parse_cli({"--outage=600:300"}), std::invalid_argument);
  EXPECT_THROW(experiment::parse_cli({"--outage=600:300:99"}), std::invalid_argument);
}

}  // namespace
}  // namespace adattl
