// Failure-injection suite: silent server stalls, queue-threshold alarms,
// and their end-to-end interaction with the DNS feedback loop.
#include <gtest/gtest.h>

#include "experiment/cli.h"
#include "experiment/site.h"
#include "sim/random.h"

namespace adattl {
namespace {

TEST(WebServerPause, PausedServerQueuesWithoutServing) {
  sim::Simulator simulator;
  sim::RngStream rng(1);
  web::WebServer s(simulator, 0, 100.0, 1, rng.split());
  s.set_paused(true);
  int done = 0;
  for (int i = 0; i < 5; ++i) s.submit_page(web::PageRequest{0, 10, [&] { ++done; }});
  simulator.run_until(100.0);
  EXPECT_EQ(done, 0);
  EXPECT_EQ(s.queue_length(), 5u);
  EXPECT_DOUBLE_EQ(s.cumulative_busy_time(simulator.now()), 0.0);
}

TEST(WebServerPause, ResumeDrainsBacklog) {
  sim::Simulator simulator;
  sim::RngStream rng(2);
  web::WebServer s(simulator, 0, 100.0, 1, rng.split());
  s.set_paused(true);
  int done = 0;
  for (int i = 0; i < 5; ++i) s.submit_page(web::PageRequest{0, 10, [&] { ++done; }});
  simulator.run_until(50.0);
  s.set_paused(false);
  simulator.run();
  EXPECT_EQ(done, 5);
  EXPECT_EQ(s.queue_length(), 0u);
}

TEST(WebServerPause, InFlightPageFinishesDuringPause) {
  sim::Simulator simulator;
  sim::RngStream rng(3);
  web::WebServer s(simulator, 0, 100.0, 1, rng.split());
  int done = 0;
  s.submit_page(web::PageRequest{0, 10, [&] { ++done; }});  // starts service
  s.submit_page(web::PageRequest{0, 10, [&] { ++done; }});  // queued
  s.set_paused(true);
  simulator.run_until(100.0);
  EXPECT_EQ(done, 1);  // the in-flight page completed, the queued one did not
  EXPECT_EQ(s.queue_length(), 1u);
}

TEST(QueueAlarm, UtilizationOnlyFeedbackMissesStalledServer) {
  core::AlarmRegistry reg(2, 0.9);  // paper-faithful: no queue threshold
  reg.observe_full(8.0, {0.05, 0.5}, {500, 2});
  EXPECT_FALSE(reg.is_alarmed(0));  // huge backlog, but utilization is low
}

TEST(QueueAlarm, QueueThresholdCatchesStalledServer) {
  core::AlarmRegistry reg(2, 0.9, true, /*queue_threshold=*/50);
  reg.observe_full(8.0, {0.05, 0.5}, {500, 2});
  EXPECT_TRUE(reg.is_alarmed(0));
  EXPECT_FALSE(reg.is_alarmed(1));
  // Backlog drains below the threshold: normal signal.
  reg.observe_full(16.0, {0.8, 0.5}, {10, 2});
  EXPECT_FALSE(reg.is_alarmed(0));
  EXPECT_EQ(reg.normal_signals(), 1u);
}

TEST(QueueAlarm, QueueVectorSizeValidated) {
  core::AlarmRegistry reg(2, 0.9, true, 50);
  EXPECT_THROW(reg.observe_full(8.0, {0.5, 0.5}, {1}), std::invalid_argument);
  EXPECT_NO_THROW(reg.observe_full(8.0, {0.5, 0.5}, {}));  // queues optional
}

experiment::SimulationConfig outage_config() {
  experiment::SimulationConfig cfg;
  cfg.cluster = web::table2_cluster(20);
  cfg.policy = "DRR2-TTL/S_K";
  cfg.warmup_sec = 100.0;
  cfg.duration_sec = 2000.0;
  cfg.seed = 55;
  // Server 2 silently stalls for 10 minutes mid-run.
  cfg.outages.push_back({600.0, 600.0, 2});
  return cfg;
}

TEST(OutageIntegration, OutageDegradesResponseTimes) {
  experiment::SimulationConfig healthy = outage_config();
  healthy.outages.clear();
  const experiment::RunResult base = experiment::Site(healthy).run();
  const experiment::RunResult hit = experiment::Site(outage_config()).run();
  // The workload is closed-loop, so only the clients mapped to the stalled
  // server get trapped — few pages, but each waits up to 10 minutes. That
  // inflates the *mean* dramatically while p99 moves only modestly.
  EXPECT_GT(hit.mean_page_response_sec, 2.0 * base.mean_page_response_sec);
  EXPECT_GE(hit.response_p99_sec, base.response_p99_sec);
}

TEST(OutageIntegration, QueueAlarmLimitsTheDamage) {
  const experiment::RunResult blind = experiment::Site(outage_config()).run();
  experiment::SimulationConfig cfg = outage_config();
  cfg.alarm_queue_threshold = 30;
  const experiment::RunResult guarded = experiment::Site(cfg).run();
  // With backlog-based exclusion, new mappings steer around the stalled
  // server, so far fewer pages get trapped behind it.
  EXPECT_LT(guarded.response_p99_sec, blind.response_p99_sec);
  EXPECT_LT(guarded.mean_page_response_sec, blind.mean_page_response_sec);
}

TEST(OutageIntegration, ServerRecoversAfterOutage) {
  experiment::Site site(outage_config());
  const experiment::RunResult r = site.run();
  // After recovery the server drained its queue and kept serving.
  EXPECT_FALSE(site.cluster().server(2).paused());
  EXPECT_GT(site.cluster().server(2).pages_served(), 0u);
  EXPECT_GT(r.total_hits, 0u);
}

TEST(OutageConfig, Validation) {
  experiment::SimulationConfig cfg;
  cfg.outages.push_back({-1.0, 10.0, 0});
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.outages = {{10.0, 0.0, 0}};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.outages = {{10.0, 5.0, 99}};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.outages = {{10.0, 5.0, 3}};
  EXPECT_NO_THROW(cfg.validate());
}

TEST(OutageCli, ParsesOutageAndQueueAlarm) {
  const experiment::CliOptions opt =
      experiment::parse_cli({"--outage=600:300:2", "--queue-alarm=40"});
  ASSERT_EQ(opt.config.outages.size(), 1u);
  EXPECT_DOUBLE_EQ(opt.config.outages[0].start_sec, 600.0);
  EXPECT_DOUBLE_EQ(opt.config.outages[0].duration_sec, 300.0);
  EXPECT_EQ(opt.config.outages[0].server, 2);
  EXPECT_EQ(opt.config.alarm_queue_threshold, 40u);
  EXPECT_THROW(experiment::parse_cli({"--outage=600:300"}), std::invalid_argument);
  EXPECT_THROW(experiment::parse_cli({"--outage=600:300:99"}), std::invalid_argument);
}

}  // namespace
}  // namespace adattl
