#include "dnscache/client_cache.h"

#include <gtest/gtest.h>

#include "core/policy_factory.h"
#include "experiment/site.h"

namespace adattl::dnscache {
namespace {

class ClientCacheTest : public ::testing::Test {
 protected:
  ClientCacheTest() : rng(4), alarms(4, 0.9) {
    core::SchedulerFactoryConfig fc;
    fc.capacities = {100.0, 100.0, 100.0, 100.0};
    fc.initial_weights = {5.0, 3.0, 1.0};
    fc.class_threshold = 0.2;
    bundle = core::make_scheduler("RR", fc, alarms, simulator, rng);
    ns = std::make_unique<NameServer>(simulator, 0, *bundle.scheduler);
  }

  sim::Simulator simulator;
  sim::RngStream rng;
  core::AlarmRegistry alarms;
  core::SchedulerBundle bundle;
  std::unique_ptr<NameServer> ns;
};

TEST_F(ClientCacheTest, FirstResolveGoesUpstream) {
  ClientCache cc(simulator, *ns);
  EXPECT_FALSE(cc.has_fresh_mapping());
  const web::ServerId s = cc.resolve();
  EXPECT_EQ(s, 0);
  EXPECT_EQ(cc.upstream_queries(), 1u);
  EXPECT_EQ(cc.hits(), 0u);
  EXPECT_TRUE(cc.has_fresh_mapping());
}

TEST_F(ClientCacheTest, RepeatResolvesServedLocally) {
  ClientCache cc(simulator, *ns);
  const web::ServerId first = cc.resolve();
  for (int i = 0; i < 5; ++i) EXPECT_EQ(cc.resolve(), first);
  EXPECT_EQ(cc.hits(), 5u);
  EXPECT_EQ(cc.upstream_queries(), 1u);
  // The NS saw exactly one query from this client.
  EXPECT_EQ(ns->cache_hits() + ns->authoritative_queries(), 1u);
}

TEST_F(ClientCacheTest, InheritsRemainingTtlNotFullTtl) {
  ClientCache early(simulator, *ns);
  early.resolve();  // NS mapping created at t=0, expires at 240
  simulator.run_until(200.0);
  ClientCache late(simulator, *ns);
  late.resolve();  // joins at t=200: only 40 s of TTL remain
  simulator.run_until(239.0);
  EXPECT_TRUE(late.has_fresh_mapping());
  simulator.run_until(241.0);
  // Both expire with the NS entry at t=240, not 200+240.
  EXPECT_FALSE(early.has_fresh_mapping());
  EXPECT_FALSE(late.has_fresh_mapping());
}

TEST_F(ClientCacheTest, RefreshesAfterExpiry) {
  ClientCache cc(simulator, *ns);
  const web::ServerId first = cc.resolve();
  simulator.run_until(241.0);
  const web::ServerId second = cc.resolve();
  EXPECT_EQ(cc.upstream_queries(), 2u);
  EXPECT_NE(first, second);  // RR moved to the next server
}

TEST_F(ClientCacheTest, TwoClientsShareTheNsMapping) {
  ClientCache a(simulator, *ns);
  ClientCache b(simulator, *ns);
  EXPECT_EQ(a.resolve(), b.resolve());
  // Only one authoritative query despite two clients.
  EXPECT_EQ(ns->authoritative_queries(), 1u);
}

TEST(ClientCacheSite, EnabledCachesAbsorbResolutions) {
  experiment::SimulationConfig cfg;
  cfg.policy = "RR";
  cfg.warmup_sec = 100.0;
  cfg.duration_sec = 1200.0;
  cfg.seed = 5;
  cfg.client_cache_enabled = true;
  experiment::Site site(cfg);
  const experiment::RunResult r = site.run();
  EXPECT_GT(r.client_cache_hits, 0u);

  // Same scenario without client caches: they report zero hits and the NS
  // absorbs more traffic.
  cfg.client_cache_enabled = false;
  experiment::Site site2(cfg);
  const experiment::RunResult r2 = site2.run();
  EXPECT_EQ(r2.client_cache_hits, 0u);
  EXPECT_GT(r2.ns_cache_hits, r.ns_cache_hits);
}

}  // namespace
}  // namespace adattl::dnscache
