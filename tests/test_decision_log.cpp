#include "experiment/decision_log.h"

#include <gtest/gtest.h>

#include "experiment/site.h"

namespace adattl::experiment {
namespace {

TEST(DecisionLog, RecordsEntriesInOrder) {
  DecisionLog log;
  log.record(1.0, 3, {2, 240.0});
  log.record(2.0, 4, {1, 120.0});
  ASSERT_EQ(log.entries().size(), 2u);
  EXPECT_DOUBLE_EQ(log.entries()[0].time, 1.0);
  EXPECT_EQ(log.entries()[0].domain, 3);
  EXPECT_EQ(log.entries()[0].server, 2);
  EXPECT_DOUBLE_EQ(log.entries()[1].ttl_sec, 120.0);
  EXPECT_EQ(log.total_recorded(), 2u);
  EXPECT_EQ(log.discarded(), 0u);
}

TEST(DecisionLog, RingKeepsNewestEntries) {
  DecisionLog log(3);
  for (int i = 0; i < 5; ++i) {
    log.record(static_cast<double>(i), i, {0, 240.0});
  }
  ASSERT_EQ(log.entries().size(), 3u);
  EXPECT_EQ(log.total_recorded(), 5u);
  EXPECT_EQ(log.discarded(), 2u);
  // CSV is chronological: domains 2, 3, 4 survive.
  const std::string csv = log.to_csv();
  EXPECT_NE(csv.find("2.000,2,0"), std::string::npos);
  EXPECT_EQ(csv.find("1.000,1,0"), std::string::npos);
  EXPECT_LT(csv.find("2.000,2,0"), csv.find("4.000,4,0"));
}

TEST(DecisionLog, CsvFormat) {
  DecisionLog log;
  log.record(8.0, 1, {2, 43.2});
  EXPECT_EQ(log.to_csv(), "time,domain,server,ttl\n8.000,1,2,43.200\n");
}

TEST(DecisionLog, PerServerCounts) {
  DecisionLog log;
  log.record(1.0, 0, {0, 240.0});
  log.record(2.0, 1, {2, 240.0});
  log.record(3.0, 2, {2, 240.0});
  const std::vector<std::uint64_t> counts = log.per_server_counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[2], 2u);
}

TEST(DecisionLog, AttachedToSiteCapturesAllDecisions) {
  SimulationConfig cfg;
  cfg.policy = "DRR2-TTL/S_K";
  cfg.warmup_sec = 0.0;
  cfg.duration_sec = 1800.0;
  cfg.seed = 66;
  Site site(cfg);
  DecisionLog log;
  log.attach(site.simulator(), site.scheduler());
  const RunResult r = site.run();
  EXPECT_EQ(log.total_recorded(), r.authoritative_queries);
  ASSERT_FALSE(log.entries().empty());
  // Times are stamped and monotone.
  for (std::size_t i = 1; i < log.entries().size(); ++i) {
    EXPECT_LE(log.entries()[i - 1].time, log.entries()[i].time);
  }
  // Per-server counts agree with the scheduler's own bookkeeping.
  const std::vector<std::uint64_t> counts = log.per_server_counts();
  for (std::size_t s = 0; s < counts.size(); ++s) {
    EXPECT_EQ(counts[s], site.scheduler().assignments()[s]);
  }
  // Hot domains re-resolve more often under TTL/K: domain 0 must appear
  // strictly more often than the coldest domain.
  int d0 = 0, d19 = 0;
  for (const DecisionEntry& e : log.entries()) {
    d0 += (e.domain == 0);
    d19 += (e.domain == 19);
  }
  EXPECT_GT(d0, d19);
}

}  // namespace
}  // namespace adattl::experiment
