// adattl_dnsblast — open-loop UDP DNS load generator for adattl_dnsd.
//
//   ./build/tools/adattl_dnsblast --port=5353 --qps=50000 --duration=5 --json
//
// Open-loop means the send schedule never waits for replies: queries go
// out on a fixed cadence (--qps; 0 = as fast as the socket accepts) so a
// slow server shows up as latency and loss instead of silently throttling
// the offered load. Latency is matched by DNS message id through a ring
// of send timestamps and accumulated into a log-geometric histogram
// (~1 µs .. ~1 s) for p50/p90/p99 without storing samples.
//
// --ecs rotates an EDNS0 Client-Subnet option over --subnets distinct /24
// prefixes so the daemon's subnet-keyed path is exercised; without it the
// daemon falls back to the source-address hash.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "dnswire/ecs.h"
#include "dnswire/message.h"

using namespace adattl;
using Clock = std::chrono::steady_clock;

namespace {

/// Log-geometric latency histogram: 64 buckets per factor-of-10 decade
/// from 1 µs to 1 s. Fixed memory, ~3.7% relative quantile error.
class LatencyHistogram {
 public:
  static constexpr int kDecades = 6;          // 1e0 .. 1e6 µs
  static constexpr int kPerDecade = 64;
  static constexpr int kBuckets = kDecades * kPerDecade + 2;

  void record(double us) {
    counts_[bucket(us)]++;
    total_++;
  }
  std::uint64_t total() const { return total_; }

  /// Returns the bucket-midpoint latency (µs) at quantile q in [0,1].
  double quantile(double q) const {
    if (total_ == 0) return 0.0;
    std::uint64_t target = static_cast<std::uint64_t>(q * static_cast<double>(total_));
    if (target >= total_) target = total_ - 1;
    std::uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen += counts_[b];
      if (seen > target) return midpoint(b);
    }
    return midpoint(kBuckets - 1);
  }

 private:
  static int bucket(double us) {
    if (us < 1.0) return 0;
    const double pos = std::log10(us) * kPerDecade;
    const int b = 1 + static_cast<int>(pos);
    return b >= kBuckets ? kBuckets - 1 : b;
  }
  static double midpoint(int b) {
    if (b == 0) return 0.5;
    return std::pow(10.0, (static_cast<double>(b - 1) + 0.5) / kPerDecade);
  }

  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
};

struct Options {
  std::string host = "127.0.0.1";
  int port = 5353;
  std::string name = "www.site.org";
  double qps = 0.0;        // 0 = unpaced, send as fast as possible
  double duration_sec = 2.0;
  bool ecs = false;
  int subnets = 64;        // distinct /24 prefixes to rotate through
  int batch = 32;          // sendmmsg/recvmmsg batch (1 = plain send/recv)
  bool json = false;
};

int usage() {
  std::fprintf(stderr,
               "usage: adattl_dnsblast [--host=IP] [--port=N] [--name=FQDN]\n"
               "  [--qps=N (0 = max)] [--duration=SEC] [--ecs] [--subnets=N]\n"
               "  [--batch=N (mmsg batch; 1 = plain send/recv)] [--json]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    const std::string flag = arg.substr(0, eq);
    const std::string value = eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (flag == "--host") opt.host = value;
    else if (flag == "--port") opt.port = std::stoi(value);
    else if (flag == "--name") opt.name = value;
    else if (flag == "--qps") opt.qps = std::stod(value);
    else if (flag == "--duration") opt.duration_sec = std::stod(value);
    else if (flag == "--ecs") opt.ecs = value.empty() || value == "true";
    else if (flag == "--subnets") opt.subnets = std::stoi(value);
    else if (flag == "--batch") opt.batch = std::stoi(value);
    else if (flag == "--json") opt.json = value.empty() || value == "true";
    else return usage();
  }
  if (opt.port <= 0 || opt.port > 65535 || opt.duration_sec <= 0 || opt.subnets < 1 ||
      opt.batch < 1 || opt.batch > 1024)
    return usage();

  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    std::perror("adattl_dnsblast: socket");
    return 1;
  }
  int buf = 1 << 21;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &buf, sizeof(buf));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &buf, sizeof(buf));
  sockaddr_in dst{};
  dst.sin_family = AF_INET;
  dst.sin_port = htons(static_cast<std::uint16_t>(opt.port));
  if (inet_pton(AF_INET, opt.host.c_str(), &dst.sin_addr) != 1) {
    std::fprintf(stderr, "adattl_dnsblast: bad host %s\n", opt.host.c_str());
    return 2;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&dst), sizeof(dst)) != 0) {
    std::perror("adattl_dnsblast: connect");
    return 1;
  }

  // Pre-build one query per ECS subnet variant (or a single plain one);
  // per-send we only patch the 2-byte id. Ring of send timestamps indexed
  // by id lets a reply be matched without per-query allocation.
  std::vector<std::vector<std::uint8_t>> templates;
  const int variants = opt.ecs ? opt.subnets : 1;
  templates.reserve(static_cast<std::size_t>(variants));
  for (int v = 0; v < variants; ++v) {
    std::vector<std::uint8_t> q = dnswire::encode_query(0, opt.name);
    if (opt.ecs) {
      dnswire::ClientSubnet subnet{};
      subnet.family = dnswire::kEcsFamilyIpv4;
      subnet.source_prefix = 24;
      subnet.address_len = 3;
      subnet.address[0] = 10;
      subnet.address[1] = static_cast<std::uint8_t>(v >> 8);
      subnet.address[2] = static_cast<std::uint8_t>(v & 0xff);
      dnswire::append_ecs_option(&q, subnet);
    }
    templates.push_back(std::move(q));
  }

  constexpr int kRing = 65536;  // one slot per possible DNS id
  std::vector<Clock::time_point> sent_at(kRing);
  std::vector<std::uint8_t> sent_valid(kRing, 0);

  LatencyHistogram hist;
  std::uint64_t sent = 0, send_fails = 0, received = 0, answers = 0, refused = 0;
  std::uint16_t next_id = 1;

  const auto start = Clock::now();
  const auto deadline = start + std::chrono::duration<double>(opt.duration_sec);
  const double gap_ns = opt.qps > 0 ? 1e9 / opt.qps : 0.0;
  double send_credit_ns = 0.0;
  auto last_pace = start;
  std::uint8_t rx[2048];

  // One reply's worth of accounting, shared by both receive paths.
  const auto note_reply = [&](const std::uint8_t* buf, ssize_t n,
                              const Clock::time_point& now) {
    received++;
    if (n < 4) return;
    const std::uint16_t id = static_cast<std::uint16_t>(buf[0]) << 8 | buf[1];
    const std::uint8_t rcode = buf[3] & 0x0f;
    if (rcode == dnswire::kRcodeNoError) answers++;
    else if (rcode == dnswire::kRcodeRefused) refused++;
    if (sent_valid[id]) {
      sent_valid[id] = 0;
      hist.record(std::chrono::duration<double, std::micro>(now - sent_at[id]).count());
    }
  };

#if defined(__linux__)
  // mmsg plumbing: reused header/buffer arrays for batched receive and send.
  const int B = opt.batch;
  std::vector<std::vector<std::uint8_t>> rx_bufs(static_cast<std::size_t>(B));
  std::vector<iovec> rx_iov(static_cast<std::size_t>(B));
  std::vector<mmsghdr> rx_hdrs(static_cast<std::size_t>(B));
  for (int i = 0; i < B; ++i) rx_bufs[static_cast<std::size_t>(i)].resize(2048);
  std::vector<std::vector<std::uint8_t>> tx_bufs(static_cast<std::size_t>(B));
  std::vector<iovec> tx_iov(static_cast<std::size_t>(B));
  std::vector<mmsghdr> tx_hdrs(static_cast<std::size_t>(B));
#endif

  auto drain_replies = [&](bool block) {
#if defined(__linux__)
    if (opt.batch > 1) {
      for (;;) {
        for (int i = 0; i < B; ++i) {
          auto& iv = rx_iov[static_cast<std::size_t>(i)];
          iv.iov_base = rx_bufs[static_cast<std::size_t>(i)].data();
          iv.iov_len = rx_bufs[static_cast<std::size_t>(i)].size();
          auto& mh = rx_hdrs[static_cast<std::size_t>(i)];
          std::memset(&mh, 0, sizeof(mh));
          mh.msg_hdr.msg_iov = &iv;
          mh.msg_hdr.msg_iovlen = 1;
        }
        const int got = ::recvmmsg(fd, rx_hdrs.data(), static_cast<unsigned>(B),
                                   MSG_DONTWAIT, nullptr);
        if (got <= 0) {
          if ((errno == EAGAIN || errno == EWOULDBLOCK) && block) {
            pollfd p{fd, POLLIN, 0};
            if (::poll(&p, 1, 10) > 0) continue;
          }
          return;
        }
        const auto now = Clock::now();
        for (int i = 0; i < got; ++i) {
          note_reply(rx_bufs[static_cast<std::size_t>(i)].data(),
                     static_cast<ssize_t>(rx_hdrs[static_cast<std::size_t>(i)].msg_len),
                     now);
        }
        if (got < B) return;  // socket drained
      }
    }
#endif
    for (;;) {
      const ssize_t n = ::recv(fd, rx, sizeof(rx), 0);
      if (n < 0) {
        if ((errno == EAGAIN || errno == EWOULDBLOCK) && block) {
          pollfd p{fd, POLLIN, 0};
          if (::poll(&p, 1, 10) > 0) continue;
        }
        return;
      }
      note_reply(rx, n, Clock::now());
    }
  };

  /// Sends up to `want` queries; returns how many actually left.
  const auto send_burst = [&](int want) {
    int done = 0;
#if defined(__linux__)
    while (opt.batch > 1 && want - done >= 2) {
      const int k = std::min(B, want - done);
      for (int i = 0; i < k; ++i) {
        auto& buf = tx_bufs[static_cast<std::size_t>(i)];
        buf = templates[(sent + static_cast<std::uint64_t>(i)) % templates.size()];
        const std::uint16_t id = next_id++;
        buf[0] = static_cast<std::uint8_t>(id >> 8);
        buf[1] = static_cast<std::uint8_t>(id & 0xff);
        auto& iv = tx_iov[static_cast<std::size_t>(i)];
        iv.iov_base = buf.data();
        iv.iov_len = buf.size();
        auto& mh = tx_hdrs[static_cast<std::size_t>(i)];
        std::memset(&mh, 0, sizeof(mh));
        mh.msg_hdr.msg_iov = &iv;
        mh.msg_hdr.msg_iovlen = 1;
      }
      const int out = ::sendmmsg(fd, tx_hdrs.data(), static_cast<unsigned>(k), 0);
      const auto now = Clock::now();
      if (out <= 0) {
        send_fails += static_cast<std::uint64_t>(k);
        return done;
      }
      for (int i = 0; i < out; ++i) {
        const auto& buf = tx_bufs[static_cast<std::size_t>(i)];
        const std::uint16_t id = static_cast<std::uint16_t>(buf[0]) << 8 | buf[1];
        sent_at[id] = now;
        sent_valid[id] = 1;
      }
      sent += static_cast<std::uint64_t>(out);
      done += out;
      if (out < k) {  // kernel refused part of the batch: buffers full
        send_fails += static_cast<std::uint64_t>(k - out);
        return done;
      }
    }
#endif
    while (done < want) {
      std::vector<std::uint8_t>& q = templates[sent % templates.size()];
      const std::uint16_t id = next_id++;
      q[0] = static_cast<std::uint8_t>(id >> 8);
      q[1] = static_cast<std::uint8_t>(id & 0xff);
      if (::send(fd, q.data(), q.size(), 0) == static_cast<ssize_t>(q.size())) {
        sent_at[id] = Clock::now();
        sent_valid[id] = 1;
        sent++;
        done++;
      } else {
        send_fails++;
        break;  // socket buffer full: stop the burst, drain instead
      }
    }
    return done;
  };

  while (Clock::now() < deadline) {
    const auto now = Clock::now();
    if (gap_ns > 0) {
      send_credit_ns += std::chrono::duration<double, std::nano>(now - last_pace).count();
      last_pace = now;
      if (send_credit_ns > gap_ns * 1024) send_credit_ns = gap_ns * 1024;  // cap the burst
    }
    const int burst = gap_ns > 0 ? static_cast<int>(send_credit_ns / gap_ns)
                                 : std::max(64, opt.batch);
    if (gap_ns > 0) send_credit_ns -= burst * gap_ns;
    send_burst(burst);
    drain_replies(gap_ns > 0);
  }
  // Post-deadline grace: collect in-flight replies for up to 200 ms.
  const auto grace = Clock::now() + std::chrono::milliseconds(200);
  while (Clock::now() < grace && received < sent) drain_replies(true);
  ::close(fd);

  const double elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  const double answers_per_sec = static_cast<double>(answers) / opt.duration_sec;
  const double p50 = hist.quantile(0.50), p90 = hist.quantile(0.90), p99 = hist.quantile(0.99);
  if (opt.json) {
    std::printf(
        "{\"sent\": %llu, \"send_fails\": %llu, \"received\": %llu, \"answers\": %llu, "
        "\"refused\": %llu, \"duration_sec\": %.3f, \"answers_per_sec\": %.1f, "
        "\"p50_us\": %.1f, \"p90_us\": %.1f, \"p99_us\": %.1f, \"ecs\": %s, \"batch\": %d}\n",
        static_cast<unsigned long long>(sent), static_cast<unsigned long long>(send_fails),
        static_cast<unsigned long long>(received), static_cast<unsigned long long>(answers),
        static_cast<unsigned long long>(refused), elapsed, answers_per_sec, p50, p90, p99,
        opt.ecs ? "true" : "false", opt.batch);
  } else {
    std::printf("sent %llu (%llu send-fails), received %llu, answers %llu, refused %llu\n",
                static_cast<unsigned long long>(sent),
                static_cast<unsigned long long>(send_fails),
                static_cast<unsigned long long>(received),
                static_cast<unsigned long long>(answers),
                static_cast<unsigned long long>(refused));
    std::printf("%.1f answers/s over %.2f s; latency p50 %.0f us, p90 %.0f us, p99 %.0f us\n",
                answers_per_sec, elapsed, p50, p90, p99);
  }
  return answers > 0 ? 0 : 1;
}
