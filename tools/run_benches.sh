#!/usr/bin/env bash
# Runs the event-kernel micro/macro benchmarks and distills a compact
# BENCH_kernel.json perf baseline (items/sec per benchmark) for trajectory
# tracking across PRs.
#
# Usage: tools/run_benches.sh [--release] [build-dir] [output-json]
#   --release    configure + build an optimized tree (CMAKE_BUILD_TYPE=Release)
#                in the build dir first (default dir becomes ./build-release),
#                so the captured numbers are never from a debug binary
#   build-dir    defaults to ./build (./build-release with --release);
#                without --release it must already be built
#   output-json  defaults to ./BENCH_kernel.json
#
# The full google-benchmark JSON dumps are kept next to the output as
# BENCH_kernel.raw.<target>.json for anyone who wants the details.
set -euo pipefail

RELEASE=0
if [[ "${1:-}" == "--release" ]]; then
  RELEASE=1
  shift
fi

BUILD_DIR="${1:-$([[ ${RELEASE} -eq 1 ]] && echo build-release || echo build)}"
OUT="${2:-BENCH_kernel.json}"
FILTER='BM_SchedulePop|BM_SteadyStateChurn|BM_CancelHeavy|BM_FullSite'

if [[ ${RELEASE} -eq 1 ]]; then
  echo "configuring Release tree in ${BUILD_DIR} ..." >&2
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release >&2
  cmake --build "${BUILD_DIR}" -j \
        --target micro_event_queue micro_simulation micro_obs micro_fault >&2
fi

# The google-benchmark "library_build_type" context reports how the
# *library* was compiled (the distro package says "debug"), which says
# nothing about our binaries. Record the tree's actual CMAKE_BUILD_TYPE so
# a baseline captured from a debug build can never masquerade as Release.
BENCH_BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "${BUILD_DIR}/CMakeCache.txt" 2>/dev/null || true)"
export BENCH_BUILD_TYPE="${BENCH_BUILD_TYPE:-unspecified}"

for target in micro_event_queue micro_simulation; do
  bin="${BUILD_DIR}/bench/${target}"
  if [[ ! -x "${bin}" ]]; then
    echo "error: ${bin} not built (cmake --build ${BUILD_DIR} --target ${target})" >&2
    exit 1
  fi
  echo "running ${bin} ..." >&2
  "${bin}" --benchmark_filter="${FILTER}" \
           --benchmark_format=json \
           --benchmark_out="${OUT%.json}.raw.${target}.json" \
           --benchmark_out_format=json > /dev/null
done

python3 - "${OUT}" "${OUT%.json}.raw.micro_event_queue.json" \
                   "${OUT%.json}.raw.micro_simulation.json" <<'PY'
import json, os, sys

out_path, *raw_paths = sys.argv[1:]
distilled = {}
context = {}
for path in raw_paths:
    with open(path) as f:
        dump = json.load(f)
    ctx = dump.get("context", {})
    context.setdefault("date", ctx.get("date"))
    context.setdefault("host_name", ctx.get("host_name"))
    context.setdefault("num_cpus", ctx.get("num_cpus"))
    context.setdefault("build_type", os.environ.get("BENCH_BUILD_TYPE", "unspecified"))
    for b in dump.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        entry = {"real_time_ns": b.get("real_time")}
        if "items_per_second" in b:
            entry["items_per_second"] = b["items_per_second"]
        distilled[b["name"]] = entry

with open(out_path, "w") as f:
    json.dump({"context": context, "benchmarks": distilled}, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path} ({len(distilled)} benchmarks)")
PY

# ---- Observability overhead: tracing/metrics enabled vs disabled ----
# Distilled into BENCH_obs.json next to OUT: the hot-path micro costs and
# the full-site enabled/disabled delta (the <3% regression budget).
OBS_OUT="$(dirname "${OUT}")/BENCH_obs.json"
obs_bin="${BUILD_DIR}/bench/micro_obs"
if [[ ! -x "${obs_bin}" ]]; then
  echo "error: ${obs_bin} not built (cmake --build ${BUILD_DIR} --target micro_obs)" >&2
  exit 1
fi
echo "running ${obs_bin} ..." >&2
"${obs_bin}" --benchmark_format=json \
             --benchmark_out="${OBS_OUT%.json}.raw.micro_obs.json" \
             --benchmark_out_format=json > /dev/null

python3 - "${OBS_OUT}" "${OBS_OUT%.json}.raw.micro_obs.json" <<'PY'
import json, os, sys

out_path, raw_path = sys.argv[1:]
with open(raw_path) as f:
    dump = json.load(f)
ctx = dump.get("context", {})
distilled = {}
for b in dump.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    entry = {"real_time_ns": b.get("real_time")}
    if "items_per_second" in b:
        entry["items_per_second"] = b["items_per_second"]
    distilled[b["name"]] = entry

summary = {}
off = distilled.get("BM_FullSiteObs/disabled", {}).get("real_time_ns")
on = distilled.get("BM_FullSiteObs/enabled", {}).get("real_time_ns")
if off and on:
    summary["full_site_enabled_over_disabled"] = on / off
    summary["full_site_overhead_percent"] = (on / off - 1.0) * 100.0

with open(out_path, "w") as f:
    json.dump({"context": {"date": ctx.get("date"),
                           "host_name": ctx.get("host_name"),
                           "num_cpus": ctx.get("num_cpus"),
                           "build_type": os.environ.get("BENCH_BUILD_TYPE", "unspecified")},
               "benchmarks": distilled,
               "summary": summary}, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path} ({len(distilled)} benchmarks)")
PY

# ---- Fault-layer overhead: empty schedule vs plain site, chaos vs empty ----
# BM_FullSiteFault/fault_free mirrors BM_FullSite/RR exactly, so their
# ratio is the cost of carrying the (inert) fault subsystem; it must stay
# within noise of 1.0. The chaos ratio tracks what a populated schedule
# costs on top.
FAULT_OUT="$(dirname "${OUT}")/BENCH_fault.json"
fault_bin="${BUILD_DIR}/bench/micro_fault"
if [[ ! -x "${fault_bin}" ]]; then
  echo "error: ${fault_bin} not built (cmake --build ${BUILD_DIR} --target micro_fault)" >&2
  exit 1
fi
# Single-shot full-site timings jitter by ±10% on small machines, far
# above the 3% budget, and the machine's speed drifts over the minutes a
# full bench run takes. So the comparison is PAIRED: each repetition runs
# micro_fault and the plain BM_FullSite/RR back to back, the per-pair
# ratios cancel the drift, and the median ratio is what gets asserted.
FAULT_PAIRS="${FAULT_PAIRS:-5}"
echo "running ${fault_bin} vs BM_FullSite/RR (${FAULT_PAIRS} paired runs) ..." >&2

python3 - "${FAULT_OUT}" "${fault_bin}" "${BUILD_DIR}/bench/micro_simulation" \
          "${FAULT_PAIRS}" <<'PY'
import json, os, statistics, subprocess, sys, tempfile

out_path, fault_bin, sim_bin, pairs = sys.argv[1:]
pairs = int(pairs)


def run(binary, flt):
    fd, path = tempfile.mkstemp(suffix=".json")
    os.close(fd)
    try:
        subprocess.run(
            [binary, f"--benchmark_filter={flt}", "--benchmark_format=json",
             f"--benchmark_out={path}", "--benchmark_out_format=json"],
            check=True, stdout=subprocess.DEVNULL)
        with open(path) as f:
            dump = json.load(f)
    finally:
        os.unlink(path)
    times = {b["name"]: b.get("real_time")
             for b in dump.get("benchmarks", [])
             if b.get("run_type") != "aggregate"}
    return dump.get("context", {}), times


ctx = {}
fault_free_ts, chaos_ts, plain_ts, ratios = [], [], [], []
for i in range(pairs):
    # Alternate which binary goes first so warmup/turbo ordering effects
    # cancel across pairs instead of biasing one side.
    if i % 2 == 0:
        ctx, fault_times = run(fault_bin, "BM_FullSiteFault")
        _, sim_times = run(sim_bin, "BM_FullSite/RR$")
    else:
        _, sim_times = run(sim_bin, "BM_FullSite/RR$")
        ctx, fault_times = run(fault_bin, "BM_FullSiteFault")
    fault_free = fault_times.get("BM_FullSiteFault/fault_free")
    chaos = fault_times.get("BM_FullSiteFault/chaos")
    plain = sim_times.get("BM_FullSite/RR")
    if fault_free:
        fault_free_ts.append(fault_free)
    if chaos:
        chaos_ts.append(chaos)
    if plain:
        plain_ts.append(plain)
    if fault_free and plain:
        ratios.append(fault_free / plain)

distilled = {}
if fault_free_ts:
    distilled["BM_FullSiteFault/fault_free"] = {
        "median_real_time_ns": statistics.median(fault_free_ts)}
if chaos_ts:
    distilled["BM_FullSiteFault/chaos"] = {
        "median_real_time_ns": statistics.median(chaos_ts)}
if plain_ts:
    distilled["BM_FullSite/RR"] = {
        "median_real_time_ns": statistics.median(plain_ts)}

summary = {}
if ratios:
    ratio = statistics.median(ratios)
    summary["fault_free_over_fullsite_rr"] = ratio
    summary["fault_free_overhead_percent"] = (ratio - 1.0) * 100.0
    summary["paired_runs"] = len(ratios)
    if ratio > 1.03:
        print(f"WARNING: inert fault layer costs {ratio:.3f}x the plain site "
              "(budget 1.03x)", file=sys.stderr)
if fault_free_ts and chaos_ts:
    summary["chaos_over_fault_free"] = (statistics.median(chaos_ts) /
                                        statistics.median(fault_free_ts))

with open(out_path, "w") as f:
    json.dump({"context": {"date": ctx.get("date"),
                           "host_name": ctx.get("host_name"),
                           "num_cpus": ctx.get("num_cpus"),
                           "build_type": os.environ.get("BENCH_BUILD_TYPE", "unspecified")},
               "benchmarks": distilled,
               "summary": summary}, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path} ({len(distilled)} benchmarks)")
PY
