#!/usr/bin/env bash
# Runs the event-kernel micro/macro benchmarks and distills a compact
# BENCH_kernel.json perf baseline (items/sec per benchmark) for trajectory
# tracking across PRs.
#
# Usage: tools/run_benches.sh [--release] [build-dir] [output-json]
#   --release    configure + build an optimized tree (CMAKE_BUILD_TYPE=Release)
#                in the build dir first (default dir becomes ./build-release),
#                so the captured numbers are never from a debug binary
#   build-dir    defaults to ./build (./build-release with --release);
#                without --release it must already be built
#   output-json  defaults to ./BENCH_kernel.json
#
# The full google-benchmark JSON dumps are kept next to the output as
# BENCH_kernel.raw.<target>.json for anyone who wants the details.
set -euo pipefail

RELEASE=0
if [[ "${1:-}" == "--release" ]]; then
  RELEASE=1
  shift
fi

BUILD_DIR="${1:-$([[ ${RELEASE} -eq 1 ]] && echo build-release || echo build)}"
OUT="${2:-BENCH_kernel.json}"
FILTER='BM_SchedulePop|BM_SteadyStateChurn|BM_CancelHeavy|BM_FullSite'

if [[ ${RELEASE} -eq 1 ]]; then
  echo "configuring Release tree in ${BUILD_DIR} ..." >&2
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release >&2
  cmake --build "${BUILD_DIR}" -j \
        --target micro_event_queue micro_simulation micro_obs micro_fault \
                 micro_scale micro_dnsd micro_estimator adattl_dnsd adattl_dnsblast >&2
fi

# The google-benchmark "library_build_type" context reports how the
# *library* was compiled (the distro package says "debug"), which says
# nothing about our binaries. Record the tree's actual CMAKE_BUILD_TYPE so
# a baseline captured from a debug build can never masquerade as Release.
BENCH_BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "${BUILD_DIR}/CMakeCache.txt" 2>/dev/null || true)"
export BENCH_BUILD_TYPE="${BENCH_BUILD_TYPE:-unspecified}"

for target in micro_event_queue micro_simulation; do
  bin="${BUILD_DIR}/bench/${target}"
  if [[ ! -x "${bin}" ]]; then
    echo "error: ${bin} not built (cmake --build ${BUILD_DIR} --target ${target})" >&2
    exit 1
  fi
  echo "running ${bin} ..." >&2
  "${bin}" --benchmark_filter="${FILTER}" \
           --benchmark_format=json \
           --benchmark_out="${OUT%.json}.raw.${target}.json" \
           --benchmark_out_format=json > /dev/null
done

python3 - "${OUT}" "${OUT%.json}.raw.micro_event_queue.json" \
                   "${OUT%.json}.raw.micro_simulation.json" <<'PY'
import json, os, sys

out_path, *raw_paths = sys.argv[1:]
distilled = {}
context = {}
for path in raw_paths:
    with open(path) as f:
        dump = json.load(f)
    ctx = dump.get("context", {})
    context.setdefault("date", ctx.get("date"))
    context.setdefault("host_name", ctx.get("host_name"))
    context.setdefault("num_cpus", ctx.get("num_cpus"))
    context.setdefault("build_type", os.environ.get("BENCH_BUILD_TYPE", "unspecified"))
    for b in dump.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        entry = {"real_time_ns": b.get("real_time")}
        if "items_per_second" in b:
            entry["items_per_second"] = b["items_per_second"]
        distilled[b["name"]] = entry

with open(out_path, "w") as f:
    json.dump({"context": context, "benchmarks": distilled}, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path} ({len(distilled)} benchmarks)")
PY

# ---- Estimator quality: flash-crowd + diurnal ablation ----
# micro_estimator is not a timing bench: it replays scripted collection
# windows through all four load estimators and emits accuracy metrics
# (peak share error, windows-to-reconverge) as JSON on stdout, exiting
# nonzero if the predictive estimators stop beating EWMA. Distilled into
# BENCH_estimator.json with the usual context header.
EST_OUT="$(dirname "${OUT}")/BENCH_estimator.json"
est_bin="${BUILD_DIR}/bench/micro_estimator"
if [[ ! -x "${est_bin}" ]]; then
  echo "error: ${est_bin} not built (cmake --build ${BUILD_DIR} --target micro_estimator)" >&2
  exit 1
fi
echo "running ${est_bin} ..." >&2
"${est_bin}" > "${EST_OUT%.json}.raw.micro_estimator.json"

python3 - "${EST_OUT}" "${EST_OUT%.json}.raw.micro_estimator.json" <<'PY'
import datetime, json, os, socket, sys

out_path, raw_path = sys.argv[1:]
with open(raw_path) as f:
    dump = json.load(f)

dump["context"].update({
    "date": datetime.datetime.now().astimezone().isoformat(timespec="seconds"),
    "host_name": socket.gethostname(),
    "num_cpus": os.cpu_count(),
    "build_type": os.environ.get("BENCH_BUILD_TYPE", "unspecified"),
})
if not (dump["summary"]["holt_reconverges_faster_than_ewma"]
        and dump["summary"]["ar_reconverges_faster_than_ewma"]):
    sys.exit("estimator ablation regressed: predictive estimators no longer beat EWMA")

with open(out_path, "w") as f:
    json.dump(dump, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path}")
PY

# ---- Geography + elasticity: the COST(alpha) frontier ----
# micro_geo emits its own JSON (like micro_estimator): the flat-vs-checked
# GeoModel::rtt lookup timing, the utilization-vs-mean-assignment-RTT
# frontier for GEO / RR2 / COST(alpha), and a watermark-autoscaler run
# checked for conservation. Exits nonzero — and this script fails — if no
# COST alpha dominates pure GEO on peak utilization while dominating pure
# RR2 on assignment RTT, or if the elastic run loses work.
GEO_OUT="$(dirname "${OUT}")/BENCH_geo.json"
geo_bin="${BUILD_DIR}/bench/micro_geo"
if [[ ! -x "${geo_bin}" ]]; then
  echo "error: ${geo_bin} not built (cmake --build ${BUILD_DIR} --target micro_geo)" >&2
  exit 1
fi
echo "running ${geo_bin} ..." >&2
"${geo_bin}" > "${GEO_OUT%.json}.raw.micro_geo.json"

python3 - "${GEO_OUT}" "${GEO_OUT%.json}.raw.micro_geo.json" <<'PY'
import datetime, json, os, socket, sys

out_path, raw_path = sys.argv[1:]
with open(raw_path) as f:
    dump = json.load(f)

dump["context"].update({
    "date": datetime.datetime.now().astimezone().isoformat(timespec="seconds"),
    "host_name": socket.gethostname(),
    "num_cpus": os.cpu_count(),
    "build_type": os.environ.get("BENCH_BUILD_TYPE", "unspecified"),
})
s = dump["summary"]
if not s["cost_dominates_geo_and_rr2"]:
    sys.exit("geo ablation regressed: no COST alpha dominates GEO on peak "
             "utilization and RR2 on assignment RTT")
if not (s["autoscale_conserves_work"] and s["autoscale_pool_moved"]):
    sys.exit("elastic run regressed: autoscaler lost work or never moved the pool")

with open(out_path, "w") as f:
    json.dump(dump, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path}")
PY

# ---- Population scale: events/sec from 5k to 1M clients ----
# BENCH_scale.json: the items/sec-per-client-count table for the sharded
# scale sweep plus the headline million-client multi-hour-day run. The
# sweep uses single iterations (each point is one full deterministic run),
# so skip it with ADATTL_SKIP_SCALE=1 when iterating on other benches.
if [[ "${ADATTL_SKIP_SCALE:-0}" != "1" ]]; then
  SCALE_OUT="$(dirname "${OUT}")/BENCH_scale.json"
  scale_bin="${BUILD_DIR}/bench/micro_scale"
  if [[ ! -x "${scale_bin}" ]]; then
    echo "error: ${scale_bin} not built (cmake --build ${BUILD_DIR} --target micro_scale)" >&2
    exit 1
  fi
  echo "running ${scale_bin} (the 1M-client day takes minutes) ..." >&2
  "${scale_bin}" --benchmark_format=json \
                 --benchmark_out="${SCALE_OUT%.json}.raw.micro_scale.json" \
                 --benchmark_out_format=json > /dev/null

  python3 - "${SCALE_OUT}" "${SCALE_OUT%.json}.raw.micro_scale.json" <<'PY'
import json, os, sys

out_path, raw_path = sys.argv[1:]
with open(raw_path) as f:
    dump = json.load(f)
ctx = dump.get("context", {})
distilled = {}
scale_table = []
for b in dump.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    entry = {"real_time_ns": b.get("real_time")}
    for k in ("items_per_second", "clients", "sim_sec_per_iter", "sim_hours"):
        if k in b:
            entry[k] = b[k]
    distilled[b["name"]] = entry
    if b["name"].startswith("BM_ScaleClients/"):
        scale_table.append({"clients": int(b["clients"]),
                            "items_per_second": b.get("items_per_second"),
                            "wall_seconds": b.get("real_time") * 1e-3
                            if b.get("time_unit") == "ms" else b.get("real_time")})

summary = {"scale_sweep": sorted(scale_table, key=lambda e: e["clients"])}
day = distilled.get("BM_MillionClientDay/iterations:1")
if day:
    # BM_MillionClientDay reports real_time in seconds (kSecond unit).
    summary["million_client_day_wall_seconds"] = day.get("real_time_ns")
    summary["million_client_day_events_per_second"] = day.get("items_per_second")

with open(out_path, "w") as f:
    json.dump({"context": {"date": ctx.get("date"),
                           "host_name": ctx.get("host_name"),
                           "num_cpus": ctx.get("num_cpus"),
                           "build_type": os.environ.get("BENCH_BUILD_TYPE", "unspecified")},
               "benchmarks": distilled,
               "summary": summary}, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path} ({len(distilled)} benchmarks)")
PY
fi

# ---- Observability overhead: tracing/metrics enabled vs disabled ----
# Distilled into BENCH_obs.json next to OUT: the hot-path micro costs and
# the full-site enabled/disabled delta (the <3% regression budget).
OBS_OUT="$(dirname "${OUT}")/BENCH_obs.json"
obs_bin="${BUILD_DIR}/bench/micro_obs"
if [[ ! -x "${obs_bin}" ]]; then
  echo "error: ${obs_bin} not built (cmake --build ${BUILD_DIR} --target micro_obs)" >&2
  exit 1
fi
echo "running ${obs_bin} ..." >&2
"${obs_bin}" --benchmark_format=json \
             --benchmark_out="${OBS_OUT%.json}.raw.micro_obs.json" \
             --benchmark_out_format=json > /dev/null

python3 - "${OBS_OUT}" "${OBS_OUT%.json}.raw.micro_obs.json" <<'PY'
import json, os, sys

out_path, raw_path = sys.argv[1:]
with open(raw_path) as f:
    dump = json.load(f)
ctx = dump.get("context", {})
distilled = {}
for b in dump.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    entry = {"real_time_ns": b.get("real_time")}
    if "items_per_second" in b:
        entry["items_per_second"] = b["items_per_second"]
    distilled[b["name"]] = entry

summary = {}
off = distilled.get("BM_FullSiteObs/disabled", {}).get("real_time_ns")
on = distilled.get("BM_FullSiteObs/enabled", {}).get("real_time_ns")
if off and on:
    summary["full_site_enabled_over_disabled"] = on / off
    summary["full_site_overhead_percent"] = (on / off - 1.0) * 100.0

with open(out_path, "w") as f:
    json.dump({"context": {"date": ctx.get("date"),
                           "host_name": ctx.get("host_name"),
                           "num_cpus": ctx.get("num_cpus"),
                           "build_type": os.environ.get("BENCH_BUILD_TYPE", "unspecified")},
               "benchmarks": distilled,
               "summary": summary}, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path} ({len(distilled)} benchmarks)")
PY

# ---- Fault-layer overhead: empty schedule vs plain site, chaos vs empty ----
# BM_FullSiteFault/fault_free mirrors BM_FullSite/RR exactly, so their
# ratio is the cost of carrying the (inert) fault subsystem; it must stay
# within noise of 1.0. The chaos ratio tracks what a populated schedule
# costs on top.
FAULT_OUT="$(dirname "${OUT}")/BENCH_fault.json"
fault_bin="${BUILD_DIR}/bench/micro_fault"
if [[ ! -x "${fault_bin}" ]]; then
  echo "error: ${fault_bin} not built (cmake --build ${BUILD_DIR} --target micro_fault)" >&2
  exit 1
fi
# Single-shot full-site timings jitter by ±10% on small machines, far
# above the 3% budget, and the machine's speed drifts over the minutes a
# full bench run takes. So the comparison is PAIRED: each repetition runs
# micro_fault and the plain BM_FullSite/RR back to back, the per-pair
# ratios cancel the drift, and the median ratio is what gets asserted.
FAULT_PAIRS="${FAULT_PAIRS:-5}"
echo "running ${fault_bin} vs BM_FullSite/RR (${FAULT_PAIRS} paired runs) ..." >&2

python3 - "${FAULT_OUT}" "${fault_bin}" "${BUILD_DIR}/bench/micro_simulation" \
          "${FAULT_PAIRS}" <<'PY'
import json, os, statistics, subprocess, sys, tempfile

out_path, fault_bin, sim_bin, pairs = sys.argv[1:]
pairs = int(pairs)


def run(binary, flt):
    fd, path = tempfile.mkstemp(suffix=".json")
    os.close(fd)
    try:
        subprocess.run(
            [binary, f"--benchmark_filter={flt}", "--benchmark_format=json",
             f"--benchmark_out={path}", "--benchmark_out_format=json"],
            check=True, stdout=subprocess.DEVNULL)
        with open(path) as f:
            dump = json.load(f)
    finally:
        os.unlink(path)
    times = {b["name"]: b.get("real_time")
             for b in dump.get("benchmarks", [])
             if b.get("run_type") != "aggregate"}
    return dump.get("context", {}), times


ctx = {}
fault_free_ts, chaos_ts, plain_ts, ratios = [], [], [], []
for i in range(pairs):
    # Alternate which binary goes first so warmup/turbo ordering effects
    # cancel across pairs instead of biasing one side.
    if i % 2 == 0:
        ctx, fault_times = run(fault_bin, "BM_FullSiteFault")
        _, sim_times = run(sim_bin, "BM_FullSite/RR$")
    else:
        _, sim_times = run(sim_bin, "BM_FullSite/RR$")
        ctx, fault_times = run(fault_bin, "BM_FullSiteFault")
    fault_free = fault_times.get("BM_FullSiteFault/fault_free")
    chaos = fault_times.get("BM_FullSiteFault/chaos")
    plain = sim_times.get("BM_FullSite/RR")
    if fault_free:
        fault_free_ts.append(fault_free)
    if chaos:
        chaos_ts.append(chaos)
    if plain:
        plain_ts.append(plain)
    if fault_free and plain:
        ratios.append(fault_free / plain)

distilled = {}
if fault_free_ts:
    distilled["BM_FullSiteFault/fault_free"] = {
        "median_real_time_ns": statistics.median(fault_free_ts)}
if chaos_ts:
    distilled["BM_FullSiteFault/chaos"] = {
        "median_real_time_ns": statistics.median(chaos_ts)}
if plain_ts:
    distilled["BM_FullSite/RR"] = {
        "median_real_time_ns": statistics.median(plain_ts)}

summary = {}
if ratios:
    ratio = statistics.median(ratios)
    summary["fault_free_over_fullsite_rr"] = ratio
    summary["fault_free_overhead_percent"] = (ratio - 1.0) * 100.0
    summary["paired_runs"] = len(ratios)
    if ratio > 1.03:
        print(f"WARNING: inert fault layer costs {ratio:.3f}x the plain site "
              "(budget 1.03x)", file=sys.stderr)
if fault_free_ts and chaos_ts:
    summary["chaos_over_fault_free"] = (statistics.median(chaos_ts) /
                                        statistics.median(fault_free_ts))

with open(out_path, "w") as f:
    json.dump({"context": {"date": ctx.get("date"),
                           "host_name": ctx.get("host_name"),
                           "num_cpus": ctx.get("num_cpus"),
                           "build_type": os.environ.get("BENCH_BUILD_TYPE", "unspecified")},
               "benchmarks": distilled,
               "summary": summary}, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path} ({len(distilled)} benchmarks)")
PY

# ---- Live daemon throughput: sharding + batching vs the legacy path ----
# BENCH_dnsd.json: answers/sec, latency quantiles and daemon CPU
# efficiency of adattl_dnsd under adattl_dnsblast (open-loop saturation,
# loopback) at the pre-PR baseline (1 shard, batch 1 — a single socket
# serviced one datagram at a time) and at 1/2/4 shards with batched
# recvmmsg/sendmmsg I/O. Shard counts beyond the core count cannot add
# end-to-end throughput (the kernel loopback stack costs ~2 us/packet on
# every path and the client shares the same cores), so the context
# records num_cpus and the summary carries the per-CPU-second efficiency
# ratios, which isolate what batching buys on any machine.
DNSD_OUT="$(dirname "${OUT}")/BENCH_dnsd.json"
dnsd_bin="${BUILD_DIR}/tools/adattl_dnsd"
blast_bin="${BUILD_DIR}/tools/adattl_dnsblast"
for b in "${dnsd_bin}" "${blast_bin}"; do
  if [[ ! -x "${b}" ]]; then
    echo "error: ${b} not built (cmake --build ${BUILD_DIR} --target adattl_dnsd adattl_dnsblast)" >&2
    exit 1
  fi
done
DNSD_DURATION="${DNSD_DURATION:-2}"

# Socket-free shard hot path at 1/2/4 concurrent shards (micro_dnsd's
# aggregate bench): with zero shared mutable state the aggregate rate must
# never fall below the single-thread rate, which is the lock-free property
# a 1-CPU host can still demonstrate even though end-to-end loopback
# throughput cannot scale there.
micro_dnsd_bin="${BUILD_DIR}/bench/micro_dnsd"
if [[ ! -x "${micro_dnsd_bin}" ]]; then
  echo "error: ${micro_dnsd_bin} not built (cmake --build ${BUILD_DIR} --target micro_dnsd)" >&2
  exit 1
fi
echo "running ${micro_dnsd_bin} ..." >&2
"${micro_dnsd_bin}" --benchmark_format=json \
                    --benchmark_out="${DNSD_OUT%.json}.raw.micro_dnsd.json" \
                    --benchmark_out_format=json > /dev/null

echo "running daemon benches (${DNSD_DURATION}s per config) ..." >&2

python3 - "${DNSD_OUT}" "${dnsd_bin}" "${blast_bin}" "${DNSD_DURATION}" \
          "${DNSD_OUT%.json}.raw.micro_dnsd.json" <<'PY'
import json, os, re, signal, socket, subprocess, sys, time

out_path, dnsd, blast, duration, micro_raw = sys.argv[1:]
duration = float(duration)

CONFIGS = [
    ("legacy_1shard_batch1", ["--dnsd-shards=1", "--dnsd-batch=1"]),
    ("shards1_batch32", ["--dnsd-shards=1", "--dnsd-batch=32"]),
    ("shards2_batch32", ["--dnsd-shards=2", "--dnsd-batch=32"]),
    ("shards4_batch32", ["--dnsd-shards=4", "--dnsd-batch=32"]),
]

CLK_TCK = os.sysconf("SC_CLK_TCK")


def cpu_ticks(pid):
    with open(f"/proc/{pid}/stat") as f:
        fields = f.read().split()
    return int(fields[13]) + int(fields[14])  # utime + stime


def bench_one(name, flags):
    proc = subprocess.Popen(
        [dnsd, "--dnsd-port=0", "--policy=DRR2-TTL/S_K", *flags],
        stderr=subprocess.PIPE, text=True)
    port = None
    deadline = time.time() + 10
    while time.time() < deadline:
        line = proc.stderr.readline()
        m = re.search(r"on 127\.0\.0\.1:(\d+)", line or "")
        if m:
            port = int(m.group(1))
            break
    if port is None:
        proc.kill()
        raise RuntimeError(f"{name}: daemon never reported its port")
    # A blast client is one UDP flow, which SO_REUSEPORT pins to one
    # shard — run one blaster per shard so every shard sees load, and
    # sum their counters.
    shards = next((int(f.split("=")[1]) for f in flags if "shards" in f), 1)
    ticks0 = cpu_ticks(proc.pid)
    blasters = [
        subprocess.Popen(
            [blast, f"--port={port}", "--qps=0", f"--duration={duration}",
             "--batch=32", "--ecs", "--json"],
            stdout=subprocess.PIPE, text=True)
        for _ in range(shards)
    ]
    results = []
    for b in blasters:
        out, _ = b.communicate(timeout=duration + 30)
        if b.returncode == 0:
            results.append(json.loads(out))
    daemon_cpu_sec = (cpu_ticks(proc.pid) - ticks0) / CLK_TCK
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=10)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()
    if not results:
        raise RuntimeError(f"{name}: no blaster got an answer")
    answers = sum(r["answers"] for r in results)
    total_aps = sum(r["answers_per_sec"] for r in results)
    # Worst-flow quantiles: the honest per-client experience.
    return {
        "answers_per_sec": round(total_aps, 1),
        "answers_per_daemon_cpu_sec":
            round(answers / daemon_cpu_sec, 1) if daemon_cpu_sec > 0 else None,
        "daemon_cpu_sec": round(daemon_cpu_sec, 3),
        "clients": len(results),
        "sent": sum(r["sent"] for r in results),
        "answers": answers,
        "p50_us": round(max(r["p50_us"] for r in results), 1),
        "p99_us": round(max(r["p99_us"] for r in results), 1),
    }


benchmarks = {}
for name, flags in CONFIGS:
    print(f"  {name} ...", file=sys.stderr)
    benchmarks[name] = bench_one(name, flags)

summary = {}
base = benchmarks["legacy_1shard_batch1"]
for name in ("shards1_batch32", "shards2_batch32", "shards4_batch32"):
    if base["answers_per_sec"] > 0:
        summary[f"{name}_over_legacy"] = round(
            benchmarks[name]["answers_per_sec"] / base["answers_per_sec"], 2)
    if base["answers_per_daemon_cpu_sec"] and benchmarks[name]["answers_per_daemon_cpu_sec"]:
        summary[f"{name}_cpu_efficiency_over_legacy"] = round(
            benchmarks[name]["answers_per_daemon_cpu_sec"]
            / base["answers_per_daemon_cpu_sec"], 2)

# Distill the socket-free shard hot path: per-packet cost and the
# 1/2/4-thread aggregate (lock-free evidence; see comment above).
microbench = {}
with open(micro_raw) as f:
    micro = json.load(f)
for b in micro.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    entry = {"real_time_ns": round(b.get("real_time", 0.0), 2)}
    if "items_per_second" in b:
        entry["items_per_second"] = round(b["items_per_second"], 1)
    microbench[b["name"]] = entry

one = microbench.get("BM_ShardCoreAggregate/real_time/threads:1", {})
four = microbench.get("BM_ShardCoreAggregate/real_time/threads:4", {})
if one.get("items_per_second") and four.get("items_per_second"):
    summary["shardcore_aggregate_4t_over_1t"] = round(
        four["items_per_second"] / one["items_per_second"], 2)

note = None
if (os.cpu_count() or 1) < 4:
    note = (f"host has {os.cpu_count()} CPU(s): shard parallelism cannot raise "
            "end-to-end loopback throughput here (the kernel network stack's "
            "per-packet cost dominates and every config pays it); the gains "
            "shown are syscall batching. Shard scaling needs >= shards cores.")
if note:
    summary["constraint"] = note

with open(out_path, "w") as f:
    json.dump({"context": {"date": time.strftime("%Y-%m-%dT%H:%M:%S"),
                           "host_name": socket.gethostname(),
                           "num_cpus": os.cpu_count(),
                           "duration_sec_per_config": duration,
                           "build_type": os.environ.get("BENCH_BUILD_TYPE", "unspecified")},
               "benchmarks": benchmarks,
               "microbench": microbench,
               "summary": summary}, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path} ({len(benchmarks)} configs)")
PY
