// adattl_dnsd — a minimal authoritative UDP DNS daemon running the
// paper's adaptive-TTL scheduler on real packets.
//
//   ./build/tools/adattl_dnsd --port=5353 --name=www.site.org --policy=DRR2-TTL/S_K
//       (one command line; add --servers=10.0.0.1,10.0.0.2,...)
//   dig @127.0.0.1 -p 5353 www.site.org A     # watch addresses + TTLs rotate
//
// Requester-to-domain mapping: real deployments would key the hidden-load
// estimate on the resolver's address (or EDNS Client Subnet); this daemon
// hashes the source address into one of --domains buckets, which is the
// same information structure the simulation's DomainId carries.
//
// The daemon is deliberately tiny — single socket, blocking loop — because
// everything interesting lives in the library: the scheduler is the same
// object the simulation and the benchmarks exercise.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/policy_factory.h"
#include "dnswire/frontend.h"
#include "sim/random.h"
#include "sim/simulator.h"

using namespace adattl;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t p = s.find(sep, start);
    out.push_back(s.substr(start, p == std::string::npos ? std::string::npos : p - start));
    if (p == std::string::npos) break;
    start = p + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int port = 5353;
  std::string name = "www.site.org";
  std::string policy = "DRR2-TTL/S_K";
  std::string servers_arg = "10.0.0.1,10.0.0.2,10.0.0.3,10.0.0.4";
  int domains = 20;
  long max_queries = -1;  // testing hook: exit after N answers

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    const std::string flag = arg.substr(0, eq);
    const std::string value = eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (flag == "--port") {
      port = std::stoi(value);
    } else if (flag == "--name") {
      name = value;
    } else if (flag == "--policy") {
      policy = value;
    } else if (flag == "--servers") {
      servers_arg = value;
    } else if (flag == "--domains") {
      domains = std::stoi(value);
    } else if (flag == "--max-queries") {
      max_queries = std::stol(value);
    } else {
      std::fprintf(stderr,
                   "usage: adattl_dnsd [--port=N] [--name=FQDN] [--policy=NAME]\n"
                   "                   [--servers=IP,IP,...] [--domains=K] [--max-queries=N]\n");
      return 2;
    }
  }

  std::vector<std::uint32_t> addrs;
  for (const std::string& ip : split(servers_arg, ',')) {
    in_addr a{};
    if (inet_pton(AF_INET, ip.c_str(), &a) != 1) {
      std::fprintf(stderr, "bad server address: %s\n", ip.c_str());
      return 2;
    }
    addrs.push_back(ntohl(a.s_addr));
  }

  // Equal capacities by default; the scheduler only needs ratios, and a
  // daemon operator configures real capacities through the library API.
  sim::Simulator simulator;
  sim::RngStream rng(1);
  core::AlarmRegistry alarms(static_cast<int>(addrs.size()), 0.9);
  core::SchedulerFactoryConfig fc;
  fc.capacities.assign(addrs.size(), 100.0);
  fc.initial_weights = sim::ZipfDistribution(domains, 1.0).probabilities();
  fc.class_threshold = 1.0 / domains;
  core::SchedulerBundle bundle;
  try {
    bundle = core::make_scheduler(policy, fc, alarms, simulator, rng);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad --policy: %s\n", e.what());
    return 2;
  }
  dnswire::DnsFrontend frontend(*bundle.scheduler, name, addrs);

  const int fd = socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return 1;
  }
  sockaddr_in bind_addr{};
  bind_addr.sin_family = AF_INET;
  bind_addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  bind_addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (bind(fd, reinterpret_cast<sockaddr*>(&bind_addr), sizeof(bind_addr)) != 0) {
    std::perror("bind");
    close(fd);
    return 1;
  }
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::fprintf(stderr, "adattl_dnsd: %s via %s on 127.0.0.1:%d (%zu servers, %d domains)\n",
               name.c_str(), bundle.scheduler->name().c_str(), port, addrs.size(), domains);

  std::uint8_t buf[1500];
  while (!g_stop) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    const ssize_t n =
        recvfrom(fd, buf, sizeof(buf), 0, reinterpret_cast<sockaddr*>(&peer), &peer_len);
    if (n < 0) {
      if (g_stop) break;
      std::perror("recvfrom");
      continue;
    }
    // Hash the requester (address + port) into a domain bucket.
    const std::uint32_t src = ntohl(peer.sin_addr.s_addr) ^ (ntohs(peer.sin_port) * 2654435761u);
    const int domain = static_cast<int>(src % static_cast<std::uint32_t>(domains));

    const std::vector<std::uint8_t> query(buf, buf + n);
    const std::vector<std::uint8_t> response = frontend.handle(query, domain);
    if (response.empty()) continue;  // undecodable: drop
    sendto(fd, response.data(), response.size(), 0, reinterpret_cast<sockaddr*>(&peer),
           peer_len);
    if (max_queries > 0 &&
        static_cast<long>(frontend.answered() + frontend.refused()) >= max_queries) {
      break;
    }
  }
  std::fprintf(stderr, "adattl_dnsd: served %llu, refused %llu\n",
               static_cast<unsigned long long>(frontend.answered()),
               static_cast<unsigned long long>(frontend.refused()));
  close(fd);
  return 0;
}
