// adattl_dnsd — the sharded authoritative UDP DNS daemon running the
// paper's adaptive-TTL scheduler on real packets.
//
//   ./build/tools/adattl_dnsd --dnsd-port=5353 --dnsd-shards=4
//       --dnsd-batch=32 --policy=DRR2-TTL/S_K --servers=10.0.0.1,10.0.0.2
//   dig @127.0.0.1 -p 5353 www.site.org A     # watch addresses + TTLs rotate
//
// Architecture (DESIGN.md §15): N worker shards, each with its own
// SO_REUSEPORT socket, epoll loop, recvmmsg/sendmmsg batching and its own
// scheduler state — the hot decision path shares nothing and takes no
// locks. Domain keys come from EDNS0 Client-Subnet when the resolver
// forwards one (--dnsd-ecs, default on), with the legacy source-address
// hash as fallback, so the hidden-load estimate keys on real subnets.
//
// Registry knobs (--dnsd-port/--dnsd-shards/--dnsd-batch/--dnsd-ecs plus
// --policy/--domains/--seed) resolve through the parameter registry:
// scenario files, ADATTL_* env overrides and --help all work here exactly
// as in run_scenario. Daemon-only flags (--name, --servers, --max-queries,
// --duration, --stats-interval) are listed below.
#include <arpa/inet.h>
#include <netinet/in.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dnswire/daemon.h"
#include "experiment/cli.h"
#include "obs/metrics.h"

using namespace adattl;

namespace {

dnswire::UdpDaemon* g_daemon = nullptr;
volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) {
  g_stop = 1;
  if (g_daemon != nullptr) g_daemon->request_stop();  // async-signal-safe
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t p = s.find(sep, start);
    out.push_back(s.substr(start, p == std::string::npos ? std::string::npos : p - start));
    if (p == std::string::npos) break;
    start = p + 1;
  }
  return out;
}

void usage() {
  std::fprintf(stderr,
               "usage: adattl_dnsd [registry knobs, see --help-knobs] plus:\n"
               "  --name=FQDN           site name to be authoritative for\n"
               "  --servers=IP,IP,...   server addresses (index == ServerId)\n"
               "  --capacities=C,C,...  per-server capacities (default: all equal)\n"
               "  --max-queries=N       exit after N answered+refused (testing hook)\n"
               "  --duration=SEC        exit after SEC seconds (0 = run until signal)\n"
               "  --stats-interval=SEC  periodic per-shard stats on stderr (0 = off)\n"
               "  --port=N              alias for --dnsd-port=N (legacy spelling)\n"
               "registry knobs: --dnsd-port, --dnsd-shards, --dnsd-batch, --dnsd-ecs,\n"
               "  --policy, --domains, --seed (scenario files + ADATTL_* env work too)\n");
}

void print_stats(const dnswire::UdpDaemon& daemon) {
  for (int i = 0; i < daemon.shards(); ++i) {
    const dnswire::ShardStatsSnapshot s = daemon.shard_stats(i);
    std::fprintf(stderr,
                 "adattl_dnsd: shard %d: rx %llu answered %llu refused %llu "
                 "kernel-drops %llu send-errors %llu ecs %llu (malformed %llu) "
                 "batches %llu decisions %llu\n",
                 i, static_cast<unsigned long long>(s.received),
                 static_cast<unsigned long long>(s.answered),
                 static_cast<unsigned long long>(s.refused),
                 static_cast<unsigned long long>(s.dropped_kernel),
                 static_cast<unsigned long long>(s.send_errors),
                 static_cast<unsigned long long>(s.ecs_keys),
                 static_cast<unsigned long long>(s.ecs_malformed),
                 static_cast<unsigned long long>(s.batches),
                 static_cast<unsigned long long>(s.decisions));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string name = "www.site.org";
  std::string servers_arg = "10.0.0.1,10.0.0.2,10.0.0.3,10.0.0.4";
  std::string capacities_arg;
  long max_queries = 0;
  double duration_sec = 0.0;
  double stats_interval_sec = 0.0;

  // Daemon-only flags are peeled off here; everything else goes through
  // the parameter registry (which owns --dnsd-*, --policy, --domains,
  // --seed, --config=FILE and the ADATTL_* env layer).
  std::vector<std::string> registry_args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    const std::string flag = arg.substr(0, eq);
    const std::string value = eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (flag == "--name") {
      name = value;
    } else if (flag == "--servers") {
      servers_arg = value;
    } else if (flag == "--capacities") {
      capacities_arg = value;
    } else if (flag == "--max-queries") {
      max_queries = std::stol(value);
    } else if (flag == "--duration") {
      duration_sec = std::stod(value);
    } else if (flag == "--stats-interval") {
      stats_interval_sec = std::stod(value);
    } else if (flag == "--port") {
      registry_args.push_back("--dnsd-port=" + value);  // legacy spelling
    } else if (flag == "--help" || flag == "-h") {
      usage();
      return 2;
    } else if (flag == "--help-knobs") {
      std::fprintf(stderr, "%s", experiment::cli_usage().c_str());
      return 2;
    } else {
      registry_args.push_back(arg);
    }
  }

  experiment::CliOptions opt;
  try {
    opt = experiment::parse_cli(registry_args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "adattl_dnsd: %s\n", e.what());
    usage();
    return 2;
  }

  dnswire::DaemonConfig cfg;
  cfg.site_name = name;
  cfg.policy = opt.config.policy;
  cfg.num_domains = opt.config.num_domains;
  cfg.seed = opt.config.seed;
  cfg.port = opt.config.dnsd_port;
  cfg.shards = opt.config.dnsd_shards;
  cfg.batch = opt.config.dnsd_batch;
  cfg.ecs_enabled = opt.config.dnsd_ecs;
  cfg.max_queries = max_queries > 0 ? static_cast<std::uint64_t>(max_queries) : 0;
  for (const std::string& ip : split(servers_arg, ',')) {
    in_addr a{};
    if (inet_pton(AF_INET, ip.c_str(), &a) != 1) {
      std::fprintf(stderr, "adattl_dnsd: bad server address: %s\n", ip.c_str());
      return 2;
    }
    cfg.server_ipv4.push_back(ntohl(a.s_addr));
  }
  if (!capacities_arg.empty()) {
    for (const std::string& c : split(capacities_arg, ',')) {
      cfg.capacities.push_back(std::stod(c));
    }
  }

  obs::MetricsRegistry registry;
  std::unique_ptr<dnswire::UdpDaemon> daemon;
  try {
    daemon = std::make_unique<dnswire::UdpDaemon>(cfg);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "adattl_dnsd: %s\n", e.what());
    return 1;
  }
  daemon->bind_observability(&registry);

  g_daemon = daemon.get();
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  daemon->start();
  std::fprintf(stderr,
               "adattl_dnsd: %s via %s on 127.0.0.1:%d — %d shard(s), batch %d (%s), "
               "ECS %s, %zu servers, %d domains\n",
               name.c_str(), cfg.policy.c_str(), daemon->port(), daemon->shards(),
               cfg.batch, daemon->using_batched_io() ? "recvmmsg/sendmmsg" : "recvmsg/sendto",
               cfg.ecs_enabled ? "on" : "off", cfg.server_ipv4.size(), cfg.num_domains);

  const auto started = std::chrono::steady_clock::now();
  auto next_stats = started + std::chrono::duration<double>(
                                  stats_interval_sec > 0 ? stats_interval_sec : 1e9);
  while (!g_stop && !daemon->finished()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const auto now = std::chrono::steady_clock::now();
    if (duration_sec > 0 &&
        std::chrono::duration<double>(now - started).count() >= duration_sec) {
      daemon->request_stop();
      break;
    }
    if (stats_interval_sec > 0 && now >= next_stats) {
      daemon->publish_metrics();
      print_stats(*daemon);
      next_stats = now + std::chrono::duration<double>(stats_interval_sec);
    }
  }
  daemon->stop();
  g_daemon = nullptr;

  daemon->publish_metrics();
  print_stats(*daemon);
  const dnswire::ShardStatsSnapshot t = daemon->totals();
  std::fprintf(stderr, "adattl_dnsd: served %llu, refused %llu, kernel-drops %llu\n",
               static_cast<unsigned long long>(t.answered),
               static_cast<unsigned long long>(t.refused),
               static_cast<unsigned long long>(t.dropped_kernel));
  return 0;
}
