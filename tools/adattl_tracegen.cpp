// adattl_tracegen — emits reproducible arrival-rate traces in the
// `t_sec,domain,rate_multiplier` CSV schema that `--workload-trace=FILE`
// replays. Three generator families (workload/trace.h):
//
//   adattl_tracegen flash  [--domain=D] [--start=SEC] [--ramp=SEC]
//                          [--hold=SEC] [--decay=SEC] [--peak=X] [--step=SEC]
//   adattl_tracegen diurnal --domains=K [--duration=SEC] [--period=SEC]
//                          [--amplitude=A] [--spread=SEC] [--step=SEC]
//   adattl_tracegen regime  --domains=K [--duration=SEC] [--dwell=SEC]
//                          [--hot=X] [--seed=N]
//
// The trace is written to stdout (or --out=FILE). Every knob has a
// deterministic default, so `adattl_tracegen flash > flash.csv` is already
// a committable artifact.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "workload/trace.h"

namespace {

using adattl::workload::DiurnalSpec;
using adattl::workload::FlashCrowdSpec;
using adattl::workload::RegimeShiftSpec;
using adattl::workload::TraceEvent;

[[noreturn]] void usage(int code) {
  std::fprintf(stderr, "%s",
               "usage: adattl_tracegen <flash|diurnal|regime> [--knob=value ...]\n"
               "\n"
               "  flash    one-domain flash crowd (ramp / hold / decay)\n"
               "           --domain=D --start=SEC --ramp=SEC --hold=SEC --decay=SEC\n"
               "           --peak=X --step=SEC\n"
               "  diurnal  per-domain sinusoids\n"
               "           --domains=K --duration=SEC --period=SEC --amplitude=A\n"
               "           --spread=SEC --step=SEC\n"
               "  regime   regime-shifting hot spot (seeded, deterministic)\n"
               "           --domains=K --duration=SEC --dwell=SEC --hot=X --seed=N\n"
               "\n"
               "common: --out=FILE (default stdout)\n");
  std::exit(code);
}

double parse_num(const std::string& v, const std::string& flag) {
  std::size_t consumed = 0;
  double out = 0.0;
  try {
    out = std::stod(v, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed != v.size()) {
    throw std::invalid_argument(flag + ": expected a number, got '" + v + "'");
  }
  return out;
}

struct Args {
  std::string out_path;
  std::vector<std::pair<std::string, std::string>> knobs;
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") usage(0);
    if (arg.rfind("--", 0) != 0) usage(2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument(arg + ": requires a value (" + arg + "=...)");
    }
    const std::string key = arg.substr(2, eq - 2);
    const std::string value = arg.substr(eq + 1);
    if (key == "out") {
      args.out_path = value;
    } else {
      args.knobs.emplace_back(key, value);
    }
  }
  return args;
}

std::vector<TraceEvent> run_flash(const Args& args) {
  FlashCrowdSpec spec;
  for (const auto& [key, value] : args.knobs) {
    if (key == "domain") spec.domain = static_cast<int>(parse_num(value, key));
    else if (key == "start") spec.start_sec = parse_num(value, key);
    else if (key == "ramp") spec.ramp_sec = parse_num(value, key);
    else if (key == "hold") spec.hold_sec = parse_num(value, key);
    else if (key == "decay") spec.decay_sec = parse_num(value, key);
    else if (key == "peak") spec.peak_multiplier = parse_num(value, key);
    else if (key == "step") spec.step_sec = parse_num(value, key);
    else throw std::invalid_argument("flash: unknown knob --" + key);
  }
  return generate_flash_crowd(spec);
}

std::vector<TraceEvent> run_diurnal(const Args& args) {
  DiurnalSpec spec;
  int domains = 0;
  for (const auto& [key, value] : args.knobs) {
    if (key == "domains") domains = static_cast<int>(parse_num(value, key));
    else if (key == "duration") spec.duration_sec = parse_num(value, key);
    else if (key == "period") spec.period_sec = parse_num(value, key);
    else if (key == "amplitude") spec.amplitude = parse_num(value, key);
    else if (key == "spread") spec.phase_spread_sec = parse_num(value, key);
    else if (key == "step") spec.step_sec = parse_num(value, key);
    else throw std::invalid_argument("diurnal: unknown knob --" + key);
  }
  if (domains < 1) throw std::invalid_argument("diurnal: needs --domains=K (>= 1)");
  return generate_diurnal(spec, domains);
}

std::vector<TraceEvent> run_regime(const Args& args) {
  RegimeShiftSpec spec;
  int domains = 0;
  for (const auto& [key, value] : args.knobs) {
    if (key == "domains") domains = static_cast<int>(parse_num(value, key));
    else if (key == "duration") spec.duration_sec = parse_num(value, key);
    else if (key == "dwell") spec.mean_dwell_sec = parse_num(value, key);
    else if (key == "hot") spec.hot_multiplier = parse_num(value, key);
    else if (key == "seed") spec.seed = static_cast<std::uint64_t>(parse_num(value, key));
    else throw std::invalid_argument("regime: unknown knob --" + key);
  }
  if (domains < 1) throw std::invalid_argument("regime: needs --domains=K (>= 1)");
  return generate_regime_shifts(spec, domains);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(2);
  const std::string mode = argv[1];
  if (mode == "--help" || mode == "-h") usage(0);
  try {
    const Args args = parse_args(argc, argv);
    std::vector<TraceEvent> events;
    if (mode == "flash") {
      events = run_flash(args);
    } else if (mode == "diurnal") {
      events = run_diurnal(args);
    } else if (mode == "regime") {
      events = run_regime(args);
    } else {
      std::fprintf(stderr, "adattl_tracegen: unknown mode '%s'\n", mode.c_str());
      usage(2);
    }
    const std::string csv = adattl::workload::trace_to_csv(events);
    if (args.out_path.empty()) {
      std::fwrite(csv.data(), 1, csv.size(), stdout);
    } else {
      std::ofstream out(args.out_path, std::ios::binary);
      if (!out) throw std::invalid_argument("cannot open '" + args.out_path + "'");
      out << csv;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "adattl_tracegen: %s\n", e.what());
    return 1;
  }
  return 0;
}
