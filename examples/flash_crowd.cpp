// Example: a flash crowd with *online* hidden-load estimation.
//
// The paper's controlled experiments give the DNS oracle knowledge of the
// domain weights. In production the DNS must estimate them from server
// feedback. This example starts the estimator cold (uniform weights — it
// knows nothing about which domains are hot), then hits the site with a
// scripted flash crowd mid-run (a cold domain suddenly 8x hotter), and
// shows the EWMA estimator discovering both the Zipf skew and the shift
// from the per-domain hit counters the servers report. The resulting load
// balance is compared against the (stale) oracle and a constant-TTL
// policy.
//
// Build & run:   ./build/examples/flash_crowd
#include <cstdio>

#include "experiment/report.h"
#include "experiment/site.h"

using namespace adattl;

namespace {

experiment::SimulationConfig base_config() {
  experiment::SimulationConfig cfg;
  cfg.cluster = web::table2_cluster(50);
  cfg.policy = "PRR2-TTL/K";
  cfg.duration_sec = 5400.0;
  cfg.seed = 3;
  // The flash crowd: domain 14 (cold, ~1.9% of load) turns 8x hotter
  // half-way through the run. The DNS is not told.
  cfg.rate_shifts.push_back({cfg.warmup_sec + cfg.duration_sec / 2.0, 14, 8.0});
  return cfg;
}

}  // namespace

int main() {
  std::printf("Flash crowd: the DNS starts with no idea which of the %d domains are hot.\n",
              base_config().num_domains);

  // 1) Cold-start online estimation.
  experiment::SimulationConfig cold = base_config();
  cold.oracle_weights = false;
  cold.estimator_cold_start = true;
  experiment::Site cold_site(cold);
  const experiment::RunResult cold_result = cold_site.run();

  // Show what the estimator learned vs the truth.
  // "true share" is the post-flash-crowd rate (clients / scaled think).
  const auto& think = cold_site.think_time_model();
  const auto& ds = cold_site.domain_set();
  std::vector<double> truth(static_cast<std::size_t>(ds.num_domains()));
  double truth_total = 0.0;
  for (int d = 0; d < ds.num_domains(); ++d) {
    truth[static_cast<std::size_t>(d)] =
        ds.clients[static_cast<std::size_t>(d)] / think.mean_think(d);
    truth_total += truth[static_cast<std::size_t>(d)];
  }
  experiment::TableReport learned({"domain", "true share (now)", "estimated share", "hot?"});
  const auto& model = cold_site.domain_model();
  for (int d : {0, 1, 2, 3, 4, 13, 14, 15}) {
    learned.add_row({std::to_string(d) + (d == 14 ? " (flash)" : ""),
                     experiment::TableReport::fmt(truth[static_cast<std::size_t>(d)] / truth_total),
                     experiment::TableReport::fmt(model.share(d)),
                     model.is_hot(d) ? "hot" : "normal"});
  }
  learned.print("estimator view after the run (hot ranks + flash domain)");

  // 2) Oracle weights (the paper's setting) for comparison.
  experiment::Site oracle_site(base_config());
  const experiment::RunResult oracle_result = oracle_site.run();

  // 3) Constant TTL: what you lose by not adapting at all.
  experiment::SimulationConfig constant = base_config();
  constant.policy = "PRR2-TTL/1";
  experiment::Site constant_site(constant);
  const experiment::RunResult constant_result = constant_site.run();

  experiment::TableReport cmp({"configuration", "P(maxU<0.9)", "P(maxU<0.98)", "mean maxUtil"});
  auto row = [&](const char* name, const experiment::RunResult& r) {
    cmp.add_row({name, experiment::TableReport::fmt(r.prob_below_090),
                 experiment::TableReport::fmt(r.prob_below_098),
                 experiment::TableReport::fmt(r.mean_max_utilization)});
  };
  row("PRR2-TTL/K, cold-start estimator", cold_result);
  row("PRR2-TTL/K, stale oracle weights", oracle_result);
  row("PRR2-TTL/1, constant TTL", constant_result);
  cmp.print("load balance under a flash crowd (50% heterogeneity)");

  std::printf(
      "\nThe online estimator (fed by the servers' per-domain hit counters every\n"
      "%.0f s) recovers the Zipf ranking within a few collection windows AND\n"
      "tracks the mid-run flash crowd, while the 'oracle' keeps scheduling with\n"
      "pre-crowd weights — the paper's robustness claim, live.\n",
      base_config().monitor_interval_sec * base_config().estimator_collect_every_ticks);
  return 0;
}
