// Quickstart: simulate a heterogeneous distributed Web site and compare
// plain DNS round-robin against the paper's best adaptive-TTL algorithm.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "experiment/report.h"
#include "experiment/runner.h"

using namespace adattl;

int main() {
  experiment::SimulationConfig cfg;
  cfg.cluster = web::table2_cluster(35);  // 7 servers, 35% heterogeneity
  cfg.duration_sec = 3600.0;              // one simulated hour is plenty here
  cfg.seed = 7;

  std::printf("Simulating a 7-server Web site (35%% heterogeneity, %d domains, %d clients)\n",
              cfg.num_domains, cfg.total_clients);

  experiment::TableReport table(
      {"policy", "P(maxUtil<0.9)", "P(maxUtil<0.98)", "mean maxUtil", "avg util", "DNS ctrl %"});
  for (const char* policy : {"RR", "PRR2-TTL/K", "DRR2-TTL/S_K"}) {
    const experiment::ReplicatedResult rep = experiment::run_policy(cfg, policy, 2);
    const experiment::RunResult& r = rep.runs.front();
    table.add_row({policy, experiment::TableReport::fmt(rep.prob_below(0.90).mean),
                   experiment::TableReport::fmt(rep.prob_below(0.98).mean),
                   experiment::TableReport::fmt(r.mean_max_utilization),
                   experiment::TableReport::fmt(r.aggregate_utilization),
                   experiment::TableReport::fmt(100.0 * r.dns_controlled_fraction, 2)});
  }
  table.print("adaptive TTL vs round robin");

  std::printf(
      "\nHigher P(maxUtil<x) is better: it is the fraction of time no server\n"
      "exceeded that utilization. Adaptive TTL keeps the weak servers out of\n"
      "overload even though the DNS controls only a few percent of requests.\n");
  return 0;
}
