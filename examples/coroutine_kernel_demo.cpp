// Demo of the simulation kernel's C++20 coroutine process API (sim/process.h)
// — the process-oriented programming model CSIM users expect, built on the
// same event queue the main model uses.
//
// The scenario: a tiny custom model written from scratch against the
// kernel — an M/M/1 queue fed by a Poisson process — validated against
// queueing theory (W = 1/(mu - lambda)), plus a watcher process that
// samples the queue periodically. No experiment:: machinery involved:
// this is what building *your own* model on the substrate looks like.
//
// Build & run:   ./build/examples/coroutine_kernel_demo
#include <cstdio>
#include <deque>

#include "sim/process.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/stats.h"

using namespace adattl;

namespace {

struct Mm1Queue {
  std::deque<double> arrival_times;  // waiting customers
  bool busy = false;
  sim::RunningStat sojourn;          // time in system
  sim::RunningStat sampled_length;   // watcher's view
};

sim::Process server(sim::Simulator& sim, Mm1Queue& q, double mu, sim::RngStream rng) {
  for (;;) {
    if (q.arrival_times.empty()) {
      // Idle: poll cheaply. (A condition-variable analogue would need
      // cross-process wakeups; polling at 10x the service rate keeps the
      // demo honest within ~1% while staying three lines long.)
      q.busy = false;
      co_await sim::delay(sim, 0.1 / mu);
      continue;
    }
    q.busy = true;
    const double arrived = q.arrival_times.front();
    q.arrival_times.pop_front();
    co_await sim::delay(sim, rng.exponential(1.0 / mu));
    q.sojourn.add(sim.now() - arrived);
  }
}

sim::Process arrivals(sim::Simulator& sim, Mm1Queue& q, double lambda, sim::RngStream rng) {
  for (;;) {
    co_await sim::delay(sim, rng.exponential(1.0 / lambda));
    q.arrival_times.push_back(sim.now());
  }
}

sim::Process watcher(sim::Simulator& sim, Mm1Queue& q, double period) {
  for (;;) {
    co_await sim::delay(sim, period);
    q.sampled_length.add(static_cast<double>(q.arrival_times.size()) + (q.busy ? 1 : 0));
  }
}

}  // namespace

int main() {
  const double lambda = 0.7;  // arrivals/s
  const double mu = 1.0;      // services/s

  sim::Simulator sim;
  sim::RngStream rng(2026);
  Mm1Queue q;
  arrivals(sim, q, lambda, rng.split());
  server(sim, q, mu, rng.split());
  watcher(sim, q, 5.0);
  sim.run_until(500000.0);

  const double w_theory = 1.0 / (mu - lambda);          // mean time in system
  const double l_theory = lambda / (mu - lambda);       // mean number in system
  std::printf("M/M/1 with lambda=%.1f, mu=%.1f over %.0f simulated seconds\n", lambda, mu,
              sim.now());
  std::printf("  mean time in system  : %.3f s   (theory %.3f s)\n", q.sojourn.mean(),
              w_theory);
  std::printf("  mean number in system: %.3f     (theory %.3f)\n", q.sampled_length.mean(),
              l_theory);
  std::printf("  customers served     : %llu\n",
              static_cast<unsigned long long>(q.sojourn.count()));
  std::printf("\nThree coroutines (arrivals, server, watcher) and zero hand-written\n"
              "callbacks — the process API is how custom models plug into the same\n"
              "kernel the DNS load-balancing simulation runs on.\n");
  return 0;
}
