// General-purpose scenario runner: simulate any site / workload / policy
// combination straight from the command line.
//
//   ./build/examples/run_scenario --policy=DRR2-TTL/S_K --heterogeneity=50
//       --min-ttl=60 --replications=3   (one command line)
//   ./build/examples/run_scenario --policy=PRR2-TTL/K --measured --cold-start --cdf
//   ./build/examples/run_scenario --relative=1,0.9,0.3 --total-capacity=300
//       --clients=300 --csv             (one command line)
#include <cstdio>
#include <string>
#include <vector>

#include "experiment/cli.h"
#include "experiment/decision_log.h"
#include "experiment/parallel_executor.h"
#include "experiment/param_registry.h"
#include "experiment/report.h"
#include "experiment/runner.h"
#include "experiment/trace.h"
#include "obs/event_tracer.h"

using namespace adattl;

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  for (const std::string& a : args) {
    if (a == "--help" || a == "-h") {
      std::fputs(experiment::cli_usage().c_str(), stdout);
      return 0;
    }
  }

  experiment::ConfigResolution resolution;
  try {
    resolution = experiment::resolve_config(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n\n%s", e.what(), experiment::cli_usage().c_str());
    return 2;
  }
  const experiment::CliOptions& opt = resolution.options;

  if (opt.dump_params_md) {
    std::fputs(experiment::ParamRegistry::instance().params_markdown().c_str(), stdout);
    return 0;
  }
  if (opt.dump_config) {
    std::fputs(experiment::ParamRegistry::instance().dump_scenario(resolution).c_str(),
               stdout);
    return 0;
  }

  if (!opt.trace_path.empty() || !opt.decisions_path.empty() ||
      !opt.chrome_trace_path.empty()) {
    // A dedicated instrumented run (same seed as replication 0) so the CSV
    // artifacts match the first replication's statistics.
    experiment::Site traced(opt.config);
    experiment::TraceRecorder recorder;
    experiment::DecisionLog decisions;
    if (!opt.trace_path.empty()) recorder.attach(traced.monitor());
    if (!opt.decisions_path.empty()) decisions.attach(traced.simulator(), traced.scheduler());
    traced.run();
    if (!opt.chrome_trace_path.empty()) {
      obs::EventTracer* tracer = traced.event_tracer();
      obs::EventTracer::write_file(opt.chrome_trace_path, tracer->to_chrome_json());
      std::fprintf(stderr, "wrote %llu trace events (%llu dropped) to %s\n",
                   static_cast<unsigned long long>(tracer->total_recorded() - tracer->dropped()),
                   static_cast<unsigned long long>(tracer->dropped()),
                   opt.chrome_trace_path.c_str());
    }
    if (!opt.trace_path.empty()) {
      recorder.write_csv(opt.trace_path);
      std::fprintf(stderr, "wrote %zu trace samples to %s\n", recorder.samples().size(),
                   opt.trace_path.c_str());
    }
    if (!opt.decisions_path.empty()) {
      std::FILE* f = std::fopen(opt.decisions_path.c_str(), "w");
      if (!f) {
        std::fprintf(stderr, "error: cannot open %s\n", opt.decisions_path.c_str());
        return 2;
      }
      const std::string csv = decisions.to_csv();
      std::fwrite(csv.data(), 1, csv.size(), f);
      std::fclose(f);
      std::fprintf(stderr, "wrote %llu DNS decisions to %s\n",
                   static_cast<unsigned long long>(decisions.total_recorded()),
                   opt.decisions_path.c_str());
    }
  }

  // One sweep point (config × replications) through the parallel executor;
  // replications fan across workers with output identical to --jobs=1.
  experiment::ParallelExecutor executor(opt.jobs > 0 ? opt.jobs
                                                     : experiment::default_jobs());
  experiment::Sweep sweep;
  sweep.add(opt.config, opt.replications, opt.config.policy);
  experiment::SweepResult swept = sweep.run(executor);
  std::fprintf(stderr, "%d replications in %.2f s wall (%.2f s of runs, %d jobs)\n",
               opt.replications, swept.wall_seconds, swept.point_cpu_seconds.front(),
               swept.jobs);
  const experiment::ReplicatedResult rep = std::move(swept.points.front());
  const experiment::RunResult& first = rep.runs.front();

  if (opt.json) {
    std::printf("%s\n",
                experiment::to_json(opt.config, rep, resolution.provenance).c_str());
    return 0;
  }

  experiment::TableReport summary({"metric", "value", "+/-95%CI"});
  using R = experiment::TableReport;
  auto add = [&](const char* name, sim::MeanCi ci, int prec = 3) {
    summary.add_row({name, R::fmt(ci.mean, prec), R::fmt(ci.halfwidth, prec)});
  };
  add("P(maxUtil<0.90)", rep.prob_below(0.90));
  add("P(maxUtil<0.98)", rep.prob_below(0.98));
  add("mean max utilization", rep.ci([](const auto& r) { return r.mean_max_utilization; }));
  add("aggregate utilization", rep.aggregate_utilization());
  add("address requests/s", rep.address_request_rate(), 4);
  add("DNS-controlled fraction",
      rep.ci([](const auto& r) { return r.dns_controlled_fraction; }), 4);
  add("mean TTL handed out (s)", rep.ci([](const auto& r) { return r.mean_ttl; }), 1);
  add("within-run CI (frac of mean)",
      rep.ci([](const auto& r) { return r.max_util_ci_relative; }), 4);

  if (opt.csv) {
    summary.print_csv();
  } else {
    std::printf("policy %s on %d servers (%.0f%% heterogeneity), %d domains, %d clients\n",
                opt.config.policy.c_str(), opt.config.cluster.size(),
                opt.config.cluster.heterogeneity_percent(), opt.config.num_domains,
                opt.config.scaled().total_clients);
    summary.print("scenario result (" + std::to_string(opt.replications) + " replications)");
    std::printf("per-server mean utilization:");
    for (double u : first.mean_server_util) std::printf(" %.3f", u);
    std::printf("\n");
  }

  if (opt.show_cdf) {
    experiment::TableReport cdf({"maxUtil", "P(maxUtil<x)"});
    for (const auto& [u, p] : rep.mean_cdf_curve(50)) {
      cdf.add_row({R::fmt(u, 2), R::fmt(p, 4)});
    }
    if (opt.csv) {
      cdf.print_csv();
    } else {
      cdf.print("max-utilization CDF");
    }
  }
  return 0;
}
