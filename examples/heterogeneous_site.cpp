// Example: capacity-planning study for a custom heterogeneous Web site.
//
// A site operator has five servers of very different sizes (an old pair of
// boxes next to three newer ones) and wants to know which DNS scheduling
// policy keeps the weakest machine out of overload, and what happens if
// the site grows hotter. This example builds that custom cluster (not a
// paper preset), sweeps the whole policy matrix, and prints a ranking.
//
// Build & run:   ./build/examples/heterogeneous_site
#include <algorithm>
#include <cstdio>

#include "experiment/report.h"
#include "experiment/runner.h"

using namespace adattl;

namespace {

experiment::SimulationConfig make_site(double mean_think_sec) {
  experiment::SimulationConfig cfg;
  // Custom 5-server site: two big, one medium, two old small machines.
  cfg.cluster.relative = {1.0, 1.0, 0.7, 0.4, 0.4};
  cfg.cluster.total_capacity_hits_per_sec = 350.0;
  cfg.num_domains = 30;
  cfg.total_clients = 350;
  cfg.mean_think_sec = mean_think_sec;
  cfg.duration_sec = 3600.0;
  cfg.seed = 12;
  return cfg;
}

}  // namespace

int main() {
  std::printf("Custom site: 5 servers, relative capacities 1/1/0.7/0.4/0.4,\n"
              "350 hits/s total, 30 domains, 350 clients.\n");

  const std::vector<std::string> policies = {
      "RR",          "RR2",          "DAL",          "PRR-TTL/1",    "PRR-TTL/2",
      "PRR-TTL/K",   "PRR2-TTL/2",   "PRR2-TTL/K",   "DRR-TTL/S_2",  "DRR-TTL/S_K",
      "DRR2-TTL/S_2", "DRR2-TTL/S_K",
  };

  // Two load levels: normal (~2/3 utilization) and a hot month (~80%).
  for (double think : {15.0, 12.0}) {
    const experiment::SimulationConfig cfg = make_site(think);
    const double offered = cfg.total_clients * cfg.session.mean_hits_per_page() / think;
    std::printf("\nOffered load %.0f hits/s (%.0f%% of capacity):\n", offered,
                100.0 * offered / cfg.cluster.total_capacity_hits_per_sec);

    std::vector<std::pair<double, std::string>> ranking;
    experiment::TableReport table(
        {"policy", "P(maxU<0.9)", "P(maxU<0.98)", "weakest-server util", "mean TTL (s)"});
    for (const auto& p : policies) {
      const experiment::ReplicatedResult rep = experiment::run_policy(cfg, p, 2);
      const experiment::RunResult& r = rep.runs.front();
      table.add_row({p, experiment::TableReport::fmt(rep.prob_below(0.90).mean),
                     experiment::TableReport::fmt(rep.prob_below(0.98).mean),
                     experiment::TableReport::fmt(r.mean_server_util.back()),
                     experiment::TableReport::fmt(r.mean_ttl, 1)});
      ranking.emplace_back(rep.prob_below(0.98).mean, p);
    }
    table.print("policy matrix");

    std::sort(ranking.rbegin(), ranking.rend());
    std::printf("best three for this load: %s, %s, %s\n", ranking[0].second.c_str(),
                ranking[1].second.c_str(), ranking[2].second.c_str());
  }

  std::printf(
      "\nReading: the deterministic DRR2-TTL/S_K (per-domain TTL scaled by the\n"
      "chosen server's capacity) protects the 0.4-capacity machines best; plain\n"
      "RR pins hot domains on them for a whole 240 s TTL and overloads them.\n");
  return 0;
}
