// Example: capacity planning with an SLO.
//
// "We expect ~330 hits/s from 500 clients. How much total server capacity
// do we need so that no server exceeds 98% utilization at least 90% of the
// time — and how much does the scheduling policy change the answer?"
//
// This bisects the total site capacity per policy until the SLO is met.
// The gap between RR's answer and DRR2-TTL/S_K's answer is the hardware
// cost of naive DNS scheduling.
//
// Build & run:   ./build/examples/capacity_planning
#include <cstdio>

#include "experiment/report.h"
#include "experiment/runner.h"

using namespace adattl;

namespace {

constexpr double kSloProbability = 0.90;  // P(maxUtil < 0.98) target

double slo_metric(const std::string& policy, double total_capacity) {
  experiment::SimulationConfig cfg;
  cfg.cluster = web::table2_cluster(35);
  cfg.cluster.total_capacity_hits_per_sec = total_capacity;
  cfg.policy = policy;
  cfg.duration_sec = 3600.0;
  cfg.seed = 23;
  return experiment::run_replications(cfg, 2).prob_below(0.98).mean;
}

/// Smallest capacity in [lo, hi] meeting the SLO, to ~2% resolution.
double required_capacity(const std::string& policy, double lo, double hi) {
  if (slo_metric(policy, hi) < kSloProbability) return -1.0;  // not attainable in range
  while (hi / lo > 1.02) {
    const double mid = 0.5 * (lo + hi);
    if (slo_metric(policy, mid) >= kSloProbability) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace

int main() {
  std::printf("SLO: P(maxUtil < 0.98) >= %.0f%%. Offered load ~329 hits/s\n"
              "(500 clients, 15 s think, 10 hits/page). 7 servers, 35%% heterogeneity.\n\n",
              100.0 * kSloProbability);

  experiment::TableReport table(
      {"policy", "required capacity (hits/s)", "headroom over offered load", "vs best"});
  const double offered = 500.0 * 10.0 / 15.0;

  double best = -1.0;
  std::vector<std::pair<std::string, double>> results;
  for (const char* policy : {"DRR2-TTL/S_K", "PRR2-TTL/K", "PRR2-TTL/2", "RR"}) {
    const double cap = required_capacity(policy, 350.0, 2000.0);
    results.emplace_back(policy, cap);
    if (cap > 0 && (best < 0 || cap < best)) best = cap;
  }
  for (const auto& [policy, cap] : results) {
    if (cap < 0) {
      table.add_row({policy, "> 2000 (SLO unreachable in range)", "-", "-"});
      continue;
    }
    table.add_row({policy, experiment::TableReport::fmt(cap, 0),
                   experiment::TableReport::fmt(cap / offered, 2) + "x",
                   experiment::TableReport::fmt(cap / best, 2) + "x"});
  }
  table.print("capacity needed to meet the SLO, by DNS scheduling policy");

  std::printf(
      "\nThe adaptive-TTL site meets the SLO with far less hardware: under RR a\n"
      "hot domain pins its whole load on one server for each 240 s TTL window,\n"
      "so only massive over-provisioning keeps the max utilization down.\n");
  return 0;
}
