// Example: choosing a policy when resolvers ignore small TTLs.
//
// Real-world name servers clamp TTLs they consider too small (the paper's
// "non-cooperative NS" problem). This example sweeps the resolvers'
// minimum accepted TTL and reports, per threshold, which algorithm an
// operator should deploy — reproducing the paper's §5.2 decision rule:
// DRR2-TTL/S_K while resolvers are cooperative, a probabilistic K-class
// or 2-class scheme once they are not.
//
// Build & run:   ./build/examples/noncooperative_resolvers
#include <algorithm>
#include <cstdio>

#include "experiment/report.h"
#include "experiment/runner.h"

using namespace adattl;

int main() {
  experiment::SimulationConfig cfg;
  cfg.cluster = web::table2_cluster(50);
  cfg.duration_sec = 3600.0;
  cfg.seed = 41;

  const std::vector<std::string> candidates = {
      "DRR2-TTL/S_K", "PRR2-TTL/K", "PRR2-TTL/2",
  };

  std::printf("Site: 7 servers at 50%% heterogeneity. Sweeping the resolvers'\n"
              "minimum accepted TTL; every NS replaces smaller TTLs with its minimum.\n");

  experiment::TableReport table({"min TTL (s)", "DRR2-TTL/S_K", "PRR2-TTL/K", "PRR2-TTL/2",
                                 "deploy"});
  for (double min_ttl : {0.0, 60.0, 120.0, 240.0}) {
    cfg.ns_min_ttl_sec = min_ttl;
    std::vector<double> scores;
    std::vector<std::string> cells{experiment::TableReport::fmt(min_ttl, 0)};
    for (const auto& p : candidates) {
      const experiment::ReplicatedResult rep = experiment::run_policy(cfg, p, 2);
      scores.push_back(rep.prob_below(0.98).mean);
      cells.push_back(experiment::TableReport::fmt(scores.back()));
    }
    const std::size_t best = static_cast<std::size_t>(
        std::max_element(scores.begin(), scores.end()) - scores.begin());
    cells.push_back(candidates[best]);
    table.add_row(std::move(cells));
  }
  table.print("P(maxUtil < 0.98) per policy and resolver minimum TTL");

  std::printf(
      "\nDecision rule (matches the paper): with cooperative resolvers the\n"
      "deterministic per-domain/per-server scheme wins because it can hand the\n"
      "hottest domains very small TTLs; once resolvers clamp TTLs, those small\n"
      "values are ignored and the coarser probabilistic schemes — whose TTLs\n"
      "are naturally larger — take over.\n");
  return 0;
}
