// Demo: the paper's scheduler answering *real* DNS packets.
//
// DnsFrontend adapts a core::DnsScheduler to RFC 1035 wire format: feed it
// query bytes, get authoritative A-record responses whose address is the
// chosen server and whose TTL is the adaptive policy's per-request TTL.
// Bind the same calls to a UDP socket and the 1998 algorithms serve 2026
// resolvers unchanged.
//
// This demo crafts queries from three resolvers (a hot domain, a mid
// domain, a cold domain), prints the wire-level answers, and shows the
// TTL shaping that is invisible in aggregate statistics: hot domains get
// short leases, cold domains long ones, weak servers shorter than strong.
//
// Build & run:   ./build/examples/dns_wire_demo
#include <cstdio>

#include "core/policy_factory.h"
#include "dnswire/frontend.h"
#include "experiment/report.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "web/cluster.h"

using namespace adattl;

namespace {

std::string dotted_ip(std::uint32_t ip) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (ip >> 24) & 0xff, (ip >> 16) & 0xff,
                (ip >> 8) & 0xff, ip & 0xff);
  return buf;
}

}  // namespace

int main() {
  sim::Simulator simulator;
  sim::RngStream rng(2026);
  const web::ClusterSpec spec = web::table2_cluster(50);

  core::AlarmRegistry alarms(spec.size(), 0.9);
  core::SchedulerFactoryConfig fc;
  fc.capacities = spec.absolute_capacities();
  fc.initial_weights = sim::ZipfDistribution(20, 1.0).probabilities();
  fc.class_threshold = 1.0 / 20;
  core::SchedulerBundle bundle =
      core::make_scheduler("DRR2-TTL/S_K", fc, alarms, simulator, rng);

  // 10.0.0.1 .. 10.0.0.7, strongest server first.
  std::vector<std::uint32_t> addrs;
  for (int s = 0; s < spec.size(); ++s) addrs.push_back(0x0A000001 + static_cast<unsigned>(s));
  dnswire::DnsFrontend frontend(*bundle.scheduler, "www.site.org", addrs);

  std::printf("Authoritative frontend for www.site.org over 7 servers (50%% heterogeneity),\n"
              "policy DRR2-TTL/S_K. Eight queries per resolver:\n");

  experiment::TableReport table({"resolver (domain)", "answers (address ttl)"});
  for (int domain : {0, 5, 19}) {
    std::string answers;
    for (int i = 0; i < 8; ++i) {
      const std::vector<std::uint8_t> query =
          dnswire::encode_query(static_cast<std::uint16_t>(1000 + i), "www.site.org");
      const std::vector<std::uint8_t> response = frontend.handle(query, domain);
      dnswire::Header h;
      std::uint32_t ip = 0, ttl = 0;
      if (!dnswire::decode_a_response(response, &h, &ip, &ttl)) {
        std::fprintf(stderr, "malformed response!\n");
        return 1;
      }
      answers += dotted_ip(ip) + " " + std::to_string(ttl) + "s";
      if (i + 1 < 8) answers += ", ";
    }
    const char* label = domain == 0 ? "domain 0 (hot, 28% of load)"
                        : domain == 5 ? "domain 5 (mid, 4.6%)"
                                      : "domain 19 (cold, 1.4%)";
    table.add_row({label, answers});
  }
  table.print("wire-level answers");

  std::printf("\nReading: every response is a routable A record; the *address* walks the\n"
              "two-tier round robin and the *TTL* is the policy — short leases for the\n"
              "hot domain (and shorter still on the weak 10.0.0.5-7 boxes), long leases\n"
              "for the cold domain. %llu queries answered, %llu refused.\n",
              static_cast<unsigned long long>(frontend.answered()),
              static_cast<unsigned long long>(frontend.refused()));
  return 0;
}
