// Ablation: does the address-rate fairness calibration (§4.1) matter?
//
// The paper normalizes every adaptive policy's TTL base so all policies
// generate the same average address-request traffic as the constant
// 240 s baseline. Without it, TTL/K policies would use base = 240 s and
// hand out much *longer* TTLs (the hottest domain gets 240 s instead of
// ~43 s), reducing DNS control. Expected: uncalibrated adaptive policies
// lose part of their advantage while their address-request rate drops.
#include "bench_common.h"

using namespace adattl;

int main() {
  const int reps = experiment::default_replications();
  bench::print_run_banner("Ablation: TTL calibration", "heterogeneity 35%");

  const std::vector<std::string> policies = {"PRR2-TTL/2", "PRR2-TTL/K", "DRR2-TTL/S_K"};
  experiment::Sweep sweep;
  for (const auto& p : policies) {
    experiment::SimulationConfig cfg = bench::paper_config(35);
    sweep.add_policy(cfg, p, reps, p + " (calibrated)");
    cfg.calibrate_ttl = false;
    sweep.add_policy(cfg, p, reps, p + " (uncalibrated)");
  }
  const experiment::SweepResult swept = bench::run_sweep(sweep);

  experiment::TableReport table({"policy", "calibrated", "addr req/s", "uncalibrated",
                                 "addr req/s (uncal)"});
  std::size_t idx = 0;
  for (const auto& p : policies) {
    const experiment::ReplicatedResult& cal = swept.points[idx++];
    const experiment::ReplicatedResult& uncal = swept.points[idx++];
    table.add_row({p, experiment::TableReport::fmt(cal.prob_below(0.98).mean),
                   experiment::TableReport::fmt(cal.address_request_rate().mean, 4),
                   experiment::TableReport::fmt(uncal.prob_below(0.98).mean),
                   experiment::TableReport::fmt(uncal.address_request_rate().mean, 4)});
  }
  adattl::bench::emit(table, "P(maxUtil < 0.98) with and without address-rate calibration");
  return 0;
}
