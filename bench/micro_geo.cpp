// Geography ablation, three parts in one JSON document on stdout
// (tools/run_benches.sh captures it as BENCH_geo.json):
//
//   * rtt_lookup — the GeoModel::rtt hot path (flat row-major vector,
//     unchecked indexing) timed against a bounds-checked reference
//     implementation of the same lookup, ns per call;
//   * frontier   — the utilization-vs-latency trade-off: GEO (pure
//     proximity), RR2 (pure load) and the COST(alpha) composite swept
//     across alpha, each a full simulated run reporting peak utilization
//     and the RTT of the assignments the DNS actually handed out;
//   * autoscale  — an elastic run (watermark autoscaler + a flash crowd)
//     checked for conservation: drained servers finish their queues, so
//     nothing is lost and the pool must have actually moved.
//
// The "summary" section asserts the composite objective's reason to
// exist: some alpha strictly beats pure GEO on peak utilization while
// strictly beating pure RR2 on mean assignment RTT.
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "experiment/config.h"
#include "experiment/site.h"
#include "geo/geo_model.h"
#include "web/cluster.h"

namespace {

using adattl::experiment::RunResult;
using adattl::experiment::SimulationConfig;
using adattl::experiment::Site;
using adattl::geo::GeoModel;

// ------------------------------------------------------------ rtt lookup

/// The pre-refactor lookup: nested-vector semantics emulated with range
/// checks on every call. Kept here as the timing baseline.
double checked_rtt(const std::vector<std::vector<double>>& rtt, int domain, int server) {
  if (domain < 0 || static_cast<std::size_t>(domain) >= rtt.size()) {
    throw std::out_of_range("rtt: domain");
  }
  const std::vector<double>& row = rtt[static_cast<std::size_t>(domain)];
  if (server < 0 || static_cast<std::size_t>(server) >= row.size()) {
    throw std::out_of_range("rtt: server");
  }
  return row[static_cast<std::size_t>(server)];
}

struct LookupTiming {
  double flat_ns = 0.0;
  double checked_ns = 0.0;
  double checksum = 0.0;  // defeats dead-code elimination
};

LookupTiming time_rtt_lookups() {
  constexpr int kDomains = 512;
  constexpr int kServers = 32;
  constexpr int kSweeps = 400;
  const GeoModel model = GeoModel::regions(kDomains, kServers, 5, 0.02, 0.15);
  std::vector<std::vector<double>> nested(kDomains, std::vector<double>(kServers));
  for (int d = 0; d < kDomains; ++d) {
    for (int s = 0; s < kServers; ++s) {
      nested[static_cast<std::size_t>(d)][static_cast<std::size_t>(s)] = model.rtt(d, s);
    }
  }
  const double calls = static_cast<double>(kSweeps) * kDomains * kServers;

  LookupTiming t;
  auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < kSweeps; ++r) {
    for (int d = 0; d < kDomains; ++d) {
      for (int s = 0; s < kServers; ++s) t.checksum += model.rtt(d, s);
    }
  }
  auto mid = std::chrono::steady_clock::now();
  for (int r = 0; r < kSweeps; ++r) {
    for (int d = 0; d < kDomains; ++d) {
      for (int s = 0; s < kServers; ++s) t.checksum += checked_rtt(nested, d, s);
    }
  }
  auto end = std::chrono::steady_clock::now();
  t.flat_ns = std::chrono::duration<double, std::nano>(mid - start).count() / calls;
  t.checked_ns = std::chrono::duration<double, std::nano>(end - mid).count() / calls;
  return t;
}

// -------------------------------------------------------------- frontier

struct FrontierPoint {
  std::string policy;
  double mean_max_utilization = 0.0;
  double mean_assignment_rtt_sec = 0.0;
  double mean_page_response_sec = 0.0;
};

FrontierPoint run_policy(const std::string& policy) {
  SimulationConfig c;
  c.cluster = adattl::web::table2_cluster(35);
  c.policy = policy;
  c.geo_regions = 3;
  c.warmup_sec = 200.0;
  c.duration_sec = 3600.0;
  c.seed = 97;
  const RunResult r = Site(c).run();
  FrontierPoint p;
  p.policy = policy;
  p.mean_max_utilization = r.mean_max_utilization;
  p.mean_assignment_rtt_sec = r.mean_assignment_rtt_sec;
  p.mean_page_response_sec = r.mean_page_response_sec;
  return p;
}

// ------------------------------------------------------------- autoscale

struct ElasticResult {
  std::uint64_t pool_changes = 0;
  std::uint64_t autoscale_ups = 0;
  std::uint64_t autoscale_downs = 0;
  std::uint64_t lost_pages = 0;
  std::uint64_t failed_requests = 0;
  int final_pool_size = 0;
};

ElasticResult run_autoscale() {
  SimulationConfig c;
  c.cluster = adattl::web::table2_cluster(35);
  c.policy = "DRR2-TTL/S_K";
  c.total_clients = 200;
  c.warmup_sec = 200.0;
  c.duration_sec = 9600.0;
  c.seed = 97;
  c.autoscale_enabled = true;
  c.autoscale_high_watermark = 0.60;
  c.autoscale_low_watermark = 0.30;
  c.autoscale_hysteresis_ticks = 3;
  c.autoscale_min_servers = 2;
  c.rate_shifts.push_back({5000.0, 0, 4.0});
  const RunResult r = Site(c).run();
  ElasticResult e;
  e.pool_changes = r.pool_changes;
  e.autoscale_ups = r.autoscale_ups;
  e.autoscale_downs = r.autoscale_downs;
  e.lost_pages = r.lost_pages;
  e.failed_requests = r.failed_requests;
  e.final_pool_size = r.final_pool_size;
  return e;
}

}  // namespace

int main() {
  const LookupTiming timing = time_rtt_lookups();

  const std::vector<std::string> policies = {
      "GEO-TTL/K",        "RR2",
      "COST(0)-TTL/K",    "COST(0.25)-TTL/K", "COST(0.5)-TTL/K",
      "COST(0.75)-TTL/K", "COST(1)-TTL/K",
  };
  std::vector<FrontierPoint> frontier;
  frontier.reserve(policies.size());
  for (const std::string& p : policies) frontier.push_back(run_policy(p));

  const FrontierPoint& geo = frontier[0];
  const FrontierPoint& rr2 = frontier[1];
  bool dominates = false;
  for (std::size_t i = 2; i < frontier.size(); ++i) {
    if (frontier[i].mean_max_utilization < geo.mean_max_utilization &&
        frontier[i].mean_assignment_rtt_sec < rr2.mean_assignment_rtt_sec) {
      dominates = true;
    }
  }

  const ElasticResult elastic = run_autoscale();
  const bool conserves = elastic.lost_pages == 0 && elastic.failed_requests == 0;
  const bool pool_moved = elastic.pool_changes > 0;

  std::printf("{\n");
  std::printf("  \"context\": {\"benchmark\": \"micro_geo\"},\n");
  std::printf("  \"rtt_lookup\": {\"flat_ns_per_call\": %.3f, \"checked_ns_per_call\": %.3f,"
              " \"checksum\": %.6g},\n",
              timing.flat_ns, timing.checked_ns, timing.checksum);
  std::printf("  \"frontier\": [\n");
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    const FrontierPoint& p = frontier[i];
    std::printf("    {\"policy\": \"%s\", \"mean_max_utilization\": %.6f,"
                " \"mean_assignment_rtt_sec\": %.6f, \"mean_page_response_sec\": %.6f}%s\n",
                p.policy.c_str(), p.mean_max_utilization, p.mean_assignment_rtt_sec,
                p.mean_page_response_sec, i + 1 < frontier.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"autoscale\": {\"pool_changes\": %llu, \"autoscale_ups\": %llu,"
              " \"autoscale_downs\": %llu, \"lost_pages\": %llu, \"failed_requests\": %llu,"
              " \"final_pool_size\": %d},\n",
              static_cast<unsigned long long>(elastic.pool_changes),
              static_cast<unsigned long long>(elastic.autoscale_ups),
              static_cast<unsigned long long>(elastic.autoscale_downs),
              static_cast<unsigned long long>(elastic.lost_pages),
              static_cast<unsigned long long>(elastic.failed_requests),
              elastic.final_pool_size);
  std::printf("  \"summary\": {\"cost_dominates_geo_and_rr2\": %s,"
              " \"autoscale_conserves_work\": %s, \"autoscale_pool_moved\": %s}\n",
              dominates ? "true" : "false", conserves ? "true" : "false",
              pool_moved ? "true" : "false");
  std::printf("}\n");

  return (dominates && conserves && pool_moved) ? 0 : 1;
}
