// Ablation: online hidden-load estimation vs the oracle weights used in
// the paper's controlled experiments (and EWMA vs sliding-window).
//
// Expected: warm-started online estimation is statistically
// indistinguishable from the oracle; even a cold start (uniform initial
// weights) converges within a few collection windows and pays only a
// small transient penalty — supporting the paper's claim that the needed
// state information is cheap to obtain.
#include "bench_common.h"

using namespace adattl;

int main() {
  const int reps = experiment::default_replications();
  bench::print_run_banner("Ablation: hidden-load estimation", "heterogeneity 35%");

  experiment::TableReport table({"estimation", "PRR2-TTL/K", "DRR2-TTL/S_K"});

  struct Variant {
    const char* label;
    void (*apply)(experiment::SimulationConfig&);
  };
  const Variant variants[] = {
      {"oracle weights (paper)", [](experiment::SimulationConfig&) {}},
      {"EWMA, warm start",
       [](experiment::SimulationConfig& c) { c.oracle_weights = false; }},
      {"EWMA, cold start",
       [](experiment::SimulationConfig& c) {
         c.oracle_weights = false;
         c.estimator_cold_start = true;
       }},
      {"sliding window, warm start",
       [](experiment::SimulationConfig& c) {
         c.oracle_weights = false;
         c.estimator_kind = experiment::EstimatorKind::kSlidingWindow;
       }},
      {"sliding window, cold start",
       [](experiment::SimulationConfig& c) {
         c.oracle_weights = false;
         c.estimator_kind = experiment::EstimatorKind::kSlidingWindow;
         c.estimator_cold_start = true;
       }},
  };

  const std::vector<std::string> policies = {"PRR2-TTL/K", "DRR2-TTL/S_K"};
  experiment::Sweep sweep;
  for (const Variant& v : variants) {
    for (const auto& p : policies) {
      experiment::SimulationConfig cfg = bench::paper_config(35);
      v.apply(cfg);
      sweep.add_policy(cfg, p, reps, p + ", " + v.label);
    }
  }
  const experiment::SweepResult swept = bench::run_sweep(sweep);

  std::size_t idx = 0;
  for (const Variant& v : variants) {
    std::vector<std::string> row{v.label};
    for (std::size_t i = 0; i < policies.size(); ++i) {
      row.push_back(experiment::TableReport::fmt(swept.points[idx++].prob_below(0.98).mean));
    }
    table.add_row(std::move(row));
  }
  adattl::bench::emit(table, "P(maxUtil < 0.98) by estimation mode");
  return 0;
}
