// Ablation: online hidden-load estimation vs the oracle weights used in
// the paper's controlled experiments (and EWMA vs sliding-window).
//
// Expected: warm-started online estimation is statistically
// indistinguishable from the oracle; even a cold start (uniform initial
// weights) converges within a few collection windows and pays only a
// small transient penalty — supporting the paper's claim that the needed
// state information is cheap to obtain.
#include "bench_common.h"

using namespace adattl;

int main() {
  const int reps = experiment::default_replications();
  bench::print_run_banner("Ablation: hidden-load estimation", "heterogeneity 35%");

  experiment::TableReport table({"estimation", "PRR2-TTL/K", "DRR2-TTL/S_K"});

  struct Variant {
    const char* label;
    void (*apply)(experiment::SimulationConfig&);
  };
  const Variant variants[] = {
      {"oracle weights (paper)", [](experiment::SimulationConfig&) {}},
      {"EWMA, warm start",
       [](experiment::SimulationConfig& c) { c.oracle_weights = false; }},
      {"EWMA, cold start",
       [](experiment::SimulationConfig& c) {
         c.oracle_weights = false;
         c.estimator_cold_start = true;
       }},
      {"sliding window, warm start",
       [](experiment::SimulationConfig& c) {
         c.oracle_weights = false;
         c.estimator_kind = experiment::EstimatorKind::kSlidingWindow;
       }},
      {"sliding window, cold start",
       [](experiment::SimulationConfig& c) {
         c.oracle_weights = false;
         c.estimator_kind = experiment::EstimatorKind::kSlidingWindow;
         c.estimator_cold_start = true;
       }},
  };

  for (const Variant& v : variants) {
    std::vector<std::string> row{v.label};
    for (const char* p : {"PRR2-TTL/K", "DRR2-TTL/S_K"}) {
      experiment::SimulationConfig cfg = bench::paper_config(35);
      v.apply(cfg);
      row.push_back(experiment::TableReport::fmt(
          experiment::run_policy(cfg, p, reps).prob_below(0.98).mean));
    }
    table.add_row(std::move(row));
  }
  adattl::bench::emit(table, "P(maxUtil < 0.98) by estimation mode");
  return 0;
}
