// Population-scale throughput: events/sec as the client population grows
// 5k → 1M via the --scale knob (clients and capacity together, so the
// per-client load — and thus events per client per simulated second — is
// invariant and the sweep isolates the kernel + pool scaling behavior).
//
// BM_ScaleClients runs the domain-sharded mode (the intended vehicle for
// large populations); BM_ScaleClientsSerial keeps two unsharded reference
// points. BM_MillionClientDay is the headline: one million clients
// through a multi-hour simulated day, end to end.
#include <benchmark/benchmark.h>

#include "experiment/sharded_site.h"
#include "experiment/site.h"

namespace {

using namespace adattl;

experiment::SimulationConfig scale_config(std::int64_t clients, double warmup,
                                          double duration) {
  experiment::SimulationConfig cfg;
  cfg.cluster = web::table2_cluster(35);
  cfg.policy = "DRR2-TTL/S_K";
  cfg.warmup_sec = warmup;
  cfg.duration_sec = duration;
  cfg.seed = 4242;
  cfg.scale = static_cast<double>(clients) / cfg.total_clients;
  return cfg;
}

void BM_ScaleClients(benchmark::State& state) {
  const std::int64_t clients = state.range(0);
  std::uint64_t events = 0;
  double simulated = 0.0;
  for (auto _ : state) {
    experiment::SimulationConfig cfg = scale_config(clients, 60.0, 240.0);
    cfg.shard_domains = true;
    cfg.shard_count = 4;
    experiment::ShardedSite site(cfg);
    const experiment::RunResult r = site.run();
    events += r.events_dispatched;
    simulated += cfg.warmup_sec + cfg.duration_sec;
    benchmark::DoNotOptimize(r.prob_below_098);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["clients"] = static_cast<double>(clients);
  state.counters["sim_sec_per_iter"] = simulated / static_cast<double>(state.iterations());
}
BENCHMARK(BM_ScaleClients)
    ->Arg(5000)
    ->Arg(50000)
    ->Arg(500000)
    ->Arg(1000000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_ScaleClientsSerial(benchmark::State& state) {
  const std::int64_t clients = state.range(0);
  std::uint64_t events = 0;
  for (auto _ : state) {
    experiment::Site site(scale_config(clients, 60.0, 240.0));
    const experiment::RunResult r = site.run();
    events += r.events_dispatched;
    benchmark::DoNotOptimize(r.prob_below_098);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["clients"] = static_cast<double>(clients);
}
BENCHMARK(BM_ScaleClientsSerial)
    ->Arg(5000)
    ->Arg(50000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_MillionClientDay(benchmark::State& state) {
  // One million clients through a 4-hour measured day (plus 10 min
  // warm-up) — the scale target this PR exists for. A single iteration:
  // the run itself is the statistic.
  std::uint64_t events = 0;
  for (auto _ : state) {
    experiment::SimulationConfig cfg = scale_config(1000000, 600.0, 14400.0);
    cfg.shard_domains = true;
    cfg.shard_count = 4;
    experiment::ShardedSite site(cfg);
    const experiment::RunResult r = site.run();
    events += r.events_dispatched;
    benchmark::DoNotOptimize(r.prob_below_098);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["clients"] = 1000000.0;
  state.counters["sim_hours"] = 15000.0 / 3600.0;
}
BENCHMARK(BM_MillionClientDay)->Iterations(1)->Unit(benchmark::kSecond);

}  // namespace
