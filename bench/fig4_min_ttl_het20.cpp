// Figure 4: robustness to non-cooperative name servers at 20% system
// heterogeneity. All NSs override any proposed TTL below the x-axis
// threshold with the threshold itself (the paper's worst case).
//
// Paper shape: DRR2-TTL/S_K best throughout (its advantage narrowing as
// the threshold rises, because hot-domain/weak-server mappings want small
// TTLs); PRR2-TTL/K insensitive; PRR2-TTL/2 flat (its TTLs are naturally
// above ~180 s once calibrated).
#include "fig_min_ttl_common.h"

int main() { return adattl::bench::run_min_ttl_figure("Figure 4", 20); }
