// Ablation: where does the domain-class-count payoff saturate?
//
// The paper evaluates i = 1 (constant), i = 2 (hot/normal) and i = K (one
// TTL per domain). The TTL/i meta-algorithm admits any i; this bench fills
// in the gap with i = 3 and 4. Expected: a large jump from 1 -> 2, smaller
// gains to K — most of the benefit is in separating the few hot domains.
#include "bench_common.h"

using namespace adattl;

int main() {
  const int reps = experiment::default_replications();
  bench::print_run_banner("Ablation: TTL class count", "heterogeneity 35%");

  experiment::TableReport table(
      {"classes i", "PRR2-TTL/i", "DRR2-TTL/S_i", "mean TTL PRR2 (s)"});
  const experiment::SimulationConfig cfg = bench::paper_config(35);

  const std::vector<std::string> class_counts = {"1", "2", "3", "4", "K"};
  experiment::Sweep sweep;
  for (const std::string& i : class_counts) {
    sweep.add_policy(cfg, "PRR2-TTL/" + i, reps);
    sweep.add_policy(cfg, "DRR2-TTL/S_" + i, reps);
  }
  const experiment::SweepResult swept = bench::run_sweep(sweep);

  std::size_t idx = 0;
  for (const std::string& i : class_counts) {
    const experiment::ReplicatedResult& prob = swept.points[idx++];
    const experiment::ReplicatedResult& det = swept.points[idx++];
    table.add_row({i, experiment::TableReport::fmt(prob.prob_below(0.98).mean),
                   experiment::TableReport::fmt(det.prob_below(0.98).mean),
                   experiment::TableReport::fmt(
                       prob.ci([](const auto& r) { return r.mean_ttl; }).mean, 1)});
  }
  adattl::bench::emit(table, "P(maxUtil < 0.98) vs number of domain classes");
  return 0;
}
