#pragma once

// Shared driver for Figures 6 and 7: sensitivity to errors in the hidden
// load weight estimate. The workload's busiest domain grows by the error
// percentage (the rest shrink proportionally — the worst case, since it
// *increases* skew) while the DNS keeps scheduling with the unperturbed
// weights.

#include "bench_common.h"

namespace adattl::bench {

inline int run_estimation_error_figure(const char* figure, int heterogeneity_percent) {
  const int reps = experiment::default_replications();
  print_run_banner(figure,
                   "sensitivity to hidden-load estimation error, heterogeneity " +
                       std::to_string(heterogeneity_percent) + "%");

  const std::vector<std::string> policies = {
      "DRR2-TTL/S_K", "DRR-TTL/S_K", "PRR2-TTL/K", "PRR-TTL/K",
      "DRR2-TTL/S_2", "DRR-TTL/S_2", "PRR2-TTL/2", "PRR-TTL/2",
  };

  std::vector<std::string> headers = {"error%"};
  for (const auto& p : policies) headers.push_back(p);
  experiment::TableReport table(headers);

  const std::vector<double> errors = {0.0, 10.0, 20.0, 30.0, 40.0, 50.0};
  experiment::Sweep sweep;
  for (double err : errors) {
    experiment::SimulationConfig cfg = paper_config(heterogeneity_percent);
    cfg.rate_perturbation_percent = err;
    for (const auto& p : policies) {
      sweep.add_policy(cfg, p, reps,
                       p + " @ error " + experiment::TableReport::fmt(err, 0) + "%");
    }
  }
  const experiment::SweepResult swept = run_sweep(sweep);

  std::size_t idx = 0;
  for (double err : errors) {
    std::vector<std::string> row{experiment::TableReport::fmt(err, 0)};
    for (std::size_t i = 0; i < policies.size(); ++i) {
      row.push_back(experiment::TableReport::fmt(swept.points[idx++].prob_below(0.98).mean));
    }
    table.add_row(std::move(row));
  }
  adattl::bench::emit(table, std::string(figure) +
              ": Prob(maxUtilization < 0.98) vs estimation error (heterogeneity " +
              std::to_string(heterogeneity_percent) + "%)");
  return 0;
}

}  // namespace adattl::bench
