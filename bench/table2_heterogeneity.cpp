// Regenerates the paper's Table 2: the relative server capacities of each
// heterogeneity level, plus derived quantities (absolute capacities under
// the fixed 500 hits/s total, power ratio rho).
#include <string>

#include "experiment/report.h"
#include "web/cluster.h"

using namespace adattl;

int main() {
  experiment::TableReport t(
      {"level", "relative capacities (alpha_i)", "absolute C_i (hits/s)", "rho = C_1/C_N"});
  using R = experiment::TableReport;

  for (int level : web::table2_levels()) {
    const web::ClusterSpec spec = web::table2_cluster(level);
    std::string rel;
    std::string abs;
    const std::vector<double> c = spec.absolute_capacities();
    for (int i = 0; i < spec.size(); ++i) {
      rel += R::fmt(spec.relative[static_cast<std::size_t>(i)], 2);
      abs += R::fmt(c[static_cast<std::size_t>(i)], 1);
      if (i + 1 < spec.size()) {
        rel += " ";
        abs += " ";
      }
    }
    t.add_row({std::to_string(level) + "%", rel, abs, R::fmt(spec.power_ratio(), 2)});
  }
  t.print("Table 2: parameters of the heterogeneity levels");
  return 0;
}
