// Figure 3: sensitivity of the RR2-based adaptive TTL policies to system
// heterogeneity (20% - 65%), reported as Prob(maxUtilization < 0.98), with
// the capacity-aware DAL baseline and plain RR for contrast.
//
// Paper shape: TTL/K and TTL/S_K stay near 1 across the whole range;
// TTL/2 and TTL/S_2 hold up to ~50% and then sag; DAL and RR are poor
// everywhere — homogeneous-era schemes do not transfer.
#include "bench_common.h"

using namespace adattl;

int main() {
  const int reps = experiment::default_replications();
  bench::print_run_banner("Figure 3", "sensitivity to system heterogeneity (20-65%)");

  const std::vector<std::string> policies = {
      "DRR2-TTL/S_K", "DRR2-TTL/S_2", "PRR2-TTL/K", "PRR2-TTL/2", "DAL", "RR",
  };

  std::vector<std::string> headers = {"heterogeneity"};
  for (const auto& p : policies) headers.push_back(p);
  experiment::TableReport table(headers);

  const std::vector<int> levels = {20, 35, 50, 65};
  experiment::Sweep sweep;
  for (int level : levels) {
    const experiment::SimulationConfig cfg = bench::paper_config(level);
    for (const auto& p : policies) {
      sweep.add_policy(cfg, p, reps, p + " @ " + std::to_string(level) + "%");
    }
  }
  const experiment::SweepResult swept = bench::run_sweep(sweep);

  std::size_t idx = 0;
  for (int level : levels) {
    std::vector<std::string> row{std::to_string(level) + "%"};
    for (std::size_t i = 0; i < policies.size(); ++i) {
      row.push_back(experiment::TableReport::fmt(swept.points[idx++].prob_below(0.98).mean));
    }
    table.add_row(std::move(row));
  }
  adattl::bench::emit(table, "Figure 3: Prob(maxUtilization < 0.98) vs heterogeneity");
  return 0;
}
