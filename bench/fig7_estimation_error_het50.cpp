// Figure 7: as Figure 6 but at 50% system heterogeneity.
//
// Paper shape: with high heterogeneity *and* large error the two-class
// schemes degrade substantially, while TTL/K / TTL/S_K remain only mildly
// affected — the headline robustness claim of the paper.
#include "fig_estimation_error_common.h"

int main() { return adattl::bench::run_estimation_error_figure("Figure 7", 50); }
