// Figure 1: cumulative frequency of the maximum server utilization for the
// deterministic adaptive-TTL algorithms at 20% system heterogeneity,
// bracketed by the Ideal envelope (PRR under uniform client distribution)
// above and conventional RR below.
//
// Paper shape: DRR2-TTL/S_K ~ DRR-TTL/S_K close to Ideal; TTL/S_2 variants
// clearly better than TTL/S_1; TTL/S_1 barely above RR (server-capacity-
// only TTL shaping does not fix client skew).
#include "bench_common.h"

using namespace adattl;

int main() {
  const int reps = experiment::default_replications();
  experiment::SimulationConfig cfg = bench::paper_config(20);
  bench::print_run_banner("Figure 1", "deterministic algorithms, heterogeneity 20%");

  const std::vector<std::string> policies = {
      "DRR2-TTL/S_K", "DRR-TTL/S_K", "DRR2-TTL/S_2", "DRR-TTL/S_2",
      "DRR2-TTL/S_1", "DRR-TTL/S_1", "RR",
  };

  experiment::Sweep sweep;
  sweep.add(bench::ideal_config(cfg), reps, "Ideal");
  for (const auto& p : policies) sweep.add_policy(cfg, p, reps);
  experiment::SweepResult swept = bench::run_sweep(sweep);

  std::vector<std::pair<std::string, experiment::ReplicatedResult>> results;
  results.emplace_back("Ideal", std::move(swept.points[0]));
  for (std::size_t i = 0; i < policies.size(); ++i) {
    results.emplace_back(policies[i], std::move(swept.points[i + 1]));
  }

  // CDF series at the utilization grid the paper plots.
  experiment::TableReport curve({"maxUtil", "Ideal", "DRR2-TTL/S_K", "DRR-TTL/S_K",
                                 "DRR2-TTL/S_2", "DRR-TTL/S_2", "DRR2-TTL/S_1", "DRR-TTL/S_1",
                                 "RR"});
  for (int u = 50; u <= 100; u += 5) {
    std::vector<std::string> row{experiment::TableReport::fmt(u / 100.0, 2)};
    for (const auto& [name, rep] : results) {
      row.push_back(experiment::TableReport::fmt(rep.prob_below(u / 100.0).mean));
    }
    curve.add_row(std::move(row));
  }
  adattl::bench::emit(curve, "Figure 1: cumulative frequency of Max Utilization (heterogeneity 20%)");

  experiment::TableReport summary({"policy", "P(maxU<0.9)", "+/-95%CI", "P(maxU<0.98)",
                                   "avg util", "addr req/s"});
  for (const auto& [name, rep] : results) {
    const auto p90 = rep.prob_below(0.90);
    summary.add_row({name, experiment::TableReport::fmt(p90.mean),
                     experiment::TableReport::fmt(p90.halfwidth),
                     experiment::TableReport::fmt(rep.prob_below(0.98).mean),
                     experiment::TableReport::fmt(rep.aggregate_utilization().mean),
                     experiment::TableReport::fmt(rep.address_request_rate().mean, 4)});
  }
  adattl::bench::emit(summary, "Figure 1 summary");
  return 0;
}
