// Micro-benchmarks of the random-variate layer: each simulated page draws
// one uniform (hits), one Erlang (service) and one exponential (think).
#include <benchmark/benchmark.h>

#include "sim/random.h"

namespace {

using adattl::sim::RngStream;
using adattl::sim::ZipfDistribution;

void BM_NextU64(benchmark::State& state) {
  RngStream rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
}
BENCHMARK(BM_NextU64);

void BM_Exponential(benchmark::State& state) {
  RngStream rng(2);
  for (auto _ : state) benchmark::DoNotOptimize(rng.exponential(15.0));
}
BENCHMARK(BM_Exponential);

void BM_Erlang10(benchmark::State& state) {
  RngStream rng(3);
  for (auto _ : state) benchmark::DoNotOptimize(rng.erlang(10, 0.14));
}
BENCHMARK(BM_Erlang10);

void BM_UniformInt(benchmark::State& state) {
  RngStream rng(4);
  for (auto _ : state) benchmark::DoNotOptimize(rng.uniform_int(5, 15));
}
BENCHMARK(BM_UniformInt);

void BM_ZipfSample(benchmark::State& state) {
  const ZipfDistribution zipf(static_cast<int>(state.range(0)), 1.0);
  RngStream rng(5);
  for (auto _ : state) benchmark::DoNotOptimize(zipf.sample(rng));
}
BENCHMARK(BM_ZipfSample)->Arg(20)->Arg(100)->Arg(1000);

void BM_Split(benchmark::State& state) {
  RngStream rng(6);
  for (auto _ : state) {
    RngStream child = rng.split();
    benchmark::DoNotOptimize(child);
  }
}
BENCHMARK(BM_Split);

}  // namespace
