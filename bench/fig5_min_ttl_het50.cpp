// Figure 5: as Figure 4 but at 50% system heterogeneity.
//
// Paper shape: DRR2-TTL/S_K stays best only while the threshold is below
// ~100 s; beyond it the probabilistic K-class schemes (whose TTL spread
// does not depend on server capacity) take over.
#include "fig_min_ttl_common.h"

int main() { return adattl::bench::run_min_ttl_figure("Figure 5", 50); }
