// Fault-layer overhead: the injector is wired into every Site, so a
// fault-free run must cost what it did before the subsystem existed (an
// empty schedule adds zero events and no per-page bookkeeping), and a
// chaos schedule's extra cost must stay bounded by its handful of timed
// events plus the client retries they trigger. BM_FullSiteFault/fault_free
// mirrors micro_simulation's BM_FullSite/RR exactly (same cluster, policy,
// horizon, seeds) so the two can be ratioed across binaries.
#include <benchmark/benchmark.h>

#include "experiment/site.h"

namespace {

using namespace adattl;

void BM_FullSiteFault(benchmark::State& state, bool chaos) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    experiment::SimulationConfig cfg;
    cfg.cluster = web::table2_cluster(35);
    cfg.policy = "RR";
    cfg.warmup_sec = 60.0;
    cfg.duration_sec = 540.0;  // 10 simulated minutes per iteration
    cfg.seed = 1000 + static_cast<std::uint64_t>(state.iterations());
    if (chaos) {
      cfg.faults.crashes.push_back({150.0, 120.0, 2});
      cfg.faults.degradations.push_back({200.0, 150.0, 1, 0.5});
      cfg.faults.dns_outages.push_back({180.0, 60.0});
    }
    experiment::Site site(cfg);
    const experiment::RunResult r = site.run();
    events += r.events_dispatched;
    benchmark::DoNotOptimize(r.prob_below_098);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK_CAPTURE(BM_FullSiteFault, fault_free, false)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FullSiteFault, chaos, true)->Unit(benchmark::kMillisecond);

}  // namespace
