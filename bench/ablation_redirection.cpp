// Ablation (extension): server-side request redirection — the
// "second-level dispatching" mechanism of the authors' follow-up work.
//
// The DNS controls <1% of requests and cannot see queues; a server that
// *is* overloaded can simply pass arriving requests to the least-loaded
// peer (one hop, never twice). Question: how much of the adaptive-TTL gap
// does this second level close, and what does it cost in redirect traffic?
//
// Expected: redirection slashes *response times* for the bad first-level
// policies (it caps the hot queues) at the price of redirecting a sizable
// request fraction — but it does NOT fix their max-utilization figure: the
// workload is closed-loop, so rescuing the clients RR trapped behind a hot
// queue lets them generate more load and every server runs hotter. Under
// DRR2-TTL/S_K there is almost nothing left to redirect, and the small
// second level is a pure win — good first-level scheduling composes with,
// rather than competes against, the second level.
#include "bench_common.h"

using namespace adattl;

int main() {
  const int reps = experiment::default_replications();
  bench::print_run_banner("Ablation: server-side redirection",
                          "heterogeneity 50%, redirect when queue wait > 2 s");

  experiment::TableReport table({"policy", "P(maxU<0.98)", "P(maxU<0.98) redir",
                                 "mean resp (s)", "mean resp (s) redir", "redirected %"});

  const std::vector<std::string> policies = {"RR", "RR2", "PRR-TTL/1", "PRR2-TTL/K",
                                             "DRR2-TTL/S_K"};
  experiment::Sweep sweep;
  for (const auto& policy : policies) {
    experiment::SimulationConfig cfg = bench::paper_config(50);
    sweep.add_policy(cfg, policy, reps, policy + " (plain)");
    cfg.redirect_enabled = true;
    sweep.add_policy(cfg, policy, reps, policy + " (redirect)");
  }
  const experiment::SweepResult swept = bench::run_sweep(sweep);

  std::size_t idx = 0;
  for (const auto& policy : policies) {
    const experiment::ReplicatedResult& plain = swept.points[idx++];
    const experiment::ReplicatedResult& redir = swept.points[idx++];
    table.add_row(
        {policy, experiment::TableReport::fmt(plain.prob_below(0.98).mean),
         experiment::TableReport::fmt(redir.prob_below(0.98).mean),
         experiment::TableReport::fmt(
             plain.ci([](const auto& r) { return r.mean_page_response_sec; }).mean, 3),
         experiment::TableReport::fmt(
             redir.ci([](const auto& r) { return r.mean_page_response_sec; }).mean, 3),
         experiment::TableReport::fmt(
             100.0 * redir.ci([](const auto& r) { return r.redirected_fraction; }).mean, 2)});
  }
  bench::emit(table, "second-level redirection: load balance vs client response time");
  return 0;
}
