// Estimator-quality ablation: EWMA vs sliding-window vs Holt-Winters vs
// AR(p) under (a) a scripted 8x flash crowd and (b) a diurnal trace, both
// produced by the workload trace generators and replayed as noise-free
// collection windows straight into the estimators. Emits one JSON document
// on stdout; tools/run_benches.sh captures it as BENCH_estimator.json.
//
// Two headline numbers per estimator:
//   * flash crowd — peak share error after the spike, and collection
//     windows until the installed share is back within 2% (absolute) of
//     the true post-spike share;
//   * diurnal     — mean/max absolute share error across a full cycle.
//
// The JSON "summary" asserts the claim the predictive estimators exist
// for: Holt-Winters and AR reconverge strictly faster than EWMA at the
// default smoothing.
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/load_estimator.h"
#include "workload/trace.h"

namespace {

using adattl::core::ArLoadEstimator;
using adattl::core::DomainModel;
using adattl::core::EwmaLoadEstimator;
using adattl::core::HoltWintersLoadEstimator;
using adattl::core::LoadEstimator;
using adattl::core::SlidingWindowLoadEstimator;
using adattl::workload::TraceEvent;

constexpr int kDomains = 8;
constexpr double kWindowSec = 32.0;  // monitor interval 8 s x collect every 4
constexpr double kSmoothing = 0.3;   // library defaults, matching config.h
constexpr double kTrend = 0.2;
constexpr int kArOrder = 3;
constexpr int kWindowCount = 8;
constexpr double kShareTolerance = 0.02;

// Heterogeneous base demand (hits/sec) the multipliers scale.
const std::vector<double> kBaseRates = {12.0, 9.0, 7.0, 5.5, 4.5, 3.5, 2.5, 1.5};

const char* const kKinds[] = {"ewma", "window", "holt", "ar"};

std::unique_ptr<LoadEstimator> make_estimator(const std::string& kind, DomainModel& model) {
  if (kind == "ewma") return std::make_unique<EwmaLoadEstimator>(model, kSmoothing);
  if (kind == "window") return std::make_unique<SlidingWindowLoadEstimator>(model, kWindowCount);
  if (kind == "holt")
    return std::make_unique<HoltWintersLoadEstimator>(model, kSmoothing, kTrend);
  return std::make_unique<ArLoadEstimator>(model, kArOrder);
}

// Per-window rate multipliers from a trace: window w covers
// [w*kWindowSec, (w+1)*kWindowSec) and sees every event at or before its
// start (events are emitted in time order by the generators).
std::vector<std::vector<double>> window_multipliers(const std::vector<TraceEvent>& events,
                                                    int windows) {
  std::vector<std::vector<double>> out;
  std::vector<double> current(kDomains, 1.0);
  std::size_t next = 0;
  for (int w = 0; w < windows; ++w) {
    const double t = w * kWindowSec;
    while (next < events.size() && events[next].at_sec <= t) {
      current[static_cast<std::size_t>(events[next].domain)] = events[next].rate_multiplier;
      ++next;
    }
    out.push_back(current);
  }
  return out;
}

std::vector<std::uint64_t> window_hits(const std::vector<double>& multipliers) {
  std::vector<std::uint64_t> hits(kDomains);
  for (int d = 0; d < kDomains; ++d) {
    hits[static_cast<std::size_t>(d)] = static_cast<std::uint64_t>(
        kBaseRates[static_cast<std::size_t>(d)] *
        multipliers[static_cast<std::size_t>(d)] * kWindowSec);
  }
  return hits;
}

double true_share(const std::vector<double>& multipliers, int domain) {
  double total = 0.0;
  for (int d = 0; d < kDomains; ++d) {
    total += kBaseRates[static_cast<std::size_t>(d)] *
             multipliers[static_cast<std::size_t>(d)];
  }
  return kBaseRates[static_cast<std::size_t>(domain)] *
         multipliers[static_cast<std::size_t>(domain)] / total;
}

struct FlashResult {
  double peak_share_error = 0.0;
  int windows_to_reconverge = 0;  // after the spike window; 0 = never
};

FlashResult run_flash(const std::string& kind) {
  // 30 stationary windows, then domain 0 turns 8x hot instantly and stays
  // hot for 60 windows (ramp/decay 0 = a step, the estimator worst case).
  adattl::workload::FlashCrowdSpec spec;
  spec.domain = 0;
  spec.start_sec = 30 * kWindowSec;
  spec.ramp_sec = 0.0;
  spec.hold_sec = 60 * kWindowSec;
  spec.decay_sec = 0.0;
  spec.peak_multiplier = 8.0;
  spec.step_sec = kWindowSec;
  const int total_windows = 90;
  const auto mults = window_multipliers(adattl::workload::generate_flash_crowd(spec),
                                        total_windows);

  DomainModel model(std::vector<double>(kDomains, 1.0), 1.0 / kDomains);
  const std::unique_ptr<LoadEstimator> est = make_estimator(kind, model);

  FlashResult r;
  const int spike_window = 30;
  for (int w = 0; w < total_windows; ++w) {
    est->observe(window_hits(mults[static_cast<std::size_t>(w)]), kWindowSec);
    if (w < spike_window) continue;
    const double err =
        std::abs(model.share(0) - true_share(mults[static_cast<std::size_t>(w)], 0));
    r.peak_share_error = std::max(r.peak_share_error, err);
    if (r.windows_to_reconverge == 0 && err <= kShareTolerance) {
      r.windows_to_reconverge = w - spike_window + 1;
    }
  }
  return r;
}

struct DiurnalResult {
  double mean_abs_share_error = 0.0;
  double max_abs_share_error = 0.0;
};

DiurnalResult run_diurnal(const std::string& kind) {
  // Two full cycles, 48 windows each, phases spread across the domains so
  // the share ranking itself rotates through the day.
  adattl::workload::DiurnalSpec spec;
  spec.duration_sec = 96 * kWindowSec;
  spec.period_sec = 48 * kWindowSec;
  spec.amplitude = 0.6;
  spec.phase_spread_sec = 24 * kWindowSec;
  spec.step_sec = kWindowSec;
  const int total_windows = 96;
  const auto mults = window_multipliers(
      adattl::workload::generate_diurnal(spec, kDomains), total_windows);

  DomainModel model(std::vector<double>(kDomains, 1.0), 1.0 / kDomains);
  const std::unique_ptr<LoadEstimator> est = make_estimator(kind, model);

  DiurnalResult r;
  int measured = 0;
  for (int w = 0; w < total_windows; ++w) {
    est->observe(window_hits(mults[static_cast<std::size_t>(w)]), kWindowSec);
    if (w < 8) continue;  // let every estimator seed/fill before scoring
    double err = 0.0;
    for (int d = 0; d < kDomains; ++d) {
      err += std::abs(model.share(d) - true_share(mults[static_cast<std::size_t>(w)], d));
    }
    err /= kDomains;
    r.mean_abs_share_error += err;
    r.max_abs_share_error = std::max(r.max_abs_share_error, err);
    ++measured;
  }
  if (measured > 0) r.mean_abs_share_error /= measured;
  return r;
}

}  // namespace

int main() {
  FlashResult flash[4];
  DiurnalResult diurnal[4];
  for (int i = 0; i < 4; ++i) {
    flash[i] = run_flash(kKinds[i]);
    diurnal[i] = run_diurnal(kKinds[i]);
  }
  const FlashResult& ewma = flash[0];
  const FlashResult& holt = flash[2];
  const FlashResult& ar = flash[3];
  const bool holt_faster = holt.windows_to_reconverge != 0 &&
                           (ewma.windows_to_reconverge == 0 ||
                            holt.windows_to_reconverge < ewma.windows_to_reconverge);
  const bool ar_faster = ar.windows_to_reconverge != 0 &&
                         (ewma.windows_to_reconverge == 0 ||
                          ar.windows_to_reconverge < ewma.windows_to_reconverge);

  std::printf("{\n");
  std::printf("  \"context\": {\"domains\": %d, \"window_sec\": %g, \"smoothing\": %g, "
              "\"trend\": %g, \"ar_order\": %d, \"window_count\": %d, "
              "\"share_tolerance\": %g},\n",
              kDomains, kWindowSec, kSmoothing, kTrend, kArOrder, kWindowCount,
              kShareTolerance);
  std::printf("  \"flash_crowd\": {\n");
  for (int i = 0; i < 4; ++i) {
    std::printf("    \"%s\": {\"peak_share_error\": %.6f, \"windows_to_reconverge\": %d}%s\n",
                kKinds[i], flash[i].peak_share_error, flash[i].windows_to_reconverge,
                i + 1 < 4 ? "," : "");
  }
  std::printf("  },\n");
  std::printf("  \"diurnal\": {\n");
  for (int i = 0; i < 4; ++i) {
    std::printf("    \"%s\": {\"mean_abs_share_error\": %.6f, \"max_abs_share_error\": %.6f}%s\n",
                kKinds[i], diurnal[i].mean_abs_share_error, diurnal[i].max_abs_share_error,
                i + 1 < 4 ? "," : "");
  }
  std::printf("  },\n");
  std::printf("  \"summary\": {\"holt_reconverges_faster_than_ewma\": %s, "
              "\"ar_reconverges_faster_than_ewma\": %s}\n",
              holt_faster ? "true" : "false", ar_faster ? "true" : "false");
  std::printf("}\n");
  return (holt_faster && ar_faster) ? 0 : 1;
}
