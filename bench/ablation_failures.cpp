// Ablation (extension beyond the paper): silent server outages and the
// limits of utilization-only alarm feedback.
//
// A stalled server reports *low* utilization — its queue grows but its CPU
// is idle — so the paper's feedback mechanism keeps routing mappings to
// it. Extending the alarm with a queue-depth threshold restores exclusion.
// Reported: P(maxUtil < 0.98) over the *healthy* servers' perspective is
// misleading under outages, so this bench reports response-time
// percentiles, which capture the trapped requests.
#include "bench_common.h"

using namespace adattl;

int main() {
  const int reps = experiment::default_replications();
  bench::print_run_banner("Ablation: server outages",
                          "heterogeneity 35%, 10-minute silent stall of server 2");

  experiment::TableReport table({"configuration", "mean resp (s)", "p95 resp (s)",
                                 "p99 resp (s)", "P(maxU<0.98)"});

  struct Variant {
    const char* label;
    bool outage;
    std::size_t queue_threshold;
  };
  const Variant variants[] = {
      {"healthy site", false, 0},
      {"outage, utilization-only alarms (paper)", true, 0},
      {"outage, + queue-depth alarms (extension)", true, 30},
  };

  experiment::Sweep sweep;
  for (const Variant& v : variants) {
    experiment::SimulationConfig cfg = bench::paper_config(35);
    cfg.policy = "DRR2-TTL/S_K";
    cfg.alarm_queue_threshold = v.queue_threshold;
    if (v.outage) {
      // Stall server 2 for 10 minutes, one third into the measured period.
      cfg.outages.push_back({cfg.warmup_sec + cfg.duration_sec / 3.0, 600.0, 2});
    }
    sweep.add(cfg, reps, v.label);
  }
  const experiment::SweepResult swept = bench::run_sweep(sweep);

  std::size_t idx = 0;
  for (const Variant& v : variants) {
    const experiment::ReplicatedResult& rep = swept.points[idx++];
    table.add_row(
        {v.label,
         experiment::TableReport::fmt(
             rep.ci([](const auto& r) { return r.mean_page_response_sec; }).mean, 3),
         experiment::TableReport::fmt(
             rep.ci([](const auto& r) { return r.response_p95_sec; }).mean, 2),
         experiment::TableReport::fmt(
             rep.ci([](const auto& r) { return r.response_p99_sec; }).mean, 2),
         experiment::TableReport::fmt(rep.prob_below(0.98).mean)});
  }
  bench::emit(table, "DRR2-TTL/S_K under a silent 10-minute outage of server 2");
  return 0;
}
