// Ablation: scaling the site along the paper's stated parameter ranges —
// K = 10..100 connected domains and N = 5..17 servers (Table 1) — while
// holding offered load at 2/3 of capacity.
//
// Expected: more domains = finer-grained DNS control (each mapping pins a
// smaller load slice), so every policy improves with K while the ordering
// persists; more servers at fixed total capacity = smaller per-server
// capacity relative to the hottest domain, stressing the schedulers.
#include "bench_common.h"

using namespace adattl;

namespace {

// Synthetic heterogeneous capacity vector for any N: top quarter at 1.0,
// middle half at 0.8, bottom quarter at 0.5 (50%-level spread, Table 2
// style).
web::ClusterSpec synthetic_cluster(int n) {
  web::ClusterSpec spec;
  for (int i = 0; i < n; ++i) {
    const double frac = static_cast<double>(i) / n;
    spec.relative.push_back(frac < 0.25 ? 1.0 : frac < 0.75 ? 0.8 : 0.5);
  }
  return spec;
}

}  // namespace

int main() {
  const int reps = experiment::default_replications();
  bench::print_run_banner("Ablation: site scale", "domains K = 10..100, servers N = 5..17");

  const std::vector<int> domain_counts = {10, 20, 50, 100};
  const std::vector<std::string> domain_policies = {"RR", "PRR2-TTL/2", "PRR2-TTL/K",
                                                    "DRR2-TTL/S_K"};
  const std::vector<int> server_counts = {5, 7, 11, 17};
  const std::vector<std::string> server_policies = {"RR", "PRR2-TTL/K", "DRR2-TTL/S_K"};
  const std::vector<int> ns_fanouts = {1, 2, 4, 8};
  const std::vector<std::string> fanout_policies = {"RR", "PRR2-TTL/K", "DRR2-TTL/S_K"};

  experiment::Sweep sweep;
  for (int k : domain_counts) {
    experiment::SimulationConfig cfg = bench::paper_config(35);
    cfg.num_domains = k;
    for (const auto& p : domain_policies) {
      sweep.add_policy(cfg, p, reps, p + " @ K=" + std::to_string(k));
    }
  }
  for (int n : server_counts) {
    experiment::SimulationConfig cfg = bench::paper_config(35);
    cfg.cluster = synthetic_cluster(n);  // total capacity stays 500 hits/s
    for (const auto& p : server_policies) {
      sweep.add_policy(cfg, p, reps, p + " @ N=" + std::to_string(n));
    }
  }
  for (int m : ns_fanouts) {
    experiment::SimulationConfig cfg = bench::paper_config(35);
    cfg.ns_per_domain = m;
    for (const auto& p : fanout_policies) {
      sweep.add_policy(cfg, p, reps, p + " @ NS/domain=" + std::to_string(m));
    }
  }
  const experiment::SweepResult swept = bench::run_sweep(sweep);
  std::size_t idx = 0;

  experiment::TableReport domains({"K domains", "RR", "PRR2-TTL/2", "PRR2-TTL/K",
                                   "DRR2-TTL/S_K"});
  for (int k : domain_counts) {
    std::vector<std::string> row{std::to_string(k)};
    for (std::size_t i = 0; i < domain_policies.size(); ++i) {
      row.push_back(experiment::TableReport::fmt(swept.points[idx++].prob_below(0.98).mean));
    }
    domains.add_row(std::move(row));
  }
  adattl::bench::emit(domains, "P(maxUtil < 0.98) vs number of connected domains");

  experiment::TableReport servers({"N servers", "RR", "PRR2-TTL/K", "DRR2-TTL/S_K"});
  for (int n : server_counts) {
    std::vector<std::string> row{std::to_string(n)};
    for (std::size_t i = 0; i < server_policies.size(); ++i) {
      row.push_back(experiment::TableReport::fmt(swept.points[idx++].prob_below(0.98).mean));
    }
    servers.add_row(std::move(row));
  }
  adattl::bench::emit(servers, "P(maxUtil < 0.98) vs number of servers (50%-style spread)");

  // More NS caches per domain = finer DNS control over the same client
  // population (each cache pins a smaller slice per TTL window).
  experiment::TableReport fanout(
      {"NS per domain", "RR", "PRR2-TTL/K", "DRR2-TTL/S_K", "DNS ctrl % (RR)"});
  for (int m : ns_fanouts) {
    std::vector<std::string> row{std::to_string(m)};
    double ctrl = 0.0;
    for (const auto& p : fanout_policies) {
      const experiment::ReplicatedResult& rep = swept.points[idx++];
      row.push_back(experiment::TableReport::fmt(rep.prob_below(0.98).mean));
      if (p == "RR") {
        ctrl = rep.ci([](const auto& r) { return r.dns_controlled_fraction; }).mean;
      }
    }
    row.push_back(experiment::TableReport::fmt(100.0 * ctrl, 2));
    fanout.add_row(std::move(row));
  }
  adattl::bench::emit(fanout, "P(maxUtil < 0.98) vs name servers per domain");
  return 0;
}
