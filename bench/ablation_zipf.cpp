// Ablation: robustness to the client-skew assumption.
//
// The paper assumes a pure Zipf (theta = 1) client distribution, citing
// measurements that ~75% of requests come from ~10% of domains. This bench
// sweeps the Zipf exponent from uniform (theta = 0) to hyper-skewed
// (theta = 1.4). Expected: at theta = 0 all policies converge (nothing to
// adapt to, capacity-aware routing suffices); as skew grows, constant-TTL
// policies fall off a cliff while TTL/K tracks the Ideal envelope.
#include "bench_common.h"

using namespace adattl;

int main() {
  const int reps = experiment::default_replications();
  bench::print_run_banner("Ablation: Zipf exponent", "heterogeneity 35%");

  const std::vector<double> thetas = {0.0, 0.5, 0.8, 1.0, 1.2, 1.4};
  const std::vector<std::string> policies = {"RR", "PRR-TTL/1", "PRR2-TTL/K", "DRR2-TTL/S_K"};

  experiment::Sweep sweep;
  for (double theta : thetas) {
    experiment::SimulationConfig cfg = bench::paper_config(35);
    cfg.zipf_theta = theta;
    for (const auto& p : policies) {
      sweep.add_policy(cfg, p, reps,
                       p + " @ theta " + experiment::TableReport::fmt(theta, 1));
    }
  }
  const experiment::SweepResult swept = bench::run_sweep(sweep);

  experiment::TableReport table(
      {"theta", "top-domain share", "RR", "PRR-TTL/1", "PRR2-TTL/K", "DRR2-TTL/S_K"});
  std::size_t idx = 0;
  for (double theta : thetas) {
    const sim::ZipfDistribution z(bench::paper_config(35).num_domains, theta);
    std::vector<std::string> row{experiment::TableReport::fmt(theta, 1),
                                 experiment::TableReport::fmt(z.pmf(1), 3)};
    for (std::size_t i = 0; i < policies.size(); ++i) {
      row.push_back(experiment::TableReport::fmt(swept.points[idx++].prob_below(0.98).mean));
    }
    table.add_row(std::move(row));
  }
  adattl::bench::emit(table, "P(maxUtil < 0.98) vs client-distribution skew");
  return 0;
}
