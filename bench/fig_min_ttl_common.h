#pragma once

// Shared driver for Figures 4 and 5: sensitivity to non-cooperative name
// servers that refuse TTL values below their own minimum threshold.

#include "bench_common.h"

namespace adattl::bench {

inline int run_min_ttl_figure(const char* figure, int heterogeneity_percent) {
  const int reps = experiment::default_replications();
  print_run_banner(figure,
                   "sensitivity to minimum accepted TTL, heterogeneity " +
                       std::to_string(heterogeneity_percent) + "%");

  const std::vector<std::string> policies = {
      "DRR2-TTL/S_K", "DRR-TTL/S_K", "PRR2-TTL/K", "PRR-TTL/K", "PRR2-TTL/2",
  };

  std::vector<std::string> headers = {"minTTL(s)"};
  for (const auto& p : policies) headers.push_back(p);
  experiment::TableReport table(headers);

  const std::vector<double> min_ttls = {0.0, 30.0, 60.0, 90.0, 120.0, 180.0, 240.0, 300.0};
  experiment::Sweep sweep;
  for (double min_ttl : min_ttls) {
    experiment::SimulationConfig cfg = paper_config(heterogeneity_percent);
    cfg.ns_min_ttl_sec = min_ttl;
    for (const auto& p : policies) {
      sweep.add_policy(cfg, p, reps,
                       p + " @ minTTL " + experiment::TableReport::fmt(min_ttl, 0) + "s");
    }
  }
  const experiment::SweepResult swept = run_sweep(sweep);

  std::size_t idx = 0;
  for (double min_ttl : min_ttls) {
    std::vector<std::string> row{experiment::TableReport::fmt(min_ttl, 0)};
    for (std::size_t i = 0; i < policies.size(); ++i) {
      row.push_back(experiment::TableReport::fmt(swept.points[idx++].prob_below(0.98).mean));
    }
    table.add_row(std::move(row));
  }
  adattl::bench::emit(table, std::string(figure) +
              ": Prob(maxUtilization < 0.98) vs minimum accepted TTL (heterogeneity " +
              std::to_string(heterogeneity_percent) + "%)");
  return 0;
}

}  // namespace adattl::bench
