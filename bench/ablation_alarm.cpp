// Ablation: how much of the adaptive-TTL win comes from the asynchronous
// alarm feedback (paper §2) versus the TTL shaping itself?
//
// Runs the best and worst schedulers with the alarm mechanism disabled and
// across alarm thresholds. Expected: the alarm helps every policy a little
// (it reroutes around transient overload) but cannot rescue RR, while
// DRR2-TTL/S_K keeps most of its advantage even without it — the TTL
// shaping, not the feedback, carries the result.
#include "bench_common.h"

using namespace adattl;

int main() {
  const int reps = experiment::default_replications();
  bench::print_run_banner("Ablation: alarm feedback", "heterogeneity 35%");

  const std::vector<std::string> policies = {"RR", "PRR2-TTL/2", "DRR2-TTL/S_K"};
  const std::vector<double> thresholds = {0.7, 0.8, 0.9, 0.95, 1.0};
  const std::vector<std::string> sweep_policies = {"RR", "DRR2-TTL/S_K"};

  experiment::Sweep sweep;
  for (const auto& p : policies) {
    experiment::SimulationConfig cfg = bench::paper_config(35);
    sweep.add_policy(cfg, p, reps, p + " (alarm on)");
    cfg.alarm_enabled = false;
    sweep.add_policy(cfg, p, reps, p + " (alarm off)");
  }
  for (double theta : thresholds) {
    experiment::SimulationConfig cfg = bench::paper_config(35);
    cfg.alarm_threshold = theta;
    for (const auto& p : sweep_policies) {
      sweep.add_policy(cfg, p, reps,
                       p + " @ theta " + experiment::TableReport::fmt(theta, 2));
    }
  }
  const experiment::SweepResult swept = bench::run_sweep(sweep);
  std::size_t idx = 0;

  experiment::TableReport onoff({"policy", "alarm on", "alarm off", "delta"});
  for (const auto& p : policies) {
    const double with_alarm = swept.points[idx++].prob_below(0.98).mean;
    const double without = swept.points[idx++].prob_below(0.98).mean;
    onoff.add_row({p, experiment::TableReport::fmt(with_alarm),
                   experiment::TableReport::fmt(without),
                   experiment::TableReport::fmt(with_alarm - without)});
  }
  adattl::bench::emit(onoff, "P(maxUtil < 0.98) with and without alarm feedback");

  experiment::TableReport thresholds_table({"alarm threshold", "RR", "DRR2-TTL/S_K"});
  for (double theta : thresholds) {
    std::vector<std::string> row{experiment::TableReport::fmt(theta, 2)};
    for (std::size_t i = 0; i < sweep_policies.size(); ++i) {
      row.push_back(experiment::TableReport::fmt(swept.points[idx++].prob_below(0.98).mean));
    }
    thresholds_table.add_row(std::move(row));
  }
  adattl::bench::emit(thresholds_table,
                      "P(maxUtil < 0.98) vs alarm threshold (1.0 = alarms never fire)");
  return 0;
}
