// Ablation: how much of the adaptive-TTL win comes from the asynchronous
// alarm feedback (paper §2) versus the TTL shaping itself?
//
// Runs the best and worst schedulers with the alarm mechanism disabled and
// across alarm thresholds. Expected: the alarm helps every policy a little
// (it reroutes around transient overload) but cannot rescue RR, while
// DRR2-TTL/S_K keeps most of its advantage even without it — the TTL
// shaping, not the feedback, carries the result.
#include "bench_common.h"

using namespace adattl;

int main() {
  const int reps = experiment::default_replications();
  bench::print_run_banner("Ablation: alarm feedback", "heterogeneity 35%");

  const std::vector<std::string> policies = {"RR", "PRR2-TTL/2", "DRR2-TTL/S_K"};

  experiment::TableReport onoff({"policy", "alarm on", "alarm off", "delta"});
  for (const auto& p : policies) {
    experiment::SimulationConfig cfg = bench::paper_config(35);
    const double with_alarm = experiment::run_policy(cfg, p, reps).prob_below(0.98).mean;
    cfg.alarm_enabled = false;
    const double without = experiment::run_policy(cfg, p, reps).prob_below(0.98).mean;
    onoff.add_row({p, experiment::TableReport::fmt(with_alarm),
                   experiment::TableReport::fmt(without),
                   experiment::TableReport::fmt(with_alarm - without)});
  }
  adattl::bench::emit(onoff, "P(maxUtil < 0.98) with and without alarm feedback");

  experiment::TableReport sweep({"alarm threshold", "RR", "DRR2-TTL/S_K"});
  for (double theta : {0.7, 0.8, 0.9, 0.95, 1.0}) {
    experiment::SimulationConfig cfg = bench::paper_config(35);
    cfg.alarm_threshold = theta;
    std::vector<std::string> row{experiment::TableReport::fmt(theta, 2)};
    for (const char* p : {"RR", "DRR2-TTL/S_K"}) {
      row.push_back(experiment::TableReport::fmt(
          experiment::run_policy(cfg, p, reps).prob_below(0.98).mean));
    }
    sweep.add_row(std::move(row));
  }
  adattl::bench::emit(sweep, "P(maxUtil < 0.98) vs alarm threshold (1.0 = alarms never fire)");
  return 0;
}
