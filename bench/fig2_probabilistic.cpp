// Figure 2: cumulative frequency of the maximum server utilization for the
// probabilistic adaptive-TTL algorithms at 35% system heterogeneity.
//
// Paper shape: same ordering as Figure 1 — PRR2-TTL/K ~ PRR-TTL/K near the
// Ideal envelope; TTL/2 in-between; PRR-TTL/1 (probabilistic routing with a
// constant TTL) clearly better than RR but far from the adaptive schemes,
// demonstrating that probabilistic routing alone cannot absorb client skew.
#include "bench_common.h"

using namespace adattl;

int main() {
  const int reps = experiment::default_replications();
  experiment::SimulationConfig cfg = bench::paper_config(35);
  bench::print_run_banner("Figure 2", "probabilistic algorithms, heterogeneity 35%");

  const std::vector<std::string> policies = {
      "PRR2-TTL/K", "PRR-TTL/K", "PRR2-TTL/2", "PRR-TTL/2", "PRR2-TTL/1", "PRR-TTL/1", "RR",
  };

  experiment::Sweep sweep;
  sweep.add(bench::ideal_config(cfg), reps, "Ideal");
  for (const auto& p : policies) sweep.add_policy(cfg, p, reps);
  experiment::SweepResult swept = bench::run_sweep(sweep);

  std::vector<std::pair<std::string, experiment::ReplicatedResult>> results;
  results.emplace_back("Ideal", std::move(swept.points[0]));
  for (std::size_t i = 0; i < policies.size(); ++i) {
    results.emplace_back(policies[i], std::move(swept.points[i + 1]));
  }

  experiment::TableReport curve({"maxUtil", "Ideal", "PRR2-TTL/K", "PRR-TTL/K", "PRR2-TTL/2",
                                 "PRR-TTL/2", "PRR2-TTL/1", "PRR-TTL/1", "RR"});
  for (int u = 50; u <= 100; u += 5) {
    std::vector<std::string> row{experiment::TableReport::fmt(u / 100.0, 2)};
    for (const auto& [name, rep] : results) {
      row.push_back(experiment::TableReport::fmt(rep.prob_below(u / 100.0).mean));
    }
    curve.add_row(std::move(row));
  }
  adattl::bench::emit(curve, "Figure 2: cumulative frequency of Max Utilization (heterogeneity 35%)");

  experiment::TableReport summary({"policy", "P(maxU<0.9)", "+/-95%CI", "P(maxU<0.98)",
                                   "avg util", "addr req/s"});
  for (const auto& [name, rep] : results) {
    const auto p90 = rep.prob_below(0.90);
    summary.add_row({name, experiment::TableReport::fmt(p90.mean),
                     experiment::TableReport::fmt(p90.halfwidth),
                     experiment::TableReport::fmt(rep.prob_below(0.98).mean),
                     experiment::TableReport::fmt(rep.aggregate_utilization().mean),
                     experiment::TableReport::fmt(rep.address_request_rate().mean, 4)});
  }
  adattl::bench::emit(summary, "Figure 2 summary");
  return 0;
}
