#pragma once

// Shared setup for the figure-reproduction benches: the paper's default
// scenario (Table 1) with duration/replications overridable through the
// ADATTL_DURATION_SEC / ADATTL_REPLICATIONS environment variables.

#include <cstdio>
#include <string>
#include <vector>

#include "experiment/report.h"
#include "experiment/runner.h"

namespace adattl::bench {

inline experiment::SimulationConfig paper_config(int heterogeneity_percent) {
  experiment::SimulationConfig cfg;
  cfg.cluster = web::table2_cluster(heterogeneity_percent);
  cfg.duration_sec = experiment::default_duration_sec();
  cfg.seed = 20260705;
  return cfg;
}

/// True when ADATTL_CSV=1: benches emit machine-readable CSV for plotting
/// pipelines instead of aligned tables.
inline bool csv_mode() {
  const char* v = std::getenv("ADATTL_CSV");
  return v && v[0] == '1';
}

inline void print_run_banner(const char* figure, const std::string& detail) {
  if (csv_mode()) return;
  std::printf("%s — %s\n", figure, detail.c_str());
  std::printf("(replications = %d, measured period = %.0f s per run; override via\n"
              " ADATTL_REPLICATIONS / ADATTL_DURATION_SEC; ADATTL_CSV=1 for CSV)\n",
              experiment::default_replications(), experiment::default_duration_sec());
}

/// Prints a table honoring the CSV mode switch.
inline void emit(const experiment::TableReport& table, const std::string& title) {
  if (csv_mode()) {
    table.print_csv();
  } else {
    table.print(title);
  }
}

/// Runs one policy under the "Ideal" scenario of Figures 1-2: PRR with a
/// constant TTL under a *uniform* client distribution.
inline experiment::ReplicatedResult run_ideal(experiment::SimulationConfig cfg,
                                              int replications) {
  cfg.uniform_clients = true;
  cfg.policy = "PRR-TTL/1";
  return experiment::run_replications(cfg, replications);
}

}  // namespace adattl::bench
