#pragma once

// Shared setup for the figure-reproduction benches: the paper's default
// scenario (Table 1) with duration/replications overridable through the
// ADATTL_DURATION_SEC / ADATTL_REPLICATIONS environment variables, and the
// parallel sweep driver (worker count from ADATTL_JOBS; 1 = serial, output
// bit-identical either way).

#include <cstdio>
#include <string>
#include <vector>

#include "experiment/parallel_executor.h"
#include "experiment/report.h"
#include "experiment/runner.h"

namespace adattl::bench {

inline experiment::SimulationConfig paper_config(int heterogeneity_percent) {
  experiment::SimulationConfig cfg;
  cfg.cluster = web::table2_cluster(heterogeneity_percent);
  cfg.duration_sec = experiment::default_duration_sec();
  cfg.seed = 20260705;
  return cfg;
}

/// True when ADATTL_CSV=1: benches emit machine-readable CSV for plotting
/// pipelines instead of aligned tables.
inline bool csv_mode() {
  const char* v = std::getenv("ADATTL_CSV");
  return v && v[0] == '1';
}

inline void print_run_banner(const char* figure, const std::string& detail) {
  if (csv_mode()) return;
  std::printf("%s — %s\n", figure, detail.c_str());
  std::printf("(replications = %d, measured period = %.0f s per run, %d jobs; override\n"
              " via ADATTL_REPLICATIONS / ADATTL_DURATION_SEC / ADATTL_JOBS;\n"
              " ADATTL_CSV=1 for CSV)\n",
              experiment::default_replications(), experiment::default_duration_sec(),
              experiment::default_jobs());
}

/// Prints a table honoring the CSV mode switch.
inline void emit(const experiment::TableReport& table, const std::string& title) {
  if (csv_mode()) {
    table.print_csv();
  } else {
    table.print(title);
  }
}

/// The "Ideal" envelope of Figures 1-2: PRR with a constant TTL under a
/// *uniform* client distribution.
inline experiment::SimulationConfig ideal_config(experiment::SimulationConfig cfg) {
  cfg.uniform_clients = true;
  cfg.policy = "PRR-TTL/1";
  return cfg;
}

/// Drives a whole sweep through the parallel executor, printing one
/// progress line per completed point and a final per-point timing summary
/// on stderr (suppressed in CSV mode). Results come back in add() order,
/// bit-identical to the serial path.
inline experiment::SweepResult run_sweep(const experiment::Sweep& sweep) {
  const bool quiet = csv_mode();
  experiment::ParallelExecutor executor;
  experiment::SweepResult res =
      sweep.run(executor, [quiet](const experiment::SweepPointDone& p) {
        if (quiet) return;
        std::fprintf(stderr, "  [%zu/%zu] %s: %.1f s sim, %.1f s elapsed\n", p.completed,
                     p.total, p.label.empty() ? "(point)" : p.label.c_str(), p.cpu_seconds,
                     p.elapsed_seconds);
      });
  if (!quiet) {
    double cpu = 0.0;
    for (double s : res.point_cpu_seconds) cpu += s;
    std::fprintf(stderr, "sweep: %zu points in %.1f s wall (%.1f s of runs, %d jobs)\n",
                 res.points.size(), res.wall_seconds, cpu, res.jobs);
  }
  return res;
}

}  // namespace adattl::bench
