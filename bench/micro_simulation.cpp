// End-to-end simulator throughput: simulated seconds per wall-clock
// second for the paper's default scenario. Validates that full 5-hour
// paper runs are cheap (they dispatch ~1.5M events each).
#include <benchmark/benchmark.h>

#include "experiment/site.h"

namespace {

using namespace adattl;

void BM_FullSite(benchmark::State& state, const char* policy) {
  std::uint64_t events = 0;
  double simulated = 0.0;
  for (auto _ : state) {
    experiment::SimulationConfig cfg;
    cfg.cluster = web::table2_cluster(35);
    cfg.policy = policy;
    cfg.warmup_sec = 60.0;
    cfg.duration_sec = 540.0;  // 10 simulated minutes per iteration
    cfg.seed = 1000 + static_cast<std::uint64_t>(state.iterations());
    experiment::Site site(cfg);
    const experiment::RunResult r = site.run();
    events += r.events_dispatched;
    simulated += cfg.warmup_sec + cfg.duration_sec;
    benchmark::DoNotOptimize(r.prob_below_098);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["sim_sec_per_iter"] = simulated / static_cast<double>(state.iterations());
}
BENCHMARK_CAPTURE(BM_FullSite, RR, "RR")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FullSite, DRR2_TTLSK, "DRR2-TTL/S_K")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FullSite, PRR2_TTLK_measured, "PRR2-TTL/K")
    ->Unit(benchmark::kMillisecond);

void BM_SiteConstruction(benchmark::State& state) {
  // Object-graph build cost (500 clients, 7 servers, 20 name servers).
  for (auto _ : state) {
    experiment::SimulationConfig cfg;
    cfg.policy = "DRR2-TTL/S_K";
    experiment::Site site(cfg);
    benchmark::DoNotOptimize(&site);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SiteConstruction)->Unit(benchmark::kMicrosecond);

}  // namespace
