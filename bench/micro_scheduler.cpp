// Micro-benchmarks of DNS scheduling decisions: latency of one address
// request through each policy family (the paper stresses that adaptive
// TTL has "low computational complexity" — this quantifies it).
#include <benchmark/benchmark.h>

#include "core/policy_factory.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "web/cluster.h"

namespace {

using namespace adattl;

struct Fixture {
  Fixture(const std::string& policy, int k = 20)
      : rng(7), alarms(7, 0.9) {
    core::SchedulerFactoryConfig fc;
    fc.capacities = web::table2_cluster(35).absolute_capacities();
    fc.initial_weights = sim::ZipfDistribution(k, 1.0).probabilities();
    fc.class_threshold = 1.0 / k;
    bundle = core::make_scheduler(policy, fc, alarms, simulator, rng);
  }
  sim::Simulator simulator;
  sim::RngStream rng;
  core::AlarmRegistry alarms;
  core::SchedulerBundle bundle;
};

void BM_Schedule(benchmark::State& state, const char* policy) {
  Fixture f(policy);
  sim::RngStream domains(8);
  int since_drain = 0;
  for (auto _ : state) {
    const int d = static_cast<int>(domains.uniform_int(0, 19));
    benchmark::DoNotOptimize(f.bundle.scheduler->schedule(d));
    // DAL/MRL schedule a decay event per decision; retire expired ones
    // outside the timed region so the event heap stays realistic in size.
    if (++since_drain == 4096) {
      state.PauseTiming();
      f.simulator.run_until(f.simulator.now() + 600.0);
      since_drain = 0;
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_Schedule, RR, "RR");
BENCHMARK_CAPTURE(BM_Schedule, RR2, "RR2");
BENCHMARK_CAPTURE(BM_Schedule, PRR_TTL1, "PRR-TTL/1");
BENCHMARK_CAPTURE(BM_Schedule, PRR2_TTLK, "PRR2-TTL/K");
BENCHMARK_CAPTURE(BM_Schedule, DRR2_TTLSK, "DRR2-TTL/S_K");
BENCHMARK_CAPTURE(BM_Schedule, DAL, "DAL");
BENCHMARK_CAPTURE(BM_Schedule, MRL, "MRL");

void BM_WeightUpdateRecalibration(benchmark::State& state) {
  // Cost of one estimator push: model update + TTL recalibration, for the
  // most expensive policy (per-domain classes, server term).
  const int k = static_cast<int>(state.range(0));
  Fixture f("DRR2-TTL/S_K", k);
  std::vector<double> weights = sim::ZipfDistribution(k, 1.0).probabilities();
  for (auto _ : state) {
    weights[0] *= 1.0001;  // force a real update
    f.bundle.domains->update_weights(weights);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WeightUpdateRecalibration)->Arg(20)->Arg(100)->Arg(1000);

}  // namespace
