// Observability overhead: the cost of a bound metric update and a tracer
// record in isolation, and the end-to-end delta of running a full site
// with tracing/metrics enabled vs disabled. The disabled-path delta is
// the number the <3% kernel-bench regression budget watches.
#include <benchmark/benchmark.h>

#include "experiment/site.h"
#include "obs/event_tracer.h"
#include "obs/metrics.h"

namespace {

using namespace adattl;

void BM_CounterInc(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Counter c = registry.counter("bench.counter");
  for (auto _ : state) {
    c.inc();
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterInc);

void BM_CounterIncUnbound(benchmark::State& state) {
  // Unbound no-op path: what every instrumented component pays when the
  // registry is disabled.
  obs::Counter c;
  for (auto _ : state) {
    c.inc();
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterIncUnbound);

void BM_HistogramObserve(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::HistogramHandle h = registry.histogram("bench.hist", 3600.0, 144);
  double x = 0.0;
  for (auto _ : state) {
    h.observe(x);
    x += 37.0;
    if (x > 4000.0) x = 0.0;
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramObserve);

void BM_TracerRecord(benchmark::State& state) {
  obs::EventTracer tracer(1 << 16);
  double t = 0.0;
  for (auto _ : state) {
    tracer.record(t, obs::TraceKind::kDecision, 3, 2, 240.0);
    t += 0.25;
    benchmark::DoNotOptimize(tracer);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TracerRecord);

// Full-site run with observability off vs on: the end-to-end cost of the
// whole layer. "off" must track BM_FullSite in BENCH_kernel.json; the
// on/off ratio is what tools/run_benches.sh distills into BENCH_obs.json.
void BM_FullSiteObs(benchmark::State& state, bool metrics, bool trace) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    experiment::SimulationConfig cfg;
    cfg.cluster = web::table2_cluster(35);
    cfg.policy = "DRR2-TTL/S_K";
    cfg.warmup_sec = 60.0;
    cfg.duration_sec = 540.0;
    cfg.seed = 1000 + static_cast<std::uint64_t>(state.iterations());
    cfg.metrics_enabled = metrics;
    cfg.trace_enabled = trace;
    experiment::Site site(cfg);
    const experiment::RunResult r = site.run();
    events += r.events_dispatched;
    benchmark::DoNotOptimize(r.prob_below_098);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK_CAPTURE(BM_FullSiteObs, disabled, false, false)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FullSiteObs, enabled, true, true)->Unit(benchmark::kMillisecond);

}  // namespace
