// Ablation: the full homogeneous-era baseline roster (DAL and MRL from
// ICDCS'97, both in their capacity-normalized versions) against the
// adaptive-TTL schemes and the client-cache variant of the workload.
//
// Expected: DAL and MRL sit between RR and the adaptive family — state-
// aware assignment helps, but without TTL shaping the hot domains still
// pin too much load per mapping.
//
// Client-side caches are *mapping-transparent* in this model (every client
// of a domain shares the NS mapping and its expiry, so the cache changes
// which box answers the lookup, not its answer): the load-balance column
// is identical by construction, and the interesting effect is the NS
// resolution traffic the client caches absorb — reported in the last
// column.
#include "bench_common.h"

using namespace adattl;

int main() {
  const int reps = experiment::default_replications();
  bench::print_run_banner("Ablation: baselines and client caches", "heterogeneity 35%");

  const std::vector<std::string> policies = {
      "RR", "RR2", "WRR", "DAL", "MRL", "PRR-TTL/1", "PRR2-TTL/K", "DRR2-TTL/S_K",
  };

  experiment::Sweep sweep;
  for (const auto& p : policies) {
    experiment::SimulationConfig cfg = bench::paper_config(35);
    sweep.add_policy(cfg, p, reps, p + " (NS only)");
    cfg.client_cache_enabled = true;
    sweep.add_policy(cfg, p, reps, p + " (client caches)");
  }
  const experiment::SweepResult swept = bench::run_sweep(sweep);

  experiment::TableReport table({"policy", "P(maxU<0.98)", "DNS ctrl %",
                                 "NS queries absorbed by client caches %"});
  std::size_t idx = 0;
  for (const auto& p : policies) {
    const experiment::ReplicatedResult& ns_only = swept.points[idx++];
    const experiment::ReplicatedResult& with_cc = swept.points[idx++];
    const double absorbed =
        with_cc
            .ci([](const auto& r) {
              const double total = static_cast<double>(r.client_cache_hits + r.ns_cache_hits +
                                                       r.authoritative_queries);
              return total > 0 ? static_cast<double>(r.client_cache_hits) / total : 0.0;
            })
            .mean;
    table.add_row(
        {p, experiment::TableReport::fmt(ns_only.prob_below(0.98).mean),
         experiment::TableReport::fmt(
             100.0 * ns_only.ci([](const auto& r) { return r.dns_controlled_fraction; }).mean,
             2),
         experiment::TableReport::fmt(100.0 * absorbed, 1)});
  }
  adattl::bench::emit(table, "baselines, adaptive TTL, and client-cache traffic absorption");
  return 0;
}
