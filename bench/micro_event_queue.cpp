// Micro-benchmarks of the discrete-event kernel: the event queue is the
// hot path of every simulation (two heap ops per page request).
#include <benchmark/benchmark.h>

#include <functional>

#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace {

using adattl::sim::EventHandle;
using adattl::sim::EventQueue;
using adattl::sim::RngStream;
using adattl::sim::Simulator;

void BM_SchedulePop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  RngStream rng(1);
  std::vector<double> times(static_cast<std::size_t>(n));
  for (double& t : times) t = rng.uniform(0.0, 1e6);
  for (auto _ : state) {
    EventQueue q;
    for (double t : times) q.schedule(t, [] {});
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SchedulePop)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_SteadyStateChurn(benchmark::State& state) {
  // The simulation's actual access pattern: a queue holding ~#clients
  // events where each pop schedules a successor.
  const int resident = static_cast<int>(state.range(0));
  RngStream rng(2);
  EventQueue q;
  double now = 0.0;
  for (int i = 0; i < resident; ++i) q.schedule(rng.uniform(0.0, 30.0), [] {});
  for (auto _ : state) {
    auto [t, cb] = q.pop();
    now = t;
    q.schedule(now + rng.exponential(15.0), [] {});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SteadyStateChurn)->Arg(500)->Arg(5000);

void BM_CancelHeavy(benchmark::State& state) {
  // TTL-expiry style workloads cancel many events before they fire.
  RngStream rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    EventQueue q;
    std::vector<EventHandle> handles;
    handles.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
      handles.push_back(q.schedule(rng.uniform(0.0, 1e4), [] {}));
    }
    state.ResumeTiming();
    for (std::size_t i = 0; i < handles.size(); i += 2) q.cancel(handles[i]);
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
}
BENCHMARK(BM_CancelHeavy);

void BM_SimulatorDispatch(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int chain = 0;
    std::function<void()> step = [&] {
      if (++chain < 100000) sim.after(1.0, step);
    };
    sim.at(0.0, step);
    sim.run();
    benchmark::DoNotOptimize(chain);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_SimulatorDispatch);

}  // namespace
