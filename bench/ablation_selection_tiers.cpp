// Ablation (extension): how many round-robin tiers does server *selection*
// need, independent of the TTL policy's class count?
//
// The paper stops at RR2 ("maintaining two-tier scheduling ... still
// yields positive effect"). The RRn extension gives each weight class its
// own pointer. Expected: like the TTL class-count ablation, the 1 -> 2
// jump dominates; more selection tiers add little because the TTL policy
// already absorbs the per-domain differences.
#include "bench_common.h"

using namespace adattl;

int main() {
  const int reps = experiment::default_replications();
  bench::print_run_banner("Ablation: selection tiers", "heterogeneity 35%");

  experiment::TableReport table({"selection", "with TTL/K", "with TTL/1 (constant)"});
  const experiment::SimulationConfig cfg = bench::paper_config(35);

  struct Row {
    const char* label;
    std::string adaptive;
    std::string constant;
  };
  const Row rows[] = {
      {"RR (1 tier)", "PRR-TTL/K", "PRR-TTL/1"},
      {"RR2 (hot/normal)", "PRR2-TTL/K", "PRR2-TTL/1"},
      {"RR3", "RR3-TTL/K", "RR3"},
      {"RR4", "RR4-TTL/K", "RR4"},
      {"RRK (per-domain)", "RRK-TTL/K", "RRK"},
  };
  experiment::Sweep sweep;
  for (const Row& row : rows) {
    sweep.add_policy(cfg, row.adaptive, reps, std::string(row.label) + " + TTL/K");
    sweep.add_policy(cfg, row.constant, reps, std::string(row.label) + " + TTL/1");
  }
  const experiment::SweepResult swept = bench::run_sweep(sweep);

  std::size_t idx = 0;
  for (const Row& row : rows) {
    const double adaptive = swept.points[idx++].prob_below(0.98).mean;
    const double constant = swept.points[idx++].prob_below(0.98).mean;
    table.add_row({row.label, experiment::TableReport::fmt(adaptive),
                   experiment::TableReport::fmt(constant)});
  }
  bench::emit(table, "P(maxUtil < 0.98) vs selection tier count");
  return 0;
}
