// Daemon hot-path microbenchmarks (socket-free): what one shard's packet
// processing costs, what ECS key derivation adds, and — the point of the
// sharded design — that N shards running concurrently lose nothing to
// contention, because the hot path shares no mutable state at all. With
// cores >= threads the aggregate scales ~linearly; on a 1-CPU host it
// stays flat (time-slicing), and any *drop* below the 1-thread rate would
// expose hidden sharing.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "dnswire/daemon.h"
#include "dnswire/ecs.h"
#include "dnswire/message.h"

namespace {

using namespace adattl;

dnswire::DaemonConfig daemon_config() {
  dnswire::DaemonConfig cfg;
  cfg.server_ipv4 = {0x0a000001, 0x0a000002, 0x0a000003, 0x0a000004,
                     0x0a000005, 0x0a000006, 0x0a000007};
  cfg.policy = "DRR2-TTL/S_K";
  cfg.num_domains = 20;
  cfg.seed = 42;
  return cfg;
}

std::vector<std::uint8_t> site_query(bool with_ecs) {
  auto q = dnswire::encode_query(1, "www.site.org");
  if (with_ecs) {
    dnswire::ClientSubnet s{};
    s.family = dnswire::kEcsFamilyIpv4;
    s.source_prefix = 24;
    s.address_len = 3;
    s.address = {10, 20, 30};
    dnswire::append_ecs_option(&q, s);
  }
  return q;
}

/// Full per-packet userspace path: key derivation + frontend + scheduler.
void BM_ShardCoreHandle(benchmark::State& state) {
  const bool ecs = state.range(0) != 0;
  dnswire::ShardCore core(daemon_config(), 0);
  const auto q = site_query(ecs);
  std::uint32_t ip = 0x7f000001;
  std::uint16_t port = 1024;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core.handle(q.data(), q.size(), ip++, port++));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(ecs ? "ecs" : "source-hash");
}
BENCHMARK(BM_ShardCoreHandle)->Arg(0)->Arg(1);

/// Key derivation alone (the part this PR adds in front of the frontend).
void BM_DeriveDomainKey(benchmark::State& state) {
  const bool ecs = state.range(0) != 0;
  const auto q = site_query(ecs);
  std::uint32_t ip = 0x7f000001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dnswire::derive_domain_key(q.data(), q.size(), ip++, 5353, 20, true));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(ecs ? "ecs" : "source-hash");
}
BENCHMARK(BM_DeriveDomainKey)->Arg(0)->Arg(1);

/// The lock-free claim, measured: each benchmark thread owns one ShardCore
/// (exactly the daemon's layout) and hammers it concurrently. items/sec is
/// the AGGREGATE over threads; per-shard state means zero cross-thread
/// traffic, so aggregate must never fall below the single-thread rate.
void BM_ShardCoreAggregate(benchmark::State& state) {
  // One core per thread, constructed inside the thread (like shard_loop).
  dnswire::ShardCore core(daemon_config(), state.thread_index());
  const auto q = site_query(true);
  std::uint32_t ip =
      0x7f000001u + (static_cast<std::uint32_t>(state.thread_index()) << 16);
  std::uint16_t port = 1024;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core.handle(q.data(), q.size(), ip++, port++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShardCoreAggregate)->Threads(1)->Threads(2)->Threads(4)
    ->UseRealTime();

}  // namespace
