// Ablation (extension): geography — the load-vs-proximity trade the
// paper's title implies but its model omits.
//
// The site's 7 servers and 20 domains spread over 3 regions (20 ms
// intra-region RTT, 150 ms inter-region). Load-only policies (the paper's
// world) balance utilization but ship most requests across regions;
// proximity-first GEO keeps traffic local but inherits each region's
// skewed Zipf slice, overloading regional servers. The client-perceived
// page time (network + server) is where the tension lands.
#include "bench_common.h"

using namespace adattl;

int main() {
  const int reps = experiment::default_replications();
  bench::print_run_banner("Ablation: geography",
                          "3 regions, 20 ms intra / 150 ms inter RTT, heterogeneity 35%");

  experiment::TableReport table({"policy", "P(maxU<0.98)", "mean RTT (ms)",
                                 "server resp (s)", "client page time (s)"});

  const std::vector<std::string> policies = {"RR",           "WRR", "PRR2-TTL/K",
                                             "DRR2-TTL/S_K", "GEO", "GEO-TTL/K"};
  experiment::Sweep sweep;
  for (const auto& policy : policies) {
    experiment::SimulationConfig cfg = bench::paper_config(35);
    cfg.geo_regions = 3;
    cfg.geo_intra_rtt_sec = 0.020;
    cfg.geo_inter_rtt_sec = 0.150;
    sweep.add_policy(cfg, policy, reps);
  }
  const experiment::SweepResult swept = bench::run_sweep(sweep);

  std::size_t idx = 0;
  for (const auto& policy : policies) {
    const experiment::ReplicatedResult& rep = swept.points[idx++];
    const double rtt = rep.ci([](const auto& r) { return r.mean_network_rtt_sec; }).mean;
    const double server = rep.ci([](const auto& r) { return r.mean_page_response_sec; }).mean;
    table.add_row({policy, experiment::TableReport::fmt(rep.prob_below(0.98).mean),
                   experiment::TableReport::fmt(1000.0 * rtt, 1),
                   experiment::TableReport::fmt(server, 3),
                   experiment::TableReport::fmt(rtt + server, 3)});
  }
  bench::emit(table, "load balance vs proximity under a 3-region geography");
  return 0;
}
