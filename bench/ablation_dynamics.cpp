// Ablation: dynamic workload variations (the environment the paper's
// conclusion targets: "intrinsic high load skews and dynamic variations").
//
// At t = warmup + 1/3 duration, a previously cold domain becomes 10x
// hotter (a flash crowd). Compared: static oracle weights (which are now
// wrong for the rest of the run), the online EWMA estimator (which tracks
// the shift within a few collection windows), and constant TTL (which
// never had per-domain behaviour to lose).
//
// Expected: online estimation beats the stale oracle after the shift;
// TTL/K degrades gracefully even with stale weights because the flash
// domain at least keeps a *bounded* TTL.
#include "bench_common.h"

using namespace adattl;

int main() {
  const int reps = experiment::default_replications();
  bench::print_run_banner("Ablation: flash-crowd dynamics", "heterogeneity 35%");

  experiment::TableReport table(
      {"configuration", "P(maxU<0.98) static", "P(maxU<0.98) flash crowd"});

  struct Variant {
    const char* label;
    const char* policy;
    bool measured;
  };
  const Variant variants[] = {
      {"PRR2-TTL/1 (constant TTL)", "PRR2-TTL/1", false},
      {"PRR2-TTL/K, stale oracle weights", "PRR2-TTL/K", false},
      {"PRR2-TTL/K, online estimator", "PRR2-TTL/K", true},
      {"DRR2-TTL/S_K, stale oracle weights", "DRR2-TTL/S_K", false},
      {"DRR2-TTL/S_K, online estimator", "DRR2-TTL/S_K", true},
  };

  experiment::Sweep sweep;
  for (const Variant& v : variants) {
    experiment::SimulationConfig cfg = bench::paper_config(35);
    cfg.policy = v.policy;
    cfg.oracle_weights = !v.measured;
    sweep.add(cfg, reps, std::string(v.label) + " (static)");

    experiment::SimulationConfig crowd = cfg;
    // Domain 12 (cold: ~2% of load under Zipf-20) turns 10x hotter one
    // third into the measured period.
    crowd.rate_shifts.push_back(
        {crowd.warmup_sec + crowd.duration_sec / 3.0, 12, 10.0});
    sweep.add(crowd, reps, std::string(v.label) + " (flash crowd)");
  }
  const experiment::SweepResult swept = bench::run_sweep(sweep);

  std::size_t idx = 0;
  for (const Variant& v : variants) {
    const double quiet = swept.points[idx++].prob_below(0.98).mean;
    const double shifted = swept.points[idx++].prob_below(0.98).mean;
    table.add_row({v.label, experiment::TableReport::fmt(quiet),
                   experiment::TableReport::fmt(shifted)});
  }
  adattl::bench::emit(table, "flash crowd: domain 12 becomes 10x hotter mid-run");
  return 0;
}
