// Regenerates the paper's Table 1: the parameters of the system model, as
// actually wired into the default SimulationConfig (so the table can never
// drift from the code).
#include <cstdio>

#include "experiment/config.h"
#include "experiment/report.h"

using namespace adattl;

int main() {
  const experiment::SimulationConfig cfg;  // defaults == Table 1

  experiment::TableReport t({"category", "parameter", "setting (default)"});
  using R = experiment::TableReport;

  t.add_row({"Domain", "connected", "K = 10-100 (" + std::to_string(cfg.num_domains) + ")"});
  t.add_row({"Domain", "clients per domain", "pure Zipf (theta = " + R::fmt(cfg.zipf_theta, 1) + ")"});
  t.add_row({"Client", "total number", std::to_string(cfg.total_clients)});
  t.add_row({"Client", "mean think time", R::fmt(cfg.mean_think_sec, 0) + " sec"});
  t.add_row({"Request", "requests per session",
             R::fmt(cfg.session.mean_pages_per_session, 0) + " pages (geometric)"});
  t.add_row({"Request", "hits per request",
             "uniform " + std::to_string(cfg.session.min_hits_per_page) + "-" +
                 std::to_string(cfg.session.max_hits_per_page)});
  t.add_row({"Web site", "servers", "N = " + std::to_string(cfg.cluster.size())});
  t.add_row({"Web site", "total capacity",
             R::fmt(cfg.cluster.total_capacity_hits_per_sec, 0) + " hits/sec"});
  t.add_row({"Web site", "heterogeneity",
             "0-65% (" + R::fmt(cfg.cluster.heterogeneity_percent(), 0) + "%)"});
  t.add_row({"Web site", "average utilization", "2/3 of total capacity (emergent)"});
  t.add_row({"Algorithm", "utilization interval", R::fmt(cfg.monitor_interval_sec, 0) + " sec"});
  t.add_row({"Algorithm", "alarm threshold", "theta = " + R::fmt(cfg.alarm_threshold, 2)});
  t.add_row({"Algorithm", "class threshold",
             "gamma = 1/K = " + R::fmt(cfg.effective_class_threshold(), 3)});
  t.add_row({"Algorithm", "constant TTL", R::fmt(cfg.reference_ttl_sec, 0) + " sec"});
  t.add_row({"Run", "simulated length", R::fmt(cfg.duration_sec / 3600.0, 0) + " hours (+" +
                                            R::fmt(cfg.warmup_sec, 0) + " s warm-up)"});

  t.print("Table 1: parameters of the system model");
  return 0;
}
