// Figure 6: sensitivity to the error in estimating the domain hidden load
// weight at 20% system heterogeneity.
//
// Paper shape: the four TTL/K / TTL/S_K schemes cluster at the top and
// lose only a few points even at 50% error; the TTL/2 / TTL/S_2 schemes
// sit lower and degrade faster.
#include "fig_estimation_error_common.h"

int main() { return adattl::bench::run_estimation_error_figure("Figure 6", 20); }
