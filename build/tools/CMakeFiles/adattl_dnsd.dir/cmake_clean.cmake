file(REMOVE_RECURSE
  "CMakeFiles/adattl_dnsd.dir/adattl_dnsd.cpp.o"
  "CMakeFiles/adattl_dnsd.dir/adattl_dnsd.cpp.o.d"
  "adattl_dnsd"
  "adattl_dnsd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adattl_dnsd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
