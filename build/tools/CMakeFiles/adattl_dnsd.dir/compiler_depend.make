# Empty compiler generated dependencies file for adattl_dnsd.
# This may be replaced when dependencies are built.
