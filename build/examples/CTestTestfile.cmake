# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_coroutine_kernel_demo "/root/repo/build/examples/coroutine_kernel_demo")
set_tests_properties(example_coroutine_kernel_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dns_wire_demo "/root/repo/build/examples/dns_wire_demo")
set_tests_properties(example_dns_wire_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_run_scenario "/root/repo/build/examples/run_scenario" "--policy=DRR2-TTL/S_K" "--duration=600" "--warmup=60" "--json")
set_tests_properties(example_run_scenario PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_run_scenario_help "/root/repo/build/examples/run_scenario" "--help")
set_tests_properties(example_run_scenario_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_run_scenario_scenario_file "/root/repo/build/examples/run_scenario" "--config=/root/repo/scenarios/hostile_resolvers.scenario" "--duration=600" "--warmup=60" "--replications=1")
set_tests_properties(example_run_scenario_scenario_file PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
