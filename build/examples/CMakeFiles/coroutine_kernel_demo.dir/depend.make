# Empty dependencies file for coroutine_kernel_demo.
# This may be replaced when dependencies are built.
