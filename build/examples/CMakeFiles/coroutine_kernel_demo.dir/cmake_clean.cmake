file(REMOVE_RECURSE
  "CMakeFiles/coroutine_kernel_demo.dir/coroutine_kernel_demo.cpp.o"
  "CMakeFiles/coroutine_kernel_demo.dir/coroutine_kernel_demo.cpp.o.d"
  "coroutine_kernel_demo"
  "coroutine_kernel_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coroutine_kernel_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
