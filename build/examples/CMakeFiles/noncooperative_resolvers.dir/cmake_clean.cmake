file(REMOVE_RECURSE
  "CMakeFiles/noncooperative_resolvers.dir/noncooperative_resolvers.cpp.o"
  "CMakeFiles/noncooperative_resolvers.dir/noncooperative_resolvers.cpp.o.d"
  "noncooperative_resolvers"
  "noncooperative_resolvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noncooperative_resolvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
