# Empty dependencies file for noncooperative_resolvers.
# This may be replaced when dependencies are built.
