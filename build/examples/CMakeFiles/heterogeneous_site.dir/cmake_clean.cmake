file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_site.dir/heterogeneous_site.cpp.o"
  "CMakeFiles/heterogeneous_site.dir/heterogeneous_site.cpp.o.d"
  "heterogeneous_site"
  "heterogeneous_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
