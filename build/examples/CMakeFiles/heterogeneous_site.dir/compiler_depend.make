# Empty compiler generated dependencies file for heterogeneous_site.
# This may be replaced when dependencies are built.
