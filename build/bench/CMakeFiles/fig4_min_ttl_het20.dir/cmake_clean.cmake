file(REMOVE_RECURSE
  "CMakeFiles/fig4_min_ttl_het20.dir/fig4_min_ttl_het20.cpp.o"
  "CMakeFiles/fig4_min_ttl_het20.dir/fig4_min_ttl_het20.cpp.o.d"
  "fig4_min_ttl_het20"
  "fig4_min_ttl_het20.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_min_ttl_het20.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
