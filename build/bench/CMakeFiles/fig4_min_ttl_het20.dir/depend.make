# Empty dependencies file for fig4_min_ttl_het20.
# This may be replaced when dependencies are built.
