# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig4_min_ttl_het20.
