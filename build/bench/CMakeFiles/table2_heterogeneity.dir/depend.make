# Empty dependencies file for table2_heterogeneity.
# This may be replaced when dependencies are built.
