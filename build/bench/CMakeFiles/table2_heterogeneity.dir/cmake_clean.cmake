file(REMOVE_RECURSE
  "CMakeFiles/table2_heterogeneity.dir/table2_heterogeneity.cpp.o"
  "CMakeFiles/table2_heterogeneity.dir/table2_heterogeneity.cpp.o.d"
  "table2_heterogeneity"
  "table2_heterogeneity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
