file(REMOVE_RECURSE
  "CMakeFiles/fig6_estimation_error_het20.dir/fig6_estimation_error_het20.cpp.o"
  "CMakeFiles/fig6_estimation_error_het20.dir/fig6_estimation_error_het20.cpp.o.d"
  "fig6_estimation_error_het20"
  "fig6_estimation_error_het20.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_estimation_error_het20.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
