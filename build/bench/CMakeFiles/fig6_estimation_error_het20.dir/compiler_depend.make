# Empty compiler generated dependencies file for fig6_estimation_error_het20.
# This may be replaced when dependencies are built.
