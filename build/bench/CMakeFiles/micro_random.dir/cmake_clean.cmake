file(REMOVE_RECURSE
  "CMakeFiles/micro_random.dir/micro_random.cpp.o"
  "CMakeFiles/micro_random.dir/micro_random.cpp.o.d"
  "micro_random"
  "micro_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
