# Empty compiler generated dependencies file for micro_random.
# This may be replaced when dependencies are built.
