file(REMOVE_RECURSE
  "CMakeFiles/fig2_probabilistic.dir/fig2_probabilistic.cpp.o"
  "CMakeFiles/fig2_probabilistic.dir/fig2_probabilistic.cpp.o.d"
  "fig2_probabilistic"
  "fig2_probabilistic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_probabilistic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
