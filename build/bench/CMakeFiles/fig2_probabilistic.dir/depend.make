# Empty dependencies file for fig2_probabilistic.
# This may be replaced when dependencies are built.
