file(REMOVE_RECURSE
  "CMakeFiles/ablation_redirection.dir/ablation_redirection.cpp.o"
  "CMakeFiles/ablation_redirection.dir/ablation_redirection.cpp.o.d"
  "ablation_redirection"
  "ablation_redirection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_redirection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
