# Empty compiler generated dependencies file for ablation_dynamics.
# This may be replaced when dependencies are built.
