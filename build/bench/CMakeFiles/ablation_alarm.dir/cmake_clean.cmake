file(REMOVE_RECURSE
  "CMakeFiles/ablation_alarm.dir/ablation_alarm.cpp.o"
  "CMakeFiles/ablation_alarm.dir/ablation_alarm.cpp.o.d"
  "ablation_alarm"
  "ablation_alarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_alarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
