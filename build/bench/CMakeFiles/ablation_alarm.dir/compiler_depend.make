# Empty compiler generated dependencies file for ablation_alarm.
# This may be replaced when dependencies are built.
