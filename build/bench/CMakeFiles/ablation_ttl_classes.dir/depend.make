# Empty dependencies file for ablation_ttl_classes.
# This may be replaced when dependencies are built.
