file(REMOVE_RECURSE
  "CMakeFiles/ablation_ttl_classes.dir/ablation_ttl_classes.cpp.o"
  "CMakeFiles/ablation_ttl_classes.dir/ablation_ttl_classes.cpp.o.d"
  "ablation_ttl_classes"
  "ablation_ttl_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ttl_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
