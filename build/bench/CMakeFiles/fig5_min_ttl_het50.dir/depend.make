# Empty dependencies file for fig5_min_ttl_het50.
# This may be replaced when dependencies are built.
