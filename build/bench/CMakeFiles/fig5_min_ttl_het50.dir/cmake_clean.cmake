file(REMOVE_RECURSE
  "CMakeFiles/fig5_min_ttl_het50.dir/fig5_min_ttl_het50.cpp.o"
  "CMakeFiles/fig5_min_ttl_het50.dir/fig5_min_ttl_het50.cpp.o.d"
  "fig5_min_ttl_het50"
  "fig5_min_ttl_het50.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_min_ttl_het50.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
