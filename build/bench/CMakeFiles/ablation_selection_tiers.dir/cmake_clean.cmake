file(REMOVE_RECURSE
  "CMakeFiles/ablation_selection_tiers.dir/ablation_selection_tiers.cpp.o"
  "CMakeFiles/ablation_selection_tiers.dir/ablation_selection_tiers.cpp.o.d"
  "ablation_selection_tiers"
  "ablation_selection_tiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_selection_tiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
