# Empty compiler generated dependencies file for ablation_selection_tiers.
# This may be replaced when dependencies are built.
