# Empty compiler generated dependencies file for fig3_heterogeneity.
# This may be replaced when dependencies are built.
