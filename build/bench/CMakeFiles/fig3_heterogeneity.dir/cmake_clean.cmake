file(REMOVE_RECURSE
  "CMakeFiles/fig3_heterogeneity.dir/fig3_heterogeneity.cpp.o"
  "CMakeFiles/fig3_heterogeneity.dir/fig3_heterogeneity.cpp.o.d"
  "fig3_heterogeneity"
  "fig3_heterogeneity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
