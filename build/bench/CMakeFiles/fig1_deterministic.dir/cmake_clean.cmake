file(REMOVE_RECURSE
  "CMakeFiles/fig1_deterministic.dir/fig1_deterministic.cpp.o"
  "CMakeFiles/fig1_deterministic.dir/fig1_deterministic.cpp.o.d"
  "fig1_deterministic"
  "fig1_deterministic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_deterministic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
