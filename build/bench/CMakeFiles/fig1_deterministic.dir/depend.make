# Empty dependencies file for fig1_deterministic.
# This may be replaced when dependencies are built.
