file(REMOVE_RECURSE
  "CMakeFiles/fig7_estimation_error_het50.dir/fig7_estimation_error_het50.cpp.o"
  "CMakeFiles/fig7_estimation_error_het50.dir/fig7_estimation_error_het50.cpp.o.d"
  "fig7_estimation_error_het50"
  "fig7_estimation_error_het50.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_estimation_error_het50.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
