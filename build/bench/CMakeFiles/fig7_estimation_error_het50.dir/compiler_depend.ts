# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig7_estimation_error_het50.
