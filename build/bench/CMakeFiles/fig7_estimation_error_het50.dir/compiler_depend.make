# Empty compiler generated dependencies file for fig7_estimation_error_het50.
# This may be replaced when dependencies are built.
