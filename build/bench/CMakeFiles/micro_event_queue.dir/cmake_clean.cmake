file(REMOVE_RECURSE
  "CMakeFiles/micro_event_queue.dir/micro_event_queue.cpp.o"
  "CMakeFiles/micro_event_queue.dir/micro_event_queue.cpp.o.d"
  "micro_event_queue"
  "micro_event_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_event_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
