# Empty dependencies file for ablation_geo.
# This may be replaced when dependencies are built.
