file(REMOVE_RECURSE
  "CMakeFiles/ablation_geo.dir/ablation_geo.cpp.o"
  "CMakeFiles/ablation_geo.dir/ablation_geo.cpp.o.d"
  "ablation_geo"
  "ablation_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
