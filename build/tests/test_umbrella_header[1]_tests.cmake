add_test([=[UmbrellaHeader.ExposesEveryLayer]=]  /root/repo/build/tests/test_umbrella_header [==[--gtest_filter=UmbrellaHeader.ExposesEveryLayer]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[UmbrellaHeader.ExposesEveryLayer]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_umbrella_header_TESTS UmbrellaHeader.ExposesEveryLayer)
