file(REMOVE_RECURSE
  "CMakeFiles/test_dal_policy.dir/test_dal_policy.cpp.o"
  "CMakeFiles/test_dal_policy.dir/test_dal_policy.cpp.o.d"
  "test_dal_policy"
  "test_dal_policy.pdb"
  "test_dal_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dal_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
