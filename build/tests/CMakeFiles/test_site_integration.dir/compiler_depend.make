# Empty compiler generated dependencies file for test_site_integration.
# This may be replaced when dependencies are built.
