file(REMOVE_RECURSE
  "CMakeFiles/test_site_integration.dir/test_site_integration.cpp.o"
  "CMakeFiles/test_site_integration.dir/test_site_integration.cpp.o.d"
  "test_site_integration"
  "test_site_integration.pdb"
  "test_site_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_site_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
