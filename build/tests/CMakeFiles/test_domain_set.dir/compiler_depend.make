# Empty compiler generated dependencies file for test_domain_set.
# This may be replaced when dependencies are built.
