file(REMOVE_RECURSE
  "CMakeFiles/test_domain_set.dir/test_domain_set.cpp.o"
  "CMakeFiles/test_domain_set.dir/test_domain_set.cpp.o.d"
  "test_domain_set"
  "test_domain_set.pdb"
  "test_domain_set[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_domain_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
