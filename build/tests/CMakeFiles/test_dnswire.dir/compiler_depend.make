# Empty compiler generated dependencies file for test_dnswire.
# This may be replaced when dependencies are built.
