file(REMOVE_RECURSE
  "CMakeFiles/test_dnswire.dir/test_dnswire.cpp.o"
  "CMakeFiles/test_dnswire.dir/test_dnswire.cpp.o.d"
  "test_dnswire"
  "test_dnswire.pdb"
  "test_dnswire[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dnswire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
