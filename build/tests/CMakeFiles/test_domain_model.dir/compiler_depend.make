# Empty compiler generated dependencies file for test_domain_model.
# This may be replaced when dependencies are built.
