file(REMOVE_RECURSE
  "CMakeFiles/test_domain_model.dir/test_domain_model.cpp.o"
  "CMakeFiles/test_domain_model.dir/test_domain_model.cpp.o.d"
  "test_domain_model"
  "test_domain_model.pdb"
  "test_domain_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_domain_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
