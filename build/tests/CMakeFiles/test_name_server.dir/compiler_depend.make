# Empty compiler generated dependencies file for test_name_server.
# This may be replaced when dependencies are built.
