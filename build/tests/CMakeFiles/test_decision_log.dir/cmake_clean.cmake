file(REMOVE_RECURSE
  "CMakeFiles/test_decision_log.dir/test_decision_log.cpp.o"
  "CMakeFiles/test_decision_log.dir/test_decision_log.cpp.o.d"
  "test_decision_log"
  "test_decision_log.pdb"
  "test_decision_log[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_decision_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
