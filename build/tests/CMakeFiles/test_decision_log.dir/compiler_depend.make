# Empty compiler generated dependencies file for test_decision_log.
# This may be replaced when dependencies are built.
