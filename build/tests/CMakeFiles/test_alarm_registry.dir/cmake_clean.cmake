file(REMOVE_RECURSE
  "CMakeFiles/test_alarm_registry.dir/test_alarm_registry.cpp.o"
  "CMakeFiles/test_alarm_registry.dir/test_alarm_registry.cpp.o.d"
  "test_alarm_registry"
  "test_alarm_registry.pdb"
  "test_alarm_registry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alarm_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
