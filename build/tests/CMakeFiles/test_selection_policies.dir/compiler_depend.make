# Empty compiler generated dependencies file for test_selection_policies.
# This may be replaced when dependencies are built.
