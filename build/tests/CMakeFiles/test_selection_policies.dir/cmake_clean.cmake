file(REMOVE_RECURSE
  "CMakeFiles/test_selection_policies.dir/test_selection_policies.cpp.o"
  "CMakeFiles/test_selection_policies.dir/test_selection_policies.cpp.o.d"
  "test_selection_policies"
  "test_selection_policies.pdb"
  "test_selection_policies[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_selection_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
