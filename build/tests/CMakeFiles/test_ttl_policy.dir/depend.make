# Empty dependencies file for test_ttl_policy.
# This may be replaced when dependencies are built.
