file(REMOVE_RECURSE
  "CMakeFiles/test_ttl_policy.dir/test_ttl_policy.cpp.o"
  "CMakeFiles/test_ttl_policy.dir/test_ttl_policy.cpp.o.d"
  "test_ttl_policy"
  "test_ttl_policy.pdb"
  "test_ttl_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ttl_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
