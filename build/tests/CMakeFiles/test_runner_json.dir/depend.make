# Empty dependencies file for test_runner_json.
# This may be replaced when dependencies are built.
