file(REMOVE_RECURSE
  "CMakeFiles/test_runner_json.dir/test_runner_json.cpp.o"
  "CMakeFiles/test_runner_json.dir/test_runner_json.cpp.o.d"
  "test_runner_json"
  "test_runner_json.pdb"
  "test_runner_json[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runner_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
