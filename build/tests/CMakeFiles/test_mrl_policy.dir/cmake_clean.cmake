file(REMOVE_RECURSE
  "CMakeFiles/test_mrl_policy.dir/test_mrl_policy.cpp.o"
  "CMakeFiles/test_mrl_policy.dir/test_mrl_policy.cpp.o.d"
  "test_mrl_policy"
  "test_mrl_policy.pdb"
  "test_mrl_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mrl_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
