# Empty dependencies file for test_mrl_policy.
# This may be replaced when dependencies are built.
