# Empty dependencies file for test_monitor_hub.
# This may be replaced when dependencies are built.
