file(REMOVE_RECURSE
  "CMakeFiles/test_monitor_hub.dir/test_monitor_hub.cpp.o"
  "CMakeFiles/test_monitor_hub.dir/test_monitor_hub.cpp.o.d"
  "test_monitor_hub"
  "test_monitor_hub.pdb"
  "test_monitor_hub[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_monitor_hub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
