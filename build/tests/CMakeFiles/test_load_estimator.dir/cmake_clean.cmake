file(REMOVE_RECURSE
  "CMakeFiles/test_load_estimator.dir/test_load_estimator.cpp.o"
  "CMakeFiles/test_load_estimator.dir/test_load_estimator.cpp.o.d"
  "test_load_estimator"
  "test_load_estimator.pdb"
  "test_load_estimator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_load_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
