
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_parallel_runner.cpp" "tests/CMakeFiles/test_parallel_runner.dir/test_parallel_runner.cpp.o" "gcc" "tests/CMakeFiles/test_parallel_runner.dir/test_parallel_runner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiment/CMakeFiles/adattl_experiment.dir/DependInfo.cmake"
  "/root/repo/build/src/dnswire/CMakeFiles/adattl_dnswire.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/adattl_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/dnscache/CMakeFiles/adattl_dnscache.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/adattl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/adattl_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/web/CMakeFiles/adattl_web.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/adattl_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
