# Empty dependencies file for test_event_queue_fuzz.
# This may be replaced when dependencies are built.
