file(REMOVE_RECURSE
  "CMakeFiles/test_event_queue_fuzz.dir/test_event_queue_fuzz.cpp.o"
  "CMakeFiles/test_event_queue_fuzz.dir/test_event_queue_fuzz.cpp.o.d"
  "test_event_queue_fuzz"
  "test_event_queue_fuzz.pdb"
  "test_event_queue_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_event_queue_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
