# Empty compiler generated dependencies file for test_web_server.
# This may be replaced when dependencies are built.
