file(REMOVE_RECURSE
  "CMakeFiles/test_web_server.dir/test_web_server.cpp.o"
  "CMakeFiles/test_web_server.dir/test_web_server.cpp.o.d"
  "test_web_server"
  "test_web_server.pdb"
  "test_web_server[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_web_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
