# Empty compiler generated dependencies file for test_think_time_model.
# This may be replaced when dependencies are built.
