file(REMOVE_RECURSE
  "CMakeFiles/test_think_time_model.dir/test_think_time_model.cpp.o"
  "CMakeFiles/test_think_time_model.dir/test_think_time_model.cpp.o.d"
  "test_think_time_model"
  "test_think_time_model.pdb"
  "test_think_time_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_think_time_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
