file(REMOVE_RECURSE
  "libadattl_geo.a"
)
