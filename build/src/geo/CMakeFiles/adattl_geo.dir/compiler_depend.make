# Empty compiler generated dependencies file for adattl_geo.
# This may be replaced when dependencies are built.
