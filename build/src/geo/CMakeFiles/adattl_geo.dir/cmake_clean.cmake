file(REMOVE_RECURSE
  "CMakeFiles/adattl_geo.dir/geo_model.cpp.o"
  "CMakeFiles/adattl_geo.dir/geo_model.cpp.o.d"
  "libadattl_geo.a"
  "libadattl_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adattl_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
