
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alarm_registry.cpp" "src/core/CMakeFiles/adattl_core.dir/alarm_registry.cpp.o" "gcc" "src/core/CMakeFiles/adattl_core.dir/alarm_registry.cpp.o.d"
  "/root/repo/src/core/dal_policy.cpp" "src/core/CMakeFiles/adattl_core.dir/dal_policy.cpp.o" "gcc" "src/core/CMakeFiles/adattl_core.dir/dal_policy.cpp.o.d"
  "/root/repo/src/core/domain_model.cpp" "src/core/CMakeFiles/adattl_core.dir/domain_model.cpp.o" "gcc" "src/core/CMakeFiles/adattl_core.dir/domain_model.cpp.o.d"
  "/root/repo/src/core/load_estimator.cpp" "src/core/CMakeFiles/adattl_core.dir/load_estimator.cpp.o" "gcc" "src/core/CMakeFiles/adattl_core.dir/load_estimator.cpp.o.d"
  "/root/repo/src/core/mrl_policy.cpp" "src/core/CMakeFiles/adattl_core.dir/mrl_policy.cpp.o" "gcc" "src/core/CMakeFiles/adattl_core.dir/mrl_policy.cpp.o.d"
  "/root/repo/src/core/policy_factory.cpp" "src/core/CMakeFiles/adattl_core.dir/policy_factory.cpp.o" "gcc" "src/core/CMakeFiles/adattl_core.dir/policy_factory.cpp.o.d"
  "/root/repo/src/core/proximity_policy.cpp" "src/core/CMakeFiles/adattl_core.dir/proximity_policy.cpp.o" "gcc" "src/core/CMakeFiles/adattl_core.dir/proximity_policy.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/adattl_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/adattl_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/core/selection_policies.cpp" "src/core/CMakeFiles/adattl_core.dir/selection_policies.cpp.o" "gcc" "src/core/CMakeFiles/adattl_core.dir/selection_policies.cpp.o.d"
  "/root/repo/src/core/ttl_policy.cpp" "src/core/CMakeFiles/adattl_core.dir/ttl_policy.cpp.o" "gcc" "src/core/CMakeFiles/adattl_core.dir/ttl_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/web/CMakeFiles/adattl_web.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/adattl_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/adattl_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
