# Empty dependencies file for adattl_core.
# This may be replaced when dependencies are built.
