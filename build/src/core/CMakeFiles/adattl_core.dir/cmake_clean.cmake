file(REMOVE_RECURSE
  "CMakeFiles/adattl_core.dir/alarm_registry.cpp.o"
  "CMakeFiles/adattl_core.dir/alarm_registry.cpp.o.d"
  "CMakeFiles/adattl_core.dir/dal_policy.cpp.o"
  "CMakeFiles/adattl_core.dir/dal_policy.cpp.o.d"
  "CMakeFiles/adattl_core.dir/domain_model.cpp.o"
  "CMakeFiles/adattl_core.dir/domain_model.cpp.o.d"
  "CMakeFiles/adattl_core.dir/load_estimator.cpp.o"
  "CMakeFiles/adattl_core.dir/load_estimator.cpp.o.d"
  "CMakeFiles/adattl_core.dir/mrl_policy.cpp.o"
  "CMakeFiles/adattl_core.dir/mrl_policy.cpp.o.d"
  "CMakeFiles/adattl_core.dir/policy_factory.cpp.o"
  "CMakeFiles/adattl_core.dir/policy_factory.cpp.o.d"
  "CMakeFiles/adattl_core.dir/proximity_policy.cpp.o"
  "CMakeFiles/adattl_core.dir/proximity_policy.cpp.o.d"
  "CMakeFiles/adattl_core.dir/scheduler.cpp.o"
  "CMakeFiles/adattl_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/adattl_core.dir/selection_policies.cpp.o"
  "CMakeFiles/adattl_core.dir/selection_policies.cpp.o.d"
  "CMakeFiles/adattl_core.dir/ttl_policy.cpp.o"
  "CMakeFiles/adattl_core.dir/ttl_policy.cpp.o.d"
  "libadattl_core.a"
  "libadattl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adattl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
