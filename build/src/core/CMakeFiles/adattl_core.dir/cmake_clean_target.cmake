file(REMOVE_RECURSE
  "libadattl_core.a"
)
