file(REMOVE_RECURSE
  "CMakeFiles/adattl_web.dir/cluster.cpp.o"
  "CMakeFiles/adattl_web.dir/cluster.cpp.o.d"
  "CMakeFiles/adattl_web.dir/dispatcher.cpp.o"
  "CMakeFiles/adattl_web.dir/dispatcher.cpp.o.d"
  "CMakeFiles/adattl_web.dir/monitor_hub.cpp.o"
  "CMakeFiles/adattl_web.dir/monitor_hub.cpp.o.d"
  "CMakeFiles/adattl_web.dir/web_server.cpp.o"
  "CMakeFiles/adattl_web.dir/web_server.cpp.o.d"
  "libadattl_web.a"
  "libadattl_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adattl_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
