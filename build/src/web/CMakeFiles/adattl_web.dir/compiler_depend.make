# Empty compiler generated dependencies file for adattl_web.
# This may be replaced when dependencies are built.
