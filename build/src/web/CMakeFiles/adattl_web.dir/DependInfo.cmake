
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/web/cluster.cpp" "src/web/CMakeFiles/adattl_web.dir/cluster.cpp.o" "gcc" "src/web/CMakeFiles/adattl_web.dir/cluster.cpp.o.d"
  "/root/repo/src/web/dispatcher.cpp" "src/web/CMakeFiles/adattl_web.dir/dispatcher.cpp.o" "gcc" "src/web/CMakeFiles/adattl_web.dir/dispatcher.cpp.o.d"
  "/root/repo/src/web/monitor_hub.cpp" "src/web/CMakeFiles/adattl_web.dir/monitor_hub.cpp.o" "gcc" "src/web/CMakeFiles/adattl_web.dir/monitor_hub.cpp.o.d"
  "/root/repo/src/web/web_server.cpp" "src/web/CMakeFiles/adattl_web.dir/web_server.cpp.o" "gcc" "src/web/CMakeFiles/adattl_web.dir/web_server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/adattl_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
