file(REMOVE_RECURSE
  "libadattl_web.a"
)
