
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dnscache/client_cache.cpp" "src/dnscache/CMakeFiles/adattl_dnscache.dir/client_cache.cpp.o" "gcc" "src/dnscache/CMakeFiles/adattl_dnscache.dir/client_cache.cpp.o.d"
  "/root/repo/src/dnscache/name_server.cpp" "src/dnscache/CMakeFiles/adattl_dnscache.dir/name_server.cpp.o" "gcc" "src/dnscache/CMakeFiles/adattl_dnscache.dir/name_server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/adattl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/adattl_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/web/CMakeFiles/adattl_web.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/adattl_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
