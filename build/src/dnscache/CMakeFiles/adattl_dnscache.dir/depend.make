# Empty dependencies file for adattl_dnscache.
# This may be replaced when dependencies are built.
