file(REMOVE_RECURSE
  "libadattl_dnscache.a"
)
