file(REMOVE_RECURSE
  "CMakeFiles/adattl_dnscache.dir/client_cache.cpp.o"
  "CMakeFiles/adattl_dnscache.dir/client_cache.cpp.o.d"
  "CMakeFiles/adattl_dnscache.dir/name_server.cpp.o"
  "CMakeFiles/adattl_dnscache.dir/name_server.cpp.o.d"
  "libadattl_dnscache.a"
  "libadattl_dnscache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adattl_dnscache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
