file(REMOVE_RECURSE
  "libadattl_workload.a"
)
