file(REMOVE_RECURSE
  "CMakeFiles/adattl_workload.dir/client.cpp.o"
  "CMakeFiles/adattl_workload.dir/client.cpp.o.d"
  "CMakeFiles/adattl_workload.dir/domain_set.cpp.o"
  "CMakeFiles/adattl_workload.dir/domain_set.cpp.o.d"
  "CMakeFiles/adattl_workload.dir/think_time_model.cpp.o"
  "CMakeFiles/adattl_workload.dir/think_time_model.cpp.o.d"
  "libadattl_workload.a"
  "libadattl_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adattl_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
