# Empty compiler generated dependencies file for adattl_workload.
# This may be replaced when dependencies are built.
