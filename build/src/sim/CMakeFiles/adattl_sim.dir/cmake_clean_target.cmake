file(REMOVE_RECURSE
  "libadattl_sim.a"
)
