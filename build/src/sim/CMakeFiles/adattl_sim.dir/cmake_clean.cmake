file(REMOVE_RECURSE
  "CMakeFiles/adattl_sim.dir/event_queue.cpp.o"
  "CMakeFiles/adattl_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/adattl_sim.dir/random.cpp.o"
  "CMakeFiles/adattl_sim.dir/random.cpp.o.d"
  "CMakeFiles/adattl_sim.dir/simulator.cpp.o"
  "CMakeFiles/adattl_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/adattl_sim.dir/stats.cpp.o"
  "CMakeFiles/adattl_sim.dir/stats.cpp.o.d"
  "libadattl_sim.a"
  "libadattl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adattl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
