# Empty compiler generated dependencies file for adattl_sim.
# This may be replaced when dependencies are built.
