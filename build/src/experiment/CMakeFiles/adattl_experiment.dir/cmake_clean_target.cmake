file(REMOVE_RECURSE
  "libadattl_experiment.a"
)
