
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/experiment/cli.cpp" "src/experiment/CMakeFiles/adattl_experiment.dir/cli.cpp.o" "gcc" "src/experiment/CMakeFiles/adattl_experiment.dir/cli.cpp.o.d"
  "/root/repo/src/experiment/config.cpp" "src/experiment/CMakeFiles/adattl_experiment.dir/config.cpp.o" "gcc" "src/experiment/CMakeFiles/adattl_experiment.dir/config.cpp.o.d"
  "/root/repo/src/experiment/decision_log.cpp" "src/experiment/CMakeFiles/adattl_experiment.dir/decision_log.cpp.o" "gcc" "src/experiment/CMakeFiles/adattl_experiment.dir/decision_log.cpp.o.d"
  "/root/repo/src/experiment/env_config.cpp" "src/experiment/CMakeFiles/adattl_experiment.dir/env_config.cpp.o" "gcc" "src/experiment/CMakeFiles/adattl_experiment.dir/env_config.cpp.o.d"
  "/root/repo/src/experiment/metrics.cpp" "src/experiment/CMakeFiles/adattl_experiment.dir/metrics.cpp.o" "gcc" "src/experiment/CMakeFiles/adattl_experiment.dir/metrics.cpp.o.d"
  "/root/repo/src/experiment/parallel_executor.cpp" "src/experiment/CMakeFiles/adattl_experiment.dir/parallel_executor.cpp.o" "gcc" "src/experiment/CMakeFiles/adattl_experiment.dir/parallel_executor.cpp.o.d"
  "/root/repo/src/experiment/report.cpp" "src/experiment/CMakeFiles/adattl_experiment.dir/report.cpp.o" "gcc" "src/experiment/CMakeFiles/adattl_experiment.dir/report.cpp.o.d"
  "/root/repo/src/experiment/runner.cpp" "src/experiment/CMakeFiles/adattl_experiment.dir/runner.cpp.o" "gcc" "src/experiment/CMakeFiles/adattl_experiment.dir/runner.cpp.o.d"
  "/root/repo/src/experiment/scenario_file.cpp" "src/experiment/CMakeFiles/adattl_experiment.dir/scenario_file.cpp.o" "gcc" "src/experiment/CMakeFiles/adattl_experiment.dir/scenario_file.cpp.o.d"
  "/root/repo/src/experiment/site.cpp" "src/experiment/CMakeFiles/adattl_experiment.dir/site.cpp.o" "gcc" "src/experiment/CMakeFiles/adattl_experiment.dir/site.cpp.o.d"
  "/root/repo/src/experiment/trace.cpp" "src/experiment/CMakeFiles/adattl_experiment.dir/trace.cpp.o" "gcc" "src/experiment/CMakeFiles/adattl_experiment.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/adattl_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/adattl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dnscache/CMakeFiles/adattl_dnscache.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/adattl_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/web/CMakeFiles/adattl_web.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/adattl_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
