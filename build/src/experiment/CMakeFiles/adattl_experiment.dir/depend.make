# Empty dependencies file for adattl_experiment.
# This may be replaced when dependencies are built.
