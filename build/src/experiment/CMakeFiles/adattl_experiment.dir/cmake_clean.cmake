file(REMOVE_RECURSE
  "CMakeFiles/adattl_experiment.dir/cli.cpp.o"
  "CMakeFiles/adattl_experiment.dir/cli.cpp.o.d"
  "CMakeFiles/adattl_experiment.dir/config.cpp.o"
  "CMakeFiles/adattl_experiment.dir/config.cpp.o.d"
  "CMakeFiles/adattl_experiment.dir/decision_log.cpp.o"
  "CMakeFiles/adattl_experiment.dir/decision_log.cpp.o.d"
  "CMakeFiles/adattl_experiment.dir/env_config.cpp.o"
  "CMakeFiles/adattl_experiment.dir/env_config.cpp.o.d"
  "CMakeFiles/adattl_experiment.dir/metrics.cpp.o"
  "CMakeFiles/adattl_experiment.dir/metrics.cpp.o.d"
  "CMakeFiles/adattl_experiment.dir/parallel_executor.cpp.o"
  "CMakeFiles/adattl_experiment.dir/parallel_executor.cpp.o.d"
  "CMakeFiles/adattl_experiment.dir/report.cpp.o"
  "CMakeFiles/adattl_experiment.dir/report.cpp.o.d"
  "CMakeFiles/adattl_experiment.dir/runner.cpp.o"
  "CMakeFiles/adattl_experiment.dir/runner.cpp.o.d"
  "CMakeFiles/adattl_experiment.dir/scenario_file.cpp.o"
  "CMakeFiles/adattl_experiment.dir/scenario_file.cpp.o.d"
  "CMakeFiles/adattl_experiment.dir/site.cpp.o"
  "CMakeFiles/adattl_experiment.dir/site.cpp.o.d"
  "CMakeFiles/adattl_experiment.dir/trace.cpp.o"
  "CMakeFiles/adattl_experiment.dir/trace.cpp.o.d"
  "libadattl_experiment.a"
  "libadattl_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adattl_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
