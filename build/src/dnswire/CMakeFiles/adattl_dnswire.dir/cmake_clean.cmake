file(REMOVE_RECURSE
  "CMakeFiles/adattl_dnswire.dir/frontend.cpp.o"
  "CMakeFiles/adattl_dnswire.dir/frontend.cpp.o.d"
  "CMakeFiles/adattl_dnswire.dir/message.cpp.o"
  "CMakeFiles/adattl_dnswire.dir/message.cpp.o.d"
  "libadattl_dnswire.a"
  "libadattl_dnswire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adattl_dnswire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
