# Empty dependencies file for adattl_dnswire.
# This may be replaced when dependencies are built.
