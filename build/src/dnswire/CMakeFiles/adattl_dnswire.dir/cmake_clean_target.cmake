file(REMOVE_RECURSE
  "libadattl_dnswire.a"
)
