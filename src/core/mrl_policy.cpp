#include "core/mrl_policy.h"

#include <algorithm>
#include <stdexcept>

namespace adattl::core {

MrlPolicy::MrlPolicy(sim::Simulator& sim, const DomainModel& domains,
                     std::vector<double> capacities)
    : sim_(sim),
      domains_(domains),
      capacities_(std::move(capacities)),
      rate_sum_(capacities_.size(), 0.0),
      rate_expiry_sum_(capacities_.size(), 0.0) {
  if (capacities_.empty()) throw std::invalid_argument("MRL: need >= 1 server");
  for (double c : capacities_) {
    if (c <= 0) throw std::invalid_argument("MRL: capacities must be > 0");
  }
}

double MrlPolicy::residual(web::ServerId s) const {
  const auto i = static_cast<std::size_t>(s);
  // Numerical cancellation can leave a tiny negative residue after expiry.
  return std::max(0.0, rate_expiry_sum_[i] - sim_.now() * rate_sum_[i]);
}

web::ServerId MrlPolicy::select(const DecisionContext& ctx) {
  const std::vector<bool>& eligible = *ctx.eligible;
  int best = -1;
  double best_norm = 0.0;
  for (std::size_t i = 0; i < capacities_.size(); ++i) {
    if (!eligible[i]) continue;
    const double norm = residual(static_cast<int>(i)) / capacities_[i];
    if (best < 0 || norm < best_norm) {
      best = static_cast<int>(i);
      best_norm = norm;
    }
  }
  if (best < 0) throw std::logic_error("MRL: no eligible server");
  return best;
}

void MrlPolicy::on_assign(web::DomainId domain, web::ServerId server, double ttl) {
  const double rate = domains_.share(domain);
  const double expiry = sim_.now() + std::max(ttl, 0.0);
  const auto i = static_cast<std::size_t>(server);
  rate_sum_[i] += rate;
  rate_expiry_sum_[i] += rate * expiry;
  sim_.at(expiry, sim::assert_inline([this, i, rate, expiry] {
            rate_sum_[i] -= rate;
            rate_expiry_sum_[i] -= rate * expiry;
          }));
}

std::vector<double> MrlPolicy::stationary_shares() const {
  double sum = 0.0;
  for (double c : capacities_) sum += c;
  std::vector<double> shares(capacities_.size());
  for (std::size_t i = 0; i < capacities_.size(); ++i) shares[i] = capacities_[i] / sum;
  return shares;
}

}  // namespace adattl::core
