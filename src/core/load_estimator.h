#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/domain_model.h"

namespace adattl::core {

/// Online estimator of per-domain hidden load weights (paper §3.1: "the
/// servers keep track of the number of incoming requests from each domain
/// and the DNS periodically collects the information"; the companion
/// report [3] studies estimator design in depth).
///
/// Each collection window the experiment drains every server's per-domain
/// hit counters, sums them, and feeds the totals here; the estimator turns
/// them into a weight vector and pushes it into the DomainModel (which in
/// turn triggers TTL recalibration).
///
/// With `oracle` mode the estimator is inert and the DomainModel keeps its
/// configured weights — the controlled setting used by the paper's
/// estimation-error study, where the workload is perturbed while "the DNS
/// estimates of the hidden load weight remain the same as before".
class LoadEstimator {
 public:
  LoadEstimator(DomainModel& model, bool oracle);
  virtual ~LoadEstimator() = default;

  /// Installed weights are floored at this fraction of the hottest
  /// installed weight. A forecast can legitimately clamp to exactly zero
  /// (AR predicting past the bottom of a decay, Holt-Winters' floored
  /// level+trend, a sliding window of all-zero observations for one
  /// domain), but installing that zero verbatim tells weight-*ratio*
  /// consumers the domain never gets requests — AdaptiveTtlPolicy's
  /// hottest/weight domain factor lands on its 1e-12 div-by-zero guard
  /// and hands out TTLs ~1e12x the reference. The fraction sits far below
  /// any real domain share, so genuine estimates are untouched.
  static constexpr double kMinInstallFraction = 1e-4;

  /// Feeds one collection window: total hits per domain over `window_sec`.
  /// No-op in oracle mode. All-zero (empty) windows are incorporated like
  /// any other observation so running estimates decay through traffic
  /// lulls; the model only keeps its previous weights when the resulting
  /// weight vector has no positive entry (no ranking information).
  void observe(const std::vector<std::uint64_t>& hits_per_domain, double window_sec);

  bool oracle() const { return oracle_; }

  /// Windows that actually contributed to the running estimate. A window
  /// incorporate() discards without touching any state (e.g. an all-zero
  /// window before an EWMA has seeded) is NOT counted — this is the
  /// counter the kEstimatorUpdate trace record carries, and it must mean
  /// "estimate updates", not "observe() calls".
  int windows_observed() const { return windows_; }

 protected:
  /// Blends the newest observed rates into the running estimate; returns
  /// the weight vector to install. Contract: an empty return means the
  /// window was DISCARDED — no estimator state changed and the window
  /// must not count as observed. A non-empty return is an incorporated
  /// window (the install is still guarded: a vector with no positive
  /// entry keeps the model's previous weights).
  virtual std::vector<double> incorporate(const std::vector<double>& rates) = 0;

  int num_domains() const { return model_.num_domains(); }

  /// The currently installed model weights — the prior a cold-started
  /// estimator seeds from (see `seed_from_model` on the subclasses).
  const std::vector<double>& model_weights() const { return model_.weights(); }

  /// `model_weights()` rescaled so its total matches `rates`' total (the
  /// prior carries ranking information on an arbitrary scale; blending it
  /// against observed rates only makes sense scale-matched). Falls back to
  /// `rates` itself when either total is non-positive.
  std::vector<double> scaled_prior(const std::vector<double>& rates) const;

 private:
  DomainModel& model_;
  bool oracle_;
  int windows_ = 0;
};

/// Exponentially-weighted moving average: cheap, memoryless, reacts to
/// shifts within ~1/smoothing windows. The library default.
class EwmaLoadEstimator : public LoadEstimator {
 public:
  /// `smoothing` ∈ (0, 1]: weight of the newest window (1 = no memory).
  /// With `seed_from_model` (the estimator_cold_start path) the estimate
  /// seeds from the installed model weights — scale-matched to the first
  /// non-empty window — and that window blends normally, instead of
  /// anchoring the estimate outright with zero smoothing.
  EwmaLoadEstimator(DomainModel& model, double smoothing, bool oracle = false,
                    bool seed_from_model = false);

  const std::vector<double>& current_rates() const { return rates_; }

 protected:
  std::vector<double> incorporate(const std::vector<double>& rates) override;

 private:
  double smoothing_;
  std::vector<double> rates_;
  bool seeded_ = false;
  bool seed_from_model_;
};

/// Plain moving average over the last `window_count` collection windows:
/// smoother than EWMA under bursty traffic, slower to track shifts, and
/// O(window_count) memory.
class SlidingWindowLoadEstimator : public LoadEstimator {
 public:
  SlidingWindowLoadEstimator(DomainModel& model, int window_count, bool oracle = false);

 protected:
  std::vector<double> incorporate(const std::vector<double>& rates) override;

 private:
  int window_count_;
  std::deque<std::vector<double>> history_;
  std::vector<double> sums_;
};

/// Holt–Winters double exponential smoothing (level + trend), installing
/// the one-step-ahead forecast level + trend. Where plain EWMA lags a
/// regime shift by ~1/α windows, the trend term extrapolates the ramp, so
/// flash crowds and diurnal slopes are tracked ahead of the smoothed
/// level (arXiv:1606.09530 models DNS server load exactly this way:
/// prediction, not just smoothing, is what follows regime shifts).
class HoltWintersLoadEstimator : public LoadEstimator {
 public:
  /// `smoothing` (α) ∈ (0, 1] smooths the level; `trend` (β) ∈ [0, 1]
  /// smooths the trend (β = 0 degrades to EWMA-plus-frozen-trend).
  /// `seed_from_model` behaves as in EwmaLoadEstimator.
  HoltWintersLoadEstimator(DomainModel& model, double smoothing, double trend,
                           bool oracle = false, bool seed_from_model = false);

  const std::vector<double>& level() const { return level_; }
  const std::vector<double>& trend() const { return trend_; }

 protected:
  std::vector<double> incorporate(const std::vector<double>& rates) override;

 private:
  double alpha_;
  double beta_;
  std::vector<double> level_;
  std::vector<double> trend_;
  bool seeded_ = false;
  bool seed_from_model_;
};

/// AR(p) one-step prediction: per domain, an autoregressive model
///   x_t = c + Σ_i φ_i·x_{t−i}
/// is refit by least squares over a bounded history each window, and the
/// installed weight is the model's forecast of the NEXT window. On a
/// noise-free step the fit is exact once p post-step points exist, so
/// reconvergence after a flash crowd takes ~p windows where EWMA needs
/// ~1/α·ln(1/ε). Falls back to the newest observation until the history
/// supports a fit (or when the normal equations are singular).
class ArLoadEstimator : public LoadEstimator {
 public:
  /// `order` = p ≥ 1. History retained per domain: max(16, 4p) windows.
  explicit ArLoadEstimator(DomainModel& model, int order, bool oracle = false);

  int order() const { return order_; }

 protected:
  std::vector<double> incorporate(const std::vector<double>& rates) override;

 private:
  /// One-step forecast for the given per-domain history (newest last);
  /// falls back to the newest observation when the fit is unsupported.
  double predict(const std::deque<double>& history) const;

  int order_;
  std::size_t history_cap_;
  std::vector<std::deque<double>> history_;  // per domain, newest last
};

}  // namespace adattl::core
