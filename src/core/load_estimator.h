#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/domain_model.h"

namespace adattl::core {

/// Online estimator of per-domain hidden load weights (paper §3.1: "the
/// servers keep track of the number of incoming requests from each domain
/// and the DNS periodically collects the information"; the companion
/// report [3] studies estimator design in depth).
///
/// Each collection window the experiment drains every server's per-domain
/// hit counters, sums them, and feeds the totals here; the estimator turns
/// them into a weight vector and pushes it into the DomainModel (which in
/// turn triggers TTL recalibration).
///
/// With `oracle` mode the estimator is inert and the DomainModel keeps its
/// configured weights — the controlled setting used by the paper's
/// estimation-error study, where the workload is perturbed while "the DNS
/// estimates of the hidden load weight remain the same as before".
class LoadEstimator {
 public:
  LoadEstimator(DomainModel& model, bool oracle);
  virtual ~LoadEstimator() = default;

  /// Feeds one collection window: total hits per domain over `window_sec`.
  /// No-op in oracle mode. All-zero (empty) windows are incorporated like
  /// any other observation so running estimates decay through traffic
  /// lulls; the model only keeps its previous weights when the resulting
  /// weight vector has no positive entry (no ranking information).
  void observe(const std::vector<std::uint64_t>& hits_per_domain, double window_sec);

  bool oracle() const { return oracle_; }
  int windows_observed() const { return windows_; }

 protected:
  /// Blends the newest observed rates into the running estimate; returns
  /// the weight vector to install (empty = keep the previous weights).
  virtual std::vector<double> incorporate(const std::vector<double>& rates) = 0;

  int num_domains() const { return model_.num_domains(); }

 private:
  DomainModel& model_;
  bool oracle_;
  int windows_ = 0;
};

/// Exponentially-weighted moving average: cheap, memoryless, reacts to
/// shifts within ~1/smoothing windows. The library default.
class EwmaLoadEstimator : public LoadEstimator {
 public:
  /// `smoothing` ∈ (0, 1]: weight of the newest window (1 = no memory).
  EwmaLoadEstimator(DomainModel& model, double smoothing, bool oracle = false);

  const std::vector<double>& current_rates() const { return rates_; }

 protected:
  std::vector<double> incorporate(const std::vector<double>& rates) override;

 private:
  double smoothing_;
  std::vector<double> rates_;
  bool seeded_ = false;
};

/// Plain moving average over the last `window_count` collection windows:
/// smoother than EWMA under bursty traffic, slower to track shifts, and
/// O(window_count) memory.
class SlidingWindowLoadEstimator : public LoadEstimator {
 public:
  SlidingWindowLoadEstimator(DomainModel& model, int window_count, bool oracle = false);

 protected:
  std::vector<double> incorporate(const std::vector<double>& rates) override;

 private:
  int window_count_;
  std::deque<std::vector<double>> history_;
  std::vector<double> sums_;
};

}  // namespace adattl::core
