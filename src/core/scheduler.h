#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/alarm_registry.h"
#include "core/selection_policy.h"
#include "core/ttl_policy.h"
#include "obs/event_tracer.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace adattl::core {

/// What the authoritative DNS returns for one address request: the chosen
/// server's address and the validity period of the mapping.
struct Decision {
  web::ServerId server = 0;
  double ttl_sec = 0.0;
};

/// The authoritative DNS scheduler: selection policy + TTL policy +
/// alarm-based exclusion, with bookkeeping of every decision it makes.
///
/// This is the paper's composite algorithm; e.g. DRR2-TTL/S_K is
/// TwoTierRoundRobinPolicy + AdaptiveTtlPolicy(per-domain classes, server
/// term on).
class DnsScheduler {
 public:
  /// `geo` (optional) makes the scheduler latency-aware: it is handed to
  /// every policy via DecisionContext and used to accumulate RTT-weighted
  /// assignment accounting.
  DnsScheduler(std::string name, std::unique_ptr<SelectionPolicy> selection,
               std::unique_ptr<TtlPolicy> ttl, const AlarmRegistry& alarms,
               std::shared_ptr<const geo::GeoModel> geo = nullptr);

  /// Answers one address request from `domain`.
  Decision schedule(web::DomainId domain);

  /// Observation hook invoked after every decision (e.g. a decision log).
  /// The scheduler itself is clock-free; observers stamp times themselves.
  void set_decision_hook(std::function<void(web::DomainId, const Decision&)> hook) {
    hook_ = std::move(hook);
  }

  /// Registers the scheduler's instruments (decision counter, TTL and
  /// eligible-set-size histograms) on `registry` and optionally wires the
  /// event tracer (`clock` stamps trace records; both may be null).
  /// Handles are resolved once here; schedule() never touches the registry.
  void bind_observability(obs::MetricsRegistry* registry, obs::EventTracer* tracer,
                          const sim::Simulator* clock);

  const std::string& name() const { return name_; }
  const SelectionPolicy& selection() const { return *selection_; }
  const TtlPolicy& ttl_policy() const { return *ttl_; }

  std::uint64_t decisions() const { return decisions_; }
  /// Mappings handed to each server so far (index == ServerId).
  const std::vector<std::uint64_t>& assignments() const { return assignments_; }
  /// Distribution of TTL values handed out.
  const sim::RunningStat& ttl_stat() const { return ttl_stat_; }

  /// Sum of rtt(domain, server) over all decisions, and its per-server
  /// breakdown — the scheduler-side latency objective (zero without geo).
  double assignment_rtt_sum_sec() const { return assignment_rtt_sum_sec_; }
  const std::vector<double>& per_server_assignment_rtt_sec() const {
    return per_server_assignment_rtt_sec_;
  }

 private:
  std::string name_;
  std::unique_ptr<SelectionPolicy> selection_;
  std::unique_ptr<TtlPolicy> ttl_;
  const AlarmRegistry& alarms_;
  std::shared_ptr<const geo::GeoModel> geo_;

  std::uint64_t decisions_ = 0;
  std::vector<std::uint64_t> assignments_;
  sim::RunningStat ttl_stat_;
  double assignment_rtt_sum_sec_ = 0.0;
  std::vector<double> per_server_assignment_rtt_sec_;
  std::function<void(web::DomainId, const Decision&)> hook_;

  // Observability (unbound handles are pure no-ops; tracer/clock null
  // unless bound — one predictable branch per decision when off).
  obs::Counter obs_decisions_;
  obs::HistogramHandle obs_ttl_;
  obs::HistogramHandle obs_eligible_;
  obs::EventTracer* tracer_ = nullptr;
  const sim::Simulator* clock_ = nullptr;
  bool bound_ = false;
};

}  // namespace adattl::core
