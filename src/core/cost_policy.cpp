#include "core/cost_policy.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "geo/geo_model.h"

namespace adattl::core {
namespace {

std::string format_param(const char* base, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s(%g)", base, value);
  return buf;
}

}  // namespace

// ---------------------------------------------------------- CostPolicyBase

CostPolicyBase::CostPolicyBase(std::vector<double> capacities)
    : capacities_(std::move(capacities)), pending_(capacities_.size(), 0.0) {
  if (capacities_.empty()) throw std::invalid_argument("COST: need >= 1 server");
  for (double c : capacities_) {
    if (c <= 0) throw std::invalid_argument("COST: capacities must be > 0");
    total_capacity_ += c;
    max_capacity_ = std::max(max_capacity_, c);
  }
}

double CostPolicyBase::load_score(const DecisionContext& ctx, std::size_t i) const {
  double load = pending_[i] * kAssignmentPressure * (max_capacity_ / capacities_[i]);
  if (ctx.utilization != nullptr && i < ctx.utilization->size()) {
    load += (*ctx.utilization)[i];
  }
  return load;
}

void CostPolicyBase::sync_generation(const DecisionContext& ctx) {
  // Must run BEFORE scores are computed: the first decision after a fresh
  // feedback observation has to see clean pending counters, or it would
  // dodge servers charged under the stale view the new report replaced.
  if (ctx.feedback_generation != seen_generation_) {
    seen_generation_ = ctx.feedback_generation;
    std::fill(pending_.begin(), pending_.end(), 0.0);
  }
}

void CostPolicyBase::note_assignment(web::ServerId server) {
  pending_[static_cast<std::size_t>(server)] += 1.0;
}

std::vector<double> CostPolicyBase::stationary_shares() const {
  // Calibration approximation: at steady state the load term equalizes
  // utilization, which lands shares near capacity-proportional.
  std::vector<double> shares(capacities_.size());
  for (std::size_t i = 0; i < capacities_.size(); ++i) {
    shares[i] = capacities_[i] / total_capacity_;
  }
  return shares;
}

// ------------------------------------------------------ CompositeCostPolicy

CompositeCostPolicy::CompositeCostPolicy(std::vector<double> capacities, double alpha)
    : CostPolicyBase(std::move(capacities)), alpha_(alpha) {
  if (!(alpha >= 0.0 && alpha <= 1.0)) {
    throw std::invalid_argument("COST: alpha must lie in [0, 1]");
  }
}

web::ServerId CompositeCostPolicy::select(const DecisionContext& ctx) {
  if (ctx.geo == nullptr) throw std::logic_error("COST: decision context has no geo model");
  sync_generation(ctx);
  const std::vector<bool>& eligible = *ctx.eligible;
  const double max_rtt = ctx.geo->max_rtt();
  int best = -1;
  double best_cost = 0.0;
  for (std::size_t i = 0; i < capacities_.size(); ++i) {
    if (!eligible[i]) continue;
    const double norm_rtt =
        max_rtt > 0.0 ? ctx.geo->rtt(ctx.domain, static_cast<int>(i)) / max_rtt : 0.0;
    const double cost = alpha_ * load_score(ctx, i) + (1.0 - alpha_) * norm_rtt;
    if (best < 0 || cost < best_cost) {
      best = static_cast<int>(i);
      best_cost = cost;
    }
  }
  if (best < 0) throw std::logic_error("COST: no eligible server");
  note_assignment(best);
  return best;
}

std::string CompositeCostPolicy::name() const { return format_param("COST", alpha_); }

// --------------------------------------------------------- LatencyCapPolicy

LatencyCapPolicy::LatencyCapPolicy(std::vector<double> capacities, double cap_sec)
    : CostPolicyBase(std::move(capacities)), cap_sec_(cap_sec) {
  if (!(cap_sec > 0.0)) throw std::invalid_argument("COSTCAP: cap must be > 0 seconds");
}

web::ServerId LatencyCapPolicy::select(const DecisionContext& ctx) {
  if (ctx.geo == nullptr) {
    throw std::logic_error("COSTCAP: decision context has no geo model");
  }
  sync_generation(ctx);
  const std::vector<bool>& eligible = *ctx.eligible;
  int best = -1;
  double best_load = 0.0;
  bool best_in_cap = false;
  for (std::size_t i = 0; i < capacities_.size(); ++i) {
    if (!eligible[i]) continue;
    const bool in_cap = ctx.geo->rtt(ctx.domain, static_cast<int>(i)) <= cap_sec_;
    const double load = load_score(ctx, i);
    // Tier order: any in-cap server beats any out-of-cap server; within a
    // tier the smaller load score wins (ties → lowest index).
    const bool better = best < 0 || (in_cap && !best_in_cap) ||
                        (in_cap == best_in_cap && load < best_load);
    if (better) {
      best = static_cast<int>(i);
      best_load = load;
      best_in_cap = in_cap;
    }
  }
  if (best < 0) throw std::logic_error("COSTCAP: no eligible server");
  note_assignment(best);
  return best;
}

std::string LatencyCapPolicy::name() const { return format_param("COSTCAP", cap_sec_); }

}  // namespace adattl::core
