#include "core/policy_factory.h"

#include <algorithm>
#include <stdexcept>

#include <cstdio>

#include "core/cost_policy.h"
#include "core/dal_policy.h"
#include "core/mrl_policy.h"
#include "core/proximity_policy.h"
#include "core/selection_policies.h"
#include "core/ttl_policy.h"

namespace adattl::core {
namespace {

std::string format_cost_token(const char* base, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s(%g)", base, value);
  return buf;
}

/// Parses the "(value)" parameter of a COST/COSTCAP token; returns false
/// when the token is not of the `base` / `base(value)` form.
bool parse_cost_param(const std::string& tok, const std::string& base, double fallback,
                      double* out) {
  if (tok == base) {
    *out = fallback;
    return true;
  }
  if (tok.size() < base.size() + 3 || tok.rfind(base + "(", 0) != 0 || tok.back() != ')') {
    return false;
  }
  const std::string body = tok.substr(base.size() + 1, tok.size() - base.size() - 2);
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(body, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("'" + tok + "': bad " + base + " parameter");
  }
  if (pos != body.size()) throw std::invalid_argument("'" + tok + "': bad " + base + " parameter");
  *out = value;
  return true;
}

std::string selection_token(const PolicySpec& spec) {
  switch (spec.selection) {
    case SelectionKind::kRR:
      return "RR";
    case SelectionKind::kRR2:
      return "RR2";
    case SelectionKind::kRRn:
      return spec.selection_tiers == kPerDomainClasses
                 ? "RRK"
                 : "RR" + std::to_string(spec.selection_tiers);
    case SelectionKind::kPRR:
      return "PRR";
    case SelectionKind::kPRR2:
      return "PRR2";
    case SelectionKind::kWRR:
      return "WRR";
    case SelectionKind::kDAL:
      return "DAL";
    case SelectionKind::kMRL:
      return "MRL";
    case SelectionKind::kGEO:
      return "GEO";
    case SelectionKind::kCost:
      return format_cost_token("COST", spec.cost_alpha);
    case SelectionKind::kCostCap:
      return format_cost_token("COSTCAP", spec.cost_cap_sec);
  }
  throw std::logic_error("unknown selection kind");
}

/// Fills spec.selection (+tiers); returns true for the DRR/DRR2 aliases.
bool parse_selection(const std::string& tok, PolicySpec* spec) {
  if (tok == "RR") {
    spec->selection = SelectionKind::kRR;
    return false;
  }
  if (tok == "RR2") {
    spec->selection = SelectionKind::kRR2;
    return false;
  }
  if (tok == "RRK") {
    spec->selection = SelectionKind::kRRn;
    spec->selection_tiers = kPerDomainClasses;
    return false;
  }
  // "RR<n>" for n >= 3: the multi-tier extension.
  if (tok.size() > 2 && tok.rfind("RR", 0) == 0 &&
      tok.find_first_not_of("0123456789", 2) == std::string::npos) {
    const int tiers = std::stoi(tok.substr(2));
    if (tiers < 3) throw std::invalid_argument("'" + tok + "': multi-tier RR needs >= 3 tiers");
    spec->selection = SelectionKind::kRRn;
    spec->selection_tiers = tiers;
    return false;
  }
  if (tok == "PRR") {
    spec->selection = SelectionKind::kPRR;
    return false;
  }
  if (tok == "PRR2") {
    spec->selection = SelectionKind::kPRR2;
    return false;
  }
  if (tok == "WRR") {
    spec->selection = SelectionKind::kWRR;
    return false;
  }
  if (tok == "DAL") {
    spec->selection = SelectionKind::kDAL;
    return false;
  }
  if (tok == "MRL") {
    spec->selection = SelectionKind::kMRL;
    return false;
  }
  if (tok == "GEO") {
    spec->selection = SelectionKind::kGEO;
    return false;
  }
  // COSTCAP before COST: the longer token shares the shorter's prefix.
  if (tok.rfind("COSTCAP", 0) == 0) {
    double cap = 0.0;
    if (parse_cost_param(tok, "COSTCAP", spec->cost_cap_sec, &cap)) {
      if (!(cap > 0.0)) throw std::invalid_argument("'" + tok + "': COSTCAP cap must be > 0");
      spec->selection = SelectionKind::kCostCap;
      spec->cost_cap_sec = cap;
      return false;
    }
  }
  if (tok.rfind("COST", 0) == 0) {
    double alpha = 0.0;
    if (parse_cost_param(tok, "COST", spec->cost_alpha, &alpha)) {
      if (!(alpha >= 0.0 && alpha <= 1.0)) {
        throw std::invalid_argument("'" + tok + "': COST alpha must lie in [0, 1]");
      }
      spec->selection = SelectionKind::kCost;
      spec->cost_alpha = alpha;
      return false;
    }
  }
  // The paper writes DRR/DRR2 for "RR/RR2 combined with deterministic
  // (server-aware) adaptive TTL" — same selection rule, different TTL.
  if (tok == "DRR") {
    spec->selection = SelectionKind::kRR;
    return true;
  }
  if (tok == "DRR2") {
    spec->selection = SelectionKind::kRR2;
    return true;
  }
  throw std::invalid_argument("unknown selection policy: '" + tok + "'");
}

}  // namespace

std::string PolicySpec::canonical_name() const {
  // The deterministic family is spelled DRR/DRR2 in the paper.
  std::string sel = selection_token(*this);
  if (server_ttl_term && (selection == SelectionKind::kRR || selection == SelectionKind::kRR2)) {
    sel = (selection == SelectionKind::kRR) ? "DRR" : "DRR2";
  }
  if (ttl_classes == 0) return sel;
  std::string ttl = server_ttl_term ? "TTL/S_" : "TTL/";
  ttl += (ttl_classes == kPerDomainClasses) ? "K" : std::to_string(ttl_classes);
  return sel + "-" + ttl;
}

PolicySpec parse_policy_name(const std::string& name) {
  PolicySpec spec;
  const auto dash = name.find("-TTL/");

  const std::string sel_tok = name.substr(0, dash);
  const bool deterministic_alias = parse_selection(sel_tok, &spec);

  if (dash == std::string::npos) {
    if (deterministic_alias) {
      throw std::invalid_argument("'" + name + "': DRR/DRR2 require a TTL/S_* suffix");
    }
    spec.ttl_classes = 0;  // constant TTL
    return spec;
  }

  std::string ttl_tok = name.substr(dash + 5);  // after "-TTL/"
  if (ttl_tok.rfind("S_", 0) == 0) {
    spec.server_ttl_term = true;
    ttl_tok = ttl_tok.substr(2);
  }
  if (deterministic_alias && !spec.server_ttl_term) {
    throw std::invalid_argument("'" + name + "': the deterministic family uses TTL/S_* policies");
  }
  if (ttl_tok == "K") {
    spec.ttl_classes = kPerDomainClasses;
  } else {
    std::size_t pos = 0;
    int classes = 0;
    try {
      classes = std::stoi(ttl_tok, &pos);
    } catch (const std::exception&) {
      throw std::invalid_argument("'" + name + "': bad TTL class count");
    }
    if (pos != ttl_tok.size() || classes < 1) {
      throw std::invalid_argument("'" + name + "': bad TTL class count");
    }
    spec.ttl_classes = classes;
  }
  return spec;
}

void validate_policy_name(const std::string& name) { (void)parse_policy_name(name); }

bool policy_requires_geo(const std::string& name) {
  PolicySpec spec;
  try {
    spec = parse_policy_name(name);
  } catch (const std::invalid_argument&) {
    return false;  // the policy knob's own check reports unparsable names
  }
  return spec.selection == SelectionKind::kGEO || spec.selection == SelectionKind::kCost ||
         spec.selection == SelectionKind::kCostCap;
}

std::vector<std::string> paper_policy_names() {
  return {
      "RR",           "RR2",           "DAL",
      "PRR-TTL/1",    "PRR-TTL/2",     "PRR-TTL/K",
      "PRR2-TTL/1",   "PRR2-TTL/2",    "PRR2-TTL/K",
      "DRR-TTL/S_1",  "DRR-TTL/S_2",   "DRR-TTL/S_K",
      "DRR2-TTL/S_1", "DRR2-TTL/S_2",  "DRR2-TTL/S_K",
  };
}

SchedulerBundle make_scheduler(const std::string& name, const SchedulerFactoryConfig& config,
                               const AlarmRegistry& alarms, sim::Simulator& sim,
                               sim::RngStream& rng) {
  const PolicySpec spec = parse_policy_name(name);
  if (config.capacities.empty()) throw std::invalid_argument("make_scheduler: no servers");
  if (config.initial_weights.empty()) throw std::invalid_argument("make_scheduler: no domains");

  SchedulerBundle bundle;
  bundle.domains =
      std::make_unique<DomainModel>(config.initial_weights, config.class_threshold);

  const double c1 = *std::max_element(config.capacities.begin(), config.capacities.end());
  std::vector<double> alpha(config.capacities.size());
  for (std::size_t i = 0; i < alpha.size(); ++i) alpha[i] = config.capacities[i] / c1;

  std::unique_ptr<SelectionPolicy> selection;
  const int n = static_cast<int>(config.capacities.size());
  switch (spec.selection) {
    case SelectionKind::kRR:
      selection = std::make_unique<RoundRobinPolicy>(n);
      break;
    case SelectionKind::kRR2:
      selection = std::make_unique<TwoTierRoundRobinPolicy>(n, *bundle.domains);
      break;
    case SelectionKind::kRRn:
      selection = std::make_unique<MultiTierRoundRobinPolicy>(n, *bundle.domains,
                                                              spec.selection_tiers);
      break;
    case SelectionKind::kPRR:
      selection = std::make_unique<ProbabilisticRoundRobinPolicy>(alpha, rng.split());
      break;
    case SelectionKind::kPRR2:
      selection =
          std::make_unique<ProbabilisticTwoTierPolicy>(alpha, *bundle.domains, rng.split());
      break;
    case SelectionKind::kWRR:
      selection = std::make_unique<WeightedRoundRobinPolicy>(config.capacities);
      break;
    case SelectionKind::kDAL:
      selection = std::make_unique<DalPolicy>(sim, *bundle.domains, config.capacities);
      break;
    case SelectionKind::kMRL:
      selection = std::make_unique<MrlPolicy>(sim, *bundle.domains, config.capacities);
      break;
    case SelectionKind::kGEO:
      if (!config.geo) {
        throw std::invalid_argument("make_scheduler: 'GEO' needs a geo model in the config");
      }
      selection = std::make_unique<ProximityPolicy>(config.geo, config.capacities);
      break;
    case SelectionKind::kCost:
      if (!config.geo) {
        throw std::invalid_argument("make_scheduler: 'COST' needs a geo model in the config");
      }
      selection = std::make_unique<CompositeCostPolicy>(config.capacities, spec.cost_alpha);
      break;
    case SelectionKind::kCostCap:
      if (!config.geo) {
        throw std::invalid_argument("make_scheduler: 'COSTCAP' needs a geo model in the config");
      }
      selection = std::make_unique<LatencyCapPolicy>(config.capacities, spec.cost_cap_sec);
      break;
  }

  std::unique_ptr<TtlPolicy> ttl;
  if (spec.ttl_classes == 0) {
    ttl = std::make_unique<ConstantTtlPolicy>(config.reference_ttl);
  } else {
    auto adaptive = std::make_unique<AdaptiveTtlPolicy>(
        *bundle.domains, config.capacities, spec.ttl_classes, spec.server_ttl_term,
        selection->stationary_shares(), config.reference_ttl, config.calibrate_ttl);
    // Weight updates from the estimator flow model → policy automatically.
    bundle.domains->subscribe([p = adaptive.get()] { p->recalibrate(); });
    ttl = std::move(adaptive);
  }

  bundle.scheduler = std::make_unique<DnsScheduler>(spec.canonical_name(), std::move(selection),
                                                    std::move(ttl), alarms, config.geo);
  return bundle;
}

}  // namespace adattl::core
