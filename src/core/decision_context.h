#pragma once

#include <cstdint>
#include <vector>

#include "web/types.h"

namespace adattl::geo {
class GeoModel;
}

namespace adattl::core {

/// Everything the DNS knows at the moment it must pick a server for one
/// address request. The scheduler assembles one of these per decision and
/// hands it to SelectionPolicy::select, so every objective — the paper's
/// pure utilization balancing, proximity-first, or the composite
/// latency/load cost family — reads from the same snapshot.
///
/// Pointer fields reference state owned by the scheduler's collaborators
/// (AlarmRegistry, GeoModel); they are valid only for the duration of the
/// select() call and must not be retained. `eligible` is never null and
/// never all-false (AlarmRegistry guarantees a fallback). `utilization`
/// and `queue_depth` are null until the first monitor observation reaches
/// the registry (and always null in feedback-free unit-test harnesses);
/// `geo` is null when geography is disabled. Policies that require a field
/// beyond `domain` + `eligible` must check and fail loudly rather than
/// guess.
struct DecisionContext {
  /// Requesting local-gateway domain.
  web::DomainId domain = 0;

  /// Alarm-filtered eligibility mask, one entry per server (in-pool AND
  /// not crashed AND not alarmed, with the registry's fallback ladder).
  const std::vector<bool>* eligible = nullptr;

  /// Last observed per-server utilization (busy fraction over the previous
  /// monitor interval), as delivered to AlarmRegistry::observe_full. Stale
  /// by up to one alarm interval — that staleness is the paper's point.
  const std::vector<double>* utilization = nullptr;

  /// Last observed per-server queue depth (same observation as above).
  const std::vector<std::size_t>* queue_depth = nullptr;

  /// Domain↔server RTT model, when geography is enabled.
  const geo::GeoModel* geo = nullptr;

  /// Number of servers currently in the DNS pool (elastic scale-up /
  /// scale-down tracks this; crashed-but-in-pool servers still count).
  int pool_size = 0;

  /// Monotonic counter of monitor observations incorporated into the
  /// registry. Policies that spread assignments between feedback updates
  /// (anti-herding) reset their per-interval state when this advances.
  std::uint64_t feedback_generation = 0;
};

}  // namespace adattl::core
