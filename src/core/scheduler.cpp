#include "core/scheduler.h"

#include <stdexcept>

namespace adattl::core {

DnsScheduler::DnsScheduler(std::string name, std::unique_ptr<SelectionPolicy> selection,
                           std::unique_ptr<TtlPolicy> ttl, const AlarmRegistry& alarms)
    : name_(std::move(name)),
      selection_(std::move(selection)),
      ttl_(std::move(ttl)),
      alarms_(alarms),
      assignments_(alarms.eligible().size(), 0) {
  if (!selection_ || !ttl_) throw std::invalid_argument("DnsScheduler: missing policy");
}

Decision DnsScheduler::schedule(web::DomainId domain) {
  const web::ServerId server = selection_->select(domain, alarms_.eligible());
  const double ttl = ttl_->ttl(domain, server);
  selection_->on_assign(domain, server, ttl);

  ++decisions_;
  assignments_.at(static_cast<std::size_t>(server))++;
  ttl_stat_.add(ttl);
  const Decision decision{server, ttl};
  if (hook_) hook_(domain, decision);
  return decision;
}

}  // namespace adattl::core
