#include "core/scheduler.h"

#include <stdexcept>

namespace adattl::core {

DnsScheduler::DnsScheduler(std::string name, std::unique_ptr<SelectionPolicy> selection,
                           std::unique_ptr<TtlPolicy> ttl, const AlarmRegistry& alarms)
    : name_(std::move(name)),
      selection_(std::move(selection)),
      ttl_(std::move(ttl)),
      alarms_(alarms),
      assignments_(alarms.eligible().size(), 0) {
  if (!selection_ || !ttl_) throw std::invalid_argument("DnsScheduler: missing policy");
}

Decision DnsScheduler::schedule(web::DomainId domain) {
  const web::ServerId server = selection_->select(domain, alarms_.eligible());
  const double ttl = ttl_->ttl(domain, server);
  selection_->on_assign(domain, server, ttl);

  ++decisions_;
  assignments_.at(static_cast<std::size_t>(server))++;
  ttl_stat_.add(ttl);
  const Decision decision{server, ttl};

  obs_decisions_.inc();
  obs_ttl_.observe(ttl);
  if (bound_) {
    // Eligible-set size is only worth the O(N) count when someone listens.
    std::size_t eligible = 0;
    for (const bool e : alarms_.eligible()) eligible += e ? 1 : 0;
    obs_eligible_.observe(static_cast<double>(eligible));
    if (tracer_) {
      tracer_->record(clock_ ? clock_->now() : 0.0, obs::TraceKind::kDecision, domain, server,
                      ttl);
    }
  }

  if (hook_) hook_(domain, decision);
  return decision;
}

void DnsScheduler::bind_observability(obs::MetricsRegistry* registry, obs::EventTracer* tracer,
                                      const sim::Simulator* clock) {
  tracer_ = tracer;
  clock_ = clock;
  bound_ = registry != nullptr || tracer != nullptr;
  if (registry) {
    const int servers = static_cast<int>(assignments_.size());
    obs_decisions_ = registry->counter("scheduler.decisions");
    // TTL range: generous multiple of typical reference TTLs (240 s); the
    // overflow bin catches calibration blow-ups.
    obs_ttl_ = registry->histogram("scheduler.ttl_sec", 3600.0, 144);
    obs_eligible_ = registry->histogram("scheduler.eligible_servers",
                                        static_cast<double>(servers) + 1.0, servers + 1);
  }
}

}  // namespace adattl::core
