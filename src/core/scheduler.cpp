#include "core/scheduler.h"

#include <stdexcept>

#include "geo/geo_model.h"

namespace adattl::core {

DnsScheduler::DnsScheduler(std::string name, std::unique_ptr<SelectionPolicy> selection,
                           std::unique_ptr<TtlPolicy> ttl, const AlarmRegistry& alarms,
                           std::shared_ptr<const geo::GeoModel> geo)
    : name_(std::move(name)),
      selection_(std::move(selection)),
      ttl_(std::move(ttl)),
      alarms_(alarms),
      geo_(std::move(geo)),
      assignments_(alarms.eligible().size(), 0),
      per_server_assignment_rtt_sec_(alarms.eligible().size(), 0.0) {
  if (!selection_ || !ttl_) throw std::invalid_argument("DnsScheduler: missing policy");
}

Decision DnsScheduler::schedule(web::DomainId domain) {
  DecisionContext ctx;
  ctx.domain = domain;
  ctx.eligible = &alarms_.eligible();
  ctx.utilization = &alarms_.last_utilization();
  ctx.queue_depth = &alarms_.last_queue_depth();
  ctx.geo = geo_.get();
  ctx.pool_size = alarms_.pool_size();
  ctx.feedback_generation = alarms_.feedback_generation();

  const web::ServerId server = selection_->select(ctx);
  const double ttl = ttl_->ttl(domain, server);
  selection_->on_assign(domain, server, ttl);

  ++decisions_;
  assignments_.at(static_cast<std::size_t>(server))++;
  ttl_stat_.add(ttl);
  if (geo_) {
    const double rtt = geo_->rtt(domain, server);
    assignment_rtt_sum_sec_ += rtt;
    per_server_assignment_rtt_sec_[static_cast<std::size_t>(server)] += rtt;
  }
  const Decision decision{server, ttl};

  obs_decisions_.inc();
  obs_ttl_.observe(ttl);
  if (bound_) {
    // Eligible-set size is only worth the O(N) count when someone listens.
    std::size_t eligible = 0;
    for (const bool e : alarms_.eligible()) eligible += e ? 1 : 0;
    obs_eligible_.observe(static_cast<double>(eligible));
    if (tracer_) {
      tracer_->record(clock_ ? clock_->now() : 0.0, obs::TraceKind::kDecision, domain, server,
                      ttl);
    }
  }

  if (hook_) hook_(domain, decision);
  return decision;
}

void DnsScheduler::bind_observability(obs::MetricsRegistry* registry, obs::EventTracer* tracer,
                                      const sim::Simulator* clock) {
  tracer_ = tracer;
  clock_ = clock;
  bound_ = registry != nullptr || tracer != nullptr;
  if (registry) {
    const int servers = static_cast<int>(assignments_.size());
    obs_decisions_ = registry->counter("scheduler.decisions");
    // TTL range: generous multiple of typical reference TTLs (240 s); the
    // overflow bin catches calibration blow-ups.
    obs_ttl_ = registry->histogram("scheduler.ttl_sec", 3600.0, 144);
    obs_eligible_ = registry->histogram("scheduler.eligible_servers",
                                        static_cast<double>(servers) + 1.0, servers + 1);
  }
}

}  // namespace adattl::core
