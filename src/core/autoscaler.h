#pragma once

#include <cstdint>
#include <vector>

#include "core/alarm_registry.h"

namespace adattl::core {

/// Watermark autoscaler (extension, arXiv:1103.1207 direction): rides the
/// same monitor-tick feedback the alarm registry consumes and adjusts DNS
/// pool membership one server per action.
///
/// Rule: mean utilization over in-pool servers above `high_watermark` for
/// `hysteresis_ticks` consecutive observations → re-admit the lowest-index
/// parked server; below `low_watermark` for as many ticks → park the
/// highest-index in-pool server (never below `min_servers`). The counter
/// resets whenever the mean re-enters the dead band or an action fires, so
/// flapping needs a sustained swing. Everything is a pure function of the
/// observation sequence — sharded runs feed every shard the same merged
/// view and each shard's autoscaler reaches the same decisions in
/// lockstep.
///
/// Parked servers stay up: they drain their queues and serve pages from
/// cached mappings (conservation holds), they simply receive no new
/// mappings. Crashed servers are not candidates for re-admission.
class Autoscaler {
 public:
  struct Config {
    double high_watermark = 0.75;
    double low_watermark = 0.30;
    int hysteresis_ticks = 3;
    int min_servers = 1;
  };

  Autoscaler(AlarmRegistry& alarms, const Config& config);

  /// Feeds one merged utilization observation (index == ServerId); call
  /// after AlarmRegistry::observe_full on each monitor tick.
  void observe(const std::vector<double>& utilization);

  std::uint64_t scale_up_actions() const { return scale_up_actions_; }
  std::uint64_t scale_down_actions() const { return scale_down_actions_; }

 private:
  AlarmRegistry& alarms_;
  Config config_;
  int ticks_high_ = 0;
  int ticks_low_ = 0;
  std::uint64_t scale_up_actions_ = 0;
  std::uint64_t scale_down_actions_ = 0;
};

}  // namespace adattl::core
