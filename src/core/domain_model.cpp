#include "core/domain_model.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace adattl::core {

DomainModel::DomainModel(std::vector<double> weights, double class_threshold)
    : weights_(std::move(weights)), gamma_(class_threshold) {
  if (weights_.empty()) throw std::invalid_argument("DomainModel: no domains");
  if (gamma_ <= 0.0 || gamma_ >= 1.0) {
    throw std::invalid_argument("DomainModel: class threshold must lie in (0, 1)");
  }
  recompute();
}

void DomainModel::update_weights(std::vector<double> weights) {
  if (weights.size() != weights_.size()) {
    throw std::invalid_argument("DomainModel: weight vector size changed");
  }
  weights_ = std::move(weights);
  recompute();
  for (const auto& cb : listeners_) cb();
}

void DomainModel::recompute() {
  total_ = 0.0;
  max_ = 0.0;
  for (double w : weights_) {
    if (w < 0.0 || !std::isfinite(w)) {
      throw std::invalid_argument("DomainModel: weights must be finite and >= 0");
    }
    total_ += w;
    max_ = std::max(max_, w);
  }
  if (total_ <= 0.0) throw std::invalid_argument("DomainModel: at least one weight must be > 0");
}

double DomainModel::share(DomainId d) const {
  return weights_.at(static_cast<std::size_t>(d)) / total_;
}

double DomainModel::inverse_rel_weight(DomainId d) const {
  const double w = weights_.at(static_cast<std::size_t>(d));
  // Domains with (near-)zero observed load get the largest known factor so
  // they receive the longest TTLs rather than a division blow-up.
  double min_pos = max_;
  for (double v : weights_) {
    if (v > 0.0) min_pos = std::min(min_pos, v);
  }
  return max_ / std::max(w, min_pos);
}

bool DomainModel::is_hot(DomainId d) const { return share(d) > gamma_; }

int DomainModel::hot_count() const {
  int n = 0;
  for (int d = 0; d < num_domains(); ++d) {
    if (is_hot(d)) ++n;
  }
  return n;
}

std::vector<int> DomainModel::partition(int num_classes) const {
  const int k = num_domains();
  std::vector<int> cls(static_cast<std::size_t>(k), 0);

  if (num_classes == 1) return cls;

  if (num_classes == 2) {
    for (int d = 0; d < k; ++d) cls[static_cast<std::size_t>(d)] = is_hot(d) ? 0 : 1;
    return cls;
  }

  if (num_classes == kPerDomainClasses || num_classes >= k) {
    // One class per domain, hottest first; ties broken by domain id so the
    // mapping is deterministic.
    std::vector<int> order(static_cast<std::size_t>(k));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [this](int a, int b) {
      const double wa = weight(a);
      const double wb = weight(b);
      if (wa != wb) return wa > wb;
      return a < b;
    });
    for (int rank = 0; rank < k; ++rank) {
      cls[static_cast<std::size_t>(order[static_cast<std::size_t>(rank)])] = rank;
    }
    return cls;
  }

  if (num_classes < 1) throw std::invalid_argument("DomainModel: bad class count");

  // Log-spaced buckets between the largest and smallest positive weight.
  double min_pos = max_;
  for (double v : weights_) {
    if (v > 0.0) min_pos = std::min(min_pos, v);
  }
  const double span = std::log(max_ / min_pos);
  for (int d = 0; d < k; ++d) {
    const double w = std::max(weight(d), min_pos);
    int c;
    if (span <= 0.0) {
      c = 0;  // all weights equal
    } else {
      c = static_cast<int>(std::log(max_ / w) / span * num_classes);
      c = std::clamp(c, 0, num_classes - 1);
    }
    cls[static_cast<std::size_t>(d)] = c;
  }
  return cls;
}

std::vector<double> DomainModel::class_mean_weights(int num_classes) const {
  const std::vector<int> cls = partition(num_classes);
  const int n = 1 + *std::max_element(cls.begin(), cls.end());
  std::vector<double> sum(static_cast<std::size_t>(n), 0.0);
  std::vector<int> cnt(static_cast<std::size_t>(n), 0);
  for (int d = 0; d < num_domains(); ++d) {
    sum[static_cast<std::size_t>(cls[static_cast<std::size_t>(d)])] += weight(d);
    cnt[static_cast<std::size_t>(cls[static_cast<std::size_t>(d)])]++;
  }
  for (std::size_t c = 0; c < sum.size(); ++c) {
    if (cnt[c] > 0) sum[c] /= cnt[c];
  }
  // Empty buckets inherit a neighbour's mean so TTL factors stay monotone
  // and finite. Leading empties (the γ-threshold "hot" class when no
  // domain's share clears γ) take the hottest non-empty bucket's mean —
  // the split degenerates to one class instead of reporting a zero
  // "hottest" mean that would blow up every TTL factor (found by the
  // proptest_ttl_fairness randomized suite). Trailing empties (possible
  // with log-spaced classes) inherit the nearest hotter bucket as before.
  std::size_t first = 0;
  while (first < sum.size() && cnt[first] == 0) ++first;
  for (std::size_t c = 0; c < first; ++c) sum[c] = sum[first];
  for (std::size_t c = first + 1; c < sum.size(); ++c) {
    if (cnt[c] == 0) sum[c] = sum[c - 1];
  }
  return sum;
}

}  // namespace adattl::core
