#include "core/autoscaler.h"

#include <stdexcept>

namespace adattl::core {

Autoscaler::Autoscaler(AlarmRegistry& alarms, const Config& config)
    : alarms_(alarms), config_(config) {
  if (!(config.low_watermark >= 0.0 && config.low_watermark < config.high_watermark &&
        config.high_watermark <= 1.0)) {
    throw std::invalid_argument("Autoscaler: need 0 <= low < high <= 1");
  }
  if (config.hysteresis_ticks < 1) throw std::invalid_argument("Autoscaler: need >= 1 tick");
  if (config.min_servers < 1) throw std::invalid_argument("Autoscaler: need min_servers >= 1");
}

void Autoscaler::observe(const std::vector<double>& utilization) {
  // Mean utilization over the in-pool servers — the pool the DNS is
  // actually loading. An empty pool (operator scaled everything out)
  // reads as fully loaded so scale-up pressure builds immediately.
  double sum = 0.0;
  int pool = 0;
  for (std::size_t i = 0; i < utilization.size(); ++i) {
    if (!alarms_.in_pool(static_cast<web::ServerId>(i))) continue;
    sum += utilization[i];
    ++pool;
  }
  const double mean = pool > 0 ? sum / pool : 1.0;

  if (mean > config_.high_watermark) {
    ticks_low_ = 0;
    if (++ticks_high_ >= config_.hysteresis_ticks) {
      ticks_high_ = 0;
      // Re-admit the lowest-index parked server that is not down.
      for (std::size_t i = 0; i < utilization.size(); ++i) {
        const auto s = static_cast<web::ServerId>(i);
        if (alarms_.in_pool(s) || alarms_.is_down(s)) continue;
        alarms_.set_in_pool(s, true);
        ++scale_up_actions_;
        break;
      }
    }
  } else if (mean < config_.low_watermark) {
    ticks_high_ = 0;
    if (++ticks_low_ >= config_.hysteresis_ticks) {
      ticks_low_ = 0;
      if (alarms_.pool_size() > config_.min_servers) {
        // Park the highest-index in-pool server.
        for (std::size_t i = utilization.size(); i-- > 0;) {
          const auto s = static_cast<web::ServerId>(i);
          if (!alarms_.in_pool(s)) continue;
          alarms_.set_in_pool(s, false);
          ++scale_down_actions_;
          break;
        }
      }
    }
  } else {
    ticks_high_ = 0;
    ticks_low_ = 0;
  }
}

}  // namespace adattl::core
