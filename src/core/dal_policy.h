#pragma once

#include <vector>

#include "core/domain_model.h"
#include "core/selection_policy.h"
#include "sim/simulator.h"

namespace adattl::core {

/// Capacity-normalized "minimum dynamically accumulated load" baseline
/// (DAL, from Colajanni/Yu/Dias ICDCS'97, in the capacity-aware version the
/// paper evaluates in Figure 3).
///
/// For each mapping handed out, the requesting domain's hidden load share
/// is accumulated on the chosen server for the lifetime of the mapping
/// (its TTL); the next request goes to the server with the minimum
/// accumulated load per unit capacity. This is the strongest
/// homogeneous-era scheme — and the paper's point is that even
/// capacity-normalized it cannot cope with joint skew + heterogeneity.
class DalPolicy : public SelectionPolicy {
 public:
  DalPolicy(sim::Simulator& sim, const DomainModel& domains, std::vector<double> capacities);

  using SelectionPolicy::select;
  web::ServerId select(const DecisionContext& ctx) override;
  void on_assign(web::DomainId domain, web::ServerId server, double ttl) override;
  std::vector<double> stationary_shares() const override;
  std::string name() const override { return "DAL"; }

  /// Currently accumulated (undecayed) load of a server; exposed for tests.
  double accumulated(web::ServerId s) const {
    return accumulated_.at(static_cast<std::size_t>(s));
  }

 private:
  sim::Simulator& sim_;
  const DomainModel& domains_;
  std::vector<double> capacities_;
  std::vector<double> accumulated_;
};

}  // namespace adattl::core
