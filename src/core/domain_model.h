#pragma once

#include <functional>
#include <vector>

#include "web/types.h"

namespace adattl::core {

using web::DomainId;
using web::ServerId;

/// Sentinel class count meaning "one class per domain" (the paper's
/// TTL/K and TTL/S_K granularity).
inline constexpr int kPerDomainClasses = -1;

/// The DNS scheduler's view of the connected domains: their hidden load
/// weights (estimated request rates, invisible to the DNS except through
/// server feedback) and the class partitions derived from them.
///
/// Weights are on an arbitrary positive scale; all algorithms consume
/// ratios (shares, relative-to-max factors), so the estimator can feed
/// hits-per-interval counts directly.
class DomainModel {
 public:
  /// `class_threshold` is the paper's γ: a domain is "hot" when its share
  /// of the total load exceeds γ (default 1/K, set by the caller).
  DomainModel(std::vector<double> weights, double class_threshold);

  int num_domains() const { return static_cast<int>(weights_.size()); }
  double class_threshold() const { return gamma_; }

  /// Replaces the weight vector (estimator update) and notifies listeners.
  void update_weights(std::vector<double> weights);

  const std::vector<double>& weights() const { return weights_; }
  double weight(DomainId d) const { return weights_.at(static_cast<std::size_t>(d)); }

  /// Domain's share of the total load, λ_d / Σλ.
  double share(DomainId d) const;

  /// ω_max / ω_d >= 1: the factor by which the busiest domain outweighs d.
  /// This is the domain term of the TTL/K formula.
  double inverse_rel_weight(DomainId d) const;

  /// Hot/normal partition (share > γ). Used by RR2/PRR2 and TTL/2.
  bool is_hot(DomainId d) const;
  int hot_count() const;

  /// Partition into `num_classes` classes ordered hottest-first (class 0 is
  /// the hottest). Rules:
  ///  * 1 — everything in class 0;
  ///  * 2 — the paper's γ-threshold hot/normal split;
  ///  * kPerDomainClasses — one class per domain, by descending weight;
  ///  * other i — log-spaced weight buckets between ω_max and ω_min
  ///    (generalizes the hot/normal idea; used by the class-count ablation).
  std::vector<int> partition(int num_classes) const;

  /// Mean weight of each class of the given partition, hottest-first.
  std::vector<double> class_mean_weights(int num_classes) const;

  /// Registers a callback fired after every update_weights().
  void subscribe(std::function<void()> cb) { listeners_.push_back(std::move(cb)); }

 private:
  void recompute();

  std::vector<double> weights_;
  double gamma_;
  double total_ = 0.0;
  double max_ = 0.0;
  std::vector<std::function<void()>> listeners_;
};

}  // namespace adattl::core
