#pragma once

#include <string>
#include <vector>

#include "core/domain_model.h"

namespace adattl::core {

/// Strategy that assigns the TTL carried by one address mapping.
class TtlPolicy {
 public:
  virtual ~TtlPolicy() = default;

  /// TTL (seconds) for a mapping of `domain` onto `server`.
  virtual double ttl(web::DomainId domain, web::ServerId server) const = 0;

  /// Re-derives internal factors after a hidden-load-weight update.
  virtual void recalibrate() = 0;

  virtual std::string name() const = 0;
};

/// TTL/1 — the non-adaptive baseline: one constant TTL for everything
/// (the paper uses 240 s).
class ConstantTtlPolicy : public TtlPolicy {
 public:
  explicit ConstantTtlPolicy(double ttl_sec);

  double ttl(web::DomainId, web::ServerId) const override { return value_; }
  void recalibrate() override {}
  std::string name() const override { return "TTL/1"; }

 private:
  double value_;
};

/// The adaptive TTL family (§3): TTL(d, s) = base · f_d · g_s with
///
///   f_d = (mean weight of the hottest class) / (mean weight of d's class)
///         — the domain term; classes per DomainModel::partition
///           (1 ⇒ f ≡ 1; 2 ⇒ hot/normal; kPerDomainClasses ⇒ ω_max/ω_d);
///   g_s = C_s / C_N when the server term is enabled (deterministic
///         TTL/S_i policies), else 1 (probabilistic TTL/i policies).
///
/// `base` is solved so the policy's aggregate address-request rate equals
/// that of a constant `reference_ttl` (the paper's fairness rule, §4.1):
/// each active domain re-resolves once per expected TTL, so
///
///   Σ_d 1 / (base · f_d · E_s[g]) = K / reference_ttl
///   ⇒ base = reference_ttl · Σ_d (1/f_d) / (K · E_s[g]),
///
/// where E_s[g] averages the server term over the selection policy's
/// stationary shares. With calibration disabled (ablation), base is simply
/// reference_ttl.
class AdaptiveTtlPolicy : public TtlPolicy {
 public:
  AdaptiveTtlPolicy(const DomainModel& domains, std::vector<double> capacities, int num_classes,
                    bool server_term, std::vector<double> selection_shares,
                    double reference_ttl = 240.0, bool calibrate = true);

  double ttl(web::DomainId domain, web::ServerId server) const override;
  void recalibrate() override;
  std::string name() const override;

  /// Smallest TTL the policy can emit (hottest class on the weakest server).
  double min_ttl() const;
  double base() const { return base_; }
  int num_classes() const { return num_classes_; }
  bool has_server_term() const { return server_term_; }

  /// Expected aggregate address-request rate (1/s) — exposed so tests can
  /// assert calibration parity across policies.
  double expected_address_rate() const;

 private:
  const DomainModel& domains_;
  std::vector<double> server_factor_;  // g_s
  int num_classes_;
  bool server_term_;
  std::vector<double> shares_;
  double reference_ttl_;
  bool calibrate_;

  std::vector<double> domain_factor_;  // f_d, rebuilt on recalibrate()
  double mean_server_factor_ = 1.0;    // E_s[g]
  double base_ = 0.0;
};

}  // namespace adattl::core
