#include "core/proximity_policy.h"

#include <stdexcept>

namespace adattl::core {

ProximityPolicy::ProximityPolicy(std::shared_ptr<const geo::GeoModel> geo,
                                 std::vector<double> capacities)
    : geo_(std::move(geo)), capacities_(std::move(capacities)) {
  if (!geo_) throw std::invalid_argument("ProximityPolicy: missing geo model");
  if (capacities_.empty()) throw std::invalid_argument("ProximityPolicy: need servers");
  if (geo_->num_servers() != static_cast<int>(capacities_.size())) {
    throw std::invalid_argument("ProximityPolicy: geo/capacity server count mismatch");
  }
  for (double c : capacities_) {
    if (c <= 0) throw std::invalid_argument("ProximityPolicy: capacities must be > 0");
    total_capacity_ += c;
  }
  all_allowed_.assign(capacities_.size(), true);

  const int k = geo_->num_domains();
  near_mask_.resize(static_cast<std::size_t>(k),
                    std::vector<bool>(capacities_.size(), false));
  near_credit_.resize(static_cast<std::size_t>(k),
                      std::vector<double>(capacities_.size(), 0.0));
  for (int d = 0; d < k; ++d) {
    for (web::ServerId s : geo_->nearest_servers(d)) {
      near_mask_[static_cast<std::size_t>(d)][static_cast<std::size_t>(s)] = true;
    }
  }
  global_credit_.assign(capacities_.size(), 0.0);
}

web::ServerId ProximityPolicy::weighted_pick(std::vector<double>& credit,
                                             const std::vector<bool>& allowed,
                                             const std::vector<bool>& eligible) {
  // Smooth WRR over the active subset: only active servers earn credit
  // this round, and the winner pays back the round's total, so credits
  // stay bounded and shares are capacity-proportional within the subset.
  double round_total = 0.0;
  int best = -1;
  for (std::size_t i = 0; i < capacities_.size(); ++i) {
    if (!allowed[i] || !eligible[i]) continue;
    credit[i] += capacities_[i];
    round_total += capacities_[i];
    if (best < 0 || credit[i] > credit[static_cast<std::size_t>(best)]) {
      best = static_cast<int>(i);
    }
  }
  if (best >= 0) credit[static_cast<std::size_t>(best)] -= round_total;
  return best;
}

web::ServerId ProximityPolicy::select(const DecisionContext& ctx) {
  const std::vector<bool>& eligible = *ctx.eligible;
  const auto d = static_cast<std::size_t>(ctx.domain);
  if (d >= near_mask_.size()) throw std::out_of_range("ProximityPolicy: unknown domain");
  // Prefer the domain's nearest servers...
  const web::ServerId local = weighted_pick(near_credit_[d], near_mask_[d], eligible);
  if (local >= 0) return local;
  // ...but availability beats latency: fall back to any eligible server.
  const web::ServerId any = weighted_pick(global_credit_, all_allowed_, eligible);
  if (any < 0) throw std::logic_error("ProximityPolicy: no eligible server");
  return any;
}

std::vector<double> ProximityPolicy::stationary_shares() const {
  // Approximation for TTL calibration: capacity-proportional (exact when
  // regional load matches regional capacity).
  std::vector<double> shares(capacities_.size());
  for (std::size_t i = 0; i < capacities_.size(); ++i) {
    shares[i] = capacities_[i] / total_capacity_;
  }
  return shares;
}

}  // namespace adattl::core
