#include "core/ttl_policy.h"

#include <algorithm>
#include <stdexcept>

namespace adattl::core {

ConstantTtlPolicy::ConstantTtlPolicy(double ttl_sec) : value_(ttl_sec) {
  if (ttl_sec <= 0) throw std::invalid_argument("ConstantTtlPolicy: TTL must be > 0");
}

AdaptiveTtlPolicy::AdaptiveTtlPolicy(const DomainModel& domains, std::vector<double> capacities,
                                     int num_classes, bool server_term,
                                     std::vector<double> selection_shares, double reference_ttl,
                                     bool calibrate)
    : domains_(domains),
      num_classes_(num_classes),
      server_term_(server_term),
      shares_(std::move(selection_shares)),
      reference_ttl_(reference_ttl),
      calibrate_(calibrate) {
  if (capacities.empty()) throw std::invalid_argument("AdaptiveTtlPolicy: need >= 1 server");
  // A zero capacity would put c_min at 0 and drive every g_s = C_s/C_N to
  // infinity; a negative one flips TTL signs. Reject both outright.
  for (double c : capacities) {
    if (c <= 0) throw std::invalid_argument("AdaptiveTtlPolicy: capacities must be > 0");
  }
  if (shares_.size() != capacities.size()) {
    throw std::invalid_argument("AdaptiveTtlPolicy: shares/capacity size mismatch");
  }
  if (reference_ttl <= 0) throw std::invalid_argument("AdaptiveTtlPolicy: reference TTL must be > 0");
  if (num_classes != kPerDomainClasses && num_classes < 1) {
    throw std::invalid_argument("AdaptiveTtlPolicy: bad class count");
  }

  // g_s = C_s / C_N: the weakest server anchors the minimum TTL.
  const double c_min = *std::min_element(capacities.begin(), capacities.end());
  server_factor_.resize(capacities.size());
  for (std::size_t s = 0; s < capacities.size(); ++s) {
    server_factor_[s] = server_term_ ? capacities[s] / c_min : 1.0;
  }
  recalibrate();
}

void AdaptiveTtlPolicy::recalibrate() {
  const int k = domains_.num_domains();
  const std::vector<int> cls = domains_.partition(num_classes_);
  const std::vector<double> mean_w = domains_.class_mean_weights(num_classes_);

  const double hottest = mean_w.front();
  domain_factor_.assign(static_cast<std::size_t>(k), 1.0);
  for (int d = 0; d < k; ++d) {
    const double w = mean_w[static_cast<std::size_t>(cls[static_cast<std::size_t>(d)])];
    domain_factor_[static_cast<std::size_t>(d)] = hottest / std::max(w, 1e-12);
  }

  mean_server_factor_ = 0.0;
  for (std::size_t s = 0; s < server_factor_.size(); ++s) {
    mean_server_factor_ += shares_[s] * server_factor_[s];
  }

  if (calibrate_) {
    double inv_sum = 0.0;
    for (double f : domain_factor_) inv_sum += 1.0 / f;
    base_ = reference_ttl_ * inv_sum / (k * mean_server_factor_);
  } else {
    base_ = reference_ttl_;
  }
}

double AdaptiveTtlPolicy::ttl(web::DomainId domain, web::ServerId server) const {
  return base_ * domain_factor_.at(static_cast<std::size_t>(domain)) *
         server_factor_.at(static_cast<std::size_t>(server));
}

double AdaptiveTtlPolicy::min_ttl() const { return base_; }

double AdaptiveTtlPolicy::expected_address_rate() const {
  double rate = 0.0;
  for (double f : domain_factor_) rate += 1.0 / (base_ * f * mean_server_factor_);
  return rate;
}

std::string AdaptiveTtlPolicy::name() const {
  std::string n = server_term_ ? "TTL/S_" : "TTL/";
  if (num_classes_ == kPerDomainClasses) {
    n += "K";
  } else {
    n += std::to_string(num_classes_);
  }
  return n;
}

}  // namespace adattl::core
