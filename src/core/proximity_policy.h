#pragma once

#include <memory>
#include <vector>

#include "core/selection_policy.h"
#include "geo/geo_model.h"

namespace adattl::core {

/// Proximity-first selection (extension, "GEO"): each domain is served by
/// its nearest servers (minimal RTT in the GeoModel), interleaved by
/// smooth capacity-weighted round robin; if every nearby server is
/// alarmed, selection falls back to capacity-weighted RR over all
/// eligible servers — latency is sacrificed before availability.
///
/// This is the policy a CDN-minded operator would write first. The geo
/// ablation quantifies the paper's implicit trade: GEO minimizes network
/// RTT but concentrates each region's hot domains on that region's
/// servers, so its load balance degrades exactly where adaptive TTL's
/// global spreading shines.
class ProximityPolicy : public SelectionPolicy {
 public:
  ProximityPolicy(std::shared_ptr<const geo::GeoModel> geo, std::vector<double> capacities);

  using SelectionPolicy::select;
  web::ServerId select(const DecisionContext& ctx) override;
  std::vector<double> stationary_shares() const override;
  std::string name() const override { return "GEO"; }

 private:
  web::ServerId weighted_pick(std::vector<double>& credit, const std::vector<bool>& allowed,
                              const std::vector<bool>& eligible);

  std::shared_ptr<const geo::GeoModel> geo_;
  std::vector<double> capacities_;
  double total_capacity_ = 0.0;
  std::vector<bool> all_allowed_;
  std::vector<std::vector<bool>> near_mask_;      // per domain
  std::vector<std::vector<double>> near_credit_;  // per-domain WRR state
  std::vector<double> global_credit_;             // fallback WRR state
};

}  // namespace adattl::core
