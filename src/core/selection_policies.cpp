#include "core/selection_policies.h"

#include <stdexcept>

namespace adattl::core {
namespace {

/// Next eligible server after `last` in cyclic order. The eligibility mask
/// always contains at least one true entry (AlarmRegistry invariant).
int next_eligible(int num_servers, int last, const std::vector<bool>& eligible) {
  for (int step = 1; step <= num_servers; ++step) {
    const int cand = (last + step + num_servers) % num_servers;
    if (eligible[static_cast<std::size_t>(cand)]) return cand;
  }
  throw std::logic_error("selection: no eligible server (AlarmRegistry invariant broken)");
}

}  // namespace

// ---------------------------------------------------------------- RR

RoundRobinPolicy::RoundRobinPolicy(int num_servers) : num_servers_(num_servers) {
  if (num_servers <= 0) throw std::invalid_argument("RR: need >= 1 server");
}

web::ServerId RoundRobinPolicy::select(const DecisionContext& ctx) {
  last_ = next_eligible(num_servers_, last_, *ctx.eligible);
  return last_;
}

std::vector<double> RoundRobinPolicy::stationary_shares() const {
  return std::vector<double>(static_cast<std::size_t>(num_servers_), 1.0 / num_servers_);
}

// ---------------------------------------------------------------- RR2

TwoTierRoundRobinPolicy::TwoTierRoundRobinPolicy(int num_servers, const DomainModel& domains)
    : num_servers_(num_servers), domains_(domains) {
  if (num_servers <= 0) throw std::invalid_argument("RR2: need >= 1 server");
}

web::ServerId TwoTierRoundRobinPolicy::select(const DecisionContext& ctx) {
  int& last = domains_.is_hot(ctx.domain) ? last_hot_ : last_normal_;
  last = next_eligible(num_servers_, last, *ctx.eligible);
  return last;
}

std::vector<double> TwoTierRoundRobinPolicy::stationary_shares() const {
  return std::vector<double>(static_cast<std::size_t>(num_servers_), 1.0 / num_servers_);
}

// ---------------------------------------------------------------- RRn

MultiTierRoundRobinPolicy::MultiTierRoundRobinPolicy(int num_servers,
                                                     const DomainModel& domains,
                                                     int num_tiers)
    : num_servers_(num_servers), domains_(domains), num_tiers_(num_tiers) {
  if (num_servers <= 0) throw std::invalid_argument("RRn: need >= 1 server");
  if (num_tiers != kPerDomainClasses && num_tiers < 1) {
    throw std::invalid_argument("RRn: bad tier count");
  }
}

web::ServerId MultiTierRoundRobinPolicy::select(const DecisionContext& ctx) {
  // Re-derive the class each time: the partition tracks live weight updates.
  const std::vector<int> cls = domains_.partition(num_tiers_);
  const int tier = cls.at(static_cast<std::size_t>(ctx.domain));
  if (static_cast<std::size_t>(tier) >= last_.size()) {
    last_.resize(static_cast<std::size_t>(tier) + 1, -1);
  }
  int& last = last_[static_cast<std::size_t>(tier)];
  last = next_eligible(num_servers_, last, *ctx.eligible);
  return last;
}

std::vector<double> MultiTierRoundRobinPolicy::stationary_shares() const {
  return std::vector<double>(static_cast<std::size_t>(num_servers_), 1.0 / num_servers_);
}

std::string MultiTierRoundRobinPolicy::name() const {
  if (num_tiers_ == kPerDomainClasses) return "RRK";
  return "RR" + std::to_string(num_tiers_);
}

// ---------------------------------------------------------------- WRR

WeightedRoundRobinPolicy::WeightedRoundRobinPolicy(std::vector<double> weights)
    : weights_(std::move(weights)), credit_(weights_.size(), 0.0) {
  if (weights_.empty()) throw std::invalid_argument("WRR: need >= 1 server");
  for (double w : weights_) {
    if (w <= 0) throw std::invalid_argument("WRR: weights must be > 0");
    total_weight_ += w;
  }
}

web::ServerId WeightedRoundRobinPolicy::select(const DecisionContext& ctx) {
  const std::vector<bool>& eligible = *ctx.eligible;
  int best = -1;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    credit_[i] += weights_[i];
    if (!eligible[i]) continue;
    if (best < 0 || credit_[i] > credit_[static_cast<std::size_t>(best)]) {
      best = static_cast<int>(i);
    }
  }
  if (best < 0) throw std::logic_error("WRR: no eligible server");
  credit_[static_cast<std::size_t>(best)] -= total_weight_;
  return best;
}

std::vector<double> WeightedRoundRobinPolicy::stationary_shares() const {
  std::vector<double> shares(weights_.size());
  for (std::size_t i = 0; i < weights_.size(); ++i) shares[i] = weights_[i] / total_weight_;
  return shares;
}

// ---------------------------------------------------------------- PRR

ProbabilisticRoundRobinPolicy::ProbabilisticRoundRobinPolicy(
    std::vector<double> relative_capacities, sim::RngStream rng)
    : alpha_(std::move(relative_capacities)), rng_(rng) {
  if (alpha_.empty()) throw std::invalid_argument("PRR: need >= 1 server");
  for (double a : alpha_) {
    if (a <= 0.0 || a > 1.0) throw std::invalid_argument("PRR: alphas must lie in (0, 1]");
  }
}

web::ServerId ProbabilisticRoundRobinPolicy::advance(int& last,
                                                     const std::vector<bool>& eligible) {
  const int n = static_cast<int>(alpha_.size());
  // Acceptance probability is positive for every server, so this loop
  // terminates with probability one; the bound is a defensive backstop
  // that falls through to plain next-eligible.
  for (int step = 1; step <= 64 * n; ++step) {
    const int cand = (last + step + n) % n;
    if (!eligible[static_cast<std::size_t>(cand)]) continue;
    if (rng_.bernoulli(alpha_[static_cast<std::size_t>(cand)])) {
      last = cand;
      return cand;
    }
  }
  last = next_eligible(n, last, eligible);
  return last;
}

web::ServerId ProbabilisticRoundRobinPolicy::select(const DecisionContext& ctx) {
  return advance(last_, *ctx.eligible);
}

std::vector<double> ProbabilisticRoundRobinPolicy::stationary_shares() const {
  // One full cycle of the pointer visits every server once and accepts
  // S_i with probability α_i, so long-run shares are α_i / Σα.
  double sum = 0.0;
  for (double a : alpha_) sum += a;
  std::vector<double> shares(alpha_.size());
  for (std::size_t i = 0; i < alpha_.size(); ++i) shares[i] = alpha_[i] / sum;
  return shares;
}

// ---------------------------------------------------------------- PRR2

ProbabilisticTwoTierPolicy::ProbabilisticTwoTierPolicy(std::vector<double> relative_capacities,
                                                       const DomainModel& domains,
                                                       sim::RngStream rng)
    : inner_(std::move(relative_capacities), rng), domains_(domains) {}

web::ServerId ProbabilisticTwoTierPolicy::select(const DecisionContext& ctx) {
  int& last = domains_.is_hot(ctx.domain) ? last_hot_ : last_normal_;
  return inner_.advance(last, *ctx.eligible);
}

std::vector<double> ProbabilisticTwoTierPolicy::stationary_shares() const {
  return inner_.stationary_shares();
}

}  // namespace adattl::core
