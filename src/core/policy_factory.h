#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/alarm_registry.h"
#include "core/domain_model.h"
#include "core/scheduler.h"
#include "geo/geo_model.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace adattl::core {

/// Which server-selection rule a composite algorithm uses.
enum class SelectionKind { kRR, kRR2, kRRn, kPRR, kPRR2, kWRR, kDAL, kMRL, kGEO, kCost, kCostCap };

/// Parsed form of an algorithm name such as "DRR2-TTL/S_K".
struct PolicySpec {
  SelectionKind selection = SelectionKind::kRR;
  /// For kRRn: number of round-robin tiers (>= 3, or kPerDomainClasses for
  /// "RRK" — one pointer per domain). Unused otherwise.
  int selection_tiers = 0;
  /// For kCost: weight of the load term in the composite objective.
  double cost_alpha = 0.5;
  /// For kCostCap: the latency budget (seconds) of the two-tier variant.
  double cost_cap_sec = 0.08;
  /// 0 = constant reference TTL (no adaptive policy); otherwise the class
  /// count (1, 2, ..., or kPerDomainClasses for "K").
  int ttl_classes = 0;
  /// True for the deterministic TTL/S_i family (TTL scales with the chosen
  /// server's capacity).
  bool server_ttl_term = false;

  std::string canonical_name() const;
};

/// Parses the paper's algorithm naming scheme. Accepted forms:
///   "RR", "RR2", "DAL", "MRL"                — constant 240 s TTL;
///   "RR3".."RR9", "RRK", "WRR"               — extension baselines;
///   "GEO"                                    — proximity-first selection
///                                              (requires config.geo);
///   "COST", "COST(0.7)"                      — composite load/latency cost,
///                                              alpha in [0, 1] (default 0.5);
///   "COSTCAP", "COSTCAP(0.08)"               — latency-capped two-tier cost,
///                                              cap in seconds (default 0.08);
///   "PRR-TTL/1|2|K", "PRR2-TTL/1|2|K"        — probabilistic family;
///   "DRR-TTL/S_1|S_2|S_K", "DRR2-TTL/S_..."  — deterministic family;
/// plus the free combinations used by ablations (any selection with any
/// TTL/i or TTL/S_i, e.g. "RR2-TTL/3"). Throws std::invalid_argument on
/// anything else.
PolicySpec parse_policy_name(const std::string& name);

/// Checks that `name` parses as an algorithm name; throws the same
/// std::invalid_argument as parse_policy_name. Used by the parameter
/// registry so every config entry point rejects bad names identically.
void validate_policy_name(const std::string& name);

/// True when `name`'s selection rule reads the GeoModel (GEO and the COST
/// family) and therefore needs geography configured. Used by config
/// cross-validation.
bool policy_requires_geo(const std::string& name);

/// The 15 algorithm names evaluated in the paper's figures
/// (RR, RR2, DAL, 6 probabilistic, 6 deterministic).
std::vector<std::string> paper_policy_names();

/// Everything needed to build a scheduler.
struct SchedulerFactoryConfig {
  std::vector<double> capacities;       ///< absolute C_i, index == ServerId
  std::vector<double> initial_weights;  ///< hidden load weights, index == DomainId
  double class_threshold = 0.05;        ///< γ (paper default 1/K)
  double reference_ttl = 240.0;         ///< constant-TTL baseline for calibration
  bool calibrate_ttl = true;            ///< address-rate fairness normalization
  /// Network geography; required by the "GEO" policy, ignored otherwise.
  std::shared_ptr<const geo::GeoModel> geo;
};

/// A scheduler plus the domain model it reads; the model is exposed so the
/// estimator can update weights (the TTL policy auto-recalibrates via the
/// model's change notification).
struct SchedulerBundle {
  std::unique_ptr<DomainModel> domains;
  std::unique_ptr<DnsScheduler> scheduler;
};

/// Builds the named algorithm. `sim` backs DAL's decay timers; `rng` seeds
/// the probabilistic policies (one child stream per scheduler).
SchedulerBundle make_scheduler(const std::string& name, const SchedulerFactoryConfig& config,
                               const AlarmRegistry& alarms, sim::Simulator& sim,
                               sim::RngStream& rng);

}  // namespace adattl::core
