#pragma once

#include <string>
#include <vector>

#include "core/decision_context.h"
#include "web/types.h"

namespace adattl::core {

/// Strategy that picks the Web server for one address request.
///
/// Implementations receive the full DecisionContext (eligibility mask,
/// feedback state, RTT model, pool size); they must return an eligible
/// server (the mask is never all-false — AlarmRegistry guarantees a
/// fallback). Policies read only the fields their objective needs: the
/// paper's round-robin family touches nothing beyond `domain` and
/// `eligible`, which is what the golden equivalence test pins down.
class SelectionPolicy {
 public:
  virtual ~SelectionPolicy() = default;

  virtual web::ServerId select(const DecisionContext& ctx) = 0;

  /// Convenience for callers (tests, microbenches) that have only a mask:
  /// wraps it in a minimal context. Derived classes re-export it with
  /// `using SelectionPolicy::select;`.
  web::ServerId select(web::DomainId domain, const std::vector<bool>& eligible) {
    DecisionContext ctx;
    ctx.domain = domain;
    ctx.eligible = &eligible;
    ctx.pool_size = static_cast<int>(eligible.size());
    return select(ctx);
  }

  /// Hook invoked once the scheduler has fixed the TTL for the mapping;
  /// lets stateful baselines (DAL) account for the assignment.
  virtual void on_assign(web::DomainId /*domain*/, web::ServerId /*server*/, double /*ttl*/) {}

  /// Long-run fraction of mappings each server receives when all servers
  /// stay eligible. Exact for the round-robin family; the TTL calibration
  /// uses it to average the per-server TTL term.
  virtual std::vector<double> stationary_shares() const = 0;

  virtual std::string name() const = 0;
};

}  // namespace adattl::core
