#pragma once

#include <string>
#include <vector>

#include "web/types.h"

namespace adattl::core {

/// Strategy that picks the Web server for one address request.
///
/// Implementations receive the alarm-filtered eligibility mask; they must
/// return an eligible server (the mask is never all-false — AlarmRegistry
/// guarantees a fallback).
class SelectionPolicy {
 public:
  virtual ~SelectionPolicy() = default;

  virtual web::ServerId select(web::DomainId domain, const std::vector<bool>& eligible) = 0;

  /// Hook invoked once the scheduler has fixed the TTL for the mapping;
  /// lets stateful baselines (DAL) account for the assignment.
  virtual void on_assign(web::DomainId /*domain*/, web::ServerId /*server*/, double /*ttl*/) {}

  /// Long-run fraction of mappings each server receives when all servers
  /// stay eligible. Exact for the round-robin family; the TTL calibration
  /// uses it to average the per-server TTL term.
  virtual std::vector<double> stationary_shares() const = 0;

  virtual std::string name() const = 0;
};

}  // namespace adattl::core
