#pragma once

#include <cstdint>
#include <vector>

#include "obs/event_tracer.h"
#include "obs/metrics.h"
#include "sim/time.h"
#include "web/types.h"

namespace adattl::core {

/// The paper's asynchronous feedback mechanism (§2): each server checks its
/// utilization every reporting interval; crossing the alarm threshold θ
/// upward sends an "alarm" signal to the DNS, crossing it downward sends a
/// "normal" signal. Alarmed servers are excluded from scheduling until
/// they recover.
///
/// observe() is wired to the MonitorHub so signals arrive with the same
/// 8-second cadence the paper models.
/// The paper's feedback is utilization-only; a *silent outage* (a stalled
/// server) leaves utilization near zero while its backlog explodes, so a
/// utilization-only DNS keeps feeding the dead server. The optional queue
/// threshold extends the signal: a server is also alarmed while its queue
/// exceeds `queue_threshold` pages (0 = paper-faithful, disabled).
class AlarmRegistry {
 public:
  AlarmRegistry(int num_servers, double threshold, bool enabled = true,
                std::size_t queue_threshold = 0);

  /// Feeds one utilization report (index == ServerId).
  void observe(sim::SimTime now, const std::vector<double>& utilizations);

  /// Feeds utilizations plus queue lengths (for the queue threshold).
  void observe_full(sim::SimTime now, const std::vector<double>& utilizations,
                    const std::vector<std::size_t>& queue_lengths);

  bool is_alarmed(web::ServerId s) const { return alarmed_.at(static_cast<std::size_t>(s)); }

  /// Marks a server down (crashed) or back up. Unlike the utilization
  /// alarm — a *soft* overload hint fed by periodic reports — down is a
  /// *hard* health fact (failed health checks / connection refusals), so
  /// it works even when the alarm feedback is disabled and a down server
  /// only re-enters the eligible set when every candidate is down (the
  /// DNS must answer with something).
  void set_down(web::ServerId s, bool down);
  bool is_down(web::ServerId s) const { return down_.at(static_cast<std::size_t>(s)); }

  /// True for servers eligible to receive new mappings. If every server is
  /// alarmed the DNS must still answer, so all become eligible again.
  const std::vector<bool>& eligible() const { return eligible_; }

  double threshold() const { return threshold_; }
  std::size_t queue_threshold() const { return queue_threshold_; }
  bool enabled() const { return enabled_; }

  /// Signal traffic counters (alarm + normal transitions), a proxy for the
  /// feedback overhead the paper argues is low.
  std::uint64_t alarm_signals() const { return alarm_signals_; }
  std::uint64_t normal_signals() const { return normal_signals_; }

  /// Registers signal counters on `registry` and wires alarm-flip trace
  /// records onto `tracer` (either may be null).
  void bind_observability(obs::MetricsRegistry* registry, obs::EventTracer* tracer);

 private:
  void rebuild_eligible();

  double threshold_;
  std::size_t queue_threshold_;
  bool enabled_;
  std::vector<bool> alarmed_;
  std::vector<bool> down_;
  std::vector<bool> eligible_;
  std::uint64_t alarm_signals_ = 0;
  std::uint64_t normal_signals_ = 0;
  obs::Counter obs_alarms_;
  obs::Counter obs_normals_;
  obs::EventTracer* tracer_ = nullptr;
};

}  // namespace adattl::core
