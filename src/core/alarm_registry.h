#pragma once

#include <cstdint>
#include <vector>

#include "obs/event_tracer.h"
#include "obs/metrics.h"
#include "sim/time.h"
#include "web/types.h"

namespace adattl::core {

/// The paper's asynchronous feedback mechanism (§2): each server checks its
/// utilization every reporting interval; crossing the alarm threshold θ
/// upward sends an "alarm" signal to the DNS, crossing it downward sends a
/// "normal" signal. Alarmed servers are excluded from scheduling until
/// they recover.
///
/// observe() is wired to the MonitorHub so signals arrive with the same
/// 8-second cadence the paper models.
/// The paper's feedback is utilization-only; a *silent outage* (a stalled
/// server) leaves utilization near zero while its backlog explodes, so a
/// utilization-only DNS keeps feeding the dead server. The optional queue
/// threshold extends the signal: a server is also alarmed while its queue
/// exceeds `queue_threshold` pages (0 = paper-faithful, disabled).
class AlarmRegistry {
 public:
  AlarmRegistry(int num_servers, double threshold, bool enabled = true,
                std::size_t queue_threshold = 0);

  /// Feeds one utilization report (index == ServerId).
  void observe(sim::SimTime now, const std::vector<double>& utilizations);

  /// Feeds utilizations plus queue lengths (for the queue threshold).
  void observe_full(sim::SimTime now, const std::vector<double>& utilizations,
                    const std::vector<std::size_t>& queue_lengths);

  bool is_alarmed(web::ServerId s) const { return alarmed_.at(static_cast<std::size_t>(s)); }

  /// Marks a server down (crashed) or back up. Unlike the utilization
  /// alarm — a *soft* overload hint fed by periodic reports — down is a
  /// *hard* health fact (failed health checks / connection refusals), so
  /// it works even when the alarm feedback is disabled and a down server
  /// only re-enters the eligible set when every candidate is down (the
  /// DNS must answer with something).
  void set_down(web::ServerId s, bool down);
  bool is_down(web::ServerId s) const { return down_.at(static_cast<std::size_t>(s)); }

  /// Elastic pool membership (extension): a scaled-down server leaves the
  /// DNS pool — no new mappings — but keeps draining its queue and serving
  /// pages from cached mappings until they expire, so work is conserved.
  /// Distinct from both the soft alarm and the hard down bit: membership
  /// is an *operator/autoscaler decision*, not a health observation.
  void set_in_pool(web::ServerId s, bool in_pool);
  bool in_pool(web::ServerId s) const { return in_pool_.at(static_cast<std::size_t>(s)); }

  /// Servers currently in the DNS pool.
  int pool_size() const { return pool_size_; }

  /// Count of effective pool-membership flips (scale-up + scale-down).
  std::uint64_t pool_changes() const { return pool_changes_; }

  /// True for servers eligible to receive new mappings. If every server is
  /// alarmed the DNS must still answer, so eligibility widens along the
  /// ladder in-pool-healthy → in-pool-up → any-up → all.
  const std::vector<bool>& eligible() const { return eligible_; }

  /// Last utilization / queue observation incorporated by observe_full —
  /// retained (even when alarm signalling is disabled) so the scheduler
  /// can hand feedback state to cost-based policies via DecisionContext.
  const std::vector<double>& last_utilization() const { return last_utilization_; }
  const std::vector<std::size_t>& last_queue_depth() const { return last_queue_depth_; }

  /// Monotonic count of incorporated observations (DecisionContext's
  /// anti-herding epoch).
  std::uint64_t feedback_generation() const { return feedback_generation_; }

  double threshold() const { return threshold_; }
  std::size_t queue_threshold() const { return queue_threshold_; }
  bool enabled() const { return enabled_; }

  /// Signal traffic counters (alarm + normal transitions), a proxy for the
  /// feedback overhead the paper argues is low.
  std::uint64_t alarm_signals() const { return alarm_signals_; }
  std::uint64_t normal_signals() const { return normal_signals_; }

  /// Registers signal counters on `registry` and wires alarm-flip trace
  /// records onto `tracer` (either may be null).
  void bind_observability(obs::MetricsRegistry* registry, obs::EventTracer* tracer);

 private:
  void rebuild_eligible();

  double threshold_;
  std::size_t queue_threshold_;
  bool enabled_;
  std::vector<bool> alarmed_;
  std::vector<bool> down_;
  std::vector<bool> in_pool_;
  std::vector<bool> eligible_;
  std::vector<double> last_utilization_;
  std::vector<std::size_t> last_queue_depth_;
  int pool_size_ = 0;
  std::uint64_t pool_changes_ = 0;
  std::uint64_t feedback_generation_ = 0;
  std::uint64_t alarm_signals_ = 0;
  std::uint64_t normal_signals_ = 0;
  obs::Counter obs_alarms_;
  obs::Counter obs_normals_;
  obs::EventTracer* tracer_ = nullptr;
};

}  // namespace adattl::core
