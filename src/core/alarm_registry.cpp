#include "core/alarm_registry.h"

#include <stdexcept>

namespace adattl::core {

AlarmRegistry::AlarmRegistry(int num_servers, double threshold, bool enabled,
                             std::size_t queue_threshold)
    : threshold_(threshold),
      queue_threshold_(queue_threshold),
      enabled_(enabled),
      alarmed_(static_cast<std::size_t>(num_servers), false),
      down_(static_cast<std::size_t>(num_servers), false),
      eligible_(static_cast<std::size_t>(num_servers), true) {
  if (num_servers <= 0) throw std::invalid_argument("AlarmRegistry: need >= 1 server");
  if (threshold <= 0.0 || threshold > 1.0) {
    throw std::invalid_argument("AlarmRegistry: threshold must lie in (0, 1]");
  }
}

void AlarmRegistry::observe(sim::SimTime now, const std::vector<double>& utilizations) {
  observe_full(now, utilizations, {});
}

void AlarmRegistry::bind_observability(obs::MetricsRegistry* registry,
                                       obs::EventTracer* tracer) {
  tracer_ = tracer;
  if (registry) {
    obs_alarms_ = registry->counter("alarms.alarm_signals");
    obs_normals_ = registry->counter("alarms.normal_signals");
  }
}

void AlarmRegistry::observe_full(sim::SimTime now, const std::vector<double>& utilizations,
                                 const std::vector<std::size_t>& queue_lengths) {
  if (!enabled_) return;
  if (utilizations.size() != alarmed_.size()) {
    throw std::invalid_argument("AlarmRegistry: utilization vector size mismatch");
  }
  if (!queue_lengths.empty() && queue_lengths.size() != alarmed_.size()) {
    throw std::invalid_argument("AlarmRegistry: queue vector size mismatch");
  }
  bool changed = false;
  for (std::size_t i = 0; i < utilizations.size(); ++i) {
    const bool queue_over = queue_threshold_ > 0 && !queue_lengths.empty() &&
                            queue_lengths[i] > queue_threshold_;
    const bool over = utilizations[i] > threshold_ || queue_over;
    if (over && !alarmed_[i]) {
      alarmed_[i] = true;
      ++alarm_signals_;
      obs_alarms_.inc();
      if (tracer_) {
        tracer_->record(now, obs::TraceKind::kAlarm, static_cast<std::int32_t>(i), 0,
                        utilizations[i]);
      }
      changed = true;
    } else if (!over && alarmed_[i]) {
      alarmed_[i] = false;
      ++normal_signals_;
      obs_normals_.inc();
      if (tracer_) {
        tracer_->record(now, obs::TraceKind::kNormal, static_cast<std::int32_t>(i), 0,
                        utilizations[i]);
      }
      changed = true;
    }
  }
  if (changed) rebuild_eligible();
}

void AlarmRegistry::set_down(web::ServerId s, bool down) {
  // Down marking bypasses the enabled_ gate on purpose: disabling the
  // paper's utilization feedback must not make the DNS route to servers
  // it knows are dead.
  if (down_.at(static_cast<std::size_t>(s)) == down) return;
  down_[static_cast<std::size_t>(s)] = down;
  rebuild_eligible();
}

void AlarmRegistry::rebuild_eligible() {
  bool any = false;
  bool any_up = false;
  for (std::size_t i = 0; i < alarmed_.size(); ++i) {
    eligible_[i] = !alarmed_[i] && !down_[i];
    any = any || eligible_[i];
    any_up = any_up || !down_[i];
  }
  if (!any && any_up) {
    // Every up server is overloaded: the DNS still has to answer address
    // requests, so fall back to considering all servers that are not down.
    for (std::size_t i = 0; i < down_.size(); ++i) eligible_[i] = !down_[i];
  } else if (!any) {
    // The whole site is down; answers must still name someone.
    eligible_.assign(eligible_.size(), true);
  }
}

}  // namespace adattl::core
