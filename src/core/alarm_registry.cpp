#include "core/alarm_registry.h"

#include <stdexcept>

namespace adattl::core {

AlarmRegistry::AlarmRegistry(int num_servers, double threshold, bool enabled,
                             std::size_t queue_threshold)
    : threshold_(threshold),
      queue_threshold_(queue_threshold),
      enabled_(enabled),
      alarmed_(static_cast<std::size_t>(num_servers), false),
      down_(static_cast<std::size_t>(num_servers), false),
      in_pool_(static_cast<std::size_t>(num_servers), true),
      eligible_(static_cast<std::size_t>(num_servers), true),
      last_utilization_(static_cast<std::size_t>(num_servers), 0.0),
      last_queue_depth_(static_cast<std::size_t>(num_servers), 0),
      pool_size_(num_servers) {
  if (num_servers <= 0) throw std::invalid_argument("AlarmRegistry: need >= 1 server");
  if (threshold <= 0.0 || threshold > 1.0) {
    throw std::invalid_argument("AlarmRegistry: threshold must lie in (0, 1]");
  }
}

void AlarmRegistry::observe(sim::SimTime now, const std::vector<double>& utilizations) {
  observe_full(now, utilizations, {});
}

void AlarmRegistry::bind_observability(obs::MetricsRegistry* registry,
                                       obs::EventTracer* tracer) {
  tracer_ = tracer;
  if (registry) {
    obs_alarms_ = registry->counter("alarms.alarm_signals");
    obs_normals_ = registry->counter("alarms.normal_signals");
  }
}

void AlarmRegistry::observe_full(sim::SimTime now, const std::vector<double>& utilizations,
                                 const std::vector<std::size_t>& queue_lengths) {
  // Retain the feedback snapshot for DecisionContext consumers before the
  // enabled_ gate: disabling the paper's alarm signalling must not blind
  // cost-based policies or the autoscaler to observed utilization.
  if (utilizations.size() == alarmed_.size()) {
    last_utilization_ = utilizations;
    if (queue_lengths.size() == alarmed_.size()) last_queue_depth_ = queue_lengths;
    ++feedback_generation_;
  }
  if (!enabled_) return;
  if (utilizations.size() != alarmed_.size()) {
    throw std::invalid_argument("AlarmRegistry: utilization vector size mismatch");
  }
  if (!queue_lengths.empty() && queue_lengths.size() != alarmed_.size()) {
    throw std::invalid_argument("AlarmRegistry: queue vector size mismatch");
  }
  bool changed = false;
  for (std::size_t i = 0; i < utilizations.size(); ++i) {
    const bool queue_over = queue_threshold_ > 0 && !queue_lengths.empty() &&
                            queue_lengths[i] > queue_threshold_;
    const bool over = utilizations[i] > threshold_ || queue_over;
    if (over && !alarmed_[i]) {
      alarmed_[i] = true;
      ++alarm_signals_;
      obs_alarms_.inc();
      if (tracer_) {
        tracer_->record(now, obs::TraceKind::kAlarm, static_cast<std::int32_t>(i), 0,
                        utilizations[i]);
      }
      changed = true;
    } else if (!over && alarmed_[i]) {
      alarmed_[i] = false;
      ++normal_signals_;
      obs_normals_.inc();
      if (tracer_) {
        tracer_->record(now, obs::TraceKind::kNormal, static_cast<std::int32_t>(i), 0,
                        utilizations[i]);
      }
      changed = true;
    }
  }
  if (changed) rebuild_eligible();
}

void AlarmRegistry::set_down(web::ServerId s, bool down) {
  // Down marking bypasses the enabled_ gate on purpose: disabling the
  // paper's utilization feedback must not make the DNS route to servers
  // it knows are dead.
  if (down_.at(static_cast<std::size_t>(s)) == down) return;
  down_[static_cast<std::size_t>(s)] = down;
  rebuild_eligible();
}

void AlarmRegistry::set_in_pool(web::ServerId s, bool in_pool) {
  if (in_pool_.at(static_cast<std::size_t>(s)) == in_pool) return;
  in_pool_[static_cast<std::size_t>(s)] = in_pool;
  pool_size_ += in_pool ? 1 : -1;
  ++pool_changes_;
  rebuild_eligible();
}

void AlarmRegistry::rebuild_eligible() {
  // Widening ladder: in-pool healthy servers first; if every in-pool
  // server is alarmed, any in-pool up server; if the pool is empty or
  // fully down, any up server (the DNS must answer with something); if
  // the whole site is down, everyone.
  bool any = false;
  bool any_pool_up = false;
  bool any_up = false;
  for (std::size_t i = 0; i < alarmed_.size(); ++i) {
    eligible_[i] = in_pool_[i] && !alarmed_[i] && !down_[i];
    any = any || eligible_[i];
    any_pool_up = any_pool_up || (in_pool_[i] && !down_[i]);
    any_up = any_up || !down_[i];
  }
  if (any) return;
  if (any_pool_up) {
    for (std::size_t i = 0; i < down_.size(); ++i) eligible_[i] = in_pool_[i] && !down_[i];
  } else if (any_up) {
    for (std::size_t i = 0; i < down_.size(); ++i) eligible_[i] = !down_[i];
  } else {
    eligible_.assign(eligible_.size(), true);
  }
}

}  // namespace adattl::core
