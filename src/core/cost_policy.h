#pragma once

#include <vector>

#include "core/selection_policy.h"

namespace adattl::core {

/// Shared machinery of the composite-objective family (arXiv:1402.2090
/// direction): a per-server *load score* built from the DecisionContext's
/// feedback fields,
///
///   load_i = util_i + pressure · pending_i · (C_max / C_i)
///
/// where util_i is the last observed utilization (stale by up to one
/// monitor interval) and pending_i counts mappings handed to S_i since
/// that observation. The pending term is anti-herding: between feedback
/// updates a pure min-util rule would dump every mapping on the same
/// server; charging each assignment a small capacity-normalized
/// utilization estimate spreads them. The counter resets whenever
/// `feedback_generation` advances.
class CostPolicyBase : public SelectionPolicy {
 public:
  explicit CostPolicyBase(std::vector<double> capacities);

  std::vector<double> stationary_shares() const override;

 protected:
  /// Estimated utilization one more mapping adds to the largest server
  /// within a monitor interval (smaller servers are charged C_max/C_i
  /// times more). The value only has to be the right order of magnitude —
  /// it trades herding suppression against responsiveness to real load.
  static constexpr double kAssignmentPressure = 0.02;

  double load_score(const DecisionContext& ctx, std::size_t i) const;
  /// Call at select() entry, before any load_score: resets the pending
  /// counters when the feedback generation advanced.
  void sync_generation(const DecisionContext& ctx);
  void note_assignment(web::ServerId server);

  std::vector<double> capacities_;
  double total_capacity_ = 0.0;
  double max_capacity_ = 0.0;

 private:
  std::vector<double> pending_;
  std::uint64_t seen_generation_ = 0;
};

/// COST(alpha): weighted sum of utilization imbalance and normalized
/// client↔server RTT,
///
///   cost_i = alpha · load_i + (1 − alpha) · rtt(d, i) / max_rtt,
///
/// minimized over eligible servers (ties → lowest index). alpha = 1 is a
/// pure feedback-driven balancer, alpha = 0 pure proximity (and herds by
/// design); intermediate alphas trace the utilization-vs-latency frontier
/// in BENCH_geo.json. Requires geography — the factory rejects it when no
/// GeoModel is configured.
class CompositeCostPolicy : public CostPolicyBase {
 public:
  CompositeCostPolicy(std::vector<double> capacities, double alpha);

  using SelectionPolicy::select;
  web::ServerId select(const DecisionContext& ctx) override;
  std::string name() const override;

  double alpha() const { return alpha_; }

 private:
  double alpha_;
};

/// COSTCAP(cap_sec): the latency-capped two-tier variant. Tier 1 is the
/// set of eligible servers within `cap_sec` RTT of the requesting domain;
/// within it the pure load score decides (latency below the cap is "good
/// enough", so balance freely). Only when no in-cap server is eligible
/// does selection widen to all eligible servers — availability beats the
/// latency budget.
class LatencyCapPolicy : public CostPolicyBase {
 public:
  LatencyCapPolicy(std::vector<double> capacities, double cap_sec);

  using SelectionPolicy::select;
  web::ServerId select(const DecisionContext& ctx) override;
  std::string name() const override;

  double cap_sec() const { return cap_sec_; }

 private:
  double cap_sec_;
};

}  // namespace adattl::core
