#include "core/load_estimator.h"

#include <algorithm>
#include <stdexcept>

namespace adattl::core {

LoadEstimator::LoadEstimator(DomainModel& model, bool oracle)
    : model_(model), oracle_(oracle) {}

void LoadEstimator::observe(const std::vector<std::uint64_t>& hits_per_domain,
                            double window_sec) {
  if (oracle_) return;
  if (hits_per_domain.size() != static_cast<std::size_t>(model_.num_domains())) {
    throw std::invalid_argument("LoadEstimator: domain count mismatch");
  }
  if (window_sec <= 0) throw std::invalid_argument("LoadEstimator: bad window");

  std::vector<double> rates(hits_per_domain.size());
  for (std::size_t d = 0; d < rates.size(); ++d) {
    rates[d] = static_cast<double>(hits_per_domain[d]) / window_sec;
  }
  ++windows_;

  // Empty (all-zero) windows are real observations: a traffic lull must
  // decay the running estimate, or an idle domain's stale weight would be
  // frozen forever. They therefore flow into incorporate() like any other
  // window; only the *install* is guarded, because a weight vector with no
  // positive entry carries no ranking information (and DomainModel rejects
  // it), so the model keeps its previous weights until traffic returns.
  std::vector<double> weights = incorporate(rates);
  if (weights.empty()) return;
  bool any_positive = false;
  for (const double w : weights) any_positive = any_positive || w > 0.0;
  if (any_positive) model_.update_weights(std::move(weights));
}

EwmaLoadEstimator::EwmaLoadEstimator(DomainModel& model, double smoothing, bool oracle)
    : LoadEstimator(model, oracle),
      smoothing_(smoothing),
      rates_(static_cast<std::size_t>(model.num_domains()), 0.0) {
  if (smoothing <= 0.0 || smoothing > 1.0) {
    throw std::invalid_argument("EwmaLoadEstimator: smoothing must lie in (0, 1]");
  }
}

std::vector<double> EwmaLoadEstimator::incorporate(const std::vector<double>& rates) {
  if (!seeded_) {
    // The first *non-empty* window seeds the estimate outright; an all-zero
    // window before any traffic carries no information to seed from.
    bool any = false;
    for (const double r : rates) any = any || r > 0.0;
    if (!any) return {};
    rates_ = rates;
    seeded_ = true;
    return rates_;
  }
  for (std::size_t d = 0; d < rates_.size(); ++d) {
    rates_[d] = smoothing_ * rates[d] + (1.0 - smoothing_) * rates_[d];
  }
  return rates_;
}

SlidingWindowLoadEstimator::SlidingWindowLoadEstimator(DomainModel& model, int window_count,
                                                       bool oracle)
    : LoadEstimator(model, oracle),
      window_count_(window_count),
      sums_(static_cast<std::size_t>(model.num_domains()), 0.0) {
  if (window_count < 1) {
    throw std::invalid_argument("SlidingWindowLoadEstimator: need >= 1 window");
  }
}

std::vector<double> SlidingWindowLoadEstimator::incorporate(const std::vector<double>& rates) {
  history_.push_back(rates);
  if (static_cast<int>(history_.size()) > window_count_) history_.pop_front();
  // The sums are recomputed from the retained windows every time. An
  // add-then-subtract running sum looks cheaper, but it keeps every
  // rounding error it ever made: over the millions of collection windows a
  // long large-population run produces, cancellation (one huge flash-crowd
  // window absorbing the small ones added after it) drifts the "sum" of
  // the current window arbitrarily far from the true one. The deque holds
  // at most window_count_ vectors, so a fresh sum is O(windows · domains)
  // — trivial — and exact in the only sense that matters: it is a function
  // of the retained windows alone.
  std::fill(sums_.begin(), sums_.end(), 0.0);
  for (const std::vector<double>& window : history_) {
    for (std::size_t d = 0; d < sums_.size(); ++d) sums_[d] += window[d];
  }
  std::vector<double> avg(sums_.size());
  for (std::size_t d = 0; d < sums_.size(); ++d) {
    avg[d] = sums_[d] / static_cast<double>(history_.size());
  }
  return avg;
}

}  // namespace adattl::core
