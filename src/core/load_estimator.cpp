#include "core/load_estimator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace adattl::core {

LoadEstimator::LoadEstimator(DomainModel& model, bool oracle)
    : model_(model), oracle_(oracle) {}

void LoadEstimator::observe(const std::vector<std::uint64_t>& hits_per_domain,
                            double window_sec) {
  if (oracle_) return;
  if (hits_per_domain.size() != static_cast<std::size_t>(model_.num_domains())) {
    throw std::invalid_argument("LoadEstimator: domain count mismatch");
  }
  if (window_sec <= 0) throw std::invalid_argument("LoadEstimator: bad window");

  std::vector<double> rates(hits_per_domain.size());
  for (std::size_t d = 0; d < rates.size(); ++d) {
    rates[d] = static_cast<double>(hits_per_domain[d]) / window_sec;
  }

  // Empty (all-zero) windows are real observations: a traffic lull must
  // decay the running estimate, or an idle domain's stale weight would be
  // frozen forever. They therefore flow into incorporate() like any other
  // window; only the *install* is guarded, because a weight vector with no
  // positive entry carries no ranking information (and DomainModel rejects
  // it), so the model keeps its previous weights until traffic returns.
  std::vector<double> weights = incorporate(rates);
  if (weights.empty()) return;
  // Only windows the estimator actually folded in count as observed —
  // incorporate() returning empty means the window was discarded without
  // touching any state (e.g. an all-zero window before an EWMA has seeded),
  // and the kEstimatorUpdate trace must not report it as an update.
  ++windows_;
  bool any_positive = false;
  for (const double w : weights) any_positive = any_positive || w > 0.0;
  if (any_positive) {
    // Floor the *installed* vector (estimator state keeps its true
    // values): a forecast that clamped to exact zero must not install a
    // hard-zero weight — see kMinInstallFraction in the header.
    double hottest = 0.0;
    for (const double w : weights) hottest = std::max(hottest, w);
    const double floor = kMinInstallFraction * hottest;
    for (double& w : weights) w = std::max(w, floor);
    model_.update_weights(std::move(weights));
  }
}

std::vector<double> LoadEstimator::scaled_prior(const std::vector<double>& rates) const {
  const std::vector<double>& prior = model_.weights();
  double rate_total = 0.0;
  for (const double r : rates) rate_total += r;
  double prior_total = 0.0;
  for (const double w : prior) prior_total += w;
  if (rate_total <= 0.0 || prior_total <= 0.0 || prior.size() != rates.size()) {
    return rates;
  }
  std::vector<double> scaled(prior.size());
  const double scale = rate_total / prior_total;
  for (std::size_t d = 0; d < prior.size(); ++d) scaled[d] = prior[d] * scale;
  return scaled;
}

namespace {

bool any_positive_rate(const std::vector<double>& rates) {
  for (const double r : rates) {
    if (r > 0.0) return true;
  }
  return false;
}

}  // namespace

EwmaLoadEstimator::EwmaLoadEstimator(DomainModel& model, double smoothing, bool oracle,
                                     bool seed_from_model)
    : LoadEstimator(model, oracle),
      smoothing_(smoothing),
      rates_(static_cast<std::size_t>(model.num_domains()), 0.0),
      seed_from_model_(seed_from_model) {
  if (smoothing <= 0.0 || smoothing > 1.0) {
    throw std::invalid_argument("EwmaLoadEstimator: smoothing must lie in (0, 1]");
  }
}

std::vector<double> EwmaLoadEstimator::incorporate(const std::vector<double>& rates) {
  if (!seeded_) {
    // An all-zero window before any traffic carries no information to seed
    // from: discard it (empty return — it does not count as observed).
    if (!any_positive_rate(rates)) return {};
    seeded_ = true;
    if (seed_from_model_) {
      // Cold start: the model holds deliberately-uninformed (uniform)
      // weights, but they are still the configured prior. Seeding the
      // estimate *outright* from the first non-empty window would anchor
      // it with zero smoothing — a flash crowd landing in that window
      // becomes the whole estimate. Instead seed from the prior (scale-
      // matched to the observed total) and let the first window blend
      // through the normal smoothing path below.
      rates_ = scaled_prior(rates);
    } else {
      // Warm start: the model already holds the true weights; the first
      // measured window is strictly better information, take it whole.
      rates_ = rates;
      return rates_;
    }
  }
  for (std::size_t d = 0; d < rates_.size(); ++d) {
    rates_[d] = smoothing_ * rates[d] + (1.0 - smoothing_) * rates_[d];
  }
  return rates_;
}

SlidingWindowLoadEstimator::SlidingWindowLoadEstimator(DomainModel& model, int window_count,
                                                       bool oracle)
    : LoadEstimator(model, oracle),
      window_count_(window_count),
      sums_(static_cast<std::size_t>(model.num_domains()), 0.0) {
  if (window_count < 1) {
    throw std::invalid_argument("SlidingWindowLoadEstimator: need >= 1 window");
  }
}

std::vector<double> SlidingWindowLoadEstimator::incorporate(const std::vector<double>& rates) {
  history_.push_back(rates);
  if (static_cast<int>(history_.size()) > window_count_) history_.pop_front();
  // The sums are recomputed from the retained windows every time. An
  // add-then-subtract running sum looks cheaper, but it keeps every
  // rounding error it ever made: over the millions of collection windows a
  // long large-population run produces, cancellation (one huge flash-crowd
  // window absorbing the small ones added after it) drifts the "sum" of
  // the current window arbitrarily far from the true one. The deque holds
  // at most window_count_ vectors, so a fresh sum is O(windows · domains)
  // — trivial — and exact in the only sense that matters: it is a function
  // of the retained windows alone.
  std::fill(sums_.begin(), sums_.end(), 0.0);
  for (const std::vector<double>& window : history_) {
    for (std::size_t d = 0; d < sums_.size(); ++d) sums_[d] += window[d];
  }
  std::vector<double> avg(sums_.size());
  for (std::size_t d = 0; d < sums_.size(); ++d) {
    avg[d] = sums_[d] / static_cast<double>(history_.size());
  }
  return avg;
}

HoltWintersLoadEstimator::HoltWintersLoadEstimator(DomainModel& model, double smoothing,
                                                   double trend, bool oracle,
                                                   bool seed_from_model)
    : LoadEstimator(model, oracle),
      alpha_(smoothing),
      beta_(trend),
      level_(static_cast<std::size_t>(model.num_domains()), 0.0),
      trend_(static_cast<std::size_t>(model.num_domains()), 0.0),
      seed_from_model_(seed_from_model) {
  if (smoothing <= 0.0 || smoothing > 1.0) {
    throw std::invalid_argument("HoltWintersLoadEstimator: smoothing must lie in (0, 1]");
  }
  if (trend < 0.0 || trend > 1.0) {
    throw std::invalid_argument("HoltWintersLoadEstimator: trend must lie in [0, 1]");
  }
}

std::vector<double> HoltWintersLoadEstimator::incorporate(const std::vector<double>& rates) {
  if (!seeded_) {
    if (!any_positive_rate(rates)) return {};
    seeded_ = true;
    // Trend starts at zero either way: one window gives no slope.
    if (seed_from_model_) {
      level_ = scaled_prior(rates);
      // fall through: the first window blends through the normal update.
    } else {
      level_ = rates;
      return level_;
    }
  }
  std::vector<double> forecast(level_.size());
  for (std::size_t d = 0; d < level_.size(); ++d) {
    const double prev_level = level_[d];
    const double next_level = alpha_ * rates[d] + (1.0 - alpha_) * (prev_level + trend_[d]);
    trend_[d] = beta_ * (next_level - prev_level) + (1.0 - beta_) * trend_[d];
    level_[d] = next_level;
    // Install the one-step-ahead forecast, floored at zero (a cooling
    // domain's negative trend must not forecast a negative rate).
    forecast[d] = std::max(next_level + trend_[d], 0.0);
  }
  return forecast;
}

ArLoadEstimator::ArLoadEstimator(DomainModel& model, int order, bool oracle)
    : LoadEstimator(model, oracle),
      order_(order),
      history_cap_(static_cast<std::size_t>(std::max(16, 4 * order))),
      history_(static_cast<std::size_t>(model.num_domains())) {
  if (order < 1) throw std::invalid_argument("ArLoadEstimator: order must be >= 1");
}

std::vector<double> ArLoadEstimator::incorporate(const std::vector<double>& rates) {
  std::vector<double> forecast(rates.size());
  for (std::size_t d = 0; d < rates.size(); ++d) {
    std::deque<double>& h = history_[d];
    h.push_back(rates[d]);
    if (h.size() > history_cap_) h.pop_front();
    forecast[d] = predict(h);
  }
  return forecast;
}

double ArLoadEstimator::predict(const std::deque<double>& history) const {
  const std::size_t p = static_cast<std::size_t>(order_);
  const std::size_t n = history.size();
  // The design matrix needs at least p+2 rows (p lags + intercept + one
  // degree of freedom); below that, the newest observation is the forecast.
  const std::size_t rows = n > p ? n - p : 0;
  if (rows < p + 2) return history.back();

  // Least-squares fit of x_t = c + Σ φ_i x_{t-i} via the normal equations
  // A^T A θ = A^T y with θ = [c, φ_1..φ_p]. dim = p + 1 is tiny (≤ 17), so
  // dense Gaussian elimination with partial pivoting is exact enough and
  // allocation is negligible at one fit per domain per window.
  const std::size_t dim = p + 1;
  std::vector<double> ata(dim * dim, 0.0);
  std::vector<double> aty(dim, 0.0);
  std::vector<double> row(dim, 1.0);  // row[0] = intercept
  for (std::size_t t = p; t < n; ++t) {
    for (std::size_t i = 1; i <= p; ++i) row[i] = history[t - i];
    const double y = history[t];
    for (std::size_t i = 0; i < dim; ++i) {
      aty[i] += row[i] * y;
      for (std::size_t j = i; j < dim; ++j) ata[i * dim + j] += row[i] * row[j];
    }
  }
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t j = 0; j < i; ++j) ata[i * dim + j] = ata[j * dim + i];
  }

  // Gaussian elimination with partial pivoting on [ata | aty].
  std::vector<std::size_t> perm(dim);
  for (std::size_t i = 0; i < dim; ++i) perm[i] = i;
  for (std::size_t col = 0; col < dim; ++col) {
    std::size_t pivot = col;
    double best = std::fabs(ata[perm[col] * dim + col]);
    for (std::size_t r = col + 1; r < dim; ++r) {
      const double v = std::fabs(ata[perm[r] * dim + col]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    // A (near-)singular system means the lag matrix carries no usable
    // signal (e.g. constant history); persistence is the honest forecast.
    if (best < 1e-12) return history.back();
    std::swap(perm[col], perm[pivot]);
    const double diag = ata[perm[col] * dim + col];
    for (std::size_t r = col + 1; r < dim; ++r) {
      const double f = ata[perm[r] * dim + col] / diag;
      if (f == 0.0) continue;
      for (std::size_t j = col; j < dim; ++j) {
        ata[perm[r] * dim + j] -= f * ata[perm[col] * dim + j];
      }
      aty[perm[r]] -= f * aty[perm[col]];
    }
  }
  std::vector<double> theta(dim, 0.0);
  for (std::size_t i = dim; i-- > 0;) {
    double acc = aty[perm[i]];
    for (std::size_t j = i + 1; j < dim; ++j) acc -= ata[perm[i] * dim + j] * theta[j];
    theta[i] = acc / ata[perm[i] * dim + i];
  }

  // One-step forecast from the newest p observations.
  double pred = theta[0];
  for (std::size_t i = 1; i <= p; ++i) pred += theta[i] * history[n - i];
  if (!std::isfinite(pred)) return history.back();
  return std::max(pred, 0.0);
}

}  // namespace adattl::core
