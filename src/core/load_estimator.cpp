#include "core/load_estimator.h"

#include <stdexcept>

namespace adattl::core {

LoadEstimator::LoadEstimator(DomainModel& model, bool oracle)
    : model_(model), oracle_(oracle) {}

void LoadEstimator::observe(const std::vector<std::uint64_t>& hits_per_domain,
                            double window_sec) {
  if (oracle_) return;
  if (hits_per_domain.size() != static_cast<std::size_t>(model_.num_domains())) {
    throw std::invalid_argument("LoadEstimator: domain count mismatch");
  }
  if (window_sec <= 0) throw std::invalid_argument("LoadEstimator: bad window");

  std::vector<double> rates(hits_per_domain.size());
  bool any = false;
  for (std::size_t d = 0; d < rates.size(); ++d) {
    rates[d] = static_cast<double>(hits_per_domain[d]) / window_sec;
    any = any || rates[d] > 0.0;
  }
  ++windows_;
  if (!any) return;  // empty window: keep the previous weights

  std::vector<double> weights = incorporate(rates);
  if (!weights.empty()) model_.update_weights(std::move(weights));
}

EwmaLoadEstimator::EwmaLoadEstimator(DomainModel& model, double smoothing, bool oracle)
    : LoadEstimator(model, oracle),
      smoothing_(smoothing),
      rates_(static_cast<std::size_t>(model.num_domains()), 0.0) {
  if (smoothing <= 0.0 || smoothing > 1.0) {
    throw std::invalid_argument("EwmaLoadEstimator: smoothing must lie in (0, 1]");
  }
}

std::vector<double> EwmaLoadEstimator::incorporate(const std::vector<double>& rates) {
  for (std::size_t d = 0; d < rates_.size(); ++d) {
    // The first non-empty window seeds the estimate outright.
    rates_[d] = seeded_ ? smoothing_ * rates[d] + (1.0 - smoothing_) * rates_[d] : rates[d];
  }
  seeded_ = true;
  return rates_;
}

SlidingWindowLoadEstimator::SlidingWindowLoadEstimator(DomainModel& model, int window_count,
                                                       bool oracle)
    : LoadEstimator(model, oracle),
      window_count_(window_count),
      sums_(static_cast<std::size_t>(model.num_domains()), 0.0) {
  if (window_count < 1) {
    throw std::invalid_argument("SlidingWindowLoadEstimator: need >= 1 window");
  }
}

std::vector<double> SlidingWindowLoadEstimator::incorporate(const std::vector<double>& rates) {
  history_.push_back(rates);
  for (std::size_t d = 0; d < sums_.size(); ++d) sums_[d] += rates[d];
  if (static_cast<int>(history_.size()) > window_count_) {
    for (std::size_t d = 0; d < sums_.size(); ++d) sums_[d] -= history_.front()[d];
    history_.pop_front();
  }
  std::vector<double> avg(sums_.size());
  for (std::size_t d = 0; d < sums_.size(); ++d) {
    avg[d] = sums_[d] / static_cast<double>(history_.size());
  }
  return avg;
}

}  // namespace adattl::core
