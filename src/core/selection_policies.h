#pragma once

#include <memory>

#include "core/domain_model.h"
#include "core/selection_policy.h"
#include "sim/random.h"

namespace adattl::core {

/// Plain round robin (the NCSA scheme): cycles one pointer over all
/// servers, skipping alarmed ones.
class RoundRobinPolicy : public SelectionPolicy {
 public:
  explicit RoundRobinPolicy(int num_servers);

  using SelectionPolicy::select;
  web::ServerId select(const DecisionContext& ctx) override;
  std::vector<double> stationary_shares() const override;
  std::string name() const override { return "RR"; }

 private:
  int num_servers_;
  int last_ = -1;
};

/// Two-tier round robin (RR2, from ICDCS'97 [4]): hot domains (share > γ)
/// and normal domains each cycle their own pointer, so a burst of hot-
/// domain mappings cannot land on consecutive occasions on the same server
/// that normal domains also concentrate on.
class TwoTierRoundRobinPolicy : public SelectionPolicy {
 public:
  TwoTierRoundRobinPolicy(int num_servers, const DomainModel& domains);

  using SelectionPolicy::select;
  web::ServerId select(const DecisionContext& ctx) override;
  std::vector<double> stationary_shares() const override;
  std::string name() const override { return "RR2"; }

 private:
  int num_servers_;
  const DomainModel& domains_;
  int last_hot_ = -1;
  int last_normal_ = -1;
};

/// N-tier round robin: the natural generalization of RR2 (extension beyond
/// the paper, which stops at two tiers). Domains are partitioned into
/// `num_tiers` classes by hidden load weight (DomainModel::partition) and
/// each class cycles its own round-robin pointer, so same-class bursts
/// spread while classes stay decoupled. RR2 == MultiTierRoundRobinPolicy
/// with 2 tiers and the γ rule; kPerDomainClasses gives one pointer per
/// domain.
class MultiTierRoundRobinPolicy : public SelectionPolicy {
 public:
  MultiTierRoundRobinPolicy(int num_servers, const DomainModel& domains, int num_tiers);

  using SelectionPolicy::select;
  web::ServerId select(const DecisionContext& ctx) override;
  std::vector<double> stationary_shares() const override;
  std::string name() const override;

 private:
  int num_servers_;
  const DomainModel& domains_;
  int num_tiers_;
  std::vector<int> last_;  // one pointer per tier, grown on demand
};

/// Smooth weighted round robin (WRR — extension baseline): the classic
/// deterministic capacity-proportional interleaving (as popularized by
/// nginx). Per decision every server's credit grows by its weight; the
/// highest-credit eligible server is chosen and pays back the total
/// weight. Exact capacity-proportional shares with zero randomness —
/// PRR's deterministic cousin, useful to separate "capacity awareness"
/// from "randomized tie-breaking" in comparisons.
class WeightedRoundRobinPolicy : public SelectionPolicy {
 public:
  explicit WeightedRoundRobinPolicy(std::vector<double> weights);

  using SelectionPolicy::select;
  web::ServerId select(const DecisionContext& ctx) override;
  std::vector<double> stationary_shares() const override;
  std::string name() const override { return "WRR"; }

 private:
  std::vector<double> weights_;
  std::vector<double> credit_;
  double total_weight_ = 0.0;
};

/// Probabilistic round robin (PRR, §3.1): advancing cyclically from the
/// last chosen server, candidate S_i is accepted with probability
/// α_i = C_i / C_1, otherwise skipped. Long-run shares are proportional to
/// server capacity, which is how the probabilistic family absorbs
/// heterogeneity.
class ProbabilisticRoundRobinPolicy : public SelectionPolicy {
 public:
  ProbabilisticRoundRobinPolicy(std::vector<double> relative_capacities, sim::RngStream rng);

  using SelectionPolicy::select;
  web::ServerId select(const DecisionContext& ctx) override;
  std::vector<double> stationary_shares() const override;
  std::string name() const override { return "PRR"; }

 private:
  friend class ProbabilisticTwoTierPolicy;
  web::ServerId advance(int& last, const std::vector<bool>& eligible);

  std::vector<double> alpha_;
  sim::RngStream rng_;
  int last_ = -1;
};

/// PRR2: the two-tier pointer structure of RR2 with PRR's capacity-
/// probabilistic skipping.
class ProbabilisticTwoTierPolicy : public SelectionPolicy {
 public:
  ProbabilisticTwoTierPolicy(std::vector<double> relative_capacities, const DomainModel& domains,
                             sim::RngStream rng);

  using SelectionPolicy::select;
  web::ServerId select(const DecisionContext& ctx) override;
  std::vector<double> stationary_shares() const override;
  std::string name() const override { return "PRR2"; }

 private:
  ProbabilisticRoundRobinPolicy inner_;
  const DomainModel& domains_;
  int last_hot_ = -1;
  int last_normal_ = -1;
};

}  // namespace adattl::core
