#include "core/dal_policy.h"

#include <algorithm>
#include <stdexcept>

namespace adattl::core {

DalPolicy::DalPolicy(sim::Simulator& sim, const DomainModel& domains,
                     std::vector<double> capacities)
    : sim_(sim),
      domains_(domains),
      capacities_(std::move(capacities)),
      accumulated_(capacities_.size(), 0.0) {
  if (capacities_.empty()) throw std::invalid_argument("DAL: need >= 1 server");
  for (double c : capacities_) {
    if (c <= 0) throw std::invalid_argument("DAL: capacities must be > 0");
  }
}

web::ServerId DalPolicy::select(const DecisionContext& ctx) {
  const std::vector<bool>& eligible = *ctx.eligible;
  int best = -1;
  double best_norm = 0.0;
  for (std::size_t i = 0; i < capacities_.size(); ++i) {
    if (!eligible[i]) continue;
    const double norm = accumulated_[i] / capacities_[i];
    if (best < 0 || norm < best_norm) {
      best = static_cast<int>(i);
      best_norm = norm;
    }
  }
  if (best < 0) throw std::logic_error("DAL: no eligible server");
  return best;
}

void DalPolicy::on_assign(web::DomainId domain, web::ServerId server, double ttl) {
  const double load = domains_.share(domain);
  accumulated_[static_cast<std::size_t>(server)] += load;
  // The mapping stops attracting *new* sessions when its TTL expires;
  // decay the accumulated contribution then.
  sim_.after(std::max(ttl, 0.0), sim::assert_inline([this, server, load] {
               accumulated_[static_cast<std::size_t>(server)] -= load;
             }));
}

std::vector<double> DalPolicy::stationary_shares() const {
  // Load-normalized assignment converges to capacity-proportional shares.
  double sum = 0.0;
  for (double c : capacities_) sum += c;
  std::vector<double> shares(capacities_.size());
  for (std::size_t i = 0; i < capacities_.size(); ++i) shares[i] = capacities_[i] / sum;
  return shares;
}

}  // namespace adattl::core
