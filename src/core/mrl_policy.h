#pragma once

#include <vector>

#include "core/domain_model.h"
#include "core/selection_policy.h"
#include "sim/simulator.h"

namespace adattl::core {

/// Capacity-normalized "minimum residual load" baseline (MRL, the second
/// homogeneous-era scheme from Colajanni/Yu/Dias ICDCS'97 that the paper
/// cites alongside DAL).
///
/// Where DAL charges a mapping's whole hidden load for its entire TTL,
/// MRL tracks the *residual* load: the expected hits a mapping will still
/// inject before it expires, which decays linearly from λ_d·TTL to zero.
/// The next request goes to the server with the minimum residual per unit
/// capacity.
///
/// Implementation note: the residual of server i at time t is
///   Σ_m λ_m · (expiry_m − t)   over its live mappings m,
/// which we maintain in O(1) per query as (Σ λ_m·expiry_m) − t·(Σ λ_m),
/// with per-mapping expiry events retiring the two partial sums.
class MrlPolicy : public SelectionPolicy {
 public:
  MrlPolicy(sim::Simulator& sim, const DomainModel& domains, std::vector<double> capacities);

  using SelectionPolicy::select;
  web::ServerId select(const DecisionContext& ctx) override;
  void on_assign(web::DomainId domain, web::ServerId server, double ttl) override;
  std::vector<double> stationary_shares() const override;
  std::string name() const override { return "MRL"; }

  /// Current residual load of a server; exposed for tests.
  double residual(web::ServerId s) const;

 private:
  sim::Simulator& sim_;
  const DomainModel& domains_;
  std::vector<double> capacities_;
  std::vector<double> rate_sum_;         // Σ λ_m over live mappings
  std::vector<double> rate_expiry_sum_;  // Σ λ_m · expiry_m over live mappings
};

}  // namespace adattl::core
