#include "geo/geo_model.h"

#include <stdexcept>

namespace adattl::geo {

GeoModel::GeoModel(std::vector<std::vector<double>> rtt_sec) : rtt_(std::move(rtt_sec)) {
  if (rtt_.empty() || rtt_.front().empty()) {
    throw std::invalid_argument("GeoModel: empty RTT matrix");
  }
  const std::size_t servers = rtt_.front().size();
  for (const auto& row : rtt_) {
    if (row.size() != servers) throw std::invalid_argument("GeoModel: ragged RTT matrix");
    for (double r : row) {
      if (r < 0) throw std::invalid_argument("GeoModel: negative RTT");
    }
  }
}

GeoModel GeoModel::regions(int num_domains, int num_servers, int num_regions,
                           double intra_rtt_sec, double inter_rtt_sec) {
  if (num_domains < 1 || num_servers < 1) {
    throw std::invalid_argument("GeoModel::regions: need domains and servers");
  }
  if (num_regions < 1) throw std::invalid_argument("GeoModel::regions: need >= 1 region");
  if (intra_rtt_sec < 0 || inter_rtt_sec < intra_rtt_sec) {
    throw std::invalid_argument("GeoModel::regions: need 0 <= intra <= inter RTT");
  }
  std::vector<std::vector<double>> rtt(
      static_cast<std::size_t>(num_domains),
      std::vector<double>(static_cast<std::size_t>(num_servers), inter_rtt_sec));
  for (int d = 0; d < num_domains; ++d) {
    for (int s = 0; s < num_servers; ++s) {
      if (d % num_regions == s % num_regions) {
        rtt[static_cast<std::size_t>(d)][static_cast<std::size_t>(s)] = intra_rtt_sec;
      }
    }
  }
  return GeoModel(std::move(rtt));
}

std::vector<web::ServerId> GeoModel::nearest_servers(web::DomainId domain) const {
  const auto& row = rtt_.at(static_cast<std::size_t>(domain));
  double best = row.front();
  for (double r : row) best = std::min(best, r);
  std::vector<web::ServerId> out;
  for (std::size_t s = 0; s < row.size(); ++s) {
    if (row[s] == best) out.push_back(static_cast<web::ServerId>(s));
  }
  return out;
}

double GeoModel::mean_rtt(web::DomainId domain) const {
  const auto& row = rtt_.at(static_cast<std::size_t>(domain));
  double sum = 0.0;
  for (double r : row) sum += r;
  return sum / static_cast<double>(row.size());
}

}  // namespace adattl::geo
