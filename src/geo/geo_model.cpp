#include "geo/geo_model.h"

#include <algorithm>
#include <stdexcept>

namespace adattl::geo {

GeoModel::GeoModel(std::vector<std::vector<double>> rtt_sec) {
  if (rtt_sec.empty() || rtt_sec.front().empty()) {
    throw std::invalid_argument("GeoModel: empty RTT matrix");
  }
  const std::size_t servers = rtt_sec.front().size();
  num_domains_ = static_cast<int>(rtt_sec.size());
  num_servers_ = static_cast<int>(servers);
  rtt_.reserve(rtt_sec.size() * servers);
  for (const auto& row : rtt_sec) {
    if (row.size() != servers) throw std::invalid_argument("GeoModel: ragged RTT matrix");
    for (double r : row) {
      if (r < 0) throw std::invalid_argument("GeoModel: negative RTT");
      max_rtt_ = std::max(max_rtt_, r);
      rtt_.push_back(r);
    }
  }
}

GeoModel GeoModel::regions(int num_domains, int num_servers, int num_regions,
                           double intra_rtt_sec, double inter_rtt_sec) {
  if (num_domains < 1 || num_servers < 1) {
    throw std::invalid_argument("GeoModel::regions: need domains and servers");
  }
  if (num_regions < 1) throw std::invalid_argument("GeoModel::regions: need >= 1 region");
  if (intra_rtt_sec < 0 || inter_rtt_sec < intra_rtt_sec) {
    throw std::invalid_argument("GeoModel::regions: need 0 <= intra <= inter RTT");
  }
  std::vector<std::vector<double>> rtt(
      static_cast<std::size_t>(num_domains),
      std::vector<double>(static_cast<std::size_t>(num_servers), inter_rtt_sec));
  for (int d = 0; d < num_domains; ++d) {
    for (int s = 0; s < num_servers; ++s) {
      if (d % num_regions == s % num_regions) {
        rtt[static_cast<std::size_t>(d)][static_cast<std::size_t>(s)] = intra_rtt_sec;
      }
    }
  }
  return GeoModel(std::move(rtt));
}

std::vector<web::ServerId> GeoModel::nearest_servers(web::DomainId domain) const {
  if (domain < 0 || domain >= num_domains_) {
    throw std::out_of_range("GeoModel::nearest_servers: unknown domain");
  }
  const std::size_t base =
      static_cast<std::size_t>(domain) * static_cast<std::size_t>(num_servers_);
  double best = rtt_[base];
  for (int s = 1; s < num_servers_; ++s) {
    best = std::min(best, rtt_[base + static_cast<std::size_t>(s)]);
  }
  std::vector<web::ServerId> out;
  for (int s = 0; s < num_servers_; ++s) {
    if (rtt_[base + static_cast<std::size_t>(s)] == best) {
      out.push_back(static_cast<web::ServerId>(s));
    }
  }
  return out;
}

double GeoModel::mean_rtt(web::DomainId domain) const {
  if (domain < 0 || domain >= num_domains_) {
    throw std::out_of_range("GeoModel::mean_rtt: unknown domain");
  }
  const std::size_t base =
      static_cast<std::size_t>(domain) * static_cast<std::size_t>(num_servers_);
  double sum = 0.0;
  for (int s = 0; s < num_servers_; ++s) sum += rtt_[base + static_cast<std::size_t>(s)];
  return sum / static_cast<double>(num_servers_);
}

}  // namespace adattl::geo
