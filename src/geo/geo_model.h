#pragma once

#include <vector>

#include "web/types.h"

namespace adattl::geo {

/// Network geography for a *geographically* distributed Web site
/// (extension — the paper models load only; this module adds the
/// proximity dimension its title implies and its sequel literature
/// develops, so the load/latency tension can be measured).
///
/// The model is a per-(domain, server) round-trip time. The provided
/// builder assigns domains and servers to `R` regions round-robin and
/// uses two RTT levels (intra-/inter-region); arbitrary matrices can be
/// supplied directly for irregular topologies.
class GeoModel {
 public:
  /// Explicit matrix: rtt_sec[domain][server], all entries >= 0.
  explicit GeoModel(std::vector<std::vector<double>> rtt_sec);

  /// Region-based builder: domain d lives in region d % regions, server s
  /// in region s % regions; same region → intra_rtt, else inter_rtt.
  /// Round-robin server placement mirrors real deployments: consecutive
  /// capacity ranks spread across sites, so every region has big and
  /// small boxes.
  static GeoModel regions(int num_domains, int num_servers, int num_regions,
                          double intra_rtt_sec, double inter_rtt_sec);

  int num_domains() const { return static_cast<int>(rtt_.size()); }
  int num_servers() const {
    return rtt_.empty() ? 0 : static_cast<int>(rtt_.front().size());
  }

  /// Round-trip time between a client of `domain` and `server`.
  double rtt(web::DomainId domain, web::ServerId server) const {
    return rtt_.at(static_cast<std::size_t>(domain)).at(static_cast<std::size_t>(server));
  }

  /// Servers of minimal RTT for a domain (the domain's "local" servers).
  std::vector<web::ServerId> nearest_servers(web::DomainId domain) const;

  /// Mean RTT a domain would see under uniform server choice.
  double mean_rtt(web::DomainId domain) const;

 private:
  std::vector<std::vector<double>> rtt_;
};

}  // namespace adattl::geo
