#pragma once

#include <cassert>
#include <vector>

#include "web/types.h"

namespace adattl::geo {

/// Network geography for a *geographically* distributed Web site
/// (extension — the paper models load only; this module adds the
/// proximity dimension its title implies and its sequel literature
/// develops, so the load/latency tension can be measured).
///
/// The model is a per-(domain, server) round-trip time. The provided
/// builder assigns domains and servers to `R` regions round-robin and
/// uses two RTT levels (intra-/inter-region); arbitrary matrices can be
/// supplied directly for irregular topologies.
///
/// Storage is a flat row-major vector: `rtt()` sits on the per-request
/// dispatch path (ClientPool charges both flight legs of every page) and
/// on every COST-family select(), so it must be one multiply-add and one
/// load — bounds are validated at construction, asserted in debug builds.
class GeoModel {
 public:
  /// Explicit matrix: rtt_sec[domain][server], all entries >= 0.
  explicit GeoModel(std::vector<std::vector<double>> rtt_sec);

  /// Region-based builder: domain d lives in region d % regions, server s
  /// in region s % regions; same region → intra_rtt, else inter_rtt.
  /// Round-robin server placement mirrors real deployments: consecutive
  /// capacity ranks spread across sites, so every region has big and
  /// small boxes.
  static GeoModel regions(int num_domains, int num_servers, int num_regions,
                          double intra_rtt_sec, double inter_rtt_sec);

  int num_domains() const { return num_domains_; }
  int num_servers() const { return num_servers_; }

  /// Round-trip time between a client of `domain` and `server`.
  double rtt(web::DomainId domain, web::ServerId server) const {
    assert(domain >= 0 && domain < num_domains_ && "GeoModel::rtt: domain out of range");
    assert(server >= 0 && server < num_servers_ && "GeoModel::rtt: server out of range");
    return rtt_[static_cast<std::size_t>(domain) * static_cast<std::size_t>(num_servers_) +
                static_cast<std::size_t>(server)];
  }

  /// Largest RTT in the matrix — the normalizer for composite objectives.
  double max_rtt() const { return max_rtt_; }

  /// Servers of minimal RTT for a domain (the domain's "local" servers).
  std::vector<web::ServerId> nearest_servers(web::DomainId domain) const;

  /// Mean RTT a domain would see under uniform server choice.
  double mean_rtt(web::DomainId domain) const;

 private:
  int num_domains_ = 0;
  int num_servers_ = 0;
  double max_rtt_ = 0.0;
  std::vector<double> rtt_;  // row-major [domain * num_servers_ + server]
};

}  // namespace adattl::geo
