#pragma once

namespace adattl::sim {

/// Simulated time, in seconds since the start of the run.
///
/// A plain double keeps the kernel simple and is precise enough for this
/// model: runs last ~1.8e4 simulated seconds, far below the ~2^53 ULP
/// boundary where double-second arithmetic would lose sub-microsecond
/// resolution.
using SimTime = double;

/// Sentinel for "never" / unset timestamps.
inline constexpr SimTime kTimeNever = -1.0;

}  // namespace adattl::sim
