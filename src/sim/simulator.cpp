#include "sim/simulator.h"

namespace adattl::sim {

std::uint64_t Simulator::run_until(SimTime end) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.next_time() <= end) {
    auto [t, cb] = queue_.pop();
    now_ = t;
    cb();
    ++n;
  }
  // Advance the clock to the horizon even if the queue drained early, so
  // time-weighted statistics close their final interval at `end`.
  if (now_ < end) now_ = end;
  dispatched_ += n;
  return n;
}

std::uint64_t Simulator::run() {
  std::uint64_t n = 0;
  while (!queue_.empty()) {
    auto [t, cb] = queue_.pop();
    now_ = t;
    cb();
    ++n;
  }
  dispatched_ += n;
  return n;
}

}  // namespace adattl::sim
