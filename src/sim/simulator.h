#pragma once

#include <cstdint>
#include <stdexcept>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace adattl::sim {

/// Sequential discrete-event simulator.
///
/// Components schedule callbacks at absolute or relative simulated times;
/// run_until()/run() dispatch them in timestamp order (FIFO among equal
/// timestamps). This is the CSIM-replacement kernel the whole model runs
/// on: clients, servers, monitors and the DNS are all just event closures.
///
/// The kernel is single-threaded by design — runs are deterministic given
/// a fixed seed, which the statistics methodology (replications with
/// distinct seeds) relies on.
class Simulator {
 public:
  /// Current simulated time in seconds.
  SimTime now() const { return now_; }

  /// Schedules `cb` to run at absolute time `at`; throws std::invalid_argument
  /// if `at` lies in the past.
  EventHandle at(SimTime at, EventQueue::Callback cb) {
    if (at < now_) throw std::invalid_argument("Simulator::at: time in the past");
    return queue_.schedule(at, std::move(cb));
  }

  /// Schedules `cb` to run `delay` seconds from now; negative delays throw.
  ///
  /// This is the kernel's dominant scheduling pattern (think times, service
  /// completions, RTT legs), so it validates the delay sign directly:
  /// `now_ + delay >= now_` holds for any delay >= 0 under IEEE rounding,
  /// which skips the redundant absolute past-time comparison in at().
  EventHandle after(SimTime delay, EventQueue::Callback cb) {
    if (delay < 0.0) throw std::invalid_argument("Simulator::after: negative delay");
    return queue_.schedule(now_ + delay, std::move(cb));
  }

  /// Cancels a pending event; returns true if it was still pending.
  bool cancel(EventHandle h) { return queue_.cancel(h); }

  /// Runs events until the queue is exhausted or simulated time would pass
  /// `end`. Events exactly at `end` are executed. Returns the number of
  /// events dispatched.
  std::uint64_t run_until(SimTime end);

  /// Runs until the queue is exhausted.
  std::uint64_t run();

  /// Total events dispatched since construction.
  std::uint64_t events_dispatched() const { return dispatched_; }

  /// Live events still pending.
  std::size_t pending() const { return queue_.size(); }

  /// Largest number of simultaneously pending events seen so far.
  std::size_t peak_pending() const { return queue_.peak_size(); }

  /// Successful cancellations since construction.
  std::uint64_t cancels() const { return queue_.cancels(); }

  /// Pre-sizes the event queue for `n` concurrent events (see
  /// EventQueue::reserve).
  void reserve(std::size_t n) { queue_.reserve(n); }

 private:
  EventQueue queue_;
  SimTime now_ = 0.0;
  std::uint64_t dispatched_ = 0;
};

}  // namespace adattl::sim
