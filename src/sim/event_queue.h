#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/inline_callback.h"
#include "sim/time.h"

namespace adattl::sim {

/// Opaque handle to a scheduled event, usable to cancel it.
///
/// A handle encodes (slot, generation): slots are recycled through a free
/// list once their event fires or is cancelled, and every recycle bumps the
/// slot's generation, so a stale handle (for an event that already fired or
/// was cancelled) never aliases a newer event and is safely ignored by
/// cancel().
struct EventHandle {
  std::uint64_t id = 0;

  friend bool operator==(EventHandle a, EventHandle b) { return a.id == b.id; }
  explicit operator bool() const { return id != 0; }
};

/// Min-heap of timestamped callbacks with stable FIFO ordering among
/// events scheduled for the same instant (ties break by insertion order,
/// which keeps simulations deterministic for a fixed seed).
///
/// Internals are built for the simulation's steady-state churn (pop one
/// event, schedule its successor, ~1.5M times per run):
///  * the heap holds 24-byte (time, seq, slot) keys in a 4-ary layout and
///    sifts by hole insertion — one element move per level instead of a
///    three-move swap — so a sift touches few cache lines and never moves
///    callbacks;
///  * callbacks live in a slot table addressed by the heap entries; slots
///    are recycled via a free list, so memory is bounded by the maximum
///    number of *live* events, not by the total ever scheduled;
///  * callbacks are SBO `InlineCallback`s: scheduling a kernel-sized
///    capture performs zero heap allocations once the vectors reach
///    steady-state capacity.
///
/// cancel() removes the event from the heap eagerly (O(log n)), so the heap
/// only ever contains live events and pop() never skips.
class EventQueue {
 public:
  using Callback = InlineCallback;

  /// Schedules `cb` at absolute time `at`. Precondition: `at` must not be
  /// in the past relative to the last popped event (checked by Simulator).
  EventHandle schedule(SimTime at, Callback cb);

  /// Cancels a pending event. Returns true if the event was still pending.
  bool cancel(EventHandle h);

  /// True if no live events remain.
  bool empty() const { return heap_.empty(); }

  /// Number of live (non-cancelled, not yet fired) events.
  std::size_t size() const { return heap_.size(); }

  /// Timestamp of the earliest live event. Precondition: !empty().
  SimTime next_time() const;

  /// Removes and returns the earliest live event. Precondition: !empty().
  std::pair<SimTime, Callback> pop();

  /// Pre-sizes the heap and slot table for `n` concurrent events so the
  /// first n schedules allocate nothing.
  void reserve(std::size_t n);

  // ---- Kernel health (always-on, trivially cheap) ----
  /// Largest number of simultaneously live events seen so far — how close
  /// the run came to the reserve() sizing.
  std::size_t peak_size() const { return peak_size_; }
  /// Successful cancel() calls since construction.
  std::uint64_t cancels() const { return cancels_; }

 private:
  // Heap entries carry only the ordering key plus the slot index; the
  // callback never moves during sifts.
  struct HeapItem {
    SimTime time;
    std::uint64_t seq;   // tie-breaker: lower seq fires first
    std::uint32_t slot;  // index into slots_
  };

  struct Slot {
    Callback cb;
    std::uint32_t gen = 1;  // bumped on every release; 0 is never used
    std::uint32_t heap_pos = kFreePos;
  };

  // Heap ordering: earliest time first, then earliest seq.
  static bool later(const HeapItem& a, const HeapItem& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void remove_at(std::size_t pos);
  void sift_up_hole(std::size_t hole, const HeapItem& item);
  void sift_down_hole(std::size_t hole, const HeapItem& item);

  std::vector<HeapItem> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 1;
  std::size_t peak_size_ = 0;
  std::uint64_t cancels_ = 0;

  static constexpr std::uint32_t kFreePos = static_cast<std::uint32_t>(-1);
};

}  // namespace adattl::sim
