#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace adattl::sim {

/// Opaque handle to a scheduled event, usable to cancel it.
///
/// Handles are never reused within one EventQueue instance, so a stale
/// handle (for an event that already fired or was cancelled) is safely
/// ignored by cancel().
struct EventHandle {
  std::uint64_t id = 0;

  friend bool operator==(EventHandle a, EventHandle b) { return a.id == b.id; }
  explicit operator bool() const { return id != 0; }
};

/// Min-heap of timestamped callbacks with stable FIFO ordering among
/// events scheduled for the same instant (ties break by insertion order,
/// which keeps simulations deterministic for a fixed seed).
///
/// Cancellation is lazy: cancel() marks the event dead and pop() skips
/// dead entries, so both operations stay O(log n) amortized.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` at absolute time `at`. Precondition: `at` must not be
  /// in the past relative to the last popped event (checked by Simulator).
  EventHandle schedule(SimTime at, Callback cb);

  /// Cancels a pending event. Returns true if the event was still pending.
  bool cancel(EventHandle h);

  /// True if no live events remain.
  bool empty() const { return live_ == 0; }

  /// Number of live (non-cancelled, not yet fired) events.
  std::size_t size() const { return live_; }

  /// Timestamp of the earliest live event. Precondition: !empty().
  SimTime next_time();

  /// Removes and returns the earliest live event. Precondition: !empty().
  std::pair<SimTime, Callback> pop();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // tie-breaker: lower seq fires first
    Callback cb;        // empty == cancelled
  };

  // Heap ordering: earliest time first, then earliest seq.
  static bool later(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void drop_dead_top();

  std::vector<Entry> heap_;
  // Maps live event ids to their heap slot so cancel() can find them.
  // Entry seq doubles as the handle id.
  std::vector<std::size_t> slot_of_;  // indexed by seq; npos if dead/fired
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;

  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
};

}  // namespace adattl::sim
