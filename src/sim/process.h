#pragma once

#include <coroutine>
#include <exception>
#include <memory>

#include "sim/simulator.h"

namespace adattl::sim {

/// Process-oriented front-end to the event kernel (CSIM's programming
/// model): write model logic as a coroutine that `co_await delay(sim, t)`s
/// instead of hand-scheduling callbacks.
///
///     sim::Process client(sim::Simulator& sim, Server& server) {
///       for (;;) {
///         server.request();
///         co_await sim::delay(sim, think_time());
///       }
///     }
///
/// Semantics:
///  * the coroutine starts running immediately (initial_suspend never) and
///    owns itself; the returned Process is a handle for done() queries and
///    may be dropped freely;
///  * each `co_await delay(...)` parks the coroutine as one simulator
///    event; if the simulator is destroyed before that event fires, the
///    coroutine frame is destroyed too (no leak on early teardown);
///  * exceptions escaping a process terminate the program — model code is
///    expected to be noexcept in spirit, like any event callback.
class Process {
 public:
  struct promise_type {
    std::shared_ptr<bool> done = std::make_shared<bool>(false);

    Process get_return_object() { return Process(done); }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() { *done = true; }
    void unhandled_exception() { std::terminate(); }
  };

  /// True once the coroutine ran to completion (endless processes never do).
  bool done() const { return *done_; }

 private:
  explicit Process(std::shared_ptr<bool> done) : done_(std::move(done)) {}
  std::shared_ptr<bool> done_;
};

/// Awaitable returned by delay(); resumes the coroutine after the given
/// simulated delay. Destroys the coroutine if the event dies unfired
/// (simulator teardown), so half-finished processes cannot leak.
class DelayAwaiter {
 public:
  DelayAwaiter(Simulator& sim, SimTime delay) : sim_(sim), delay_(delay) {}

  bool await_ready() const noexcept { return false; }

  void await_suspend(std::coroutine_handle<> h) {
    struct Token {
      explicit Token(std::coroutine_handle<> hh) : handle(hh) {}
      Token(const Token&) = delete;
      Token& operator=(const Token&) = delete;
      ~Token() {
        if (!fired && handle) handle.destroy();
      }
      std::coroutine_handle<> handle;
      bool fired = false;
    };
    auto token = std::make_shared<Token>(h);
    sim_.after(delay_, assert_inline([token] {
                 token->fired = true;
                 token->handle.resume();
               }));
  }

  void await_resume() const noexcept {}

 private:
  Simulator& sim_;
  SimTime delay_;
};

/// `co_await delay(sim, 5.0)` — suspend the calling process for 5
/// simulated seconds.
inline DelayAwaiter delay(Simulator& sim, SimTime seconds) {
  return DelayAwaiter(sim, seconds);
}

}  // namespace adattl::sim
