#include "sim/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace adattl::sim {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double n = na + nb;
  const double delta = other.mean_ - mean_;
  mean_ += delta * (nb / n);
  m2_ += other.m2_ + delta * delta * (na * nb / n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void TimeWeightedMean::set(SimTime at, double value) {
  if (origin_ == kTimeNever) {
    origin_ = at;
  } else {
    if (at < last_change_) throw std::invalid_argument("TimeWeightedMean: time went backwards");
    weighted_sum_ += value_ * (at - last_change_);
  }
  last_change_ = at;
  value_ = value;
}

double TimeWeightedMean::mean(SimTime at) const {
  if (origin_ == kTimeNever || at <= origin_) return value_;
  const double total = weighted_sum_ + value_ * (at - last_change_);
  return total / (at - origin_);
}

EmpiricalCdf::EmpiricalCdf(int bins) {
  if (bins <= 0) throw std::invalid_argument("EmpiricalCdf: bins must be >= 1");
  counts_.assign(static_cast<std::size_t>(bins) + 1, 0);
}

void EmpiricalCdf::add(double x) {
  const int bins = this->bins();
  std::size_t idx;
  if (x < 0.0) {
    idx = 0;
  } else if (x >= 1.0) {
    idx = static_cast<std::size_t>(bins);  // overflow bin
  } else {
    idx = static_cast<std::size_t>(x * bins);
  }
  counts_[idx]++;
  ++n_;
}

double EmpiricalCdf::prob_below(double x) const {
  if (n_ == 0) return 0.0;
  if (x <= 0.0) return 0.0;
  const int bins = this->bins();
  const std::size_t upto = (x >= 1.0)
                               ? static_cast<std::size_t>(bins)
                               : static_cast<std::size_t>(x * bins);
  std::uint64_t below = 0;
  for (std::size_t i = 0; i < upto; ++i) below += counts_[i];
  return static_cast<double>(below) / static_cast<double>(n_);
}

double EmpiricalCdf::quantile(double p) const {
  const int bins = this->bins();
  if (n_ == 0) return 0.0;
  // p == 0 asks for the infimum of the support: the domain's lower edge,
  // not the first (possibly empty) bin's upper edge.
  if (p <= 0.0) return 0.0;
  std::uint64_t acc = 0;
  const auto target = static_cast<std::uint64_t>(std::ceil(p * static_cast<double>(n_)));
  for (int i = 0; i <= bins; ++i) {
    acc += counts_[static_cast<std::size_t>(i)];
    // Mass in the overflow bin (i == bins) reports the domain upper bound
    // 1.0, never (bins+1)/bins — quantiles stay inside [0, 1].
    if (acc >= target) return (i == bins) ? 1.0 : static_cast<double>(i + 1) / bins;
  }
  return 1.0;
}

std::vector<double> EmpiricalCdf::cumulative() const {
  const int bins = this->bins();
  std::vector<double> out(static_cast<std::size_t>(bins) + 1, 0.0);
  std::uint64_t acc = 0;
  for (int i = 0; i <= bins; ++i) {
    out[static_cast<std::size_t>(i)] =
        n_ ? static_cast<double>(acc) / static_cast<double>(n_) : 0.0;
    acc += counts_[static_cast<std::size_t>(i)];
  }
  return out;
}

Histogram::Histogram(double upper, int bins) : upper_(upper) {
  if (upper <= 0) throw std::invalid_argument("Histogram: upper bound must be > 0");
  if (bins <= 0) throw std::invalid_argument("Histogram: bins must be >= 1");
  counts_.assign(static_cast<std::size_t>(bins) + 1, 0);
}

void Histogram::add(double x) {
  if (x < 0) throw std::invalid_argument("Histogram: negative value");
  const int bins = this->bins();
  const std::size_t idx = (x >= upper_)
                              ? static_cast<std::size_t>(bins)
                              : static_cast<std::size_t>(x / upper_ * bins);
  counts_[idx]++;
  ++n_;
  sum_ += x;
}

void Histogram::merge(const Histogram& other) {
  if (other.upper_ != upper_ || other.counts_.size() != counts_.size()) {
    throw std::invalid_argument("Histogram: merge shape mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  n_ += other.n_;
  sum_ += other.sum_;
}

double Histogram::quantile(double p) const {
  if (n_ == 0) return 0.0;
  if (p <= 0.0) return 0.0;  // lower edge of the domain (same rule as EmpiricalCdf)
  const int bins = this->bins();
  const auto target = static_cast<std::uint64_t>(std::ceil(p * static_cast<double>(n_)));
  std::uint64_t acc = 0;
  for (int i = 0; i <= bins; ++i) {
    acc += counts_[static_cast<std::size_t>(i)];
    if (acc >= target) {
      return (i == bins) ? upper_ : upper_ * static_cast<double>(i + 1) / bins;
    }
  }
  return upper_;
}

BatchMeans::BatchMeans(std::size_t batch_size) : batch_size_(batch_size) {
  if (batch_size == 0) throw std::invalid_argument("BatchMeans: batch size must be >= 1");
}

void BatchMeans::add(double x) {
  current_sum_ += x;
  if (++in_current_ == batch_size_) {
    batches_.add(current_sum_ / static_cast<double>(batch_size_));
    current_sum_ = 0.0;
    in_current_ = 0;
  }
}

double BatchMeans::ci_halfwidth(double confidence) const {
  return t_confidence_halfwidth(batches_, confidence);
}

double BatchMeans::relative_halfwidth(double confidence) const {
  const double m = mean();
  if (m == 0.0) return 0.0;
  return ci_halfwidth(confidence) / std::abs(m);
}

std::size_t mser5_truncation(const std::vector<double>& series) {
  constexpr std::size_t kBatch = 5;
  const std::size_t num_batches = series.size() / kBatch;
  if (num_batches < 4) return 0;  // too short to judge: truncate nothing

  std::vector<double> batches(num_batches);
  for (std::size_t b = 0; b < num_batches; ++b) {
    double sum = 0.0;
    for (std::size_t i = 0; i < kBatch; ++i) sum += series[b * kBatch + i];
    batches[b] = sum / kBatch;
  }

  // Suffix sums let every candidate truncation be evaluated in O(1).
  std::vector<double> suffix_sum(num_batches + 1, 0.0);
  std::vector<double> suffix_sq(num_batches + 1, 0.0);
  for (std::size_t b = num_batches; b-- > 0;) {
    suffix_sum[b] = suffix_sum[b + 1] + batches[b];
    suffix_sq[b] = suffix_sq[b + 1] + batches[b] * batches[b];
  }

  std::size_t best_d = 0;
  double best_mser = std::numeric_limits<double>::infinity();
  for (std::size_t d = 0; d <= num_batches / 2; ++d) {
    const double n = static_cast<double>(num_batches - d);
    const double mean = suffix_sum[d] / n;
    double var = std::max(0.0, suffix_sq[d] / n - mean * mean);
    // The sum-of-squares formula leaves O(eps·mean^2) residue on constant
    // data; flush it to zero so a flat series truncates nothing.
    if (var < 1e-12 * mean * mean) var = 0.0;
    const double mser = var / n;  // proportional to (SE)^2; same argmin
    // Require a real (relative) improvement so floating-point noise on a
    // flat series cannot push the truncation point past d = 0.
    if (mser < best_mser * (1.0 - 1e-6)) {
      best_mser = mser;
      best_d = d;
    }
  }
  return best_d * kBatch;
}

namespace {

/// Two-sided Student-t critical value, via a small table for low degrees of
/// freedom and the normal approximation beyond it. Accurate to ~1% which is
/// ample for reporting replication CIs.
double t_critical(std::uint64_t dof, double confidence) {
  static constexpr double t95[] = {0,     12.706, 4.303, 3.182, 2.776, 2.571,
                                   2.447, 2.365,  2.306, 2.262, 2.228, 2.201,
                                   2.179, 2.160,  2.145, 2.131, 2.120, 2.110,
                                   2.101, 2.093,  2.086, 2.080, 2.074, 2.069,
                                   2.064, 2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
  static constexpr double t99[] = {0,     63.657, 9.925, 5.841, 4.604, 4.032,
                                   3.707, 3.499,  3.355, 3.250, 3.169, 3.106,
                                   3.055, 3.012,  2.977, 2.947, 2.921, 2.898,
                                   2.878, 2.861,  2.845, 2.831, 2.819, 2.807,
                                   2.797, 2.787,  2.779, 2.771, 2.763, 2.756, 2.750};
  const bool is99 = confidence >= 0.985;
  const double* table = is99 ? t99 : t95;
  if (dof >= 1 && dof <= 30) return table[dof];
  return is99 ? 2.576 : 1.960;
}

}  // namespace

double t_confidence_halfwidth(const RunningStat& stat, double confidence) {
  if (stat.count() < 2) return 0.0;
  const double se = stat.stddev() / std::sqrt(static_cast<double>(stat.count()));
  return t_critical(stat.count() - 1, confidence) * se;
}

MeanCi mean_ci(const std::vector<double>& xs, double confidence) {
  RunningStat s;
  for (double x : xs) s.add(x);
  return MeanCi{s.mean(), t_confidence_halfwidth(s, confidence)};
}

}  // namespace adattl::sim
