#include "sim/random.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace adattl::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

RngStream::RngStream(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

RngStream RngStream::split() {
  // Children are seeded from the parent's state plus a per-parent counter,
  // not from the output sequence, so splitting does not advance this stream.
  std::uint64_t x = s_[0] ^ rotl(s_[2], 17) ^ (0xd1342543de82ef95ULL * ++split_salt_);
  return RngStream(splitmix64(x));
}

std::uint64_t RngStream::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double RngStream::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double RngStream::uniform(double lo, double hi) {
  if (lo > hi) throw std::invalid_argument("uniform: lo > hi");
  return lo + (hi - lo) * next_double();
}

std::int64_t RngStream::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = std::uint64_t(-1) - std::uint64_t(-1) % span;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

double RngStream::exponential(double mean) {
  if (mean <= 0) throw std::invalid_argument("exponential: mean must be > 0");
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);  // avoid log(0)
  return -mean * std::log(u);
}

double RngStream::erlang(int k, double mean_total) {
  if (k <= 0) throw std::invalid_argument("erlang: k must be >= 1");
  const double stage_mean = mean_total / k;
  double sum = 0.0;
  for (int i = 0; i < k; ++i) sum += exponential(stage_mean);
  return sum;
}

int RngStream::geometric_min1(double mean) {
  if (mean < 1.0) throw std::invalid_argument("geometric_min1: mean must be >= 1");
  if (mean == 1.0) return 1;
  // X = 1 + floor(log(U) / log(1 - p)) with success probability p = 1/mean
  // gives E[X] = mean and support {1, 2, ...}.
  const double p = 1.0 / mean;
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  const double x = 1.0 + std::floor(std::log(u) / std::log1p(-p));
  return static_cast<int>(std::min(x, 1e9));
}

bool RngStream::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

ZipfDistribution::ZipfDistribution(int n, double theta) : theta_(theta) {
  if (n <= 0) throw std::invalid_argument("ZipfDistribution: n must be >= 1");
  pmf_.resize(static_cast<std::size_t>(n));
  double norm = 0.0;
  for (int i = 1; i <= n; ++i) norm += 1.0 / std::pow(static_cast<double>(i), theta);
  cdf_.resize(pmf_.size());
  double acc = 0.0;
  for (int i = 1; i <= n; ++i) {
    const double p = (1.0 / std::pow(static_cast<double>(i), theta)) / norm;
    pmf_[static_cast<std::size_t>(i - 1)] = p;
    acc += p;
    cdf_[static_cast<std::size_t>(i - 1)] = acc;
  }
  cdf_.back() = 1.0;  // guard against rounding drift
}

int ZipfDistribution::sample(RngStream& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int>(it - cdf_.begin()) + 1;
}

std::vector<int> apportion_largest_remainder(int total, const std::vector<double>& weights) {
  if (weights.empty()) throw std::invalid_argument("apportion: no weights");
  const double sum = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (sum <= 0) throw std::invalid_argument("apportion: weights must sum > 0");

  std::vector<int> out(weights.size(), 0);
  std::vector<std::pair<double, std::size_t>> remainders;
  remainders.reserve(weights.size());
  int assigned = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double exact = total * weights[i] / sum;
    out[i] = static_cast<int>(exact);
    assigned += out[i];
    remainders.emplace_back(exact - out[i], i);
  }
  // Hand the leftover units to the largest fractional remainders; ties go
  // to the lower index for determinism.
  std::sort(remainders.begin(), remainders.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  for (int k = 0; k < total - assigned; ++k) out[remainders[static_cast<std::size_t>(k)].second]++;
  return out;
}

}  // namespace adattl::sim
