#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace adattl::sim {

/// Small-buffer-optimized, move-only `void()` callable — the event kernel's
/// replacement for `std::function<void()>`.
///
/// Every callback the simulation core schedules (client think-time
/// continuations, server completions, monitor ticks, TTL expirations,
/// redirected page deliveries) fits in the inline buffer, so steady-state
/// event scheduling performs **zero heap allocations**. The buffer is sized
/// for the largest kernel capture — the redirecting dispatcher's
/// `[this, ServerId, PageRequest]` lambda — and kernel call sites pin that
/// invariant with `assert_inline()` static asserts. Oversized *user*
/// callbacks still work: they fall back to a heap box, they just are not
/// allocation-free.
///
/// Moves are destructive relocations (move-construct + destroy source);
/// trivially copyable captures relocate via `memcpy`, which is what the
/// event heap's sift loops rely on for cheap entry motion.
class InlineCallback {
 public:
  /// Inline capture budget in bytes. 88 = sizeof the redirecting
  /// dispatcher's capture (`this` + ServerId + PageRequest with its
  /// std::function completion and failure callbacks), the largest closure
  /// the kernel schedules.
  static constexpr std::size_t kInlineSize = 88;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  /// True if a callable of type F is stored inline (no heap allocation).
  template <typename F>
  static constexpr bool fits_inline() {
    using D = std::decay_t<F>;
    return sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign &&
           std::is_nothrow_move_constructible_v<D>;
  }

  InlineCallback() noexcept = default;
  InlineCallback(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (fits_inline<F>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kOps<D, /*inline=*/true>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &kOps<D, /*inline=*/false>;
    }
  }

  InlineCallback(InlineCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      if (other.ops_) {
        ops_ = other.ops_;
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  /// Destroys the held callable (if any) and becomes empty.
  void reset() noexcept {
    if (ops_) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  /// Invokes the held callable. Precondition: non-empty.
  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src) noexcept;  // move + destroy src
    void (*destroy)(void*) noexcept;
  };

  template <typename D, bool Inline>
  struct OpsImpl {
    static void invoke(void* p) {
      if constexpr (Inline) {
        (*static_cast<D*>(p))();
      } else {
        (**static_cast<D**>(p))();
      }
    }
    static void relocate(void* dst, void* src) noexcept {
      if constexpr (!Inline) {
        std::memcpy(dst, src, sizeof(D*));  // move the box pointer
      } else if constexpr (std::is_trivially_copyable_v<D> &&
                           std::is_trivially_destructible_v<D>) {
        std::memcpy(dst, src, sizeof(D));
      } else {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      }
    }
    static void destroy(void* p) noexcept {
      if constexpr (Inline) {
        static_cast<D*>(p)->~D();
      } else {
        delete *static_cast<D**>(p);
      }
    }
  };

  template <typename D, bool Inline>
  static constexpr Ops kOps{&OpsImpl<D, Inline>::invoke, &OpsImpl<D, Inline>::relocate,
                            &OpsImpl<D, Inline>::destroy};

  alignas(kInlineAlign) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

/// Pass-through that static-asserts a callback stays in InlineCallback's
/// SBO buffer. Kernel hot paths wrap their lambdas with this so a capture
/// growing past the inline budget is a compile error, not a silent
/// per-event heap allocation.
template <typename F>
constexpr F&& assert_inline(F&& f) noexcept {
  static_assert(InlineCallback::fits_inline<F>(),
                "kernel callback capture spills InlineCallback's inline buffer; "
                "shrink the capture or grow kInlineSize");
  return std::forward<F>(f);
}

}  // namespace adattl::sim
