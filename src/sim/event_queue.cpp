#include "sim/event_queue.h"

#include <cassert>

namespace adattl::sim {

EventHandle EventQueue::schedule(SimTime at, Callback cb) {
  assert(cb && "cannot schedule an empty callback");
  const std::uint64_t seq = next_seq_++;
  heap_.push_back(Entry{at, seq, std::move(cb)});
  slot_of_.resize(next_seq_, kNoSlot);
  slot_of_[seq] = heap_.size() - 1;
  ++live_;
  sift_up(heap_.size() - 1);
  return EventHandle{seq};
}

bool EventQueue::cancel(EventHandle h) {
  if (h.id == 0 || h.id >= slot_of_.size()) return false;
  const std::size_t slot = slot_of_[h.id];
  if (slot == kNoSlot) return false;
  heap_[slot].cb = nullptr;  // lazy removal; heap order keys are untouched
  slot_of_[h.id] = kNoSlot;
  --live_;
  return true;
}

SimTime EventQueue::next_time() {
  drop_dead_top();
  assert(!heap_.empty());
  return heap_.front().time;
}

std::pair<SimTime, EventQueue::Callback> EventQueue::pop() {
  drop_dead_top();
  assert(!heap_.empty());
  Entry top = std::move(heap_.front());
  slot_of_[top.seq] = kNoSlot;
  --live_;
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) {
    if (heap_.front().cb) slot_of_[heap_.front().seq] = 0;
    sift_down(0);
  }
  return {top.time, std::move(top.cb)};
}

void EventQueue::drop_dead_top() {
  while (!heap_.empty() && !heap_.front().cb) {
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) {
      if (heap_.front().cb) slot_of_[heap_.front().seq] = 0;
      sift_down(0);
    }
  }
}

void EventQueue::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!later(heap_[parent], heap_[i])) break;
    std::swap(heap_[parent], heap_[i]);
    if (heap_[parent].cb) slot_of_[heap_[parent].seq] = parent;
    if (heap_[i].cb) slot_of_[heap_[i].seq] = i;
    i = parent;
  }
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t smallest = i;
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    if (l < n && later(heap_[smallest], heap_[l])) smallest = l;
    if (r < n && later(heap_[smallest], heap_[r])) smallest = r;
    if (smallest == i) return;
    std::swap(heap_[smallest], heap_[i]);
    if (heap_[smallest].cb) slot_of_[heap_[smallest].seq] = smallest;
    if (heap_[i].cb) slot_of_[heap_[i].seq] = i;
    i = smallest;
  }
}

}  // namespace adattl::sim
