#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>

namespace adattl::sim {

namespace {

// 4-ary heap indexing. Four children of a 24-byte entry span 96 bytes —
// at most two cache lines per sift level, versus three levels' worth of
// scattered lines for a binary heap of the same size.
constexpr std::size_t kArity = 4;

constexpr std::size_t parent_of(std::size_t i) { return (i - 1) / kArity; }
constexpr std::size_t first_child_of(std::size_t i) { return kArity * i + 1; }

}  // namespace

void EventQueue::reserve(std::size_t n) {
  heap_.reserve(n);
  slots_.reserve(n);
  free_slots_.reserve(n);
}

std::uint32_t EventQueue::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t s = free_slots_.back();
    free_slots_.pop_back();
    return s;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.cb.reset();
  s.heap_pos = kFreePos;
  if (++s.gen == 0) s.gen = 1;  // generation 0 is reserved for "never valid"
  free_slots_.push_back(slot);
}

EventHandle EventQueue::schedule(SimTime at, Callback cb) {
  assert(cb && "cannot schedule an empty callback");
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.cb = std::move(cb);
  const HeapItem item{at, next_seq_++, slot};
  heap_.push_back(item);
  if (heap_.size() > peak_size_) peak_size_ = heap_.size();
  sift_up_hole(heap_.size() - 1, item);
  return EventHandle{(static_cast<std::uint64_t>(slot) << 32) | s.gen};
}

bool EventQueue::cancel(EventHandle h) {
  if (h.id == 0) return false;
  const auto slot = static_cast<std::uint32_t>(h.id >> 32);
  const auto gen = static_cast<std::uint32_t>(h.id);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  // A released slot bumped its generation, so a stale handle mismatches
  // even after the slot was recycled for a newer event.
  if (s.gen != gen || s.heap_pos == kFreePos) return false;
  const std::size_t pos = s.heap_pos;
  release_slot(slot);
  remove_at(pos);
  ++cancels_;
  return true;
}

SimTime EventQueue::next_time() const {
  assert(!heap_.empty());
  return heap_.front().time;
}

std::pair<SimTime, EventQueue::Callback> EventQueue::pop() {
  assert(!heap_.empty());
  const HeapItem top = heap_.front();
  Callback cb = std::move(slots_[top.slot].cb);
  release_slot(top.slot);
  remove_at(0);
  return {top.time, std::move(cb)};
}

void EventQueue::remove_at(std::size_t pos) {
  const std::size_t last = heap_.size() - 1;
  if (pos == last) {
    heap_.pop_back();
    return;
  }
  const HeapItem item = heap_[last];
  heap_.pop_back();
  // Re-insert the displaced tail entry at the hole; it may need to travel
  // either direction when the hole came from a cancel mid-heap.
  if (pos > 0 && later(heap_[parent_of(pos)], item)) {
    sift_up_hole(pos, item);
  } else {
    sift_down_hole(pos, item);
  }
}

void EventQueue::sift_up_hole(std::size_t hole, const HeapItem& item) {
  // Hole insertion: shift ancestors down one move each until `item` fits,
  // then write it once — no three-move swaps, no slot updates for `item`
  // until its final position is known.
  while (hole > 0) {
    const std::size_t parent = parent_of(hole);
    if (!later(heap_[parent], item)) break;
    heap_[hole] = heap_[parent];
    slots_[heap_[hole].slot].heap_pos = static_cast<std::uint32_t>(hole);
    hole = parent;
  }
  heap_[hole] = item;
  slots_[item.slot].heap_pos = static_cast<std::uint32_t>(hole);
}

void EventQueue::sift_down_hole(std::size_t hole, const HeapItem& item) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = first_child_of(hole);
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = std::min(first + kArity, n);
    for (std::size_t c = first + 1; c < end; ++c) {
      if (later(heap_[best], heap_[c])) best = c;
    }
    if (!later(item, heap_[best])) break;
    heap_[hole] = heap_[best];
    slots_[heap_[hole].slot].heap_pos = static_cast<std::uint32_t>(hole);
    hole = best;
  }
  heap_[hole] = item;
  slots_[item.slot].heap_pos = static_cast<std::uint32_t>(hole);
}

}  // namespace adattl::sim
