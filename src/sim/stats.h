#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/time.h"

namespace adattl::sim {

/// Running mean/variance accumulator (Welford's algorithm — numerically
/// stable for millions of samples).
class RunningStat {
 public:
  void add(double x);

  /// Folds another accumulator in, as if its samples had been add()ed here
  /// (Chan et al. pairwise combination — the parallel-merge form of
  /// Welford). Used to combine per-shard statistics deterministically.
  void merge(const RunningStat& other);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a piecewise-constant signal weighted by the time each value was
/// held: used for utilization-style quantities.
class TimeWeightedMean {
 public:
  explicit TimeWeightedMean(SimTime start = 0.0) : last_change_(start) {}

  /// Records that the signal takes `value` from time `at` onward.
  /// `at` must be monotonically non-decreasing.
  void set(SimTime at, double value);

  /// Mean over [start, at], extending the current value to `at`.
  double mean(SimTime at) const;

  double current() const { return value_; }

 private:
  SimTime last_change_;
  double value_ = 0.0;
  double weighted_sum_ = 0.0;
  SimTime origin_ = kTimeNever;  // set on first set()
};

/// Empirical CDF over [0, 1] with fixed-width bins, for the paper's
/// "cumulative frequency of maximum server utilization" curves.
///
/// Values below 0 clamp to the first bin; values above 1 land in a
/// dedicated overflow bin so P(x < 1.0) stays exact.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(int bins = 200);

  void add(double x);

  std::uint64_t count() const { return n_; }

  /// P(X < x). Exact at bin boundaries; linear in-between bin granularity
  /// otherwise (conservative: uses the lower boundary's mass).
  double prob_below(double x) const;

  /// Smallest bin-boundary q with P(X < q) >= p (an upper quantile bound),
  /// clamped to the CDF's domain: 0.0 for p <= 0, and 1.0 when the target
  /// mass lands in the overflow bin.
  double quantile(double p) const;

  int bins() const { return static_cast<int>(counts_.size()) - 1; }

  /// Cumulative probability at each bin boundary i/bins, i in [0, bins].
  std::vector<double> cumulative() const;

 private:
  std::vector<std::uint64_t> counts_;  // last slot = overflow (x >= 1)
  std::uint64_t n_ = 0;
};

/// Fixed-range linear histogram with an overflow bin, supporting merging
/// and quantile queries. Used for response-time percentiles (p50/p95/p99)
/// where a RunningStat's mean hides the overload tail.
class Histogram {
 public:
  /// Range [0, upper); values >= upper land in the overflow bin and are
  /// reported as `upper` by quantile().
  Histogram(double upper, int bins);

  void add(double x);

  /// Adds another histogram's counts. Both must have identical shape.
  void merge(const Histogram& other);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }

  /// Smallest bin upper boundary q with P(X <= q) >= p; `upper` if the
  /// quantile falls in the overflow bin. 0 when empty or for p <= 0 (the
  /// lower edge of the range, matching EmpiricalCdf::quantile).
  double quantile(double p) const;

  double upper() const { return upper_; }
  int bins() const { return static_cast<int>(counts_.size()) - 1; }

 private:
  double upper_;
  std::vector<std::uint64_t> counts_;  // last slot = overflow
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
};

/// Batch-means confidence intervals for a single steady-state run.
///
/// Correlated per-tick samples (like the 8-second max-utilization series)
/// violate the independence assumption of a plain t-interval; grouping
/// consecutive samples into large batches and treating the batch means as
/// (approximately) independent is the classical fix. The paper reports
/// "the 95% confidence interval was observed to be within 4% of the mean"
/// — this class reproduces that check within one run.
class BatchMeans {
 public:
  /// `batch_size`: samples per batch (>= 1). Trailing partial batches are
  /// excluded from the interval.
  explicit BatchMeans(std::size_t batch_size);

  void add(double x);

  std::size_t batch_size() const { return batch_size_; }
  std::size_t completed_batches() const { return batches_.count(); }

  /// Grand mean over completed batches (0 if none completed yet).
  double mean() const { return batches_.mean(); }

  /// Half-width of the two-sided CI over the batch means; 0 with fewer
  /// than two completed batches.
  double ci_halfwidth(double confidence = 0.95) const;

  /// ci_halfwidth / |mean|: the paper's "within 4% of the mean" figure.
  /// Returns 0 when the mean is 0.
  double relative_halfwidth(double confidence = 0.95) const;

 private:
  std::size_t batch_size_;
  std::size_t in_current_ = 0;
  double current_sum_ = 0.0;
  RunningStat batches_;
};

/// MSER-5 warm-up truncation point (White/Spratt): group the series into
/// batches of 5, then pick the truncation index d (in batches) minimizing
/// the standard error of the remaining batch means,
///   MSER(d) = stddev(batches[d..]) / sqrt(n - d),
/// searching the first half of the series (a truncation point in the
/// second half means the run is too short to judge). Returns the warm-up
/// length in *samples*. Used to validate the configured warm-up against
/// what the max-utilization series itself suggests.
std::size_t mser5_truncation(const std::vector<double>& series);

/// Half-width of the two-sided Student-t confidence interval for the mean
/// of `stat` at the given confidence level (e.g. 0.95). Returns 0 for
/// fewer than two samples.
double t_confidence_halfwidth(const RunningStat& stat, double confidence = 0.95);

/// Mean and 95% CI half-width of a small vector of replication results.
struct MeanCi {
  double mean = 0.0;
  double halfwidth = 0.0;
};
MeanCi mean_ci(const std::vector<double>& xs, double confidence = 0.95);

}  // namespace adattl::sim
