#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace adattl::sim {

/// Deterministic, splittable pseudo-random stream (xoshiro256++).
///
/// Every stochastic model component owns its own stream derived from the
/// run seed via split(), so adding or removing one component never
/// perturbs the variates another component draws — a property the
/// paired-comparison experiments rely on.
class RngStream {
 public:
  /// Seeds the stream; the raw seed is expanded through splitmix64 so that
  /// nearby seeds yield uncorrelated streams.
  explicit RngStream(std::uint64_t seed);

  /// Derives an independent child stream. Successive calls derive distinct
  /// children.
  RngStream split();

  /// Uniform 64-bit word.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in the inclusive range [lo, hi]. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential variate with the given mean (> 0).
  double exponential(double mean);

  /// Erlang(k, mean_total) variate: sum of k exponentials whose means add
  /// up to `mean_total`. Models a burst of k back-to-back hit services.
  double erlang(int k, double mean_total);

  /// Geometric variate on {1, 2, ...} with the given mean (>= 1): the
  /// discrete analogue of the paper's "exponentially distributed" page
  /// count per session.
  int geometric_min1(double mean);

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p);

 private:
  std::uint64_t s_[4];
  std::uint64_t split_salt_ = 0;
};

/// Zipf distribution over ranks {1, ..., n}: P(rank = i) ∝ 1 / i^theta.
///
/// theta = 1 is the paper's "pure Zipf" client-to-domain skew. Sampling is
/// O(log n) by binary search over the cumulative weights; pmf() and
/// weights are exposed for the deterministic allocation and the TTL
/// calibration math.
class ZipfDistribution {
 public:
  ZipfDistribution(int n, double theta = 1.0);

  int n() const { return static_cast<int>(pmf_.size()); }
  double theta() const { return theta_; }

  /// P(rank = i), 1-based rank.
  double pmf(int rank) const { return pmf_.at(static_cast<std::size_t>(rank - 1)); }

  /// All probabilities, index 0 == rank 1.
  const std::vector<double>& probabilities() const { return pmf_; }

  /// Draws a 1-based rank.
  int sample(RngStream& rng) const;

 private:
  double theta_;
  std::vector<double> pmf_;
  std::vector<double> cdf_;
};

/// Splits `total` items over weighted bins by the largest-remainder method;
/// the result sums exactly to `total` and is deterministic. Used to
/// partition the 500 clients over the K domains following Zipf weights.
std::vector<int> apportion_largest_remainder(int total, const std::vector<double>& weights);

}  // namespace adattl::sim
