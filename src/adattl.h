#pragma once

/// \file adattl.h
/// Umbrella header for the adattl library — adaptive-TTL DNS load
/// balancing for geographically distributed heterogeneous Web servers
/// (Colajanni, Cardellini & Yu, ICDCS 1998).
///
/// Layering (each layer depends only on those above it):
///
///   sim/        discrete-event kernel, RNG, statistics, coroutine API
///   web/        heterogeneous Web servers, cluster presets, monitoring
///   core/       the paper's contribution: selection + TTL policies,
///               calibration, estimation, alarm feedback, factory
///   fault/      scenario-driven failure injection (crash/degrade/pause
///               windows, authoritative-DNS outage calendar)
///   dnscache/   name-server and client address caches
///   workload/   Zipf client population, sessions, dynamics
///   experiment/ configuration, full-site wiring, metrics, reporting
///
/// Typical entry points:
///   * experiment::SimulationConfig + experiment::run_replications — run a
///     scenario and read P(maxUtil < x) with confidence intervals;
///   * core::make_scheduler("DRR2-TTL/S_K", ...) — build a scheduler to
///     drive with your own traffic;
///   * experiment::parse_cli / load_scenario_file — the run_scenario
///     front-end's machinery, reusable in downstream tools.

// sim
#include "sim/event_queue.h"
#include "sim/process.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "sim/time.h"

// web
#include "web/cluster.h"
#include "web/dispatcher.h"
#include "web/monitor_hub.h"
#include "web/types.h"
#include "web/web_server.h"

// geo
#include "geo/geo_model.h"

// core
#include "core/alarm_registry.h"
#include "core/proximity_policy.h"
#include "core/dal_policy.h"
#include "core/domain_model.h"
#include "core/load_estimator.h"
#include "core/mrl_policy.h"
#include "core/policy_factory.h"
#include "core/scheduler.h"
#include "core/selection_policies.h"
#include "core/selection_policy.h"
#include "core/ttl_policy.h"

// fault
#include "fault/dns_outage.h"
#include "fault/fault_injector.h"
#include "fault/fault_schedule.h"

// dnscache
#include "dnscache/client_cache.h"
#include "dnscache/name_server.h"
#include "dnscache/resolver.h"

// dnswire (RFC 1035 integration surface)
#include "dnswire/frontend.h"
#include "dnswire/message.h"

// workload
#include "workload/client.h"
#include "workload/domain_set.h"
#include "workload/think_time_model.h"

// experiment
#include "experiment/cli.h"
#include "experiment/config.h"
#include "experiment/decision_log.h"
#include "experiment/metrics.h"
#include "experiment/report.h"
#include "experiment/runner.h"
#include "experiment/scenario_file.h"
#include "experiment/site.h"
#include "experiment/trace.h"
