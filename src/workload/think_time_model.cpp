#include "workload/think_time_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace adattl::workload {

ThinkTimeModel::ThinkTimeModel(std::vector<double> base_mean_think_sec)
    : base_(std::move(base_mean_think_sec)), multiplier_(base_.size(), 1.0) {
  if (base_.empty()) throw std::invalid_argument("ThinkTimeModel: no domains");
  for (double t : base_) {
    if (t <= 0) throw std::invalid_argument("ThinkTimeModel: think time must be > 0");
  }
}

double ThinkTimeModel::mean_think(web::DomainId d) const {
  const auto i = static_cast<std::size_t>(d);
  return base_.at(i) / multiplier_.at(i);
}

double ThinkTimeModel::sample(web::DomainId d, sim::RngStream& rng) const {
  return rng.exponential(mean_think(d));
}

void ThinkTimeModel::scale_rate(web::DomainId d, double factor) {
  if (!std::isfinite(factor)) {
    throw std::invalid_argument("ThinkTimeModel: rate factor must be finite");
  }
  if (factor <= 0) throw std::invalid_argument("ThinkTimeModel: rate factor must be > 0");
  double& m = multiplier_.at(static_cast<std::size_t>(d));
  m = std::clamp(m * factor, kMinRateMultiplier, kMaxRateMultiplier);
}

void ThinkTimeModel::set_rate(web::DomainId d, double multiplier) {
  if (!std::isfinite(multiplier)) {
    throw std::invalid_argument("ThinkTimeModel: rate multiplier must be finite");
  }
  if (multiplier <= 0) {
    throw std::invalid_argument("ThinkTimeModel: rate multiplier must be > 0");
  }
  multiplier_.at(static_cast<std::size_t>(d)) =
      std::clamp(multiplier, kMinRateMultiplier, kMaxRateMultiplier);
}

void ThinkTimeModel::reset_rate(web::DomainId d) {
  multiplier_.at(static_cast<std::size_t>(d)) = 1.0;
}

}  // namespace adattl::workload
