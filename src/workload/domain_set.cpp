#include "workload/domain_set.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace adattl::workload {

int DomainSet::total_clients() const {
  return std::accumulate(clients.begin(), clients.end(), 0);
}

std::vector<double> DomainSet::true_weights() const {
  validate();
  std::vector<double> w(clients.size());
  for (std::size_t j = 0; j < clients.size(); ++j) {
    w[j] = static_cast<double>(clients[j]) / mean_think_sec[j];
  }
  return w;
}

void DomainSet::validate() const {
  if (clients.empty()) throw std::invalid_argument("DomainSet: no domains");
  if (clients.size() != mean_think_sec.size()) {
    throw std::invalid_argument("DomainSet: clients/think size mismatch");
  }
  bool any = false;
  for (std::size_t j = 0; j < clients.size(); ++j) {
    if (clients[j] < 0) throw std::invalid_argument("DomainSet: negative client count");
    if (mean_think_sec[j] <= 0) throw std::invalid_argument("DomainSet: think time must be > 0");
    any = any || clients[j] > 0;
  }
  if (!any) throw std::invalid_argument("DomainSet: no clients at all");
}

DomainSet make_zipf_domains(int k, int total_clients, double mean_think_sec, double theta) {
  if (total_clients <= 0) throw std::invalid_argument("make_zipf_domains: need clients");
  const sim::ZipfDistribution zipf(k, theta);
  DomainSet ds;
  ds.clients = sim::apportion_largest_remainder(total_clients, zipf.probabilities());
  ds.mean_think_sec.assign(static_cast<std::size_t>(k), mean_think_sec);
  ds.validate();
  return ds;
}

DomainSet make_uniform_domains(int k, int total_clients, double mean_think_sec) {
  if (total_clients <= 0) throw std::invalid_argument("make_uniform_domains: need clients");
  DomainSet ds;
  ds.clients = sim::apportion_largest_remainder(
      total_clients, std::vector<double>(static_cast<std::size_t>(k), 1.0));
  ds.mean_think_sec.assign(static_cast<std::size_t>(k), mean_think_sec);
  ds.validate();
  return ds;
}

void apply_rate_perturbation(DomainSet& domains, double error_percent) {
  domains.validate();
  if (error_percent == 0.0) return;
  if (error_percent < 0.0) throw std::invalid_argument("perturbation: error must be >= 0");
  if (domains.num_domains() < 2) {
    throw std::invalid_argument("perturbation: need >= 2 domains to rebalance");
  }

  const std::vector<double> rates = domains.true_weights();
  const double total = std::accumulate(rates.begin(), rates.end(), 0.0);
  const std::size_t busiest = static_cast<std::size_t>(
      std::max_element(rates.begin(), rates.end()) - rates.begin());

  const double grow = 1.0 + error_percent / 100.0;
  const double new_busiest = rates[busiest] * grow;
  const double rest_old = total - rates[busiest];
  const double rest_new = total - new_busiest;
  if (rest_new <= 0.0) {
    throw std::invalid_argument("perturbation: error so large the other domains vanish");
  }
  const double shrink = rest_new / rest_old;

  // rate = clients / think, so rate × f ⇒ think ÷ f.
  for (std::size_t j = 0; j < domains.mean_think_sec.size(); ++j) {
    domains.mean_think_sec[j] /= (j == busiest) ? grow : shrink;
  }
}

}  // namespace adattl::workload
