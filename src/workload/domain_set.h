#pragma once

#include <vector>

#include "sim/random.h"

namespace adattl::workload {

/// Static description of the client population: how many clients each
/// domain hosts and the mean think time of that domain's clients.
///
/// A domain's offered hit rate is proportional to clients / think_time, so
/// this pair fully determines the "hidden load weight" skew the DNS has to
/// cope with. Domains are ordered by decreasing popularity (index 0 is the
/// Zipf rank-1 domain).
struct DomainSet {
  std::vector<int> clients;
  std::vector<double> mean_think_sec;

  int num_domains() const { return static_cast<int>(clients.size()); }
  int total_clients() const;

  /// True per-domain load weights ∝ offered hit rate (clients / think).
  /// These are the weights an oracle DNS would use.
  std::vector<double> true_weights() const;

  void validate() const;
};

/// The paper's population: `total_clients` clients split over `k` domains
/// by a pure Zipf distribution (exponent `theta`), all with the same mean
/// think time. Splitting uses largest-remainder apportionment so the
/// result is deterministic and sums exactly.
DomainSet make_zipf_domains(int k, int total_clients, double mean_think_sec, double theta = 1.0);

/// Uniform client distribution — the workload of the paper's "Ideal" curve
/// (PRR under uniform domain request rates).
DomainSet make_uniform_domains(int k, int total_clients, double mean_think_sec);

/// Applies the estimation-error perturbation of §5.2: the busiest domain's
/// request rate grows by `error_percent` percent and every other domain's
/// rate shrinks proportionally, keeping the total offered rate unchanged
/// (this *increases* the skew — the paper's worst case). Rates are changed
/// by scaling think times, so client counts stay integral.
/// The DNS keeps using the *unperturbed* weights, which is exactly what
/// "estimation error" means in the paper's setup.
void apply_rate_perturbation(DomainSet& domains, double error_percent);

}  // namespace adattl::workload
