#pragma once

#include <cstdint>

#include "dnscache/resolver.h"
#include "geo/geo_model.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "web/dispatcher.h"
#include "workload/think_time_model.h"

namespace adattl::workload {

/// How many hits a page request carries.
enum class HitsDistribution {
  kUniform,  ///< uniform integer in [min, max] — the paper's model
  kPareto,   ///< bounded Pareto on [min, max] — heavy-tailed extension
};

/// Parameters of one client session (paper §4.1 / Table 1).
struct SessionProfile {
  double mean_pages_per_session = 20.0;  ///< geometric (discrete exponential)
  int min_hits_per_page = 5;             ///< hits per page bounds
  int max_hits_per_page = 15;
  HitsDistribution hits_distribution = HitsDistribution::kUniform;
  /// Tail index for the Pareto option (smaller = heavier tail).
  double pareto_shape = 1.5;

  void validate() const;

  /// Draws one page's hit count.
  int sample_hits(sim::RngStream& rng) const;

  /// Mean hits per page under the configured distribution.
  double mean_hits_per_page() const;
};

/// One Web client, driven entirely by simulator events.
///
/// Lifecycle (paper §4.1): a session opens with a single address
/// resolution through the domain's name server, then issues a geometric
/// number of page requests — each a burst of hits — separated by
/// exponential think times; the next session re-resolves (possibly served
/// from the NS cache) and repeats forever.
///
/// The client holds its mapping for the whole session even if the TTL
/// expires mid-session. This client-side caching is what spreads a
/// domain's load across the servers chosen in successive TTL windows, and
/// is the mechanism adaptive TTL policies exploit.
///
/// Think times are sampled through the shared ThinkTimeModel, so scripted
/// rate shifts (flash crowds) apply to every client of a domain from its
/// next think period onward.
class Client {
 public:
  /// `geo` (optional) adds network round-trip time to every page: the
  /// request travels rtt/2 before reaching the server and the reply
  /// travels rtt/2 back, so client-perceived response = rtt + server time.
  /// `retry_delay_sec` is the pause before retrying a failed page or
  /// resolution (failures only occur under fault injection).
  Client(sim::Simulator& sim, dnscache::Resolver& ns, web::PageDispatcher& dispatcher,
         const SessionProfile& profile, const ThinkTimeModel& think, sim::RngStream rng,
         const geo::GeoModel* geo = nullptr, double retry_delay_sec = 1.0);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Schedules the first session `initial_delay` seconds from now
  /// (staggered starts avoid a synchronized stampede at t = 0).
  void start(double initial_delay);

  std::uint64_t sessions_started() const { return sessions_; }
  std::uint64_t pages_requested() const { return pages_; }

  /// Page attempts that came back failed (crashed server); each is
  /// retried after retry_delay_sec with a fresh resolution, so one page
  /// can fail several times during a long outage.
  std::uint64_t pages_failed() const { return pages_failed_; }
  /// Resolutions that produced no server at all (cold NS cache during a
  /// DNS outage); retried like failed pages.
  std::uint64_t resolution_failures() const { return resolution_failures_; }

  /// Total network round-trip seconds this client's pages spent in flight
  /// (0 without a geo model).
  double network_time_sec() const { return network_time_; }

 private:
  void begin_session();
  void request_page();
  void dispatch_current();
  void on_server_complete();
  void on_page_complete();
  void on_page_failed();
  void retry_page();

  sim::Simulator& sim_;
  dnscache::Resolver& ns_;
  web::PageDispatcher& dispatcher_;
  SessionProfile profile_;
  const ThinkTimeModel& think_;
  sim::RngStream rng_;
  const geo::GeoModel* geo_;
  double retry_delay_sec_;
  double network_time_ = 0.0;
  /// RTT of the page in flight, looked up once per page (request leg) and
  /// reused for the reply leg — the mapping is fixed for the page's lifetime.
  double page_rtt_ = 0.0;

  web::ServerId mapped_server_ = -1;
  int pages_left_ = 0;
  /// Hit count of the page in flight, kept so a failed page retries with
  /// the *same* size (a retry is the same page, not a new sample).
  int pending_hits_ = 0;
  std::uint64_t sessions_ = 0;
  std::uint64_t pages_ = 0;
  std::uint64_t pages_failed_ = 0;
  std::uint64_t resolution_failures_ = 0;
};

}  // namespace adattl::workload
