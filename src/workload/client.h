#pragma once

#include <cstdint>

#include "workload/client_pool.h"

namespace adattl::workload {

/// One Web client, driven entirely by simulator events.
///
/// Convenience wrapper over a ClientPool of size one — the pool owns the
/// single lifecycle implementation (see client_pool.h for the session
/// model, event coalescing and network accounting); this class exists for
/// tests and examples that want one self-contained client object.
/// Simulations build the population through ClientPool directly.
class Client {
 public:
  /// `geo` (optional) adds network round-trip time to every page: the
  /// request travels rtt/2 before reaching the server and the reply
  /// travels rtt/2 back, so client-perceived response = rtt + server time.
  /// `retry_delay_sec` is the pause before retrying a failed page or
  /// resolution (failures only occur under fault injection).
  Client(sim::Simulator& sim, dnscache::Resolver& ns, web::PageDispatcher& dispatcher,
         const SessionProfile& profile, const ThinkTimeModel& think, sim::RngStream rng,
         const geo::GeoModel* geo = nullptr, double retry_delay_sec = 1.0)
      : pool_(sim, dispatcher, profile, think, geo, retry_delay_sec),
        index_(pool_.add(ns, rng)) {}

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Schedules the first session `initial_delay` seconds from now
  /// (staggered starts avoid a synchronized stampede at t = 0).
  void start(double initial_delay) { pool_.start(index_, initial_delay); }

  std::uint64_t sessions_started() const { return pool_.sessions_started(index_); }
  std::uint64_t pages_requested() const { return pool_.pages_requested(index_); }

  /// Page attempts that came back failed (crashed server); each is
  /// retried after retry_delay_sec with a fresh resolution, so one page
  /// can fail several times during a long outage.
  std::uint64_t pages_failed() const { return pool_.pages_failed(index_); }
  /// Resolutions that produced no server at all (cold NS cache during a
  /// DNS outage); retried like failed pages.
  std::uint64_t resolution_failures() const { return pool_.resolution_failures(index_); }

  /// Total network flight seconds this client's pages actually spent in
  /// the air (0 without a geo model). Request legs are charged per attempt
  /// (retries really fly), reply legs only for pages the server completed.
  double network_time_sec() const { return pool_.network_time_sec(index_); }

 private:
  ClientPool pool_;
  std::size_t index_;
};

}  // namespace adattl::workload
