#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "web/types.h"
#include "workload/think_time_model.h"

namespace adattl::workload {

/// One point of an arrival-rate trace: at `at_sec`, domain `domain`'s
/// request rate becomes `rate_multiplier` x its base rate. Trace points
/// are ABSOLUTE multipliers (replayed through ThinkTimeModel::set_rate),
/// unlike RateShift factors which compose — so replaying a trace twice,
/// or resuming mid-trace, lands on the same rates.
struct TraceEvent {
  double at_sec = 0.0;
  web::DomainId domain = 0;
  double rate_multiplier = 1.0;
};

/// Parses the trace CSV schema: one `t_sec,domain,rate_multiplier` row per
/// line; blank lines and `#` comments are skipped, and one optional header
/// row naming the columns is tolerated. Throws std::invalid_argument with
/// the 1-based line number on malformed rows. Row order is preserved
/// (same-timestamp rows replay in file order).
std::vector<TraceEvent> parse_trace_csv(const std::string& text);

/// Reads and parses a trace file; the filename is included in errors.
std::vector<TraceEvent> load_trace_file(const std::string& path);

/// Serializes events to the CSV schema parse_trace_csv reads (round-trips
/// exactly: doubles are printed with max_digits10 precision).
std::string trace_to_csv(const std::vector<TraceEvent>& events);

/// Validates a trace against a domain universe: finite non-negative times,
/// domains in [0, num_domains), multipliers finite and inside
/// ThinkTimeModel's validated range. Throws std::invalid_argument naming
/// the offending event index.
void validate_trace(const std::vector<TraceEvent>& events, int num_domains);

/// Schedules a trace into a simulator: each event fires
/// `think.set_rate(domain, rate_multiplier)` at its timestamp. For
/// domain-sharded runs pass (num_shards, shard): only events whose domain
/// the shard owns (domain % num_shards == shard) are scheduled, mirroring
/// how rate_shifts replicate — every shard sees the same global trace and
/// fires exactly the slice it owns.
void schedule_trace(sim::Simulator& sim, ThinkTimeModel& think,
                    const std::vector<TraceEvent>& events, int num_shards = 1,
                    int shard = 0);

// ---------------------------------------------------------------------------
// Generators (the `adattl_tracegen` tool wraps these): each emits a
// deterministic trace — reproducible artifacts, committed or regenerated at
// will. All rates are multipliers of the domain's base rate.
// ---------------------------------------------------------------------------

/// A flash crowd on one domain: baseline until `start_sec`, linear ramp to
/// `peak_multiplier` over `ramp_sec`, hold for `hold_sec`, linear decay
/// back to baseline over `decay_sec`. Sampled every `step_sec`.
struct FlashCrowdSpec {
  web::DomainId domain = 0;
  double start_sec = 3600.0;
  double ramp_sec = 600.0;
  double hold_sec = 1800.0;
  double decay_sec = 1200.0;
  double peak_multiplier = 8.0;
  double step_sec = 60.0;
};
std::vector<TraceEvent> generate_flash_crowd(const FlashCrowdSpec& spec);

/// Diurnal sinusoids for every domain: multiplier(t) = 1 + amplitude *
/// sin(2π (t + phase_d) / period_sec), with per-domain phases spread
/// evenly over `phase_spread_sec` (0 = all domains peak together).
/// Amplitude must lie in [0, 1) so the multiplier stays positive.
struct DiurnalSpec {
  double duration_sec = 86400.0;
  double period_sec = 86400.0;
  double amplitude = 0.6;
  double phase_spread_sec = 0.0;
  double step_sec = 300.0;
};
std::vector<TraceEvent> generate_diurnal(const DiurnalSpec& spec, int num_domains);

/// Regime-shifting popularity: one domain at a time is "hot"
/// (`hot_multiplier`), the rest at baseline; the hot spot moves to a
/// uniformly-chosen other domain after an exponential dwell. Seeded —
/// the same spec always yields the same trace.
struct RegimeShiftSpec {
  double duration_sec = 86400.0;
  double mean_dwell_sec = 7200.0;
  double hot_multiplier = 6.0;
  std::uint64_t seed = 1;
};
std::vector<TraceEvent> generate_regime_shifts(const RegimeShiftSpec& spec,
                                               int num_domains);

}  // namespace adattl::workload
