#include "workload/client.h"

#include <cmath>
#include <stdexcept>

namespace adattl::workload {

void SessionProfile::validate() const {
  if (mean_pages_per_session < 1.0) {
    throw std::invalid_argument("SessionProfile: mean pages must be >= 1");
  }
  if (min_hits_per_page < 1 || max_hits_per_page < min_hits_per_page) {
    throw std::invalid_argument("SessionProfile: bad hits-per-page range");
  }
  if (pareto_shape <= 0.0) {
    throw std::invalid_argument("SessionProfile: Pareto shape must be > 0");
  }
}

int SessionProfile::sample_hits(sim::RngStream& rng) const {
  switch (hits_distribution) {
    case HitsDistribution::kUniform:
      return static_cast<int>(rng.uniform_int(min_hits_per_page, max_hits_per_page));
    case HitsDistribution::kPareto: {
      // Bounded Pareto on [L, H] by inverse-CDF; heavy lower-tail mass with
      // occasional near-H bursts — the Arlitt/Williamson-style alternative.
      const double a = pareto_shape;
      const double l = static_cast<double>(min_hits_per_page);
      const double h = static_cast<double>(max_hits_per_page) + 1.0;  // include H after floor
      const double u = rng.next_double();
      const double la = std::pow(l, a);
      const double ha = std::pow(h, a);
      const double x = std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / a);
      const int hits = static_cast<int>(x);
      return std::min(std::max(hits, min_hits_per_page), max_hits_per_page);
    }
  }
  throw std::logic_error("SessionProfile: unknown hits distribution");
}

double SessionProfile::mean_hits_per_page() const {
  switch (hits_distribution) {
    case HitsDistribution::kUniform:
      return 0.5 * (min_hits_per_page + max_hits_per_page);
    case HitsDistribution::kPareto: {
      // Mean of the continuous bounded Pareto; close enough for load math.
      const double a = pareto_shape;
      const double l = static_cast<double>(min_hits_per_page);
      const double h = static_cast<double>(max_hits_per_page) + 1.0;
      if (a == 1.0) return l * h / (h - l) * std::log(h / l);
      const double la = std::pow(l, a);
      const double ha = std::pow(h, a);
      return la / (1.0 - la / ha) * (a / (a - 1.0)) *
             (1.0 / std::pow(l, a - 1.0) - 1.0 / std::pow(h, a - 1.0));
    }
  }
  throw std::logic_error("SessionProfile: unknown hits distribution");
}

Client::Client(sim::Simulator& sim, dnscache::Resolver& ns, web::PageDispatcher& dispatcher,
               const SessionProfile& profile, const ThinkTimeModel& think, sim::RngStream rng,
               const geo::GeoModel* geo, double retry_delay_sec)
    : sim_(sim),
      ns_(ns),
      dispatcher_(dispatcher),
      profile_(profile),
      think_(think),
      rng_(rng),
      geo_(geo),
      retry_delay_sec_(retry_delay_sec) {
  profile_.validate();
  if (retry_delay_sec <= 0.0) {
    throw std::invalid_argument("Client: retry delay must be > 0");
  }
  if (ns.domain() < 0 || ns.domain() >= think.num_domains()) {
    throw std::invalid_argument("Client: resolver domain outside think-time model");
  }
  if (geo_ && geo_->num_domains() <= ns.domain()) {
    throw std::invalid_argument("Client: resolver domain outside geo model");
  }
}

void Client::start(double initial_delay) {
  sim_.after(initial_delay, sim::assert_inline([this] { begin_session(); }));
}

void Client::begin_session() {
  mapped_server_ = ns_.resolve();
  if (mapped_server_ < 0) {
    // DNS outage against a cold NS cache: nothing to stale-serve. The
    // session has not started — try again shortly.
    ++resolution_failures_;
    sim_.after(retry_delay_sec_, sim::assert_inline([this] { begin_session(); }));
    return;
  }
  ++sessions_;
  pages_left_ = rng_.geometric_min1(profile_.mean_pages_per_session);
  request_page();
}

void Client::request_page() {
  ++pages_;
  --pages_left_;
  pending_hits_ = profile_.sample_hits(rng_);
  dispatch_current();
}

void Client::dispatch_current() {
  // One geo lookup per page: the mapping cannot change between the request
  // and reply legs, so on_server_complete() reuses the cached value.
  page_rtt_ = geo_ ? geo_->rtt(ns_.domain(), mapped_server_) : 0.0;
  auto deliver = sim::assert_inline([this] {
    dispatcher_.dispatch(mapped_server_,
                         web::PageRequest{ns_.domain(), pending_hits_,
                                          [this] { on_server_complete(); },
                                          [this] { on_page_failed(); }});
  });
  if (page_rtt_ > 0.0) {
    network_time_ += page_rtt_;
    sim_.after(page_rtt_ / 2.0, std::move(deliver));  // request flies to the server...
  } else {
    deliver();
  }
}

void Client::on_server_complete() {
  if (page_rtt_ > 0.0) {
    sim_.after(page_rtt_ / 2.0, sim::assert_inline([this] { on_page_complete(); }));  // ...and back
  } else {
    on_page_complete();
  }
}

void Client::on_page_complete() {
  const double think = think_.sample(ns_.domain(), rng_);
  if (pages_left_ > 0) {
    sim_.after(think, sim::assert_inline([this] { request_page(); }));
  } else {
    sim_.after(think, sim::assert_inline([this] { begin_session(); }));
  }
}

void Client::on_page_failed() {
  // Called from inside the server's crash/reject path — never resubmit
  // synchronously; the retry is a fresh simulator event.
  ++pages_failed_;
  sim_.after(retry_delay_sec_, sim::assert_inline([this] { retry_page(); }));
}

void Client::retry_page() {
  // The mapping that failed may point at a dead server; re-resolve first
  // (the NS or the DNS may know better by now), then re-issue the *same*
  // page. During a DNS outage with nothing cached this loops on the
  // resolution until either recovers.
  mapped_server_ = ns_.resolve();
  if (mapped_server_ < 0) {
    ++resolution_failures_;
    sim_.after(retry_delay_sec_, sim::assert_inline([this] { retry_page(); }));
    return;
  }
  dispatch_current();
}

}  // namespace adattl::workload
