#include "workload/trace.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "sim/random.h"

namespace adattl::workload {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

[[noreturn]] void bad_row(std::size_t line_no, const std::string& why) {
  throw std::invalid_argument("trace CSV line " + std::to_string(line_no) + ": " + why);
}

double parse_double(const std::string& field, std::size_t line_no, const char* what) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(field, &consumed);
  } catch (const std::exception&) {
    bad_row(line_no, std::string("bad ") + what + " '" + field + "'");
  }
  if (consumed != field.size()) {
    bad_row(line_no, std::string("trailing junk in ") + what + " '" + field + "'");
  }
  return value;
}

}  // namespace

std::vector<TraceEvent> parse_trace_csv(const std::string& text) {
  std::vector<TraceEvent> events;
  std::istringstream in(text);
  std::string raw;
  std::size_t line_no = 0;
  bool seen_data = false;
  while (std::getline(in, raw)) {
    ++line_no;
    // Strip a trailing `# comment` and surrounding whitespace.
    const auto hash = raw.find('#');
    const std::string line = trim(hash == std::string::npos ? raw : raw.substr(0, hash));
    if (line.empty()) continue;

    const auto c1 = line.find(',');
    const auto c2 = c1 == std::string::npos ? std::string::npos : line.find(',', c1 + 1);
    if (c2 == std::string::npos) bad_row(line_no, "expected t_sec,domain,rate_multiplier");
    const std::string f0 = trim(line.substr(0, c1));
    const std::string f1 = trim(line.substr(c1 + 1, c2 - c1 - 1));
    const std::string f2 = trim(line.substr(c2 + 1));
    if (line.find(',', c2 + 1) != std::string::npos) bad_row(line_no, "too many fields");

    // One header row is tolerated before any data.
    if (!seen_data && f0 == "t_sec") continue;

    TraceEvent ev;
    ev.at_sec = parse_double(f0, line_no, "t_sec");
    const double domain = parse_double(f1, line_no, "domain");
    if (domain != std::floor(domain) || domain < 0) {
      bad_row(line_no, "domain must be a non-negative integer");
    }
    ev.domain = static_cast<web::DomainId>(domain);
    ev.rate_multiplier = parse_double(f2, line_no, "rate_multiplier");
    events.push_back(ev);
    seen_data = true;
  }
  return events;
}

std::vector<TraceEvent> load_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::invalid_argument("trace file '" + path + "': cannot open");
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return parse_trace_csv(buf.str());
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument("trace file '" + path + "': " + e.what());
  }
}

std::string trace_to_csv(const std::vector<TraceEvent>& events) {
  std::string out = "t_sec,domain,rate_multiplier\n";
  char row[96];
  for (const TraceEvent& ev : events) {
    // %.17g round-trips any double exactly through parse_trace_csv.
    std::snprintf(row, sizeof(row), "%.17g,%d,%.17g\n", ev.at_sec, ev.domain,
                  ev.rate_multiplier);
    out += row;
  }
  return out;
}

void validate_trace(const std::vector<TraceEvent>& events, int num_domains) {
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    const std::string at = "trace event " + std::to_string(i) + ": ";
    if (!std::isfinite(ev.at_sec) || ev.at_sec < 0) {
      throw std::invalid_argument(at + "t_sec must be finite and >= 0");
    }
    if (ev.domain < 0 || ev.domain >= num_domains) {
      throw std::invalid_argument(at + "domain " + std::to_string(ev.domain) +
                                  " outside [0, " + std::to_string(num_domains) + ")");
    }
    if (!std::isfinite(ev.rate_multiplier) ||
        ev.rate_multiplier < ThinkTimeModel::kMinRateMultiplier ||
        ev.rate_multiplier > ThinkTimeModel::kMaxRateMultiplier) {
      throw std::invalid_argument(at + "rate_multiplier must lie in [1e-6, 1e6]");
    }
  }
}

void schedule_trace(sim::Simulator& sim, ThinkTimeModel& think,
                    const std::vector<TraceEvent>& events, int num_shards, int shard) {
  if (num_shards < 1 || shard < 0 || shard >= num_shards) {
    throw std::invalid_argument("schedule_trace: bad shard selector");
  }
  for (const TraceEvent& ev : events) {
    if (ev.domain % num_shards != shard) continue;
    ThinkTimeModel* t = &think;
    sim.at(ev.at_sec, sim::assert_inline([t, ev] {
             t->set_rate(ev.domain, ev.rate_multiplier);
           }));
  }
}

std::vector<TraceEvent> generate_flash_crowd(const FlashCrowdSpec& spec) {
  if (spec.step_sec <= 0 || spec.peak_multiplier <= 0 || spec.start_sec < 0 ||
      spec.ramp_sec < 0 || spec.hold_sec < 0 || spec.decay_sec < 0) {
    throw std::invalid_argument("generate_flash_crowd: bad spec");
  }
  std::vector<TraceEvent> events;
  const double end = spec.start_sec + spec.ramp_sec + spec.hold_sec + spec.decay_sec;
  events.push_back({0.0, spec.domain, 1.0});
  for (double t = spec.start_sec; t < end; t += spec.step_sec) {
    double mult = 1.0;
    if (t < spec.start_sec + spec.ramp_sec) {
      const double frac = spec.ramp_sec > 0 ? (t - spec.start_sec) / spec.ramp_sec : 1.0;
      mult = 1.0 + frac * (spec.peak_multiplier - 1.0);
    } else if (t < spec.start_sec + spec.ramp_sec + spec.hold_sec) {
      mult = spec.peak_multiplier;
    } else if (spec.decay_sec > 0) {
      const double frac =
          (t - spec.start_sec - spec.ramp_sec - spec.hold_sec) / spec.decay_sec;
      mult = spec.peak_multiplier - frac * (spec.peak_multiplier - 1.0);
    }
    events.push_back({t, spec.domain, mult});
  }
  events.push_back({end, spec.domain, 1.0});
  return events;
}

std::vector<TraceEvent> generate_diurnal(const DiurnalSpec& spec, int num_domains) {
  if (num_domains < 1 || spec.duration_sec <= 0 || spec.period_sec <= 0 ||
      spec.step_sec <= 0 || spec.amplitude < 0 || spec.amplitude >= 1.0 ||
      spec.phase_spread_sec < 0) {
    throw std::invalid_argument("generate_diurnal: bad spec");
  }
  std::vector<TraceEvent> events;
  for (double t = 0.0; t <= spec.duration_sec; t += spec.step_sec) {
    for (int d = 0; d < num_domains; ++d) {
      const double phase =
          num_domains > 1
              ? spec.phase_spread_sec * static_cast<double>(d) /
                    static_cast<double>(num_domains)
              : 0.0;
      const double mult =
          1.0 + spec.amplitude * std::sin(kTwoPi * (t + phase) / spec.period_sec);
      events.push_back({t, d, mult});
    }
  }
  return events;
}

std::vector<TraceEvent> generate_regime_shifts(const RegimeShiftSpec& spec,
                                               int num_domains) {
  if (num_domains < 1 || spec.duration_sec <= 0 || spec.mean_dwell_sec <= 0 ||
      spec.hot_multiplier <= 0) {
    throw std::invalid_argument("generate_regime_shifts: bad spec");
  }
  sim::RngStream rng(spec.seed);
  std::vector<TraceEvent> events;
  web::DomainId hot = static_cast<web::DomainId>(
      rng.uniform_int(0, static_cast<std::int64_t>(num_domains) - 1));
  events.push_back({0.0, hot, spec.hot_multiplier});
  for (double t = rng.exponential(spec.mean_dwell_sec); t < spec.duration_sec;
       t += rng.exponential(spec.mean_dwell_sec)) {
    events.push_back({t, hot, 1.0});  // previous hot spot cools...
    if (num_domains > 1) {
      // ...and the heat moves to a different domain.
      web::DomainId next = hot;
      while (next == hot) {
        next = static_cast<web::DomainId>(
            rng.uniform_int(0, static_cast<std::int64_t>(num_domains) - 1));
      }
      hot = next;
    }
    events.push_back({t, hot, spec.hot_multiplier});
  }
  return events;
}

}  // namespace adattl::workload
