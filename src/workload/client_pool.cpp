#include "workload/client_pool.h"

#include <cmath>
#include <stdexcept>

namespace adattl::workload {

void SessionProfile::validate() const {
  if (mean_pages_per_session < 1.0) {
    throw std::invalid_argument("SessionProfile: mean pages must be >= 1");
  }
  if (min_hits_per_page < 1 || max_hits_per_page < min_hits_per_page) {
    throw std::invalid_argument("SessionProfile: bad hits-per-page range");
  }
  if (pareto_shape <= 0.0) {
    throw std::invalid_argument("SessionProfile: Pareto shape must be > 0");
  }
}

int SessionProfile::sample_hits(sim::RngStream& rng) const {
  switch (hits_distribution) {
    case HitsDistribution::kUniform:
      return static_cast<int>(rng.uniform_int(min_hits_per_page, max_hits_per_page));
    case HitsDistribution::kPareto: {
      // Bounded Pareto on [L, H] by inverse-CDF; heavy lower-tail mass with
      // occasional near-H bursts — the Arlitt/Williamson-style alternative.
      const double a = pareto_shape;
      const double l = static_cast<double>(min_hits_per_page);
      const double h = static_cast<double>(max_hits_per_page) + 1.0;  // include H after floor
      const double u = rng.next_double();
      const double la = std::pow(l, a);
      const double ha = std::pow(h, a);
      const double x = std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / a);
      const int hits = static_cast<int>(x);
      return std::min(std::max(hits, min_hits_per_page), max_hits_per_page);
    }
  }
  throw std::logic_error("SessionProfile: unknown hits distribution");
}

double SessionProfile::mean_hits_per_page() const {
  switch (hits_distribution) {
    case HitsDistribution::kUniform:
      return 0.5 * (min_hits_per_page + max_hits_per_page);
    case HitsDistribution::kPareto: {
      // Mean of the continuous bounded Pareto; close enough for load math.
      const double a = pareto_shape;
      const double l = static_cast<double>(min_hits_per_page);
      const double h = static_cast<double>(max_hits_per_page) + 1.0;
      if (a == 1.0) return l * h / (h - l) * std::log(h / l);
      const double la = std::pow(l, a);
      const double ha = std::pow(h, a);
      return la / (1.0 - la / ha) * (a / (a - 1.0)) *
             (1.0 / std::pow(l, a - 1.0) - 1.0 / std::pow(h, a - 1.0));
    }
  }
  throw std::logic_error("SessionProfile: unknown hits distribution");
}

ClientPool::ClientPool(sim::Simulator& sim, web::PageDispatcher& dispatcher,
                       const SessionProfile& profile, const ThinkTimeModel& think,
                       const geo::GeoModel* geo, double retry_delay_sec)
    : sim_(sim),
      dispatcher_(dispatcher),
      profile_(profile),
      think_(think),
      geo_(geo),
      retry_delay_sec_(retry_delay_sec) {
  profile_.validate();
  if (retry_delay_sec <= 0.0) {
    throw std::invalid_argument("Client: retry delay must be > 0");
  }
  domain_response_.reserve(static_cast<std::size_t>(think_.num_domains()));
  for (int d = 0; d < think_.num_domains(); ++d) {
    domain_response_.emplace_back(30.0, 600);
  }
}

std::size_t ClientPool::add(dnscache::Resolver& resolver, sim::RngStream rng) {
  if (resolver.domain() < 0 || resolver.domain() >= think_.num_domains()) {
    throw std::invalid_argument("Client: resolver domain outside think-time model");
  }
  if (geo_ && geo_->num_domains() <= resolver.domain()) {
    throw std::invalid_argument("Client: resolver domain outside geo model");
  }
  recs_.emplace_back(rng, &resolver);
  return recs_.size() - 1;
}

void ClientPool::start(std::size_t i, double initial_delay) {
  const auto idx = static_cast<std::uint32_t>(i);
  sim_.after(initial_delay, sim::assert_inline([this, idx] { begin_session(idx); }));
}

ClientPool::Totals ClientPool::totals() const {
  Totals t;
  for (const Rec& c : recs_) {
    t.sessions += c.sessions;
    t.pages += c.pages;
    t.pages_failed += c.pages_failed;
    t.resolution_failures += c.resolution_failures;
    t.network_time_sec += c.network_time;
  }
  return t;
}

void ClientPool::begin_session(std::uint32_t i) {
  Rec& c = recs_[i];
  c.mapped_server = c.resolver->resolve();
  if (c.mapped_server < 0) {
    // DNS outage against a cold NS cache: nothing to stale-serve. The
    // session has not started — try again shortly.
    ++c.resolution_failures;
    sim_.after(retry_delay_sec_, sim::assert_inline([this, i] { begin_session(i); }));
    return;
  }
  ++c.sessions;
  c.pages_left = c.rng.geometric_min1(profile_.mean_pages_per_session);
  ++c.pages;
  --c.pages_left;
  c.pending_hits = profile_.sample_hits(c.rng);
  dispatch_request(i);
}

void ClientPool::dispatch_request(std::uint32_t i) {
  Rec& c = recs_[i];
  // One geo lookup per dispatch: the mapping cannot change between the
  // request and reply legs, so on_server_complete() reuses the cached value.
  c.page_rtt = geo_ ? geo_->rtt(c.resolver->domain(), c.mapped_server) : 0.0;
  if (c.page_rtt > 0.0) {
    // Request leg only. The reply leg is charged when (if) the server
    // completes the page — a rejected or crashed attempt never took it.
    c.network_time += c.page_rtt / 2.0;
    sim_.after(c.page_rtt / 2.0, sim::assert_inline([this, i] { arrive(i); }));
  } else {
    arrive(i);
  }
}

void ClientPool::arrive(std::uint32_t i) {
  Rec& c = recs_[i];
  if (c.count_page_on_arrive) {
    c.count_page_on_arrive = false;
    ++c.pages;
  }
  c.page_start = sim_.now();
  dispatcher_.dispatch(c.mapped_server,
                       web::PageRequest{c.resolver->domain(), c.pending_hits,
                                        [this, i] { on_server_complete(i); },
                                        [this, i] { on_page_failed(i); }});
}

void ClientPool::on_server_complete(std::uint32_t i) {
  Rec& c = recs_[i];
  if (c.page_rtt > 0.0) c.network_time += c.page_rtt / 2.0;  // the reply leg home
  // Client-perceived response: request flight + server time + reply
  // flight. page_start is the server-arrival instant, so both legs are
  // added back.
  domain_response_[static_cast<std::size_t>(c.resolver->domain())].add(
      (sim_.now() - c.page_start) + c.page_rtt);
  const double think = think_.sample(c.resolver->domain(), c.rng);
  if (c.pages_left > 0) {
    // Coalesce reply flight + think + next request flight into one event:
    // the mapping is held for the session, so nothing the client can
    // observe changes in between. The next page's size is drawn now —
    // same stream, same order, same value as drawing it at dispatch time.
    --c.pages_left;
    c.pending_hits = profile_.sample_hits(c.rng);
    c.count_page_on_arrive = true;
    if (c.page_rtt > 0.0) {
      c.network_time += c.page_rtt / 2.0;  // next page's request leg
      sim_.after(c.page_rtt / 2.0 + think + c.page_rtt / 2.0,
                 sim::assert_inline([this, i] { arrive(i); }));
    } else {
      sim_.after(think, sim::assert_inline([this, i] { arrive(i); }));
    }
  } else {
    // Session over: reply flight + think, then re-resolve (the next
    // session's mapping may differ, so it cannot coalesce further).
    if (c.page_rtt > 0.0) {
      sim_.after(c.page_rtt / 2.0 + think,
                 sim::assert_inline([this, i] { begin_session(i); }));
    } else {
      sim_.after(think, sim::assert_inline([this, i] { begin_session(i); }));
    }
  }
}

void ClientPool::on_page_failed(std::uint32_t i) {
  // Called from inside the server's crash/reject path — never resubmit
  // synchronously; the retry is a fresh simulator event.
  ++recs_[i].pages_failed;
  sim_.after(retry_delay_sec_, sim::assert_inline([this, i] { retry_page(i); }));
}

void ClientPool::retry_page(std::uint32_t i) {
  Rec& c = recs_[i];
  // The mapping that failed may point at a dead server; re-resolve first
  // (the NS or the DNS may know better by now), then re-issue the *same*
  // page. During a DNS outage with nothing cached this loops on the
  // resolution until either recovers.
  c.mapped_server = c.resolver->resolve();
  if (c.mapped_server < 0) {
    ++c.resolution_failures;
    sim_.after(retry_delay_sec_, sim::assert_inline([this, i] { retry_page(i); }));
    return;
  }
  dispatch_request(i);
}

}  // namespace adattl::workload
