#pragma once

#include <cstdint>
#include <vector>

#include "dnscache/resolver.h"
#include "geo/geo_model.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "web/dispatcher.h"
#include "workload/think_time_model.h"

namespace adattl::workload {

/// How many hits a page request carries.
enum class HitsDistribution {
  kUniform,  ///< uniform integer in [min, max] — the paper's model
  kPareto,   ///< bounded Pareto on [min, max] — heavy-tailed extension
};

/// Parameters of one client session (paper §4.1 / Table 1).
struct SessionProfile {
  double mean_pages_per_session = 20.0;  ///< geometric (discrete exponential)
  int min_hits_per_page = 5;             ///< hits per page bounds
  int max_hits_per_page = 15;
  HitsDistribution hits_distribution = HitsDistribution::kUniform;
  /// Tail index for the Pareto option (smaller = heavier tail).
  double pareto_shape = 1.5;

  void validate() const;

  /// Draws one page's hit count.
  int sample_hits(sim::RngStream& rng) const;

  /// Mean hits per page under the configured distribution.
  double mean_hits_per_page() const;
};

/// The entire client population of one simulation as a single pooled
/// object: one contiguous vector of ~112-byte records (per-client RNG
/// state, session counters, the page in flight) instead of a heap
/// allocation per client. At a million clients that is one ~110 MB
/// allocation, iterated cache-linearly for end-of-run aggregation, and
/// every simulator callback captures just {pool, index} — small enough for
/// both the kernel's InlineCallback SBO and std::function's.
///
/// Lifecycle per client (paper §4.1): a session opens with a single
/// address resolution through the domain's name server, then issues a
/// geometric number of page requests — each a burst of hits — separated by
/// exponential think times; the next session re-resolves (possibly served
/// from the NS cache) and repeats forever. The client holds its mapping
/// for the whole session even if the TTL expires mid-session.
///
/// Event coalescing: the page lifecycle costs at most ONE in-flight kernel
/// event per client. Between a page's service completion and the next
/// page's arrival at the server nothing observable about the client can
/// change (the mapping is held for the session, the think time and the
/// next page's size are independent draws), so the reply flight, the think
/// period and the next request flight collapse into a single event at
/// t + rtt/2 + think + rtt/2. Without geography (rtt = 0) the event
/// sequence is bit-identical to the historical one-object-per-client code;
/// with geography it replaces three client events per page by one. The
/// one approximation: think times are sampled rtt/2 seconds (the reply
/// flight) earlier in simulated time, so a scripted rate shift firing
/// inside that sub-second window applies one page later than before.
///
/// Network accounting charges each flight leg when it is actually taken:
/// the request leg (rtt/2) at dispatch — including every retry attempt,
/// which really does fly to the (possibly dead) server — and the reply leg
/// (rtt/2) only when the server completes the page. A page that fails at
/// the server never charges the reply it never received.
class ClientPool {
 public:
  /// `geo` (optional) adds network round-trip time to every page: the
  /// request travels rtt/2 before reaching the server and the reply
  /// travels rtt/2 back, so client-perceived response = rtt + server time.
  /// `retry_delay_sec` is the pause before retrying a failed page or
  /// resolution (failures only occur under fault injection).
  ClientPool(sim::Simulator& sim, web::PageDispatcher& dispatcher,
             const SessionProfile& profile, const ThinkTimeModel& think,
             const geo::GeoModel* geo = nullptr, double retry_delay_sec = 1.0);

  ClientPool(const ClientPool&) = delete;
  ClientPool& operator=(const ClientPool&) = delete;

  void reserve(std::size_t clients) { recs_.reserve(clients); }

  /// Adds one client that resolves through `resolver` (a NameServer or a
  /// per-client cache on top of one) and draws from `rng`. Returns the
  /// client's index. `resolver` must outlive the pool.
  std::size_t add(dnscache::Resolver& resolver, sim::RngStream rng);

  /// Schedules client `i`'s first session `initial_delay` seconds from now
  /// (staggered starts avoid a synchronized stampede at t = 0).
  void start(std::size_t i, double initial_delay);

  std::size_t size() const { return recs_.size(); }

  std::uint64_t sessions_started(std::size_t i) const { return recs_[i].sessions; }
  std::uint64_t pages_requested(std::size_t i) const { return recs_[i].pages; }
  /// Page attempts that came back failed (crashed server); each is retried
  /// after retry_delay_sec with a fresh resolution, so one page can fail
  /// several times during a long outage.
  std::uint64_t pages_failed(std::size_t i) const { return recs_[i].pages_failed; }
  /// Resolutions that produced no server at all (cold NS cache during a
  /// DNS outage); retried like failed pages.
  std::uint64_t resolution_failures(std::size_t i) const {
    return recs_[i].resolution_failures;
  }
  /// Total network flight seconds client `i`'s pages actually spent in the
  /// air (0 without a geo model).
  double network_time_sec(std::size_t i) const { return recs_[i].network_time; }

  /// Population-wide sums, accumulated in index order (one linear pass).
  struct Totals {
    std::uint64_t sessions = 0;
    std::uint64_t pages = 0;
    std::uint64_t pages_failed = 0;
    std::uint64_t resolution_failures = 0;
    double network_time_sec = 0.0;
  };
  Totals totals() const;

  /// Client-perceived page response time distribution of domain `d`:
  /// request flight + queue + service + reply flight, recorded per
  /// completed page (a failed attempt records nothing — only the attempt
  /// that finally succeeds is measured, from its own dispatch).
  const sim::Histogram& domain_response_histogram(int d) const {
    return domain_response_.at(static_cast<std::size_t>(d));
  }

 private:
  /// One client. Kept POD-ish and compact: the pool's contiguous vector of
  /// these IS the client population's entire state.
  struct Rec {
    Rec(sim::RngStream r, dnscache::Resolver* res) : rng(r), resolver(res) {}

    sim::RngStream rng;
    dnscache::Resolver* resolver;
    double network_time = 0.0;
    /// RTT of the page in flight, looked up once per dispatch and reused
    /// for the reply leg — the mapping is fixed for the page's lifetime.
    double page_rtt = 0.0;
    /// Server-arrival instant of the page in flight; with the request leg
    /// prepended and the reply leg appended this yields the client-
    /// perceived response time recorded at completion.
    double page_start = 0.0;
    std::uint64_t sessions = 0;
    std::uint64_t pages = 0;
    std::uint64_t pages_failed = 0;
    std::uint64_t resolution_failures = 0;
    web::ServerId mapped_server = -1;
    int pages_left = 0;
    /// Hit count of the page in flight, kept so a failed page retries with
    /// the *same* size (a retry is the same page, not a new sample).
    int pending_hits = 0;
    /// A coalesced next page counts as requested when its arrival event
    /// fires (= the historical think-end instant), not when it is drawn at
    /// service-completion time; retries arrive without recounting.
    bool count_page_on_arrive = false;
  };

  void begin_session(std::uint32_t i);
  void dispatch_request(std::uint32_t i);
  void arrive(std::uint32_t i);
  void on_server_complete(std::uint32_t i);
  void on_page_failed(std::uint32_t i);
  void retry_page(std::uint32_t i);

  sim::Simulator& sim_;
  web::PageDispatcher& dispatcher_;
  SessionProfile profile_;
  const ThinkTimeModel& think_;
  const geo::GeoModel* geo_;
  double retry_delay_sec_;
  std::vector<Rec> recs_;
  /// One histogram per domain; purely observational (never read by any
  /// event handler), so recording cannot perturb the event sequence.
  std::vector<sim::Histogram> domain_response_;
};

}  // namespace adattl::workload
