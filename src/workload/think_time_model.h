#pragma once

#include <vector>

#include "sim/random.h"
#include "web/types.h"

namespace adattl::workload {

/// Source of client think times, with support for *dynamic* per-domain
/// rate changes (the paper's conclusions single out "intrinsic high load
/// skews and dynamic variations" as the environment adaptive TTL targets).
///
/// Each domain has a base mean think time; a runtime multiplier scales the
/// domain's request *rate* (rate x f ⇒ think / f). The experiment layer
/// schedules multiplier changes (flash crowds, load shifts) as simulator
/// events; clients sample through this model so changes take effect on
/// their next think period, with no per-client bookkeeping.
class ThinkTimeModel {
 public:
  /// Bounds on a domain's composed rate multiplier. Long generated traces
  /// compose thousands of small multiplicative steps; without a floor/cap
  /// the product can underflow to denormal/0 (think time -> inf: the
  /// domain silently dies) or overflow (think time -> 0: the event queue
  /// floods with zero-delay wakeups). 1e-6..1e6 spans any physically
  /// meaningful load swing while keeping base/multiplier comfortably
  /// inside normal double range.
  static constexpr double kMinRateMultiplier = 1e-6;
  static constexpr double kMaxRateMultiplier = 1e6;

  explicit ThinkTimeModel(std::vector<double> base_mean_think_sec);

  int num_domains() const { return static_cast<int>(base_.size()); }

  /// Current mean think time of a domain (base / rate multiplier).
  double mean_think(web::DomainId d) const;

  /// Draws one exponential think time for a client of domain `d`.
  double sample(web::DomainId d, sim::RngStream& rng) const;

  /// Scales domain `d`'s request rate by `factor`, composing with any
  /// previous scaling. factor > 1 = hotter, < 1 = cooler. Rejects
  /// non-finite or non-positive factors; the composed multiplier is
  /// clamped to [kMinRateMultiplier, kMaxRateMultiplier].
  void scale_rate(web::DomainId d, double factor);

  /// Sets domain `d`'s rate multiplier outright (trace replay: each trace
  /// point is an absolute multiplier, so replays are idempotent and never
  /// compound). Rejects non-finite or non-positive multipliers; clamps to
  /// the same validated range as scale_rate.
  void set_rate(web::DomainId d, double multiplier);

  /// Resets domain `d` to its base rate.
  void reset_rate(web::DomainId d);

  double rate_multiplier(web::DomainId d) const {
    return multiplier_.at(static_cast<std::size_t>(d));
  }

 private:
  std::vector<double> base_;
  std::vector<double> multiplier_;
};

/// One scheduled workload change: at `at_sec`, multiply domain
/// `domain`'s request rate by `rate_factor`. Used by SimulationConfig to
/// script flash crowds.
struct RateShift {
  double at_sec = 0.0;
  web::DomainId domain = 0;
  double rate_factor = 1.0;
};

}  // namespace adattl::workload
