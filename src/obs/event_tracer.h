#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace adattl::obs {

/// Typed timeline records. The integer payloads `a`/`b` and the double
/// `value` are interpreted per kind (see the table in trace docs):
///
///   kDecision      a=domain  b=server  value=ttl_sec
///   kAlarm         a=server            value=utilization
///   kNormal        a=server            value=utilization
///   kNsRefresh     a=domain  b=server  value=effective_ttl_sec
///   kServerPause   a=server
///   kServerResume  a=server
///   kEstimatorUpdate a=windows_observed
///   kServerCrash   a=server  b=lost_pages  value=lost_hits
///   kServerRecover a=server
///   kCapacityScale a=server            value=factor
///   kDnsOutageStart                    value=duration_sec
///   kDnsOutageEnd
///   kStaleServe    a=domain  b=server
///   kRequestFailed a=domain  b=server
enum class TraceKind : std::uint8_t {
  kDecision = 0,
  kAlarm,
  kNormal,
  kNsRefresh,
  kServerPause,
  kServerResume,
  kEstimatorUpdate,
  kServerCrash,
  kServerRecover,
  kCapacityScale,
  kDnsOutageStart,
  kDnsOutageEnd,
  kStaleServe,
  kRequestFailed,
};

/// Short stable name ("decision", "alarm", ...), used by both exporters.
const char* trace_kind_name(TraceKind kind);

/// One fixed-size timeline record (POD — records never allocate).
struct TraceRecord {
  sim::SimTime time = 0.0;
  TraceKind kind = TraceKind::kDecision;
  std::int32_t a = 0;
  std::int32_t b = 0;
  double value = 0.0;
};

/// Bounded ring buffer of typed simulation events.
///
/// The ring is allocated once at construction; record() overwrites the
/// oldest entry when full, so steady-state tracing never allocates. The
/// tracer is wired into components as a nullable pointer — the disabled
/// cost at every instrumentation point is a single null check.
///
/// Exports: CSV (one row per record) and Chrome `trace_event` JSON
/// (load chrome://tracing or https://ui.perfetto.dev and drop the file).
class EventTracer {
 public:
  /// `capacity` > 0: maximum records retained (oldest evicted first).
  explicit EventTracer(std::size_t capacity);

  void record(sim::SimTime time, TraceKind kind, std::int32_t a = 0, std::int32_t b = 0,
              double value = 0.0) {
    TraceRecord& r = ring_[next_];
    r.time = time;
    r.kind = kind;
    r.a = a;
    r.b = b;
    r.value = value;
    next_ = next_ + 1 == ring_.size() ? 0 : next_ + 1;
    ++total_;
  }

  std::size_t capacity() const { return ring_.size(); }
  std::uint64_t total_recorded() const { return total_; }
  std::uint64_t dropped() const {
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
  }

  /// Retained records in chronological (recording) order.
  std::vector<TraceRecord> records() const;

  /// "time,kind,a,b,value" rows in chronological order.
  std::string to_csv() const;

  /// Chrome trace_event JSON: instant events, ts in microseconds, one tid
  /// per layer (0 = DNS decisions, 1 = alarms, 2 = name servers,
  /// 3 = web servers, 4 = estimator).
  std::string to_chrome_json() const;

  /// Writes `content` (from to_csv()/to_chrome_json()) to `path`; throws
  /// std::runtime_error on I/O failure.
  static void write_file(const std::string& path, const std::string& content);

 private:
  std::vector<TraceRecord> ring_;
  std::size_t next_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace adattl::obs
