#include "obs/profiler.h"

#include <cstdio>

namespace adattl::obs {

void PhaseProfiler::add(const std::string& phase, double seconds) {
  const auto it = index_.find(phase);
  if (it != index_.end()) {
    phases_[it->second].seconds += seconds;
    phases_[it->second].count++;
    return;
  }
  index_.emplace(phase, phases_.size());
  phases_.push_back(Phase{phase, seconds, 1});
}

double PhaseProfiler::total_seconds() const {
  double total = 0.0;
  for (const Phase& p : phases_) total += p.seconds;
  return total;
}

std::string PhaseProfiler::to_json() const {
  std::string out = "{\"phases\":[";
  char buf[64];
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (i) out += ",";
    out += "{\"name\":\"" + phases_[i].name + "\",";
    std::snprintf(buf, sizeof(buf), "\"seconds\":%.6f,\"count\":%llu}", phases_[i].seconds,
                  static_cast<unsigned long long>(phases_[i].count));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "],\"total_seconds\":%.6f}", total_seconds());
  out += buf;
  return out;
}

}  // namespace adattl::obs
