#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace adattl::obs {

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Returns "counter", "gauge" or "histogram".
const char* metric_kind_name(MetricKind kind);

/// Fixed-shape histogram cell: `bins` equal-width bins over [0, upper)
/// plus one overflow bin. Shape is fixed at registration, so observe()
/// never allocates.
struct HistogramCell {
  double upper = 1.0;
  std::vector<std::uint64_t> bins;  // last slot = overflow (x >= upper)
  std::uint64_t count = 0;
  double sum = 0.0;

  void observe(double x) {
    ++count;
    sum += x;
    const std::size_t n = bins.size() - 1;  // regular bins
    std::size_t idx;
    if (!(x > 0.0)) {
      idx = 0;  // negatives and NaN clamp to the first bin
    } else if (x >= upper) {
      idx = n;
    } else {
      idx = static_cast<std::size_t>(x / upper * static_cast<double>(n));
    }
    ++bins[idx];
  }
};

/// Pre-resolved handle to a monotonically increasing count.
///
/// Handles are resolved once at wiring time and updated through a raw cell
/// pointer, so the bound steady-state path is a well-predicted null check
/// plus an indirect increment — no lookup, no allocation. A
/// default-constructed handle is unbound and every update is a pure no-op.
/// It must stay that way: instruments are built on one thread and may be
/// driven from another (sharded runs construct components on the main
/// thread and run them on pool workers), so an unbound update may not
/// touch *any* shared or thread-local cell — an earlier design cached a
/// TLS scratch pointer at construction and every worker raced on the
/// constructing thread's cell.
class Counter {
 public:
  Counter() = default;

  void inc(std::uint64_t n = 1) {
    if (cell_) *cell_ += n;
  }
  std::uint64_t value() const { return cell_ ? *cell_ : 0; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::uint64_t* cell) : cell_(cell) {}
  std::uint64_t* cell_ = nullptr;
};

/// Pre-resolved handle to a last-value-wins measurement (queue depth,
/// busy seconds). Same cell-pointer scheme as Counter.
class Gauge {
 public:
  Gauge() = default;

  void set(double v) {
    if (cell_) *cell_ = v;
  }
  void add(double v) {
    if (cell_) *cell_ += v;
  }
  double value() const { return cell_ ? *cell_ : 0.0; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(double* cell) : cell_(cell) {}
  double* cell_ = nullptr;
};

/// Pre-resolved handle to a fixed-bin histogram.
class HistogramHandle {
 public:
  HistogramHandle() = default;

  void observe(double x) {
    if (cell_) cell_->observe(x);
  }
  /// Unbound handles read as an empty single-bin histogram.
  const HistogramCell& cell() const { return cell_ ? *cell_ : empty(); }

 private:
  friend class MetricsRegistry;
  explicit HistogramHandle(HistogramCell* cell) : cell_(cell) {}
  static const HistogramCell& empty();
  HistogramCell* cell_ = nullptr;
};

/// Point-in-time copy of every registered metric, detached from the
/// registry (safe to keep after the Site that owned the registry dies).
struct MetricsSnapshot {
  struct Metric {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    /// Counter or gauge value (histograms: the sample count).
    double value = 0.0;
    // Histogram payload (empty bins for counters/gauges).
    double upper = 0.0;
    std::uint64_t count = 0;
    double sum = 0.0;
    std::vector<std::uint64_t> bins;
  };

  std::vector<Metric> metrics;  // registration order

  /// nullptr when `name` was never registered.
  const Metric* find(const std::string& name) const;
};

/// Owner of all metric cells for one simulation run.
///
/// Instruments register once at wiring time (allocating their cell) and
/// receive a handle; every later update goes through the handle without
/// touching the registry, preserving the kernel's zero-steady-state-
/// allocation invariant. Registering an already-known name returns a
/// handle to the *same* cell — that is how per-instance components (e.g.
/// 20 name servers) share one aggregate counter — but re-registering a
/// name under a different kind or histogram shape throws.
///
/// Not thread-safe: one registry belongs to one (single-threaded) Site.
class MetricsRegistry {
 public:
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  HistogramHandle histogram(const std::string& name, double upper, int bins);

  std::size_t size() const { return entries_.size(); }
  MetricsSnapshot snapshot() const;

 private:
  struct Entry {
    std::string name;
    MetricKind kind;
    std::uint64_t counter = 0;
    double gauge = 0.0;
    std::unique_ptr<HistogramCell> hist;
  };

  Entry& entry_for(const std::string& name, MetricKind kind);

  // deque: cell addresses stay stable as registration grows the registry.
  std::deque<Entry> entries_;
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace adattl::obs
