#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace adattl::obs {

/// Wall-clock stopwatch for phase timing. lap() returns the seconds since
/// construction or the previous lap and restarts the watch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  double elapsed() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double lap() {
    const Clock::time_point now = Clock::now();
    const double s = std::chrono::duration<double>(now - start_).count();
    start_ = now;
    return s;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named wall-clock spans (setup, warmup, measurement,
/// reduction, ...) across one run or a whole sweep. Phases keep first-add
/// order; adding to an existing phase accumulates seconds and bumps its
/// count, so per-replication spans roll up into per-sweep totals.
class PhaseProfiler {
 public:
  struct Phase {
    std::string name;
    double seconds = 0.0;
    std::uint64_t count = 0;
  };

  void add(const std::string& phase, double seconds);

  const std::vector<Phase>& phases() const { return phases_; }
  double total_seconds() const;

  /// {"phases":[{"name":...,"seconds":...,"count":...},...],"total_seconds":...}
  std::string to_json() const;

 private:
  std::vector<Phase> phases_;
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace adattl::obs
