#include "obs/metrics.h"

#include <stdexcept>

namespace adattl::obs {

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

const HistogramCell& HistogramHandle::empty() {
  // Never written (unbound updates are no-ops), so concurrent readers on
  // any mix of threads are safe.
  static const HistogramCell cell{1.0, std::vector<std::uint64_t>(2, 0), 0, 0.0};
  return cell;
}

const MetricsSnapshot::Metric* MetricsSnapshot::find(const std::string& name) const {
  for (const Metric& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

MetricsRegistry::Entry& MetricsRegistry::entry_for(const std::string& name, MetricKind kind) {
  const auto it = index_.find(name);
  if (it != index_.end()) {
    Entry& e = entries_[it->second];
    if (e.kind != kind) {
      throw std::invalid_argument("MetricsRegistry: '" + name + "' already registered as " +
                                  metric_kind_name(e.kind));
    }
    return e;
  }
  entries_.push_back(Entry{name, kind, 0, 0.0, nullptr});
  index_.emplace(name, entries_.size() - 1);
  return entries_.back();
}

Counter MetricsRegistry::counter(const std::string& name) {
  return Counter(&entry_for(name, MetricKind::kCounter).counter);
}

Gauge MetricsRegistry::gauge(const std::string& name) {
  return Gauge(&entry_for(name, MetricKind::kGauge).gauge);
}

HistogramHandle MetricsRegistry::histogram(const std::string& name, double upper, int bins) {
  if (upper <= 0.0) throw std::invalid_argument("MetricsRegistry: histogram upper must be > 0");
  if (bins <= 0) throw std::invalid_argument("MetricsRegistry: histogram bins must be >= 1");
  Entry& e = entry_for(name, MetricKind::kHistogram);
  if (!e.hist) {
    e.hist = std::make_unique<HistogramCell>();
    e.hist->upper = upper;
    e.hist->bins.assign(static_cast<std::size_t>(bins) + 1, 0);
  } else if (e.hist->upper != upper ||
             e.hist->bins.size() != static_cast<std::size_t>(bins) + 1) {
    throw std::invalid_argument("MetricsRegistry: '" + name +
                                "' re-registered with a different shape");
  }
  return HistogramHandle(e.hist.get());
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  out.metrics.reserve(entries_.size());
  for (const Entry& e : entries_) {
    MetricsSnapshot::Metric m;
    m.name = e.name;
    m.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter: m.value = static_cast<double>(e.counter); break;
      case MetricKind::kGauge: m.value = e.gauge; break;
      case MetricKind::kHistogram:
        m.value = static_cast<double>(e.hist->count);
        m.upper = e.hist->upper;
        m.count = e.hist->count;
        m.sum = e.hist->sum;
        m.bins = e.hist->bins;
        break;
    }
    out.metrics.push_back(std::move(m));
  }
  return out;
}

}  // namespace adattl::obs
