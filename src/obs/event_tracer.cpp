#include "obs/event_tracer.h"

#include <cstdio>
#include <stdexcept>

namespace adattl::obs {

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kDecision: return "decision";
    case TraceKind::kAlarm: return "alarm";
    case TraceKind::kNormal: return "normal";
    case TraceKind::kNsRefresh: return "ns_refresh";
    case TraceKind::kServerPause: return "server_pause";
    case TraceKind::kServerResume: return "server_resume";
    case TraceKind::kEstimatorUpdate: return "estimator_update";
    case TraceKind::kServerCrash: return "server_crash";
    case TraceKind::kServerRecover: return "server_recover";
    case TraceKind::kCapacityScale: return "capacity_scale";
    case TraceKind::kDnsOutageStart: return "dns_outage_start";
    case TraceKind::kDnsOutageEnd: return "dns_outage_end";
    case TraceKind::kStaleServe: return "stale_serve";
    case TraceKind::kRequestFailed: return "request_failed";
  }
  return "?";
}

namespace {

// Chrome-trace row (tid) per layer, so the timeline renders the DNS, the
// alarm feedback, the resolver caches and the servers as separate tracks.
int chrome_tid(TraceKind kind) {
  switch (kind) {
    case TraceKind::kDecision: return 0;
    case TraceKind::kAlarm:
    case TraceKind::kNormal: return 1;
    case TraceKind::kNsRefresh: return 2;
    case TraceKind::kServerPause:
    case TraceKind::kServerResume: return 3;
    case TraceKind::kEstimatorUpdate: return 4;
    case TraceKind::kServerCrash:
    case TraceKind::kServerRecover:
    case TraceKind::kCapacityScale:
    case TraceKind::kRequestFailed: return 3;
    case TraceKind::kStaleServe: return 2;
    case TraceKind::kDnsOutageStart:
    case TraceKind::kDnsOutageEnd: return 5;
  }
  return 9;
}

const char* chrome_track_name(int tid) {
  switch (tid) {
    case 0: return "dns decisions";
    case 1: return "alarm feedback";
    case 2: return "name servers";
    case 3: return "web servers";
    case 4: return "estimator";
    case 5: return "faults";
  }
  return "other";
}

}  // namespace

EventTracer::EventTracer(std::size_t capacity) {
  if (capacity == 0) throw std::invalid_argument("EventTracer: capacity must be >= 1");
  ring_.resize(capacity);
}

std::vector<TraceRecord> EventTracer::records() const {
  std::vector<TraceRecord> out;
  if (total_ == 0) return out;
  const std::size_t live = total_ < ring_.size() ? static_cast<std::size_t>(total_)
                                                 : ring_.size();
  out.reserve(live);
  // Oldest retained record: `next_` when the ring has wrapped, 0 otherwise.
  const std::size_t start = total_ < ring_.size() ? 0 : next_;
  for (std::size_t i = 0; i < live; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::string EventTracer::to_csv() const {
  std::string out = "time,kind,a,b,value\n";
  char buf[128];
  for (const TraceRecord& r : records()) {
    std::snprintf(buf, sizeof(buf), "%.6f,%s,%d,%d,%.6g\n", r.time, trace_kind_name(r.kind),
                  r.a, r.b, r.value);
    out += buf;
  }
  return out;
}

std::string EventTracer::to_chrome_json() const {
  std::string out = "{\"traceEvents\":[";
  char buf[256];
  bool first = true;
  // Track-naming metadata events, one per layer.
  for (int tid = 0; tid <= 5; ++tid) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,"
                  "\"args\":{\"name\":\"%s\"}}",
                  first ? "" : ",", tid, chrome_track_name(tid));
    out += buf;
    first = false;
  }
  for (const TraceRecord& r : records()) {
    // Simulated seconds → trace microseconds.
    std::snprintf(buf, sizeof(buf),
                  ",{\"name\":\"%s\",\"cat\":\"sim\",\"ph\":\"i\",\"s\":\"t\","
                  "\"ts\":%.3f,\"pid\":0,\"tid\":%d,"
                  "\"args\":{\"a\":%d,\"b\":%d,\"value\":%.6g}}",
                  trace_kind_name(r.kind), r.time * 1e6, chrome_tid(r.kind), r.a, r.b,
                  r.value);
    out += buf;
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

void EventTracer::write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) throw std::runtime_error("EventTracer: cannot open '" + path + "' for writing");
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const int rc = std::fclose(f);
  if (written != content.size() || rc != 0) {
    throw std::runtime_error("EventTracer: short write to '" + path + "'");
  }
}

}  // namespace adattl::obs
