#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace adattl::dnswire {

/// Minimal RFC 1035 wire-format support: enough to parse an A-record query
/// and build the authoritative response the scheduler's Decision implies
/// (address + TTL). This is the integration surface for running the
/// library behind a real UDP responder; the simulation never touches it.
///
/// Scope: queries with one question; responses with one A record;
/// compression pointers accepted on decode (with loop protection), never
/// emitted on encode. Everything else is answered with an error rcode
/// rather than parsed.

/// DNS header flags/ids in decoded form.
struct Header {
  std::uint16_t id = 0;
  bool qr = false;  ///< response flag
  std::uint8_t opcode = 0;
  bool aa = false;  ///< authoritative answer
  bool tc = false;
  bool rd = false;  ///< recursion desired (echoed)
  bool ra = false;
  std::uint8_t rcode = 0;
  std::uint16_t qdcount = 0;
  std::uint16_t ancount = 0;
  std::uint16_t nscount = 0;
  std::uint16_t arcount = 0;
};

/// One question section entry.
struct Question {
  std::string qname;  ///< dotted, lower-cased, no trailing dot ("www.site.org")
  std::uint16_t qtype = 0;
  std::uint16_t qclass = 0;
};

inline constexpr std::uint16_t kTypeA = 1;
inline constexpr std::uint16_t kTypeAaaa = 28;
inline constexpr std::uint16_t kClassIn = 1;

/// IPv6 address in wire order (16 bytes, network byte order).
using Ipv6 = std::array<std::uint8_t, 16>;

/// The IPv4-mapped IPv6 address ::ffff:a.b.c.d for `ipv4` (host byte
/// order) — the standard dual-stack answer for a site without native v6.
Ipv6 v4_mapped_ipv6(std::uint32_t ipv4);

inline constexpr std::uint8_t kRcodeNoError = 0;
inline constexpr std::uint8_t kRcodeFormErr = 1;
inline constexpr std::uint8_t kRcodeServFail = 2;
inline constexpr std::uint8_t kRcodeNxDomain = 3;
inline constexpr std::uint8_t kRcodeNotImp = 4;
inline constexpr std::uint8_t kRcodeRefused = 5;

/// Encodes a dotted name as DNS labels onto `out`. Returns false (leaving
/// `out` untouched) if any label is empty, longer than 63 bytes, or the
/// whole name exceeds 255 bytes.
bool encode_name(const std::string& dotted, std::vector<std::uint8_t>* out);

/// Decodes a (possibly compressed) name starting at `*pos`. On success
/// advances `*pos` past the name's wire bytes (not past any pointer
/// target) and writes the dotted, lower-cased form to `out`. Returns false
/// on truncation, label overflow, or a pointer loop.
bool decode_name(const std::uint8_t* data, std::size_t size, std::size_t* pos,
                 std::string* out);

/// Builds a one-question query message (the client side; used by tests and
/// the demo).
std::vector<std::uint8_t> encode_query(std::uint16_t id, const std::string& qname,
                                       std::uint16_t qtype = kTypeA,
                                       std::uint16_t qclass = kClassIn,
                                       bool recursion_desired = true);

/// Parses the header and first question of a message. Returns false on
/// malformed input (too short, bad name, question truncated); the header
/// is still filled as far as possible so a FORMERR response can echo the id.
bool decode_query(const std::vector<std::uint8_t>& wire, Header* header, Question* question);

/// Builds the authoritative response to `question`: one A record with the
/// given IPv4 (host byte order) and TTL, or an empty answer section when
/// `rcode` is non-zero. A question whose name cannot be re-encoded (the
/// decoder accepts names the encoder must reject, e.g. the root name) is
/// omitted from an error response (qdcount 0) rather than failing; a
/// positive answer needs the echo as its compression-pointer anchor, so
/// only that combination returns an empty vector.
std::vector<std::uint8_t> encode_a_response(const Header& query_header,
                                            const Question& question, std::uint32_t ipv4,
                                            std::uint32_t ttl_sec,
                                            std::uint8_t rcode = kRcodeNoError);

/// Parses a response built by encode_a_response (tests / demo): fills the
/// header and, when present, the answer's IPv4 + TTL. Returns false on
/// malformed input.
bool decode_a_response(const std::vector<std::uint8_t>& wire, Header* header,
                       std::uint32_t* ipv4, std::uint32_t* ttl_sec);

/// AAAA counterpart of encode_a_response: one quad-A record (rdlength 16)
/// with the same question-echo / error-rcode semantics.
std::vector<std::uint8_t> encode_aaaa_response(const Header& query_header,
                                               const Question& question, const Ipv6& ipv6,
                                               std::uint32_t ttl_sec,
                                               std::uint8_t rcode = kRcodeNoError);

/// Parses a response built by encode_aaaa_response. Returns false on
/// malformed input or when the answer is not a 16-byte AAAA record.
bool decode_aaaa_response(const std::vector<std::uint8_t>& wire, Header* header, Ipv6* ipv6,
                          std::uint32_t* ttl_sec);

}  // namespace adattl::dnswire
